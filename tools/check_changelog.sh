#!/bin/sh
# Fail CI when a "PR N:"-titled commit lands without its CHANGES.md
# entry. The head commit's subject names the PR (repo convention:
# "PR 7: ..."); CHANGES.md must then contain a matching "PR 7"
# heading. Commits whose subject names no PR (fixups, reverts) pass —
# the check guards the PR-landing commit itself, which is the one
# that must carry the changelog.
#
# Usage: tools/check_changelog.sh [changes-file]   (from the repo root)

set -eu

changes="${1:-CHANGES.md}"

if [ ! -f "$changes" ]; then
    echo "check_changelog: $changes not found" >&2
    exit 1
fi

if ! grep -Eq 'PR [0-9]+' "$changes"; then
    echo "check_changelog: $changes has no 'PR <n>' entries at all" >&2
    exit 1
fi

subject=$(git log -1 --format=%s)
pr=$(printf '%s\n' "$subject" | sed -n 's/^PR \([0-9][0-9]*\):.*/\1/p')

if [ -z "$pr" ]; then
    echo "check_changelog: head commit does not name a PR" \
         "('$subject') - skipping entry check"
    exit 0
fi

if grep -Eq "PR ${pr}[^0-9]" "$changes"; then
    echo "check_changelog: found CHANGES.md entry for PR ${pr}"
    exit 0
fi

echo "check_changelog: head commit is 'PR ${pr}: ...' but $changes" \
     "has no 'PR ${pr}' entry - add one describing this PR" >&2
exit 1
