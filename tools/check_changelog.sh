#!/bin/sh
# Fail CI when a "PR N:"-titled commit lands without its CHANGES.md
# entry. The head commit's subject names the PR (repo convention:
# "PR 7: ..."); CHANGES.md must then contain a matching "PR 7"
# heading. Commits whose subject names no PR (fixups, reverts) pass —
# the check guards the PR-landing commit itself, which is the one
# that must carry the changelog.
#
# Usage: tools/check_changelog.sh [changes-file]   (from the repo root)
#        tools/check_changelog.sh --cli-smoke <warped_sim>
#
# --cli-smoke exercises the strict-CLI contract of the campaign-family
# subcommands on a built warped_sim binary: malformed or missing
# required arguments must exit 2 (usage), never run with a silently
# defaulted value. CI runs it after the build so a new subcommand
# can't land without its argument validation.

set -eu

if [ "${1:-}" = "--cli-smoke" ]; then
    sim="${2:?usage: check_changelog.sh --cli-smoke <warped_sim>}"

    expect_exit() {
        want="$1"
        shift
        set +e
        "$@" >/dev/null 2>&1
        got=$?
        set -e
        if [ "$got" -ne "$want" ]; then
            echo "check_changelog --cli-smoke: '$*' exited $got," \
                 "expected $want" >&2
            exit 1
        fi
    }

    # Strict numeric parsing across the campaign family.
    expect_exit 2 "$sim" campaign SCAN --sites banana
    expect_exit 2 "$sim" campaign SCAN --checkpoint-every 0
    expect_exit 2 "$sim" campaign SCAN --strata 0
    # serve/shard required arguments and bounds.
    expect_exit 2 "$sim" serve SCAN --sites 5
    expect_exit 2 "$sim" serve SCAN --sites 5 --shards 0
    expect_exit 2 "$sim" serve SCAN --sites 5 --shards 2 --workers 0
    expect_exit 2 "$sim" shard SCAN --sites 5
    expect_exit 2 "$sim" shard SCAN --sites 5 --shard-index 3 \
        --shard-count 2 --delta-out /dev/null
    # Socket-transport edges: malformed endpoints, socket-only flags
    # without --listen, file-mode flags mixed into --connect mode,
    # and out-of-range transport knobs all refuse up front.
    expect_exit 2 "$sim" shard SCAN --sites 5 --connect 127.0.0.1
    expect_exit 2 "$sim" shard SCAN --sites 5 \
        --connect 127.0.0.1:7 --shard-index 0
    expect_exit 2 "$sim" shard SCAN --sites 5 \
        --connect 127.0.0.1:7 --chaos bogus
    expect_exit 2 "$sim" shard SCAN --sites 5 \
        --connect 127.0.0.1:7 --connect-attempts 0
    expect_exit 2 "$sim" serve SCAN --sites 5 --shards 2 \
        --port-file /tmp/port.txt
    expect_exit 2 "$sim" serve SCAN --sites 5 --shards 2 \
        --no-local-fallback
    expect_exit 2 "$sim" serve SCAN --sites 5 --shards 2 \
        --listen 127.0.0.1:99999
    expect_exit 2 "$sim" serve SCAN --sites 5 --shards 2 \
        --heartbeat 0
    expect_exit 2 "$sim" serve SCAN --sites 5 --shards 2 \
        --strikes 0
    echo "check_changelog --cli-smoke: campaign-family CLI edges OK"
    exit 0
fi

changes="${1:-CHANGES.md}"

if [ ! -f "$changes" ]; then
    echo "check_changelog: $changes not found" >&2
    exit 1
fi

if ! grep -Eq 'PR [0-9]+' "$changes"; then
    echo "check_changelog: $changes has no 'PR <n>' entries at all" >&2
    exit 1
fi

subject=$(git log -1 --format=%s)
pr=$(printf '%s\n' "$subject" | sed -n 's/^PR \([0-9][0-9]*\):.*/\1/p')

if [ -z "$pr" ]; then
    echo "check_changelog: head commit does not name a PR" \
         "('$subject') - skipping entry check"
    exit 0
fi

if grep -Eq "PR ${pr}[^0-9]" "$changes"; then
    echo "check_changelog: found CHANGES.md entry for PR ${pr}"
    exit 0
fi

echo "check_changelog: head commit is 'PR ${pr}: ...' but $changes" \
     "has no 'PR ${pr}' entry - add one describing this PR" >&2
exit 1
