#!/usr/bin/env sh
# Build everything, run the full test suite, and regenerate every
# paper figure into ./results/.
set -eu

cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

mkdir -p results
for b in build/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    name=$(basename "$b")
    echo "== $name =="
    "$b" | tee "results/$name.txt"
done
echo "All figures regenerated under results/."
