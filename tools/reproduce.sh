#!/usr/bin/env sh
# Build everything, run the full test suite, and regenerate every
# paper figure into ./results/.
set -eu

cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

mkdir -p results
for b in build/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    name=$(basename "$b")
    echo "== $name =="
    "$b" | tee "results/$name.txt"
done

# The coverage-table campaign (EXPERIMENTS.md "Reproducing the
# coverage table"): 10k sampled sites on MatrixMul(64), seed 42.
# ~10 min on one core; checkpointed, so an interrupted run resumes.
# Expected: coverage 96.67%, Wilson 95% CI [96.30, 97.00], 0 SDC/DUE.
echo "== campaign_matrixmul_10k =="
./build/examples/warped_sim campaign MatrixMul --size 64 \
    --sites 10000 --seed 42 --jobs 0 \
    --checkpoint results/campaign_matrixmul_10k.ckpt \
    --out results/campaign_matrixmul_10k.json \
    | tee results/campaign_matrixmul_10k.txt

echo "All figures regenerated under results/."
