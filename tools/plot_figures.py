#!/usr/bin/env python3
"""Render the figure-bench tables as SVG bar charts.

Parses the text tables the bench binaries print (either a combined
bench_output.txt or the per-figure files tools/reproduce.sh writes
into results/) and emits one SVG per figure. Zero dependencies.

Usage:
    tools/plot_figures.py [bench_output.txt] [-o outdir]
"""

import argparse
import os
import re
import sys

PALETTE = ["#4878a8", "#e49444", "#d1605e", "#85b6b2", "#6a9f58",
           "#e7ca60", "#a87c9f", "#f1a2a9"]


def esc(s):
    return s.replace("&", "&amp;").replace("<", "&lt;")


def grouped_bars(title, categories, series, path, y_label="",
                 percent=False):
    """series: list of (name, [values aligned with categories])."""
    bar_w, gap, group_gap = 14, 2, 18
    n_series = len(series)
    group_w = n_series * (bar_w + gap) + group_gap
    left, top, h = 70, 40, 260
    width = left + len(categories) * group_w + 40
    height = top + h + 90

    vmax = max(max(vals) for _, vals in series) or 1.0
    if percent:
        vmax = max(vmax, 100.0)

    out = [f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
           f'height="{height}" font-family="sans-serif" '
           f'font-size="11">']
    out.append(f'<text x="{left}" y="20" font-size="14" '
               f'font-weight="bold">{esc(title)}</text>')
    # y axis + gridlines
    for i in range(5):
        v = vmax * i / 4
        y = top + h - h * i / 4
        out.append(f'<line x1="{left}" y1="{y:.1f}" '
                   f'x2="{width - 20}" y2="{y:.1f}" stroke="#ddd"/>')
        out.append(f'<text x="{left - 6}" y="{y + 4:.1f}" '
                   f'text-anchor="end">{v:.2f}</text>')
    if y_label:
        out.append(f'<text x="12" y="{top - 10}">{esc(y_label)}</text>')

    for ci, cat in enumerate(categories):
        x0 = left + ci * group_w
        for si, (name, vals) in enumerate(series):
            v = vals[ci]
            bh = h * v / vmax
            x = x0 + si * (bar_w + gap)
            y = top + h - bh
            out.append(
                f'<rect x="{x:.1f}" y="{y:.1f}" width="{bar_w}" '
                f'height="{bh:.1f}" '
                f'fill="{PALETTE[si % len(PALETTE)]}"/>')
        out.append(
            f'<text x="{x0 + group_w / 2 - group_gap / 2:.1f}" '
            f'y="{top + h + 14}" text-anchor="middle" '
            f'transform="rotate(30 {x0 + group_w / 2:.0f} '
            f'{top + h + 14})">{esc(cat)}</text>')

    # legend
    lx = left
    ly = height - 18
    for si, (name, _) in enumerate(series):
        out.append(f'<rect x="{lx}" y="{ly - 10}" width="10" '
                   f'height="10" '
                   f'fill="{PALETTE[si % len(PALETTE)]}"/>')
        out.append(f'<text x="{lx + 14}" y="{ly}">{esc(name)}</text>')
        lx += 14 + 8 * len(name) + 24
    out.append("</svg>")
    with open(path, "w") as f:
        f.write("\n".join(out))
    print(f"wrote {path}")


def parse_table(lines, start, n_value_cols):
    """Parse 'name  v1  v2 ...' rows until a blank/non-matching line."""
    rows = []
    pat = re.compile(r"^(\S+)\s+(.*)$")
    num = re.compile(r"-?\d+(?:\.\d+)?")
    for line in lines[start:]:
        m = pat.match(line.strip())
        if not m:
            break
        vals = num.findall(m.group(2))
        if len(vals) < n_value_cols:
            break
        rows.append((m.group(1), [float(v) for v in
                                  vals[:n_value_cols]]))
    return rows


def section(lines, header):
    for i, line in enumerate(lines):
        if header in line:
            return i
    return None


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("input", nargs="?", default="bench_output.txt")
    ap.add_argument("-o", "--outdir", default="results/plots")
    args = ap.parse_args()

    with open(args.input) as f:
        lines = f.read().splitlines()
    os.makedirs(args.outdir, exist_ok=True)

    # Figure 1: benchmark, 5 bucket percentages.
    i = section(lines, "Figure 1")
    if i is not None:
        j = next(k for k in range(i, len(lines))
                 if lines[k].startswith("benchmark"))
        rows = parse_table(lines, j + 1, 5)
        cats = [r[0] for r in rows]
        buckets = ["1", "2-11", "12-21", "22-31", "32"]
        series = [(buckets[b], [r[1][b] for r in rows])
                  for b in range(5)]
        grouped_bars("Fig 1: issue slots by active-thread count (%)",
                     cats, series,
                     os.path.join(args.outdir, "fig01.svg"),
                     percent=True)

    # Figure 9a: three coverage columns.
    i = section(lines, "Figure 9a")
    if i is not None:
        j = next(k for k in range(i, len(lines))
                 if lines[k].startswith("benchmark"))
        rows = parse_table(lines, j + 1, 3)
        rows = [r for r in rows if r[0] != "Paper:"]
        cats = [r[0] for r in rows]
        names = ["4-lane cluster", "8-lane cluster", "cross mapping"]
        series = [(names[b], [r[1][b] for r in rows])
                  for b in range(3)]
        grouped_bars("Fig 9a: error coverage (%)", cats, series,
                     os.path.join(args.outdir, "fig09a.svg"),
                     percent=True)

    # Figure 9b: four normalized-cycle columns.
    i = section(lines, "Figure 9b")
    if i is not None:
        j = next(k for k in range(i, len(lines))
                 if lines[k].startswith("benchmark"))
        rows = parse_table(lines, j + 1, 4)
        rows = [r for r in rows if r[0] != "Paper"]
        cats = [r[0] for r in rows]
        names = ["q=0", "q=1", "q=5", "q=10"]
        series = [(names[b], [r[1][b] for r in rows])
                  for b in range(4)]
        grouped_bars("Fig 9b: normalized kernel cycles vs ReplayQ size",
                     cats, series,
                     os.path.join(args.outdir, "fig09b.svg"))

    # Figure 10: five scheme columns.
    i = section(lines, "Figure 10")
    if i is not None:
        j = next(k for k in range(i, len(lines))
                 if lines[k].startswith("benchmark"))
        rows = parse_table(lines, j + 1, 5)
        cats = [r[0] for r in rows]
        names = ["Original", "R-Naive", "R-Thread", "DMTR",
                 "Warped-DMR"]
        series = [(names[b], [r[1][b] for r in rows])
                  for b in range(5)]
        grouped_bars("Fig 10: normalized total time by scheme", cats,
                     series, os.path.join(args.outdir, "fig10.svg"))

    # Figure 11: power & energy columns.
    i = section(lines, "Figure 11")
    if i is not None:
        j = next(k for k in range(i, len(lines))
                 if lines[k].startswith("benchmark"))
        rows = parse_table(lines, j + 1, 2)
        rows = [r for r in rows if r[0] != "Paper"]
        cats = [r[0] for r in rows]
        series = [("power", [r[1][0] for r in rows]),
                  ("energy", [r[1][1] for r in rows])]
        grouped_bars("Fig 11: normalized power and energy", cats,
                     series, os.path.join(args.outdir, "fig11.svg"))

    print("done")
    return 0


if __name__ == "__main__":
    sys.exit(main())
