#!/usr/bin/env sh
# Regenerate the golden-trace suite's reference files
# (tests/golden/*.json) after an intentional change to issue order,
# DMR scheduling, the event vocabulary, or the exporters.
#
# Builds test_trace_golden in ./build (configuring if needed), runs it
# in update mode, then re-runs it in check mode so a non-deterministic
# regeneration can never be committed silently. Review the resulting
# golden diff in the commit.
#
# Usage: tools/update_golden_traces.sh [build-dir]
set -eu

cd "$(dirname "$0")/.."
BUILD="${1:-build}"

[ -f "$BUILD/CMakeCache.txt" ] || cmake -B "$BUILD" -S .
cmake --build "$BUILD" --target test_trace_golden -j "$(nproc)"

WARPED_UPDATE_GOLDEN=1 "$BUILD/tests/test_trace_golden"
"$BUILD/tests/test_trace_golden"

echo "golden traces updated; review with: git diff tests/golden"
