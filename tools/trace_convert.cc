/**
 * @file
 * trace_convert — offline binary-trace to Chrome trace_event JSON.
 *
 * Reads a binary trace written by `warped_sim --trace-out file.bin`
 * (format: docs/TRACE_FORMAT.md) and emits the Chrome JSON the
 * simulator would have written directly with a `.json` destination —
 * byte for byte, through the same trace::writeChromeTrace renderer.
 * The golden-trace suite relies on that equivalence: capture
 * binary on the hot path, convert offline, diff against the JSON
 * goldens.
 *
 *     trace_convert IN.bin [-o OUT.json] [--label NAME] [--info]
 *
 * With no -o the JSON goes to stdout. --label overrides the process
 * label stored in the header. --info prints the header (version,
 * event count, ring-dropped count, label) instead of converting.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "trace/binary.hh"
#include "trace/export.hh"

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage: trace_convert IN.bin [-o OUT.json] [--label NAME] "
        "[--info]\n"
        "  Convert a warped binary trace to Chrome trace_event JSON\n"
        "  (byte-identical to warped_sim's direct JSON export).\n"
        "  -o FILE       write JSON here (default: stdout)\n"
        "  --label NAME  override the header's process label\n"
        "  --info        print header summary, don't convert\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string in_path, out_path, label;
    bool have_label = false, info = false;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "-o") {
            if (i + 1 >= argc)
                return usage();
            out_path = argv[++i];
        } else if (a == "--label") {
            if (i + 1 >= argc)
                return usage();
            label = argv[++i];
            have_label = true;
        } else if (a == "--info") {
            info = true;
        } else if (a == "-h" || a == "--help") {
            usage();
            return 0;
        } else if (!a.empty() && a[0] == '-') {
            std::fprintf(stderr, "unknown option %s\n", a.c_str());
            return usage();
        } else if (in_path.empty()) {
            in_path = a;
        } else {
            return usage();
        }
    }
    if (in_path.empty())
        return usage();

    std::ifstream in(in_path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "trace_convert: cannot open %s\n",
                     in_path.c_str());
        return 1;
    }

    warped::trace::BinaryTrace bt;
    std::string err;
    if (!warped::trace::readBinaryTrace(in, bt, err)) {
        std::fprintf(stderr, "trace_convert: %s: %s\n",
                     in_path.c_str(), err.c_str());
        return 1;
    }

    if (info) {
        std::printf("%s: format v%u, %zu events, %llu ring-dropped, "
                    "label \"%s\"\n",
                    in_path.c_str(),
                    unsigned(warped::trace::kBinaryVersion),
                    bt.events.size(),
                    static_cast<unsigned long long>(bt.dropped),
                    bt.label.c_str());
        return 0;
    }

    const std::string &use_label = have_label ? label : bt.label;
    if (out_path.empty()) {
        warped::trace::writeChromeTrace(std::cout, bt.events,
                                        use_label);
        return std::cout ? 0 : 1;
    }
    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
        std::fprintf(stderr, "trace_convert: cannot open %s\n",
                     out_path.c_str());
        return 1;
    }
    warped::trace::writeChromeTrace(out, bt.events, use_label);
    out.flush();
    return out ? 0 : 1;
}
