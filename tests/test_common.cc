/**
 * @file
 * Unit tests: common substrate (LaneMask, Rng, logging, scalar
 * reinterpretation helpers).
 */

#include <gtest/gtest.h>

#include <set>

#include "common/lane_mask.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/types.hh"

using namespace warped;

TEST(LaneMask, FullAndSingle)
{
    EXPECT_EQ(LaneMask::full(32).count(), 32u);
    EXPECT_EQ(LaneMask::full(64).count(), 64u);
    EXPECT_EQ(LaneMask::full(1).raw(), 1ull);
    EXPECT_TRUE(LaneMask::single(5).test(5));
    EXPECT_EQ(LaneMask::single(5).count(), 1u);
    EXPECT_TRUE(LaneMask().none());
}

TEST(LaneMask, SetClearAssign)
{
    LaneMask m;
    m.set(3);
    m.set(17);
    EXPECT_TRUE(m.test(3));
    EXPECT_TRUE(m.test(17));
    EXPECT_EQ(m.count(), 2u);
    m.clear(3);
    EXPECT_FALSE(m.test(3));
    m.assign(3, true);
    EXPECT_TRUE(m.test(3));
    m.assign(3, false);
    EXPECT_FALSE(m.test(3));
}

TEST(LaneMask, BitwiseOps)
{
    const LaneMask a(0b1100), b(0b1010);
    EXPECT_EQ((a & b).raw(), 0b1000ull);
    EXPECT_EQ((a | b).raw(), 0b1110ull);
    EXPECT_EQ((a ^ b).raw(), 0b0110ull);
    EXPECT_EQ((a & ~b).raw(), 0b0100ull);
}

TEST(LaneMask, ClusterBits)
{
    // Lanes 0,1 in cluster 0 and lane 5 in cluster 1 (width 4).
    LaneMask m(0b100011);
    EXPECT_EQ(m.clusterBits(0, 4), 0b0011ull);
    EXPECT_EQ(m.clusterBits(1, 4), 0b0010ull);
    EXPECT_EQ(m.clusterBits(0, 8), 0b100011ull);
}

TEST(LaneMask, AllOfAndLowest)
{
    EXPECT_TRUE(LaneMask::full(32).allOf(32));
    LaneMask m = LaneMask::full(32);
    m.clear(31);
    EXPECT_FALSE(m.allOf(32));
    EXPECT_TRUE(m.allOf(31));
    EXPECT_EQ(LaneMask(0b11000).lowest(), 3u);
}

TEST(LaneMask, ToString)
{
    EXPECT_EQ(LaneMask(0b0011).toString(4), "1100");
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer)
{
    Rng a(1), b(2);
    EXPECT_NE(a.next(), b.next());
}

TEST(Rng, BoundsRespected)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(r.nextBelow(17), 17u);
        const auto v = r.nextRange(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
        const float f = r.nextFloat();
        EXPECT_GE(f, 0.0f);
        EXPECT_LT(f, 1.0f);
    }
}

TEST(Rng, RangeCoversAllValues)
{
    Rng r(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(r.nextBelow(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Logging, PanicThrowsLogicError)
{
    setVerbose(false);
    EXPECT_THROW(warped_panic("boom ", 42), std::logic_error);
}

TEST(Logging, FatalThrowsRuntimeError)
{
    setVerbose(false);
    EXPECT_THROW(warped_fatal("bad config"), std::runtime_error);
}

TEST(Types, FloatRoundTrip)
{
    EXPECT_EQ(asFloat(asReg(1.5f)), 1.5f);
    EXPECT_EQ(asReg(asFloat(0x40490fdbu)), 0x40490fdbu);
    EXPECT_EQ(asSigned(0xffffffffu), -1);
}
