/**
 * @file
 * Unit and property tests: the PDOM SIMT reconvergence stack — the
 * most correctness-critical substrate component.
 */

#include <gtest/gtest.h>

#include "arch/simt_stack.hh"
#include "common/logging.hh"

using namespace warped;
using arch::SimtStack;

namespace {

LaneMask
m(std::uint64_t bits)
{
    return LaneMask(bits);
}

} // namespace

TEST(SimtStack, ResetAndLinearAdvance)
{
    SimtStack s;
    s.reset(LaneMask::full(4), 0);
    EXPECT_FALSE(s.done());
    EXPECT_EQ(s.pc(), 0u);
    EXPECT_EQ(s.activeMask(), LaneMask::full(4));
    s.advanceTo(1);
    EXPECT_EQ(s.pc(), 1u);
    EXPECT_EQ(s.depth(), 1u);
}

TEST(SimtStack, UniformBranches)
{
    SimtStack s;
    s.reset(LaneMask::full(4), 0);
    s.branch(LaneMask::full(4), 10, 1, 20); // all taken
    EXPECT_EQ(s.pc(), 10u);
    s.branch(LaneMask{}, 30, 11, 20); // none taken
    EXPECT_EQ(s.pc(), 11u);
    EXPECT_EQ(s.depth(), 1u);
}

TEST(SimtStack, DivergeThenReconverge)
{
    SimtStack s;
    s.reset(LaneMask::full(4), 5);
    // if-else: taken lanes {0,1} -> 10, fall-through {2,3} -> 6,
    // reconverge at 20.
    s.branch(m(0b0011), 10, 6, 20);
    // Not-taken path executes first (paper Fig 3 order).
    EXPECT_EQ(s.pc(), 6u);
    EXPECT_EQ(s.activeMask(), m(0b1100));
    EXPECT_EQ(s.depth(), 3u);
    s.advanceTo(20); // not-taken path reaches reconvergence
    EXPECT_EQ(s.pc(), 10u);
    EXPECT_EQ(s.activeMask(), m(0b0011));
    s.advanceTo(20); // taken path reaches reconvergence
    EXPECT_EQ(s.pc(), 20u);
    EXPECT_EQ(s.activeMask(), LaneMask::full(4));
    EXPECT_EQ(s.depth(), 1u);
}

TEST(SimtStack, BranchDirectlyToReconvNotPushed)
{
    SimtStack s;
    s.reset(LaneMask::full(4), 0);
    // if-without-else: taken lanes jump straight to the reconvergence
    // point; only the fall-through subgroup is pushed.
    s.branch(m(0b1010), 8, 1, 8);
    EXPECT_EQ(s.depth(), 2u);
    EXPECT_EQ(s.pc(), 1u);
    EXPECT_EQ(s.activeMask(), m(0b0101));
    s.advanceTo(8);
    EXPECT_EQ(s.activeMask(), LaneMask::full(4));
    EXPECT_EQ(s.pc(), 8u);
}

TEST(SimtStack, DivergentLoopDepthIsBounded)
{
    // A loop whose population shrinks by one lane per iteration must
    // not grow the stack with the trip count (trampoline elision).
    SimtStack s;
    s.reset(LaneMask::full(8), 0);
    LaneMask alive = LaneMask::full(8);
    unsigned max_depth = 0;
    for (unsigned it = 0; it < 8; ++it) {
        // Loop header at pc 0: lanes exiting jump to 10 (== reconv).
        LaneMask exit_now;
        exit_now.set(it);
        alive &= ~exit_now;
        // taken = continue at 1; exiters fall to 10? Model the
        // builder's BRZ: taken -> loop exit (10), fallthrough = body.
        s.branch(exit_now, 10, 1, 10);
        max_depth = std::max(max_depth, s.depth());
        if (alive.none())
            break;
        EXPECT_EQ(s.activeMask(), alive);
        // Body runs, loops back to the header.
        s.advanceTo(0);
    }
    EXPECT_EQ(s.pc(), 10u);
    EXPECT_EQ(s.activeMask(), LaneMask::full(8));
    EXPECT_LE(max_depth, 3u);
}

TEST(SimtStack, NestedDivergence)
{
    SimtStack s;
    s.reset(LaneMask::full(8), 0);
    // Outer split: {0..3} taken to 100 (reconv 200).
    s.branch(m(0x0F), 100, 1, 200);
    EXPECT_EQ(s.activeMask(), m(0xF0));
    // Inner split on the fall-through half: {4,5} to 50, reconv 60.
    s.branch(m(0x30), 50, 2, 60);
    EXPECT_EQ(s.activeMask(), m(0xC0));
    EXPECT_EQ(s.pc(), 2u);
    s.advanceTo(60);
    EXPECT_EQ(s.activeMask(), m(0x30));
    EXPECT_EQ(s.pc(), 50u);
    s.advanceTo(60);
    // Inner reconverged; the outer fall-through group resumes at 60.
    EXPECT_EQ(s.activeMask(), m(0xF0));
    s.advanceTo(200);
    EXPECT_EQ(s.activeMask(), m(0x0F));
    EXPECT_EQ(s.pc(), 100u);
    s.advanceTo(200);
    EXPECT_EQ(s.activeMask(), LaneMask::full(8));
}

TEST(SimtStack, ExitThreadsDivergent)
{
    SimtStack s;
    s.reset(LaneMask::full(4), 0);
    s.branch(m(0b0011), 10, 1, 20);
    // The not-taken group {2,3} exits mid-path.
    s.exitThreads(m(0b1100));
    EXPECT_EQ(s.activeMask(), m(0b0011));
    EXPECT_EQ(s.pc(), 10u);
    s.advanceTo(20);
    EXPECT_EQ(s.activeMask(), m(0b0011));
    s.exitThreads(m(0b0011));
    EXPECT_TRUE(s.done());
}

TEST(SimtStack, ExitAllFinishes)
{
    SimtStack s;
    s.reset(LaneMask::full(32), 0);
    s.exitThreads(LaneMask::full(32));
    EXPECT_TRUE(s.done());
}

TEST(SimtStack, TakenMaskMustBeSubset)
{
    setVerbose(false);
    SimtStack s;
    s.reset(m(0b0011), 0);
    EXPECT_THROW(s.branch(m(0b0100), 5, 1, 9), std::logic_error);
}

TEST(SimtStack, DivergenceWithoutReconvPanics)
{
    setVerbose(false);
    SimtStack s;
    s.reset(LaneMask::full(4), 0);
    EXPECT_THROW(s.branch(m(0b0001), 5, 1, isa::kNoPc),
                 std::logic_error);
}

/**
 * Property sweep: every 2-way divergence over every 4-lane population
 * reconverges with the full population and depth 1.
 */
class SimtStackProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SimtStackProperty, AlwaysReconverges)
{
    const unsigned population = GetParam();
    if (population == 0)
        return;
    for (unsigned taken = 0; taken <= 0xF; ++taken) {
        const LaneMask pop(population);
        const LaneMask t = LaneMask(taken) & pop;
        SimtStack s;
        s.reset(pop, 0);
        s.branch(t, 10, 1, 20);
        // Drive every live group to the reconvergence point.
        unsigned guard = 0;
        while (s.pc() != 20 && guard++ < 8)
            s.advanceTo(20);
        EXPECT_EQ(s.pc(), 20u);
        EXPECT_EQ(s.activeMask(), pop) << "taken=" << taken;
        EXPECT_EQ(s.depth(), 1u);
    }
}

INSTANTIATE_TEST_SUITE_P(AllPopulations, SimtStackProperty,
                         ::testing::Range(1u, 16u));
