/**
 * @file
 * Unit tests: the campaign engine stack — Wilson intervals, sample
 * sizing, the fault-site space, outcome classification, and the
 * engine's determinism and checkpoint/resume guarantees.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <set>

#include "common/logging.hh"
#include "fault/campaign_engine.hh"
#include "mem/ecc.hh"
#include "mem/mem_fault.hh"
#include "protection/scheme_registry.hh"
#include "stats/confidence.hh"

using namespace warped;
using namespace warped::fault;

// ---------------------------------------------------------------------
// stats/confidence.hh

TEST(Wilson, KnownValues)
{
    // 9/10 successes at z95: the textbook Wilson interval.
    const auto i = stats::wilsonInterval(9, 10);
    EXPECT_NEAR(i.lo, 0.59585, 1e-4);
    EXPECT_NEAR(i.hi, 0.98212, 1e-4);
}

TEST(Wilson, ZeroSuccessesPinsLowerBound)
{
    const auto i = stats::wilsonInterval(0, 10);
    EXPECT_DOUBLE_EQ(i.lo, 0.0);
    // hi = z^2 / (n + z^2)
    EXPECT_NEAR(i.hi, 0.27753, 1e-4);
}

TEST(Wilson, AllSuccessesPinsUpperBound)
{
    const auto i = stats::wilsonInterval(10, 10);
    EXPECT_NEAR(i.lo, 0.72247, 1e-4);
    EXPECT_DOUBLE_EQ(i.hi, 1.0);
}

TEST(Wilson, NoTrialsIsVacuous)
{
    const auto i = stats::wilsonInterval(0, 0);
    EXPECT_DOUBLE_EQ(i.lo, 0.0);
    EXPECT_DOUBLE_EQ(i.hi, 1.0);
}

TEST(Wilson, IntervalShrinksWithTrials)
{
    const auto small = stats::wilsonInterval(90, 100);
    const auto large = stats::wilsonInterval(9000, 10000);
    EXPECT_LT(large.hi - large.lo, small.hi - small.lo);
    EXPECT_GT(large.lo, 0.89);
    EXPECT_LT(large.hi, 0.91);
}

TEST(SampleSize, ClassicValues)
{
    // The canonical "n = 385 for +-5 % at 95 %".
    EXPECT_EQ(stats::sampleSizeForMargin(0.05), 385u);
    EXPECT_EQ(stats::sampleSizeForMargin(0.01), 9604u);
}

TEST(SampleSize, FinitePopulationCorrection)
{
    // Against a population of 1000, +-5 % needs only 278 draws.
    EXPECT_EQ(stats::sampleSizeForMargin(0.05, stats::kZ95, 0.5, 1000),
              278u);
    // A huge population is indistinguishable from infinite.
    EXPECT_EQ(stats::sampleSizeForMargin(0.05, stats::kZ95, 0.5,
                                         std::uint64_t{1} << 40),
              385u);
}

// ---------------------------------------------------------------------
// fault/site_space.hh

namespace {

SiteSpaceConfig
smallSpaceCfg()
{
    SiteSpaceConfig sc;
    sc.numSms = 2;
    sc.warpSize = 4;
    sc.bits = 8;
    sc.cycleWindows = 16;
    return sc;
}

} // namespace

TEST(SiteSpace, SizeArithmetic)
{
    const FaultSiteSpace space(smallSpaceCfg(), 1000);
    // place = 2 SMs * 4 lanes * 8 bits * 1 unit = 64.
    // transient = 64 * 16 windows; each stuck-at kind = 64.
    EXPECT_EQ(space.size(), 64u * 16 + 64 + 64);
    EXPECT_EQ(space.cycleWindows(), 16u);
}

TEST(SiteSpace, DecodeCoversEveryAxisValue)
{
    const FaultSiteSpace space(smallSpaceCfg(), 1000);
    std::set<std::tuple<int, unsigned, unsigned, unsigned, Cycle>> seen;
    for (std::uint64_t i = 0; i < space.size(); ++i) {
        const auto s = space.site(i);
        EXPECT_LT(s.sm, 2u);
        EXPECT_LT(s.lane, 4u);
        EXPECT_LT(s.bit, 8u);
        EXPECT_FALSE(s.unit.has_value());
        if (s.kind == FaultKind::TransientBitFlip) {
            EXPECT_EQ(s.cycleBegin, s.cycleEnd);
            EXPECT_LT(s.cycleEnd, 1000u);
        } else {
            EXPECT_EQ(s.cycleBegin, 0u);
            EXPECT_EQ(s.cycleEnd, ~Cycle{0});
        }
        seen.insert({static_cast<int>(s.kind), s.sm, s.lane, s.bit,
                     s.cycleBegin});
    }
    // The decode is a bijection onto the axis product.
    EXPECT_EQ(seen.size(), space.size());
}

TEST(SiteSpace, StuckAtOnlySpaceHasNoWindowAxis)
{
    auto sc = smallSpaceCfg();
    sc.kinds = {FaultKind::StuckAtOne};
    const FaultSiteSpace space(sc, /*span=*/0);
    EXPECT_EQ(space.size(), 64u);
}

TEST(SiteSpace, SampleIsDeterministicAndOrderFree)
{
    const FaultSiteSpace space(smallSpaceCfg(), 1000);
    // Draw i depends only on (seed, i): any permutation of evaluation
    // order — i.e. any --jobs value — sees the same sites.
    std::vector<std::uint64_t> fwd, bwd;
    for (std::uint64_t i = 0; i < 200; ++i)
        fwd.push_back(space.sampleIndex(42, i));
    for (std::uint64_t i = 200; i-- > 0;)
        bwd.push_back(space.sampleIndex(42, i));
    for (std::uint64_t i = 0; i < 200; ++i) {
        EXPECT_EQ(fwd[i], bwd[199 - i]);
        EXPECT_LT(fwd[i], space.size());
    }
    // A different master seed gives a different sequence.
    bool differs = false;
    for (std::uint64_t i = 0; i < 200 && !differs; ++i)
        differs = space.sampleIndex(43, i) != fwd[i];
    EXPECT_TRUE(differs);
}

TEST(SiteSpace, SignatureTracksAxes)
{
    const FaultSiteSpace a(smallSpaceCfg(), 1000);
    const FaultSiteSpace same(smallSpaceCfg(), 1000);
    EXPECT_EQ(a.signature(), same.signature());

    auto sc = smallSpaceCfg();
    sc.kinds = {FaultKind::StuckAtOne};
    EXPECT_NE(FaultSiteSpace(sc, 1000).signature(), a.signature());
    EXPECT_NE(FaultSiteSpace(smallSpaceCfg(), 999).signature(),
              a.signature());
}

// ---------------------------------------------------------------------
// outcome classification

TEST(Outcome, ClassificationPriority)
{
    // Never-activated is Masked no matter what else happened.
    EXPECT_EQ(classifyOutcome(false, false, false, true),
              OutcomeClass::Masked);
    // Detection outranks hang and corruption.
    EXPECT_EQ(classifyOutcome(true, true, true, false),
              OutcomeClass::Detected);
    // An undetected hang is a DUE even if the output also differs.
    EXPECT_EQ(classifyOutcome(true, false, true, false),
              OutcomeClass::Due);
    // Wrong output with no alarm is the SDC case.
    EXPECT_EQ(classifyOutcome(true, false, false, false),
              OutcomeClass::Sdc);
    // Activated but architecturally masked.
    EXPECT_EQ(classifyOutcome(true, false, false, true),
              OutcomeClass::Masked);
}

TEST(Outcome, CountsAndRates)
{
    OutcomeCounts c;
    c.add(OutcomeClass::Masked, false);
    c.add(OutcomeClass::Masked, true);
    c.add(OutcomeClass::Detected, true);
    c.add(OutcomeClass::Detected, true);
    c.add(OutcomeClass::Detected, true);
    c.add(OutcomeClass::Sdc, true);
    EXPECT_EQ(c.total(), 6u);
    EXPECT_EQ(c.notActivated, 1u);
    EXPECT_DOUBLE_EQ(c.coverage(), 3.0 / 6.0);
    EXPECT_DOUBLE_EQ(c.detectionRate(), 3.0 / 4.0);
    const auto ci = c.coverageCi();
    EXPECT_LT(ci.lo, 0.5);
    EXPECT_GT(ci.hi, 0.5);
}

TEST(Outcome, LatencyBucketsAreLog2)
{
    EXPECT_EQ(latencyBucket(0), 0u);
    EXPECT_EQ(latencyBucket(1), 1u);
    EXPECT_EQ(latencyBucket(2), 2u);
    EXPECT_EQ(latencyBucket(3), 2u);
    EXPECT_EQ(latencyBucket(4), 3u);
    EXPECT_EQ(latencyBucket(1023), 10u);
    EXPECT_EQ(latencyBucket(~std::uint64_t{0}), kLatencyBuckets - 1);
}

TEST(Outcome, EccCorrectedMemoryFaultsFoldAsMaskedNotRecovered)
{
    // ECC / DMR interplay at the campaign boundary. The site space
    // deliberately contains only execution-unit faults (memory is
    // SECDED-protected per the paper's model), so a memory-bit upset
    // enters a campaign only through the "never activated" door: ECC
    // corrects the word before it can reach an execution unit. Fold a
    // batch of such sites into OutcomeCounts with the recovery-aware
    // classifier and check they land in masked — recovered stays 0,
    // and the coverage Wilson machinery is untouched by them.
    mem::EccMemory ecc(32);
    OutcomeCounts c;
    for (unsigned site = 0; site < 8; ++site) {
        const Addr addr = 4 * site;
        const std::uint32_t v = 0xa5a50000u + site;
        ecc.writeWord(addr, v);
        ecc.injectBitFlip(addr, (site * 7) % mem::Secded::kCodeBits);
        mem::Secded::Status st = mem::Secded::Status::Ok;
        const bool outputOk = ecc.readWord(addr, &st) == v;
        ASSERT_TRUE(outputOk);
        ASSERT_EQ(st, mem::Secded::Status::Corrected);
        // Corrected before any execution unit consumed it: the DMR
        // checker never fires and the campaign sees a dormant site,
        // regardless of the recovered_clean flag the engine computes.
        const auto cls = classifyOutcome(/*activated=*/false,
                                         /*detected=*/false,
                                         /*hung=*/false, outputOk,
                                         /*recovered_clean=*/true);
        EXPECT_EQ(cls, OutcomeClass::Masked);
        c.add(cls, /*activated=*/false);
    }
    EXPECT_EQ(c.total(), 8u);
    EXPECT_EQ(c.masked, 8u);
    EXPECT_EQ(c.notActivated, 8u);
    EXPECT_EQ(c.recovered, 0u);
    EXPECT_EQ(c.detected, 0u);
    EXPECT_EQ(c.sdc, 0u);
    // All-masked campaigns have zero coverage and a vacuously perfect
    // detection rate (no consequential runs); recovery must not
    // perturb either.
    EXPECT_DOUBLE_EQ(c.coverage(), 0.0);
    EXPECT_DOUBLE_EQ(c.detectionRate(), 1.0);
}

// ---------------------------------------------------------------------
// the engine: determinism, resume, and protection ablation

namespace {

EngineConfig
scanEngineCfg()
{
    EngineConfig ec;
    ec.workload = "SCAN";
    ec.gpu = arch::GpuConfig::testDefault();
    ec.space.cycleWindows = 64;
    ec.sites = 30;
    ec.seed = 7;
    return ec;
}

WorkloadFactory
scanFactory()
{
    return [] { return workloads::makeScan(2); };
}

} // namespace

TEST(CampaignEngine, ReportIsIdenticalForAnyJobsCount)
{
    auto ec = scanEngineCfg();
    ec.jobs = 1;
    const auto seq = CampaignEngine(scanFactory(), ec).run().toJson();
    ec.jobs = 3;
    const auto par = CampaignEngine(scanFactory(), ec).run().toJson();
    EXPECT_EQ(seq, par);
}

TEST(CampaignEngine, ResumedCampaignMatchesUninterrupted)
{
    const std::string ckpt =
        testing::TempDir() + "warped_campaign_ckpt.json";
    std::remove(ckpt.c_str());

    auto ec = scanEngineCfg();
    ec.jobs = 2;
    const auto full = CampaignEngine(scanFactory(), ec).run();

    // Interrupt after one 10-run chunk...
    ec.checkpointPath = ckpt;
    ec.checkpointEvery = 10;
    ec.stopAfterChunks = 1;
    const auto partial = CampaignEngine(scanFactory(), ec).run();
    EXPECT_EQ(partial.sampled, 10u);

    // ...then resume with a different worker count.
    ec.stopAfterChunks = 0;
    ec.jobs = 1;
    const auto resumed = CampaignEngine(scanFactory(), ec).run();
    EXPECT_EQ(resumed.sampled, full.sampled);
    EXPECT_EQ(resumed.toJson(), full.toJson());
    std::remove(ckpt.c_str());
}

TEST(CampaignEngine, MismatchedCheckpointIsRefused)
{
    const std::string ckpt =
        testing::TempDir() + "warped_campaign_ckpt2.json";
    std::remove(ckpt.c_str());

    auto ec = scanEngineCfg();
    ec.checkpointPath = ckpt;
    ec.checkpointEvery = 10;
    ec.stopAfterChunks = 1;
    CampaignEngine(scanFactory(), ec).run();

    // A different campaign seed invalidates the state file: the stale
    // checkpoint is ignored and the campaign restarts from zero (a
    // resume would have carried the 10 prior runs to 20).
    ec.seed = 8;
    const auto restarted = CampaignEngine(scanFactory(), ec).run();
    EXPECT_EQ(restarted.sampled, 10u);
    std::remove(ckpt.c_str());
}

namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream f(path);
    std::string text((std::istreambuf_iterator<char>(f)),
                     std::istreambuf_iterator<char>());
    return text;
}

void
spill(const std::string &path, const std::string &text)
{
    std::ofstream f(path);
    f << text;
}

} // namespace

TEST(CampaignEngine, TornCheckpointIsAHardError)
{
    const std::string ckpt =
        testing::TempDir() + "warped_campaign_torn.json";
    std::remove(ckpt.c_str());

    auto ec = scanEngineCfg();
    ec.checkpointPath = ckpt;
    ec.checkpointEvery = 10;
    ec.stopAfterChunks = 1;
    CampaignEngine(scanFactory(), ec).run();

    // The previous writer "crashed mid-write": the document loses
    // its tail, including the closing brace. Resuming must refuse
    // loudly — silently restarting from zero would destroy the very
    // progress checkpointing protects.
    const auto text = slurp(ckpt);
    ASSERT_FALSE(text.empty());
    spill(ckpt, text.substr(0, text.size() / 2));

    ec.stopAfterChunks = 0;
    EXPECT_THROW(CampaignEngine(scanFactory(), ec).run(),
                 CheckpointError);
    std::remove(ckpt.c_str());
}

TEST(CampaignEngine, TamperedCheckpointFailsItsFingerprint)
{
    const std::string ckpt =
        testing::TempDir() + "warped_campaign_tamper.json";
    std::remove(ckpt.c_str());

    auto ec = scanEngineCfg();
    ec.checkpointPath = ckpt;
    ec.checkpointEvery = 10;
    ec.stopAfterChunks = 1;
    CampaignEngine(scanFactory(), ec).run();

    // Structurally intact JSON with one flipped digit: the payload
    // fingerprint catches what the closing-brace check cannot.
    auto text = slurp(ckpt);
    const auto pos = text.find("\"campaign.sampled\": 10");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, 22, "\"campaign.sampled\": 11");
    spill(ckpt, text);

    ec.stopAfterChunks = 0;
    EXPECT_THROW(CampaignEngine(scanFactory(), ec).run(),
                 CheckpointError);
    std::remove(ckpt.c_str());
}

TEST(CampaignEngine, CheckpointEveryZeroIsClampedNotFatal)
{
    // The engine guards the degenerate chunk size (the CLI rejects
    // it outright at parse time): a zero chunk would never fold any
    // runs, spinning forever.
    auto ec = scanEngineCfg();
    ec.checkpointEvery = 0;
    const auto rep = CampaignEngine(scanFactory(), ec).run();
    EXPECT_EQ(rep.sampled, 30u);
    EXPECT_EQ(rep.toJson(),
              CampaignEngine(scanFactory(), scanEngineCfg())
                  .run()
                  .toJson());
}

TEST(CampaignEngine, CheckpointEveryBeyondPlanIsClamped)
{
    auto ec = scanEngineCfg();
    ec.checkpointEvery = 1u << 20; // far beyond the 30 planned runs
    const auto rep = CampaignEngine(scanFactory(), ec).run();
    EXPECT_EQ(rep.sampled, 30u);
    EXPECT_EQ(rep.toJson(),
              CampaignEngine(scanFactory(), scanEngineCfg())
                  .run()
                  .toJson());
}

TEST(CampaignEngine, DerivesSampleSizeFromMargin)
{
    auto ec = scanEngineCfg();
    ec.sites = 0;
    ec.marginOfError = 0.2; // tiny campaign: n0 = 25 (pre-correction)
    ec.space.kinds = {FaultKind::StuckAtOne};
    CampaignEngine eng(scanFactory(), ec);
    const auto rep = eng.run();
    EXPECT_EQ(eng.plannedSites(),
              stats::sampleSizeForMargin(0.2, stats::kZ95, 0.5,
                                         rep.spaceSize));
    EXPECT_EQ(rep.sampled, eng.plannedSites());
}

TEST(CampaignEngine, ProtectionTurnsSdcIntoDetection)
{
    auto ec = scanEngineCfg();
    ec.space.kinds = {FaultKind::StuckAtOne};
    ec.sites = 12;

    const auto prot = CampaignEngine(scanFactory(), ec).run();
    EXPECT_EQ(prot.overall.sdc, 0u);
    EXPECT_GT(prot.overall.detected, 0u);
    EXPECT_GT(prot.latencyCount, 0u);
    // Comparator latency is far below kernel-end detection.
    EXPECT_LT(prot.meanDetectionLatency(),
              double(prot.kernelLengthSum) / prot.latencyCount);

    ec.dmr = dmr::DmrConfig::off();
    const auto unprot = CampaignEngine(scanFactory(), ec).run();
    EXPECT_EQ(unprot.overall.detected, 0u);
    EXPECT_GT(unprot.overall.sdc + unprot.overall.due, 0u);
}

TEST(CampaignEngine, JsonCarriesTheHeadlineMetrics)
{
    auto ec = scanEngineCfg();
    ec.sites = 10;
    const auto json = CampaignEngine(scanFactory(), ec).run().toJson();
    EXPECT_NE(json.find("\"campaign.sampled\": 10"), std::string::npos);
    EXPECT_NE(json.find("campaign.coverage"), std::string::npos);
    EXPECT_NE(json.find("campaign.coverage.wilson_lo"),
              std::string::npos);
    EXPECT_NE(json.find("campaign.space.size"), std::string::npos);
}

// ---------------------------------------------------------------------
// the memory fault domain: site-space axes, classification, and
// engine invariants with ECC in the loop

namespace {

SiteSpaceConfig
memSpaceCfg()
{
    auto sc = smallSpaceCfg();
    sc.memEnabled = true;
    sc.memWords = 24;
    sc.memBits = 32;
    sc.memBanks = 4;
    sc.memRowWords = 3;
    return sc;
}

} // namespace

TEST(MemSiteSpace, MemoryBlockAppendsAfterTheExecBlock)
{
    const FaultSiteSpace execOnly(smallSpaceCfg(), 1000);
    const FaultSiteSpace both(memSpaceCfg(), 1000);
    // 3 kinds * 24 words * 32 bits * 16 windows.
    EXPECT_EQ(both.memSites(), 3u * 24 * 32 * 16);
    EXPECT_EQ(both.execSites(), execOnly.size());
    EXPECT_EQ(both.size(), both.execSites() + both.memSites());
    // The exec block's index layout is untouched by the appended
    // memory block: pre-memory indices decode to the same sites.
    for (std::uint64_t i = 0; i < execOnly.size(); i += 97) {
        const auto a = execOnly.site(i);
        const auto b = both.site(i);
        EXPECT_FALSE(b.isMemory);
        EXPECT_EQ(a.kind, b.kind);
        EXPECT_EQ(a.sm, b.sm);
        EXPECT_EQ(a.lane, b.lane);
        EXPECT_EQ(a.bit, b.bit);
        EXPECT_EQ(a.cycleBegin, b.cycleBegin);
    }
}

TEST(MemSiteSpace, DecodeCoversEveryMemoryAxisValue)
{
    const FaultSiteSpace space(memSpaceCfg(), 1000);
    std::set<std::tuple<int, Addr, unsigned, Cycle>> seen;
    for (std::uint64_t i = space.execSites(); i < space.size(); ++i) {
        const auto s = space.site(i);
        ASSERT_TRUE(s.isMemory);
        EXPECT_LT(s.memAddr, 24u * 4);
        EXPECT_EQ(s.memAddr % 4, 0u);
        EXPECT_LT(s.bit, 32u);
        EXPECT_EQ(s.cycleBegin, s.cycleEnd);
        EXPECT_LT(s.cycleEnd, 1000u);
        // Geometry annotation is consistent with the word index:
        // words fill a row (memRowWords), rows interleave over banks.
        const Addr word = s.memAddr / 4;
        EXPECT_EQ(s.memCol, word % 3);
        EXPECT_EQ(s.memBank, (word / 3) % 4);
        EXPECT_EQ(s.memRow, word / 3 / 4);
        seen.insert({static_cast<int>(s.memKind), s.memAddr, s.bit,
                     s.cycleBegin});
    }
    EXPECT_EQ(seen.size(), space.memSites());
}

TEST(MemSiteSpace, MemOnlySpaceDropsTheExecBlock)
{
    auto sc = memSpaceCfg();
    sc.execEnabled = false;
    const FaultSiteSpace space(sc, 1000);
    EXPECT_EQ(space.execSites(), 0u);
    EXPECT_EQ(space.size(), space.memSites());
    EXPECT_TRUE(space.site(0).isMemory);
}

TEST(MemSiteSpace, SignatureIgnoresMemoryAxesUntilEnabled)
{
    // Zero-diff guarantee: pre-memory checkpoints must keep
    // validating, so disabled memory knobs cannot perturb the hash.
    const FaultSiteSpace base(smallSpaceCfg(), 1000);
    auto sc = smallSpaceCfg();
    sc.memWords = 999;
    sc.memBanks = 2;
    EXPECT_EQ(FaultSiteSpace(sc, 1000).signature(), base.signature());

    // Enabled, every memory axis is load-bearing.
    const FaultSiteSpace mem(memSpaceCfg(), 1000);
    EXPECT_NE(mem.signature(), base.signature());
    auto mc = memSpaceCfg();
    mc.memWords = 25;
    EXPECT_NE(FaultSiteSpace(mc, 1000).signature(), mem.signature());
    mc = memSpaceCfg();
    mc.memKinds = {mem::MemFaultKind::Bit};
    EXPECT_NE(FaultSiteSpace(mc, 1000).signature(), mem.signature());
    mc = memSpaceCfg();
    mc.execEnabled = false;
    EXPECT_NE(FaultSiteSpace(mc, 1000).signature(), mem.signature());
}

TEST(MemSiteSpace, BadMemoryAxesPanic)
{
    setVerbose(false);
    auto sc = memSpaceCfg();
    sc.memWords = 0; // engine fills this in; a space can't be built
    EXPECT_THROW(FaultSiteSpace(sc, 1000), std::logic_error);
    sc = memSpaceCfg();
    sc.memBits = 33;
    EXPECT_THROW(FaultSiteSpace(sc, 1000), std::logic_error);
    sc = smallSpaceCfg();
    sc.execEnabled = false; // memEnabled defaults false: no domain
    EXPECT_THROW(FaultSiteSpace(sc, 1000), std::logic_error);
}

TEST(MemOutcome, ClassificationPriority)
{
    using fault::classifyMemOutcome;
    // Never-consumed dominates everything: a corrupted cell nobody
    // read is Masked even if the codec would have flagged it.
    EXPECT_EQ(classifyMemOutcome(false, true, true, true, true, false),
              OutcomeClass::Masked);
    // An uncorrectable read is the machine-check DUE, outranking
    // detection and corruption.
    EXPECT_EQ(classifyMemOutcome(true, true, false, true, false, false),
              OutcomeClass::Due);
    // A hang is a DUE too.
    EXPECT_EQ(classifyMemOutcome(true, false, false, false, true, true),
              OutcomeClass::Due);
    // DMR detection (e.g. a both-domains campaign where the load fed
    // an address computation) outranks output corruption.
    EXPECT_EQ(classifyMemOutcome(true, false, false, true, false,
                                 false),
              OutcomeClass::Detected);
    // Wrong output with no alarm anywhere: the memory SDC.
    EXPECT_EQ(classifyMemOutcome(true, false, false, false, false,
                                 false),
              OutcomeClass::Sdc);
    // Corrected reads with clean output land in the ECC bucket...
    EXPECT_EQ(classifyMemOutcome(true, false, true, false, false, true),
              OutcomeClass::EccCorrected);
    // ...and consumed-but-harmless corruption is architectural
    // masking.
    EXPECT_EQ(classifyMemOutcome(true, false, false, false, false,
                                 true),
              OutcomeClass::Masked);
}

TEST(MemOutcome, EccCorrectedCountsTowardTheProtectionSurface)
{
    OutcomeCounts c;
    c.add(OutcomeClass::EccCorrected, true);
    c.add(OutcomeClass::EccCorrected, true);
    c.add(OutcomeClass::Detected, true);
    c.add(OutcomeClass::Sdc, true);
    EXPECT_EQ(c.eccCorrected, 2u);
    EXPECT_EQ(c.total(), 4u);
    // Corrected runs were detected-and-repaired by the ECC
    // controller: they join the combined DMR+ECC coverage numerator.
    EXPECT_DOUBLE_EQ(c.coverage(), 3.0 / 4.0);
    EXPECT_DOUBLE_EQ(c.detectionRate(), 3.0 / 4.0);
}

TEST(MemOutcome, NoSchemeCoversMemoryDataFaults)
{
    // The paper's scoping argument, as an exhaustive registry fact:
    // redundant execution re-consumes the same loaded value, so
    // every execution-side scheme is blind to memory-data faults.
    for (const auto id : protection::allSchemes())
        EXPECT_FALSE(protection::schemeCoversMemory(id))
            << protection::schemeCliName(id);
}

namespace {

EngineConfig
memEngineCfg(arch::EccKind ecc)
{
    auto ec = scanEngineCfg();
    ec.gpu.memModel = arch::MemModel::Banked;
    ec.gpu.eccKind = ecc;
    ec.space.memEnabled = true; // memWords filled from the footprint
    ec.sites = 40;
    ec.seed = 17;
    return ec;
}

} // namespace

TEST(MemCampaign, OutcomeSumInvariantHoldsAcrossSeedsAndCodecs)
{
    // Every sampled site lands in exactly one class, whatever mix of
    // exec and memory sites the seed draws and whatever the codec.
    for (const auto ecc :
         {arch::EccKind::None, arch::EccKind::Secded,
          arch::EccKind::Chipkill}) {
        for (const std::uint64_t seed : {3ull, 9ull, 17ull}) {
            auto ec = memEngineCfg(ecc);
            ec.seed = seed;
            ec.jobs = 2;
            const auto rep = CampaignEngine(scanFactory(), ec).run();
            const auto &o = rep.overall;
            EXPECT_EQ(o.masked + o.detected + o.recovered +
                          o.eccCorrected + o.sdc + o.due,
                      rep.sampled);
            EXPECT_TRUE(rep.memEnabled);
            EXPECT_GT(rep.spaceSize, 0u);
            // Per-kind splits re-sum to the overall tally.
            std::uint64_t split = 0;
            for (const auto &[k, c] : rep.byKind)
                split += c.total();
            for (const auto &[k, c] : rep.byMemKind)
                split += c.total();
            EXPECT_EQ(split, rep.sampled);
        }
    }
}

TEST(MemCampaign, ReportIsDeterministicAndJobCountFree)
{
    auto ec = memEngineCfg(arch::EccKind::Secded);
    ec.jobs = 1;
    const auto seq = CampaignEngine(scanFactory(), ec).run().toJson();
    const auto again = CampaignEngine(scanFactory(), ec).run().toJson();
    EXPECT_EQ(seq, again);
    ec.jobs = 8;
    const auto par = CampaignEngine(scanFactory(), ec).run().toJson();
    EXPECT_EQ(seq, par);
    // The memory gauges actually made it into the report.
    EXPECT_NE(seq.find("campaign.ecc.corrected_rate"),
              std::string::npos);
    EXPECT_NE(seq.find("campaign.escaped_rate"), std::string::npos);
}

TEST(MemCampaign, SecdedAbsorbsSingleBitsThatEscapeUnderNoEcc)
{
    // The qualitative ECC story at campaign level, on a mem-only
    // space restricted to single-bit upsets: with no ECC some
    // consumed upsets corrupt the output (SDC); with SECDED every
    // consumed single-bit upset is corrected and none escape.
    auto ec = memEngineCfg(arch::EccKind::None);
    ec.space.execEnabled = false;
    ec.space.memKinds = {mem::MemFaultKind::Bit};
    ec.sites = 60;
    const auto none = CampaignEngine(scanFactory(), ec).run();
    EXPECT_EQ(none.overall.eccCorrected, 0u);
    EXPECT_GT(none.overall.sdc, 0u);

    ec.gpu.eccKind = arch::EccKind::Secded;
    const auto sec = CampaignEngine(scanFactory(), ec).run();
    EXPECT_GT(sec.overall.eccCorrected, 0u);
    EXPECT_EQ(sec.overall.sdc, 0u);
    EXPECT_EQ(sec.overall.due, 0u);
    // Identical site draws (same seed/space): activation parity.
    EXPECT_EQ(sec.sampled, none.sampled);
}

TEST(MemCampaign, ResumedMemoryCampaignMatchesUninterrupted)
{
    // Checkpoint/resume replays memory-site sampling identically
    // mid-campaign: same invariant as the exec-only resume test, on
    // a mixed-domain space with a codec in the loop.
    const std::string ckpt =
        testing::TempDir() + "warped_campaign_mem_ckpt.json";
    std::remove(ckpt.c_str());

    auto ec = memEngineCfg(arch::EccKind::Chipkill);
    ec.jobs = 2;
    const auto full = CampaignEngine(scanFactory(), ec).run();

    ec.checkpointPath = ckpt;
    ec.checkpointEvery = 10;
    ec.stopAfterChunks = 1;
    const auto partial = CampaignEngine(scanFactory(), ec).run();
    EXPECT_EQ(partial.sampled, 10u);

    ec.stopAfterChunks = 0;
    ec.jobs = 1;
    const auto resumed = CampaignEngine(scanFactory(), ec).run();
    EXPECT_EQ(resumed.sampled, full.sampled);
    EXPECT_EQ(resumed.toJson(), full.toJson());
    std::remove(ckpt.c_str());
}

TEST(MemCampaign, CodecChangeInvalidatesTheCheckpoint)
{
    // The codec participates in the config signature: a checkpoint
    // written under SECDED must not seed a chipkill campaign.
    const std::string ckpt =
        testing::TempDir() + "warped_campaign_mem_ckpt2.json";
    std::remove(ckpt.c_str());

    auto ec = memEngineCfg(arch::EccKind::Secded);
    ec.checkpointPath = ckpt;
    ec.checkpointEvery = 10;
    ec.stopAfterChunks = 1;
    CampaignEngine(scanFactory(), ec).run();

    ec.gpu.eccKind = arch::EccKind::Chipkill;
    const auto restarted = CampaignEngine(scanFactory(), ec).run();
    EXPECT_EQ(restarted.sampled, 10u); // restarted, not resumed to 20
    std::remove(ckpt.c_str());
}
