/**
 * @file
 * Unit tests for the experiment plane introduced with the
 * launch/aggregation refactor: sim::RunPool (determinism, exception
 * propagation), stats::LaunchAggregator (folding hand-built SmStats
 * without any Sm), seed derivation, and the flagship property — a
 * parallel fault campaign is bit-identical to a sequential one.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "common/logging.hh"
#include "common/rng.hh"
#include "fault/campaign.hh"
#include "sim/run_pool.hh"
#include "stats/launch_aggregator.hh"
#include "workloads/workload.hh"

using namespace warped;

TEST(RunPool, DefaultJobsIsAtLeastOne)
{
    EXPECT_GE(sim::RunPool::defaultJobs(), 1u);
    sim::RunPool pool; // kHardwareConcurrency
    EXPECT_GE(pool.jobs(), 1u);
}

TEST(RunPool, AbsurdJobCountsClampToTheCeiling)
{
    // strtoul("-3") wraps to ~4 billion; the ctor must not try to
    // spawn that many threads.
    sim::RunPool pool(4294967293u);
    EXPECT_EQ(pool.jobs(), sim::RunPool::kMaxJobs);
}

TEST(RunPool, ParallelForFillsEverySlotInIndexOrder)
{
    for (unsigned jobs : {1u, 2u, 8u}) {
        sim::RunPool pool(jobs);
        std::vector<std::size_t> out(257, 0);
        pool.parallelFor(out.size(),
                         [&](std::size_t i) { out[i] = i * i; });
        for (std::size_t i = 0; i < out.size(); ++i)
            EXPECT_EQ(out[i], i * i);
    }
}

TEST(RunPool, BoundedQueueHandlesManyMoreTasksThanWorkers)
{
    sim::RunPool pool(2);
    std::atomic<std::uint64_t> sum{0};
    const std::size_t n = 1000; // far beyond the queue capacity
    for (std::size_t i = 0; i < n; ++i)
        pool.submit([&sum, i] { sum += i; });
    pool.wait();
    EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(RunPool, WaitRethrowsTheFirstTaskError)
{
    sim::RunPool pool(4);
    pool.parallelFor(8, [](std::size_t) {});
    pool.wait(); // no error: returns

    for (std::size_t i = 0; i < 8; ++i)
        pool.submit([i] {
            if (i == 3)
                throw std::runtime_error("boom");
        });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // The pool survives: it keeps accepting work afterwards.
    std::atomic<int> ran{0};
    pool.submit([&] { ++ran; });
    pool.wait();
    EXPECT_EQ(ran.load(), 1);
}

TEST(RunPool, InlineModeDrainsPastAThrowingTask)
{
    // jobs == 1 must keep the threaded failure contract: a throwing
    // task fails only its own slot, every queued run after it still
    // executes, and the first exception surfaces from wait().
    // (Historically the throw escaped from submit()/parallelFor and
    // the rest of the batch was silently lost.)
    sim::RunPool pool(1);
    std::vector<int> out(8, 0);
    std::string what;
    try {
        pool.parallelFor(out.size(), [&](std::size_t i) {
            if (i == 2)
                throw std::runtime_error("first");
            if (i == 5)
                throw std::runtime_error("second");
            out[i] = 1;
        });
        FAIL() << "parallelFor should have rethrown";
    } catch (const std::runtime_error &e) {
        what = e.what();
    }
    // The *first* error propagated, after the whole batch drained:
    // the non-throwing slots — including those after the throws —
    // all completed.
    EXPECT_EQ(what, "first");
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i == 2 || i == 5 ? 0 : 1) << "slot " << i;

    sim::RunPool pool2(1);
    bool later_ran = false;
    EXPECT_THROW(pool2.parallelFor(4,
                                   [&](std::size_t i) {
                                       if (i == 0)
                                           throw std::runtime_error(
                                               "boom");
                                       if (i == 3)
                                           later_ran = true;
                                   }),
                 std::runtime_error);
    EXPECT_TRUE(later_ran);
    const auto c = pool2.counters();
    EXPECT_EQ(c.submitted, 4u);
    EXPECT_EQ(c.completed, 4u);
    EXPECT_EQ(c.failed, 1u);
    // The error was consumed; the pool keeps working.
    pool2.parallelFor(2, [](std::size_t) {});

    // submit()-then-wait() follows the same contract.
    sim::RunPool pool3(1);
    int ran = 0;
    pool3.submit([] { throw std::runtime_error("boom"); });
    pool3.submit([&] { ++ran; });
    EXPECT_THROW(pool3.wait(), std::runtime_error);
    EXPECT_EQ(ran, 1);
    pool3.wait(); // error consumed: returns
}

TEST(RunPool, SingleJobRunsInline)
{
    sim::RunPool pool(1);
    const auto caller = std::this_thread::get_id();
    std::thread::id seen;
    pool.submit([&] { seen = std::this_thread::get_id(); });
    pool.wait();
    EXPECT_EQ(seen, caller);
}

TEST(Rng, DeriveSeedIsDeterministicAndStreamSeparated)
{
    EXPECT_EQ(deriveSeed(42, 0), deriveSeed(42, 0));
    EXPECT_NE(deriveSeed(42, 0), deriveSeed(42, 1));
    EXPECT_NE(deriveSeed(42, 0), deriveSeed(43, 0));
    // Consecutive streams give uncorrelated first draws.
    Rng a(deriveSeed(7, 0)), b(deriveSeed(7, 1));
    EXPECT_NE(a.next(), b.next());
}

namespace {

constexpr unsigned kWarp = 4;
constexpr unsigned kRegs = 8;

sm::SmStats
makeStats()
{
    return sm::SmStats(kWarp, kRegs);
}

} // namespace

TEST(LaunchAggregator, FoldsTwoHandBuiltSmStats)
{
    auto st1 = makeStats();
    st1.issuedWarpInstrs = 10;
    st1.issuedThreadInstrs = 40;
    st1.busyCycles = 9;
    st1.cycles = 20;
    st1.blocksRetired = 2;
    st1.activeCountHist.add(4, 6);
    st1.activeCountHist.add(2, 4);
    st1.unitIssues[0] = 8;
    st1.unitThreadExecs[0] = 30;
    // One same-type run of length 3 for unit 0.
    st1.typeRuns.observe(0);
    st1.typeRuns.observe(0);
    st1.typeRuns.observe(0);

    auto st2 = makeStats();
    st2.issuedWarpInstrs = 5;
    st2.issuedThreadInstrs = 20;
    st2.busyCycles = 5;
    st2.cycles = 12;
    st2.blocksRetired = 1;
    st2.activeCountHist.add(4, 5);
    st2.unitIssues[0] = 5;
    st2.unitThreadExecs[0] = 18;
    // One run of length 1 for unit 0.
    st2.typeRuns.observe(0);

    dmr::DmrStats d1;
    d1.verifiableThreadInstrs = 100;
    d1.verifiedThreadInstrs = 90;
    d1.errorsDetected = 1;
    dmr::DmrStats d2;
    d2.verifiableThreadInstrs = 50;
    d2.verifiedThreadInstrs = 50;

    stats::LaunchAggregator agg(kWarp);
    agg.addSm(st1, d1);
    agg.addSm(st2, d2);
    const auto r = agg.finish(/*cycles=*/25, /*time_ns=*/31.25,
                              /*hung=*/false);

    EXPECT_EQ(r.cycles, 25u);
    EXPECT_DOUBLE_EQ(r.timeNs, 31.25);
    EXPECT_FALSE(r.hung);

    EXPECT_EQ(r.issuedWarpInstrs, 15u);
    EXPECT_EQ(r.issuedThreadInstrs, 60u);
    EXPECT_EQ(r.busyCycles, 14u);
    EXPECT_EQ(r.smCycles, 32u);
    EXPECT_EQ(r.blocksRetired, 3u);

    EXPECT_EQ(r.activeHist.count(4), 11u);
    EXPECT_EQ(r.activeHist.count(2), 4u);
    EXPECT_EQ(r.unitIssues[0], 13u);
    EXPECT_EQ(r.unitThreadExecs[0], 48u);

    // Weighted mean of run lengths: (3*1 + 1*1) / 2 runs.
    EXPECT_DOUBLE_EQ(r.meanTypeRun[0], 2.0);
    EXPECT_EQ(r.maxTypeRun[0], 3u);
    EXPECT_EQ(r.typeRunCount[0], 2u);

    EXPECT_EQ(r.dmr.verifiableThreadInstrs, 150u);
    EXPECT_EQ(r.dmr.verifiedThreadInstrs, 140u);
    EXPECT_EQ(r.dmr.errorsDetected, 1u);
    EXPECT_NEAR(r.coverage(), 140.0 / 150.0, 1e-12);
}

TEST(LaunchAggregator, MergedTraceIsCycleSorted)
{
    auto st1 = makeStats();
    auto st2 = makeStats();
    sm::TraceEvent e;
    e.cycle = 9;
    st1.trace.push_back(e);
    e.cycle = 2;
    st1.trace.push_back(e);
    e.cycle = 5;
    st2.trace.push_back(e);

    dmr::DmrStats d;
    stats::LaunchAggregator agg(kWarp);
    agg.addSm(st1, d);
    agg.addSm(st2, d);
    const auto r = agg.finish(0, 0.0, false);
    ASSERT_EQ(r.trace.size(), 3u);
    EXPECT_EQ(r.trace[0].cycle, 2u);
    EXPECT_EQ(r.trace[1].cycle, 5u);
    EXPECT_EQ(r.trace[2].cycle, 9u);
}

TEST(LaunchAggregator, RawDistanceSamplesComeFromTheSingleTracker)
{
    auto st1 = makeStats();
    st1.trackRawDistance = true;
    st1.rawDistance.onWrite(0, 10);
    st1.rawDistance.onRead(0, 14);
    st1.rawDistance.onWrite(1, 20);
    st1.rawDistance.onRead(1, 21);
    auto st2 = makeStats();

    dmr::DmrStats d;
    stats::LaunchAggregator agg(kWarp);
    agg.addSm(st1, d);
    agg.addSm(st2, d);
    const auto r = agg.finish(0, 0.0, false);
    ASSERT_EQ(r.rawDistances.size(), 2u);
    EXPECT_EQ(std::accumulate(r.rawDistances.begin(),
                              r.rawDistances.end(), std::uint64_t{0}),
              5u);
}

TEST(LaunchAggregator, SecondRawDistanceTrackerPanics)
{
    auto st1 = makeStats();
    st1.trackRawDistance = true;
    auto st2 = makeStats();
    st2.trackRawDistance = true;

    dmr::DmrStats d;
    stats::LaunchAggregator agg(kWarp);
    agg.addSm(st1, d);
    EXPECT_THROW(agg.addSm(st2, d), std::logic_error);
}

TEST(Campaign, ParallelCampaignIsBitIdenticalToSequential)
{
    setVerbose(false);
    auto cfg = arch::GpuConfig::testDefault();
    cfg.numSms = 2;

    fault::CampaignConfig cc;
    cc.runs = 6;
    cc.kind = fault::FaultKind::StuckAtOne;
    cc.seed = 1234;

    const auto factory = [] { return workloads::makeScan(1); };

    cc.jobs = 1;
    const auto seq = fault::runCampaign(
        factory, cfg, dmr::DmrConfig::paperDefault(), cc);
    cc.jobs = 8;
    const auto par = fault::runCampaign(
        factory, cfg, dmr::DmrConfig::paperDefault(), cc);

    EXPECT_EQ(seq.runs, par.runs);
    EXPECT_EQ(seq.detected, par.detected);
    EXPECT_EQ(seq.hangs, par.hangs);
    EXPECT_EQ(seq.sdc, par.sdc);
    EXPECT_EQ(seq.benign, par.benign);
    EXPECT_EQ(seq.notActivated, par.notActivated);
    EXPECT_EQ(seq.detectionLatencySum, par.detectionLatencySum);
    EXPECT_EQ(seq.kernelLengthSum, par.kernelLengthSum);
}

TEST(Campaign, MasterSeedSelectsTheFaultSet)
{
    setVerbose(false);
    auto cfg = arch::GpuConfig::testDefault();
    cfg.numSms = 2;

    fault::CampaignConfig cc;
    cc.runs = 4;
    cc.kind = fault::FaultKind::TransientBitFlip;
    cc.jobs = 2;

    const auto factory = [] { return workloads::makeScan(1); };
    cc.seed = 1;
    const auto a = fault::runCampaign(
        factory, cfg, dmr::DmrConfig::paperDefault(), cc);
    const auto b = fault::runCampaign(
        factory, cfg, dmr::DmrConfig::paperDefault(), cc);

    // Same master seed -> identical campaign, even across pools.
    EXPECT_EQ(a.detected, b.detected);
    EXPECT_EQ(a.notActivated, b.notActivated);
    EXPECT_EQ(a.detectionLatencySum, b.detectionLatencySum);
}
