/**
 * @file
 * Unit tests: the ReplayQ (§4.3).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "dmr/replay_queue.hh"

using namespace warped;
using dmr::ReplayQueue;

namespace {

func::ExecRecord
rec(isa::Opcode op, unsigned warp_id = 0, unsigned dst = 0)
{
    func::ExecRecord r;
    r.instr.op = op;
    r.instr.dst = isa::Reg{static_cast<RegIndex>(dst)};
    r.warpId = warp_id;
    r.active = LaneMask::full(32);
    return r;
}

} // namespace

TEST(ReplayQueue, CapacityAndFifoOrder)
{
    ReplayQueue q(3);
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(q.full());
    q.push(rec(isa::Opcode::IADD, 1), 10);
    q.push(rec(isa::Opcode::IMUL, 2), 11);
    q.push(rec(isa::Opcode::FADD, 3), 12);
    EXPECT_TRUE(q.full());
    EXPECT_EQ(q.size(), 3u);
    const auto *e = q.popOldest();
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->rec.warpId, 1u);
    EXPECT_EQ(e->enqueued, 10u);
}

TEST(ReplayQueue, ZeroCapacityIsAlwaysFull)
{
    ReplayQueue q(0);
    EXPECT_TRUE(q.full());
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.popOldest(), nullptr);
}

TEST(ReplayQueue, OverflowPanics)
{
    setVerbose(false);
    ReplayQueue q(1);
    q.push(rec(isa::Opcode::IADD), 0);
    EXPECT_THROW(q.push(rec(isa::Opcode::IADD), 1), std::logic_error);
}

TEST(ReplayQueue, PopDifferentTypeSkipsBusyUnit)
{
    ReplayQueue q(4);
    Rng rng(1);
    q.push(rec(isa::Opcode::IADD), 0);  // SP
    q.push(rec(isa::Opcode::LDG), 1);   // LDST
    // Busy unit is LDST: only the SP entry qualifies.
    const auto *e = q.popDifferentType(isa::UnitType::LDST, rng);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->rec.instr.op, isa::Opcode::IADD);
    // Now only the LDST entry remains: nothing differs from LDST.
    EXPECT_EQ(q.popDifferentType(isa::UnitType::LDST, rng), nullptr);
    EXPECT_EQ(q.size(), 1u);
}

TEST(ReplayQueue, PopDifferentTypeRandomPickIsFromCandidates)
{
    // With several qualifying entries, the random pick must always
    // return one whose type differs from the busy unit.
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        ReplayQueue q(4);
        Rng rng(seed);
        q.push(rec(isa::Opcode::IADD), 0);
        q.push(rec(isa::Opcode::SIN), 1);
        q.push(rec(isa::Opcode::LDG), 2);
        const auto *e = q.popDifferentType(isa::UnitType::SP, rng);
        ASSERT_NE(e, nullptr);
        EXPECT_NE(e->rec.instr.unit(), isa::UnitType::SP);
    }
}

TEST(ReplayQueue, PopOldestOfType)
{
    ReplayQueue q(4);
    q.push(rec(isa::Opcode::IADD, 1), 0);
    q.push(rec(isa::Opcode::LDG, 2), 1);
    q.push(rec(isa::Opcode::IMUL, 3), 2);
    const auto *e = q.popOldestOfType(isa::UnitType::SP);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->rec.warpId, 1u); // oldest SP entry
    EXPECT_EQ(q.popOldestOfType(isa::UnitType::SFU), nullptr);
}

TEST(ReplayQueue, RawHazardMatchesWarpAndRegister)
{
    ReplayQueue q(4);
    q.push(rec(isa::Opcode::IADD, /*warp*/ 2, /*dst*/ 5), 0);

    // Same warp reading r5: hazard.
    EXPECT_TRUE(q.hasRawHazard(2, 1ULL << 5));
    // Same warp reading other registers: no hazard.
    EXPECT_FALSE(q.hasRawHazard(2, 1ULL << 6));
    // Different warp reading r5: no hazard.
    EXPECT_FALSE(q.hasRawHazard(3, 1ULL << 5));

    const auto *e = q.popRawHazard(2, 1ULL << 5);
    ASSERT_NE(e, nullptr);
    EXPECT_TRUE(q.empty());
}

TEST(ReplayQueue, StoresDontCreateRawHazards)
{
    ReplayQueue q(4);
    auto r = rec(isa::Opcode::STG, 1);
    q.push(r, 0);
    EXPECT_FALSE(q.hasRawHazard(1, ~0ULL));
}

TEST(ReplayQueue, OldestFirstPolicyDequeuesInFifoOrder)
{
    // Dequeue-order semantics must not depend on the storage layout:
    // under OldestFirst, popDifferentType always returns the oldest
    // qualifying entry, across interleaved pushes and pops.
    ReplayQueue q(4);
    Rng rng(7);
    q.push(rec(isa::Opcode::SIN, 1), 0);  // SFU
    q.push(rec(isa::Opcode::IADD, 2), 1); // SP
    q.push(rec(isa::Opcode::LDG, 3), 2);  // LDST
    q.push(rec(isa::Opcode::COS, 4), 3);  // SFU

    const auto *e =
        q.popDifferentType(isa::UnitType::SP, rng,
                           dmr::DequeuePolicy::OldestFirst);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->rec.warpId, 1u); // oldest non-SP

    // Interleave: refill the freed slot, order must stay FIFO.
    q.push(rec(isa::Opcode::EX2, 5), 4); // SFU, newest
    e = q.popDifferentType(isa::UnitType::SP, rng,
                           dmr::DequeuePolicy::OldestFirst);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->rec.warpId, 3u); // LDST entry, still before warp 4

    e = q.popDifferentType(isa::UnitType::SP, rng,
                           dmr::DequeuePolicy::OldestFirst);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->rec.warpId, 4u);
    e = q.popDifferentType(isa::UnitType::SP, rng,
                           dmr::DequeuePolicy::OldestFirst);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->rec.warpId, 5u);
    // Only the SP entry is left.
    EXPECT_EQ(q.popDifferentType(isa::UnitType::SP, rng,
                                 dmr::DequeuePolicy::OldestFirst),
              nullptr);
    EXPECT_EQ(q.size(), 1u);
}

TEST(ReplayQueue, RandomPolicyMatchesRngOverCandidateList)
{
    // The random pick indexes an oldest-first candidate list with one
    // Rng draw: nextBelow(#candidates). Replicate with an identically
    // seeded Rng to pin the dequeue order exactly.
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        ReplayQueue q(4);
        Rng rng(seed), model(seed);
        q.push(rec(isa::Opcode::IADD, 0), 0); // SP (never qualifies)
        q.push(rec(isa::Opcode::SIN, 1), 1);  // candidate 0
        q.push(rec(isa::Opcode::LDG, 2), 2);  // candidate 1
        q.push(rec(isa::Opcode::COS, 3), 3);  // candidate 2

        const unsigned expect3[] = {1, 2, 3};
        const auto *e = q.popDifferentType(isa::UnitType::SP, rng);
        ASSERT_NE(e, nullptr);
        EXPECT_EQ(e->rec.warpId, expect3[model.nextBelow(3)]);
        const unsigned first = e->rec.warpId;

        std::uint64_t remaining[2];
        unsigned n = 0;
        for (unsigned w = 1; w <= 3; ++w)
            if (w != first)
                remaining[n++] = w;
        e = q.popDifferentType(isa::UnitType::SP, rng);
        ASSERT_NE(e, nullptr);
        EXPECT_EQ(e->rec.warpId, remaining[model.nextBelow(2)]);

        // A single candidate is returned without consuming the Rng.
        e = q.popDifferentType(isa::UnitType::SP, rng);
        ASSERT_NE(e, nullptr);
        EXPECT_EQ(rng.nextBelow(1000), model.nextBelow(1000));
    }
}

TEST(ReplayQueue, PoppedEntryStaysValidUntilNextPush)
{
    // The engine verifies a popped entry and only then enqueues the
    // pending instruction; the pointer contract backs that order.
    ReplayQueue q(2);
    q.push(rec(isa::Opcode::SIN, 7), 0);
    const auto *e = q.popOldest();
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->rec.warpId, 7u);
    EXPECT_EQ(e->rec.instr.op, isa::Opcode::SIN);
    q.push(rec(isa::Opcode::IADD, 8), 1);
    // After the push the slot may be reused; no expectations on *e.
}

TEST(ReplayQueue, EntryBytesMatchesPaperArithmetic)
{
    // §4.3.1: 32 lanes x 3 operands x 4B + 32 x 4B + 2B opcode.
    EXPECT_EQ(ReplayQueue::entryBytes(32), 514u);
    EXPECT_GE(ReplayQueue::entryBytes(32) * 10, 5140u);
}
