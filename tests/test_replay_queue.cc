/**
 * @file
 * Unit tests: the ReplayQ (§4.3).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "dmr/replay_queue.hh"

using namespace warped;
using dmr::ReplayQueue;

namespace {

func::ExecRecord
rec(isa::Opcode op, unsigned warp_id = 0, unsigned dst = 0)
{
    func::ExecRecord r;
    r.instr.op = op;
    r.instr.dst = isa::Reg{static_cast<RegIndex>(dst)};
    r.warpId = warp_id;
    r.active = LaneMask::full(32);
    return r;
}

} // namespace

TEST(ReplayQueue, CapacityAndFifoOrder)
{
    ReplayQueue q(3);
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(q.full());
    q.push(rec(isa::Opcode::IADD, 1), 10);
    q.push(rec(isa::Opcode::IMUL, 2), 11);
    q.push(rec(isa::Opcode::FADD, 3), 12);
    EXPECT_TRUE(q.full());
    EXPECT_EQ(q.size(), 3u);
    auto e = q.popOldest();
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->rec.warpId, 1u);
    EXPECT_EQ(e->enqueued, 10u);
}

TEST(ReplayQueue, ZeroCapacityIsAlwaysFull)
{
    ReplayQueue q(0);
    EXPECT_TRUE(q.full());
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(q.popOldest().has_value());
}

TEST(ReplayQueue, OverflowPanics)
{
    setVerbose(false);
    ReplayQueue q(1);
    q.push(rec(isa::Opcode::IADD), 0);
    EXPECT_THROW(q.push(rec(isa::Opcode::IADD), 1), std::logic_error);
}

TEST(ReplayQueue, PopDifferentTypeSkipsBusyUnit)
{
    ReplayQueue q(4);
    Rng rng(1);
    q.push(rec(isa::Opcode::IADD), 0);  // SP
    q.push(rec(isa::Opcode::LDG), 1);   // LDST
    // Busy unit is LDST: only the SP entry qualifies.
    auto e = q.popDifferentType(isa::UnitType::LDST, rng);
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->rec.instr.op, isa::Opcode::IADD);
    // Now only the LDST entry remains: nothing differs from LDST.
    EXPECT_FALSE(q.popDifferentType(isa::UnitType::LDST, rng));
    EXPECT_EQ(q.size(), 1u);
}

TEST(ReplayQueue, PopDifferentTypeRandomPickIsFromCandidates)
{
    // With several qualifying entries, the random pick must always
    // return one whose type differs from the busy unit.
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        ReplayQueue q(4);
        Rng rng(seed);
        q.push(rec(isa::Opcode::IADD), 0);
        q.push(rec(isa::Opcode::SIN), 1);
        q.push(rec(isa::Opcode::LDG), 2);
        auto e = q.popDifferentType(isa::UnitType::SP, rng);
        ASSERT_TRUE(e.has_value());
        EXPECT_NE(e->rec.instr.unit(), isa::UnitType::SP);
    }
}

TEST(ReplayQueue, PopOldestOfType)
{
    ReplayQueue q(4);
    q.push(rec(isa::Opcode::IADD, 1), 0);
    q.push(rec(isa::Opcode::LDG, 2), 1);
    q.push(rec(isa::Opcode::IMUL, 3), 2);
    auto e = q.popOldestOfType(isa::UnitType::SP);
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->rec.warpId, 1u); // oldest SP entry
    EXPECT_FALSE(q.popOldestOfType(isa::UnitType::SFU).has_value());
}

TEST(ReplayQueue, RawHazardMatchesWarpAndRegister)
{
    ReplayQueue q(4);
    q.push(rec(isa::Opcode::IADD, /*warp*/ 2, /*dst*/ 5), 0);

    // Same warp reading r5: hazard.
    EXPECT_TRUE(q.hasRawHazard(2, 1ULL << 5));
    // Same warp reading other registers: no hazard.
    EXPECT_FALSE(q.hasRawHazard(2, 1ULL << 6));
    // Different warp reading r5: no hazard.
    EXPECT_FALSE(q.hasRawHazard(3, 1ULL << 5));

    auto e = q.popRawHazard(2, 1ULL << 5);
    ASSERT_TRUE(e.has_value());
    EXPECT_TRUE(q.empty());
}

TEST(ReplayQueue, StoresDontCreateRawHazards)
{
    ReplayQueue q(4);
    auto r = rec(isa::Opcode::STG, 1);
    q.push(r, 0);
    EXPECT_FALSE(q.hasRawHazard(1, ~0ULL));
}

TEST(ReplayQueue, EntryBytesMatchesPaperArithmetic)
{
    // §4.3.1: 32 lanes x 3 operands x 4B + 32 x 4B + 2B opcode.
    EXPECT_EQ(ReplayQueue::entryBytes(32), 514u);
    EXPECT_GE(ReplayQueue::entryBytes(32) * 10, 5140u);
}
