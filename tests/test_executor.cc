/**
 * @file
 * Unit tests: functional executor — per-opcode semantics of
 * computeLane and architectural effects of step() (branches,
 * barriers, exit, memory, fault-hook placement).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "arch/warp_context.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "func/executor.hh"
#include "isa/kernel_builder.hh"
#include "mem/memory.hh"

using namespace warped;
using namespace warped::isa;
using func::Executor;
using func::LaneInfo;

namespace {

RegValue
lane(Opcode op, RegValue a = 0, RegValue b = 0, RegValue c = 0,
     std::int32_t imm = 0)
{
    Instruction in;
    in.op = op;
    in.imm = imm;
    return Executor::computeLane(in, {a, b, c}, LaneInfo{});
}

} // namespace

TEST(ComputeLane, IntegerArithmetic)
{
    EXPECT_EQ(lane(Opcode::IADD, 3, 4), 7u);
    EXPECT_EQ(lane(Opcode::ISUB, 3, 4), RegValue(-1));
    EXPECT_EQ(lane(Opcode::IMUL, 5, 7), 35u);
    EXPECT_EQ(lane(Opcode::IMAD, 5, 7, 2), 37u);
    EXPECT_EQ(lane(Opcode::IDIV, RegValue(-9), 2), RegValue(-4));
    EXPECT_EQ(lane(Opcode::IMOD, RegValue(-9), 2), RegValue(-1));
    EXPECT_EQ(lane(Opcode::IMIN, RegValue(-1), 3), RegValue(-1));
    EXPECT_EQ(lane(Opcode::IMAX, RegValue(-1), 3), 3u);
}

TEST(ComputeLane, DivisionByZeroIsDefined)
{
    EXPECT_EQ(lane(Opcode::IDIV, 5, 0), 0u);
    EXPECT_EQ(lane(Opcode::IMOD, 5, 0), 0u);
    EXPECT_EQ(lane(Opcode::IDIV, 0x80000000u, RegValue(-1)),
              0x80000000u);
    EXPECT_EQ(lane(Opcode::IMOD, 0x80000000u, RegValue(-1)), 0u);
}

TEST(ComputeLane, BitOps)
{
    EXPECT_EQ(lane(Opcode::AND, 0b1100, 0b1010), 0b1000u);
    EXPECT_EQ(lane(Opcode::OR, 0b1100, 0b1010), 0b1110u);
    EXPECT_EQ(lane(Opcode::XOR, 0b1100, 0b1010), 0b0110u);
    EXPECT_EQ(lane(Opcode::NOT, 0), ~0u);
    EXPECT_EQ(lane(Opcode::SHL, 1, 4), 16u);
    EXPECT_EQ(lane(Opcode::SHR, 0x80000000u, 31), 1u);
    EXPECT_EQ(lane(Opcode::SRA, 0x80000000u, 31), ~0u);
    EXPECT_EQ(lane(Opcode::SHL, 1, 33), 2u); // shift amount masked
    EXPECT_EQ(lane(Opcode::SHLI, 3, 0, 0, 2), 12u);
    EXPECT_EQ(lane(Opcode::SHRI, 12, 0, 0, 2), 3u);
    EXPECT_EQ(lane(Opcode::ANDI, 0xFF, 0, 0, 0x0F), 0x0Fu);
}

TEST(ComputeLane, Comparisons)
{
    EXPECT_EQ(lane(Opcode::ISETP_LT, RegValue(-1), 0), 1u);
    EXPECT_EQ(lane(Opcode::ISETP_GT, RegValue(-1), 0), 0u);
    EXPECT_EQ(lane(Opcode::ISETP_EQ, 7, 7), 1u);
    EXPECT_EQ(lane(Opcode::ISETP_NE, 7, 7), 0u);
    EXPECT_EQ(lane(Opcode::ISETP_LE, 7, 7), 1u);
    EXPECT_EQ(lane(Opcode::ISETP_GE, 6, 7), 0u);
}

TEST(ComputeLane, Select)
{
    EXPECT_EQ(lane(Opcode::SEL, 1, 10, 20), 10u);
    EXPECT_EQ(lane(Opcode::SEL, 0, 10, 20), 20u);
}

TEST(ComputeLane, FloatArithmetic)
{
    EXPECT_EQ(asFloat(lane(Opcode::FADD, asReg(1.5f), asReg(2.5f))),
              4.0f);
    EXPECT_EQ(asFloat(lane(Opcode::FSUB, asReg(1.5f), asReg(2.5f))),
              -1.0f);
    EXPECT_EQ(asFloat(lane(Opcode::FMUL, asReg(3.0f), asReg(2.0f))),
              6.0f);
    EXPECT_EQ(asFloat(lane(Opcode::FFMA, asReg(3.0f), asReg(2.0f),
                           asReg(1.0f))),
              std::fma(3.0f, 2.0f, 1.0f));
    EXPECT_EQ(asFloat(lane(Opcode::FMIN, asReg(-1.0f), asReg(2.0f))),
              -1.0f);
    EXPECT_EQ(asFloat(lane(Opcode::FMAX, asReg(-1.0f), asReg(2.0f))),
              2.0f);
    EXPECT_EQ(asFloat(lane(Opcode::FNEG, asReg(1.5f))), -1.5f);
    EXPECT_EQ(lane(Opcode::FSETP_LT, asReg(1.0f), asReg(2.0f)), 1u);
    EXPECT_EQ(lane(Opcode::FSETP_GE, asReg(1.0f), asReg(2.0f)), 0u);
}

TEST(ComputeLane, Conversions)
{
    EXPECT_EQ(asFloat(lane(Opcode::I2F, RegValue(-3))), -3.0f);
    EXPECT_EQ(lane(Opcode::F2I, asReg(-3.7f)), RegValue(-3));
}

TEST(ComputeLane, SfuTranscendentals)
{
    const float x = 0.5f;
    EXPECT_EQ(asFloat(lane(Opcode::SIN, asReg(x))), std::sin(x));
    EXPECT_EQ(asFloat(lane(Opcode::COS, asReg(x))), std::cos(x));
    EXPECT_EQ(asFloat(lane(Opcode::SQRT, asReg(x))), std::sqrt(x));
    EXPECT_EQ(asFloat(lane(Opcode::RSQRT, asReg(x))),
              1.0f / std::sqrt(x));
    EXPECT_EQ(asFloat(lane(Opcode::EX2, asReg(x))), std::exp2(x));
    EXPECT_EQ(asFloat(lane(Opcode::LG2, asReg(x))), std::log2(x));
    EXPECT_EQ(asFloat(lane(Opcode::RCP, asReg(x))), 2.0f);
}

TEST(ComputeLane, MemoryOpsReturnEffectiveAddress)
{
    EXPECT_EQ(lane(Opcode::LDG, 100, 0, 0, 24), 124u);
    EXPECT_EQ(lane(Opcode::STS, 100, 7, 0, -4), 96u);
}

TEST(ComputeLane, SpecialRegisters)
{
    Instruction in;
    in.op = Opcode::S2R;
    LaneInfo li;
    li.tid = 3;
    li.ctaid = 2;
    li.ntid = 64;
    li.nctaid = 8;
    li.laneId = 3;
    li.warpId = 0;
    const auto get = [&](SpecialReg sr) {
        in.imm = static_cast<std::int32_t>(sr);
        return Executor::computeLane(in, {0, 0, 0}, li);
    };
    EXPECT_EQ(get(SpecialReg::Tid), 3u);
    EXPECT_EQ(get(SpecialReg::Ctaid), 2u);
    EXPECT_EQ(get(SpecialReg::Ntid), 64u);
    EXPECT_EQ(get(SpecialReg::Nctaid), 8u);
    EXPECT_EQ(get(SpecialReg::Gtid), 131u);
}

// ---- step() ---------------------------------------------------------

namespace {

struct StepFixture : ::testing::Test
{
    StepFixture()
        : cfg(arch::GpuConfig::testDefault()), global(1 << 16),
          shared(1 << 12),
          exec(cfg, 0, global, func::NullFaultHook::instance())
    {
    }

    arch::WarpContext
    makeWarp(unsigned threads = 32)
    {
        return arch::WarpContext(32, 16, /*block*/ 1, /*warp*/ 0,
                                 threads, threads, /*grid*/ 4);
    }

    arch::GpuConfig cfg;
    mem::Memory global;
    mem::Memory shared;
    func::Executor exec;
};

} // namespace

TEST_F(StepFixture, ArithmeticWritesAllActiveLanes)
{
    KernelBuilder kb("t", 16);
    auto a = kb.reg(), b = kb.reg(), c = kb.reg();
    kb.s2r(a, SpecialReg::Tid);
    kb.movi(b, 10);
    kb.iadd(c, a, b);
    const auto prog = kb.build();

    auto warp = makeWarp();
    for (int i = 0; i < 3; ++i)
        exec.step(warp, prog, shared, nullptr, i);
    for (unsigned t = 0; t < 32; ++t)
        EXPECT_EQ(warp.reg(t, 2), t + 10u);
}

TEST_F(StepFixture, PartialWarpOnlyTouchesValidLanes)
{
    KernelBuilder kb("t", 16);
    auto a = kb.reg();
    kb.movi(a, 7);
    const auto prog = kb.build();

    auto warp = makeWarp(20); // tail warp: lanes 20..31 invalid
    const auto rec = exec.step(warp, prog, shared, nullptr, 0);
    EXPECT_EQ(rec.active.count(), 20u);
    EXPECT_EQ(warp.reg(0, 0), 7u);
    EXPECT_EQ(warp.reg(19, 0), 7u);
    EXPECT_EQ(warp.reg(25, 0), 0u);
}

TEST_F(StepFixture, GlobalLoadStoreRoundTrip)
{
    global.writeWord(0x100, 0xdeadbeef);
    KernelBuilder kb("t", 16);
    auto addr = kb.reg(), v = kb.reg();
    kb.movi(addr, 0x100);
    kb.ldg(v, addr);
    kb.stg(addr, v, 0x40);
    const auto prog = kb.build();

    auto warp = makeWarp(1);
    for (int i = 0; i < 3; ++i)
        exec.step(warp, prog, shared, nullptr, i);
    EXPECT_EQ(global.readWord(0x140), 0xdeadbeefu);
}

TEST_F(StepFixture, SharedMemoryIsPerBlockSegment)
{
    KernelBuilder kb("t", 16);
    auto addr = kb.reg(), v = kb.reg(), w = kb.reg();
    kb.movi(addr, 0x20);
    kb.movi(v, 123);
    kb.sts(addr, v);
    kb.lds(w, addr);
    const auto prog = kb.build();

    auto warp = makeWarp(1);
    for (int i = 0; i < 4; ++i)
        exec.step(warp, prog, shared, nullptr, i);
    EXPECT_EQ(warp.reg(0, 2), 123u);
    EXPECT_EQ(shared.readWord(0x20), 123u);
}

TEST_F(StepFixture, BranchDivergesAndReconverges)
{
    KernelBuilder kb("t", 16);
    auto tid = kb.reg(), c = kb.reg(), p = kb.reg(), x = kb.reg();
    kb.s2r(tid, SpecialReg::Tid);
    kb.movi(c, 16);
    kb.isetpLt(p, tid, c);
    kb.ifThenElse(p, [&] { kb.movi(x, 1); }, [&] { kb.movi(x, 2); });
    const auto prog = kb.build();

    auto warp = makeWarp();
    unsigned guard = 0;
    while (!warp.finished() && guard++ < 32)
        exec.step(warp, prog, shared, nullptr, guard);
    ASSERT_TRUE(warp.finished());
    for (unsigned t = 0; t < 32; ++t)
        EXPECT_EQ(warp.reg(t, 3), t < 16 ? 1u : 2u);
}

TEST_F(StepFixture, BarrierMarksWarp)
{
    KernelBuilder kb("t", 16);
    kb.bar();
    const auto prog = kb.build();
    auto warp = makeWarp();
    const auto rec = exec.step(warp, prog, shared, nullptr, 0);
    EXPECT_TRUE(rec.wasBarrier);
    EXPECT_TRUE(warp.atBarrier());
    EXPECT_FALSE(warp.finished());
}

TEST_F(StepFixture, ExitFinishesWarp)
{
    KernelBuilder kb("t", 16);
    kb.exit();
    const auto prog = kb.build();
    auto warp = makeWarp();
    const auto rec = exec.step(warp, prog, shared, nullptr, 0);
    EXPECT_TRUE(rec.wasExit);
    EXPECT_TRUE(warp.finished());
}

namespace {

/** Hook that flips bit 0 on one physical lane. */
struct Bit0Hook final : func::FaultHook
{
    unsigned lane;
    explicit Bit0Hook(unsigned l) : lane(l) {}
    RegValue
    apply(RegValue pure, const func::FaultCtx &ctx) override
    {
        return ctx.lane == lane ? pure ^ 1u : pure;
    }
};

} // namespace

TEST_F(StepFixture, FaultHookSeesMappedLane)
{
    // Thread slot 0 remapped to physical lane 7: the hook keyed on
    // lane 7 must corrupt slot 0's result.
    Bit0Hook hook(7);
    func::Executor fexec(cfg, 0, global, hook);

    unsigned lane_of[32];
    for (unsigned i = 0; i < 32; ++i)
        lane_of[i] = i;
    lane_of[0] = 7;
    lane_of[7] = 0;

    KernelBuilder kb("t", 16);
    auto a = kb.reg();
    kb.movi(a, 10);
    const auto prog = kb.build();

    auto warp = makeWarp();
    fexec.step(warp, prog, shared, lane_of, 0);
    EXPECT_EQ(warp.reg(0, 0), 11u); // corrupted via lane 7
    EXPECT_EQ(warp.reg(7, 0), 10u); // clean via lane 0
    EXPECT_EQ(warp.reg(1, 0), 10u);
}

// ---------------------------------------------------------------
// computePlane vs computeLane equivalence.
//
// The SoA execute path (Executor::computePlane) evaluates a whole
// warp of one opcode with per-case loops; the scalar computeLane is
// the reference semantics (and still serves the verification and
// fault-hook paths). They must agree bit-for-bit on every opcode,
// operand pattern, and S2R selector — otherwise the DMR comparator
// would flag (or miss) phantom mismatches between original and
// redundant execution.
// ---------------------------------------------------------------

TEST(ComputePlane, MatchesComputeLaneOnEveryOpcode)
{
    constexpr unsigned ws = 32;
    Rng rng(0x9e3779b9ULL);

    std::array<std::array<RegValue, func::kMaxWarp>, 3> ops{};
    std::array<LaneInfo, func::kMaxWarp> li{};
    std::array<RegValue, func::kMaxWarp> out{};

    for (unsigned slot = 0; slot < ws; ++slot) {
        li[slot].tid = static_cast<std::int32_t>(slot);
        li[slot].ctaid = 3;
        li[slot].ntid = 128;
        li[slot].nctaid = 9;
        li[slot].laneId = static_cast<std::int32_t>(slot);
        li[slot].warpId = 2;
    }

    for (unsigned opi = 0; opi < isa::opcodeCount(); ++opi) {
        Instruction in;
        in.op = static_cast<Opcode>(opi);
        // Exercised by imm-consuming ops, inert elsewhere; S2R
        // interprets imm as a selector and panics past Gtid, so it
        // gets a valid one here (all selectors are swept in the
        // dedicated test below).
        in.imm = in.op == Opcode::S2R ? 4 : 12;

        for (unsigned trial = 0; trial < 8; ++trial) {
            for (unsigned s = 0; s < 3; ++s)
                for (unsigned slot = 0; slot < ws; ++slot)
                    ops[s][slot] =
                        static_cast<RegValue>(rng.next());
            // Trials 0-1 pin edge operands: zeros (division by zero,
            // shift by zero) and all-ones (sign boundaries).
            if (trial == 0)
                for (auto &plane : ops)
                    plane.fill(0);
            if (trial == 1)
                for (auto &plane : ops)
                    plane.fill(~RegValue{0});

            Executor::computePlane(in, ops, li, ws, out.data());
            for (unsigned slot = 0; slot < ws; ++slot) {
                const RegValue ref = Executor::computeLane(
                    in,
                    {ops[0][slot], ops[1][slot], ops[2][slot]},
                    li[slot]);
                ASSERT_EQ(out[slot], ref)
                    << isa::opcodeName(in.op) << " slot " << slot
                    << " trial " << trial;
            }
        }
    }
}

TEST(ComputePlane, MatchesComputeLaneOnEveryS2RSelector)
{
    constexpr unsigned ws = 32;
    std::array<std::array<RegValue, func::kMaxWarp>, 3> ops{};
    std::array<LaneInfo, func::kMaxWarp> li{};
    std::array<RegValue, func::kMaxWarp> out{};

    for (unsigned slot = 0; slot < ws; ++slot) {
        li[slot].tid = static_cast<std::int32_t>(100 + slot);
        li[slot].ctaid = 7;
        li[slot].ntid = 256;
        li[slot].nctaid = 13;
        li[slot].laneId = static_cast<std::int32_t>(slot ^ 5);
        li[slot].warpId = 4;
    }

    for (int sel = 0; sel <= int(isa::SpecialReg::Gtid); ++sel) {
        Instruction in;
        in.op = Opcode::S2R;
        in.imm = sel;
        Executor::computePlane(in, ops, li, ws, out.data());
        for (unsigned slot = 0; slot < ws; ++slot)
            ASSERT_EQ(out[slot],
                      Executor::computeLane(in, {0, 0, 0}, li[slot]))
                << "selector " << sel << " slot " << slot;
    }
}
