/**
 * @file
 * Cross-module integration and property tests: the DMR engine's
 * coverage accounting cross-checked against the RFU's analytic
 * prediction, 8-lane-cluster end-to-end runs, tail-warp handling,
 * whole-workload determinism, and alternate workload sizes.
 */

#include <gtest/gtest.h>

#include <bit>

#include "common/logging.hh"
#include "dmr/rfu.hh"
#include "dmr/thread_mapping.hh"
#include "gpu/gpu.hh"
#include "isa/kernel_builder.hh"
#include "workloads/workload.hh"

using namespace warped;

namespace {

/**
 * Kernel where exactly the first @p k threads of each warp do one
 * extra verifiable instruction inside a divergent region.
 */
isa::Program
maskedKernel(unsigned k, Addr out)
{
    isa::KernelBuilder kb("masked", 16);
    auto tid = kb.reg(), lane = kb.reg(), ck = kb.reg(), p = kb.reg(),
         x = kb.reg(), addr = kb.reg(), c32 = kb.reg();
    kb.s2r(tid, isa::SpecialReg::Tid);
    kb.movi(c32, 32);
    kb.imod(lane, tid, c32);
    kb.movi(ck, static_cast<std::int32_t>(k));
    kb.isetpLt(p, lane, ck);
    kb.movi(x, 7);
    kb.ifThen(p, [&] { kb.iaddi(x, x, 1); });
    kb.shli(addr, tid, 2);
    kb.iaddi(addr, addr, static_cast<std::int32_t>(out));
    kb.stg(addr, x);
    return kb.build();
}

} // namespace

/**
 * For each contiguous mask width k, the engine's intra-warp verified
 * count for the divergent instruction must equal the RFU's analytic
 * prediction under the configured mapping.
 */
class CoveragePrediction : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(CoveragePrediction, EngineMatchesRfuAnalytics)
{
    setVerbose(false);
    const unsigned k = GetParam();

    auto cfg = arch::GpuConfig::testDefault();
    cfg.numSms = 1;

    for (auto policy : {dmr::MappingPolicy::Linear,
                        dmr::MappingPolicy::CrossCluster}) {
        auto d = dmr::DmrConfig::paperDefault();
        d.interWarp = false; // isolate intra-warp accounting
        d.replayQSize = 0;
        d.mapping = policy;

        gpu::Gpu g(cfg, d);
        const Addr out = g.allocator().alloc(32 * 4);
        const auto r = g.launch(maskedKernel(k, out), 1, 32);

        // Analytic prediction for the one divergent IADDI (mask = the
        // first k thread slots), mapped to lane space.
        dmr::ThreadCoreMapping map(policy, 32, cfg.lanesPerCluster);
        LaneMask slots;
        for (unsigned s = 0; s < k; ++s)
            slots.set(s);
        const LaneMask lanes = map.toLaneSpace(slots);
        unsigned predict = 0;
        for (unsigned c = 0; c < 8; ++c) {
            predict += std::popcount(dmr::Rfu::covered(
                lanes.clusterBits(c, cfg.lanesPerCluster),
                cfg.lanesPerCluster));
        }
        EXPECT_EQ(r.dmr.intraVerifiedThreads, predict)
            << "k=" << k << " policy="
            << (policy == dmr::MappingPolicy::Linear ? "linear"
                                                     : "cross");
        // Output correctness regardless.
        for (unsigned t = 0; t < 32; ++t) {
            EXPECT_EQ(g.mem().readWord(out + 4 * t),
                      t % 32 < k ? 8u : 7u);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(MaskWidths, CoveragePrediction,
                         ::testing::Values(1u, 3u, 7u, 15u, 16u, 24u,
                                           29u, 31u));

TEST(EightLaneCluster, EndToEnd)
{
    setVerbose(false);
    auto cfg = arch::GpuConfig::testDefault();
    cfg.lanesPerCluster = 8;
    auto w = workloads::makeScan(2);
    gpu::Gpu g(cfg, dmr::DmrConfig::baselineMapping());
    const auto r = workloads::runVerified(*w, g);
    EXPECT_EQ(r.dmr.errorsDetected, 0u);
    EXPECT_GT(r.coverage(), 0.5);
}

TEST(TailWarps, PartialFinalWarpIsHandled)
{
    setVerbose(false);
    auto cfg = arch::GpuConfig::testDefault();
    cfg.numSms = 1;
    gpu::Gpu g(cfg, dmr::DmrConfig::paperDefault());
    const Addr out = g.allocator().alloc(50 * 4);

    isa::KernelBuilder kb("tail", 8);
    auto gtid = kb.reg(), addr = kb.reg();
    kb.s2r(gtid, isa::SpecialReg::Gtid);
    kb.shli(addr, gtid, 2);
    kb.iaddi(addr, addr, static_cast<std::int32_t>(out));
    kb.stg(addr, gtid);

    // 50 threads: one full warp + one 18/32 warp.
    const auto r = g.launch(kb.build(), 1, 50);
    EXPECT_EQ(r.dmr.errorsDetected, 0u);
    for (unsigned t = 0; t < 50; ++t)
        EXPECT_EQ(g.mem().readWord(out + 4 * t), t);
    // The tail warp's instructions are partial-mask: some intra-warp
    // verification must have happened.
    EXPECT_GT(r.dmr.intraVerifiedThreads, 0u);
    EXPECT_GT(r.dmr.interVerifiedThreads, 0u);
}

class WorkloadDeterminism
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadDeterminism, IdenticalAcrossRuns)
{
    setVerbose(false);
    auto run = [&] {
        auto cfg = arch::GpuConfig::testDefault();
        auto w = workloads::makeByNameScaled(GetParam(), 1);
        // Shrink: scaled names produce the full default; rebuild with
        // test-sized factories where needed via small grids.
        gpu::Gpu g(cfg, dmr::DmrConfig::paperDefault(), /*seed*/ 3);
        w->setup(g);
        return g.launch(w->program(), std::min(4u, w->gridBlocks()),
                        w->blockThreads());
    };
    const auto a = run();
    const auto b = run();
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.issuedWarpInstrs, b.issuedWarpInstrs);
    EXPECT_EQ(a.dmr.verifiedThreadInstrs, b.dmr.verifiedThreadInstrs);
    EXPECT_EQ(a.dmr.enqueues, b.dmr.enqueues);
}

INSTANTIATE_TEST_SUITE_P(FourRepresentatives, WorkloadDeterminism,
                         ::testing::Values("BFS", "MatrixMul",
                                           "BitonicSort", "Libor"),
                         [](const auto &info) { return info.param; });

class AlternateSizes : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(AlternateSizes, WorkloadsVerifyAtOtherScales)
{
    setVerbose(false);
    const unsigned scale = GetParam();
    auto cfg = arch::GpuConfig::testDefault();
    using namespace workloads;
    std::vector<std::unique_ptr<Workload>> ws;
    ws.push_back(makeBfs(scale));
    ws.push_back(makeScan(scale));
    ws.push_back(makeRadixSort(scale));
    ws.push_back(makeSha(scale));
    ws.push_back(makeFft(scale));
    ws.push_back(makeMatrixMul(32 * scale));
    for (auto &w : ws) {
        gpu::Gpu g(cfg, dmr::DmrConfig::paperDefault());
        const auto r = runVerified(*w, g);
        EXPECT_EQ(r.dmr.errorsDetected, 0u) << w->name();
    }
}

INSTANTIATE_TEST_SUITE_P(Scales, AlternateSizes,
                         ::testing::Values(1u, 3u));

TEST(Accounting, VerifiedNeverExceedsIssuedThreadInstrs)
{
    setVerbose(false);
    for (const char *name : {"SCAN", "MUM", "Laplace"}) {
        auto cfg = arch::GpuConfig::testDefault();
        auto w = workloads::makeByName(name);
        gpu::Gpu g(cfg, dmr::DmrConfig::paperDefault());
        const auto r = workloads::run(*w, g);
        EXPECT_LE(r.dmr.verifiableThreadInstrs, r.issuedThreadInstrs)
            << name;
        EXPECT_LE(r.dmr.verifiedThreadInstrs,
                  r.dmr.verifiableThreadInstrs)
            << name;
        // Every verification implies at least one comparison.
        EXPECT_GE(r.dmr.comparisons, r.dmr.verifiedThreadInstrs)
            << name;
    }
}

TEST(EightLaneCluster, SuiteSubsetVerifies)
{
    setVerbose(false);
    auto cfg = arch::GpuConfig::testDefault();
    cfg.lanesPerCluster = 8;
    std::vector<std::unique_ptr<workloads::Workload>> ws;
    ws.push_back(workloads::makeBfs(2));
    ws.push_back(workloads::makeMatrixMul(64));
    ws.push_back(workloads::makeBitonicSort(2));
    ws.push_back(workloads::makeFft(2));
    for (auto &w : ws) {
        gpu::Gpu g(cfg, dmr::DmrConfig::paperDefault());
        const auto r = workloads::runVerified(*w, g);
        EXPECT_EQ(r.dmr.errorsDetected, 0u) << w->name();
        EXPECT_GT(r.coverage(), 0.4) << w->name();
    }
}
