/**
 * @file
 * Tests for the warp-shuffle ISA extension and the memory-partition
 * contention model.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "gpu/gpu.hh"
#include "isa/kernel_builder.hh"
#include "mem/memory_system.hh"
#include "workloads/workload.hh"

using namespace warped;
using isa::KernelBuilder;

namespace {

/** Classic warp-level sum reduction via SHFL_XOR butterflies. */
isa::Program
warpReduce(Addr out)
{
    KernelBuilder kb("reduce", 16);
    auto tid = kb.reg(), v = kb.reg(), o = kb.reg(), addr = kb.reg();
    kb.s2r(tid, isa::SpecialReg::Tid);
    kb.iaddi(v, tid, 1); // values 1..32 per warp
    for (unsigned m = 16; m >= 1; m >>= 1) {
        kb.shflXor(o, v, static_cast<std::int32_t>(m));
        kb.iadd(v, v, o);
    }
    kb.shli(addr, tid, 2);
    kb.iaddi(addr, addr, static_cast<std::int32_t>(out));
    kb.stg(addr, v);
    return kb.build();
}

} // namespace

TEST(Shfl, XorButterflyReduction)
{
    setVerbose(false);
    auto cfg = arch::GpuConfig::testDefault();
    cfg.numSms = 1;
    gpu::Gpu g(cfg, dmr::DmrConfig::paperDefault());
    const Addr out = g.allocator().alloc(32 * 4);
    const auto r = g.launch(warpReduce(out), 1, 32);
    // Sum of 1..32 = 528 in every lane; DMR must agree.
    for (unsigned t = 0; t < 32; ++t)
        EXPECT_EQ(g.mem().readWord(out + 4 * t), 528u) << t;
    EXPECT_EQ(r.dmr.errorsDetected, 0u);
    EXPECT_DOUBLE_EQ(r.coverage(), 1.0);
}

TEST(Shfl, DownShiftsWithClamp)
{
    setVerbose(false);
    auto cfg = arch::GpuConfig::testDefault();
    cfg.numSms = 1;
    gpu::Gpu g(cfg, dmr::DmrConfig::paperDefault());
    const Addr out = g.allocator().alloc(32 * 4);

    KernelBuilder kb("down", 16);
    auto tid = kb.reg(), v = kb.reg(), o = kb.reg(), addr = kb.reg();
    kb.s2r(tid, isa::SpecialReg::Tid);
    kb.mov(v, tid);
    kb.shflDown(o, v, 4);
    kb.shli(addr, tid, 2);
    kb.iaddi(addr, addr, static_cast<std::int32_t>(out));
    kb.stg(addr, o);

    g.launch(kb.build(), 1, 32);
    for (unsigned t = 0; t < 32; ++t) {
        // Lanes 28..31 have no source lane: keep their own value.
        const unsigned want = t + 4 < 32 ? t + 4 : t;
        EXPECT_EQ(g.mem().readWord(out + 4 * t), want) << t;
    }
}

TEST(Shfl, DivergentShuffleFallsBackToOwnValue)
{
    setVerbose(false);
    auto cfg = arch::GpuConfig::testDefault();
    cfg.numSms = 1;
    gpu::Gpu g(cfg, dmr::DmrConfig::paperDefault());
    const Addr out = g.allocator().alloc(32 * 4);

    // Only even lanes execute the shuffle: their XOR-1 partners are
    // inactive, so each gets its own value back.
    KernelBuilder kb("divshfl", 16);
    auto tid = kb.reg(), bit = kb.reg(), p = kb.reg(), v = kb.reg(),
         o = kb.reg(), addr = kb.reg(), one = kb.reg();
    kb.s2r(tid, isa::SpecialReg::Tid);
    kb.movi(one, 1);
    kb.andi(bit, tid, 1);
    kb.isetpNe(p, bit, one); // even lanes
    kb.iaddi(v, tid, 100);
    kb.movi(o, 0);
    kb.ifThen(p, [&] { kb.shflXor(o, v, 1); });
    kb.shli(addr, tid, 2);
    kb.iaddi(addr, addr, static_cast<std::int32_t>(out));
    kb.stg(addr, o);

    const auto r = g.launch(kb.build(), 1, 32);
    EXPECT_EQ(r.dmr.errorsDetected, 0u);
    for (unsigned t = 0; t < 32; ++t) {
        const unsigned want = (t % 2 == 0) ? t + 100 : 0;
        EXPECT_EQ(g.mem().readWord(out + 4 * t), want) << t;
    }
}

TEST(MemorySystem, QueueingDelaysConcurrentTransactions)
{
    auto cfg = arch::GpuConfig::testDefault();
    cfg.memoryPartitions = 2;
    cfg.memoryServicePeriod = 4;
    cfg.globalMemLatency = 100;
    mem::MemorySystem ms(cfg);

    // Four transactions hitting the same partition back to back.
    const auto done =
        ms.access(0, {0, 2, 4, 6}); // all even segments -> partition 0
    EXPECT_EQ(done, 0 + 3 * 4 + 100u);
    EXPECT_EQ(ms.transactions(), 4u);
    EXPECT_EQ(ms.queueingCycles(), 4u + 8u + 12u);

    // Spread across both partitions: half the queueing.
    mem::MemorySystem ms2(cfg);
    const auto done2 = ms2.access(0, {0, 1, 2, 3});
    EXPECT_EQ(done2, 0 + 1 * 4 + 100u);
}

TEST(MemorySystem, ContentionSlowsBandwidthBoundKernels)
{
    setVerbose(false);
    auto run = [](bool contention) {
        auto cfg = arch::GpuConfig::testDefault();
        cfg.numSms = 4;
        cfg.modelMemContention = contention;
        cfg.memoryPartitions = 2;
        cfg.memoryServicePeriod = 4;
        auto w = workloads::makeMum(4); // pointer-chasing traffic
        gpu::Gpu g(cfg, dmr::DmrConfig::off());
        return workloads::runVerified(*w, g).cycles;
    };
    EXPECT_GT(run(true), run(false));
}

TEST(MemorySystem, OffByDefault)
{
    EXPECT_FALSE(arch::GpuConfig::testDefault().modelMemContention);
}

TEST(WarpWidth, NonDefaultWarpSizesWork)
{
    setVerbose(false);
    for (unsigned ws : {16u, 64u}) {
        auto cfg = arch::GpuConfig::testDefault();
        cfg.warpSize = ws;
        cfg.numSms = 2;
        auto w = workloads::makeScan(2);
        gpu::Gpu g(cfg, dmr::DmrConfig::paperDefault());
        const auto r = workloads::runVerified(*w, g);
        EXPECT_EQ(r.dmr.errorsDetected, 0u) << ws;
        EXPECT_GT(r.coverage(), 0.5) << ws;
    }
}

TEST(WarpWidth, WiderWarpsDivergeMore)
{
    setVerbose(false);
    auto frac_full = [](unsigned ws) {
        auto cfg = arch::GpuConfig::testDefault();
        cfg.warpSize = ws;
        cfg.numSms = 2;
        auto w = workloads::makeBfs(2);
        gpu::Gpu g(cfg, dmr::DmrConfig::off());
        const auto r = workloads::runVerified(*w, g);
        return r.activeHist.rangeFraction(ws, ws);
    };
    // A wider warp bundles more divergent threads, so fully-active
    // issue slots become rarer — the scaling trend the paper's intro
    // motivates (more contexts -> more exposure for Warped-DMR).
    EXPECT_LT(frac_full(64), frac_full(16));
}
