/**
 * @file
 * Tests for the rollback-replay recovery engine: configuration
 * validation, checkpoint-ring mechanics, the Recovered outcome
 * classification, the recovery-disabled byte-identity guarantee, and
 * end-to-end fault repair / graceful give-up on real workloads.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "arch/gpu_config.hh"
#include "common/logging.hh"
#include "dmr/dmr_config.hh"
#include "fault/campaign_engine.hh"
#include "fault/fault_injector.hh"
#include "gpu/gpu.hh"
#include "recovery/checkpoint_ring.hh"
#include "recovery/recovery_config.hh"
#include "workloads/workload.hh"

using namespace warped;

namespace {

gpu::LaunchResult
runWorkload(workloads::Workload &w, gpu::Gpu &g, Cycle cap = 0)
{
    w.setup(g);
    return g.launch(w.program(), w.gridBlocks(), w.blockThreads(),
                    cap);
}

} // namespace

// ---------------------------------------------------------------------
// recovery/recovery_config.hh

TEST(RecoveryConfig, DefaultsAndPresets)
{
    const recovery::RecoveryConfig def;
    EXPECT_FALSE(def.enabled);
    EXPECT_FALSE(recovery::RecoveryConfig::off().enabled);
    const auto paper = recovery::RecoveryConfig::paperDefault();
    EXPECT_TRUE(paper.enabled);
    EXPECT_GT(paper.retryBudget, 0u);
    EXPECT_GT(paper.ringCapacity, 0u);
}

TEST(RecoveryConfig, EnabledWithoutRingPanics)
{
    recovery::RecoveryConfig rc = recovery::RecoveryConfig::paperDefault();
    rc.ringCapacity = 0;
    EXPECT_THROW(rc.validate(), std::logic_error);
}

TEST(RecoveryConfig, GpuRefusesRecoveryWithoutDmr)
{
    // There is no detection signal to recover from with DMR off:
    // that configuration is a user error, not a silent no-op.
    EXPECT_THROW(gpu::Gpu(arch::GpuConfig::testDefault(),
                          dmr::DmrConfig::off(), 1, nullptr,
                          recovery::RecoveryConfig::paperDefault()),
                 std::runtime_error);
}

// ---------------------------------------------------------------------
// recovery/checkpoint_ring.hh

TEST(CheckpointRing, EvictsTheLongestChainFront)
{
    recovery::CheckpointRing ring(2, 3);
    bool evicted = false;
    ring.push(0, evicted).traceId = 1;
    ring.push(0, evicted).traceId = 2;
    ring.push(1, evicted).traceId = 3;
    EXPECT_FALSE(evicted);
    EXPECT_EQ(ring.totalSize(), 3u);

    // Full: the next push evicts warp 0's front (longest chain).
    ring.push(1, evicted).traceId = 4;
    EXPECT_TRUE(evicted);
    EXPECT_EQ(ring.totalSize(), 3u);
    ASSERT_EQ(ring.chain(0).size(), 1u);
    EXPECT_EQ(ring.chain(0).front().traceId, 2u);
}

TEST(CheckpointRing, PopClearedDropsOnlyThePrefix)
{
    recovery::CheckpointRing ring(1, 8);
    bool evicted = false;
    ring.push(0, evicted).traceId = 1;
    ring.push(0, evicted).traceId = 2;
    ring.push(0, evicted).traceId = 3;
    ring.chain(0)[0].cleared = true;
    ring.chain(0)[2].cleared = true; // not a prefix: must stay
    ring.popCleared(0);
    ASSERT_EQ(ring.chain(0).size(), 2u);
    EXPECT_EQ(ring.chain(0).front().traceId, 2u);
    EXPECT_TRUE(ring.hasUnverified(0));

    ring.chain(0)[0].cleared = true;
    ring.popCleared(0);
    EXPECT_EQ(ring.chain(0).size(), 0u);
    EXPECT_EQ(ring.totalSize(), 0u);
    EXPECT_FALSE(ring.hasUnverified(0));
}

TEST(CheckpointRing, TrimFromErasesTheBack)
{
    recovery::CheckpointRing ring(1, 8);
    bool evicted = false;
    for (std::uint64_t t = 1; t <= 5; ++t)
        ring.push(0, evicted).traceId = t;
    ring.trimFrom(0, 2);
    ASSERT_EQ(ring.chain(0).size(), 2u);
    EXPECT_EQ(ring.chain(0).back().traceId, 2u);
    EXPECT_EQ(ring.totalSize(), 2u);
}

// ---------------------------------------------------------------------
// outcome classification

TEST(Outcome, RecoveredClassification)
{
    using fault::OutcomeClass;
    using fault::classifyOutcome;
    // The full repair: detected, finished, output golden, no give-up.
    EXPECT_EQ(classifyOutcome(true, true, false, true, true),
              OutcomeClass::Recovered);
    // Anything less stays Detected.
    EXPECT_EQ(classifyOutcome(true, true, false, false, true),
              OutcomeClass::Detected);
    EXPECT_EQ(classifyOutcome(true, true, true, true, true),
              OutcomeClass::Detected);
    EXPECT_EQ(classifyOutcome(true, true, false, true, false),
              OutcomeClass::Detected);
    // recovered_clean never rescues an undetected corruption: SDC is
    // only reachable from the !detected branch.
    EXPECT_EQ(classifyOutcome(true, false, false, false, true),
              OutcomeClass::Sdc);
    EXPECT_EQ(classifyOutcome(false, false, false, true, true),
              OutcomeClass::Masked);
    // The 4-arg overload is the recovery-oblivious classification.
    EXPECT_EQ(classifyOutcome(true, true, false, true),
              OutcomeClass::Detected);
    EXPECT_STREQ(fault::outcomeClassName(OutcomeClass::Recovered),
                 "recovered");
}

TEST(Outcome, RecoveredCountsTowardCoverage)
{
    fault::OutcomeCounts c;
    c.add(fault::OutcomeClass::Detected, true);
    c.add(fault::OutcomeClass::Recovered, true);
    c.add(fault::OutcomeClass::Sdc, true);
    c.add(fault::OutcomeClass::Masked, false);
    EXPECT_EQ(c.total(), 4u);
    // A recovered run was a detected run first.
    EXPECT_DOUBLE_EQ(c.coverage(), 2.0 / 4.0);
    EXPECT_DOUBLE_EQ(c.detectionRate(), 2.0 / 3.0);
}

// ---------------------------------------------------------------------
// the byte-identity guarantee: recovery off changes nothing

TEST(Recovery, DisabledPathIsByteIdentical)
{
    auto w1 = workloads::makeScan(2);
    gpu::Gpu g1(arch::GpuConfig::testDefault(),
                dmr::DmrConfig::paperDefault());
    const auto r1 = runWorkload(*w1, g1);

    auto w2 = workloads::makeScan(2);
    gpu::Gpu g2(arch::GpuConfig::testDefault(),
                dmr::DmrConfig::paperDefault(), 1, nullptr,
                recovery::RecoveryConfig::off());
    const auto r2 = runWorkload(*w2, g2);

    EXPECT_FALSE(r2.recoveryEnabled);
    EXPECT_EQ(r1.cycles, r2.cycles);
    const auto j1 = r1.metrics.toJson();
    EXPECT_EQ(j1, r2.metrics.toJson());
    // No recovery.* key leaks into a disabled run's registry.
    EXPECT_EQ(j1.find("recovery"), std::string::npos);
}

TEST(Recovery, OffCampaignReportCarriesNoRecoveryKeys)
{
    fault::EngineConfig ec;
    ec.workload = "SCAN";
    ec.gpu = arch::GpuConfig::testDefault();
    ec.space.cycleWindows = 64;
    ec.sites = 10;
    ec.seed = 7;
    const auto json =
        fault::CampaignEngine([] { return workloads::makeScan(2); },
                              ec)
            .run()
            .toJson();
    EXPECT_EQ(json.find("recovery"), std::string::npos);
    EXPECT_EQ(json.find("recovered"), std::string::npos);
}

// ---------------------------------------------------------------------
// end-to-end: checkpointing, repair, give-up

TEST(Recovery, FaultFreeRunStaysCorrectWithRecoveryOn)
{
    auto w = workloads::makeScan(2);
    gpu::Gpu g(arch::GpuConfig::testDefault(),
               dmr::DmrConfig::paperDefault(), 1, nullptr,
               recovery::RecoveryConfig::paperDefault());
    const auto r = runWorkload(*w, g);
    EXPECT_FALSE(r.hung);
    EXPECT_TRUE(w->verify(g));
    EXPECT_TRUE(r.recoveryEnabled);
    EXPECT_GT(r.recovery.checkpoints, 0u);
    EXPECT_EQ(r.recovery.rollbacks, 0u);
    EXPECT_EQ(r.recovery.giveUps, 0u);
    EXPECT_NE(r.metrics.toJson().find("\"recovery.checkpoints\""),
              std::string::npos);
}

TEST(Recovery, RecoveryOnRunIsDeterministic)
{
    std::string first;
    for (int i = 0; i < 2; ++i) {
        auto w = workloads::makeScan(2);
        gpu::Gpu g(arch::GpuConfig::testDefault(),
                   dmr::DmrConfig::paperDefault(), 1, nullptr,
                   recovery::RecoveryConfig::paperDefault());
        const auto json = runWorkload(*w, g).metrics.toJson();
        if (i == 0)
            first = json;
        else
            EXPECT_EQ(first, json);
    }
}

TEST(Recovery, TransientMismatchIsRolledBackAndRepaired)
{
    const auto mkFault = [](Cycle c) {
        fault::FaultSpec s;
        s.kind = fault::FaultKind::TransientBitFlip;
        s.sm = 0;
        s.lane = 1;
        s.bit = 7;
        s.cycleBegin = c;
        s.cycleEnd = c;
        return s;
    };
    // Probe single-cycle transient windows until one raises the
    // comparator under recovery, then require the full repair: the
    // rollback happened, nothing gave up, and the final output is
    // golden. (Windows that miss or stay masked are skipped — which
    // cycles activate depends on the workload's schedule.)
    unsigned repaired = 0;
    for (Cycle c = 20; c < 400 && repaired < 3; c += 7) {
        fault::FaultInjector inj;
        inj.add(mkFault(c));
        auto w = workloads::makeScan(2);
        gpu::Gpu g(arch::GpuConfig::testDefault(),
                   dmr::DmrConfig::paperDefault(), 1, &inj,
                   recovery::RecoveryConfig::paperDefault());
        const auto r = runWorkload(*w, g, 500000);
        if (inj.activations() == 0 || r.dmr.errorsDetected == 0)
            continue;
        EXPECT_GT(r.recovery.rollbacks, 0u) << "window " << c;
        EXPECT_FALSE(r.hung) << "window " << c;
        if (r.recovery.giveUps == 0) {
            EXPECT_TRUE(w->verify(g)) << "window " << c;
            ++repaired;
        }
    }
    EXPECT_GT(repaired, 0u)
        << "no probed transient window was detected and repaired";
}

TEST(Recovery, PermanentFaultExhaustsBudgetAndGivesUp)
{
    // A stuck-at fault reproduces on every replay: the retry budget
    // must bound the livelock and degrade to detection-only.
    fault::FaultSpec s;
    s.kind = fault::FaultKind::StuckAtOne;
    s.sm = 0;
    s.lane = 2;
    s.bit = 0;
    s.unit = isa::UnitType::SP; // keep addresses fault-free
    fault::FaultInjector inj;
    inj.add(s);
    auto w = workloads::makeScan(2);
    gpu::Gpu g(arch::GpuConfig::testDefault(),
               dmr::DmrConfig::paperDefault(), 1, &inj,
               recovery::RecoveryConfig::paperDefault());
    const auto r = runWorkload(*w, g, 500000);
    EXPECT_GT(r.dmr.errorsDetected, 0u);
    EXPECT_GT(r.recovery.rollbacks, 0u);
    EXPECT_GT(r.recovery.giveUps, 0u);
}

TEST(Recovery, TinyRingEvictsWithoutBreakingFaultFreeRuns)
{
    auto rc = recovery::RecoveryConfig::paperDefault();
    rc.ringCapacity = 2;
    auto w = workloads::makeScan(2);
    gpu::Gpu g(arch::GpuConfig::testDefault(),
               dmr::DmrConfig::paperDefault(), 1, nullptr, rc);
    const auto r = runWorkload(*w, g);
    EXPECT_FALSE(r.hung);
    EXPECT_TRUE(w->verify(g));
    EXPECT_GT(r.recovery.evictions, 0u);
    EXPECT_EQ(r.recovery.rollbacks, 0u);
}

// ---------------------------------------------------------------------
// campaign integration

namespace {

fault::EngineConfig
recoveryCampaignCfg()
{
    fault::EngineConfig ec;
    ec.workload = "SCAN";
    ec.gpu = arch::GpuConfig::testDefault();
    ec.space.cycleWindows = 64;
    ec.space.kinds = {fault::FaultKind::TransientBitFlip};
    ec.sites = 30;
    ec.seed = 7;
    ec.recovery = recovery::RecoveryConfig::paperDefault();
    return ec;
}

} // namespace

TEST(Recovery, CampaignConvertsDetectionsIntoRecoveries)
{
    const auto ec = recoveryCampaignCfg();
    const auto rep =
        fault::CampaignEngine([] { return workloads::makeScan(2); },
                              ec)
            .run();
    EXPECT_TRUE(rep.recoveryEnabled);
    // The headline guarantee: recovery never mints a new SDC.
    EXPECT_EQ(rep.overall.sdc, 0u);
    EXPECT_GT(rep.overall.recovered, 0u);
    EXPECT_EQ(rep.overall.recovered, rep.recoveryCount);
    const auto json = rep.toJson();
    EXPECT_NE(json.find("campaign.outcome.recovered"),
              std::string::npos);
    EXPECT_NE(json.find("campaign.recovered_fraction"),
              std::string::npos);
    EXPECT_NE(json.find("campaign.recovery.rollbacks"),
              std::string::npos);
}

TEST(Recovery, RecoveryCampaignIsIdenticalForAnyJobsCount)
{
    auto ec = recoveryCampaignCfg();
    ec.jobs = 1;
    const auto seq =
        fault::CampaignEngine([] { return workloads::makeScan(2); },
                              ec)
            .run()
            .toJson();
    ec.jobs = 3;
    const auto par =
        fault::CampaignEngine([] { return workloads::makeScan(2); },
                              ec)
            .run()
            .toJson();
    EXPECT_EQ(seq, par);
}
