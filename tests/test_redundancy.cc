/**
 * @file
 * Unit tests: the software-scheme comparison harness and transfer
 * model (§5.3).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "redundancy/scheme.hh"

using namespace warped;
using namespace warped::redundancy;

TEST(TransferModel, LinearInBytesPlusSetup)
{
    TransferModel tm;
    tm.bandwidthGBps = 4.0;
    tm.perCallUs = 10.0;
    // 4 GB/s == 4 B/ns: 4000 bytes -> 1000 ns + 10 us setup.
    EXPECT_DOUBLE_EQ(tm.timeNs(4000), 1000.0 + 10000.0);
    EXPECT_DOUBLE_EQ(tm.timeNs(0), 10000.0);
    EXPECT_DOUBLE_EQ(tm.timeNs(4000, 2), 1000.0 + 20000.0);
}

TEST(SchemeNames, AllDistinct)
{
    EXPECT_STREQ(schemeName(Scheme::Original), "Original");
    EXPECT_STREQ(schemeName(Scheme::RNaive), "R-Naive");
    EXPECT_STREQ(schemeName(Scheme::RThread), "R-Thread");
    EXPECT_STREQ(schemeName(Scheme::Dmtr), "DMTR");
    EXPECT_STREQ(schemeName(Scheme::WarpedDmr), "Warped-DMR");
}

namespace {

struct SchemeFixture : ::testing::Test
{
    SchemeFixture() : cfg(arch::GpuConfig::testDefault())
    {
        setVerbose(false);
        cfg.numSms = 4;
    }
    arch::GpuConfig cfg;
};

} // namespace

TEST_F(SchemeFixture, RNaiveDoublesKernelAndTransfers)
{
    const auto orig = runScheme(Scheme::Original, "SHA", cfg);
    const auto naive = runScheme(Scheme::RNaive, "SHA", cfg);
    EXPECT_DOUBLE_EQ(naive.kernelNs, 2.0 * orig.kernelNs);
    EXPECT_DOUBLE_EQ(naive.transferNs, 2.0 * orig.transferNs);
}

TEST_F(SchemeFixture, RThreadBetween1xAnd2x)
{
    const auto orig = runScheme(Scheme::Original, "SHA", cfg);
    const auto rthr = runScheme(Scheme::RThread, "SHA", cfg);
    EXPECT_GE(rthr.kernelNs, 0.9 * orig.kernelNs);
    EXPECT_LE(rthr.kernelNs, 2.2 * orig.kernelNs);
    // Output transfer duplicated, input not.
    EXPECT_GT(rthr.transferNs, orig.transferNs);
    EXPECT_LT(rthr.transferNs, 2.0 * orig.transferNs + 1.0);
}

TEST_F(SchemeFixture, HardwareSchemesKeepTransfersUnchanged)
{
    const auto orig = runScheme(Scheme::Original, "SHA", cfg);
    const auto dmtr = runScheme(Scheme::Dmtr, "SHA", cfg);
    const auto warped = runScheme(Scheme::WarpedDmr, "SHA", cfg);
    EXPECT_DOUBLE_EQ(dmtr.transferNs, orig.transferNs);
    EXPECT_DOUBLE_EQ(warped.transferNs, orig.transferNs);
}

TEST_F(SchemeFixture, WarpedDmrIsCheapestProtection)
{
    const auto naive = runScheme(Scheme::RNaive, "SCAN", cfg);
    const auto rthr = runScheme(Scheme::RThread, "SCAN", cfg);
    const auto dmtr = runScheme(Scheme::Dmtr, "SCAN", cfg);
    const auto warped = runScheme(Scheme::WarpedDmr, "SCAN", cfg);
    EXPECT_LE(warped.totalNs(), naive.totalNs());
    EXPECT_LE(warped.totalNs(), rthr.totalNs());
    EXPECT_LE(warped.totalNs(), dmtr.totalNs() * 1.02);
}

TEST_F(SchemeFixture, DmtrCoversEverything)
{
    const auto dmtr = runScheme(Scheme::Dmtr, "BitonicSort", cfg);
    // DMTR temporally verifies every instruction, partial warps too.
    EXPECT_DOUBLE_EQ(dmtr.launch.coverage(), 1.0);
    EXPECT_EQ(dmtr.launch.dmr.intraVerifiedThreads, 0u);
}
