/**
 * @file
 * Unit tests: the sharded campaign service — shard planning, the
 * delta protocol, aggregator determinism under every shard count and
 * failure schedule, the crash-safe aggregator state, the dispatch
 * queue, and the stratified estimator's degenerate-stratum edges.
 *
 * The headline invariant: for ANY disjoint cover of the run range,
 * folding the shard deltas in ANY order, with duplicates and
 * simulated worker deaths, reproduces the single-process campaign
 * report byte for byte.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "fault/campaign_engine.hh"
#include "fault/shard.hh"
#include "fault/stratified.hh"
#include "sim/shard_queue.hh"
#include "stats/accumulator.hh"

using namespace warped;
using namespace warped::fault;

namespace {

EngineConfig
scanEngineCfg()
{
    EngineConfig ec;
    ec.workload = "SCAN";
    ec.gpu = arch::GpuConfig::testDefault();
    ec.space.cycleWindows = 64;
    ec.sites = 30;
    ec.seed = 7;
    ec.jobs = 1;
    return ec;
}

WorkloadFactory
scanFactory()
{
    return [] { return workloads::makeScan(2); };
}

/** Fold every shard of @p plans (in the given order) into a fresh
 *  aggregator and return the report JSON. */
std::string
shardedJson(const EngineConfig &ec, std::uint64_t shard_count,
            const std::vector<std::uint64_t> &order)
{
    CampaignEngine orch(scanFactory(), ec);
    orch.prepare();
    const auto plans = planShards(orch.plannedSites(), shard_count);
    ShardAggregator agg(orch.skeleton(), orch.signature(),
                        orch.plannedSites(), shard_count);
    for (const auto i : order)
        agg.fold(runShardInProcess(
            scanFactory(), ec,
            plans[static_cast<std::size_t>(i)]));
    EXPECT_TRUE(agg.complete());
    return agg.report().toJson();
}

} // namespace

// ---------------------------------------------------------------------
// planShards

TEST(PlanShards, ContiguousCoverWithRemainderUpFront)
{
    const auto p = planShards(10, 3);
    ASSERT_EQ(p.size(), 3u);
    EXPECT_EQ(p[0].base, 0u);
    EXPECT_EQ(p[0].count, 4u); // 10 % 3 = 1 extra run, shard 0
    EXPECT_EQ(p[1].base, 4u);
    EXPECT_EQ(p[1].count, 3u);
    EXPECT_EQ(p[2].base, 7u);
    EXPECT_EQ(p[2].count, 3u);
}

TEST(PlanShards, MoreShardsThanRunsYieldsZeroCountShards)
{
    const auto p = planShards(2, 4);
    ASSERT_EQ(p.size(), 4u);
    EXPECT_EQ(p[0].count, 1u);
    EXPECT_EQ(p[1].count, 1u);
    EXPECT_EQ(p[2].count, 0u);
    EXPECT_EQ(p[3].count, 0u);
    // Zero-count shards still carry a consistent base.
    EXPECT_EQ(p[2].base, 2u);
    EXPECT_EQ(p[3].base, 2u);
}

TEST(PlanShards, SingleShardIsTheWholeRange)
{
    const auto p = planShards(1000000, 1);
    ASSERT_EQ(p.size(), 1u);
    EXPECT_EQ(p[0].base, 0u);
    EXPECT_EQ(p[0].count, 1000000u);
}

// ---------------------------------------------------------------------
// ShardDelta serialization

TEST(ShardDelta, JsonRoundTrip)
{
    ShardDelta d;
    d.shard = 3;
    d.base = 120;
    d.count = 40;
    d.signature = 0xdeadbeefcafe;
    d.counters["campaign.sampled"] = 40;
    d.counters["campaign.outcome.detected"] = 17;
    const auto text = d.toJson();
    const auto back = ShardDelta::fromJson(text);
    EXPECT_EQ(back.shard, d.shard);
    EXPECT_EQ(back.base, d.base);
    EXPECT_EQ(back.count, d.count);
    EXPECT_EQ(back.signature, d.signature);
    EXPECT_EQ(back.counters, d.counters);
}

TEST(ShardDelta, TornDocumentThrows)
{
    ShardDelta d;
    d.counters["campaign.sampled"] = 1;
    auto text = d.toJson();
    // A worker killed mid-write leaves no closing brace.
    text.resize(text.size() / 2);
    EXPECT_THROW(ShardDelta::fromJson(text), ShardError);
}

TEST(ShardDelta, TamperedCounterFailsFingerprint)
{
    ShardDelta d;
    d.counters["campaign.outcome.detected"] = 17;
    auto text = d.toJson();
    const auto pos = text.find(": 17");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, 4, ": 18");
    EXPECT_THROW(ShardDelta::fromJson(text), ShardError);
}

TEST(ShardDelta, UnsupportedVersionThrows)
{
    ShardDelta d;
    auto text = d.toJson();
    const auto pos = text.find("\"shard.version\": 1");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, 18, "\"shard.version\": 9");
    EXPECT_THROW(ShardDelta::fromJson(text), ShardError);
}

// ---------------------------------------------------------------------
// aggregator determinism — the tentpole invariant

TEST(ShardAggregator, AnyShardCountReproducesSingleProcessReport)
{
    const auto ec = scanEngineCfg();
    const auto single =
        CampaignEngine(scanFactory(), ec).run().toJson();

    EXPECT_EQ(shardedJson(ec, 1, {0}), single);
    EXPECT_EQ(shardedJson(ec, 3, {0, 1, 2}), single);
    EXPECT_EQ(shardedJson(ec, 8, {0, 1, 2, 3, 4, 5, 6, 7}), single);
}

TEST(ShardAggregator, FoldOrderDoesNotMatter)
{
    const auto ec = scanEngineCfg();
    EXPECT_EQ(shardedJson(ec, 8, {0, 1, 2, 3, 4, 5, 6, 7}),
              shardedJson(ec, 8, {7, 2, 5, 0, 6, 1, 4, 3}));
}

TEST(ShardAggregator, WorkerDeathAndReissueIsInvisible)
{
    const auto ec = scanEngineCfg();
    const auto single =
        CampaignEngine(scanFactory(), ec).run().toJson();

    CampaignEngine orch(scanFactory(), ec);
    orch.prepare();
    const auto plans = planShards(orch.plannedSites(), 3);
    ShardAggregator agg(orch.skeleton(), orch.signature(),
                        orch.plannedSites(), 3);

    // Shard 1's first worker "dies": its delta is simply never
    // delivered. The re-issued worker recomputes a bit-identical
    // delta because run i's site depends only on (seed, i).
    agg.fold(runShardInProcess(scanFactory(), ec, plans[0]));
    const auto lost = runShardInProcess(scanFactory(), ec, plans[1]);
    (void)lost;
    agg.fold(runShardInProcess(scanFactory(), ec, plans[2]));
    EXPECT_FALSE(agg.complete());
    EXPECT_EQ(agg.pendingShards(), std::vector<std::uint64_t>{1});

    const auto reissued =
        runShardInProcess(scanFactory(), ec, plans[1]);
    EXPECT_TRUE(agg.fold(reissued));
    // A late duplicate delivery (the "dead" worker wasn't dead after
    // all) folds idempotently.
    EXPECT_FALSE(agg.fold(reissued));
    EXPECT_TRUE(agg.complete());
    EXPECT_EQ(agg.report().toJson(), single);
}

TEST(ShardAggregator, SignatureMismatchIsRejected)
{
    const auto ec = scanEngineCfg();
    CampaignEngine orch(scanFactory(), ec);
    orch.prepare();
    ShardAggregator agg(orch.skeleton(), orch.signature(),
                        orch.plannedSites(), 2);

    auto other = ec;
    other.seed = 8; // different campaign
    CampaignEngine eng2(scanFactory(), other);
    eng2.prepare();
    const auto plans = planShards(eng2.plannedSites(), 2);
    const auto d = runShardInProcess(scanFactory(), other, plans[0]);
    EXPECT_THROW(agg.fold(d), ShardError);
}

TEST(ShardAggregator, RangeDisagreementIsRejected)
{
    const auto ec = scanEngineCfg();
    CampaignEngine orch(scanFactory(), ec);
    orch.prepare();
    ShardAggregator agg(orch.skeleton(), orch.signature(),
                        orch.plannedSites(), 2);
    // A worker run with --shard-count 3 produces a range the 2-shard
    // plan never issued.
    const auto plans = planShards(orch.plannedSites(), 3);
    const auto d = runShardInProcess(scanFactory(), ec, plans[0]);
    EXPECT_THROW(agg.fold(d), ShardError);
}

TEST(ShardAggregator, StateRoundTripResumesPendingShardsOnly)
{
    const auto ec = scanEngineCfg();
    const auto single =
        CampaignEngine(scanFactory(), ec).run().toJson();

    CampaignEngine orch(scanFactory(), ec);
    orch.prepare();
    const auto plans = planShards(orch.plannedSites(), 3);
    ShardAggregator agg(orch.skeleton(), orch.signature(),
                        orch.plannedSites(), 3);
    agg.fold(runShardInProcess(scanFactory(), ec, plans[0]));
    agg.fold(runShardInProcess(scanFactory(), ec, plans[2]));
    const auto state = agg.stateJson();

    // The orchestrator is killed; a new one restores the aggregate.
    ShardAggregator resumed(orch.skeleton(), orch.signature(),
                            orch.plannedSites(), 3);
    ASSERT_TRUE(resumed.loadState(state));
    EXPECT_EQ(resumed.foldedShards(), 2u);
    EXPECT_EQ(resumed.pendingShards(),
              std::vector<std::uint64_t>{1});
    resumed.fold(runShardInProcess(scanFactory(), ec, plans[1]));
    EXPECT_EQ(resumed.report().toJson(), single);
}

TEST(ShardAggregator, TornStateThrowsStaleStateIsIgnored)
{
    const auto ec = scanEngineCfg();
    CampaignEngine orch(scanFactory(), ec);
    orch.prepare();
    const auto plans = planShards(orch.plannedSites(), 2);
    ShardAggregator agg(orch.skeleton(), orch.signature(),
                        orch.plannedSites(), 2);
    agg.fold(runShardInProcess(scanFactory(), ec, plans[0]));
    auto state = agg.stateJson();

    // Torn mid-write: hard error, never a silent restart.
    ShardAggregator fresh(orch.skeleton(), orch.signature(),
                          orch.plannedSites(), 2);
    EXPECT_THROW(
        fresh.loadState(state.substr(0, state.size() / 2)),
        ShardError);

    // Stale (different shard layout): warned and ignored.
    ShardAggregator other(orch.skeleton(), orch.signature(),
                          orch.plannedSites(), 4);
    EXPECT_FALSE(other.loadState(state));
    EXPECT_EQ(other.foldedShards(), 0u);
}

// ---------------------------------------------------------------------
// stratified sampling end to end

TEST(ShardAggregator, StratifiedCampaignShardsIdentically)
{
    auto ec = scanEngineCfg();
    ec.strataWindows = 4;
    const auto single =
        CampaignEngine(scanFactory(), ec).run();
    ASSERT_EQ(single.strataWindows, 4u);
    ASSERT_FALSE(single.byStratum.empty());
    ASSERT_FALSE(single.stratumSizes.empty());

    EXPECT_EQ(shardedJson(ec, 3, {2, 0, 1}), single.toJson());
}

TEST(StratifiedSpace, PartitionsTheSiteSpaceExactly)
{
    const auto ec = scanEngineCfg();
    CampaignEngine eng(scanFactory(), ec);
    eng.prepare();
    const StratifiedSpace strat(eng.space(), 4);

    std::uint64_t covered = 0;
    for (const auto sz : strat.sizes())
        covered += sz;
    EXPECT_EQ(covered, eng.space().size());
    EXPECT_EQ(strat.labels().size(), strat.strata());
}

TEST(StratifiedSpace, AllocationIsExhaustiveAndInOrder)
{
    const auto ec = scanEngineCfg();
    CampaignEngine eng(scanFactory(), ec);
    eng.prepare();
    StratifiedSpace strat(eng.space(), 4);
    strat.allocate(100);

    std::uint64_t sum = 0;
    for (std::size_t h = 0; h < strat.strata(); ++h)
        sum += strat.allocated(h);
    EXPECT_EQ(sum, 100u);

    // Every run index maps into the stratum that owns it, and the
    // drawn site lies inside that stratum's blocks.
    for (std::uint64_t r = 0; r < 100; ++r) {
        const auto h = strat.stratumOfRun(r);
        ASSERT_LT(h, strat.strata());
        const auto site = strat.siteForRun(ec.seed, r);
        EXPECT_LT(site, eng.space().size());
    }
}

// ---------------------------------------------------------------------
// stats::StratifiedEstimator edges (the Wilson-merge corner cases)

TEST(StratifiedEstimator, MergeEqualsDirectAccumulation)
{
    const std::vector<std::uint64_t> sizes = {60, 40};
    stats::StratifiedEstimator a(sizes), b(sizes), direct(sizes);
    a.addCounts(0, 10, 20);
    b.addCounts(0, 5, 10);
    b.addCounts(1, 8, 8);
    direct.addCounts(0, 15, 30);
    direct.addCounts(1, 8, 8);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.estimate(), direct.estimate());
    EXPECT_DOUBLE_EQ(a.interval().lo, direct.interval().lo);
    EXPECT_DOUBLE_EQ(a.interval().hi, direct.interval().hi);
    EXPECT_EQ(a.sampled(), direct.sampled());
}

TEST(StratifiedEstimator, EmptyStratumIsConservativeNotFatal)
{
    stats::StratifiedEstimator est({50, 50});
    est.addCounts(0, 40, 50); // stratum 1 never sampled
    const auto ci = est.interval();
    EXPECT_GE(ci.lo, 0.0);
    EXPECT_LE(ci.hi, 1.0);
    // The pooled proportion (0.8) substitutes for the unsampled
    // stratum, so the point estimate stays 0.8...
    EXPECT_NEAR(est.estimate(), 0.8, 1e-12);
    // ...but the worst-case variance of the missing stratum widens
    // the interval beyond the fully-sampled equivalent.
    stats::StratifiedEstimator full({50, 50});
    full.addCounts(0, 40, 50);
    full.addCounts(1, 40, 50);
    EXPECT_GT(ci.hi - ci.lo,
              full.interval().hi - full.interval().lo);
}

TEST(StratifiedEstimator, AllMaskedStratumPinsAtZero)
{
    stats::StratifiedEstimator est({10, 10});
    est.addCounts(0, 0, 10); // everything Masked: zero caught
    est.addCounts(1, 0, 10);
    EXPECT_DOUBLE_EQ(est.estimate(), 0.0);
    const auto ci = est.interval();
    EXPECT_DOUBLE_EQ(ci.lo, 0.0);
    EXPECT_LE(ci.hi, 1.0);
    EXPECT_DOUBLE_EQ(est.stratum(0).wilson().lo, 0.0);
}

TEST(StratifiedEstimator, SingleRunStratumIsWellDefined)
{
    stats::StratifiedEstimator est({100, 1});
    est.addCounts(0, 50, 100);
    est.addCounts(1, 1, 1);
    const auto ci = est.interval();
    EXPECT_GE(ci.lo, 0.0);
    EXPECT_LE(ci.hi, 1.0);
    EXPECT_GT(est.estimate(), 0.0);
}

TEST(ProportionalAllocation, ExactDeterministicAndCoversNonzero)
{
    const std::vector<std::uint64_t> sizes = {70, 20, 10, 0};
    const auto n = stats::proportionalAllocation(sizes, 17);
    ASSERT_EQ(n.size(), 4u);
    EXPECT_EQ(n[0] + n[1] + n[2] + n[3], 17u);
    EXPECT_EQ(n[3], 0u); // empty stratum draws nothing
    EXPECT_GE(n[1], 1u); // nonzero strata draw at least one
    EXPECT_GE(n[2], 1u);
    // Deterministic: same inputs, same split.
    EXPECT_EQ(stats::proportionalAllocation(sizes, 17), n);
}

// ---------------------------------------------------------------------
// sim::ShardQueue

TEST(ShardQueue, AcksDrainTheQueue)
{
    sim::ShardQueue q({0, 1, 2});
    const auto a = q.acquire();
    const auto b = q.acquire();
    ASSERT_TRUE(a && b);
    q.ack(*a);
    q.ack(*b);
    const auto c = q.acquire();
    ASSERT_TRUE(c);
    q.ack(*c);
    EXPECT_TRUE(q.done());
    EXPECT_FALSE(q.acquire());
    EXPECT_EQ(q.failures(), 0u);
}

TEST(ShardQueue, FailReissuesTheShard)
{
    sim::ShardQueue q({5});
    const auto a = q.acquire();
    ASSERT_TRUE(a);
    q.fail(*a); // worker died
    const auto b = q.acquire();
    ASSERT_TRUE(b);
    EXPECT_EQ(*b, 5u);
    q.ack(*b);
    EXPECT_TRUE(q.done());
    EXPECT_EQ(q.failures(), 1u);
}

TEST(ShardQueue, EmptyQueueIsImmediatelyDone)
{
    sim::ShardQueue q({});
    EXPECT_TRUE(q.done());
    EXPECT_FALSE(q.acquire());
}

TEST(ShardQueue, ConcurrentAcquireAckFailEveryShardAckedExactlyOnce)
{
    // The dispatcher runs several threads against one queue; a lost
    // wakeup on the final ack would leave blocked acquirers hanging
    // forever, and a double-issue would fold a shard twice. Hammer
    // the acquire/ack/fail cycle from many threads: every shard must
    // be acked exactly once and every thread must come home.
    constexpr std::uint64_t kShards = 64;
    constexpr unsigned kThreads = 8;
    std::vector<std::uint64_t> all;
    for (std::uint64_t i = 0; i < kShards; ++i)
        all.push_back(i);
    sim::ShardQueue q(all);

    std::vector<unsigned> acks(kShards, 0);
    std::vector<unsigned> fails(kShards, 0);
    std::mutex mu;
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < kThreads; ++t) {
        pool.emplace_back([&, t] {
            while (const auto s = q.acquire()) {
                const auto shard = *s;
                bool failOnce = false;
                {
                    std::lock_guard<std::mutex> lk(mu);
                    ASSERT_LT(shard, kShards);
                    // First visit by an odd-numbered thread fails
                    // the shard once, exercising re-issue under
                    // contention.
                    if ((t & 1) && fails[shard] == 0) {
                        ++fails[shard];
                        failOnce = true;
                    } else {
                        ++acks[shard];
                    }
                }
                if (failOnce)
                    q.fail(shard);
                else
                    q.ack(shard);
            }
            // acquire() returned nullopt: all work must really be
            // retired, not merely in flight.
            EXPECT_TRUE(q.done());
        });
    }
    for (auto &th : pool)
        th.join();
    for (std::uint64_t i = 0; i < kShards; ++i)
        EXPECT_EQ(acks[static_cast<std::size_t>(i)], 1u)
            << "shard " << i;
    EXPECT_EQ(q.failures(),
              std::accumulate(fails.begin(), fails.end(), 0u));
}

// ---------------------------------------------------------------------
// delta hardening: corrupt, truncated, and oversized documents must
// be diagnosed, never crash or silently mis-fold

TEST(ShardDelta, EveryPrefixTruncationIsDiagnosedNotCrash)
{
    ShardDelta d;
    d.shard = 1;
    d.base = 10;
    d.count = 5;
    d.signature = 42;
    d.counters["campaign.sampled"] = 5;
    d.counters["campaign.outcome.sdc"] = 2;
    const auto text = d.toJson();
    // A worker can die after writing any byte count; every prefix
    // must either throw ShardError or — when the cut lands after the
    // closing brace and only sheds trailing whitespace — decode to
    // the identical delta. Nothing in between is acceptable.
    for (std::size_t n = 0; n < text.size(); ++n) {
        const auto prefix = text.substr(0, n);
        try {
            const auto got = ShardDelta::fromJson(prefix);
            EXPECT_EQ(got.shard, d.shard) << "prefix of " << n;
            EXPECT_EQ(got.base, d.base) << "prefix of " << n;
            EXPECT_EQ(got.count, d.count) << "prefix of " << n;
            EXPECT_EQ(got.signature, d.signature)
                << "prefix of " << n;
            EXPECT_EQ(got.counters, d.counters)
                << "prefix of " << n;
            // Only a whitespace-trimmed full document may succeed.
            EXPECT_EQ(prefix.find('}'), prefix.size() - 1)
                << "prefix of " << n
                << " bytes parsed without reaching the closing brace";
        } catch (const ShardError &) {
            // diagnosed, as required
        }
    }
    EXPECT_NO_THROW(ShardDelta::fromJson(text));
}

TEST(ShardDelta, SingleByteCorruptionNeverMisfolds)
{
    ShardDelta d;
    d.shard = 0;
    d.base = 0;
    d.count = 8;
    d.signature = 7;
    d.counters["campaign.sampled"] = 8;
    d.counters["campaign.outcome.masked"] = 3;
    const auto text = d.toJson();
    // Flip one byte at a time through the whole document. Every
    // variant must either throw ShardError or decode to a delta
    // whose header and counters fingerprint-check internally — a
    // corrupt document must never fold wrong numbers silently.
    unsigned rejected = 0;
    for (std::size_t at = 0; at < text.size(); ++at) {
        std::string bad = text;
        bad[at] ^= 0x08;
        if (bad[at] == text[at])
            continue;
        try {
            const auto back = ShardDelta::fromJson(bad);
            // Parsed: the damage must have hit redundant whitespace
            // or been absorbed into a *consistent* document. The
            // fingerprint covers the counters, so the payload is
            // intact.
            EXPECT_EQ(back.counters, d.counters) << "byte " << at;
        } catch (const ShardError &) {
            ++rejected;
        }
    }
    // The vast majority of flips must be caught outright.
    EXPECT_GT(rejected, text.size() / 2);
}

TEST(ShardDelta, OversizedDocumentIsRefusedBeforeParsing)
{
    std::string huge = "{\"shard.version\": 1";
    huge.append(70u * 1024 * 1024, ' ');
    huge += "}";
    EXPECT_THROW(ShardDelta::fromJson(huge), ShardError);
}

TEST(ShardDelta, RunawayKeyIsRefused)
{
    ShardDelta d;
    d.counters[std::string(8192, 'k')] = 1;
    EXPECT_THROW(ShardDelta::fromJson(d.toJson()), ShardError);
}

TEST(ShardDelta, OverflowingRunRangeIsRefused)
{
    ShardDelta d;
    d.shard = 0;
    d.base = ~std::uint64_t{0} - 1;
    d.count = 5; // base + count wraps
    d.signature = 1;
    EXPECT_THROW(ShardDelta::fromJson(d.toJson()), ShardError);
}

TEST(ShardAggregator, CorruptHaveMarkerInStateIsDiagnosed)
{
    CampaignEngine orch(scanFactory(), scanEngineCfg());
    orch.prepare();
    ShardAggregator agg(orch.skeleton(), orch.signature(),
                        orch.plannedSites(), 3);
    auto plans = planShards(orch.plannedSites(), 3);
    agg.fold(runShardInProcess(scanFactory(), scanEngineCfg(),
                               plans[0]));
    auto state = agg.stateJson();
    const auto pos = state.find("aggregator.have.0");
    ASSERT_NE(pos, std::string::npos);
    // Damage the shard marker's digits: "have.0" -> "have.x". This
    // used to escape as a raw std::invalid_argument out of
    // std::stoull and crash the orchestrator.
    state[pos + 16] = 'x';
    ShardAggregator fresh(orch.skeleton(), orch.signature(),
                          orch.plannedSites(), 3);
    EXPECT_THROW(fresh.loadState(state), ShardError);
}
