/**
 * @file
 * Unit tests: fault models, the injector's matching rules, and
 * campaign outcome classification.
 */

#include <gtest/gtest.h>

#include <bit>

#include "common/logging.hh"
#include "fault/campaign.hh"
#include "fault/fault_injector.hh"
#include "workloads/workload.hh"

using namespace warped;
using namespace warped::fault;

namespace {

func::FaultCtx
ctx(unsigned sm, unsigned lane, isa::UnitType unit = isa::UnitType::SP,
    Cycle cycle = 0)
{
    func::FaultCtx c;
    c.sm = sm;
    c.lane = lane;
    c.unit = unit;
    c.cycle = cycle;
    return c;
}

} // namespace

TEST(FaultInjector, TransientFlipsOnlyInWindow)
{
    FaultInjector inj;
    FaultSpec s;
    s.kind = FaultKind::TransientBitFlip;
    s.sm = 0;
    s.lane = 3;
    s.bit = 4;
    s.cycleBegin = 100;
    s.cycleEnd = 100;
    inj.add(s);

    EXPECT_EQ(inj.apply(0, ctx(0, 3, isa::UnitType::SP, 99)), 0u);
    EXPECT_EQ(inj.apply(0, ctx(0, 3, isa::UnitType::SP, 100)), 16u);
    EXPECT_EQ(inj.apply(0, ctx(0, 3, isa::UnitType::SP, 101)), 0u);
    EXPECT_EQ(inj.activations(), 1u);
}

TEST(FaultInjector, StuckAtSemantics)
{
    FaultInjector inj;
    FaultSpec s0;
    s0.kind = FaultKind::StuckAtZero;
    s0.lane = 1;
    s0.bit = 0;
    inj.add(s0);
    EXPECT_EQ(inj.apply(0xFF, ctx(0, 1)), 0xFEu);
    EXPECT_EQ(inj.apply(0xFE, ctx(0, 1)), 0xFEu); // no change, benign

    FaultInjector inj1;
    FaultSpec s1;
    s1.kind = FaultKind::StuckAtOne;
    s1.lane = 1;
    s1.bit = 7;
    inj1.add(s1);
    EXPECT_EQ(inj1.apply(0, ctx(0, 1)), 0x80u);
}

TEST(FaultInjector, LocationMatteringSmLaneUnit)
{
    FaultInjector inj;
    FaultSpec s;
    s.kind = FaultKind::StuckAtOne;
    s.sm = 2;
    s.lane = 5;
    s.bit = 0;
    s.unit = isa::UnitType::SFU;
    inj.add(s);

    // Wrong SM, lane or unit: untouched.
    EXPECT_EQ(inj.apply(0, ctx(1, 5, isa::UnitType::SFU)), 0u);
    EXPECT_EQ(inj.apply(0, ctx(2, 6, isa::UnitType::SFU)), 0u);
    EXPECT_EQ(inj.apply(0, ctx(2, 5, isa::UnitType::SP)), 0u);
    EXPECT_EQ(inj.apply(0, ctx(2, 5, isa::UnitType::SFU)), 1u);
}

TEST(FaultInjector, ActivationCountsOnlyRealChanges)
{
    FaultInjector inj;
    FaultSpec s;
    s.kind = FaultKind::StuckAtOne;
    s.lane = 0;
    s.bit = 0;
    inj.add(s);
    inj.apply(1, ctx(0, 0)); // already 1: no change
    EXPECT_EQ(inj.activations(), 0u);
    inj.apply(0, ctx(0, 0));
    EXPECT_EQ(inj.activations(), 1u);
    inj.clear();
    EXPECT_EQ(inj.activations(), 0u);
    EXPECT_EQ(inj.apply(0, ctx(0, 0)), 0u); // fault removed
}

TEST(FaultInjector, MultipleFaultsCompose)
{
    FaultInjector inj;
    FaultSpec a;
    a.kind = FaultKind::StuckAtOne;
    a.lane = 0;
    a.bit = 0;
    FaultSpec b;
    b.kind = FaultKind::StuckAtOne;
    b.lane = 0;
    b.bit = 1;
    inj.add(a);
    inj.add(b);
    EXPECT_EQ(inj.apply(0, ctx(0, 0)), 3u);
}

TEST(Campaign, FaultFreeBaselineIsAllBenign)
{
    setVerbose(false);
    // Campaign with stuck-at faults restricted to the SFU on a
    // workload with no SFU instructions: never activated.
    auto cfg = arch::GpuConfig::testDefault();
    cfg.numSms = 2;
    CampaignConfig cc;
    cc.runs = 5;
    cc.kind = FaultKind::StuckAtOne;
    cc.unit = isa::UnitType::SFU;
    const auto res = runCampaign([] { return workloads::makeScan(1); },
                                 cfg, dmr::DmrConfig::paperDefault(),
                                 cc);
    EXPECT_EQ(res.runs, 5u);
    EXPECT_EQ(res.notActivated, 5u);
    EXPECT_DOUBLE_EQ(res.detectionRate(), 1.0);
}

TEST(Campaign, DetectsStuckAtFaultsWithProtection)
{
    setVerbose(false);
    auto cfg = arch::GpuConfig::testDefault();
    cfg.numSms = 2;
    CampaignConfig cc;
    cc.runs = 8;
    cc.kind = FaultKind::StuckAtOne;
    const auto res = runCampaign([] { return workloads::makeScan(1); },
                                 cfg, dmr::DmrConfig::paperDefault(),
                                 cc);
    const unsigned activated =
        res.detected + res.sdc + res.benign + res.hangs;
    EXPECT_GT(activated, 0u);
    EXPECT_EQ(res.sdc, 0u) << "silent corruption under full protection";
}

TEST(Campaign, UnprotectedMachineProducesSdc)
{
    setVerbose(false);
    auto cfg = arch::GpuConfig::testDefault();
    cfg.numSms = 2;
    CampaignConfig cc;
    cc.runs = 8;
    cc.kind = FaultKind::StuckAtOne;
    const auto res = runCampaign([] { return workloads::makeScan(1); },
                                 cfg, dmr::DmrConfig::off(), cc);
    EXPECT_EQ(res.detected, 0u);
    EXPECT_GT(res.sdc + res.hangs, 0u);
}

TEST(Campaign, DetectionLatencyIsTinyVsKernelLength)
{
    setVerbose(false);
    auto cfg = arch::GpuConfig::testDefault();
    cfg.numSms = 2;
    CampaignConfig cc;
    cc.runs = 6;
    cc.kind = FaultKind::StuckAtOne;
    const auto res = runCampaign([] { return workloads::makeSha(1); },
                                 cfg, dmr::DmrConfig::paperDefault(),
                                 cc);
    ASSERT_GT(res.detected, 0u);
    // Warped-DMR raises the alarm within a few pipeline lengths of
    // the first corrupted value; software schemes wait for the
    // kernel to finish.
    EXPECT_LT(res.meanDetectionLatency(), 100.0);
    EXPECT_GT(double(res.kernelLengthSum) / res.detected,
              10.0 * res.meanDetectionLatency());
}

TEST(FaultInjector, FirstActivationCycleIsRecorded)
{
    FaultInjector inj;
    FaultSpec s;
    s.kind = FaultKind::StuckAtOne;
    s.lane = 0;
    s.bit = 0;
    inj.add(s);
    func::FaultCtx c;
    c.lane = 0;
    c.cycle = 41;
    inj.apply(1, c); // no change
    c.cycle = 42;
    inj.apply(0, c); // first real activation
    c.cycle = 99;
    inj.apply(0, c);
    EXPECT_EQ(inj.firstActivationCycle(), 42u);
}

TEST(RandomFaultHook, RateZeroIsClean)
{
    RandomFaultHook h(0.0, 1);
    func::FaultCtx c;
    for (unsigned i = 0; i < 1000; ++i)
        EXPECT_EQ(h.apply(i, c), i);
    EXPECT_EQ(h.activations(), 0u);
}

TEST(RandomFaultHook, RateScalesActivations)
{
    func::FaultCtx c;
    RandomFaultHook lo(0.001, 7), hi(0.1, 7);
    for (unsigned i = 0; i < 20000; ++i) {
        lo.apply(i, c);
        hi.apply(i, c);
    }
    EXPECT_GT(hi.activations(), 10 * lo.activations());
    // Corruption is a single bit flip.
    RandomFaultHook always(1.0, 3);
    const auto v = always.apply(0, c);
    EXPECT_EQ(std::popcount(v), 1);
}

TEST(RandomFaultHook, ResetRestoresConstructionState)
{
    // Regression: a hook reused across launches kept its RNG position
    // and leaked the previous run's activation count.
    func::FaultCtx c;
    RandomFaultHook h(0.05, 11);
    std::vector<RegValue> first;
    for (unsigned i = 0; i < 500; ++i)
        first.push_back(h.apply(i, c));
    const auto acts = h.activations();
    EXPECT_GT(acts, 0u);

    h.reset();
    EXPECT_EQ(h.activations(), 0u);
    for (unsigned i = 0; i < 500; ++i)
        EXPECT_EQ(h.apply(i, c), first[i]);
    EXPECT_EQ(h.activations(), acts);
}
