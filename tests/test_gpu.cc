/**
 * @file
 * Integration tests: chip-level launch — block dispatch across SMs,
 * launch validation, watchdog, statistics aggregation.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "gpu/gpu.hh"
#include "isa/kernel_builder.hh"

using namespace warped;
using namespace warped::isa;

namespace {

Program
counterKernel(Addr out, unsigned iters)
{
    KernelBuilder kb("counter", 16);
    auto gtid = kb.reg(), i = kb.reg(), lim = kb.reg(), acc = kb.reg(),
         addr = kb.reg();
    kb.s2r(gtid, SpecialReg::Gtid);
    kb.movi(lim, static_cast<std::int32_t>(iters));
    kb.movi(acc, 0);
    kb.forCounter(i, 0, lim, 1, [&] { kb.iaddi(acc, acc, 1); });
    kb.shli(addr, gtid, 2);
    kb.iaddi(addr, addr, static_cast<std::int32_t>(out));
    kb.stg(addr, acc);
    return kb.build();
}

} // namespace

TEST(Gpu, AllBlocksRunOnAllSms)
{
    setVerbose(false);
    gpu::Gpu g(arch::GpuConfig::testDefault(), dmr::DmrConfig::off());
    const Addr out = g.allocator().alloc(64 * 64 * 4);
    const auto prog = counterKernel(out, 5);
    const auto r = g.launch(prog, 64, 64);
    EXPECT_EQ(r.blocksRetired, 64u);
    EXPECT_FALSE(r.hung);
    for (unsigned t = 0; t < 64 * 64; ++t)
        ASSERT_EQ(g.mem().readWord(out + 4 * t), 5u) << "thread " << t;
}

TEST(Gpu, MoreSmsFinishSooner)
{
    setVerbose(false);
    auto cfg1 = arch::GpuConfig::testDefault();
    cfg1.numSms = 1;
    auto cfg4 = cfg1;
    cfg4.numSms = 4;

    Cycle c1, c4;
    {
        gpu::Gpu g(cfg1, dmr::DmrConfig::off());
        const Addr out = g.allocator().alloc(32 * 256 * 4);
        c1 = g.launch(counterKernel(out, 20), 32, 256).cycles;
    }
    {
        gpu::Gpu g(cfg4, dmr::DmrConfig::off());
        const Addr out = g.allocator().alloc(32 * 256 * 4);
        c4 = g.launch(counterKernel(out, 20), 32, 256).cycles;
    }
    EXPECT_LT(double(c4), 0.5 * double(c1));
}

TEST(Gpu, LaunchValidationFatals)
{
    setVerbose(false);
    gpu::Gpu g(arch::GpuConfig::testDefault(), dmr::DmrConfig::off());
    const Addr out = g.allocator().alloc(1024);
    const auto prog = counterKernel(out, 1);
    EXPECT_THROW(g.launch(prog, 0, 32), std::runtime_error);
    EXPECT_THROW(g.launch(prog, 1, 0), std::runtime_error);
    EXPECT_THROW(g.launch(prog, 1, 4096), std::runtime_error);
}

TEST(Gpu, OversizedSharedMemoryIsFatal)
{
    setVerbose(false);
    gpu::Gpu g(arch::GpuConfig::testDefault(), dmr::DmrConfig::off());
    KernelBuilder kb("big", 16);
    kb.shared(65 * 1024);
    auto a = kb.reg();
    kb.movi(a, 1);
    const auto prog = kb.build();
    EXPECT_THROW(g.launch(prog, 1, 32), std::runtime_error);
}

TEST(Gpu, WatchdogFlagsRunaway)
{
    setVerbose(false);
    gpu::Gpu g(arch::GpuConfig::testDefault(), dmr::DmrConfig::off());
    // An honest but long kernel against a tiny watchdog budget.
    const Addr out = g.allocator().alloc(32 * 4);
    const auto prog = counterKernel(out, 100000);
    const auto r = g.launch(prog, 1, 32, /*cycle_cap=*/500);
    EXPECT_TRUE(r.hung);
    EXPECT_EQ(r.cycles, 501u);
}

TEST(Gpu, StatsAggregateAcrossSms)
{
    setVerbose(false);
    gpu::Gpu g(arch::GpuConfig::testDefault(),
               dmr::DmrConfig::paperDefault());
    const Addr out = g.allocator().alloc(8 * 256 * 4);
    const auto prog = counterKernel(out, 3);
    const auto r = g.launch(prog, 8, 256);
    EXPECT_GT(r.issuedWarpInstrs, 0u);
    EXPECT_EQ(r.issuedThreadInstrs, r.activeHist.total() == 0
                                        ? 0
                                        : r.issuedThreadInstrs);
    // The histogram holds exactly one entry per issued instruction.
    EXPECT_EQ(r.activeHist.total(), r.issuedWarpInstrs);
    // Unit issues partition the issue slots.
    EXPECT_EQ(r.unitIssues[0] + r.unitIssues[1] + r.unitIssues[2],
              r.issuedWarpInstrs);
    // Coverage bounds.
    EXPECT_GT(r.coverage(), 0.0);
    EXPECT_LE(r.coverage(), 1.0);
    EXPECT_EQ(r.dmr.errorsDetected, 0u);
}

TEST(Gpu, DeterministicAcrossRuns)
{
    setVerbose(false);
    auto run = [] {
        gpu::Gpu g(arch::GpuConfig::testDefault(),
                   dmr::DmrConfig::paperDefault(), /*seed=*/7);
        const Addr out = g.allocator().alloc(16 * 128 * 4);
        return g.launch(counterKernel(out, 10), 16, 128).cycles;
    };
    EXPECT_EQ(run(), run());
}

TEST(Gpu, IssueTraceBoundedAndOrdered)
{
    setVerbose(false);
    auto cfg = arch::GpuConfig::testDefault();
    cfg.traceIssueLimit = 16;
    gpu::Gpu g(cfg, dmr::DmrConfig::off());
    const Addr out = g.allocator().alloc(4 * 64 * 4);
    const auto r = g.launch(counterKernel(out, 4), 4, 64);

    // Bounded per SM, non-empty, cycle-ordered, fields plausible.
    EXPECT_GT(r.trace.size(), 0u);
    EXPECT_LE(r.trace.size(), std::size_t{16} * cfg.numSms);
    for (std::size_t i = 1; i < r.trace.size(); ++i)
        EXPECT_LE(r.trace[i - 1].cycle, r.trace[i].cycle);
    for (const auto &ev : r.trace) {
        EXPECT_LT(ev.sm, cfg.numSms);
        EXPECT_LE(ev.activeCount, cfg.warpSize);
        EXPECT_GT(ev.activeCount, 0u);
    }
    // The very first issued instruction of the kernel is its S2R.
    EXPECT_EQ(r.trace.front().instr.op, isa::Opcode::S2R);
}

TEST(Gpu, TraceOffByDefault)
{
    setVerbose(false);
    gpu::Gpu g(arch::GpuConfig::testDefault(), dmr::DmrConfig::off());
    const Addr out = g.allocator().alloc(64 * 4);
    const auto r = g.launch(counterKernel(out, 2), 1, 64);
    EXPECT_TRUE(r.trace.empty());
}

TEST(Gpu, SequentialLaunchesShareMemory)
{
    setVerbose(false);
    // Kernel A writes out[i] = i*2; kernel B reads A's output and
    // adds 5 — a two-stage pipeline on one Gpu, exercising allocator
    // and memory persistence across launches.
    gpu::Gpu g(arch::GpuConfig::testDefault(), dmr::DmrConfig::off());
    const Addr buf = g.allocator().alloc(64 * 4);

    KernelBuilder a("stage_a", 8);
    {
        auto gtid = a.reg(), v = a.reg(), addr = a.reg();
        a.s2r(gtid, SpecialReg::Gtid);
        a.iadd(v, gtid, gtid);
        a.shli(addr, gtid, 2);
        a.iaddi(addr, addr, static_cast<std::int32_t>(buf));
        a.stg(addr, v);
    }
    KernelBuilder b("stage_b", 8);
    {
        auto gtid = b.reg(), v = b.reg(), addr = b.reg();
        b.s2r(gtid, SpecialReg::Gtid);
        b.shli(addr, gtid, 2);
        b.iaddi(addr, addr, static_cast<std::int32_t>(buf));
        b.ldg(v, addr);
        b.iaddi(v, v, 5);
        b.stg(addr, v);
    }

    g.launch(a.build(), 2, 32);
    g.launch(b.build(), 2, 32);
    for (unsigned t = 0; t < 64; ++t)
        EXPECT_EQ(g.mem().readWord(buf + 4 * t), 2 * t + 5);
}
