/**
 * @file
 * Unit and property tests: the Register Forwarding Unit (Table 1).
 */

#include <gtest/gtest.h>

#include <bit>

#include "common/logging.hh"
#include "dmr/rfu.hh"

using namespace warped;
using dmr::Rfu;

TEST(Rfu, Table1ExactMatch)
{
    // Paper Table 1: rows are priority levels, columns MUX0..3.
    const unsigned expect[4][4] = {
        {0, 1, 2, 3}, // 1st
        {1, 0, 3, 2}, // 2nd
        {2, 3, 0, 1}, // 3rd
        {3, 2, 1, 0}, // 4th
    };
    for (unsigned k = 0; k < 4; ++k)
        for (unsigned m = 0; m < 4; ++m)
            EXPECT_EQ(Rfu::priority(m, k), expect[k][m])
                << "MUX" << m << " priority " << k;
}

TEST(Rfu, PaperFigure6Example)
{
    // Active mask 4'b0011: threads 0,1 active; lanes 2,3 verify them.
    std::array<unsigned, Rfu::kMaxWidth> v;
    const auto covered = Rfu::pair(0b0011, 4, v);
    EXPECT_EQ(covered, 0b0011ull);
    EXPECT_EQ(v[0], Rfu::kNone); // active lanes forward themselves
    EXPECT_EQ(v[1], Rfu::kNone);
    // MUX2 priorities: 2 (idle), 3 (idle), 0 (active) -> verifies 0.
    EXPECT_EQ(v[2], 0u);
    // MUX3 priorities: 3, 2, 1 (active) -> verifies 1.
    EXPECT_EQ(v[3], 1u);
}

TEST(Rfu, SingleActiveGetsTripleRedundancy)
{
    // Paper §4.1: one active lane is redundantly executed on all
    // three idle lanes (more than DMR, allowed by design).
    std::array<unsigned, Rfu::kMaxWidth> v;
    const auto covered = Rfu::pair(0b0001, 4, v);
    EXPECT_EQ(covered, 0b0001ull);
    EXPECT_EQ(v[1], 0u);
    EXPECT_EQ(v[2], 0u);
    EXPECT_EQ(v[3], 0u);
}

TEST(Rfu, FullClusterHasNoCheckers)
{
    std::array<unsigned, Rfu::kMaxWidth> v;
    EXPECT_EQ(Rfu::pair(0b1111, 4, v), 0ull);
    for (unsigned m = 0; m < 4; ++m)
        EXPECT_EQ(v[m], Rfu::kNone);
}

TEST(Rfu, EmptyClusterPairsNothing)
{
    std::array<unsigned, Rfu::kMaxWidth> v;
    EXPECT_EQ(Rfu::pair(0, 4, v), 0ull);
}

TEST(Rfu, NonPowerOfTwoWidthPanics)
{
    setVerbose(false);
    std::array<unsigned, Rfu::kMaxWidth> v;
    EXPECT_THROW(Rfu::pair(0b1, 3, v), std::logic_error);
    EXPECT_THROW(Rfu::pair(0b1, 16, v), std::logic_error);
}

TEST(Rfu, TheoreticalCoverageFormula)
{
    // §3.3: 1.0 while active <= half, else idle/active.
    EXPECT_DOUBLE_EQ(Rfu::theoreticalCoverage(0b0011, 4), 1.0);
    EXPECT_DOUBLE_EQ(Rfu::theoreticalCoverage(0b0111, 4), 1.0 / 3.0);
    EXPECT_DOUBLE_EQ(Rfu::theoreticalCoverage(0b1111, 4), 0.0);
    EXPECT_DOUBLE_EQ(Rfu::theoreticalCoverage(0, 4), 1.0);
}

/** Structural invariants for every occupancy of both cluster sizes. */
class RfuSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(RfuSweep, PairingInvariants)
{
    const unsigned width = GetParam();
    for (std::uint64_t mask = 0; mask < (1ULL << width); ++mask) {
        std::array<unsigned, Rfu::kMaxWidth> v;
        const auto covered = Rfu::pair(mask, width, v);

        // Covered lanes are a subset of the active lanes.
        EXPECT_EQ(covered & ~mask, 0ull);
        for (unsigned m = 0; m < width; ++m) {
            if ((mask >> m) & 1) {
                // Active lanes never act as checkers.
                EXPECT_EQ(v[m], Rfu::kNone);
            } else if (v[m] != Rfu::kNone) {
                // A checker always monitors an *active* lane, and the
                // first active one in its Table-1 priority order.
                EXPECT_NE(v[m], m);
                EXPECT_TRUE((mask >> v[m]) & 1);
                for (unsigned k = 1; k < width; ++k) {
                    const unsigned cand = Rfu::priority(m, k);
                    if (cand == v[m])
                        break;
                    EXPECT_FALSE((mask >> cand) & 1)
                        << "MUX" << m
                        << " skipped a higher-priority active lane";
                }
            } else {
                // No pick means no active lane exists at all.
                EXPECT_EQ(mask, 0ull);
            }
        }
    }
}

TEST_P(RfuSweep, CoverageBound)
{
    const unsigned width = GetParam();
    unsigned below_bound = 0;
    for (std::uint64_t mask = 1; mask < (1ULL << width); ++mask) {
        const unsigned active = std::popcount(mask);
        const unsigned idle = width - active;
        const unsigned covered =
            std::popcount(Rfu::covered(mask, width));
        EXPECT_LE(covered, std::min(active, idle));
        if (covered < std::min(active, idle))
            ++below_bound;
    }
    if (width == 4) {
        // The paper's 4-lane network achieves the bound everywhere.
        EXPECT_EQ(below_bound, 0u);
    } else if (width == 8) {
        // The XOR network provably misses the bound on exactly 40 of
        // the 255 non-trivial 8-lane occupancies — one reason the
        // "more hardware intensive" 8-lane cluster of Fig 9a is not
        // proportionally better.
        EXPECT_EQ(below_bound, 40u);
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, RfuSweep, ::testing::Values(2u, 4u, 8u),
                         [](const auto &info) {
                             return "w" + std::to_string(info.param);
                         });
