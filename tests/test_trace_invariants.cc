/**
 * @file
 * Property tests on the structured event traces of randomly generated
 * kernels (the shared KernelFuzzer): invariants that must hold for
 * every program the simulator can run, not just the Table-4
 * workloads.
 *
 *  - The ReplayQ depth reconstructed from push/pop events never
 *    exceeds the configured capacity, and agrees with the
 *    dmr.replayQPeak watermark in the metrics registry.
 *  - Every DMR verification event (intra, inter, drain) carries the
 *    traceId of exactly one issue event — verification is never
 *    invented and never double-attributed.
 *  - The merged trace is byte-identical whether launches run inline
 *    (--jobs 1) or race across a worker pool (--jobs 8).
 *  - Bounded ring lanes drop oldest-first and account every drop.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "common/logging.hh"
#include "gpu/gpu.hh"
#include "kernel_fuzzer.hh"
#include "sim/run_pool.hh"
#include "trace/export.hh"

using namespace warped;
using testutil::KernelFuzzer;

namespace {

constexpr unsigned kThreads = 64;

arch::GpuConfig
traceCfg()
{
    auto cfg = arch::GpuConfig::testDefault();
    cfg.numSms = 2;
    cfg.traceEvents = true;
    return cfg;
}

stats::LaunchResult
runTraced(std::uint64_t seed, const arch::GpuConfig &cfg,
          const dmr::DmrConfig &d)
{
    KernelFuzzer fuzz(seed);
    gpu::Gpu g(cfg, d);
    const Addr out = g.allocator().alloc(kThreads * 4);
    const isa::Program prog = fuzz.generate(out);
    return g.launch(prog, 1, kThreads);
}

} // namespace

class TraceInvariants : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(TraceInvariants, ReplayDepthNeverExceedsCapacity)
{
    setVerbose(false);
    const auto d = dmr::DmrConfig::paperDefault();
    const auto r = runTraced(GetParam(), traceCfg(), d);

    // Reconstruct each SM's queue depth from the event stream alone:
    // a1 of push/pop events is the depth after the operation.
    std::map<std::uint16_t, std::uint64_t> depth;
    for (const auto &ev : r.events) {
        if (ev.kind == trace::EventKind::ReplayPush) {
            EXPECT_EQ(ev.a1, depth[ev.sm] + 1);
            depth[ev.sm] = ev.a1;
        } else if (ev.kind == trace::EventKind::ReplayPop) {
            ASSERT_GT(depth[ev.sm], 0u);
            EXPECT_EQ(ev.a1, depth[ev.sm] - 1);
            depth[ev.sm] = ev.a1;
        }
        if (ev.kind == trace::EventKind::ReplayPush ||
            ev.kind == trace::EventKind::ReplayPop) {
            EXPECT_LE(ev.a1, d.replayQSize);
        }
    }
    // The watermark the metrics registry reports is the max depth any
    // event stream reached, and is itself capacity-bounded.
    EXPECT_LE(r.metrics.counterValue("dmr.replayQPeak"),
              d.replayQSize);
}

TEST_P(TraceInvariants, EveryVerificationPairsWithOneIssue)
{
    setVerbose(false);
    const auto r =
        runTraced(GetParam(), traceCfg(), dmr::DmrConfig::paperDefault());

    // traceIds are unique per issue by construction; collect them.
    std::map<std::uint64_t, unsigned> issued;
    for (const auto &ev : r.events) {
        if (ev.kind == trace::EventKind::Issue) {
            EXPECT_NE(ev.a0, 0u); // 0 = "never stamped"
            ++issued[ev.a0];
        }
    }
    for (const auto &kv : issued)
        EXPECT_EQ(kv.second, 1u)
            << "traceId " << kv.first << " issued twice";

    // Every verification/queue event refers to exactly one of them.
    for (const auto &ev : r.events) {
        switch (ev.kind) {
          case trace::EventKind::IntraVerify:
          case trace::EventKind::InterVerify:
          case trace::EventKind::RfuForward:
          case trace::EventKind::ReplayPush:
          case trace::EventKind::ReplayPop:
            EXPECT_EQ(issued.count(ev.a0), 1u)
                << trace::eventKindName(ev.kind)
                << " references unknown traceId " << ev.a0;
            break;
          default:
            break;
        }
    }

    // And no instruction is inter-warp verified more than once: a
    // ReplayQ entry leaves the queue exactly once.
    std::map<std::uint64_t, unsigned> interVerified;
    for (const auto &ev : r.events)
        if (ev.kind == trace::EventKind::InterVerify)
            ++interVerified[ev.a0];
    for (const auto &kv : interVerified)
        EXPECT_EQ(kv.second, 1u)
            << "traceId " << kv.first << " inter-verified twice";
}

TEST_P(TraceInvariants, HasOneLaunchEndAndIsOrdered)
{
    setVerbose(false);
    const auto r =
        runTraced(GetParam(), traceCfg(), dmr::DmrConfig::paperDefault());
    ASSERT_FALSE(r.events.empty());

    // Exactly one launch_end, on the chip lane, stamped with the
    // final cycle. Commit events may sort after it: they carry the
    // writeback-ready cycle, which can land past the drain point.
    std::size_t launchEnds = 0;
    for (std::size_t i = 0; i < r.events.size(); ++i) {
        const auto &ev = r.events[i];
        if (ev.kind == trace::EventKind::LaunchEnd) {
            ++launchEnds;
            EXPECT_EQ(ev.sm, trace::kChipSm);
            EXPECT_EQ(ev.a0, r.cycles);
            for (std::size_t j = i + 1; j < r.events.size(); ++j)
                EXPECT_EQ(r.events[j].kind, trace::EventKind::Commit);
        }
    }
    EXPECT_EQ(launchEnds, 1u);

    for (std::size_t i = 1; i < r.events.size(); ++i) {
        const auto &a = r.events[i - 1], &b = r.events[i];
        const bool ordered =
            a.cycle < b.cycle ||
            (a.cycle == b.cycle &&
             (a.sm < b.sm || (a.sm == b.sm && a.seq < b.seq)));
        ASSERT_TRUE(ordered) << "merge order violated at index " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceInvariants,
                         ::testing::Range<std::uint64_t>(1, 11));

TEST(TraceDeterminism, ByteIdenticalAcrossJobCounts)
{
    setVerbose(false);
    constexpr std::size_t kRuns = 8;

    // The experiment-plane pattern: pre-sized slots, one private Gpu
    // per task, folded in index order.
    auto campaign = [&](unsigned jobs) {
        std::vector<std::string> traces(kRuns);
        std::vector<std::string> metrics(kRuns);
        sim::RunPool pool(jobs);
        pool.parallelFor(kRuns, [&](std::size_t i) {
            const auto r =
                runTraced(100 + i, traceCfg(),
                          dmr::DmrConfig::paperDefault());
            traces[i] = trace::chromeTraceJson(r.events, "fuzz");
            metrics[i] = r.metrics.toJson();
        });
        const auto c = pool.counters();
        EXPECT_EQ(c.submitted, kRuns);
        EXPECT_EQ(c.completed, kRuns);
        EXPECT_EQ(c.failed, 0u);
        return std::make_pair(traces, metrics);
    };

    const auto seq = campaign(1);
    const auto par = campaign(8);
    for (std::size_t i = 0; i < kRuns; ++i) {
        EXPECT_EQ(seq.first[i], par.first[i])
            << "trace for run " << i << " differs across job counts";
        EXPECT_EQ(seq.second[i], par.second[i])
            << "metrics for run " << i << " differ across job counts";
    }
    // Traces are non-trivial (the comparison above isn't vacuous).
    EXPECT_GT(seq.first[0].size(), 1000u);
}

TEST(TraceBounded, RingCapacityDropsOldestAndAccounts)
{
    setVerbose(false);
    auto cfg = traceCfg();
    cfg.traceRingCapacity = 64; // per SM lane (plus the chip lane)
    const auto r =
        runTraced(1, cfg, dmr::DmrConfig::paperDefault());

    const auto recorded = r.metrics.counterValue("trace.recorded");
    const auto dropped = r.metrics.counterValue("trace.dropped");
    const auto merged = r.metrics.counterValue("trace.merged");
    EXPECT_EQ(merged, r.events.size());
    EXPECT_EQ(recorded, merged + dropped);
    EXPECT_GT(dropped, 0u); // a fuzz run easily overflows 64/lane
    EXPECT_LE(r.events.size(), (cfg.numSms + 1) * 64u);

    // What survives is the tail of each lane: the launch_end event
    // is always present (it is the last chip-lane emission, so the
    // ring can never have overwritten it).
    bool sawEnd = false;
    for (const auto &ev : r.events)
        sawEnd |= ev.kind == trace::EventKind::LaunchEnd;
    EXPECT_TRUE(sawEnd);
}
