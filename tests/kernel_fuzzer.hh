/**
 * @file
 * Random structured-kernel generator shared by the fuzz suites
 * (test_fuzz_kernels.cc) and the trace-invariant property tests
 * (test_trace_invariants.cc).
 *
 * Produces terminating programs: loops are counted with small
 * immediate bounds, and all control flow comes from the builder's
 * structured helpers, so every generated kernel drains — a property
 * the invariant suite relies on when asserting launch_end events.
 */

#ifndef WARPED_TESTS_KERNEL_FUZZER_HH
#define WARPED_TESTS_KERNEL_FUZZER_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "isa/kernel_builder.hh"

namespace warped {
namespace testutil {

class KernelFuzzer
{
  public:
    explicit KernelFuzzer(std::uint64_t seed) : rng_(seed) {}

    isa::Program
    generate(Addr out)
    {
        isa::KernelBuilder kb("fuzz", 24);
        // r0..r5: value registers, r6: tid-derived, r7: scratch.
        for (unsigned i = 0; i < 6; ++i)
            vals_.push_back(kb.reg());
        const isa::Reg tid = kb.reg();
        scratch_ = kb.reg();
        kb.s2r(tid, isa::SpecialReg::Gtid);
        for (unsigned i = 0; i < 6; ++i) {
            // Mix the thread id in so lanes diverge on data.
            kb.iaddi(vals_[i], tid,
                     static_cast<std::int32_t>(rng_.nextBelow(97)));
        }

        emitBlock(kb, /*depth*/ 0);

        // Fold everything into one output word per thread.
        const isa::Reg acc = kb.reg(), addr = kb.reg();
        kb.movi(acc, 0);
        for (const isa::Reg v : vals_)
            kb.xor_(acc, acc, v);
        kb.shli(addr, tid, 2);
        kb.iaddi(addr, addr, static_cast<std::int32_t>(out));
        kb.stg(addr, acc);
        return kb.build();
    }

  private:
    isa::Reg
    pick()
    {
        return vals_[rng_.nextBelow(vals_.size())];
    }

    void
    emitArith(isa::KernelBuilder &kb)
    {
        const isa::Reg d = pick(), a = pick(), b = pick();
        switch (rng_.nextBelow(10)) {
          case 0: kb.iadd(d, a, b); break;
          case 1: kb.isub(d, a, b); break;
          case 2: kb.imul(d, a, b); break;
          case 3: kb.xor_(d, a, b); break;
          case 4: kb.and_(d, a, b); break;
          case 5: kb.imax(d, a, b); break;
          case 6:
            kb.shli(d, a, static_cast<std::int32_t>(
                              1 + rng_.nextBelow(4)));
            break;
          case 7:
            // Cross-lane traffic inside possibly-divergent regions:
            // the shuffle fallback semantics get a workout.
            kb.shflXor(d, a, static_cast<std::int32_t>(
                                 1u << rng_.nextBelow(5)));
            break;
          case 8:
            kb.shflDown(d, a, static_cast<std::int32_t>(
                                  1 + rng_.nextBelow(7)));
            break;
          default:
            kb.iaddi(d, a, static_cast<std::int32_t>(
                               rng_.nextBelow(31)) -
                               15);
            break;
        }
    }

    void
    emitBlock(isa::KernelBuilder &kb, unsigned depth)
    {
        const unsigned stmts = 2 + rng_.nextBelow(4);
        for (unsigned i = 0; i < stmts; ++i) {
            const auto roll = rng_.nextBelow(10);
            if (depth == 0 && roll == 9) {
                // Block-wide barrier (only legal at full convergence).
                kb.bar();
                continue;
            }
            if (depth < 3 && roll < 2) {
                // Divergent if/else on a data-dependent predicate.
                const isa::Reg p = scratch_;
                kb.andi(p, pick(), static_cast<std::int32_t>(
                                       1 + rng_.nextBelow(7)));
                if (rng_.nextBool()) {
                    kb.ifThenElse(
                        p, [&] { emitBlock(kb, depth + 1); },
                        [&] { emitBlock(kb, depth + 1); });
                } else {
                    kb.ifThen(p, [&] { emitBlock(kb, depth + 1); });
                }
            } else if (depth < 2 && roll == 2) {
                // Bounded counted loop (possibly divergent inside).
                const isa::Reg i_reg = kb.reg();
                const isa::Reg lim = kb.reg();
                kb.movi(lim, static_cast<std::int32_t>(
                                 1 + rng_.nextBelow(5)));
                kb.forCounter(i_reg, 0, lim, 1,
                              [&] { emitBlock(kb, depth + 1); });
            } else {
                emitArith(kb);
            }
        }
    }

    Rng rng_;
    std::vector<isa::Reg> vals_;
    isa::Reg scratch_;
};

} // namespace testutil
} // namespace warped

#endif // WARPED_TESTS_KERNEL_FUZZER_HH
