/**
 * @file
 * Tests for the timing-model variants: GTO scheduling, register-bank
 * conflict modeling, and their interaction with Warped-DMR.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "gpu/gpu.hh"
#include "isa/kernel_builder.hh"
#include "workloads/workload.hh"

using namespace warped;

TEST(SchedPolicy, GtoProducesSameResults)
{
    setVerbose(false);
    std::vector<std::unique_ptr<workloads::Workload>> ws;
    ws.push_back(workloads::makeScan(4));
    ws.push_back(workloads::makeMatrixMul(64));
    ws.push_back(workloads::makeBitonicSort(2));
    for (auto &w : ws) {
        auto cfg = arch::GpuConfig::testDefault();
        cfg.schedPolicy = arch::SchedPolicy::GreedyThenOldest;
        gpu::Gpu g(cfg, dmr::DmrConfig::paperDefault());
        const auto r = workloads::runVerified(*w, g);
        EXPECT_EQ(r.dmr.errorsDetected, 0u) << w->name();
    }
}

TEST(SchedPolicy, GtoReshapesTheIssueStream)
{
    setVerbose(false);
    auto run = [](arch::SchedPolicy pol) {
        auto cfg = arch::GpuConfig::testDefault();
        cfg.schedPolicy = pol;
        auto w = workloads::makeMatrixMul(64);
        gpu::Gpu g(cfg, dmr::DmrConfig::off());
        return workloads::runVerified(*w, g);
    };
    const auto rr = run(arch::SchedPolicy::LooseRoundRobin);
    const auto gto = run(arch::SchedPolicy::GreedyThenOldest);
    // Same work...
    EXPECT_EQ(rr.issuedThreadInstrs, gto.issuedThreadInstrs);
    // ...but a genuinely different schedule: LRR convoys the
    // barrier-aligned load/FFMA phases of many warps into long
    // same-type runs, while GTO interleaves one warp's short phases.
    EXPECT_NE(rr.cycles, gto.cycles);
    const double rr_mean =
        std::max(rr.meanTypeRun[0], rr.meanTypeRun[2]);
    const double gto_mean =
        std::max(gto.meanTypeRun[0], gto.meanTypeRun[2]);
    EXPECT_LT(gto_mean, rr_mean);
}

TEST(BankConflicts, OffByDefaultAndDeterministicWhenOn)
{
    setVerbose(false);
    auto cfg = arch::GpuConfig::testDefault();
    EXPECT_FALSE(cfg.modelBankConflicts);

    cfg.modelBankConflicts = true;
    auto w = workloads::makeScan(2);
    gpu::Gpu g(cfg, dmr::DmrConfig::paperDefault());
    const auto r = workloads::runVerified(*w, g);
    EXPECT_EQ(r.dmr.errorsDetected, 0u);
}

TEST(BankConflicts, ConflictingSourcesPayExtraLatency)
{
    setVerbose(false);
    // Two kernels differing only in source-register bank placement:
    // r4+r8 collide in bank 0; r4+r5 do not.
    auto build = [](bool conflict) {
        isa::KernelBuilder kb("bank", 16);
        using isa::Reg;
        for (int i = 0; i < 13; ++i)
            kb.reg(); // claim r0..r12 so validation accepts them
        const Reg a{4}, b{static_cast<RegIndex>(conflict ? 8 : 5)},
            d{12};
        // Long dependent chain so the per-instruction RF latency
        // dominates total cycles.
        kb.movi(a, 1);
        kb.movi(b, 2);
        Reg cur = d;
        kb.iadd(cur, a, b);
        for (int i = 0; i < 20; ++i) {
            kb.iadd(a, cur, b);   // a and cur alternate banks...
            kb.iadd(cur, a, b);
        }
        return kb.build();
    };

    auto cycles = [&](bool conflict) {
        auto cfg = arch::GpuConfig::testDefault();
        cfg.numSms = 1;
        cfg.modelBankConflicts = true;
        gpu::Gpu g(cfg, dmr::DmrConfig::off());
        return g.launch(build(conflict), 1, 32).cycles;
    };

    EXPECT_GT(cycles(true), cycles(false));
}

TEST(Coalescing, ScatteredAccessesSerialize)
{
    setVerbose(false);
    // Kernel A: coalesced (addr = base + tid*4, one or two 128B
    // segments per warp); kernel B: scattered (addr = base + tid*512,
    // 32 segments per warp).
    auto build = [](unsigned stride_log2, Addr base) {
        isa::KernelBuilder kb("coal", 16);
        auto gtid = kb.reg(), addr = kb.reg(), v = kb.reg();
        kb.s2r(gtid, isa::SpecialReg::Gtid);
        kb.shli(addr, gtid, static_cast<std::int32_t>(stride_log2));
        kb.iaddi(addr, addr, static_cast<std::int32_t>(base));
        for (int i = 0; i < 8; ++i)
            kb.ldg(v, addr, i * 4); // independent loads
        return kb.build();
    };

    auto cycles = [&](unsigned stride_log2, bool model) {
        auto cfg = arch::GpuConfig::testDefault();
        cfg.numSms = 1;
        cfg.modelCoalescing = model;
        gpu::Gpu g(cfg, dmr::DmrConfig::off());
        const Addr base = g.allocator().alloc(256 * 512 + 64);
        return g.launch(build(stride_log2, base), 1, 256).cycles;
    };

    // With the model off, access pattern does not matter.
    EXPECT_EQ(cycles(2, false), cycles(9, false));
    // With it on, the scattered kernel pays for its 32 transactions.
    EXPECT_GT(cycles(9, true), 2 * cycles(2, true));
    // And the coalesced kernel is barely affected by the model.
    EXPECT_LT(double(cycles(2, true)), 1.25 * double(cycles(2, false)));
}

TEST(Coalescing, ResultsUnchanged)
{
    setVerbose(false);
    auto cfg = arch::GpuConfig::testDefault();
    cfg.modelCoalescing = true;
    auto w = workloads::makeMum(2); // pointer chasing
    gpu::Gpu g(cfg, dmr::DmrConfig::paperDefault());
    const auto r = workloads::runVerified(*w, g);
    EXPECT_EQ(r.dmr.errorsDetected, 0u);
}

TEST(IdleGaps, TrackedWhenEnabled)
{
    setVerbose(false);
    auto cfg = arch::GpuConfig::testDefault();
    cfg.trackIdleGaps = true;
    cfg.numSms = 2;
    auto w = workloads::makeBitonicSort(2);
    gpu::Gpu g(cfg, dmr::DmrConfig::off());
    const auto r = workloads::runVerified(*w, g);
    // Divergent kernel: lanes idle within issued instructions, so
    // lane gaps exist and are at least as long as... simply positive.
    EXPECT_GT(r.meanLaneIdleGap, 0.0);
    EXPECT_GT(r.meanSmIdleGap, 0.0);
}

TEST(IdleGaps, OffByDefaultCostsNothing)
{
    setVerbose(false);
    auto cfg = arch::GpuConfig::testDefault();
    EXPECT_FALSE(cfg.trackIdleGaps);
    auto w = workloads::makeScan(1);
    gpu::Gpu g(cfg, dmr::DmrConfig::off());
    const auto r = workloads::runVerified(*w, g);
    EXPECT_DOUBLE_EQ(r.meanLaneIdleGap, 0.0);
    EXPECT_DOUBLE_EQ(r.meanSmIdleGap, 0.0);
}

TEST(RealismKnobs, AllOnStillVerifiesEverywhere)
{
    setVerbose(false);
    auto cfg = arch::GpuConfig::testDefault();
    cfg.modelBankConflicts = true;
    cfg.modelCoalescing = true;
    cfg.modelMemContention = true;
    cfg.schedPolicy = arch::SchedPolicy::GreedyThenOldest;
    cfg.numSchedulers = 2;
    std::vector<std::unique_ptr<workloads::Workload>> ws;
    ws.push_back(workloads::makeBfs(2));
    ws.push_back(workloads::makeMatrixMul(64));
    ws.push_back(workloads::makeFft(2));
    ws.push_back(workloads::makeRadixSort(2));
    for (auto &w : ws) {
        gpu::Gpu g(cfg, dmr::DmrConfig::paperDefault());
        const auto r = workloads::runVerified(*w, g);
        EXPECT_EQ(r.dmr.errorsDetected, 0u) << w->name();
    }
}
