/**
 * @file
 * Unit tests: simulated memories and the device allocator.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "mem/memory.hh"

using namespace warped;
using mem::LinearAllocator;
using mem::Memory;

TEST(Memory, WordRoundTrip)
{
    Memory m(256);
    m.writeWord(0, 0x12345678);
    m.writeWord(252, 0xcafebabe);
    EXPECT_EQ(m.readWord(0), 0x12345678u);
    EXPECT_EQ(m.readWord(252), 0xcafebabeu);
}

TEST(Memory, ByteAccessAndEndianness)
{
    Memory m(16);
    m.writeWord(0, 0x04030201);
    EXPECT_EQ(m.readByte(0), 1u); // little-endian like the host
    EXPECT_EQ(m.readByte(3), 4u);
    m.writeByte(1, 0xff);
    EXPECT_EQ(m.readWord(0), 0x0403ff01u);
}

TEST(Memory, UnalignedWordAccessWorks)
{
    Memory m(16);
    m.writeWord(1, 0xaabbccdd);
    EXPECT_EQ(m.readWord(1), 0xaabbccddu);
}

TEST(Memory, OutOfBoundsPanics)
{
    setVerbose(false);
    Memory m(16);
    EXPECT_THROW(m.readWord(13), std::logic_error);
    EXPECT_THROW(m.writeWord(16, 0), std::logic_error);
    EXPECT_THROW(m.readByte(16), std::logic_error);
}

TEST(Memory, BulkCopies)
{
    Memory m(64);
    const std::uint32_t src[4] = {1, 2, 3, 4};
    m.copyIn(8, src, sizeof(src));
    std::uint32_t dst[4] = {};
    m.copyOut(8, dst, sizeof(dst));
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(dst[i], src[i]);
    m.clear();
    EXPECT_EQ(m.readWord(8), 0u);
}

TEST(Allocator, AlignedAndMonotonic)
{
    LinearAllocator a(1 << 20);
    const Addr x = a.alloc(100);
    const Addr y = a.alloc(1);
    EXPECT_EQ(x % 256, 0u);
    EXPECT_EQ(y % 256, 0u);
    EXPECT_GT(y, x);
    EXPECT_GE(y - x, 100u);
}

TEST(Allocator, ExhaustionIsFatal)
{
    setVerbose(false);
    LinearAllocator a(1024);
    a.alloc(512);
    EXPECT_THROW(a.alloc(512), std::runtime_error);
}
