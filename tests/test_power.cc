/**
 * @file
 * Unit tests: the Hong&Kim-style analytical power model.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "power/power_model.hh"
#include "workloads/workload.hh"

using namespace warped;
using power::PowerModel;

namespace {

gpu::LaunchResult
emptyResult()
{
    return gpu::LaunchResult(32);
}

} // namespace

TEST(PowerModel, IdleChipConsumesFloorOnly)
{
    PowerModel m(arch::GpuConfig::testDefault());
    auto r = emptyResult();
    r.cycles = 1000;
    const auto b = m.estimate(r);
    EXPECT_DOUBLE_EQ(b.sp, 0.0);
    EXPECT_DOUBLE_EQ(b.sfu, 0.0);
    EXPECT_DOUBLE_EQ(b.total(),
                     m.params().constantPower + m.params().idlePower);
}

TEST(PowerModel, BreakdownSumsToTotal)
{
    PowerModel m(arch::GpuConfig::testDefault());
    auto r = emptyResult();
    r.cycles = 100;
    r.issuedWarpInstrs = 50;
    r.issuedThreadInstrs = 1600;
    r.unitThreadExecs[0] = 1200;
    r.unitThreadExecs[2] = 400;
    const auto b = m.estimate(r);
    EXPECT_NEAR(b.total(),
                b.sp + b.sfu + b.ldst + b.regFile + b.fds +
                    b.comparator + b.constant + b.idle,
                1e-12);
    EXPECT_GT(b.sp, 0.0);
    EXPECT_GT(b.fds, 0.0);
}

TEST(PowerModel, RatesAreClamped)
{
    PowerModel m(arch::GpuConfig::testDefault());
    auto r = emptyResult();
    r.cycles = 1;
    r.unitThreadExecs[0] = 1u << 30; // absurd activity
    const auto b = m.estimate(r);
    EXPECT_LE(b.sp, m.params().spMax);
}

TEST(PowerModel, RedundantExecutionRaisesPower)
{
    PowerModel m(arch::GpuConfig::testDefault());
    auto base = emptyResult();
    base.cycles = 1000;
    base.issuedWarpInstrs = 500;
    base.issuedThreadInstrs = 16000;
    base.unitThreadExecs[0] = 16000;

    auto prot = base;
    prot.dmr.redundantThreadExecs[0] = 16000;
    prot.dmr.comparisons = 16000;
    EXPECT_GT(m.estimate(prot).total(), m.estimate(base).total());
}

TEST(PowerModel, EnergyIsPowerTimesTime)
{
    PowerModel m(arch::GpuConfig::testDefault());
    auto r = emptyResult();
    r.cycles = 1000;
    r.timeNs = 1250.0;
    const double watts = m.estimate(r).total();
    EXPECT_NEAR(m.energyMj(r), watts * 1250e-9 * 1e3, 1e-12);
}

TEST(PowerModel, DmrCostsPowerAndEnergyOnRealWorkload)
{
    setVerbose(false);
    const auto cfg = arch::GpuConfig::testDefault();
    PowerModel m(cfg);

    auto w1 = workloads::makeScan(2);
    gpu::Gpu g1(cfg, dmr::DmrConfig::off());
    const auto base = workloads::runVerified(*w1, g1);

    auto w2 = workloads::makeScan(2);
    gpu::Gpu g2(cfg, dmr::DmrConfig::paperDefault());
    const auto prot = workloads::runVerified(*w2, g2);

    const double p_ratio =
        m.estimate(prot).total() / m.estimate(base).total();
    const double e_ratio = m.energyMj(prot) / m.energyMj(base);
    EXPECT_GT(p_ratio, 1.0);
    EXPECT_LT(p_ratio, 2.0);
    EXPECT_GT(e_ratio, 1.0);
    // Energy ratio >= power ratio: the protected run is never faster.
    EXPECT_GE(e_ratio, p_ratio * 0.95);
}

TEST(PowerModel, BreakdownToStringMentionsEveryComponent)
{
    PowerModel m(arch::GpuConfig::testDefault());
    auto r = gpu::LaunchResult(32);
    r.cycles = 10;
    const auto s = m.estimate(r).toString();
    for (const char *key : {"SP", "SFU", "LD/ST", "RF", "FDS", "CMP",
                            "const", "idle"})
        EXPECT_NE(s.find(key), std::string::npos) << key;
}
