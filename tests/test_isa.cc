/**
 * @file
 * Unit tests: mini-ISA (opcode table, instruction formatting, program
 * validation, KernelBuilder structured control flow).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "isa/kernel_builder.hh"
#include "isa/program.hh"

using namespace warped;
using namespace warped::isa;

TEST(Opcode, TableConsistency)
{
    for (unsigned i = 0; i < opcodeCount(); ++i) {
        const auto op = static_cast<Opcode>(i);
        EXPECT_NE(opcodeName(op), nullptr);
        EXPECT_LE(opcodeNumSrcs(op), 3u);
        if (opcodeIsLoad(op)) {
            EXPECT_TRUE(opcodeHasDst(op));
            EXPECT_EQ(opcodeUnit(op), UnitType::LDST);
        }
        if (opcodeIsStore(op)) {
            EXPECT_FALSE(opcodeHasDst(op));
            EXPECT_EQ(opcodeUnit(op), UnitType::LDST);
        }
        if (opcodeIsBranch(op)) {
            EXPECT_FALSE(opcodeHasDst(op));
        }
    }
}

TEST(Opcode, UnitClassification)
{
    EXPECT_EQ(opcodeUnit(Opcode::FFMA), UnitType::SP);
    EXPECT_EQ(opcodeUnit(Opcode::SIN), UnitType::SFU);
    EXPECT_EQ(opcodeUnit(Opcode::LDG), UnitType::LDST);
    EXPECT_EQ(opcodeUnit(Opcode::BRA), UnitType::SP);
    EXPECT_TRUE(opcodeIsSharedMem(Opcode::LDS));
    EXPECT_TRUE(opcodeIsSharedMem(Opcode::STS));
    EXPECT_FALSE(opcodeIsSharedMem(Opcode::LDG));
}

TEST(Instruction, Disassembly)
{
    Instruction in;
    in.op = Opcode::IADD;
    in.dst = Reg{3};
    in.src[0] = Reg{1};
    in.src[1] = Reg{2};
    EXPECT_EQ(in.toString(), "IADD r3, r1, r2");

    Instruction mv;
    mv.op = Opcode::MOVI;
    mv.dst = Reg{0};
    mv.imm = -7;
    EXPECT_EQ(mv.toString(), "MOVI r0, #-7");
}

TEST(Program, ValidateRejectsEmpty)
{
    setVerbose(false);
    Program p("empty", {}, 4, 0);
    EXPECT_THROW(p.validate(), std::runtime_error);
}

TEST(Program, ValidateRejectsBadBranchTarget)
{
    setVerbose(false);
    Instruction br;
    br.op = Opcode::BRA;
    br.target = 99;
    Instruction ex;
    ex.op = Opcode::EXIT;
    Program p("bad", {br, ex}, 4, 0);
    EXPECT_THROW(p.validate(), std::runtime_error);
}

TEST(Program, ValidateRejectsMissingReconv)
{
    setVerbose(false);
    Instruction br;
    br.op = Opcode::BRZ;
    br.src[0] = Reg{0};
    br.target = 1;
    br.reconv = kNoPc;
    Instruction ex;
    ex.op = Opcode::EXIT;
    Program p("noreconv", {br, ex}, 4, 0);
    EXPECT_THROW(p.validate(), std::runtime_error);
}

TEST(Program, ValidateRejectsRegisterOverflow)
{
    setVerbose(false);
    Instruction in;
    in.op = Opcode::MOVI;
    in.dst = Reg{9};
    Instruction ex;
    ex.op = Opcode::EXIT;
    Program p("regs", {in, ex}, 4, 0);
    EXPECT_THROW(p.validate(), std::runtime_error);
}

TEST(Builder, AppendsExit)
{
    KernelBuilder kb("k");
    auto r = kb.reg();
    kb.movi(r, 1);
    const auto p = kb.build();
    EXPECT_EQ(p.at(p.size() - 1).op, Opcode::EXIT);
}

TEST(Builder, RegisterExhaustionIsFatal)
{
    setVerbose(false);
    KernelBuilder kb("k", 2);
    kb.reg();
    kb.reg();
    EXPECT_THROW(kb.reg(), std::runtime_error);
}

TEST(Builder, SharedAllocatorAligns)
{
    KernelBuilder kb("k");
    EXPECT_EQ(kb.shared(6), 0u);
    EXPECT_EQ(kb.shared(4), 8u); // previous rounded up to 8
    auto r = kb.reg();
    kb.movi(r, 0);
    EXPECT_EQ(kb.build().sharedBytes(), 12u);
}

TEST(Builder, IfThenShapes)
{
    KernelBuilder kb("k");
    auto p = kb.reg(), x = kb.reg();
    kb.movi(p, 1);
    kb.ifThen(p, [&] { kb.movi(x, 5); });
    const auto prog = kb.build();
    // pc0 MOVI, pc1 BRZ -> 3 (reconv 3), pc2 MOVI, pc3 EXIT
    EXPECT_EQ(prog.at(1).op, Opcode::BRZ);
    EXPECT_EQ(prog.at(1).target, 3u);
    EXPECT_EQ(prog.at(1).reconv, 3u);
}

TEST(Builder, IfThenElseShapes)
{
    KernelBuilder kb("k");
    auto p = kb.reg(), x = kb.reg();
    kb.movi(p, 1);
    kb.ifThenElse(p, [&] { kb.movi(x, 1); }, [&] { kb.movi(x, 2); });
    const auto prog = kb.build();
    // pc0 MOVI, pc1 BRZ -> else(4) reconv 5, pc2 then, pc3 BRA -> 5,
    // pc4 else, pc5 EXIT
    EXPECT_EQ(prog.at(1).op, Opcode::BRZ);
    EXPECT_EQ(prog.at(1).target, 4u);
    EXPECT_EQ(prog.at(1).reconv, 5u);
    EXPECT_EQ(prog.at(3).op, Opcode::BRA);
    EXPECT_EQ(prog.at(3).target, 5u);
}

TEST(Builder, WhileLoopShapes)
{
    KernelBuilder kb("k");
    auto p = kb.reg(), x = kb.reg();
    kb.whileLoop([&] { kb.isetpLt(p, x, x); }, p,
                 [&] { kb.iaddi(x, x, 1); });
    const auto prog = kb.build();
    // pc0 ISETP_LT, pc1 BRZ -> 4 reconv 4, pc2 IADDI, pc3 BRA -> 0,
    // pc4 EXIT
    EXPECT_EQ(prog.at(1).op, Opcode::BRZ);
    EXPECT_EQ(prog.at(1).target, 4u);
    EXPECT_EQ(prog.at(1).reconv, 4u);
    EXPECT_EQ(prog.at(3).op, Opcode::BRA);
    EXPECT_EQ(prog.at(3).target, 0u);
}

TEST(Builder, RorRequiresDistinctScratch)
{
    setVerbose(false);
    KernelBuilder kb("k");
    auto a = kb.reg(), d = kb.reg(), s = kb.reg();
    EXPECT_THROW(kb.ror(d, a, 0, s), std::runtime_error);
    EXPECT_THROW(kb.ror(d, a, 5, a), std::runtime_error);
    kb.ror(d, a, 5, s); // ok
    EXPECT_EQ(kb.here(), 3u);
}

TEST(Builder, ForCounterStepZeroIsFatal)
{
    setVerbose(false);
    KernelBuilder kb("k");
    auto i = kb.reg(), lim = kb.reg();
    EXPECT_THROW(kb.forCounter(i, 0, lim, 0, [] {}),
                 std::runtime_error);
}

TEST(Instruction, ShuffleDisassembly)
{
    Instruction in;
    in.op = Opcode::SHFL_XOR;
    in.dst = Reg{2};
    in.src[0] = Reg{1};
    in.imm = 16;
    EXPECT_EQ(in.toString(), "SHFL_XOR r2, r1, #16");
}

TEST(Instruction, NegativeMemOffsetDisassembly)
{
    Instruction in;
    in.op = Opcode::LDG;
    in.dst = Reg{0};
    in.src[0] = Reg{3};
    in.imm = -8;
    EXPECT_EQ(in.toString(), "LDG r0, r3, [r3-8]");
}

TEST(Opcode, ShuffleClassification)
{
    EXPECT_TRUE(opcodeIsShuffle(Opcode::SHFL_XOR));
    EXPECT_TRUE(opcodeIsShuffle(Opcode::SHFL_DOWN));
    EXPECT_FALSE(opcodeIsShuffle(Opcode::MOV));
    EXPECT_EQ(opcodeUnit(Opcode::SHFL_XOR), UnitType::SP);
}
