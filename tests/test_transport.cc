/**
 * @file
 * Unit tests: the fault-tolerant transport layer under the sharded
 * campaign service — CRC framing, the incremental frame reader's
 * corruption diagnoses, the chaos injector's determinism, backoff
 * arithmetic, bounded subprocess waits, and a full in-process
 * loopback of SocketTransport against runSocketWorker, including the
 * hung-worker heartbeat timeout and the signature-mismatch Reject.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/crc32.hh"
#include "sim/chaos.hh"
#include "sim/stream.hh"
#include "sim/subprocess.hh"
#include "sim/transport.hh"
#include "sim/wire.hh"

using namespace warped;
using namespace warped::sim;

// ---------------------------------------------------------------------
// crc32

TEST(Crc32, StandardCheckValue)
{
    // The canonical IEEE 802.3 check vector.
    EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
}

TEST(Crc32, SeedChainingEqualsOneShot)
{
    const std::string text = "the quick brown fox";
    const auto whole = crc32(text.data(), text.size());
    const auto first = crc32(text.data(), 7);
    const auto chained = crc32(text.data() + 7, text.size() - 7, first);
    EXPECT_EQ(chained, whole);
}

TEST(Crc32, SensitiveToEveryByte)
{
    std::string text = "payload-bytes";
    const auto base = crc32(text.data(), text.size());
    for (std::size_t i = 0; i < text.size(); ++i) {
        std::string bad = text;
        bad[i] ^= 0x01;
        EXPECT_NE(crc32(bad.data(), bad.size()), base) << "byte " << i;
    }
}

// ---------------------------------------------------------------------
// wire framing

namespace {

void
feedAll(wire::FrameReader &rd, const std::string &bytes)
{
    rd.feed(bytes.data(), bytes.size());
}

} // namespace

TEST(Wire, RoundTripSingleFrame)
{
    const auto bytes =
        wire::encodeFrame(wire::MsgType::Delta, "0\n{\"a\": 1}");
    wire::FrameReader rd;
    feedAll(rd, bytes);
    const auto f = rd.next();
    ASSERT_TRUE(f);
    EXPECT_EQ(f->type, wire::MsgType::Delta);
    EXPECT_EQ(f->payload, "0\n{\"a\": 1}");
    EXPECT_FALSE(rd.next());
    EXPECT_EQ(rd.buffered(), 0u);
}

TEST(Wire, ByteAtATimeFeedReassembles)
{
    const auto bytes = wire::encodeFrame(wire::MsgType::Hello, "42");
    wire::FrameReader rd;
    for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
        rd.feed(bytes.data() + i, 1);
        EXPECT_FALSE(rd.next()) << "frame completed early at " << i;
    }
    rd.feed(bytes.data() + bytes.size() - 1, 1);
    const auto f = rd.next();
    ASSERT_TRUE(f);
    EXPECT_EQ(f->type, wire::MsgType::Hello);
    EXPECT_EQ(f->payload, "42");
}

TEST(Wire, SeveralFramesInOneChunk)
{
    std::string bytes;
    bytes += wire::encodeFrame(wire::MsgType::Heartbeat, "");
    bytes += wire::encodeFrame(wire::MsgType::Assign, "3 8 250");
    bytes += wire::encodeFrame(wire::MsgType::Bye, "");
    wire::FrameReader rd;
    feedAll(rd, bytes);
    EXPECT_EQ(rd.next()->type, wire::MsgType::Heartbeat);
    const auto assign = rd.next();
    ASSERT_TRUE(assign);
    EXPECT_EQ(assign->payload, "3 8 250");
    EXPECT_EQ(rd.next()->type, wire::MsgType::Bye);
    EXPECT_FALSE(rd.next());
}

TEST(Wire, EmptyPayloadRoundTrips)
{
    wire::FrameReader rd;
    feedAll(rd, wire::encodeFrame(wire::MsgType::Heartbeat, ""));
    const auto f = rd.next();
    ASSERT_TRUE(f);
    EXPECT_TRUE(f->payload.empty());
}

TEST(Wire, BadMagicIsADesyncDiagnosis)
{
    auto bytes = wire::encodeFrame(wire::MsgType::Hello, "7");
    bytes[0] = 'X';
    wire::FrameReader rd;
    feedAll(rd, bytes);
    EXPECT_THROW(rd.next(), wire::WireError);
}

TEST(Wire, TruncatedStreamThenGarbageDesyncs)
{
    // A truncated frame followed by a fresh frame: the reader sees
    // leftover bytes where a magic should be — unrecoverable within
    // the connection, and said so.
    const auto a = wire::encodeFrame(wire::MsgType::Delta,
                                     "1\n{\"k\": 2}");
    const auto b = wire::encodeFrame(wire::MsgType::Heartbeat, "");
    wire::FrameReader rd;
    rd.feed(a.data(), a.size() / 2); // the "crash"
    feedAll(rd, b);
    // Either the partial frame never completes or the overlap is
    // diagnosed; it must never yield a valid-looking frame.
    try {
        const auto f = rd.next();
        if (f) {
            // A frame that somehow completed must fail its CRC.
            FAIL() << "corrupt stream produced a frame";
        }
    } catch (const wire::WireError &) {
        // diagnosed — good
    }
}

TEST(Wire, CorruptPayloadFailsCrc)
{
    auto bytes = wire::encodeFrame(wire::MsgType::Delta,
                                   "2\n{\"x\": 1}");
    bytes[bytes.size() - 6] ^= 0x10; // inside the payload
    wire::FrameReader rd;
    feedAll(rd, bytes);
    EXPECT_THROW(rd.next(), wire::WireError);
}

TEST(Wire, CorruptTypeByteFailsCrc)
{
    auto bytes = wire::encodeFrame(wire::MsgType::Heartbeat, "");
    bytes[4] ^= 0x01; // the type byte, covered by the CRC
    wire::FrameReader rd;
    feedAll(rd, bytes);
    EXPECT_THROW(rd.next(), wire::WireError);
}

TEST(Wire, OversizedLengthIsRefusedBeforeAllocation)
{
    auto bytes = wire::encodeFrame(wire::MsgType::Delta, "small");
    // Rewrite the little-endian length field to 3 GiB.
    bytes[5] = char(0xFF);
    bytes[6] = char(0xFF);
    bytes[7] = char(0xFF);
    bytes[8] = char(0xBF);
    wire::FrameReader rd;
    feedAll(rd, bytes);
    EXPECT_THROW(rd.next(), wire::WireError);
}

// ---------------------------------------------------------------------
// chaos injector

namespace {

/** Captures every write; reads are never used by the send-path
 *  chaos tests. */
class CaptureStream : public Stream
{
  public:
    int read(void *, std::size_t, int) override { return kTimeout; }
    bool write(const void *buf, std::size_t n) override
    {
        if (closed_)
            return false;
        writes_.emplace_back(static_cast<const char *>(buf), n);
        return true;
    }
    void close() override { closed_ = true; }
    bool isClosed() const override { return closed_; }

    std::vector<std::string> writes_;
    bool closed_ = false;
};

} // namespace

TEST(ChaosConfig, ParsesFullSpec)
{
    const auto c = ChaosConfig::parse(
        "seed=9,drop=0.25,dup=0.5,corrupt=0.125,trunc=0.0625,"
        "disc=0.03125,delay=7,delayp=1");
    EXPECT_EQ(c.seed, 9u);
    EXPECT_DOUBLE_EQ(c.dropFrame, 0.25);
    EXPECT_DOUBLE_EQ(c.dupFrame, 0.5);
    EXPECT_DOUBLE_EQ(c.corruptByte, 0.125);
    EXPECT_DOUBLE_EQ(c.truncateFrame, 0.0625);
    EXPECT_DOUBLE_EQ(c.disconnect, 0.03125);
    EXPECT_EQ(c.delayMs, 7u);
    EXPECT_DOUBLE_EQ(c.delayFrame, 1.0);
    EXPECT_TRUE(c.enabled());
}

TEST(ChaosConfig, EmptySpecIsDisabled)
{
    EXPECT_FALSE(ChaosConfig::parse("").enabled());
    EXPECT_FALSE(ChaosConfig{}.enabled());
}

TEST(ChaosConfig, MalformedSpecsThrow)
{
    EXPECT_THROW(ChaosConfig::parse("bogus=1"),
                 std::invalid_argument);
    EXPECT_THROW(ChaosConfig::parse("drop"), std::invalid_argument);
    EXPECT_THROW(ChaosConfig::parse("drop=1.5"),
                 std::invalid_argument);
    EXPECT_THROW(ChaosConfig::parse("drop=-0.1"),
                 std::invalid_argument);
    EXPECT_THROW(ChaosConfig::parse("seed=abc"),
                 std::invalid_argument);
}

TEST(ChaosTransport, DropEverythingClaimsSentSendsNothing)
{
    ChaosConfig cfg;
    cfg.dropFrame = 1.0;
    auto inner = std::make_unique<CaptureStream>();
    auto *cap = inner.get();
    ChaosTransport chaos(std::move(inner), cfg);
    EXPECT_TRUE(chaos.write("frame-bytes", 11));
    EXPECT_TRUE(cap->writes_.empty());
    EXPECT_EQ(chaos.faultsInjected(), 1u);
}

TEST(ChaosTransport, DuplicateEverythingSendsTwice)
{
    ChaosConfig cfg;
    cfg.dupFrame = 1.0;
    auto inner = std::make_unique<CaptureStream>();
    auto *cap = inner.get();
    ChaosTransport chaos(std::move(inner), cfg);
    const std::string frame = "frame";
    EXPECT_TRUE(chaos.write(frame.data(), frame.size()));
    ASSERT_EQ(cap->writes_.size(), 2u);
    EXPECT_EQ(cap->writes_[0], frame);
    EXPECT_EQ(cap->writes_[1], frame);
}

TEST(ChaosTransport, CorruptFlipsExactlyOneByte)
{
    ChaosConfig cfg;
    cfg.corruptByte = 1.0;
    auto inner = std::make_unique<CaptureStream>();
    auto *cap = inner.get();
    ChaosTransport chaos(std::move(inner), cfg);
    const std::string frame = "abcdefgh";
    EXPECT_TRUE(chaos.write(frame.data(), frame.size()));
    ASSERT_EQ(cap->writes_.size(), 1u);
    const auto &sent = cap->writes_[0];
    ASSERT_EQ(sent.size(), frame.size());
    unsigned diffs = 0;
    for (std::size_t i = 0; i < frame.size(); ++i)
        diffs += sent[i] != frame[i];
    EXPECT_EQ(diffs, 1u);
}

TEST(ChaosTransport, TruncateSendsStrictPrefixAndCloses)
{
    ChaosConfig cfg;
    cfg.truncateFrame = 1.0;
    auto inner = std::make_unique<CaptureStream>();
    auto *cap = inner.get();
    ChaosTransport chaos(std::move(inner), cfg);
    const std::string frame = "0123456789";
    EXPECT_FALSE(chaos.write(frame.data(), frame.size()));
    ASSERT_EQ(cap->writes_.size(), 1u);
    EXPECT_LT(cap->writes_[0].size(), frame.size());
    EXPECT_GE(cap->writes_[0].size(), 1u);
    EXPECT_EQ(frame.compare(0, cap->writes_[0].size(),
                            cap->writes_[0]),
              0);
    EXPECT_TRUE(chaos.isClosed());
}

TEST(ChaosTransport, DisconnectClosesWithoutSending)
{
    ChaosConfig cfg;
    cfg.disconnect = 1.0;
    auto inner = std::make_unique<CaptureStream>();
    auto *cap = inner.get();
    ChaosTransport chaos(std::move(inner), cfg);
    EXPECT_FALSE(chaos.write("x", 1));
    EXPECT_TRUE(cap->writes_.empty());
    EXPECT_TRUE(chaos.isClosed());
}

TEST(ChaosTransport, SameSeedSameSchedule)
{
    ChaosConfig cfg = ChaosConfig::parse(
        "seed=1234,drop=0.3,dup=0.3,corrupt=0.2,trunc=0.1");
    auto runOnce = [&] {
        auto inner = std::make_unique<CaptureStream>();
        auto *cap = inner.get();
        ChaosTransport chaos(std::move(inner), cfg);
        for (int i = 0; i < 50 && !chaos.isClosed(); ++i) {
            const std::string frame =
                "frame-" + std::to_string(i) + "-payload";
            (void)chaos.write(frame.data(), frame.size());
        }
        return cap->writes_;
    };
    const auto a = runOnce();
    const auto b = runOnce();
    EXPECT_EQ(a, b);
}

TEST(ChaosTransport, MaybeChaosIsZeroCostWhenDisabled)
{
    auto inner = std::make_unique<CaptureStream>();
    auto *cap = inner.get();
    auto s = maybeChaos(std::move(inner), ChaosConfig{});
    // No decorator: the very same object comes back.
    EXPECT_EQ(s.get(), cap);
}

// ---------------------------------------------------------------------
// backoff

TEST(Backoff, DoublesAndCaps)
{
    const std::uint64_t base = 50, cap = 2000, seed = 77;
    std::uint64_t prevFloor = 0;
    for (unsigned attempt = 1; attempt <= 12; ++attempt) {
        const auto d = backoffDelayMs(base, cap, attempt, seed);
        // Never below the exponential floor, never above cap + half
        // a step of jitter.
        const std::uint64_t floor =
            attempt >= 7 ? cap
                         : std::min<std::uint64_t>(
                               cap, base << (attempt - 1));
        EXPECT_GE(d, floor) << "attempt " << attempt;
        EXPECT_LE(d, cap + cap / 2) << "attempt " << attempt;
        EXPECT_GE(floor, prevFloor);
        prevFloor = floor;
    }
}

TEST(Backoff, DeterministicPerSeedAndAttempt)
{
    for (unsigned attempt = 1; attempt <= 8; ++attempt) {
        EXPECT_EQ(backoffDelayMs(50, 2000, attempt, 9),
                  backoffDelayMs(50, 2000, attempt, 9));
    }
    // Different seeds should disagree somewhere (jitter is real).
    bool differs = false;
    for (unsigned attempt = 1; attempt <= 8; ++attempt)
        differs |= backoffDelayMs(50, 2000, attempt, 1) !=
                   backoffDelayMs(50, 2000, attempt, 2);
    EXPECT_TRUE(differs);
}

// ---------------------------------------------------------------------
// Subprocess::waitFor

#if !defined(_WIN32)

TEST(SubprocessWaitFor, QuickExitIsReapedWithinTimeout)
{
    Subprocess p({"true"});
    const auto r = p.waitFor(5000);
    ASSERT_TRUE(r);
    EXPECT_TRUE(r->ok());
}

TEST(SubprocessWaitFor, HungChildTimesOutThenDiesOnKill)
{
    Subprocess p({"sleep", "30"});
    const auto r = p.waitFor(100);
    EXPECT_FALSE(r); // still running: the hung-worker case
    p.kill();
    const auto dead = p.waitFor(5000);
    ASSERT_TRUE(dead);
    EXPECT_TRUE(dead->signaled);
}

TEST(SubprocessWaitFor, IdempotentAfterReap)
{
    Subprocess p({"true"});
    const auto first = p.wait();
    EXPECT_TRUE(first.ok());
    const auto again = p.waitFor(0);
    ASSERT_TRUE(again);
    EXPECT_TRUE(again->ok());
}

// ---------------------------------------------------------------------
// loopback: SocketTransport <-> runSocketWorker, in one process

namespace {

/** A worker thread running the real socket-worker loop against a
 *  local SocketTransport. */
struct LoopbackWorker
{
    LoopbackWorker(std::uint16_t port, SocketWorkerConfig cfg,
                   ShardComputeFn compute)
    {
        cfg.host = "127.0.0.1";
        cfg.port = port;
        th = std::thread([cfg = std::move(cfg),
                          compute = std::move(compute), this] {
            exitCode.store(runSocketWorker(cfg, compute));
        });
    }
    ~LoopbackWorker()
    {
        if (th.joinable())
            th.join();
    }
    std::thread th;
    std::atomic<int> exitCode{-1};
};

std::string
fakeDeltaJson(std::uint64_t shard, std::uint64_t count)
{
    return "{delta for " + std::to_string(shard) + "/" +
           std::to_string(count) + "}";
}

} // namespace

TEST(SocketLoopback, DeliversShardsEndToEnd)
{
    SocketTransportConfig cfg;
    cfg.signature = 101;
    cfg.shardCount = 4;
    cfg.heartbeatMs = 50;
    cfg.graceMs = 8000;
    SocketTransport transport(cfg);

    SocketWorkerConfig wc;
    wc.signature = 101;
    wc.connectAttempts = 20;
    LoopbackWorker worker(transport.port(), wc, fakeDeltaJson);

    for (std::uint64_t shard = 0; shard < 4; ++shard) {
        const auto res = transport.runShard(shard, 1);
        ASSERT_EQ(res.status, TransportResult::Status::Delivered)
            << res.diag;
        EXPECT_EQ(res.deltaJson, fakeDeltaJson(shard, 4));
    }
    EXPECT_EQ(transport.remoteDeliveries(), 4u);
    EXPECT_EQ(transport.workersJoined(), 1u);
    transport.stop(); // Bye dismisses the worker
    worker.th.join();
    EXPECT_EQ(worker.exitCode.load(), 0);
}

TEST(SocketLoopback, SignatureMismatchRejectsWorkerWithExit3)
{
    SocketTransportConfig cfg;
    cfg.signature = 500;
    cfg.shardCount = 1;
    SocketTransport transport(cfg);

    SocketWorkerConfig wc;
    wc.signature = 999; // wrong
    wc.connectAttempts = 20;
    LoopbackWorker worker(transport.port(), wc, fakeDeltaJson);
    worker.th.join();
    EXPECT_EQ(worker.exitCode.load(), 3);
    EXPECT_EQ(transport.workersRejected(), 1u);
    EXPECT_EQ(transport.workersJoined(), 0u);
}

TEST(SocketLoopback, HungWorkerTripsHeartbeatTimeoutThenRecovers)
{
    SocketTransportConfig cfg;
    cfg.signature = 7;
    cfg.shardCount = 2;
    cfg.heartbeatMs = 40; // timeout derives to 320ms
    cfg.graceMs = 8000;
    SocketTransport transport(cfg);

    SocketWorkerConfig wc;
    wc.signature = 7;
    wc.connectAttempts = 30;
    wc.hangShard = 0; // first assignment of shard 0 goes silent
    wc.hangMs = 1200;
    LoopbackWorker worker(transport.port(), wc, fakeDeltaJson);

    const auto t0 = monotonicMs();
    const auto first = transport.runShard(0, 1);
    const auto detectMs = monotonicMs() - t0;
    EXPECT_EQ(first.status, TransportResult::Status::Failed);
    EXPECT_NE(first.diag.find("hung"), std::string::npos)
        << first.diag;
    // Detection must come from the heartbeat timeout, well before
    // the worker's 1200ms wedge ends.
    EXPECT_LT(detectMs, 1100u);

    // The worker wakes, reconnects, and the re-issued shard lands.
    const auto second = transport.runShard(0, 2);
    ASSERT_EQ(second.status, TransportResult::Status::Delivered)
        << second.diag;
    EXPECT_EQ(second.deltaJson, fakeDeltaJson(0, 2));
    transport.stop();
    worker.th.join();
    EXPECT_EQ(worker.exitCode.load(), 0);
}

TEST(SocketLoopback, ChaoticWorkerStillDeliversEveryShard)
{
    SocketTransportConfig cfg;
    cfg.signature = 33;
    cfg.shardCount = 6;
    cfg.heartbeatMs = 40;
    cfg.graceMs = 8000;
    SocketTransport transport(cfg);

    SocketWorkerConfig wc;
    wc.signature = 33;
    wc.connectAttempts = 60;
    wc.backoffBaseMs = 5;
    wc.backoffCapMs = 40;
    wc.chaos = ChaosConfig::parse(
        "seed=21,drop=0.1,dup=0.2,corrupt=0.08,trunc=0.05,disc=0.04");
    LoopbackWorker worker(transport.port(), wc, fakeDeltaJson);

    // Drive each shard to delivery through the same retry contract
    // the orchestrator uses (unbounded here; the drill binary proves
    // the 3-strike budget).
    for (std::uint64_t shard = 0; shard < 6; ++shard) {
        TransportResult res;
        unsigned attempt = 0;
        do {
            res = transport.runShard(shard, ++attempt);
        } while (res.status != TransportResult::Status::Delivered &&
                 attempt < 10);
        ASSERT_EQ(res.status, TransportResult::Status::Delivered)
            << "shard " << shard << ": " << res.diag;
        EXPECT_EQ(res.deltaJson, fakeDeltaJson(shard, 6));
    }
    transport.stop();
    worker.th.join();
    EXPECT_EQ(worker.exitCode.load(), 0);
}

#endif // !_WIN32
