/**
 * @file
 * Unit tests: the Warped-DMR engine — Algorithm 1 path by path,
 * intra/inter classification, coverage accounting, detection, and
 * the DMTR mode.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "dmr/dmr_engine.hh"
#include "fault/fault_injector.hh"
#include "mem/memory.hh"
#include "trace/recorder.hh"

using namespace warped;
using dmr::DmrConfig;
using dmr::DmrEngine;

namespace {

struct EngineFixture : ::testing::Test
{
    EngineFixture()
        : cfg(arch::GpuConfig::testDefault()), global(4096),
          exec(cfg, 0, global, func::NullFaultHook::instance())
    {
    }

    DmrEngine
    makeEngine(DmrConfig d)
    {
        return DmrEngine(cfg, d, exec, 1);
    }

    /** A synthetic executed instruction with plausible payloads. */
    func::ExecRecord
    rec(isa::Opcode op, unsigned active_count = 32,
        unsigned warp_id = 0, unsigned dst = 1, unsigned src = 2)
    {
        func::ExecRecord r;
        r.instr.op = op;
        r.instr.dst = isa::Reg{static_cast<RegIndex>(dst)};
        r.instr.src[0] = isa::Reg{static_cast<RegIndex>(src)};
        r.warpId = warp_id;
        for (unsigned s = 0; s < active_count; ++s)
            r.active.set(s);
        for (unsigned s = 0; s < 32; ++s) {
            r.operands[0][s] = s + 1;
            r.operands[1][s] = 7;
            std::array<RegValue, 3> ops = {r.operands[0][s],
                                           r.operands[1][s], 0};
            r.results[s] = func::Executor::computeLane(
                r.instr, ops, r.laneInfo[s]);
        }
        return r;
    }

    arch::GpuConfig cfg;
    mem::Memory global;
    func::Executor exec;
};

} // namespace

TEST_F(EngineFixture, DisabledEngineDoesNothing)
{
    auto e = makeEngine(DmrConfig::off());
    EXPECT_EQ(e.onIssue(rec(isa::Opcode::IADD), 0), 0u);
    EXPECT_EQ(e.stats().verifiableThreadInstrs, 0u);
    EXPECT_EQ(e.stats().comparisons, 0u);
}

TEST_F(EngineFixture, PartialMaskGoesIntraWarp)
{
    auto e = makeEngine(DmrConfig::paperDefault());
    e.onIssue(rec(isa::Opcode::IADD, /*active*/ 8), 0);
    const auto &s = e.stats();
    EXPECT_EQ(s.intraWarpInstrs, 1u);
    EXPECT_EQ(s.interWarpInstrs, 0u);
    // 8 active spread by cross mapping over 8 clusters: one active
    // and three idle per cluster -> every active covered.
    EXPECT_EQ(s.intraVerifiedThreads, 8u);
    EXPECT_EQ(s.verifiableThreadInstrs, 8u);
    EXPECT_FALSE(e.hasPending());
    EXPECT_EQ(s.errorsDetected, 0u);
}

TEST_F(EngineFixture, FullMaskBecomesPending)
{
    auto e = makeEngine(DmrConfig::paperDefault());
    e.onIssue(rec(isa::Opcode::IADD), 0);
    EXPECT_TRUE(e.hasPending());
    EXPECT_EQ(e.stats().interWarpInstrs, 1u);
    EXPECT_EQ(e.stats().verifiedThreadInstrs, 0u); // not yet verified
}

TEST_F(EngineFixture, Algorithm1CoexecOnTypeSwitch)
{
    auto e = makeEngine(DmrConfig::paperDefault());
    e.onIssue(rec(isa::Opcode::IADD), 0);          // SP, pending
    const auto stall = e.onIssue(rec(isa::Opcode::LDG), 1); // LDST
    EXPECT_EQ(stall, 0u);
    EXPECT_EQ(e.stats().coexecVerifications, 1u);
    EXPECT_EQ(e.stats().interVerifiedThreads, 32u);
    EXPECT_TRUE(e.hasPending()); // the LDG is now pending
}

TEST_F(EngineFixture, Algorithm1EnqueueOnSameType)
{
    auto e = makeEngine(DmrConfig::paperDefault());
    e.onIssue(rec(isa::Opcode::IADD), 0);
    const auto stall = e.onIssue(rec(isa::Opcode::IMUL), 1); // SP too
    EXPECT_EQ(stall, 0u);
    EXPECT_EQ(e.stats().enqueues, 1u);
    EXPECT_EQ(e.replayQueueSize(), 1u);
}

TEST_F(EngineFixture, Algorithm1DequeueDifferentType)
{
    auto e = makeEngine(DmrConfig::paperDefault());
    // Queue an SP entry via a same-type pair.
    e.onIssue(rec(isa::Opcode::IADD, 32, 0, 1), 0);
    e.onIssue(rec(isa::Opcode::IMUL, 32, 0, 3), 1);
    ASSERT_EQ(e.replayQueueSize(), 1u);
    // LDST pair: the pending LDG is same-type with the incoming STG,
    // so the queued *SP* entry is dequeued and verified while the STG
    // issues, and the LDG is enqueued.
    e.onIssue(rec(isa::Opcode::LDG, 32, 0, 4), 2);  // coexec SP IMUL
    e.onIssue(rec(isa::Opcode::STG, 32, 0, 0), 3);
    const auto &s = e.stats();
    EXPECT_GE(s.dequeueVerifications + s.coexecVerifications +
                  s.unitDrainVerifications,
              2u);
    // Everything issued so far except the live pending is verified or
    // queued; drain the rest and check totals.
    e.drainAll(10);
    EXPECT_EQ(s.verifiedThreadInstrs, e.stats().verifiableThreadInstrs);
}

TEST_F(EngineFixture, Algorithm1EagerStallWhenQueueFull)
{
    auto d = DmrConfig::paperDefault();
    d.replayQSize = 0;
    auto e = makeEngine(d);
    e.onIssue(rec(isa::Opcode::IADD), 0);
    const auto stall = e.onIssue(rec(isa::Opcode::IMUL), 1);
    EXPECT_EQ(stall, 1u);
    EXPECT_EQ(e.stats().eagerStalls, 1u);
    // The eager re-execution verified the pending instruction.
    EXPECT_EQ(e.stats().interVerifiedThreads, 32u);
}

TEST_F(EngineFixture, RawHazardStallVerifiesProducer)
{
    auto e = makeEngine(DmrConfig::paperDefault());
    // Producer of r5 queued (same-type pair of SP instructions).
    e.onIssue(rec(isa::Opcode::IADD, 32, /*warp*/ 0, /*dst*/ 5), 0);
    e.onIssue(rec(isa::Opcode::IMUL, 32, 0, /*dst*/ 6), 1);
    ASSERT_EQ(e.replayQueueSize(), 1u);

    // Consumer instruction reading r5 from the same warp.
    isa::Instruction consumer;
    consumer.op = isa::Opcode::IADD;
    consumer.dst = isa::Reg{7};
    consumer.src[0] = isa::Reg{5};
    EXPECT_TRUE(e.rawHazardStall(0, consumer, 2));
    EXPECT_EQ(e.stats().rawStalls, 1u);
    EXPECT_EQ(e.replayQueueSize(), 0u);
    // Re-check: hazard resolved.
    EXPECT_FALSE(e.rawHazardStall(0, consumer, 3));
}

TEST_F(EngineFixture, RawHazardIgnoresOtherWarps)
{
    auto e = makeEngine(DmrConfig::paperDefault());
    e.onIssue(rec(isa::Opcode::IADD, 32, /*warp*/ 0, /*dst*/ 5), 0);
    e.onIssue(rec(isa::Opcode::IMUL, 32, 0, 6), 1);
    isa::Instruction consumer;
    consumer.op = isa::Opcode::IADD;
    consumer.src[0] = isa::Reg{5};
    EXPECT_FALSE(e.rawHazardStall(/*warp*/ 1, consumer, 2));
}

TEST_F(EngineFixture, IdleCycleDrainsPendingThenQueue)
{
    auto e = makeEngine(DmrConfig::paperDefault());
    e.onIssue(rec(isa::Opcode::IADD), 0);
    e.onIssue(rec(isa::Opcode::IMUL), 1); // first IADD queued
    EXPECT_TRUE(e.hasPending());
    e.onIdleCycle(2); // verifies the pending IMUL
    EXPECT_FALSE(e.hasPending());
    EXPECT_EQ(e.replayQueueSize(), 1u);
    e.onIdleCycle(3); // drains the queued IADD
    EXPECT_EQ(e.replayQueueSize(), 0u);
    EXPECT_EQ(e.stats().idleDrainVerifications, 2u);
    EXPECT_EQ(e.stats().verifiedThreadInstrs, 64u);
}

TEST_F(EngineFixture, DrainAllEmptiesEverything)
{
    auto e = makeEngine(DmrConfig::paperDefault());
    for (unsigned i = 0; i < 6; ++i)
        e.onIssue(rec(isa::Opcode::IADD, 32, 0, i), i);
    const auto cycles = e.drainAll(100);
    EXPECT_GT(cycles, 0u);
    EXPECT_FALSE(e.hasPending());
    EXPECT_EQ(e.replayQueueSize(), 0u);
    EXPECT_EQ(e.stats().verifiedThreadInstrs,
              e.stats().verifiableThreadInstrs);
}

TEST_F(EngineFixture, OpportunisticUnitDrain)
{
    auto e = makeEngine(DmrConfig::paperDefault());
    // Pair of SP instructions: the first one is enqueued.
    e.onIssue(rec(isa::Opcode::IADD), 0);
    e.onIssue(rec(isa::Opcode::IMUL), 1);
    ASSERT_EQ(e.replayQueueSize(), 1u);
    // LDG issues: the pending IMUL co-executes on the idle SP slot,
    // so the queued SP IADD must wait (both SP slots would collide).
    e.onIssue(rec(isa::Opcode::LDG), 2);
    EXPECT_EQ(e.replayQueueSize(), 1u);
    EXPECT_EQ(e.stats().coexecVerifications, 1u);
    // A second LDST: same type as the pending LDG, so Algorithm 1
    // dequeues the waiting SP entry for the now-idle SP unit and
    // enqueues the LDG in its place.
    e.onIssue(rec(isa::Opcode::STG, 32, 0, 0), 3);
    EXPECT_EQ(e.stats().dequeueVerifications, 1u);
    EXPECT_EQ(e.replayQueueSize(), 1u); // the LDG
    EXPECT_TRUE(e.hasPending());        // the STG
    // An SFU instruction: the pending STG co-executes on LD/ST and
    // the opportunistic drain verifies the queued LDG... except the
    // LD/ST slot is taken by the co-execution — so it drains on the
    // next SP-issuing cycle instead.
    e.onIssue(rec(isa::Opcode::SIN), 4);
    EXPECT_EQ(e.replayQueueSize(), 1u);
    e.onIssue(rec(isa::Opcode::IADD, 32, 0, 9), 5);
    // SP issues, pending SIN co-execs on SFU, LD/ST slot is free:
    // the queued LDG drains opportunistically.
    EXPECT_EQ(e.stats().unitDrainVerifications, 1u);
    EXPECT_EQ(e.replayQueueSize(), 0u);
}

TEST_F(EngineFixture, BranchesParticipateInTypeComparisonOnly)
{
    auto e = makeEngine(DmrConfig::paperDefault());
    e.onIssue(rec(isa::Opcode::LDG), 0); // pending LDST
    // A branch (SP type, not verifiable) co-executes the pending LDG.
    func::ExecRecord br = rec(isa::Opcode::BRA);
    br.instr.dst = isa::Reg{0};
    EXPECT_EQ(e.onIssue(br, 1), 0u);
    EXPECT_EQ(e.stats().coexecVerifications, 1u);
    // The branch itself never becomes pending (nothing to verify).
    EXPECT_FALSE(e.hasPending());
    // And it is not part of the coverage denominator.
    EXPECT_EQ(e.stats().verifiableThreadInstrs, 32u);
}

TEST_F(EngineFixture, DmtrVerifiesPartialMasksTemporally)
{
    auto e = makeEngine(DmrConfig::dmtr());
    e.onIssue(rec(isa::Opcode::IADD, /*active*/ 4), 0);
    EXPECT_TRUE(e.hasPending()); // partial mask still pends in DMTR
    EXPECT_EQ(e.stats().intraVerifiedThreads, 0u);
    e.onIdleCycle(1);
    EXPECT_EQ(e.stats().interVerifiedThreads, 4u);
}

TEST_F(EngineFixture, IntraDisabledLeavesPartialUnverified)
{
    auto d = DmrConfig::paperDefault();
    d.intraWarp = false;
    auto e = makeEngine(d);
    e.onIssue(rec(isa::Opcode::IADD, 8), 0);
    e.drainAll(1);
    EXPECT_EQ(e.stats().verifiedThreadInstrs, 0u);
    EXPECT_EQ(e.stats().verifiableThreadInstrs, 8u);
    EXPECT_LT(e.stats().coverage(), 1.0);
}

TEST_F(EngineFixture, DetectsCorruptedPrimaryResult)
{
    auto e = makeEngine(DmrConfig::paperDefault());
    auto r = rec(isa::Opcode::IADD);
    r.results[3] ^= 0x4; // corrupt one lane's recorded result
    e.onIssue(r, 0);
    e.drainAll(1);
    EXPECT_EQ(e.stats().errorsDetected, 1u);
    ASSERT_EQ(e.stats().errorLog.size(), 1u);
    EXPECT_EQ(e.stats().errorLog[0].slot, 3u);
    EXPECT_FALSE(e.stats().errorLog[0].intraWarp);
}

TEST_F(EngineFixture, IntraWarpDetectsCorruption)
{
    auto e = makeEngine(DmrConfig::paperDefault());
    auto r = rec(isa::Opcode::IADD, /*active*/ 4);
    r.results[2] += 1;
    e.onIssue(r, 0);
    EXPECT_GE(e.stats().errorsDetected, 1u);
    EXPECT_TRUE(e.stats().errorLog[0].intraWarp);
}

TEST_F(EngineFixture, LaneShuffleSendsCheckerToDifferentLane)
{
    auto e = makeEngine(DmrConfig::paperDefault());
    e.onIssue(rec(isa::Opcode::IADD), 0);
    e.onIdleCycle(1);
    // Force a mismatch to inspect the lanes used.
    auto r = rec(isa::Opcode::IADD);
    r.results[0] ^= 1;
    e.onIssue(r, 2);
    e.drainAll(3);
    ASSERT_FALSE(e.stats().errorLog.empty());
    const auto &ev = e.stats().errorLog.front();
    EXPECT_NE(ev.checkerLane, ev.primaryLane);
}

TEST_F(EngineFixture, ReplayQueueOverflowForcesEagerStall)
{
    // The Algorithm-1 overflow path: a full 10-entry ReplayQ with no
    // different-type co-execution candidate forces the one-cycle
    // stall + eager re-execution of §4.3.1.
    auto e = makeEngine(DmrConfig::paperDefault()); // replayQSize = 10
    trace::Recorder recorder(1, 0);
    e.attachRecorder(&recorder);

    // 11 full-mask same-type issues: the first becomes pending, each
    // later issue pushes its predecessor into the queue until all 10
    // entries are occupied (and one instruction is still pending).
    Cycle now = 0;
    for (unsigned w = 0; w < 11; ++w)
        EXPECT_EQ(e.onIssue(rec(isa::Opcode::IADD, 32, w), now++), 0u);
    EXPECT_EQ(e.replayQueueSize(), 10u);
    EXPECT_EQ(e.stats().enqueues, 10u);
    EXPECT_TRUE(e.hasPending());
    EXPECT_EQ(e.stats().interVerifiedThreads, 0u); // nothing drained

    // One more same-type issue: queue full, every queued entry is the
    // same type as the busy unit, so nothing can co-execute -> the
    // pending instruction is eagerly re-executed behind a forced
    // 1-cycle stall, and the queue is NOT flushed (depth stays 10).
    const auto stall = e.onIssue(rec(isa::Opcode::IADD, 32, 11), now);
    EXPECT_EQ(stall, 1u);
    EXPECT_EQ(e.stats().eagerStalls, 1u);
    EXPECT_EQ(e.stats().interVerifiedThreads, 32u);
    EXPECT_EQ(e.replayQueueSize(), 10u);
    EXPECT_TRUE(e.hasPending()); // the new instruction took the slot

    // The event stream tells the same story: ten pushes whose depths
    // climb 1..10, no pops, and exactly one overflow stamped with the
    // configured capacity.
    unsigned pushes = 0, pops = 0, overflows = 0;
    for (const auto &ev : recorder.laneSnapshot(0)) {
        switch (ev.kind) {
          case trace::EventKind::ReplayPush:
            EXPECT_EQ(ev.a1, ++pushes);
            break;
          case trace::EventKind::ReplayPop:
            ++pops;
            break;
          case trace::EventKind::ReplayOverflow:
            ++overflows;
            EXPECT_EQ(ev.a1, 10u);
            break;
          default:
            break;
        }
    }
    EXPECT_EQ(pushes, 10u);
    EXPECT_EQ(pops, 0u);
    EXPECT_EQ(overflows, 1u);

    // A different-type issue afterwards unblocks verification again:
    // the pending SP instruction co-executes for free against the
    // idle SP units — no further stalls even though the queue is
    // still at capacity.
    EXPECT_EQ(e.onIssue(rec(isa::Opcode::LDG, 32, 12), now + 1), 0u);
    EXPECT_EQ(e.stats().coexecVerifications, 1u);
    EXPECT_EQ(e.stats().eagerStalls, 1u);

    // Idle cycles then drain the backlog one entry at a time.
    Cycle t = now + 2;
    while (e.replayQueueSize() > 0 || e.hasPending())
        e.onIdleCycle(t++);
    EXPECT_EQ(e.replayQueueSize(), 0u);
}
