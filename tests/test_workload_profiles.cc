/**
 * @file
 * Workload-profile regression tests: each Table-4 kernel exists to
 * exhibit a specific divergence / instruction-mix / coverage profile
 * (the shapes behind Figs 1, 5 and 9a). These tests pin those
 * profiles so an innocent-looking kernel edit cannot silently turn a
 * divergence benchmark into a full-warp one.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "workloads/workload.hh"

using namespace warped;

namespace {

gpu::LaunchResult
profileOf(std::unique_ptr<workloads::Workload> w,
          dmr::DmrConfig d = dmr::DmrConfig::paperDefault())
{
    setVerbose(false);
    auto cfg = arch::GpuConfig::testDefault();
    cfg.numSms = 4;
    gpu::Gpu g(cfg, d);
    return workloads::runVerified(*w, g);
}

double
fullWarpFraction(const gpu::LaunchResult &r)
{
    return r.activeHist.rangeFraction(32, 32);
}

double
unitShare(const gpu::LaunchResult &r, isa::UnitType t)
{
    return double(r.unitIssues[static_cast<unsigned>(t)]) /
           double(r.issuedWarpInstrs);
}

} // namespace

TEST(Profiles, BfsIsTheDivergenceExtreme)
{
    const auto r = profileOf(workloads::makeBfs(4));
    // Most issue slots run with a small fraction of the warp active.
    EXPECT_LT(fullWarpFraction(r), 0.45);
    EXPECT_GT(r.activeHist.rangeFraction(1, 11), 0.4);
}

TEST(Profiles, NqueenHasLongSparseTails)
{
    const auto r = profileOf(workloads::makeNqueen(2));
    EXPECT_LT(fullWarpFraction(r), 0.1);
    EXPECT_GT(r.activeHist.rangeFraction(1, 11), 0.5);
}

TEST(Profiles, FullyUtilizedTrio)
{
    // MatrixMul, SHA and Libor must stay 100 % full-warp: they are
    // the paper's inter-warp-DMR-only representatives.
    for (auto *name : {"MatrixMul", "SHA", "Libor"}) {
        auto w = name == std::string("MatrixMul")
                     ? workloads::makeMatrixMul(64)
                     : workloads::makeByNameScaled(name, 1);
        const auto r = profileOf(std::move(w));
        EXPECT_DOUBLE_EQ(fullWarpFraction(r), 1.0) << name;
        EXPECT_EQ(r.dmr.intraWarpInstrs, 0u) << name;
    }
}

TEST(Profiles, CufftSitsInTheHighUtilizationBand)
{
    // The paper's coverage-floor case: partial warps mostly >22
    // active, so intra-warp DMR can only cover a fraction.
    const auto r = profileOf(workloads::makeFft(4));
    EXPECT_GT(r.activeHist.rangeFraction(22, 31), 0.1);
    EXPECT_GT(fullWarpFraction(r), 0.4);
    EXPECT_LT(r.coverage(), 0.95);
    EXPECT_GT(r.coverage(), 0.75);
}

TEST(Profiles, MumTailWarpsRewardCrossMapping)
{
    // The §4.2 showcase: 48-thread blocks leave a contiguous 16/32
    // tail warp that only the cross mapping can pair up.
    auto linear = dmr::DmrConfig::baselineMapping();
    const auto r_lin = profileOf(workloads::makeMum(4), linear);
    const auto r_cross = profileOf(workloads::makeMum(4));
    EXPECT_GT(r_cross.coverage(), r_lin.coverage() + 0.1);
}

TEST(Profiles, LiborIsTheSfuWorkload)
{
    const auto r = profileOf(workloads::makeLibor(2));
    EXPECT_GT(unitShare(r, isa::UnitType::SFU), 0.15);
    // And nothing else comes close.
    const auto sha = profileOf(workloads::makeSha(2));
    EXPECT_LT(unitShare(sha, isa::UnitType::SFU), 0.01);
}

TEST(Profiles, ShaIsSpDense)
{
    const auto r = profileOf(workloads::makeSha(2));
    EXPECT_GT(unitShare(r, isa::UnitType::SP), 0.9);
}

TEST(Profiles, MatrixMulIsBalancedSpLdst)
{
    // The balanced mix is what lets inter-warp DMR keep up with it
    // (verification-bandwidth argument in EXPERIMENTS.md).
    const auto r = profileOf(workloads::makeMatrixMul(64));
    EXPECT_GT(unitShare(r, isa::UnitType::LDST), 0.35);
    EXPECT_GT(unitShare(r, isa::UnitType::SP), 0.35);
}

TEST(Profiles, ScanRadixShowTreePhases)
{
    for (auto *name : {"SCAN", "RadixSort"}) {
        auto w = name == std::string("SCAN")
                     ? workloads::makeScan(2)
                     : workloads::makeRadixSort(2);
        const auto r = profileOf(std::move(w));
        // Full phases dominate but the shrinking tree leaves a
        // visible partial-mask share...
        EXPECT_GT(fullWarpFraction(r), 0.6) << name;
        EXPECT_GT(r.dmr.intraWarpInstrs, 0u) << name;
        // ...that cross mapping covers completely (Fig 9a: 100 %).
        EXPECT_DOUBLE_EQ(r.coverage(), 1.0) << name;
    }
}

TEST(Profiles, BitonicLivesOnHalfMasks)
{
    const auto r = profileOf(workloads::makeBitonicSort(2));
    EXPECT_GT(r.activeHist.rangeFraction(12, 21), 0.35);
}

TEST(Profiles, CoverageOrderingAcrossConfigs)
{
    // The Fig 9a ordering at test scale: cross mapping beats the
    // 4-lane linear baseline on average.
    double lin = 0, cross = 0;
    const char *names[] = {"BFS", "MUM", "SCAN", "CUFFT"};
    for (auto *name : names) {
        auto mk = [&] { return workloads::makeByNameScaled(name, 1); };
        lin += profileOf(mk(), dmr::DmrConfig::baselineMapping())
                   .coverage();
        cross += profileOf(mk()).coverage();
    }
    EXPECT_GT(cross, lin);
}
