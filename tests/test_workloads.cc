/**
 * @file
 * Functional correctness of every Table-4 workload: each kernel's GPU
 * output must match its CPU reference, with Warped-DMR off and on
 * (DMR must never change architectural results), and coverage /
 * instruction-accounting invariants must hold.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "workloads/workload.hh"

using namespace warped;

namespace {

arch::GpuConfig
smallCfg()
{
    return arch::GpuConfig::testDefault();
}

std::unique_ptr<workloads::Workload>
makeSmall(const std::string &name)
{
    using namespace workloads;
    // Shrunken instances keep unit tests fast; the bench harnesses
    // use the full Table-4-scaled defaults.
    if (name == "BFS") return makeBfs(2);
    if (name == "Nqueen") return makeNqueen(1);
    if (name == "MUM") return makeMum(2);
    if (name == "SCAN") return makeScan(2);
    if (name == "BitonicSort") return makeBitonicSort(2);
    if (name == "Laplace") return makeLaplace(32);
    if (name == "MatrixMul") return makeMatrixMul(32);
    if (name == "RadixSort") return makeRadixSort(2);
    if (name == "SHA") return makeSha(2);
    if (name == "Libor") return makeLibor(2);
    if (name == "CUFFT") return makeFft(4);
    ADD_FAILURE() << "unknown workload " << name;
    return nullptr;
}

class WorkloadCorrectness
    : public ::testing::TestWithParam<std::string>
{
};

} // namespace

TEST_P(WorkloadCorrectness, MatchesCpuReferenceWithDmrOff)
{
    setVerbose(false);
    auto w = makeSmall(GetParam());
    gpu::Gpu g(smallCfg(), dmr::DmrConfig::off());
    auto r = workloads::runVerified(*w, g);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.issuedWarpInstrs, 0u);
}

TEST_P(WorkloadCorrectness, MatchesCpuReferenceWithDmrOn)
{
    setVerbose(false);
    auto w = makeSmall(GetParam());
    gpu::Gpu g(smallCfg(), dmr::DmrConfig::paperDefault());
    auto r = workloads::runVerified(*w, g);
    // On a fault-free machine the comparator must never fire.
    EXPECT_EQ(r.dmr.errorsDetected, 0u);
    // Every verifiable thread-execution is either intra- or
    // inter-warp verified, never both.
    EXPECT_EQ(r.dmr.verifiedThreadInstrs,
              r.dmr.intraVerifiedThreads + r.dmr.interVerifiedThreads);
    EXPECT_LE(r.dmr.verifiedThreadInstrs, r.dmr.verifiableThreadInstrs);
    EXPECT_GT(r.coverage(), 0.5);
    // (CUFFT sits lowest, near the paper's 90 %.)
    EXPECT_LE(r.coverage(), 1.0);
}

TEST_P(WorkloadCorrectness, DmrNeverSlowsDownMoreThanTheoreticalBound)
{
    setVerbose(false);
    auto w1 = makeSmall(GetParam());
    gpu::Gpu g1(smallCfg(), dmr::DmrConfig::off());
    const auto base = workloads::runVerified(*w1, g1);

    auto w2 = makeSmall(GetParam());
    gpu::Gpu g2(smallCfg(), dmr::DmrConfig::paperDefault());
    const auto prot = workloads::runVerified(*w2, g2);

    // DMR adds stall cycles but never removes work. Stall-shifted
    // warp interleaving can perturb total cycles a few percent in
    // either direction, so allow slack downward and bound upward by
    // the 2x cost of full temporal DMR.
    EXPECT_GE(double(prot.cycles), 0.9 * double(base.cycles));
    EXPECT_LE(double(prot.cycles), 2.05 * double(base.cycles))
        << "overhead beyond the DMR theoretical bound";
    // Identical functional work on both machines.
    EXPECT_EQ(prot.issuedThreadInstrs, base.issuedThreadInstrs);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadCorrectness,
    ::testing::ValuesIn(workloads::allNames()),
    [](const auto &info) { return info.param; });
