/**
 * @file
 * Executable paper-shape claims: the qualitative results EXPERIMENTS.md
 * reports, asserted at test scale so a regression that silently breaks
 * a headline reproduction fails CI rather than only showing up when
 * someone rereads the bench output.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "dmr/rfu.hh"
#include "power/power_model.hh"
#include "redundancy/scheme.hh"
#include "workloads/workload.hh"

using namespace warped;

namespace {

arch::GpuConfig
claimCfg()
{
    auto cfg = arch::GpuConfig::testDefault();
    cfg.numSms = 4;
    return cfg;
}

gpu::LaunchResult
runCfg(const std::string &name, const dmr::DmrConfig &d)
{
    auto w = workloads::makeByNameScaled(name, 1);
    gpu::Gpu g(claimCfg(), d);
    return workloads::runVerified(*w, g);
}

} // namespace

TEST(PaperClaims, Fig1_UnderutilizationSpectrum)
{
    setVerbose(false);
    // BFS's fully-active fraction is far below MatrixMul's (which is
    // exactly 1.0) — the two ends of Fig 1.
    const auto bfs = runCfg("BFS", dmr::DmrConfig::off());
    const auto mm = runCfg("MatrixMul", dmr::DmrConfig::off());
    EXPECT_LT(bfs.activeHist.rangeFraction(32, 32), 0.5);
    EXPECT_DOUBLE_EQ(mm.activeHist.rangeFraction(32, 32), 1.0);
}

TEST(PaperClaims, Fig9a_MappingOrderingOnAverage)
{
    setVerbose(false);
    const char *names[] = {"BFS", "MUM", "SCAN", "CUFFT",
                           "BitonicSort"};
    double lin = 0, cross = 0;
    for (auto *n : names) {
        lin += runCfg(n, dmr::DmrConfig::baselineMapping()).coverage();
        cross += runCfg(n, dmr::DmrConfig::paperDefault()).coverage();
    }
    EXPECT_GT(cross, lin) << "cross mapping must win on average";
}

TEST(PaperClaims, Fig9b_OverheadFallsWithReplayQ)
{
    setVerbose(false);
    // Paper-like occupancy (one block per SM): oversubscribing the
    // chip starves inter-warp DMR of idle slots and pushes overhead
    // toward its theoretical 2x bound regardless of queue size.
    auto run = [&](const dmr::DmrConfig &d) {
        auto w = workloads::makeMatrixMul(64);
        gpu::Gpu g(claimCfg(), d);
        return workloads::runVerified(*w, g).cycles;
    };
    const double base = double(run(dmr::DmrConfig::off()));
    double prev = 1e9;
    for (unsigned q : {0u, 5u, 10u}) {
        auto d = dmr::DmrConfig::paperDefault();
        d.replayQSize = q;
        const double norm = double(run(d)) / base;
        EXPECT_LE(norm, prev * 1.01) << "q=" << q;
        prev = norm;
    }
    // Absolute overhead depends on occupancy and memory latencies;
    // the invariant is monotone improvement and staying well below
    // the 2x temporal-DMR bound.
    EXPECT_LT(prev, 1.80);
}

TEST(PaperClaims, Fig9b_UnderutilizedWorkloadsAreFree)
{
    setVerbose(false);
    // Nqueen is the deepest-divergence workload: almost everything is
    // intra-warp covered for free, so even a zero-entry ReplayQ costs
    // nearly nothing (Fig 9b's BFS-class rows).
    const auto base = runCfg("Nqueen", dmr::DmrConfig::off());
    auto d = dmr::DmrConfig::paperDefault();
    d.replayQSize = 0;
    const auto r = runCfg("Nqueen", d);
    EXPECT_LT(double(r.cycles) / double(base.cycles), 1.10);
}

TEST(PaperClaims, Fig10_SchemeOrdering)
{
    setVerbose(false);
    using redundancy::Scheme;
    const auto cfg = claimCfg();
    const auto orig =
        redundancy::runScheme(Scheme::Original, "SCAN", cfg);
    const auto naive =
        redundancy::runScheme(Scheme::RNaive, "SCAN", cfg);
    const auto rthr =
        redundancy::runScheme(Scheme::RThread, "SCAN", cfg);
    const auto warped =
        redundancy::runScheme(Scheme::WarpedDmr, "SCAN", cfg);
    EXPECT_GT(naive.totalNs(), rthr.totalNs());
    EXPECT_GT(rthr.totalNs(), warped.totalNs());
    EXPECT_GE(warped.totalNs(), orig.totalNs() * 0.999);
}

TEST(PaperClaims, Fig11_PowerAndEnergyRise)
{
    setVerbose(false);
    power::PowerModel pm(claimCfg());
    const auto base = runCfg("SCAN", dmr::DmrConfig::off());
    const auto prot = runCfg("SCAN", dmr::DmrConfig::paperDefault());
    const double p = pm.estimate(prot).total() /
                     pm.estimate(base).total();
    const double e = pm.energyMj(prot) / pm.energyMj(base);
    EXPECT_GT(p, 1.0);
    EXPECT_LT(p, 1.5);
    EXPECT_GT(e, p * 0.99); // energy rises at least as much as power
}

TEST(PaperClaims, Headline_CoverageMatchesPaperWithinTolerance)
{
    setVerbose(false);
    // Paper §6: 96.43 % average error coverage. Asserted from the
    // metrics registry — the same surface the exporters and golden
    // traces consume — not recomputed ad hoc, and against the paper
    // figure with an explicit tolerance: the representative 8-workload
    // mix at test scale averages within two points of paper scale
    // (measured 96.89 % on the seed).
    constexpr double kPaperCoverage = 0.9643;
    constexpr double kCoverageTolerance = 0.02;

    const char *names[] = {"BFS", "SCAN", "MatrixMul", "SHA",
                           "Libor", "RadixSort", "CUFFT", "MUM"};
    double sum = 0;
    for (auto *n : names) {
        const auto r = runCfg(n, dmr::DmrConfig::paperDefault());
        const double cov = r.metrics.gaugeValue("dmr.coverage");
        // The registry is derived from the folded DmrStats; it must
        // agree exactly with the LaunchResult's own accessor.
        EXPECT_DOUBLE_EQ(cov, r.coverage()) << n;
        sum += cov;
    }
    EXPECT_NEAR(sum / std::size(names), kPaperCoverage,
                kCoverageTolerance);
}

TEST(PaperClaims, Headline_OverheadNearPaperOnIntraDominatedMix)
{
    setVerbose(false);
    // Paper §6: 16 % average performance overhead. Our 4-SM test
    // grids oversubscribe the chip, which inflates inter-warp DMR
    // cost for dense workloads (see Fig9b tests); the workloads whose
    // coverage is dominated by *intra*-warp DMR (the divergent BFS /
    // MUM class) reproduce the paper's overhead directly, so those
    // carry the explicit-tolerance assertion. Cycle counts come from
    // the metrics registry, not from the raw LaunchResult.
    constexpr double kPaperOverhead = 0.16;
    constexpr double kOverheadTolerance = 0.08;

    for (const char *n : {"BFS", "MUM"}) {
        const auto off = runCfg(n, dmr::DmrConfig::off());
        const auto on = runCfg(n, dmr::DmrConfig::paperDefault());
        const auto base = off.metrics.counterValue("sim.cycles");
        const auto prot = on.metrics.counterValue("sim.cycles");
        ASSERT_GT(base, 0u);
        EXPECT_EQ(base, off.cycles) << n; // registry agrees w/ result
        const double overhead = double(prot) / double(base) - 1.0;
        EXPECT_NEAR(overhead, kPaperOverhead, kOverheadTolerance)
            << n;
    }
}

TEST(PaperClaims, Table1_RfuIsTheXorNetwork)
{
    // Asserted exhaustively in test_rfu; here the single line the
    // paper prints: the first two priority rows.
    using dmr::Rfu;
    EXPECT_EQ(Rfu::priority(0, 1), 1u);
    EXPECT_EQ(Rfu::priority(1, 1), 0u);
    EXPECT_EQ(Rfu::priority(2, 1), 3u);
    EXPECT_EQ(Rfu::priority(3, 1), 2u);
}
