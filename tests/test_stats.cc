/**
 * @file
 * Unit tests: statistics substrate (histograms, run-length tracking,
 * RAW-distance tracking).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "stats/distance.hh"
#include "stats/histogram.hh"
#include "stats/run_length.hh"

using namespace warped::stats;

TEST(Histogram, CountsAndRanges)
{
    Histogram h(33);
    h.add(1);
    h.add(1);
    h.add(15, 3);
    h.add(32);
    EXPECT_EQ(h.total(), 6u);
    EXPECT_EQ(h.count(1), 2u);
    EXPECT_EQ(h.rangeCount(1, 1), 2u);
    EXPECT_EQ(h.rangeCount(12, 21), 3u);
    EXPECT_EQ(h.rangeCount(2, 11), 0u);
    EXPECT_DOUBLE_EQ(h.rangeFraction(32, 32), 1.0 / 6.0);
    h.reset();
    EXPECT_EQ(h.total(), 0u);
    EXPECT_DOUBLE_EQ(h.rangeFraction(0, 32), 0.0);
}

TEST(Histogram, OutOfDomainPanics)
{
    warped::setVerbose(false);
    Histogram h(4);
    EXPECT_THROW(h.add(4), std::logic_error);
}

TEST(Histogram, RangeClampsToDomain)
{
    Histogram h(4);
    h.add(3);
    EXPECT_EQ(h.rangeCount(2, 100), 1u);
}

TEST(Histogram, EmptyDomainRangeIsZero)
{
    // size 0: counts_.size() - 1 used to wrap during clamping; every
    // query must come back zero regardless of bounds.
    Histogram h(0);
    EXPECT_EQ(h.size(), 0u);
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.rangeCount(0, 0), 0u);
    EXPECT_EQ(h.rangeCount(0, 0xFFFFFFFFu), 0u);
    EXPECT_EQ(h.rangeCount(5, 2), 0u);
    EXPECT_DOUBLE_EQ(h.rangeFraction(0, 100), 0.0);
}

TEST(Histogram, SingleBucketRanges)
{
    Histogram h(1);
    EXPECT_EQ(h.rangeCount(0, 0), 0u);
    h.add(0, 7);
    EXPECT_EQ(h.rangeCount(0, 0), 7u);
    EXPECT_EQ(h.rangeCount(0, 0xFFFFFFFFu), 7u); // clamped to [0,0]
    EXPECT_EQ(h.rangeCount(1, 5), 0u);           // entirely above
    EXPECT_DOUBLE_EQ(h.rangeFraction(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(h.rangeFraction(1, 5), 0.0);
}

TEST(Histogram, InvertedRangeIsEmpty)
{
    Histogram h(8);
    h.add(3);
    EXPECT_EQ(h.rangeCount(5, 2), 0u);
    EXPECT_DOUBLE_EQ(h.rangeFraction(5, 2), 0.0);
}

TEST(Mean, WeightedMean)
{
    Mean m;
    EXPECT_DOUBLE_EQ(m.mean(), 0.0);
    m.add(2.0, 1.0);
    m.add(10.0, 3.0);
    EXPECT_DOUBLE_EQ(m.mean(), 8.0);
}

TEST(RunLength, BasicRuns)
{
    RunLengthTracker t(3);
    // Stream: 0 0 0 1 1 0 2
    for (unsigned c : {0u, 0u, 0u, 1u, 1u, 0u, 2u})
        t.observe(c);
    t.finish();
    EXPECT_DOUBLE_EQ(t.meanRunLength(0), 2.0); // runs 3 and 1
    EXPECT_EQ(t.maxRunLength(0), 3u);
    EXPECT_EQ(t.runCount(0), 2u);
    EXPECT_DOUBLE_EQ(t.meanRunLength(1), 2.0);
    EXPECT_DOUBLE_EQ(t.meanRunLength(2), 1.0);
}

TEST(RunLength, FinishIsIdempotent)
{
    RunLengthTracker t(2);
    t.observe(0);
    t.finish();
    t.finish();
    EXPECT_EQ(t.runCount(0), 1u);
}

TEST(RunLength, EmptyCategory)
{
    RunLengthTracker t(2);
    t.observe(0);
    t.finish();
    EXPECT_DOUBLE_EQ(t.meanRunLength(1), 0.0);
    EXPECT_EQ(t.maxRunLength(1), 0u);
}

TEST(RunLength, OutOfRangePanics)
{
    warped::setVerbose(false);
    RunLengthTracker t(2);
    EXPECT_THROW(t.observe(2), std::logic_error);
}

TEST(RawDistance, WriteThenRead)
{
    RawDistanceTracker t(8);
    t.onWrite(3, 100);
    t.onRead(3, 112);
    ASSERT_EQ(t.samples().size(), 1u);
    EXPECT_EQ(t.samples()[0], 12u);
}

TEST(RawDistance, OnlyFirstReadCounts)
{
    RawDistanceTracker t(8);
    t.onWrite(3, 100);
    t.onRead(3, 110);
    t.onRead(3, 500); // not a new dependence edge
    EXPECT_EQ(t.samples().size(), 1u);
}

TEST(RawDistance, ReadWithoutWriteIgnored)
{
    RawDistanceTracker t(8);
    t.onRead(2, 50);
    EXPECT_TRUE(t.samples().empty());
}

TEST(RawDistance, MultipleRegisters)
{
    RawDistanceTracker t(8);
    t.onWrite(0, 0);
    t.onWrite(1, 10);
    t.onRead(1, 30);
    t.onRead(0, 1000);
    EXPECT_EQ(t.samples().size(), 2u);
    EXPECT_DOUBLE_EQ(t.fractionAbove(100), 0.5);
    EXPECT_EQ(t.minDistance(), 20u);
    auto sorted = t.sortedDescending();
    EXPECT_EQ(sorted.front(), 1000u);
}

TEST(RawDistance, OutOfRangeRegisterIgnored)
{
    RawDistanceTracker t(4);
    t.onWrite(9, 0);
    t.onRead(9, 5);
    EXPECT_TRUE(t.samples().empty());
}
