/**
 * @file
 * Binary trace format suite: the compact on-disk rendering
 * (trace/binary.hh) must be a lossless stand-in for the Chrome JSON
 * exporter. The contract under test, in order of importance:
 *
 *  1. binary capture -> readBinaryTrace -> writeChromeTrace is
 *     byte-identical to exporting JSON directly, on the same three
 *     golden workloads the golden-trace suite pins;
 *  2. the stream is deterministic: independent launches of the same
 *     configuration serialize to identical bytes (the worker-count /
 *     `--jobs` independence the Recorder guarantees);
 *  3. ring-drop accounting survives the round trip (header count ==
 *     the launch's trace.dropped counter);
 *  4. malformed input (bad magic, wrong version, truncation, unknown
 *     event kind) is rejected with a diagnostic, never misparsed.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "common/logging.hh"
#include "gpu/gpu.hh"
#include "trace/binary.hh"
#include "trace/export.hh"
#include "workloads/workload.hh"

using namespace warped;

namespace {

struct BinCase
{
    const char *label;
    std::unique_ptr<workloads::Workload> (*make)();
};

// Same miniature instances (and machine shape) the golden-trace
// suite runs, so equivalence here extends transitively to the
// checked-in goldens.
const BinCase kCases[] = {
    {"bfs", [] { return workloads::makeBfs(1); }},
    {"scan", [] { return workloads::makeScan(1); }},
    {"matrixmul", [] { return workloads::makeMatrixMul(32); }},
};

struct TracedRun
{
    gpu::LaunchResult result;
    std::string name;
};

TracedRun
runTraced(const BinCase &c, unsigned ring_capacity = 128)
{
    setVerbose(false);
    auto cfg = arch::GpuConfig::testDefault();
    cfg.numSms = 2;
    cfg.traceEvents = true;
    cfg.traceRingCapacity = ring_capacity;

    auto w = c.make();
    gpu::Gpu g(cfg, dmr::DmrConfig::paperDefault());
    TracedRun tr{workloads::runVerified(*w, g), w->name()};
    EXPECT_FALSE(tr.result.hung);
    return tr;
}

std::string
toBinary(const TracedRun &tr)
{
    std::ostringstream os(std::ios::binary);
    trace::writeBinaryTrace(
        os, tr.result.events, tr.name,
        tr.result.metrics.counterValue("trace.dropped"));
    return os.str();
}

} // namespace

class BinaryTraceWorkload : public ::testing::TestWithParam<BinCase>
{
};

TEST_P(BinaryTraceWorkload, ConvertedJsonMatchesDirectExport)
{
    const auto tr = runTraced(GetParam());
    const std::string direct =
        trace::chromeTraceJson(tr.result.events, tr.name);

    std::istringstream in(toBinary(tr), std::ios::binary);
    trace::BinaryTrace bt;
    std::string err;
    ASSERT_TRUE(trace::readBinaryTrace(in, bt, err)) << err;

    EXPECT_EQ(bt.label, tr.name);
    EXPECT_EQ(bt.events.size(), tr.result.events.size());
    EXPECT_EQ(trace::chromeTraceJson(bt.events, bt.label), direct);
}

TEST_P(BinaryTraceWorkload, IndependentLaunchesSerializeIdentically)
{
    // The Recorder's determinism contract: per-launch private rings,
    // merged in (cycle, sm, seq) order, so the same configuration
    // yields the same stream no matter how many campaign workers
    // (--jobs) run other launches around it. Two back-to-back
    // launches are the in-process form of that guarantee.
    const std::string first = toBinary(runTraced(GetParam()));
    const std::string second = toBinary(runTraced(GetParam()));
    EXPECT_EQ(first, second);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, BinaryTraceWorkload, ::testing::ValuesIn(kCases),
    [](const ::testing::TestParamInfo<BinCase> &info) {
        return std::string(info.param.label);
    });

TEST(BinaryTrace, DropAccountingSurvivesRoundTrip)
{
    // A 16-entry ring on a workload with hundreds of thousands of
    // events: almost everything is overwritten, and the header must
    // carry the exact drop count so trace consumers can tell a short
    // run from a clipped one.
    const auto tr = runTraced(kCases[0], /*ring_capacity=*/16);
    const std::uint64_t dropped =
        tr.result.metrics.counterValue("trace.dropped");
    ASSERT_GT(dropped, 0u);

    std::istringstream in(toBinary(tr), std::ios::binary);
    trace::BinaryTrace bt;
    std::string err;
    ASSERT_TRUE(trace::readBinaryTrace(in, bt, err)) << err;
    EXPECT_EQ(bt.dropped, dropped);
    EXPECT_EQ(bt.events.size(), tr.result.events.size());
}

TEST(BinaryTrace, EmptyStreamRoundTrips)
{
    std::ostringstream os(std::ios::binary);
    trace::writeBinaryTrace(os, {}, "empty", 0);

    std::istringstream in(os.str(), std::ios::binary);
    trace::BinaryTrace bt;
    std::string err;
    ASSERT_TRUE(trace::readBinaryTrace(in, bt, err)) << err;
    EXPECT_EQ(bt.label, "empty");
    EXPECT_EQ(bt.dropped, 0u);
    EXPECT_TRUE(bt.events.empty());
}

TEST(BinaryTrace, RejectsBadMagic)
{
    std::istringstream in(std::string("NOPE") + std::string(64, '\0'),
                          std::ios::binary);
    trace::BinaryTrace bt;
    std::string err;
    EXPECT_FALSE(trace::readBinaryTrace(in, bt, err));
    EXPECT_NE(err.find("magic"), std::string::npos) << err;
}

TEST(BinaryTrace, RejectsWrongVersion)
{
    std::ostringstream os(std::ios::binary);
    trace::writeBinaryTrace(os, {}, "v", 0);
    std::string bytes = os.str();
    bytes[4] = 0x7f; // version low byte (offset 4, little-endian)

    std::istringstream in(bytes, std::ios::binary);
    trace::BinaryTrace bt;
    std::string err;
    EXPECT_FALSE(trace::readBinaryTrace(in, bt, err));
    EXPECT_NE(err.find("version"), std::string::npos) << err;
}

TEST(BinaryTrace, RejectsTruncatedRecords)
{
    trace::Event ev;
    ev.cycle = 42;
    std::ostringstream os(std::ios::binary);
    trace::writeBinaryTrace(os, {ev, ev}, "t", 0);
    std::string bytes = os.str();
    bytes.resize(bytes.size() - 1); // clip the final record

    std::istringstream in(bytes, std::ios::binary);
    trace::BinaryTrace bt;
    std::string err;
    EXPECT_FALSE(trace::readBinaryTrace(in, bt, err));
    EXPECT_NE(err.find("truncated"), std::string::npos) << err;
}

TEST(BinaryTrace, RejectsUnknownEventKind)
{
    trace::Event ev;
    std::ostringstream os(std::ios::binary);
    trace::writeBinaryTrace(os, {ev}, "k", 0);
    std::string bytes = os.str();
    // kind byte sits at record offset 38; the record starts after
    // the 28-byte header + 1-byte label.
    bytes[28 + 1 + 38] = static_cast<char>(0xee);

    std::istringstream in(bytes, std::ios::binary);
    trace::BinaryTrace bt;
    std::string err;
    EXPECT_FALSE(trace::readBinaryTrace(in, bt, err));
    EXPECT_NE(err.find("kind"), std::string::npos) << err;
}

TEST(BinaryTrace, RejectsImplausibleLabelLength)
{
    // A damaged header can claim any label length; allocating on its
    // say-so would turn a bad file into a bad_alloc. The reader
    // bounds the label outright.
    std::ostringstream os(std::ios::binary);
    trace::writeBinaryTrace(os, {}, "x", 0);
    std::string bytes = os.str();
    for (int i = 0; i < 4; ++i)
        bytes[24 + i] = static_cast<char>(0xff); // label_len field
    std::istringstream in(bytes, std::ios::binary);
    trace::BinaryTrace bt;
    std::string err;
    EXPECT_FALSE(trace::readBinaryTrace(in, bt, err));
    EXPECT_NE(err.find("label length"), std::string::npos) << err;
}

TEST(BinaryTrace, TruncatedLabelIsRejected)
{
    std::ostringstream os(std::ios::binary);
    trace::writeBinaryTrace(os, {}, "abcdef", 0);
    std::string bytes = os.str();
    bytes.resize(bytes.size() - 3); // clip inside the label
    std::istringstream in(bytes, std::ios::binary);
    trace::BinaryTrace bt;
    std::string err;
    EXPECT_FALSE(trace::readBinaryTrace(in, bt, err));
    EXPECT_NE(err.find("truncated label"), std::string::npos) << err;
}

TEST(BinaryTrace, LyingRecordCountIsRejectedWithoutAllocating)
{
    // count = 2^56 with zero records present: the reservation is
    // capped, so the reader fails on the missing first record
    // instead of attempting an exabyte allocation.
    std::ostringstream os(std::ios::binary);
    trace::writeBinaryTrace(os, {}, "c", 0);
    std::string bytes = os.str();
    bytes[8 + 7] = 0x01; // count field (offset 8, little-endian)
    std::istringstream in(bytes, std::ios::binary);
    trace::BinaryTrace bt;
    std::string err;
    EXPECT_FALSE(trace::readBinaryTrace(in, bt, err));
    EXPECT_NE(err.find("truncated at record 0"), std::string::npos)
        << err;
}

TEST(BinaryTrace, PartialHeaderIsRejected)
{
    std::istringstream in(std::string("WDTR\x01\x00", 6),
                          std::ios::binary);
    trace::BinaryTrace bt;
    std::string err;
    EXPECT_FALSE(trace::readBinaryTrace(in, bt, err));
    EXPECT_NE(err.find("header"), std::string::npos) << err;
}
