/**
 * @file
 * Unit tests: the text/JSON statistics reports.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/logging.hh"
#include "gpu/report.hh"
#include "workloads/workload.hh"

using namespace warped;

namespace {

struct ReportFixture : ::testing::Test
{
    ReportFixture() : cfg(arch::GpuConfig::testDefault())
    {
        setVerbose(false);
        auto w = workloads::makeScan(1);
        gpu::Gpu g(cfg, dmr::DmrConfig::paperDefault());
        result = std::make_unique<gpu::LaunchResult>(
            workloads::runVerified(*w, g));
    }

    arch::GpuConfig cfg;
    std::unique_ptr<gpu::LaunchResult> result;
};

} // namespace

TEST_F(ReportFixture, TextReportContainsKeyLines)
{
    const auto txt = report::textReport(*result, cfg);
    EXPECT_NE(txt.find("cycles:"), std::string::npos);
    EXPECT_NE(txt.find("coverage:"), std::string::npos);
    EXPECT_NE(txt.find("intra-warp:"), std::string::npos);
    EXPECT_NE(txt.find("comparator:"), std::string::npos);
    // No watchdog line on a clean run.
    EXPECT_EQ(txt.find("WATCHDOG"), std::string::npos);
}

TEST_F(ReportFixture, JsonIsWellFormedEnoughToRoundTripNumbers)
{
    const auto js = report::jsonReport(*result, cfg, "SCAN");
    // Structural sanity: balanced braces/brackets, expected keys.
    EXPECT_EQ(js.front(), '{');
    EXPECT_EQ(js.back(), '}');
    EXPECT_EQ(std::count(js.begin(), js.end(), '{'),
              std::count(js.begin(), js.end(), '}'));
    EXPECT_EQ(std::count(js.begin(), js.end(), '['),
              std::count(js.begin(), js.end(), ']'));
    EXPECT_NE(js.find("\"workload\":\"SCAN\""), std::string::npos);
    EXPECT_NE(js.find("\"coverage\":"), std::string::npos);

    // Numbers embedded verbatim.
    EXPECT_NE(js.find("\"cycles\":" + std::to_string(result->cycles)),
              std::string::npos);
    EXPECT_NE(js.find("\"verified\":" +
                      std::to_string(result->dmr.verifiedThreadInstrs)),
              std::string::npos);

    // The active histogram array has warpSize+1 entries.
    const auto pos = js.find("\"active_hist\":[");
    ASSERT_NE(pos, std::string::npos);
    const auto end = js.find(']', pos);
    const auto body = js.substr(pos, end - pos);
    EXPECT_EQ(std::count(body.begin(), body.end(), ','),
              cfg.warpSize);
}

TEST_F(ReportFixture, JsonEscapesNames)
{
    const auto js = report::jsonReport(*result, cfg, "we\"ird\\name");
    EXPECT_NE(js.find("we\\\"ird\\\\name"), std::string::npos);
}
