/**
 * @file
 * Differential fuzzing: randomly generated structured kernels (nested
 * if/else and bounded loops over random arithmetic) must produce
 * bit-identical global-memory images with Warped-DMR off and on, with
 * zero comparator mismatches, under every mapping/cluster variant.
 * This hammers the SIMT stack, the scheduler, and the DMR engine with
 * control-flow shapes no hand-written workload covers.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/logging.hh"
#include "gpu/gpu.hh"
#include "kernel_fuzzer.hh"

using namespace warped;
using testutil::KernelFuzzer;

namespace {

constexpr unsigned kThreads = 64;
constexpr unsigned kOutWords = kThreads;

std::vector<std::uint32_t>
runImage(const isa::Program &prog, const dmr::DmrConfig &d,
         unsigned cluster, std::uint64_t *errors = nullptr)
{
    auto cfg = arch::GpuConfig::testDefault();
    cfg.numSms = 2;
    cfg.lanesPerCluster = cluster;
    gpu::Gpu g(cfg, d);
    // The fuzz program bakes its output base at kOutBase; reserve it.
    const Addr out = g.allocator().alloc(kOutWords * 4);
    EXPECT_EQ(out, 256u); // deterministic allocator layout
    const auto r = g.launch(prog, 1, kThreads); // 2 warps + barriers
    if (errors)
        *errors = r.dmr.errorsDetected;
    std::vector<std::uint32_t> img(kOutWords);
    g.mem().copyOut(out, img.data(), img.size() * 4);
    return img;
}

} // namespace

class FuzzKernels : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(FuzzKernels, DmrConfigurationsAgreeBitExactly)
{
    setVerbose(false);
    KernelFuzzer fuzz(GetParam());
    const isa::Program prog = fuzz.generate(/*out base*/ 256);

    const auto baseline =
        runImage(prog, dmr::DmrConfig::off(), 4);

    struct Variant
    {
        dmr::DmrConfig d;
        unsigned cluster;
    };
    std::vector<Variant> variants;
    variants.push_back({dmr::DmrConfig::paperDefault(), 4});
    variants.push_back({dmr::DmrConfig::baselineMapping(), 4});
    variants.push_back({dmr::DmrConfig::baselineMapping(), 8});
    variants.push_back({dmr::DmrConfig::dmtr(), 4});
    {
        auto d = dmr::DmrConfig::paperDefault();
        d.replayQSize = 0;
        variants.push_back({d, 4});
    }
    {
        auto d = dmr::DmrConfig::paperDefault();
        d.samplingEpoch = 64;
        d.samplingActive = 16;
        variants.push_back({d, 4});
    }

    for (const auto &v : variants) {
        std::uint64_t errors = ~0ull;
        const auto img = runImage(prog, v.d, v.cluster, &errors);
        EXPECT_EQ(errors, 0u);
        EXPECT_EQ(img, baseline);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzKernels,
                         ::testing::Range<std::uint64_t>(1, 21));
