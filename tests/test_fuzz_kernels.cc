/**
 * @file
 * Differential fuzzing: randomly generated structured kernels (nested
 * if/else and bounded loops over random arithmetic) must produce
 * bit-identical global-memory images with Warped-DMR off and on, with
 * zero comparator mismatches, under every mapping/cluster variant.
 * This hammers the SIMT stack, the scheduler, and the DMR engine with
 * control-flow shapes no hand-written workload covers.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "gpu/gpu.hh"
#include "isa/kernel_builder.hh"

using namespace warped;
using isa::KernelBuilder;
using isa::Reg;

namespace {

constexpr unsigned kThreads = 64;
constexpr unsigned kOutWords = kThreads;

/**
 * Random structured-kernel generator. Produces terminating programs:
 * loops are counted with small immediate bounds, and all control flow
 * comes from the builder's structured helpers.
 */
class KernelFuzzer
{
  public:
    explicit KernelFuzzer(std::uint64_t seed) : rng_(seed) {}

    isa::Program
    generate(Addr out)
    {
        KernelBuilder kb("fuzz", 24);
        // r0..r5: value registers, r6: tid-derived, r7: scratch.
        for (unsigned i = 0; i < 6; ++i)
            vals_.push_back(kb.reg());
        const Reg tid = kb.reg();
        scratch_ = kb.reg();
        kb.s2r(tid, isa::SpecialReg::Gtid);
        for (unsigned i = 0; i < 6; ++i) {
            // Mix the thread id in so lanes diverge on data.
            kb.iaddi(vals_[i], tid,
                     static_cast<std::int32_t>(rng_.nextBelow(97)));
        }

        emitBlock(kb, /*depth*/ 0);

        // Fold everything into one output word per thread.
        const Reg acc = kb.reg(), addr = kb.reg();
        kb.movi(acc, 0);
        for (const Reg v : vals_)
            kb.xor_(acc, acc, v);
        kb.shli(addr, tid, 2);
        kb.iaddi(addr, addr, static_cast<std::int32_t>(out));
        kb.stg(addr, acc);
        return kb.build();
    }

  private:
    Reg
    pick()
    {
        return vals_[rng_.nextBelow(vals_.size())];
    }

    void
    emitArith(KernelBuilder &kb)
    {
        const Reg d = pick(), a = pick(), b = pick();
        switch (rng_.nextBelow(10)) {
          case 0: kb.iadd(d, a, b); break;
          case 1: kb.isub(d, a, b); break;
          case 2: kb.imul(d, a, b); break;
          case 3: kb.xor_(d, a, b); break;
          case 4: kb.and_(d, a, b); break;
          case 5: kb.imax(d, a, b); break;
          case 6:
            kb.shli(d, a, static_cast<std::int32_t>(
                              1 + rng_.nextBelow(4)));
            break;
          case 7:
            // Cross-lane traffic inside possibly-divergent regions:
            // the shuffle fallback semantics get a workout.
            kb.shflXor(d, a, static_cast<std::int32_t>(
                                 1u << rng_.nextBelow(5)));
            break;
          case 8:
            kb.shflDown(d, a, static_cast<std::int32_t>(
                                  1 + rng_.nextBelow(7)));
            break;
          default:
            kb.iaddi(d, a, static_cast<std::int32_t>(
                               rng_.nextBelow(31)) -
                               15);
            break;
        }
    }

    void
    emitBlock(KernelBuilder &kb, unsigned depth)
    {
        const unsigned stmts = 2 + rng_.nextBelow(4);
        for (unsigned i = 0; i < stmts; ++i) {
            const auto roll = rng_.nextBelow(10);
            if (depth == 0 && roll == 9) {
                // Block-wide barrier (only legal at full convergence).
                kb.bar();
                continue;
            }
            if (depth < 3 && roll < 2) {
                // Divergent if/else on a data-dependent predicate.
                const Reg p = scratch_;
                kb.andi(p, pick(), static_cast<std::int32_t>(
                                       1 + rng_.nextBelow(7)));
                if (rng_.nextBool()) {
                    kb.ifThenElse(
                        p, [&] { emitBlock(kb, depth + 1); },
                        [&] { emitBlock(kb, depth + 1); });
                } else {
                    kb.ifThen(p, [&] { emitBlock(kb, depth + 1); });
                }
            } else if (depth < 2 && roll == 2) {
                // Bounded counted loop (possibly divergent inside).
                const Reg i_reg = kb.reg();
                const Reg lim = kb.reg();
                kb.movi(lim, static_cast<std::int32_t>(
                                 1 + rng_.nextBelow(5)));
                kb.forCounter(i_reg, 0, lim, 1,
                              [&] { emitBlock(kb, depth + 1); });
            } else {
                emitArith(kb);
            }
        }
    }

    Rng rng_;
    std::vector<Reg> vals_;
    Reg scratch_;
};

std::vector<std::uint32_t>
runImage(const isa::Program &prog, const dmr::DmrConfig &d,
         unsigned cluster, std::uint64_t *errors = nullptr)
{
    auto cfg = arch::GpuConfig::testDefault();
    cfg.numSms = 2;
    cfg.lanesPerCluster = cluster;
    gpu::Gpu g(cfg, d);
    // The fuzz program bakes its output base at kOutBase; reserve it.
    const Addr out = g.allocator().alloc(kOutWords * 4);
    EXPECT_EQ(out, 256u); // deterministic allocator layout
    const auto r = g.launch(prog, 1, kThreads); // 2 warps + barriers
    if (errors)
        *errors = r.dmr.errorsDetected;
    std::vector<std::uint32_t> img(kOutWords);
    g.mem().copyOut(out, img.data(), img.size() * 4);
    return img;
}

} // namespace

class FuzzKernels : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(FuzzKernels, DmrConfigurationsAgreeBitExactly)
{
    setVerbose(false);
    KernelFuzzer fuzz(GetParam());
    const isa::Program prog = fuzz.generate(/*out base*/ 256);

    const auto baseline =
        runImage(prog, dmr::DmrConfig::off(), 4);

    struct Variant
    {
        dmr::DmrConfig d;
        unsigned cluster;
    };
    std::vector<Variant> variants;
    variants.push_back({dmr::DmrConfig::paperDefault(), 4});
    variants.push_back({dmr::DmrConfig::baselineMapping(), 4});
    variants.push_back({dmr::DmrConfig::baselineMapping(), 8});
    variants.push_back({dmr::DmrConfig::dmtr(), 4});
    {
        auto d = dmr::DmrConfig::paperDefault();
        d.replayQSize = 0;
        variants.push_back({d, 4});
    }
    {
        auto d = dmr::DmrConfig::paperDefault();
        d.samplingEpoch = 64;
        d.samplingActive = 16;
        variants.push_back({d, 4});
    }

    for (const auto &v : variants) {
        std::uint64_t errors = ~0ull;
        const auto img = runImage(prog, v.d, v.cluster, &errors);
        EXPECT_EQ(errors, 0u);
        EXPECT_EQ(img, baseline);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzKernels,
                         ::testing::Range<std::uint64_t>(1, 21));
