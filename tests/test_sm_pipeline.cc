/**
 * @file
 * Integration tests: the SM timing pipeline — issue discipline,
 * latency-induced RAW distances, barrier synchronization, block
 * residency and retirement.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "func/fault_hook.hh"
#include "isa/kernel_builder.hh"
#include "mem/memory.hh"
#include "sm/sm.hh"

using namespace warped;
using namespace warped::isa;

namespace {

struct SmFixture : ::testing::Test
{
    SmFixture() : cfg(arch::GpuConfig::testDefault()), global(1 << 16)
    {
        setVerbose(false);
    }

    /** Run the program on one SM until drained; return cycles. */
    Cycle
    runToCompletion(const Program &prog, unsigned blocks,
                    unsigned threads,
                    dmr::DmrConfig d = dmr::DmrConfig::off(),
                    sm::Sm **out = nullptr)
    {
        smInstance = std::make_unique<sm::Sm>(
            cfg, d, 0, prog, global,
            func::NullFaultHook::instance(), 1);
        auto &s = *smInstance;
        unsigned next = 0;
        Cycle cycle = 0;
        while (true) {
            if (next < blocks && s.canAcceptBlock(threads))
                s.assignBlock(next++, threads, blocks);
            if (next == blocks && s.drained())
                break;
            s.tick(cycle);
            ++cycle;
            if (cycle > 1000000)
                ADD_FAILURE() << "SM did not finish";
        }
        if (out)
            *out = &s;
        return cycle;
    }

    arch::GpuConfig cfg;
    mem::Memory global;
    std::unique_ptr<sm::Sm> smInstance;
};

} // namespace

TEST_F(SmFixture, SingleWarpStraightLine)
{
    KernelBuilder kb("k", 16);
    auto a = kb.reg(), b = kb.reg();
    kb.movi(a, 1);  // independent instructions issue back to back
    kb.movi(b, 2);
    const auto prog = kb.build();

    sm::Sm *s = nullptr;
    const auto cycles = runToCompletion(prog, 1, 32, dmr::DmrConfig::off(), &s);
    EXPECT_EQ(s->stats().issuedWarpInstrs, 3u); // 2 MOVI + EXIT
    EXPECT_EQ(s->stats().blocksRetired, 1u);
    // 3 issues plus pipeline fill; well under 20 cycles.
    EXPECT_LT(cycles, 20u);
}

TEST_F(SmFixture, DependentChainPaysLatency)
{
    // movi -> iadd(dep) -> iadd(dep): each dependent issue waits
    // rfStages + spLatency after its producer.
    KernelBuilder kb("k", 16);
    auto a = kb.reg();
    kb.movi(a, 1);
    kb.iaddi(a, a, 1);
    kb.iaddi(a, a, 1);
    const auto prog = kb.build();

    const auto cycles = runToCompletion(prog, 1, 32);
    const unsigned dep_lat = cfg.rfStages + cfg.spLatency;
    EXPECT_GE(cycles, 2 * dep_lat);
}

TEST_F(SmFixture, GlobalLoadLatencyDominates)
{
    KernelBuilder kb("k", 16);
    auto addr = kb.reg(), v = kb.reg(), w = kb.reg();
    kb.movi(addr, 0x100);
    kb.ldg(v, addr);
    kb.iaddi(w, v, 1); // depends on the load
    const auto prog = kb.build();

    const auto cycles = runToCompletion(prog, 1, 32);
    EXPECT_GE(cycles, Cycle{cfg.globalMemLatency});
}

TEST_F(SmFixture, MultipleWarpsHideLatency)
{
    // One warp of dependent loads vs. eight warps: per-warp time is
    // dominated by latency, so eight warps should NOT take 8x.
    KernelBuilder kb("k", 16);
    auto addr = kb.reg(), v = kb.reg();
    kb.movi(addr, 0x40);
    for (int i = 0; i < 4; ++i)
        kb.ldg(v, addr, i * 4); // independent loads
    const auto prog = kb.build();

    const auto one = runToCompletion(prog, 1, 32);
    const auto eight = runToCompletion(prog, 1, 256);
    EXPECT_LT(eight, 3 * one);
}

TEST_F(SmFixture, BarrierSynchronizesWarps)
{
    // Two warps: warp 0 stores a flag before the barrier; warp 1
    // reads it after. Without the barrier the read could race ahead.
    KernelBuilder kb("k", 16);
    auto tid = kb.reg(), p = kb.reg(), addr = kb.reg(), v = kb.reg(),
         zero = kb.reg();
    kb.s2r(tid, SpecialReg::Tid);
    kb.movi(zero, 0);
    kb.movi(addr, 0x80);
    kb.isetpEq(p, tid, zero);
    kb.ifThen(p, [&] {
        kb.movi(v, 42);
        kb.stg(addr, v);
    });
    kb.bar();
    kb.ldg(v, addr);
    kb.stg(addr, v, 4); // every thread republishes what it saw
    const auto prog = kb.build();

    runToCompletion(prog, 1, 64);
    EXPECT_EQ(global.readWord(0x84), 42u);
}

TEST_F(SmFixture, BlockRetirementFreesResidency)
{
    KernelBuilder kb("k", 16);
    auto a = kb.reg();
    kb.movi(a, 1);
    const auto prog = kb.build();

    // More blocks than can ever be resident at once.
    sm::Sm *s = nullptr;
    runToCompletion(prog, 24, 256, dmr::DmrConfig::off(), &s);
    EXPECT_EQ(s->stats().blocksRetired, 24u);
    EXPECT_FALSE(s->busy());
}

TEST_F(SmFixture, CapacityChecksRejectOverload)
{
    KernelBuilder kb("k", 16);
    auto a = kb.reg();
    kb.movi(a, 1);
    const auto prog = kb.build();

    sm::Sm s(cfg, dmr::DmrConfig::off(), 0, prog, global,
             func::NullFaultHook::instance(), 1);
    // 1024-thread SM: four 256-thread blocks fit, a fifth does not.
    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(s.canAcceptBlock(256));
        s.assignBlock(i, 256, 8);
    }
    EXPECT_FALSE(s.canAcceptBlock(256));
    EXPECT_FALSE(s.canAcceptBlock(32));
}

TEST_F(SmFixture, SharedMemoryLimitsResidency)
{
    KernelBuilder kb("k", 16);
    kb.shared(40 * 1024); // > half of the 64 KB shared memory
    auto a = kb.reg();
    kb.movi(a, 1);
    const auto prog = kb.build();

    sm::Sm s(cfg, dmr::DmrConfig::off(), 0, prog, global,
             func::NullFaultHook::instance(), 1);
    ASSERT_TRUE(s.canAcceptBlock(64));
    s.assignBlock(0, 64, 2);
    EXPECT_FALSE(s.canAcceptBlock(64)); // no room for a second copy
}

TEST_F(SmFixture, OneIssuePerCycleBound)
{
    KernelBuilder kb("k", 16);
    auto a = kb.reg(), b = kb.reg();
    kb.movi(a, 1);
    kb.movi(b, 2);
    kb.iadd(a, a, b);
    const auto prog = kb.build();

    sm::Sm *s = nullptr;
    const auto cycles =
        runToCompletion(prog, 4, 256, dmr::DmrConfig::off(), &s);
    EXPECT_LE(s->stats().busyCycles, cycles);
    EXPECT_EQ(s->stats().issuedWarpInstrs, s->stats().busyCycles);
}

TEST_F(SmFixture, DmrStallCyclesAreAccounted)
{
    // A same-type chain with a zero-entry queue forces eager stalls.
    KernelBuilder kb("k", 16);
    auto a = kb.reg(), b = kb.reg(), c = kb.reg();
    kb.movi(a, 1);
    kb.movi(b, 2);
    kb.movi(c, 3);
    kb.iadd(a, a, b);
    const auto prog = kb.build();

    auto d = dmr::DmrConfig::paperDefault();
    d.replayQSize = 0;
    sm::Sm *s = nullptr;
    runToCompletion(prog, 1, 32, d, &s);
    EXPECT_GT(s->stats().stallCyclesDmr, 0u);
    EXPECT_EQ(s->stats().stallCyclesDmr,
              s->scheme().stats().eagerStalls);
}
