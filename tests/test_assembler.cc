/**
 * @file
 * Unit and property tests: the text assembler. The headline property:
 * parse(disassemble(P)) reproduces P exactly for every built-in
 * workload kernel.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "isa/assembler.hh"
#include "isa/kernel_builder.hh"
#include "workloads/workload.hh"

using namespace warped;
using namespace warped::isa;

namespace {

bool
sameInstruction(const Instruction &a, const Instruction &b)
{
    return a.op == b.op && a.dst == b.dst && a.src[0] == b.src[0] &&
           a.src[1] == b.src[1] && a.src[2] == b.src[2] &&
           a.imm == b.imm && a.target == b.target &&
           a.reconv == b.reconv;
}

bool
samePrograms(const Program &a, const Program &b)
{
    if (a.size() != b.size() || a.numRegs() != b.numRegs() ||
        a.sharedBytes() != b.sharedBytes())
        return false;
    for (Pc pc = 0; pc < a.size(); ++pc) {
        if (!sameInstruction(a.at(pc), b.at(pc)))
            return false;
    }
    return true;
}

} // namespace

TEST(Assembler, HandWrittenProgram)
{
    const std::string text = R"(.kernel demo  (regs 4, shared 16B)
  0:	S2R r0, #6
  1:	MOVI r1, #-5
  2:	IADD r2, r0, r1
  3:	LDG r3, r2, [r2+8]
  4:	STS r2, r3, [r2-4]
  5:	BRZ r3 -> 7 (reconv 7)
  6:	SHFL_XOR r1, r2, #16
  7:	EXIT
)";
    const auto p = parseProgram(text);
    EXPECT_EQ(p.name(), "demo");
    EXPECT_EQ(p.numRegs(), 4u);
    EXPECT_EQ(p.sharedBytes(), 16u);
    ASSERT_EQ(p.size(), 8u);
    EXPECT_EQ(p.at(0).op, Opcode::S2R);
    EXPECT_EQ(p.at(1).imm, -5);
    EXPECT_EQ(p.at(3).imm, 8);
    EXPECT_EQ(p.at(4).imm, -4);
    EXPECT_EQ(p.at(5).target, 7u);
    EXPECT_EQ(p.at(5).reconv, 7u);
    EXPECT_EQ(p.at(6).imm, 16);
}

class AssemblerRoundTrip : public ::testing::TestWithParam<std::string>
{
};

TEST_P(AssemblerRoundTrip, ParseOfDisassembleIsIdentity)
{
    setVerbose(false);
    auto w = workloads::makeByName(GetParam());
    gpu::Gpu g(arch::GpuConfig::testDefault(), dmr::DmrConfig::off());
    w->setup(g);
    const auto &prog = w->program();
    const auto reparsed = parseProgram(prog.disassemble());
    EXPECT_TRUE(samePrograms(prog, reparsed)) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, AssemblerRoundTrip,
    ::testing::ValuesIn(workloads::allNames()),
    [](const auto &info) { return info.param; });

TEST(Assembler, ErrorsAreLineNumbered)
{
    setVerbose(false);
    EXPECT_THROW(parseProgram("garbage"), std::runtime_error);
    EXPECT_THROW(parseProgram(".kernel k (regs 4, shared 0B)\n"
                              "  0:\tFROBNICATE r1\n"),
                 std::runtime_error);
    // PC order enforced.
    EXPECT_THROW(parseProgram(".kernel k (regs 4, shared 0B)\n"
                              "  1:\tEXIT\n"),
                 std::runtime_error);
    // Missing header.
    EXPECT_THROW(parseProgram("  0:\tEXIT\n"), std::runtime_error);
    // Address base must match source 0.
    EXPECT_THROW(parseProgram(".kernel k (regs 4, shared 0B)\n"
                              "  0:\tLDG r0, r1, [r2+0]\n"
                              "  1:\tEXIT\n"),
                 std::runtime_error);
}

TEST(Assembler, ParsedProgramExecutes)
{
    setVerbose(false);
    // out[gtid] = gtid * 3, written as text.
    const std::string text = R"(.kernel triple  (regs 4, shared 0B)
  0:	S2R r0, #6
  1:	MOVI r1, #3
  2:	IMUL r2, r0, r1
  3:	SHLI r3, r0, #2
  4:	IADDI r3, r3, #256
  5:	STG r3, r2, [r3+0]
  6:	EXIT
)";
    const auto p = parseProgram(text);
    gpu::Gpu g(arch::GpuConfig::testDefault(), dmr::DmrConfig::off());
    const Addr out = g.allocator().alloc(64 * 4);
    ASSERT_EQ(out, 256u);
    g.launch(p, 1, 64);
    for (unsigned t = 0; t < 64; ++t)
        EXPECT_EQ(g.mem().readWord(out + 4 * t), 3 * t);
}
