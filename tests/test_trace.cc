/**
 * @file
 * Unit tests: the observability layer's building blocks — the ring
 * buffer, the per-launch event Recorder, the metrics registry, and
 * the exporters. Whole-pipeline trace semantics (pairing, golden
 * diffs) live in test_trace_golden.cc / test_trace_invariants.cc.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/logging.hh"
#include "trace/export.hh"
#include "trace/metrics.hh"
#include "trace/recorder.hh"
#include "trace/ring_buffer.hh"

using namespace warped;

namespace {

trace::Event
ev(Cycle cycle, trace::EventKind kind, std::uint64_t a0 = 0,
   std::uint64_t a1 = 0)
{
    trace::Event e;
    e.cycle = cycle;
    e.kind = kind;
    e.a0 = a0;
    e.a1 = a1;
    return e;
}

} // namespace

// ---------------------------------------------------------------- //
// RingBuffer
// ---------------------------------------------------------------- //

TEST(RingBuffer, UnboundedKeepsEverything)
{
    trace::RingBuffer<int> rb(0);
    EXPECT_TRUE(rb.unbounded());
    for (int i = 0; i < 1000; ++i)
        rb.push(i);
    EXPECT_EQ(rb.size(), 1000u);
    EXPECT_EQ(rb.dropped(), 0u);
    const auto snap = rb.snapshot();
    ASSERT_EQ(snap.size(), 1000u);
    EXPECT_EQ(snap.front(), 0);
    EXPECT_EQ(snap.back(), 999);
}

TEST(RingBuffer, BoundedKeepsMostRecentAndCountsDrops)
{
    trace::RingBuffer<int> rb(4);
    for (int i = 0; i < 10; ++i)
        rb.push(i);
    EXPECT_EQ(rb.size(), 4u);
    EXPECT_EQ(rb.dropped(), 6u);
    // The snapshot unwraps the ring: oldest surviving entry first.
    const auto snap = rb.snapshot();
    ASSERT_EQ(snap.size(), 4u);
    EXPECT_EQ(snap, (std::vector<int>{6, 7, 8, 9}));
}

TEST(RingBuffer, BoundedBelowCapacityDropsNothing)
{
    trace::RingBuffer<int> rb(8);
    rb.push(1);
    rb.push(2);
    EXPECT_EQ(rb.size(), 2u);
    EXPECT_EQ(rb.dropped(), 0u);
    EXPECT_EQ(rb.snapshot(), (std::vector<int>{1, 2}));
}

// ---------------------------------------------------------------- //
// Recorder
// ---------------------------------------------------------------- //

TEST(Recorder, AssignsPerLaneSequenceAndStampsSm)
{
    trace::Recorder rec(2, 0);
    rec.record(0, ev(5, trace::EventKind::Issue));
    rec.record(0, ev(6, trace::EventKind::Commit));
    rec.record(1, ev(5, trace::EventKind::Issue));

    const auto lane0 = rec.laneSnapshot(0);
    ASSERT_EQ(lane0.size(), 2u);
    EXPECT_EQ(lane0[0].seq, 0u);
    EXPECT_EQ(lane0[1].seq, 1u);
    EXPECT_EQ(lane0[0].sm, 0u);

    const auto lane1 = rec.laneSnapshot(1);
    ASSERT_EQ(lane1.size(), 1u);
    EXPECT_EQ(lane1[0].seq, 0u); // sequences are per-lane
    EXPECT_EQ(lane1[0].sm, 1u);
    EXPECT_EQ(rec.recorded(), 3u);
}

TEST(Recorder, MergedOrdersByCycleThenSmThenSeq)
{
    trace::Recorder rec(2, 0);
    // Interleave lanes and cycles out of global order; per-lane
    // streams are still cycle-monotonic as in a real launch.
    rec.record(1, ev(1, trace::EventKind::Issue, 101));
    rec.record(0, ev(1, trace::EventKind::Issue, 100));
    rec.record(0, ev(1, trace::EventKind::Commit, 100));
    rec.record(trace::kChipSm, ev(1, trace::EventKind::BlockDispatch));
    rec.record(0, ev(2, trace::EventKind::Issue, 102));

    const auto m = rec.merged();
    ASSERT_EQ(m.size(), 5u);
    // cycle 1: sm0 (seq 0, 1), then sm1, then the chip lane.
    EXPECT_EQ(m[0].sm, 0u);
    EXPECT_EQ(m[0].a0, 100u);
    EXPECT_EQ(m[1].sm, 0u);
    EXPECT_EQ(m[1].kind, trace::EventKind::Commit);
    EXPECT_EQ(m[2].sm, 1u);
    EXPECT_EQ(m[3].sm, trace::kChipSm);
    // cycle 2 last.
    EXPECT_EQ(m[4].cycle, 2u);
}

TEST(Recorder, BoundedLanesDropIndependently)
{
    trace::Recorder rec(2, 2);
    for (Cycle c = 0; c < 5; ++c)
        rec.record(0, ev(c, trace::EventKind::Issue));
    rec.record(1, ev(0, trace::EventKind::Issue));

    EXPECT_EQ(rec.laneDropped(0), 3u);
    EXPECT_EQ(rec.laneDropped(1), 0u);
    EXPECT_EQ(rec.dropped(), 3u);
    EXPECT_EQ(rec.recorded(), 6u); // kept + dropped
    // Sequence numbers survive the drops: the kept lane-0 events are
    // the last two emissions.
    const auto lane0 = rec.laneSnapshot(0);
    ASSERT_EQ(lane0.size(), 2u);
    EXPECT_EQ(lane0[0].seq, 3u);
    EXPECT_EQ(lane0[1].seq, 4u);
}

TEST(Recorder, OutOfRangeSmPanics)
{
    setVerbose(false);
    trace::Recorder rec(2, 0);
    EXPECT_THROW(rec.record(2, ev(0, trace::EventKind::Issue)),
                 std::logic_error);
}

TEST(Recorder, EventKindNamesAreStable)
{
    // Golden traces bake these strings in; renaming one is a
    // golden-breaking change and must be deliberate.
    using K = trace::EventKind;
    EXPECT_STREQ(trace::eventKindName(K::Issue), "issue");
    EXPECT_STREQ(trace::eventKindName(K::Commit), "commit");
    EXPECT_STREQ(trace::eventKindName(K::IntraVerify), "intra_verify");
    EXPECT_STREQ(trace::eventKindName(K::InterVerify), "inter_verify");
    EXPECT_STREQ(trace::eventKindName(K::RfuForward), "rfu_forward");
    EXPECT_STREQ(trace::eventKindName(K::ReplayPush), "replay_push");
    EXPECT_STREQ(trace::eventKindName(K::ReplayPop), "replay_pop");
    EXPECT_STREQ(trace::eventKindName(K::ReplayOverflow),
                 "replay_overflow");
    EXPECT_STREQ(trace::eventKindName(K::RawStall), "raw_stall");
    EXPECT_STREQ(trace::eventKindName(K::IdleDrain), "idle_drain");
    EXPECT_STREQ(trace::eventKindName(K::ErrorDetected),
                 "error_detected");
    EXPECT_STREQ(trace::eventKindName(K::BlockDispatch),
                 "block_dispatch");
    EXPECT_STREQ(trace::eventKindName(K::LaunchEnd), "launch_end");
}

// ---------------------------------------------------------------- //
// MetricsRegistry
// ---------------------------------------------------------------- //

TEST(MetricsRegistry, CountersAndGaugesCreateAtZero)
{
    trace::MetricsRegistry m;
    EXPECT_FALSE(m.hasCounter("a"));
    EXPECT_EQ(m.counterValue("a"), 0u);
    m.counter("a") += 3;
    EXPECT_TRUE(m.hasCounter("a"));
    EXPECT_EQ(m.counterValue("a"), 3u);

    EXPECT_FALSE(m.hasGauge("g"));
    m.gauge("g") = 0.5;
    EXPECT_TRUE(m.hasGauge("g"));
    EXPECT_DOUBLE_EQ(m.gaugeValue("g"), 0.5);
}

TEST(MetricsRegistry, MergeAddsCountersAndMaxesGauges)
{
    trace::MetricsRegistry a, b;
    a.counter("n") = 2;
    a.counter("onlyA") = 1;
    a.gauge("peak") = 0.3;
    b.counter("n") = 5;
    b.counter("onlyB") = 7;
    b.gauge("peak") = 0.9;
    b.gauge("onlyB") = 1.5;

    a.merge(b);
    EXPECT_EQ(a.counterValue("n"), 7u);
    EXPECT_EQ(a.counterValue("onlyA"), 1u);
    EXPECT_EQ(a.counterValue("onlyB"), 7u);
    EXPECT_DOUBLE_EQ(a.gaugeValue("peak"), 0.9);
    EXPECT_DOUBLE_EQ(a.gaugeValue("onlyB"), 1.5);
}

TEST(MetricsRegistry, JsonIsSortedAndFixedPrecision)
{
    trace::MetricsRegistry m;
    m.counter("z.count") = 42;
    m.counter("a.count") = 1;
    m.gauge("m.cover") = 0.96425;

    // Counters render first (sorted), then gauges (sorted) — a
    // stable total order the golden suite can diff byte-for-byte.
    const std::string json = m.toJson();
    const auto a = json.find("\"a.count\": 1");
    const auto z = json.find("\"z.count\": 42");
    const auto cov = json.find("\"m.cover\": 0.964250");
    EXPECT_NE(a, std::string::npos);
    EXPECT_NE(z, std::string::npos);
    EXPECT_NE(cov, std::string::npos);
    EXPECT_LT(a, z);
    EXPECT_LT(z, cov);
}

// ---------------------------------------------------------------- //
// Exporters
// ---------------------------------------------------------------- //

TEST(Export, ChromeTraceHasMetadataAndOneLinePerEvent)
{
    std::vector<trace::Event> events;
    auto e = ev(3, trace::EventKind::Issue, 7, 32);
    e.sm = 1;
    e.warp = 2;
    e.pc = 4;
    e.unit = 0; // SP
    events.push_back(e);
    auto c = ev(9, trace::EventKind::BlockDispatch, 0, 1);
    c.sm = trace::kChipSm;
    events.push_back(c);

    const std::string json = trace::chromeTraceJson(events, "unit");
    EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
    EXPECT_NE(json.find("\"timeUnit\": \"core-cycles\""),
              std::string::npos);
    // One process_name metadata record per distinct SM id.
    EXPECT_NE(json.find("\"process_name\""), std::string::npos);
    EXPECT_NE(json.find("\"unit sm\""), std::string::npos);
    EXPECT_NE(json.find("\"unit chip\""), std::string::npos);
    // The issue event with its kind-specific args.
    EXPECT_NE(json.find("\"name\":\"issue\""), std::string::npos);
    EXPECT_NE(json.find("\"ts\":3"), std::string::npos);
    EXPECT_NE(json.find("\"unit\":\"SP\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"block_dispatch\""),
              std::string::npos);

    // Stream and string renderings agree.
    std::ostringstream os;
    trace::writeChromeTrace(os, events, "unit");
    EXPECT_EQ(os.str(), json);
}

TEST(Export, MetricsJsonMatchesRegistryRendering)
{
    trace::MetricsRegistry m;
    m.counter("x") = 9;
    std::ostringstream os;
    trace::writeMetricsJson(os, m);
    EXPECT_EQ(os.str(), m.toJson());
}
