/**
 * @file
 * Golden-trace regression suite: three representative Table-4
 * workloads (one graph, one primitive, one dense-linear-algebra) run
 * at miniature scale with event tracing on, and both exporter
 * renderings — the Chrome trace_event JSON and the flat metrics JSON
 * — must match the checked-in goldens byte for byte.
 *
 * Any change to issue order, DMR scheduling, ReplayQ behaviour, the
 * event vocabulary, or the exporters shows up here as a diff. To
 * accept an intentional change, regenerate with
 *
 *   tools/update_golden_traces.sh        (or)
 *   WARPED_UPDATE_GOLDEN=1 ./test_trace_golden
 *
 * and review the golden diff in the commit. On mismatch the actual
 * renderings are written to $WARPED_TRACE_ARTIFACT_DIR (default
 * ./trace-artifacts) so CI can upload them.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "common/logging.hh"
#include "gpu/gpu.hh"
#include "trace/export.hh"
#include "workloads/workload.hh"

using namespace warped;

#ifndef WARPED_GOLDEN_DIR
#error "WARPED_GOLDEN_DIR must point at tests/golden"
#endif

namespace {

struct GoldenCase
{
    const char *label;
    std::unique_ptr<workloads::Workload> (*make)();
};

// Miniature instances: small enough that the goldens stay reviewable
// text files, large enough to exercise divergence, barriers, both DMR
// modes, and the ReplayQ.
const GoldenCase kCases[] = {
    {"bfs", [] { return workloads::makeBfs(1); }},
    {"scan", [] { return workloads::makeScan(1); }},
    {"matrixmul", [] { return workloads::makeMatrixMul(32); }},
};

/**
 * Per-lane ring capacity for the golden runs. Even one-block
 * workloads emit hundreds of thousands of events; the goldens pin
 * the *tail* of each lane (the last kGoldenRing events per SM) while
 * the metrics golden pins the whole run — including trace.recorded
 * and trace.dropped, so total event volume is regression-checked
 * even though only the tail is stored.
 */
constexpr unsigned kGoldenRing = 128;

bool
updateMode()
{
    const char *v = std::getenv("WARPED_UPDATE_GOLDEN");
    return v && *v;
}

std::filesystem::path
artifactDir()
{
    const char *v = std::getenv("WARPED_TRACE_ARTIFACT_DIR");
    return v && *v ? v : "./trace-artifacts";
}

std::string
readFile(const std::filesystem::path &p)
{
    std::ifstream f(p, std::ios::binary);
    if (!f)
        return {};
    std::ostringstream os;
    os << f.rdbuf();
    return os.str();
}

void
writeFile(const std::filesystem::path &p, const std::string &content)
{
    std::filesystem::create_directories(p.parent_path());
    std::ofstream f(p, std::ios::binary);
    ASSERT_TRUE(f) << "cannot write " << p;
    f << content;
}

/** 1-based line number of the first differing line, for diagnostics. */
std::size_t
firstDiffLine(const std::string &a, const std::string &b)
{
    std::istringstream sa(a), sb(b);
    std::string la, lb;
    std::size_t line = 0;
    for (;;) {
        ++line;
        const bool ga = static_cast<bool>(std::getline(sa, la));
        const bool gb = static_cast<bool>(std::getline(sb, lb));
        if (!ga && !gb)
            return 0; // identical
        if (ga != gb || la != lb)
            return line;
    }
}

void
checkAgainstGolden(const std::string &label, const std::string &kind,
                   const std::string &actual)
{
    const std::filesystem::path golden =
        std::filesystem::path(WARPED_GOLDEN_DIR) /
        (label + "." + kind + ".json");

    if (updateMode()) {
        writeFile(golden, actual);
        std::printf("[ updated ] %s\n", golden.string().c_str());
        return;
    }

    const std::string expected = readFile(golden);
    ASSERT_FALSE(expected.empty())
        << golden << " missing or empty; run "
        << "tools/update_golden_traces.sh to (re)generate";

    if (actual == expected)
        return;

    const auto dir = artifactDir();
    const auto artifact = dir / (label + "." + kind + ".actual.json");
    writeFile(artifact, actual);
    ADD_FAILURE() << label << " " << kind
                  << " diverges from golden at line "
                  << firstDiffLine(actual, expected) << "\n  golden:   "
                  << golden << "\n  actual:   " << artifact
                  << "\nIf the change is intentional, regenerate via "
                     "tools/update_golden_traces.sh and commit the "
                     "golden diff.";
}

} // namespace

class GoldenTrace : public ::testing::TestWithParam<GoldenCase>
{
};

TEST_P(GoldenTrace, ExportersMatchGoldens)
{
    setVerbose(false);
    const auto &c = GetParam();

    auto cfg = arch::GpuConfig::testDefault();
    cfg.numSms = 2;
    cfg.traceEvents = true;
    cfg.traceRingCapacity = kGoldenRing;

    auto w = c.make();
    gpu::Gpu g(cfg, dmr::DmrConfig::paperDefault());
    const auto r = workloads::runVerified(*w, g);

    checkAgainstGolden(c.label, "trace",
                       trace::chromeTraceJson(r.events, w->name()));
    checkAgainstGolden(c.label, "metrics", r.metrics.toJson());
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, GoldenTrace, ::testing::ValuesIn(kCases),
    [](const ::testing::TestParamInfo<GoldenCase> &info) {
        return std::string(info.param.label);
    });
