/**
 * @file
 * Tests for the extensions beyond the paper's evaluated design:
 * sampling DMR (duty-cycled protection) and error arbitration
 * (third-execution majority vote).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "dmr/dmr_engine.hh"
#include "fault/fault_injector.hh"
#include "mem/memory.hh"
#include "workloads/workload.hh"

using namespace warped;
using dmr::DmrConfig;
using dmr::ErrorVerdict;

TEST(SamplingConfig, ActiveWindowArithmetic)
{
    DmrConfig d = DmrConfig::paperDefault();
    EXPECT_TRUE(d.activeAt(0));
    EXPECT_TRUE(d.activeAt(123456));

    d.samplingEpoch = 100;
    d.samplingActive = 25;
    EXPECT_TRUE(d.activeAt(0));
    EXPECT_TRUE(d.activeAt(24));
    EXPECT_FALSE(d.activeAt(25));
    EXPECT_FALSE(d.activeAt(99));
    EXPECT_TRUE(d.activeAt(100));

    d.enabled = false;
    EXPECT_FALSE(d.activeAt(0));
}

TEST(SamplingDmr, CoverageTracksDutyCycle)
{
    setVerbose(false);
    const auto cfg = arch::GpuConfig::testDefault();

    auto run = [&](Cycle epoch, Cycle active) {
        auto d = DmrConfig::paperDefault();
        d.samplingEpoch = epoch;
        d.samplingActive = active;
        auto w = workloads::makeSha(2); // fully utilized, steady issue
        gpu::Gpu g(cfg, d);
        return workloads::runVerified(*w, g);
    };

    const auto full = run(0, 0);
    const auto half = run(200, 100);
    const auto tenth = run(200, 20);

    EXPECT_GT(full.coverage(), 0.99);
    // Coverage degrades roughly with the duty cycle.
    EXPECT_LT(half.coverage(), 0.75);
    EXPECT_GT(half.coverage(), 0.25);
    EXPECT_LT(tenth.coverage(), half.coverage());
    // The unprotected slots are accounted.
    EXPECT_GT(half.dmr.sampledOutThreadInstrs, 0u);
    EXPECT_EQ(half.dmr.verifiedThreadInstrs +
                  half.dmr.sampledOutThreadInstrs,
              half.dmr.verifiableThreadInstrs);
}

TEST(SamplingDmr, ReducesOverhead)
{
    setVerbose(false);
    const auto cfg = arch::GpuConfig::testDefault();

    auto cycles = [&](Cycle epoch, Cycle active) {
        auto d = DmrConfig::paperDefault();
        d.samplingEpoch = epoch;
        d.samplingActive = active;
        auto w = workloads::makeMatrixMul(64);
        gpu::Gpu g(cfg, d);
        return workloads::runVerified(*w, g).cycles;
    };

    const auto always = cycles(0, 0);
    const auto tenth = cycles(1000, 100);
    EXPECT_LT(double(tenth), double(always));
}

namespace {

/** Permanent corruption of one physical lane (bit 2). */
struct LaneFault final : func::FaultHook
{
    unsigned lane;
    explicit LaneFault(unsigned l) : lane(l) {}
    RegValue
    apply(RegValue pure, const func::FaultCtx &ctx) override
    {
        return ctx.lane == lane ? (pure ^ 4u) : pure;
    }
};

func::ExecRecord
fullRecord(const arch::GpuConfig &gpu_cfg, func::FaultHook &hook,
           unsigned sm_id = 0)
{
    // Build a record whose primary results went through the hook at
    // the linear-mapped lanes (like Executor::step would).
    func::ExecRecord r;
    r.instr.op = isa::Opcode::IADD;
    r.instr.dst = isa::Reg{1};
    r.instr.src[0] = isa::Reg{2};
    r.active = LaneMask::full(gpu_cfg.warpSize);
    for (unsigned s = 0; s < gpu_cfg.warpSize; ++s) {
        r.operands[0][s] = 100 + s;
        r.operands[1][s] = 1;
        const RegValue pure = func::Executor::computeLane(
            r.instr, {r.operands[0][s], r.operands[1][s], 0},
            r.laneInfo[s]);
        func::FaultCtx ctx;
        ctx.sm = sm_id;
        ctx.lane = s; // linear mapping
        ctx.unit = isa::UnitType::SP;
        r.results[s] = hook.apply(pure, ctx);
    }
    return r;
}

} // namespace

TEST(Arbitration, BlamesThePrimaryLane)
{
    setVerbose(false);
    auto cfg = arch::GpuConfig::testDefault();
    mem::Memory global(1024);
    LaneFault hook(/*lane*/ 5);
    func::Executor exec(cfg, 0, global, hook);

    auto d = DmrConfig::paperDefault();
    d.mapping = dmr::MappingPolicy::Linear;
    d.arbitrateErrors = true;
    dmr::DmrEngine e(cfg, d, exec, 1);

    e.onIssue(fullRecord(cfg, hook), 0);
    e.drainAll(1);

    const auto &s = e.stats();
    // A single faulty lane trips the comparator twice: once as the
    // primary of its own slot (slot 5) and once as the *checker* of
    // its shuffle-neighbor (slot 4 verifies on lane 5). Arbitration
    // tells the two cases apart.
    ASSERT_EQ(s.errorsDetected, 2u);
    EXPECT_EQ(s.arbitrations, 2u);
    EXPECT_EQ(s.arbPrimaryBad, 1u);
    EXPECT_EQ(s.arbCheckerBad, 1u);
    ASSERT_EQ(s.errorLog.size(), 2u);
    EXPECT_EQ(s.errorLog[0].slot, 4u);
    EXPECT_EQ(s.errorLog[0].verdict, ErrorVerdict::CheckerBad);
    EXPECT_EQ(s.errorLog[1].slot, 5u);
    EXPECT_EQ(s.errorLog[1].verdict, ErrorVerdict::PrimaryBad);
    EXPECT_EQ(s.errorLog[1].primaryLane, 5u);
}

TEST(Arbitration, BlamesTheCheckerLane)
{
    setVerbose(false);
    auto cfg = arch::GpuConfig::testDefault();
    mem::Memory global(1024);
    // Fault on lane 6: primary (lane 5) is clean; the checker of
    // lane 5 is lane 6 (shuffle +1) and corrupts its verification;
    // the arbiter (lane 7) sides with the primary.
    LaneFault hook(/*lane*/ 6);
    func::Executor exec(cfg, 0, global, hook);

    auto d = DmrConfig::paperDefault();
    d.mapping = dmr::MappingPolicy::Linear;
    d.arbitrateErrors = true;
    dmr::DmrEngine e(cfg, d, exec, 1);

    e.onIssue(fullRecord(cfg, hook), 0);
    e.drainAll(1);

    const auto &s = e.stats();
    ASSERT_GE(s.errorsDetected, 1u);
    // Exactly two mismatches arise: slot 5's checker is faulty lane 6
    // (CheckerBad), and slot 6's own primary ran on faulty lane 6
    // (PrimaryBad, verified on clean lane 7).
    EXPECT_EQ(s.arbCheckerBad, 1u);
    EXPECT_EQ(s.arbPrimaryBad, 1u);
    EXPECT_EQ(s.arbInconclusive, 0u);
}

TEST(Arbitration, OffByDefault)
{
    setVerbose(false);
    auto cfg = arch::GpuConfig::testDefault();
    mem::Memory global(1024);
    LaneFault hook(3);
    func::Executor exec(cfg, 0, global, hook);
    dmr::DmrEngine e(cfg, DmrConfig::paperDefault(), exec, 1);
    auto r = fullRecord(cfg, hook);
    e.onIssue(r, 0);
    e.drainAll(1);
    EXPECT_GE(e.stats().errorsDetected, 1u);
    EXPECT_EQ(e.stats().arbitrations, 0u);
    EXPECT_EQ(e.stats().errorLog[0].verdict, ErrorVerdict::None);
}

TEST(DualScheduler, SpeedsBaselineAndShrinksDmrHeadroom)
{
    setVerbose(false);
    auto run = [](unsigned scheds, bool protect) {
        auto cfg = arch::GpuConfig::testDefault();
        cfg.numSchedulers = scheds;
        auto w = workloads::makeMatrixMul(64);
        gpu::Gpu g(cfg, protect ? DmrConfig::paperDefault()
                                : DmrConfig::off());
        return workloads::runVerified(*w, g).cycles;
    };
    const double b1 = double(run(1, false));
    const double b2 = double(run(2, false));
    const double p1 = double(run(1, true));
    const double p2 = double(run(2, true));
    // Dual issue helps the unprotected machine...
    EXPECT_LT(b2, 0.95 * b1);
    // ...and Warped-DMR's relative overhead does not shrink (the
    // paper's Sec 2.2 caveat: fewer idle slots to exploit).
    EXPECT_GE(p2 / b2, (p1 / b1) * 0.98);
}

TEST(DualScheduler, FunctionalResultsUnchanged)
{
    setVerbose(false);
    for (const char *name : {"SCAN", "BitonicSort", "CUFFT"}) {
        auto cfg = arch::GpuConfig::testDefault();
        cfg.numSchedulers = 2;
        auto w = workloads::makeByName(name);
        gpu::Gpu g(cfg, DmrConfig::paperDefault());
        w->setup(g);
        auto r = g.launch(w->program(), w->gridBlocks(),
                          w->blockThreads());
        EXPECT_TRUE(w->verify(g)) << name;
        EXPECT_EQ(r.dmr.errorsDetected, 0u) << name;
    }
}

TEST(DmrConfigValidate, RejectsBadKnobs)
{
    setVerbose(false);
    auto check_throws = [](auto mutate) {
        auto d = DmrConfig::paperDefault();
        mutate(d);
        EXPECT_THROW(d.validate(), std::runtime_error);
    };
    check_throws([](DmrConfig &d) { d.replayQSize = 4096; });
    check_throws([](DmrConfig &d) { d.samplingActive = 10; });
    check_throws([](DmrConfig &d) {
        d.samplingEpoch = 10;
        d.samplingActive = 20;
    });
    DmrConfig::paperDefault().validate(); // clean
    DmrConfig::off().validate();
    DmrConfig::dmtr().validate();
}

TEST(DequeuePolicy, OldestFirstIsDeterministicFifo)
{
    setVerbose(false);
    auto cycles = [](dmr::DequeuePolicy pol) {
        auto d = DmrConfig::paperDefault();
        d.dequeuePolicy = pol;
        auto w = workloads::makeMatrixMul(64);
        gpu::Gpu g(arch::GpuConfig::testDefault(), d);
        return workloads::runVerified(*w, g).cycles;
    };
    // Both policies must run correctly; oldest-first is reproducible
    // without consuming RNG state.
    const auto a = cycles(dmr::DequeuePolicy::OldestFirst);
    const auto b = cycles(dmr::DequeuePolicy::OldestFirst);
    EXPECT_EQ(a, b);
    const auto r = cycles(dmr::DequeuePolicy::Random);
    EXPECT_GT(r, 0u);
}
