/**
 * @file
 * The memory-cell fault plane and the banked DRAM timing model: what
 * a campaign's memory-fault runs actually exercise. Covers the
 * per-codec read filtering (None propagates, SECDED corrects/flags,
 * chipkill repairs whole-symbol bursts), the strike/write-ordering
 * semantics, byte and bulk-copy interposition through mem::Memory,
 * plane reuse via reset(), open-row bank timing, and the
 * RandomFaultHook reset-replay guarantee checkpoint resume relies on.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "arch/gpu_config.hh"
#include "common/logging.hh"
#include "fault/fault_injector.hh"
#include "mem/mem_fault.hh"
#include "mem/memory.hh"
#include "mem/memory_system.hh"

using namespace warped;
using mem::MemFaultKind;
using mem::MemFaultPlane;

namespace {

/// A Memory with one golden word at kAddr and a plane attached.
constexpr Addr kAddr = 8;
constexpr RegValue kGolden = 0xcafebabe;

struct PlaneRig
{
    mem::Memory m{64};
    MemFaultPlane plane;

    explicit PlaneRig(arch::EccKind ecc) : plane(ecc)
    {
        m.writeWord(kAddr, kGolden);
        m.attachFaultPlane(&plane);
    }
};

} // namespace

TEST(MemFaultPlane, SlugsAreStable)
{
    EXPECT_STREQ(memFaultKindSlug(MemFaultKind::Bit), "membit");
    EXPECT_STREQ(memFaultKindSlug(MemFaultKind::DoubleBit),
                 "memdouble");
    EXPECT_STREQ(memFaultKindSlug(MemFaultKind::ChipBurst), "memchip");
}

TEST(MemFaultPlane, ReadsBeforeTheStrikeAreCleanAndUncounted)
{
    PlaneRig r(arch::EccKind::None);
    r.plane.inject(kAddr, MemFaultKind::Bit, 5, /*at*/ 10);
    r.plane.setNow(9);
    EXPECT_EQ(r.m.readWord(kAddr), kGolden);
    EXPECT_EQ(r.plane.consumedReads(), 0u);
}

TEST(MemFaultPlane, NoEccPropagatesTheCorruptedWord)
{
    PlaneRig r(arch::EccKind::None);
    r.plane.inject(kAddr, MemFaultKind::Bit, 5, 10);
    r.plane.setNow(10);
    EXPECT_EQ(r.m.readWord(kAddr), kGolden ^ (1u << 5));
    EXPECT_EQ(r.plane.consumedReads(), 1u);
    EXPECT_EQ(r.plane.corrected(), 0u);
    EXPECT_EQ(r.plane.uncorrectable(), 0u);
    // Other words are untouched.
    EXPECT_EQ(r.m.readWord(kAddr + 4), 0u);
}

TEST(MemFaultPlane, SecdedCorrectsAndScrubsASingleBit)
{
    PlaneRig r(arch::EccKind::Secded);
    r.plane.inject(kAddr, MemFaultKind::Bit, 17, 10);
    r.plane.setNow(12);
    EXPECT_EQ(r.m.readWord(kAddr), kGolden);
    EXPECT_EQ(r.plane.corrected(), 1u);
    // The corrected read scrubbed the cell: the next read is clean
    // and no longer even consumes the (disarmed) upset.
    EXPECT_EQ(r.m.readWord(kAddr), kGolden);
    EXPECT_EQ(r.plane.consumedReads(), 1u);
    EXPECT_EQ(r.plane.corrected(), 1u);
}

TEST(MemFaultPlane, SecdedFlagsADoubleBitAsUncorrectable)
{
    PlaneRig r(arch::EccKind::Secded);
    r.plane.inject(kAddr, MemFaultKind::DoubleBit, 3, 10);
    r.plane.setNow(10);
    (void)r.m.readWord(kAddr);
    EXPECT_EQ(r.plane.uncorrectable(), 1u);
    EXPECT_EQ(r.plane.corrected(), 0u);
    // Uncorrectable is sticky machine-check state: the upset stays
    // in the cell (no scrub happened) and keeps flagging.
    (void)r.m.readWord(kAddr);
    EXPECT_EQ(r.plane.uncorrectable(), 2u);
}

TEST(MemFaultPlane, SecdedSilentlyAliasesAnAlignedChipBurst)
{
    // The motivating gap: a 4-bit aligned burst flips data bits
    // 12..15, whose SECDED positions XOR to a zero syndrome with even
    // parity — the codec sees a clean word and hands corrupted data
    // to the pipeline (candidate SDC, neither corrected nor flagged).
    PlaneRig r(arch::EccKind::Secded);
    r.plane.inject(kAddr, MemFaultKind::ChipBurst, 13, 10);
    r.plane.setNow(10);
    EXPECT_EQ(r.m.readWord(kAddr), kGolden ^ (0xfu << 12));
    EXPECT_EQ(r.plane.consumedReads(), 1u);
    EXPECT_EQ(r.plane.corrected(), 0u);
    EXPECT_EQ(r.plane.uncorrectable(), 0u);
}

TEST(MemFaultPlane, ChipkillRepairsTheSameBurstExactly)
{
    PlaneRig r(arch::EccKind::Chipkill);
    r.plane.inject(kAddr, MemFaultKind::ChipBurst, 13, 10);
    r.plane.setNow(10);
    EXPECT_EQ(r.m.readWord(kAddr), kGolden);
    EXPECT_EQ(r.plane.corrected(), 1u);
    EXPECT_EQ(r.plane.uncorrectable(), 0u);
}

TEST(MemFaultPlane, ChipkillCorrectsAPairInsideOneSymbol)
{
    // Bits 0 and 1 share symbol 0: still a single-symbol error.
    PlaneRig r(arch::EccKind::Chipkill);
    r.plane.inject(kAddr, MemFaultKind::DoubleBit, 0, 10);
    r.plane.setNow(10);
    EXPECT_EQ(r.m.readWord(kAddr), kGolden);
    EXPECT_EQ(r.plane.corrected(), 1u);
}

TEST(MemFaultPlane, ChipkillFlagsAPairAcrossSymbols)
{
    // Bits 3 and 4 straddle symbols 0 and 1: two corrupted symbols
    // exceed the distance-4 correction radius.
    PlaneRig r(arch::EccKind::Chipkill);
    r.plane.inject(kAddr, MemFaultKind::DoubleBit, 3, 10);
    r.plane.setNow(10);
    (void)r.m.readWord(kAddr);
    EXPECT_EQ(r.plane.uncorrectable(), 1u);
    EXPECT_EQ(r.plane.corrected(), 0u);
}

TEST(MemFaultPlane, WriteAtOrAfterStrikeClearsTheUpset)
{
    PlaneRig r(arch::EccKind::None);
    r.plane.inject(kAddr, MemFaultKind::Bit, 5, 10);
    r.plane.setNow(11);
    r.m.writeWord(kAddr, 0x1234);
    EXPECT_EQ(r.m.readWord(kAddr), 0x1234u);
    EXPECT_EQ(r.plane.consumedReads(), 0u);
}

TEST(MemFaultPlane, WriteBeforeStrikeLeavesThePendingUpsetArmed)
{
    // The cell flips *later*: a pre-strike store re-encodes a clean
    // word, then the strike corrupts the new contents.
    PlaneRig r(arch::EccKind::None);
    r.plane.inject(kAddr, MemFaultKind::Bit, 5, 10);
    r.plane.setNow(4);
    r.m.writeWord(kAddr, 0x1234);
    r.plane.setNow(10);
    EXPECT_EQ(r.m.readWord(kAddr), 0x1234u ^ (1u << 5));
}

TEST(MemFaultPlane, UnrelatedWritesDoNotDisarm)
{
    PlaneRig r(arch::EccKind::None);
    r.plane.inject(kAddr, MemFaultKind::Bit, 5, 10);
    r.plane.setNow(12);
    r.m.writeWord(kAddr + 4, 7);
    r.m.writeByte(kAddr - 1, 9);
    EXPECT_EQ(r.m.readWord(kAddr), kGolden ^ (1u << 5));
}

TEST(MemFaultPlane, ByteReadsSeeTheCorruptedLane)
{
    PlaneRig r(arch::EccKind::None);
    r.plane.inject(kAddr, MemFaultKind::Bit, 13, 10); // byte 1, bit 5
    r.plane.setNow(10);
    EXPECT_EQ(r.m.readByte(kAddr + 0), kGolden & 0xff);
    EXPECT_EQ(r.m.readByte(kAddr + 1),
              ((kGolden >> 8) & 0xff) ^ (1u << 5));
    EXPECT_EQ(r.m.readByte(kAddr + 2), (kGolden >> 16) & 0xff);
    // SECDED sees the same byte read and corrects it.
    PlaneRig s(arch::EccKind::Secded);
    s.plane.inject(kAddr, MemFaultKind::Bit, 13, 10);
    s.plane.setNow(10);
    EXPECT_EQ(s.m.readByte(kAddr + 1), (kGolden >> 8) & 0xff);
    EXPECT_EQ(s.plane.corrected(), 1u);
}

TEST(MemFaultPlane, CopyOutIsPatchedLikeDeviceLoads)
{
    PlaneRig r(arch::EccKind::None);
    r.plane.inject(kAddr, MemFaultKind::Bit, 5, 10);
    r.plane.setNow(10);
    // A bulk readback spanning the upset word, at unaligned offsets.
    std::uint8_t buf[16];
    r.m.copyOut(kAddr - 2, buf, sizeof buf);
    RegValue w = 0;
    std::memcpy(&w, buf + 2, 4);
    EXPECT_EQ(w, kGolden ^ (1u << 5));
    EXPECT_EQ(buf[0], 0u);
    EXPECT_EQ(r.plane.consumedReads(), 1u);
    // Under SECDED the same readback is transparently repaired.
    PlaneRig s(arch::EccKind::Secded);
    s.plane.inject(kAddr, MemFaultKind::Bit, 5, 10);
    s.plane.setNow(10);
    std::uint32_t word = 0;
    s.m.copyOut(kAddr, &word, 4);
    EXPECT_EQ(word, kGolden);
    EXPECT_EQ(s.plane.corrected(), 1u);
}

TEST(MemFaultPlane, ResetDisarmsAndZeroesCounters)
{
    PlaneRig r(arch::EccKind::None);
    r.plane.inject(kAddr, MemFaultKind::Bit, 5, 10);
    r.plane.setNow(10);
    (void)r.m.readWord(kAddr);
    EXPECT_EQ(r.plane.consumedReads(), 1u);
    r.plane.reset();
    EXPECT_EQ(r.plane.consumedReads(), 0u);
    EXPECT_EQ(r.plane.corrected(), 0u);
    EXPECT_EQ(r.plane.uncorrectable(), 0u);
    EXPECT_EQ(r.m.readWord(kAddr), kGolden);
    EXPECT_EQ(r.plane.consumedReads(), 0u);
}

TEST(MemFaultPlane, RejectsUnalignedInjection)
{
    setVerbose(false);
    MemFaultPlane p(arch::EccKind::None);
    EXPECT_THROW(p.inject(6, MemFaultKind::Bit, 0, 0),
                 std::logic_error);
}

// ---------------------------------------------------------------------------
// Banked DRAM timing.
// ---------------------------------------------------------------------------

namespace {

arch::GpuConfig
bankedCfg()
{
    auto cfg = arch::GpuConfig::testDefault();
    cfg.memModel = arch::MemModel::Banked;
    cfg.memBanks = 2;
    cfg.memRowBytes = 256;
    cfg.coalesceSegmentBytes = 128; // 2 segments per row
    cfg.memRowMissPenalty = 60;
    cfg.globalMemLatency = 100;
    cfg.memoryServicePeriod = 2;
    return cfg;
}

} // namespace

TEST(BankedMemorySystem, RowMissPaysThePenaltyRowHitDoesNot)
{
    mem::MemorySystem ms(bankedCfg());
    // First touch of bank 0 opens row 0: a compulsory miss.
    EXPECT_EQ(ms.access(0, {0}), 160u); // 100 + 60
    EXPECT_EQ(ms.rowMisses(), 1u);
    EXPECT_EQ(ms.rowHits(), 0u);
    // Same row, later: open-row hit at the raw latency.
    EXPECT_EQ(ms.access(200, {0}), 300u);
    EXPECT_EQ(ms.rowHits(), 1u);
    // Segment 4 maps to bank 0 row 1: the open row switches.
    EXPECT_EQ(ms.access(400, {4}), 560u);
    EXPECT_EQ(ms.rowMisses(), 2u);
}

TEST(BankedMemorySystem, AdjacentSegmentsInterleaveAcrossBanks)
{
    mem::MemorySystem ms(bankedCfg());
    // Segments 0 and 1 land on different banks: both are compulsory
    // misses but they proceed in parallel, so the warp completes at
    // one miss latency, not two service periods apart.
    EXPECT_EQ(ms.access(0, {0, 1}), 160u);
    EXPECT_EQ(ms.rowMisses(), 2u);
    EXPECT_EQ(ms.queueingCycles(), 0u);
}

TEST(BankedMemorySystem, SameBankConflictQueuesOnTheServicePeriod)
{
    mem::MemorySystem ms(bankedCfg());
    // Segments 0 and 2 both map to bank 0, same row: the second
    // transaction waits one service period behind the first (visible
    // as queueing; the first access's row miss still dominates the
    // warp's completion time).
    EXPECT_EQ(ms.access(0, {0, 2}), 160u);
    EXPECT_EQ(ms.queueingCycles(), 2u);
    EXPECT_EQ(ms.rowMisses(), 1u);
    EXPECT_EQ(ms.rowHits(), 1u);
    EXPECT_EQ(ms.transactions(), 2u);
}

TEST(BankedMemorySystem, FlatModelKeepsRowCountersAtZero)
{
    auto cfg = bankedCfg();
    cfg.memModel = arch::MemModel::Flat;
    mem::MemorySystem ms(cfg);
    (void)ms.access(0, {0, 1, 2, 3});
    EXPECT_EQ(ms.rowHits(), 0u);
    EXPECT_EQ(ms.rowMisses(), 0u);
    EXPECT_EQ(ms.transactions(), 4u);
}

// ---------------------------------------------------------------------------
// RandomFaultHook reset-replay: a checkpoint-resumed campaign rebuilds
// its hooks and must draw the identical corruption sequence, or the
// resumed half of the campaign silently diverges from the one-shot run.
// ---------------------------------------------------------------------------

TEST(RandomFaultHookReplay, ResetReplaysTheExactCorruptionSequence)
{
    fault::RandomFaultHook hook(0.5, 42);
    auto drive = [&hook] {
        std::vector<RegValue> out;
        for (unsigned i = 0; i < 256; ++i) {
            func::FaultCtx ctx;
            ctx.sm = i % 4;
            ctx.lane = i % 32;
            ctx.cycle = i;
            out.push_back(hook.apply(0xa5a5a5a5u + i, ctx));
        }
        return out;
    };
    const auto first = drive();
    const auto acts = hook.activations();
    EXPECT_GT(acts, 0u);

    hook.reset();
    EXPECT_EQ(hook.activations(), 0u);
    EXPECT_EQ(drive(), first);
    EXPECT_EQ(hook.activations(), acts);

    // Without the reset the stream continues instead of replaying —
    // the bug reset() exists to prevent.
    const auto cont = drive();
    EXPECT_NE(cont, first);
}
