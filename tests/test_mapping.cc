/**
 * @file
 * Unit and property tests: thread-to-core mapping (§4.2) and lane
 * shuffling (§3.2).
 */

#include <gtest/gtest.h>

#include <bit>

#include "common/logging.hh"
#include "dmr/rfu.hh"
#include "dmr/thread_mapping.hh"

using namespace warped;
using dmr::MappingPolicy;
using dmr::ThreadCoreMapping;

TEST(Mapping, LinearIsIdentity)
{
    ThreadCoreMapping m(MappingPolicy::Linear, 32, 4);
    for (unsigned s = 0; s < 32; ++s) {
        EXPECT_EQ(m.laneOf(s), s);
        EXPECT_EQ(m.slotOf(s), s);
    }
}

TEST(Mapping, CrossClusterRoundRobin)
{
    // §4.2: thread 0 -> cluster 0, thread 1 -> cluster 1, ...
    ThreadCoreMapping m(MappingPolicy::CrossCluster, 32, 4);
    const unsigned n_clusters = 8;
    for (unsigned s = 0; s < 32; ++s)
        EXPECT_EQ(m.laneOf(s) / 4, s % n_clusters) << "slot " << s;
    EXPECT_EQ(m.laneOf(0), 0u);
    EXPECT_EQ(m.laneOf(1), 4u);
    EXPECT_EQ(m.laneOf(8), 1u);
}

class MappingBijection
    : public ::testing::TestWithParam<std::pair<MappingPolicy, unsigned>>
{
};

TEST_P(MappingBijection, IsBijective)
{
    const auto [policy, width] = GetParam();
    ThreadCoreMapping m(policy, 32, width);
    std::uint64_t seen = 0;
    for (unsigned s = 0; s < 32; ++s) {
        const unsigned l = m.laneOf(s);
        ASSERT_LT(l, 32u);
        EXPECT_FALSE((seen >> l) & 1) << "lane " << l << " duplicated";
        seen |= 1ULL << l;
        EXPECT_EQ(m.slotOf(l), s);
    }
    EXPECT_EQ(seen, ~0ULL >> 32);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, MappingBijection,
    ::testing::Values(std::pair{MappingPolicy::Linear, 4u},
                      std::pair{MappingPolicy::CrossCluster, 4u},
                      std::pair{MappingPolicy::Linear, 8u},
                      std::pair{MappingPolicy::CrossCluster, 8u}));

TEST(Mapping, MaskPermutation)
{
    ThreadCoreMapping m(MappingPolicy::CrossCluster, 32, 4);
    LaneMask slots;
    slots.set(0);
    slots.set(1);
    const auto lanes = m.toLaneSpace(slots);
    EXPECT_TRUE(lanes.test(0));
    EXPECT_TRUE(lanes.test(4));
    EXPECT_EQ(lanes.count(), 2u);
}

TEST(Mapping, CrossSpreadsContiguousActivity)
{
    // The §4.2 motivation: a contiguous run of k active threads lands
    // in ceil(k/8) clusters under the linear mapping but spreads over
    // min(k, 8) clusters under cross mapping, so idle checker lanes
    // are available in-cluster.
    ThreadCoreMapping cross(MappingPolicy::CrossCluster, 32, 4);
    ThreadCoreMapping linear(MappingPolicy::Linear, 32, 4);
    for (unsigned k = 1; k <= 16; ++k) {
        LaneMask slots;
        for (unsigned s = 0; s < k; ++s)
            slots.set(s);
        const auto lm = linear.toLaneSpace(slots);
        const auto cm = cross.toLaneSpace(slots);
        unsigned covered_linear = 0, covered_cross = 0;
        for (unsigned c = 0; c < 8; ++c) {
            covered_linear +=
                std::popcount(dmr::Rfu::covered(lm.clusterBits(c, 4), 4));
            covered_cross +=
                std::popcount(dmr::Rfu::covered(cm.clusterBits(c, 4), 4));
        }
        EXPECT_GE(covered_cross, covered_linear) << "k=" << k;
        if (k == 16) {
            // 16 contiguous actives: linear fills 4 clusters solid
            // (zero coverage); cross puts 2 active + 2 idle in every
            // cluster (full coverage).
            EXPECT_EQ(covered_linear, 0u);
            EXPECT_EQ(covered_cross, 16u);
        }
    }
}

TEST(Mapping, BadGeometryPanics)
{
    setVerbose(false);
    EXPECT_THROW(ThreadCoreMapping(MappingPolicy::Linear, 30, 4),
                 std::logic_error);
    EXPECT_THROW(ThreadCoreMapping(MappingPolicy::Linear, 0, 4),
                 std::logic_error);
}

TEST(LaneShuffle, DifferentLaneSameCluster)
{
    // §3.2: the verifying core must differ from the original core but
    // stay within the SIMT cluster (wiring locality).
    for (unsigned width : {4u, 8u}) {
        for (unsigned lane = 0; lane < 32; ++lane) {
            const unsigned s = dmr::shuffledLane(lane, width);
            EXPECT_NE(s, lane);
            EXPECT_EQ(s / width, lane / width);
        }
    }
}

TEST(LaneShuffle, IsBijective)
{
    std::uint64_t seen = 0;
    for (unsigned lane = 0; lane < 32; ++lane)
        seen |= 1ULL << dmr::shuffledLane(lane, 4);
    EXPECT_EQ(seen, ~0ULL >> 32);
}
