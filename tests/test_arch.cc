/**
 * @file
 * Unit tests: arch-layer pieces not covered elsewhere — GpuConfig
 * validation and WarpContext state.
 */

#include <gtest/gtest.h>

#include "arch/gpu_config.hh"
#include "arch/warp_context.hh"
#include "common/logging.hh"

using namespace warped;
using arch::GpuConfig;
using arch::WarpContext;

TEST(GpuConfig, DefaultsMatchTable3)
{
    const auto c = GpuConfig::paperDefault();
    EXPECT_EQ(c.numSms, 30u);
    EXPECT_EQ(c.warpSize, 32u);
    EXPECT_EQ(c.lanesPerCluster, 4u);
    EXPECT_EQ(c.maxThreadsPerSm, 1024u);
    EXPECT_EQ(c.numRegBanks, 32u);
    EXPECT_DOUBLE_EQ(c.cyclePeriodNs(), 1.25);
    EXPECT_EQ(c.clustersPerWarp(), 8u);
    EXPECT_EQ(c.warpsPerBlock(256), 8u);
    EXPECT_EQ(c.warpsPerBlock(48), 2u); // tail warp counts
    c.validate(); // must not throw
}

TEST(GpuConfig, ValidationCatchesNonsense)
{
    setVerbose(false);
    auto bad = [](auto mutate) {
        auto c = GpuConfig::testDefault();
        mutate(c);
        EXPECT_THROW(c.validate(), std::runtime_error);
    };
    bad([](GpuConfig &c) { c.warpSize = 0; });
    bad([](GpuConfig &c) { c.warpSize = 65; });
    bad([](GpuConfig &c) { c.lanesPerCluster = 3; });
    bad([](GpuConfig &c) { c.numSms = 0; });
    bad([](GpuConfig &c) { c.maxThreadsPerSm = 16; });
    bad([](GpuConfig &c) { c.rfStages = 0; });
    bad([](GpuConfig &c) { c.clockGhz = 0.0; });
    bad([](GpuConfig &c) { c.numSchedulers = 0; });
    bad([](GpuConfig &c) { c.numSchedulers = 5; });
}

TEST(WarpContext, ValidLanesForTailWarp)
{
    // Block of 50 threads: warp 1 holds threads 32..49.
    WarpContext w(32, 8, /*block*/ 0, /*warp*/ 1, /*threads*/ 50,
                  /*dim*/ 50, /*grid*/ 1);
    EXPECT_EQ(w.validLanes().count(), 18u);
    EXPECT_TRUE(w.validLanes().test(0));
    EXPECT_TRUE(w.validLanes().test(17));
    EXPECT_FALSE(w.validLanes().test(18));
    EXPECT_EQ(w.tid(0), 32u);
    EXPECT_EQ(w.tid(17), 49u);
}

TEST(WarpContext, RegistersIsolatedPerLane)
{
    WarpContext w(32, 8, 0, 0, 32, 32, 1);
    w.setReg(3, 5, 0xaaaa);
    w.setReg(4, 5, 0xbbbb);
    EXPECT_EQ(w.reg(3, 5), 0xaaaau);
    EXPECT_EQ(w.reg(4, 5), 0xbbbbu);
    EXPECT_EQ(w.reg(3, 6), 0u);
}

TEST(WarpContext, RegisterBoundsPanics)
{
    setVerbose(false);
    WarpContext w(32, 8, 0, 0, 32, 32, 1);
    EXPECT_THROW(w.reg(32, 0), std::logic_error);
    EXPECT_THROW(w.setReg(0, 8, 1), std::logic_error);
}

TEST(WarpContext, ExitLifecycle)
{
    WarpContext w(32, 8, 0, 0, 32, 32, 1);
    EXPECT_FALSE(w.finished());
    w.markExited(LaneMask::full(16)); // half the threads
    EXPECT_FALSE(w.finished());
    EXPECT_EQ(w.stack().activeMask().count(), 16u);
    w.markExited(LaneMask::full(32));
    EXPECT_TRUE(w.finished());
}
