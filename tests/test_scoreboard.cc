/**
 * @file
 * Unit tests: the register scoreboard.
 */

#include <gtest/gtest.h>

#include "sm/scoreboard.hh"

using namespace warped;
using namespace warped::isa;
using sm::Scoreboard;

namespace {

Instruction
add(unsigned dst, unsigned s0, unsigned s1)
{
    Instruction in;
    in.op = Opcode::IADD;
    in.dst = Reg{static_cast<RegIndex>(dst)};
    in.src[0] = Reg{static_cast<RegIndex>(s0)};
    in.src[1] = Reg{static_cast<RegIndex>(s1)};
    return in;
}

} // namespace

TEST(Scoreboard, FreshRegistersAreReady)
{
    Scoreboard sb(4, 16);
    EXPECT_TRUE(sb.ready(0, add(0, 1, 2), 0));
}

TEST(Scoreboard, RawBlocksUntilWriteback)
{
    Scoreboard sb(4, 16);
    sb.issue(0, add(5, 1, 2), /*writeback*/ 10);
    // Consumer reads r5.
    EXPECT_FALSE(sb.ready(0, add(6, 5, 1), 9));
    EXPECT_TRUE(sb.ready(0, add(6, 5, 1), 10));
}

TEST(Scoreboard, WawBlocks)
{
    Scoreboard sb(4, 16);
    sb.issue(0, add(5, 1, 2), 10);
    EXPECT_FALSE(sb.ready(0, add(5, 1, 2), 5));
    EXPECT_TRUE(sb.ready(0, add(5, 1, 2), 10));
}

TEST(Scoreboard, WarpsAreIndependent)
{
    Scoreboard sb(4, 16);
    sb.issue(0, add(5, 1, 2), 100);
    EXPECT_TRUE(sb.ready(1, add(6, 5, 1), 0));
}

TEST(Scoreboard, LaterWritebackWins)
{
    Scoreboard sb(4, 16);
    sb.issue(0, add(5, 1, 2), 100);
    sb.issue(0, add(5, 1, 2), 50); // must not shorten
    EXPECT_EQ(sb.readyAt(0, 5), 100u);
}

TEST(Scoreboard, ResetWarpClears)
{
    Scoreboard sb(4, 16);
    sb.issue(0, add(5, 1, 2), 100);
    sb.resetWarp(0);
    EXPECT_TRUE(sb.ready(0, add(6, 5, 1), 0));
}

TEST(Scoreboard, StoreHasNoDestination)
{
    Scoreboard sb(4, 16);
    Instruction st;
    st.op = Opcode::STG;
    st.src[0] = Reg{1};
    st.src[1] = Reg{2};
    sb.issue(0, st, 50); // no-op
    EXPECT_TRUE(sb.ready(0, add(0, 3, 4), 0));
    // But a store waits for its operands.
    sb.issue(0, add(2, 3, 4), 30);
    EXPECT_FALSE(sb.ready(0, st, 29));
    EXPECT_TRUE(sb.ready(0, st, 30));
}
