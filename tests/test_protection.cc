/**
 * @file
 * Unit + integration tests for the protection seam: the scheme
 * registry's strict name table, the Original backend's zero-footprint
 * contract (no recovery-listener traffic, no stalls, no stats), and
 * the Partial-Thread degeneracy — at protectFraction 1.0 it must be
 * indistinguishable from Warped-DMR, campaign report included.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "dmr/recovery_listener.hh"
#include "fault/campaign_engine.hh"
#include "func/executor.hh"
#include "gpu/gpu.hh"
#include "func/fault_hook.hh"
#include "mem/memory.hh"
#include "protection/scheme_registry.hh"
#include "workloads/workload.hh"

using namespace warped;
using protection::SchemeConfig;
using protection::SchemeId;

namespace {

struct SchemeFixture : ::testing::Test
{
    SchemeFixture()
        : cfg(arch::GpuConfig::testDefault()), global(4096),
          exec(cfg, 0, global, func::NullFaultHook::instance())
    {
        setVerbose(false);
    }

    std::unique_ptr<protection::ProtectionScheme>
    make(SchemeId id, double frac = 1.0)
    {
        return protection::makeScheme({id, frac}, cfg,
                                      dmr::DmrConfig::paperDefault(),
                                      exec, 1);
    }

    /** A synthetic executed instruction with plausible payloads. */
    func::ExecRecord
    rec(isa::Opcode op, unsigned active_count = 32)
    {
        func::ExecRecord r;
        r.instr.op = op;
        r.instr.dst = isa::Reg{1};
        r.instr.src[0] = isa::Reg{2};
        for (unsigned s = 0; s < active_count; ++s)
            r.active.set(s);
        for (unsigned s = 0; s < 32; ++s) {
            r.operands[0][s] = s + 1;
            r.operands[1][s] = 7;
            std::array<RegValue, 3> ops = {r.operands[0][s],
                                           r.operands[1][s], 0};
            r.results[s] = func::Executor::computeLane(
                r.instr, ops, r.laneInfo[s]);
        }
        return r;
    }

    arch::GpuConfig cfg;
    mem::Memory global;
    func::Executor exec;
};

/** Counts every listener callback; the Original scheme must make
 *  none (nothing is ever verified OR retired-unprotected: there is
 *  no detection signal for recovery to act on). */
struct CountingListener final : dmr::RecoveryListener
{
    unsigned verified = 0, unprotected = 0;
    void
    onVerified(const func::ExecRecord &, bool, Cycle) override
    {
        ++verified;
    }
    void
    onUnprotected(const func::ExecRecord &) override
    {
        ++unprotected;
    }
};

} // namespace

TEST(SchemeRegistry, RoundTripsEveryCliName)
{
    const auto all = protection::allSchemes();
    EXPECT_EQ(all.size(), protection::kNumSchemes);
    for (const auto id : all) {
        const auto back =
            protection::schemeFromName(protection::schemeCliName(id));
        ASSERT_TRUE(back.has_value())
            << protection::schemeCliName(id);
        EXPECT_EQ(*back, id);
    }
}

TEST(SchemeRegistry, EnumOrderStartsAtOriginal)
{
    // The sweep relies on Original running first to anchor the
    // overhead baseline.
    EXPECT_EQ(protection::allSchemes().front(), SchemeId::Original);
}

TEST(SchemeRegistry, RejectsNonCanonicalNames)
{
    using protection::schemeFromName;
    EXPECT_FALSE(schemeFromName(""));
    EXPECT_FALSE(schemeFromName("warped"));       // no prefixes
    EXPECT_FALSE(schemeFromName("warped-dmr "));  // no trailing junk
    EXPECT_FALSE(schemeFromName("Warped-DMR"));   // display name
    EXPECT_FALSE(schemeFromName("WARPED-DMR"));   // no case folding
    EXPECT_FALSE(schemeFromName("rthread"));      // exact slug only
    EXPECT_FALSE(schemeFromName("dmr"));
}

TEST_F(SchemeFixture, FactoryAgreesWithRecoveryTable)
{
    for (const auto id : protection::allSchemes()) {
        const auto s = make(id);
        EXPECT_EQ(s->id(), id) << protection::schemeCliName(id);
        EXPECT_EQ(s->supportsRecovery(),
                  protection::schemeSupportsRecovery(id))
            << protection::schemeCliName(id);
    }
}

TEST_F(SchemeFixture, OriginalNeverTouchesTheRecoveryListener)
{
    const auto s = make(SchemeId::Original);
    CountingListener listener;
    s->attachRecoveryListener(&listener);
    for (unsigned i = 0; i < 64; ++i) {
        EXPECT_EQ(s->onIssue(rec(isa::Opcode::IADD), i), 0u);
        s->onIdleCycle(i, false);
    }
    EXPECT_EQ(s->drainAll(64), 0u);
    EXPECT_EQ(listener.verified, 0u);
    EXPECT_EQ(listener.unprotected, 0u);
    EXPECT_EQ(s->stats().comparisons, 0u);
    EXPECT_EQ(s->stats().verifiableThreadInstrs, 0u);
    EXPECT_FALSE(s->hasPending());
}

TEST_F(SchemeFixture, SoftwareSchemesReportListenerTraffic)
{
    // Contrast with Original: R-Naive verifies (onVerified) and
    // reports non-verifiable records (onUnprotected).
    const auto s = make(SchemeId::RNaive);
    CountingListener listener;
    s->attachRecoveryListener(&listener);
    s->onIssue(rec(isa::Opcode::IADD), 0);
    s->onIssue(rec(isa::Opcode::BAR), 1); // control flow: unverifiable
    EXPECT_EQ(listener.verified, 1u);
    EXPECT_EQ(listener.unprotected, 1u);
}

TEST(PartialThread, FullFractionMatchesWarpedDmrCampaign)
{
    // At protectFraction 1.0 every active slot is protected, so the
    // Partial-Thread backend must delegate every issue to the wrapped
    // DmrEngine and produce the SAME seeded campaign — same detection
    // set, same latencies, same outcome split — as plain Warped-DMR.
    setVerbose(false);
    const auto runCampaign = [](SchemeId id) {
        fault::EngineConfig ec;
        ec.workload = "SCAN";
        ec.gpu = arch::GpuConfig::testDefault();
        ec.gpu.numSms = 2;
        ec.sites = 1000;
        ec.seed = 42;
        ec.jobs = 0;
        ec.scheme = SchemeConfig{id, 1.0};
        fault::CampaignEngine engine(
            [] { return workloads::makeByNameSized("SCAN", 2); }, ec);
        return engine.run();
    };
    const auto a = runCampaign(SchemeId::WarpedDmr);
    const auto b = runCampaign(SchemeId::PartialThread);

    // Whole-report comparison via the counter map (it covers the
    // outcome split, per-kind/per-unit splits and latency histogram);
    // only the scheme-identity key itself may differ.
    auto ca = a.toMetrics().counters();
    auto cb = b.toMetrics().counters();
    ca.erase("campaign.scheme.id");
    cb.erase("campaign.scheme.id");
    EXPECT_EQ(a.span, b.span);
    EXPECT_EQ(ca, cb);
}

TEST(PartialThread, HalfFractionCoversLessThanFull)
{
    setVerbose(false);
    const auto launch = [](double frac) {
        auto w = workloads::makeByNameSized("SCAN", 2);
        auto cfg = arch::GpuConfig::testDefault();
        cfg.numSms = 2;
        gpu::Gpu g(cfg, dmr::DmrConfig::paperDefault(), 1, nullptr,
                   {}, SchemeConfig{SchemeId::PartialThread, frac});
        return workloads::runVerified(*w, g);
    };
    const auto half = launch(0.5);
    const auto full = launch(1.0);
    EXPECT_GT(full.dmr.verifiedThreadInstrs, 0u);
    EXPECT_GT(half.dmr.verifiedThreadInstrs, 0u);
    EXPECT_LT(half.dmr.verifiedThreadInstrs,
              full.dmr.verifiedThreadInstrs);
}
