/**
 * @file
 * Unit and property tests: the SECDED codec and ECC memory — the
 * substrate behind the paper's "memory is protected, only execution
 * units are vulnerable" fault model.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/rng.hh"
#include "fault/campaign_engine.hh"
#include "mem/ecc.hh"

using namespace warped;
using mem::EccMemory;
using mem::Secded;

TEST(Secded, CleanRoundTrip)
{
    for (std::uint32_t v : {0u, 1u, 0xffffffffu, 0xdeadbeefu,
                            0x80000000u, 0x55555555u}) {
        const auto cw = Secded::encode(v);
        const auto dec = Secded::decode(cw);
        EXPECT_EQ(dec.status, Secded::Status::Ok);
        EXPECT_EQ(dec.data, v);
    }
}

TEST(Secded, EverySingleBitErrorIsCorrected)
{
    Rng rng(11);
    for (unsigned trial = 0; trial < 64; ++trial) {
        const auto v = static_cast<std::uint32_t>(rng.next());
        const auto cw = Secded::encode(v);
        for (unsigned bit = 0; bit < Secded::kCodeBits; ++bit) {
            const auto dec = Secded::decode(cw ^ (1ULL << bit));
            EXPECT_EQ(dec.status, Secded::Status::Corrected)
                << "bit " << bit;
            EXPECT_EQ(dec.data, v) << "bit " << bit;
        }
    }
}

TEST(Secded, EveryDoubleBitErrorIsDetected)
{
    Rng rng(13);
    for (unsigned trial = 0; trial < 8; ++trial) {
        const auto v = static_cast<std::uint32_t>(rng.next());
        const auto cw = Secded::encode(v);
        for (unsigned a = 0; a < Secded::kCodeBits; ++a) {
            for (unsigned b = a + 1; b < Secded::kCodeBits; ++b) {
                const auto dec =
                    Secded::decode(cw ^ (1ULL << a) ^ (1ULL << b));
                EXPECT_EQ(dec.status, Secded::Status::DoubleError)
                    << "bits " << a << "," << b;
            }
        }
    }
}

TEST(EccMemory, TransparentCorrectionOnRead)
{
    EccMemory m(1024);
    m.writeWord(64, 0xcafebabe);
    m.injectBitFlip(64, 17);

    Secded::Status st;
    EXPECT_EQ(m.readWord(64, &st), 0xcafebabeu);
    EXPECT_EQ(st, Secded::Status::Corrected);
    EXPECT_EQ(m.correctedCount(), 1u);

    // The read scrubbed in place: the next read is clean.
    EXPECT_EQ(m.readWord(64, &st), 0xcafebabeu);
    EXPECT_EQ(st, Secded::Status::Ok);
}

TEST(EccMemory, DoubleErrorIsFlaggedNotSilent)
{
    EccMemory m(1024);
    m.writeWord(0, 0x12345678);
    m.injectBitFlip(0, 3);
    m.injectBitFlip(0, 29);
    Secded::Status st;
    m.readWord(0, &st);
    EXPECT_EQ(st, Secded::Status::DoubleError);
    EXPECT_EQ(m.doubleErrorCount(), 1u);
}

TEST(EccMemory, ScrubPassFixesAccumulatedUpsets)
{
    EccMemory m(4096);
    for (Addr a = 0; a < 4096; a += 4)
        m.writeWord(a, static_cast<RegValue>(a * 2654435761u));
    // Sprinkle single-bit upsets.
    Rng rng(5);
    unsigned injected = 0;
    for (Addr a = 0; a < 4096; a += 4) {
        if (rng.nextBool(0.3)) {
            m.injectBitFlip(a, static_cast<unsigned>(
                                   rng.nextBelow(Secded::kCodeBits)));
            ++injected;
        }
    }
    EXPECT_EQ(m.scrub(), injected);
    // All data intact afterwards.
    for (Addr a = 0; a < 4096; a += 4) {
        Secded::Status st;
        EXPECT_EQ(m.readWord(a, &st),
                  static_cast<RegValue>(a * 2654435761u));
        EXPECT_EQ(st, Secded::Status::Ok);
    }
}

TEST(EccMemory, OutOfBoundsPanics)
{
    setVerbose(false);
    EccMemory m(64);
    EXPECT_THROW(m.readWord(64), std::logic_error);
    EXPECT_THROW(m.injectBitFlip(0, 40), std::logic_error);
}

TEST(EccMemory, SizeRoundsUpToWords)
{
    EccMemory m(10);
    EXPECT_EQ(m.size(), 12u);
}

// ---------------------------------------------------------------------------
// ECC / DMR interplay. Memory is SECDED-protected, so a memory bit
// upset that ECC corrects never reaches the execution units and never
// activates at the DMR checker boundary: it must classify as Masked
// under the campaign taxonomy — never Detected, and never Recovered,
// even when the rollback-replay engine is enabled. A double-bit error
// is ECC's own detected-uncorrectable event (a DUE), not something
// DMR's comparator or the recovery engine can claim credit for.
// ---------------------------------------------------------------------------

TEST(EccDmrInterplay, CorrectedMemoryUpsetClassifiesAsMasked)
{
    EccMemory m(64);
    m.writeWord(16, 0xdeadbeefu);
    m.injectBitFlip(16, 21);

    Secded::Status st = Secded::Status::Ok;
    EXPECT_EQ(m.readWord(16, &st), 0xdeadbeefu);
    EXPECT_EQ(st, Secded::Status::Corrected);
    EXPECT_EQ(m.correctedCount(), 1u);

    // The corrected read means the fault never activated downstream:
    // activated=false dominates every other flag, with recovery both
    // off and on (recovered_clean=true must not promote a fault that
    // DMR never saw).
    using fault::classifyOutcome;
    using fault::OutcomeClass;
    EXPECT_EQ(classifyOutcome(false, false, false, true, false),
              OutcomeClass::Masked);
    EXPECT_EQ(classifyOutcome(false, false, false, true, true),
              OutcomeClass::Masked);
    // 4-arg legacy overload agrees.
    EXPECT_EQ(classifyOutcome(false, false, false, true),
              OutcomeClass::Masked);
}

TEST(EccDmrInterplay, EverySingleBitUpsetStaysMaskedUnderRecovery)
{
    // Property form: any single-bit upset in any stored word is
    // absorbed by SECDED, so the whole single-bit memory fault space
    // contributes only Masked outcomes to a recovery-enabled
    // campaign.
    Rng rng(23);
    EccMemory m(32);
    for (unsigned trial = 0; trial < 16; ++trial) {
        const Addr addr = 4 * (rng.next() % 8);
        const auto v = static_cast<std::uint32_t>(rng.next());
        m.writeWord(addr, v);
        const auto bit =
            static_cast<unsigned>(rng.next() % Secded::kCodeBits);
        m.injectBitFlip(addr, bit);
        Secded::Status st = Secded::Status::Ok;
        const auto got = m.readWord(addr, &st);
        EXPECT_EQ(got, v) << "addr " << addr << " bit " << bit;
        EXPECT_NE(st, Secded::Status::DoubleError);
        EXPECT_EQ(fault::classifyOutcome(false, false, false, got == v,
                                         true),
                  fault::OutcomeClass::Masked);
    }
}

TEST(EccDmrInterplay, DoubleErrorIsEccsDueNotDmrs)
{
    EccMemory m(64);
    m.writeWord(32, 0x12345678u);
    m.injectBitFlip(32, 3);
    m.injectBitFlip(32, 17);

    Secded::Status st = Secded::Status::Ok;
    (void)m.readWord(32, &st);
    EXPECT_EQ(st, Secded::Status::DoubleError);
    EXPECT_EQ(m.doubleErrorCount(), 1u);

    // The machine reports the uncorrectable error and halts the run:
    // detected-uncorrectable maps to Due at the campaign level. DMR
    // never flagged it (detected=false) and recovery cannot touch it.
    EXPECT_EQ(fault::classifyOutcome(true, false, true, false, false),
              fault::OutcomeClass::Due);
    // Even a (hypothetical) clean recovery flag cannot promote a
    // detected-then-hung run to Recovered: the hang blocks promotion
    // and the run stays at plain Detected.
    EXPECT_EQ(fault::classifyOutcome(true, true, true, false, true),
              fault::OutcomeClass::Detected);
}
