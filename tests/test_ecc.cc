/**
 * @file
 * Unit and property tests: the SECDED codec and ECC memory — the
 * substrate behind the paper's "memory is protected, only execution
 * units are vulnerable" fault model.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/rng.hh"
#include "mem/ecc.hh"

using namespace warped;
using mem::EccMemory;
using mem::Secded;

TEST(Secded, CleanRoundTrip)
{
    for (std::uint32_t v : {0u, 1u, 0xffffffffu, 0xdeadbeefu,
                            0x80000000u, 0x55555555u}) {
        const auto cw = Secded::encode(v);
        const auto dec = Secded::decode(cw);
        EXPECT_EQ(dec.status, Secded::Status::Ok);
        EXPECT_EQ(dec.data, v);
    }
}

TEST(Secded, EverySingleBitErrorIsCorrected)
{
    Rng rng(11);
    for (unsigned trial = 0; trial < 64; ++trial) {
        const auto v = static_cast<std::uint32_t>(rng.next());
        const auto cw = Secded::encode(v);
        for (unsigned bit = 0; bit < Secded::kCodeBits; ++bit) {
            const auto dec = Secded::decode(cw ^ (1ULL << bit));
            EXPECT_EQ(dec.status, Secded::Status::Corrected)
                << "bit " << bit;
            EXPECT_EQ(dec.data, v) << "bit " << bit;
        }
    }
}

TEST(Secded, EveryDoubleBitErrorIsDetected)
{
    Rng rng(13);
    for (unsigned trial = 0; trial < 8; ++trial) {
        const auto v = static_cast<std::uint32_t>(rng.next());
        const auto cw = Secded::encode(v);
        for (unsigned a = 0; a < Secded::kCodeBits; ++a) {
            for (unsigned b = a + 1; b < Secded::kCodeBits; ++b) {
                const auto dec =
                    Secded::decode(cw ^ (1ULL << a) ^ (1ULL << b));
                EXPECT_EQ(dec.status, Secded::Status::DoubleError)
                    << "bits " << a << "," << b;
            }
        }
    }
}

TEST(EccMemory, TransparentCorrectionOnRead)
{
    EccMemory m(1024);
    m.writeWord(64, 0xcafebabe);
    m.injectBitFlip(64, 17);

    Secded::Status st;
    EXPECT_EQ(m.readWord(64, &st), 0xcafebabeu);
    EXPECT_EQ(st, Secded::Status::Corrected);
    EXPECT_EQ(m.correctedCount(), 1u);

    // The read scrubbed in place: the next read is clean.
    EXPECT_EQ(m.readWord(64, &st), 0xcafebabeu);
    EXPECT_EQ(st, Secded::Status::Ok);
}

TEST(EccMemory, DoubleErrorIsFlaggedNotSilent)
{
    EccMemory m(1024);
    m.writeWord(0, 0x12345678);
    m.injectBitFlip(0, 3);
    m.injectBitFlip(0, 29);
    Secded::Status st;
    m.readWord(0, &st);
    EXPECT_EQ(st, Secded::Status::DoubleError);
    EXPECT_EQ(m.doubleErrorCount(), 1u);
}

TEST(EccMemory, ScrubPassFixesAccumulatedUpsets)
{
    EccMemory m(4096);
    for (Addr a = 0; a < 4096; a += 4)
        m.writeWord(a, static_cast<RegValue>(a * 2654435761u));
    // Sprinkle single-bit upsets.
    Rng rng(5);
    unsigned injected = 0;
    for (Addr a = 0; a < 4096; a += 4) {
        if (rng.nextBool(0.3)) {
            m.injectBitFlip(a, static_cast<unsigned>(
                                   rng.nextBelow(Secded::kCodeBits)));
            ++injected;
        }
    }
    EXPECT_EQ(m.scrub(), injected);
    // All data intact afterwards.
    for (Addr a = 0; a < 4096; a += 4) {
        Secded::Status st;
        EXPECT_EQ(m.readWord(a, &st),
                  static_cast<RegValue>(a * 2654435761u));
        EXPECT_EQ(st, Secded::Status::Ok);
    }
}

TEST(EccMemory, OutOfBoundsPanics)
{
    setVerbose(false);
    EccMemory m(64);
    EXPECT_THROW(m.readWord(64), std::logic_error);
    EXPECT_THROW(m.injectBitFlip(0, 40), std::logic_error);
}

TEST(EccMemory, SizeRoundsUpToWords)
{
    EccMemory m(10);
    EXPECT_EQ(m.size(), 12u);
}
