/**
 * @file
 * Unit and property tests: the SECDED codec and ECC memory — the
 * substrate behind the paper's "memory is protected, only execution
 * units are vulnerable" fault model.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "fault/campaign_engine.hh"
#include "gpu/gpu.hh"
#include "kernel_fuzzer.hh"
#include "mem/codec.hh"
#include "mem/ecc.hh"

using namespace warped;
using mem::ChipkillCode;
using mem::CodecStatus;
using mem::EccMemory;
using mem::Secded;
using mem::SecdedCode;

TEST(Secded, CleanRoundTrip)
{
    for (std::uint32_t v : {0u, 1u, 0xffffffffu, 0xdeadbeefu,
                            0x80000000u, 0x55555555u}) {
        const auto cw = Secded::encode(v);
        const auto dec = Secded::decode(cw);
        EXPECT_EQ(dec.status, Secded::Status::Ok);
        EXPECT_EQ(dec.data, v);
    }
}

TEST(Secded, EverySingleBitErrorIsCorrected)
{
    Rng rng(11);
    for (unsigned trial = 0; trial < 64; ++trial) {
        const auto v = static_cast<std::uint32_t>(rng.next());
        const auto cw = Secded::encode(v);
        for (unsigned bit = 0; bit < Secded::kCodeBits; ++bit) {
            const auto dec = Secded::decode(cw ^ (1ULL << bit));
            EXPECT_EQ(dec.status, Secded::Status::Corrected)
                << "bit " << bit;
            EXPECT_EQ(dec.data, v) << "bit " << bit;
        }
    }
}

TEST(Secded, EveryDoubleBitErrorIsDetected)
{
    Rng rng(13);
    for (unsigned trial = 0; trial < 8; ++trial) {
        const auto v = static_cast<std::uint32_t>(rng.next());
        const auto cw = Secded::encode(v);
        for (unsigned a = 0; a < Secded::kCodeBits; ++a) {
            for (unsigned b = a + 1; b < Secded::kCodeBits; ++b) {
                const auto dec =
                    Secded::decode(cw ^ (1ULL << a) ^ (1ULL << b));
                EXPECT_EQ(dec.status, Secded::Status::DoubleError)
                    << "bits " << a << "," << b;
            }
        }
    }
}

TEST(EccMemory, TransparentCorrectionOnRead)
{
    EccMemory m(1024);
    m.writeWord(64, 0xcafebabe);
    m.injectBitFlip(64, 17);

    Secded::Status st;
    EXPECT_EQ(m.readWord(64, &st), 0xcafebabeu);
    EXPECT_EQ(st, Secded::Status::Corrected);
    EXPECT_EQ(m.correctedCount(), 1u);

    // The read scrubbed in place: the next read is clean.
    EXPECT_EQ(m.readWord(64, &st), 0xcafebabeu);
    EXPECT_EQ(st, Secded::Status::Ok);
}

TEST(EccMemory, DoubleErrorIsFlaggedNotSilent)
{
    EccMemory m(1024);
    m.writeWord(0, 0x12345678);
    m.injectBitFlip(0, 3);
    m.injectBitFlip(0, 29);
    Secded::Status st;
    m.readWord(0, &st);
    EXPECT_EQ(st, Secded::Status::DoubleError);
    EXPECT_EQ(m.doubleErrorCount(), 1u);
}

TEST(EccMemory, ScrubPassFixesAccumulatedUpsets)
{
    EccMemory m(4096);
    for (Addr a = 0; a < 4096; a += 4)
        m.writeWord(a, static_cast<RegValue>(a * 2654435761u));
    // Sprinkle single-bit upsets.
    Rng rng(5);
    unsigned injected = 0;
    for (Addr a = 0; a < 4096; a += 4) {
        if (rng.nextBool(0.3)) {
            m.injectBitFlip(a, static_cast<unsigned>(
                                   rng.nextBelow(Secded::kCodeBits)));
            ++injected;
        }
    }
    EXPECT_EQ(m.scrub(), injected);
    // All data intact afterwards.
    for (Addr a = 0; a < 4096; a += 4) {
        Secded::Status st;
        EXPECT_EQ(m.readWord(a, &st),
                  static_cast<RegValue>(a * 2654435761u));
        EXPECT_EQ(st, Secded::Status::Ok);
    }
}

TEST(EccMemory, OutOfBoundsPanics)
{
    setVerbose(false);
    EccMemory m(64);
    EXPECT_THROW(m.readWord(64), std::logic_error);
    EXPECT_THROW(m.injectBitFlip(0, 40), std::logic_error);
}

TEST(EccMemory, SizeRoundsUpToWords)
{
    EccMemory m(10);
    EXPECT_EQ(m.size(), 12u);
}

// ---------------------------------------------------------------------------
// ECC / DMR interplay. Memory is SECDED-protected, so a memory bit
// upset that ECC corrects never reaches the execution units and never
// activates at the DMR checker boundary: it must classify as Masked
// under the campaign taxonomy — never Detected, and never Recovered,
// even when the rollback-replay engine is enabled. A double-bit error
// is ECC's own detected-uncorrectable event (a DUE), not something
// DMR's comparator or the recovery engine can claim credit for.
// ---------------------------------------------------------------------------

TEST(EccDmrInterplay, CorrectedMemoryUpsetClassifiesAsMasked)
{
    EccMemory m(64);
    m.writeWord(16, 0xdeadbeefu);
    m.injectBitFlip(16, 21);

    Secded::Status st = Secded::Status::Ok;
    EXPECT_EQ(m.readWord(16, &st), 0xdeadbeefu);
    EXPECT_EQ(st, Secded::Status::Corrected);
    EXPECT_EQ(m.correctedCount(), 1u);

    // The corrected read means the fault never activated downstream:
    // activated=false dominates every other flag, with recovery both
    // off and on (recovered_clean=true must not promote a fault that
    // DMR never saw).
    using fault::classifyOutcome;
    using fault::OutcomeClass;
    EXPECT_EQ(classifyOutcome(false, false, false, true, false),
              OutcomeClass::Masked);
    EXPECT_EQ(classifyOutcome(false, false, false, true, true),
              OutcomeClass::Masked);
    // 4-arg legacy overload agrees.
    EXPECT_EQ(classifyOutcome(false, false, false, true),
              OutcomeClass::Masked);
}

TEST(EccDmrInterplay, EverySingleBitUpsetStaysMaskedUnderRecovery)
{
    // Property form: any single-bit upset in any stored word is
    // absorbed by SECDED, so the whole single-bit memory fault space
    // contributes only Masked outcomes to a recovery-enabled
    // campaign.
    Rng rng(23);
    EccMemory m(32);
    for (unsigned trial = 0; trial < 16; ++trial) {
        const Addr addr = 4 * (rng.next() % 8);
        const auto v = static_cast<std::uint32_t>(rng.next());
        m.writeWord(addr, v);
        const auto bit =
            static_cast<unsigned>(rng.next() % Secded::kCodeBits);
        m.injectBitFlip(addr, bit);
        Secded::Status st = Secded::Status::Ok;
        const auto got = m.readWord(addr, &st);
        EXPECT_EQ(got, v) << "addr " << addr << " bit " << bit;
        EXPECT_NE(st, Secded::Status::DoubleError);
        EXPECT_EQ(fault::classifyOutcome(false, false, false, got == v,
                                         true),
                  fault::OutcomeClass::Masked);
    }
}

TEST(EccDmrInterplay, DoubleErrorIsEccsDueNotDmrs)
{
    EccMemory m(64);
    m.writeWord(32, 0x12345678u);
    m.injectBitFlip(32, 3);
    m.injectBitFlip(32, 17);

    Secded::Status st = Secded::Status::Ok;
    (void)m.readWord(32, &st);
    EXPECT_EQ(st, Secded::Status::DoubleError);
    EXPECT_EQ(m.doubleErrorCount(), 1u);

    // The machine reports the uncorrectable error and halts the run:
    // detected-uncorrectable maps to Due at the campaign level. DMR
    // never flagged it (detected=false) and recovery cannot touch it.
    EXPECT_EQ(fault::classifyOutcome(true, false, true, false, false),
              fault::OutcomeClass::Due);
    // Even a (hypothetical) clean recovery flag cannot promote a
    // detected-then-hung run to Recovered: the hang blocks promotion
    // and the run stays at plain Detected.
    EXPECT_EQ(fault::classifyOutcome(true, true, true, false, true),
              fault::OutcomeClass::Detected);
}

// ---------------------------------------------------------------------------
// Configurable codec family (mem/codec.*): the runtime-width SECDED
// and the GF(16) chipkill code behind `--ecc {secded,chipkill}`.
// These are the exhaustive guarantees the memory fault campaigns
// lean on: every classification in a campaign report reduces to one
// of the decode outcomes proven here.
// ---------------------------------------------------------------------------

class SecdedCodeWidths : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SecdedCodeWidths, CleanRoundTripIsExact)
{
    const SecdedCode code(GetParam());
    const std::uint64_t mask =
        code.dataBits() == 64 ? ~0ull : (1ull << code.dataBits()) - 1;
    Rng rng(31 + GetParam());
    for (unsigned trial = 0; trial < 256; ++trial) {
        const std::uint64_t v = rng.next() & mask;
        const auto dec = code.decode(code.encode(v));
        ASSERT_EQ(dec.status, CodecStatus::Ok);
        ASSERT_EQ(dec.data, v);
    }
}

TEST_P(SecdedCodeWidths, EverySingleBitFlipIsCorrected)
{
    const SecdedCode code(GetParam());
    const std::uint64_t mask =
        code.dataBits() == 64 ? ~0ull : (1ull << code.dataBits()) - 1;
    Rng rng(47 + GetParam());
    for (unsigned trial = 0; trial < 16; ++trial) {
        const std::uint64_t v = rng.next() & mask;
        const auto cw = code.encode(v);
        for (unsigned bit = 0; bit < code.codeBits(); ++bit) {
            auto c = cw;
            c.flip(bit);
            const auto dec = code.decode(c);
            ASSERT_EQ(dec.status, CodecStatus::Corrected)
                << "k=" << code.dataBits() << " bit " << bit;
            ASSERT_EQ(dec.data, v)
                << "k=" << code.dataBits() << " bit " << bit;
        }
    }
}

TEST_P(SecdedCodeWidths, EveryDoubleBitFlipIsDetected)
{
    const SecdedCode code(GetParam());
    const std::uint64_t mask =
        code.dataBits() == 64 ? ~0ull : (1ull << code.dataBits()) - 1;
    Rng rng(59 + GetParam());
    // Exhaustive over bit pairs; a few random data words is plenty
    // since the syndrome of a flip pattern is data-independent.
    for (unsigned trial = 0; trial < 4; ++trial) {
        const std::uint64_t v = rng.next() & mask;
        const auto cw = code.encode(v);
        for (unsigned a = 0; a < code.codeBits(); ++a) {
            for (unsigned b = a + 1; b < code.codeBits(); ++b) {
                auto c = cw;
                c.flip(a);
                c.flip(b);
                ASSERT_EQ(code.decode(c).status, CodecStatus::Detected)
                    << "k=" << code.dataBits() << " bits " << a << ","
                    << b;
            }
        }
    }
}

TEST_P(SecdedCodeWidths, DataPositionsIndexStoredDataBits)
{
    // Flipping the codeword position dataPosition(i) must flip
    // exactly data bit i after (corrected) decode of a clean word's
    // neighbour — the fault plane relies on this to corrupt a chosen
    // stored cell.
    const SecdedCode code(GetParam());
    const std::uint64_t mask =
        code.dataBits() == 64 ? ~0ull : (1ull << code.dataBits()) - 1;
    const std::uint64_t v = 0xa5a5a5a5a5a5a5a5ull & mask;
    const auto cw = code.encode(v);
    for (unsigned i = 0; i < code.dataBits(); ++i) {
        auto c = cw;
        c.flip(code.dataPosition(i));
        const auto dec = code.decode(c);
        EXPECT_EQ(dec.status, CodecStatus::Corrected);
        EXPECT_EQ(dec.data, v) << "data bit " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(AllWordWidths, SecdedCodeWidths,
                         ::testing::Values(8u, 16u, 32u, 64u));

TEST(SecdedCodeShape, CheckBitCountsMatchTheClassicCodes)
{
    // (13,8), (22,16), (39,32), (72,64): k + ceil-log check bits + 1
    // overall parity.
    EXPECT_EQ(SecdedCode(8).codeBits(), 13u);
    EXPECT_EQ(SecdedCode(16).codeBits(), 22u);
    EXPECT_EQ(SecdedCode(32).codeBits(), 39u);
    EXPECT_EQ(SecdedCode(64).codeBits(), 72u);
}

TEST(SecdedCodeShape, RejectsUnsupportedWidths)
{
    setVerbose(false);
    EXPECT_THROW(SecdedCode(0), std::logic_error);
    EXPECT_THROW(SecdedCode(65), std::logic_error);
}

TEST(Chipkill, CleanRoundTripIsExact)
{
    const ChipkillCode &code = mem::chipkill();
    Rng rng(71);
    for (unsigned trial = 0; trial < 512; ++trial) {
        const auto v = static_cast<std::uint32_t>(rng.next());
        const auto dec = code.decode(code.encode(v));
        ASSERT_EQ(dec.status, CodecStatus::Ok);
        ASSERT_EQ(dec.data, v);
    }
}

TEST(Chipkill, EverySingleSymbolCorruptionIsCorrected)
{
    // The chipkill guarantee: any error confined to one 4-bit symbol
    // (up to a whole dead chip slice) is repaired exactly. Exhaustive
    // over all 11 symbols x 15 non-zero corruption patterns.
    const ChipkillCode &code = mem::chipkill();
    Rng rng(83);
    for (unsigned trial = 0; trial < 32; ++trial) {
        const auto v = static_cast<std::uint32_t>(rng.next());
        const std::uint64_t cw = code.encode(v);
        for (unsigned sym = 0; sym < ChipkillCode::kSymbols; ++sym) {
            for (unsigned pat = 1; pat < 16; ++pat) {
                const std::uint64_t bad =
                    cw ^ (static_cast<std::uint64_t>(pat)
                          << (sym * ChipkillCode::kSymbolBits));
                const auto dec = code.decode(bad);
                ASSERT_EQ(dec.status, CodecStatus::Corrected)
                    << "symbol " << sym << " pattern " << pat;
                ASSERT_EQ(dec.data, v)
                    << "symbol " << sym << " pattern " << pat;
            }
        }
    }
}

TEST(Chipkill, EveryDoubleSymbolCorruptionIsFlagged)
{
    // Minimum distance 4: two corrupted symbols are beyond correction
    // but never silently accepted or miscorrected.
    const ChipkillCode &code = mem::chipkill();
    Rng rng(97);
    for (unsigned trial = 0; trial < 4; ++trial) {
        const auto v = static_cast<std::uint32_t>(rng.next());
        const std::uint64_t cw = code.encode(v);
        for (unsigned s0 = 0; s0 < ChipkillCode::kSymbols; ++s0) {
            for (unsigned s1 = s0 + 1; s1 < ChipkillCode::kSymbols;
                 ++s1) {
                for (unsigned pair = 0; pair < 8; ++pair) {
                    const auto p0 =
                        1 + static_cast<unsigned>(rng.nextBelow(15));
                    const auto p1 =
                        1 + static_cast<unsigned>(rng.nextBelow(15));
                    const std::uint64_t bad =
                        cw ^
                        (static_cast<std::uint64_t>(p0)
                         << (s0 * ChipkillCode::kSymbolBits)) ^
                        (static_cast<std::uint64_t>(p1)
                         << (s1 * ChipkillCode::kSymbolBits));
                    ASSERT_EQ(code.decode(bad).status,
                              CodecStatus::Detected)
                        << "symbols " << s0 << "," << s1;
                }
            }
        }
    }
}

TEST(Chipkill, CorrectsTheBurstSecdedWouldMiscount)
{
    // The qualitative step past SECDED: a 4-bit aligned burst (one
    // dead chip) is an even-weight multi-bit error. SECDED flags it
    // at best; chipkill repairs it exactly.
    const ChipkillCode &code = mem::chipkill();
    const std::uint32_t v = 0xdeadbeefu;
    const std::uint64_t cw = code.encode(v);
    const std::uint64_t burst = cw ^ (0xfull << 12); // symbol 3 dies
    const auto dec = code.decode(burst);
    EXPECT_EQ(dec.status, CodecStatus::Corrected);
    EXPECT_EQ(dec.data, v);
}

TEST(CodecProperty, FuzzedKernelImagesSurviveBothCodecs)
{
    // Round-trip property on "real" data: memory images produced by
    // randomly generated kernels (same generator and seeds as the
    // fuzz suite) must pass through every codec unchanged, and a
    // single upset injected into any such word must still decode back
    // to it.
    setVerbose(false);
    const SecdedCode &s32 = mem::secded32();
    const ChipkillCode &ck = mem::chipkill();
    for (const std::uint64_t seed : {1ull, 7ull, 23ull}) {
        testutil::KernelFuzzer fuzz(seed);
        const isa::Program prog = fuzz.generate(/*out base*/ 256);
        auto cfg = arch::GpuConfig::testDefault();
        cfg.numSms = 2;
        gpu::Gpu g(cfg, dmr::DmrConfig::off());
        const Addr out = g.allocator().alloc(64 * 4);
        ASSERT_EQ(out, 256u);
        (void)g.launch(prog, 1, 64);
        std::vector<std::uint32_t> img(64);
        g.mem().copyOut(out, img.data(), img.size() * 4);

        Rng rng(seed * 1000 + 5);
        for (const std::uint32_t w : img) {
            ASSERT_EQ(s32.decode(s32.encode(w)).data, w);
            ASSERT_EQ(ck.decode(ck.encode(w)).data, w);
            // One random stored-bit upset per codec round-trips too.
            auto cw = s32.encode(w);
            cw.flip(s32.dataPosition(
                static_cast<unsigned>(rng.nextBelow(32))));
            const auto ds = s32.decode(cw);
            ASSERT_EQ(ds.status, CodecStatus::Corrected);
            ASSERT_EQ(ds.data, w);
            const auto bit = static_cast<unsigned>(rng.nextBelow(32));
            const auto dc = ck.decode(ck.encode(w) ^ (1ull << bit));
            ASSERT_EQ(dc.status, CodecStatus::Corrected);
            ASSERT_EQ(dc.data, w);
        }
    }
}
