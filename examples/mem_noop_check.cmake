# mem_noop_smoke driver: an explicit `--mem-model flat --ecc none` run
# must be byte-identical to a run that never mentions either flag —
# both in the single-run metrics JSON and in a campaign report JSON.
# This is the tripwire for the banked-memory/ECC work's "the flat
# default has zero behavioral and serialization footprint" contract:
# any counter the default path starts emitting, any perturbation of
# the simulated cycles, or any campaign-signature drift fails the
# compare.
execute_process(
    COMMAND ${SIM} SCAN --sms 4
            --metrics-out ${OUTDIR}/mem_noop_default.json
    RESULT_VARIABLE r1 OUTPUT_QUIET ERROR_QUIET)
execute_process(
    COMMAND ${SIM} SCAN --sms 4 --mem-model flat --ecc none
            --metrics-out ${OUTDIR}/mem_noop_explicit.json
    RESULT_VARIABLE r2 OUTPUT_QUIET ERROR_QUIET)
if(NOT r1 EQUAL 0)
    message(FATAL_ERROR "default run failed (exit ${r1})")
endif()
if(NOT r2 EQUAL 0)
    message(FATAL_ERROR "--mem-model flat --ecc none run failed (exit ${r2})")
endif()
execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${OUTDIR}/mem_noop_default.json
            ${OUTDIR}/mem_noop_explicit.json
    RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
    message(FATAL_ERROR
            "mem_noop_smoke: explicit --mem-model flat --ecc none "
            "metrics differ from the default run — the flat path leaked")
endif()

# Same contract for a campaign report (exec-only site space).
execute_process(
    COMMAND ${SIM} campaign SCAN --size 2 --sites 60 --seed 11 --jobs 2
            --out ${OUTDIR}/mem_noop_camp_default.json
    RESULT_VARIABLE r3 OUTPUT_QUIET ERROR_QUIET)
execute_process(
    COMMAND ${SIM} campaign SCAN --size 2 --sites 60 --seed 11 --jobs 2
            --mem-model flat --ecc none
            --out ${OUTDIR}/mem_noop_camp_explicit.json
    RESULT_VARIABLE r4 OUTPUT_QUIET ERROR_QUIET)
if(NOT r3 EQUAL 0)
    message(FATAL_ERROR "default campaign failed (exit ${r3})")
endif()
if(NOT r4 EQUAL 0)
    message(FATAL_ERROR "flat/none campaign failed (exit ${r4})")
endif()
execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${OUTDIR}/mem_noop_camp_default.json
            ${OUTDIR}/mem_noop_camp_explicit.json
    RESULT_VARIABLE cdiff)
if(NOT cdiff EQUAL 0)
    message(FATAL_ERROR
            "mem_noop_smoke: explicit flat/none campaign report "
            "differs from the default run — a gated key leaked")
endif()
