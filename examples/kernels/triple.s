.kernel triple  (regs 4, shared 0B)
  0:	S2R r0, #6
  1:	MOVI r1, #3
  2:	IMUL r2, r0, r1
  3:	SHLI r3, r0, #2
  4:	IADDI r3, r3, #256
  5:	STG r3, r2, [r3+0]
  6:	EXIT
