/**
 * @file
 * Protection-scheme shopping: run one Table-4 workload under every
 * error-detection scheme in the protection registry (Original,
 * R-Naive, R-Thread, DMTR, Warped-DMR, Partial-Thread,
 * Replay-Compare) and report time, coverage and energy side by side.
 *
 *   $ ./scheme_comparison [workload]      (default: MatrixMul)
 */

#include <cstdio>
#include <string>

#include "common/logging.hh"
#include "power/power_model.hh"
#include "redundancy/scheme.hh"

using namespace warped;

int
main(int argc, char **argv)
{
    setVerbose(false);
    const std::string name = argc > 1 ? argv[1] : "MatrixMul";

    auto cfg = arch::GpuConfig::paperDefault();
    power::PowerModel power_model(cfg);

    std::printf("Workload: %s on %s\n\n", name.c_str(),
                cfg.toString().c_str());
    std::printf("%-14s %12s %12s %12s %10s %12s\n", "scheme",
                "kernel(us)", "xfer(us)", "total(us)", "coverage",
                "energy(mJ)");

    using redundancy::Scheme;
    for (auto s : protection::allSchemes()) {
        const auto r = redundancy::runScheme(s, name, cfg);
        // R-Naive / R-Thread take the analytic Fig-10 path (their
        // launch is the unprotected kernel), so the instruction-level
        // coverage counter is only meaningful for the schemes whose
        // backend actually executed.
        const bool hw = s == Scheme::Dmtr || s == Scheme::WarpedDmr ||
                        s == Scheme::PartialThread ||
                        s == Scheme::ReplayCompare;
        std::printf("%-14s %12.1f %12.1f %12.1f",
                    redundancy::schemeName(s), r.kernelNs / 1e3,
                    r.transferNs / 1e3, r.totalNs() / 1e3);
        if (hw)
            std::printf(" %9.1f%%", 100.0 * r.launch.coverage());
        else if (s == Scheme::Original)
            std::printf(" %10s", "none");
        else
            std::printf(" %10s", "100%*");
        std::printf(" %12.2f\n", power_model.energyMj(r.launch));
    }
    std::printf("\n* R-Naive / R-Thread compare outputs on the CPU "
                "after the kernel: full\n  coverage but detection "
                "only at kernel granularity (late), and only for\n"
                "  errors that reach the output buffers.\n");
    return 0;
}
