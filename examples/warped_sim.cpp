/**
 * @file
 * warped_sim: the command-line driver — run any Table-4 workload (or
 * all of them) under a chosen protection configuration and print the
 * full statistics block. The "downstream user" front end.
 *
 *   $ ./warped_sim --help
 *   $ ./warped_sim MatrixMul --qsize 5 --mapping linear
 *   $ ./warped_sim all --dmr off
 *   $ ./warped_sim SHA --sampling 1000:250 --arbitrate --disasm
 */

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "fault/campaign_engine.hh"
#include "fault/shard.hh"
#include "stats/accumulator.hh"
#include "sim/chaos.hh"
#include "sim/shard_queue.hh"
#include "sim/stream.hh"
#include "sim/subprocess.hh"
#include "sim/transport.hh"
#include "gpu/report.hh"
#include "protection/scheme_registry.hh"
#include "trace/binary.hh"
#include "trace/export.hh"
#include "trace/metrics.hh"
#include "isa/assembler.hh"
#include "power/power_model.hh"
#include "workloads/workload.hh"

using namespace warped;

namespace {

struct Options
{
    std::string workload = "all";
    dmr::DmrConfig dmr = dmr::DmrConfig::paperDefault();
    protection::SchemeConfig scheme;
    unsigned numSms = 30;
    unsigned cluster = 4;
    unsigned schedulers = 1;
    arch::SchedPolicy sched = arch::SchedPolicy::LooseRoundRobin;
    bool bankConflicts = false;
    bool coalescing = false;
    bool contention = false;
    unsigned warpSize = 32;
    arch::MemModel memModel = arch::MemModel::Flat;
    arch::EccKind ecc = arch::EccKind::None;
    std::string kernelFile;
    unsigned kblocks = 4, kthreads = 128;
    bool disasm = false;
    bool verbose = false;
    bool report = false;
    bool json = false;
    unsigned trace = 0;
    std::string traceOut;
    std::string metricsOut;
};

/**
 * Output path for one workload's export: with a single workload the
 * given path is used verbatim; under "all" the workload name is
 * spliced in before the extension so runs don't clobber each other.
 */
std::string
exportPath(const std::string &base, const std::string &name, bool multi)
{
    if (!multi)
        return base;
    const auto dot = base.rfind('.');
    const auto slash = base.rfind('/');
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash))
        return base + "." + name;
    return base.substr(0, dot) + "." + name + base.substr(dot);
}

void
campaignUsage()
{
    std::printf(
        "usage: warped_sim campaign <workload> [options]\n"
        "\n"
        "Statistical fault-injection campaign: sample fault sites\n"
        "(SM x lane x bit x window x kind), classify each injected\n"
        "run as Masked/Detected/SDC/DUE against the golden run, and\n"
        "report coverage with Wilson 95%% confidence intervals\n"
        "(see docs/FAULT_MODEL.md).\n"
        "\n"
        "options:\n"
        "  --size N            workload size parameter (factory-\n"
        "                      specific; default = paper scale)\n"
        "  --sites N           fault sites to sample (default:\n"
        "                      derived from --moe)\n"
        "  --moe F             target 95%% margin of error when\n"
        "                      --sites is absent (default 0.01)\n"
        "  --kinds K[,K...]    transient,stuck0,stuck1 (default all)\n"
        "  --unit any|sp|sfu|ldst   unit axis of the site space\n"
        "  --windows N         transient pulse windows (default:\n"
        "                      one per cycle, capped at 4096)\n"
        "  --fault-domain exec|mem|both\n"
        "                      site-space domain: execution-lane\n"
        "                      sites (default), memory-cell sites\n"
        "                      (bank x row x column x bit x window\n"
        "                      over the workload footprint, classified\n"
        "                      as Masked/EccCorrected/Detected/SDC/\n"
        "                      DUE), or both\n"
        "  --mem-model flat|banked\n"
        "                      global-memory organization (default\n"
        "                      flat; banked adds per-bank open-row\n"
        "                      DRAM timing)\n"
        "  --ecc none|secded|chipkill\n"
        "                      memory ECC codec deciding what a cell\n"
        "                      upset decodes to on read (default none)\n"
        "  --sms N             SMs (default 4)\n"
        "  --seed N            campaign master seed (default 42)\n"
        "  --jobs N            worker threads (0 = hardware\n"
        "                      concurrency; output identical for\n"
        "                      every N; default 0)\n"
        "  --checkpoint F      periodic JSON state file; an existing\n"
        "                      matching file resumes the campaign\n"
        "  --checkpoint-every N  runs per checkpoint chunk "
        "(default 1000;\n"
        "                      N >= 1 — 0 is rejected)\n"
        "  --strata T          stratified sampling: T transient\n"
        "                      window buckets per unit (strata =\n"
        "                      unit x bucket; default off = uniform\n"
        "                      i.i.d. sampling). Reports add a\n"
        "                      weighted stratified coverage estimate\n"
        "                      with per-stratum Wilson CIs\n"
        "  --out F             write the campaign report JSON to F\n"
        "  --sched lrr|gto     warp scheduling policy (default lrr)\n"
        "  --schedulers N      schedulers per SM (default 1)\n"
        "  --dmr off | --no-intra | --no-inter | --no-shuffle |\n"
        "  --mapping linear|cross | --qsize N\n"
        "                      protection configuration under test\n"
        "  --scheme NAME       protection backend under test:\n"
        "                      original, r-naive, r-thread, dmtr,\n"
        "                      warped-dmr (default), partial-thread,\n"
        "                      replay-compare\n"
        "  --protect-frac F    protected warp-slot fraction for\n"
        "                      --scheme partial-thread (default 1.0)\n"
        "  --scheme-sweep      run the campaign once per backend over\n"
        "                      the same site axes and emit one merged\n"
        "                      JSON (sweep.<scheme>.* keys) plus a\n"
        "                      coverage/overhead Pareto table\n"
        "  --recovery          enable rollback-replay recovery:\n"
        "                      detected mismatches are repaired in\n"
        "                      place and classify as Recovered\n"
        "  --recovery-budget N rollbacks allowed per incident window\n"
        "                      before the warp gives up (default 3;\n"
        "                      implies --recovery)\n"
        "  --recovery-ring N   checkpoint deltas retained per SM\n"
        "                      (default 4096; implies --recovery)\n"
        "  --recovery-penalty N  stall cycles after a rollback\n"
        "                      (default 8; implies --recovery)\n"
        "\n"
        "Sharded service (see docs/CAMPAIGN_SERVICE.md):\n"
        "  warped_sim serve <workload> [campaign options] --shards N\n"
        "  warped_sim shard <workload> [campaign options]\n"
        "             --shard-index I --shard-count N --delta-out F\n");
}

void
serveUsage()
{
    std::printf(
        "usage: warped_sim serve <workload> [campaign options] "
        "--shards N [options]\n"
        "       warped_sim shard <workload> [campaign options] "
        "--shard-index I\n"
        "                  --shard-count N --delta-out F "
        "[--expect-signature S]\n"
        "       warped_sim shard <workload> [campaign options] "
        "--connect HOST:PORT\n"
        "\n"
        "Sharded campaign service: `serve` splits the campaign into\n"
        "N deterministic run-index shards, dispatches them to worker\n"
        "processes (`warped_sim shard`), folds each worker's counter\n"
        "delta into a mergeable aggregate, and re-issues any shard\n"
        "whose worker dies, hangs, or delivers a corrupt delta. The\n"
        "final report is byte-identical to a single-process\n"
        "`warped_sim campaign` run with the same options, for every\n"
        "shard count, worker count, transport mix, and failure\n"
        "schedule (docs/CAMPAIGN_SERVICE.md).\n"
        "\n"
        "Workers reach the orchestrator two ways: spawned locally as\n"
        "subprocesses (the default), or connecting over TCP when\n"
        "serve is given --listen and workers are started with\n"
        "--connect. Socket frames are length-prefixed and\n"
        "CRC-checked; hung remote workers are detected by heartbeat\n"
        "silence.\n"
        "\n"
        "All `warped_sim campaign` options except --checkpoint,\n"
        "--checkpoint-every and --scheme-sweep apply; notably\n"
        "--strata T enables stratified sampling.\n"
        "\n"
        "serve options:\n"
        "  --shards N          shard count (required, >= 1)\n"
        "  --workers K         concurrent dispatcher slots "
        "(default 1)\n"
        "  --state F           crash-safe aggregator state file; an\n"
        "                      existing matching file resumes with\n"
        "                      only the unfolded shards outstanding\n"
        "  --out F             write the final report JSON to F\n"
        "  --listen HOST:PORT  also accept socket workers (port 0 =\n"
        "                      ephemeral; see --port-file)\n"
        "  --port-file F       write the bound listen port to F\n"
        "  --heartbeat MS      heartbeat interval advertised to\n"
        "                      socket workers (default 250; a worker\n"
        "                      silent for 8x MS is declared hung)\n"
        "  --shard-deadline MS hard per-shard wall-clock deadline on\n"
        "                      any transport (default: none; hung\n"
        "                      subprocess workers need this)\n"
        "  --grace MS          how long to wait for an idle socket\n"
        "                      worker before degrading a shard to a\n"
        "                      local subprocess (default 1500)\n"
        "  --no-local-fallback never degrade to local subprocesses;\n"
        "                      wait for socket workers indefinitely\n"
        "  --strikes N         consecutive failures of one shard\n"
        "                      before the campaign aborts (default\n"
        "                      3; raise it for deliberately hostile\n"
        "                      networks, e.g. chaos drills)\n"
        "  --kill-worker-for-shard I\n"
        "                      fault drill: SIGKILL shard I's local\n"
        "                      worker on its first attempt,\n"
        "                      exercising the re-issue path\n"
        "  --hang-worker-for-shard I\n"
        "                      fault drill: shard I's first worker\n"
        "                      hangs (sleeps --hang-ms) instead of\n"
        "                      computing, exercising the deadline /\n"
        "                      heartbeat re-issue path\n"
        "  --hang-ms MS        hang-drill duration (default 30000)\n"
        "\n"
        "shard options (normally supplied by serve):\n"
        "  --shard-index I     which shard of the plan to run\n"
        "  --shard-count N     total shards in the plan\n"
        "  --delta-out F       where to write the delta JSON "
        "(atomic)\n"
        "  --expect-signature S  refuse to run (exit 3) unless this\n"
        "                      worker derives configuration "
        "signature S\n"
        "  --connect HOST:PORT serve shards over a socket instead of\n"
        "                      running one from flags; deltas stream\n"
        "                      back as CRC-checked frames and the\n"
        "                      orchestrator validates the signature\n"
        "                      at the Hello handshake (mismatch =>\n"
        "                      exit 3)\n"
        "  --connect-attempts N  consecutive failed connects before\n"
        "                      giving up (default 8; backoff doubles\n"
        "                      from 50ms, capped at 2s)\n"
        "  --chaos SPEC        wrap the connection in a seeded fault\n"
        "                      injector, e.g.\n"
        "                      seed=7,drop=0.1,dup=0.1,corrupt=0.05,\n"
        "                      trunc=0.05,disc=0.02,delay=5,"
        "delayp=0.2\n"
        "  --hang-for-shard I  drill: go silent on shard I once\n"
        "                      (socket), or sleep before computing\n"
        "                      (file mode)\n"
        "  --hang-ms MS        how long the drill hangs "
        "(default 10000)\n");
}

void usage();

/**
 * Strict numeric flag parsing. Every numeric option goes through
 * these: the whole argument must be digits (no sign, no trailing
 * junk) and in range for the destination, or the relevant usage text
 * is printed and the process exits 2. The previous prefix-accepting
 * strtoul calls silently turned `--sites banana` into a zero-site
 * campaign.
 */
[[noreturn]] void
badNumericArg(const char *flag, const char *text, bool campaign)
{
    std::fprintf(stderr, "warped_sim: bad numeric value '%s' for %s\n",
                 text ? text : "", flag);
    if (campaign)
        campaignUsage();
    else
        usage();
    std::exit(2);
}

std::uint64_t
parseU64Arg(const char *flag, const char *text, bool campaign,
            std::uint64_t max = ~std::uint64_t{0})
{
    if (!text || !std::isdigit(static_cast<unsigned char>(text[0])))
        badNumericArg(flag, text, campaign);
    char *end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(text, &end, 10);
    if (errno != 0 || *end != '\0' || v > max)
        badNumericArg(flag, text, campaign);
    return v;
}

unsigned
parseU32Arg(const char *flag, const char *text, bool campaign)
{
    return static_cast<unsigned>(
        parseU64Arg(flag, text, campaign, 0xFFFFFFFFull));
}

double
parseF64Arg(const char *flag, const char *text, bool campaign)
{
    if (!text || !*text)
        badNumericArg(flag, text, campaign);
    char *end = nullptr;
    errno = 0;
    const double v = std::strtod(text, &end);
    if (errno != 0 || end == text || *end != '\0' ||
        !std::isfinite(v))
        badNumericArg(flag, text, campaign);
    return v;
}

/**
 * Strict HOST:PORT parsing for --listen / --connect. The host may be
 * empty in --listen position ("":PORT binds every interface via
 * 0.0.0.0); the port must be a plain decimal in [0, 65535]. Anything
 * else exits 2 with the serve usage, like every other malformed
 * option.
 */
void
parseHostPortArg(const char *flag, const char *text, std::string &host,
                 std::uint16_t &port, bool allowEmptyHost)
{
    const char *colon = text ? std::strrchr(text, ':') : nullptr;
    if (!colon) {
        std::fprintf(stderr,
                     "warped_sim: %s expects HOST:PORT, got '%s'\n",
                     flag, text ? text : "");
        serveUsage();
        std::exit(2);
    }
    host.assign(text, colon);
    if (host.empty()) {
        if (!allowEmptyHost) {
            std::fprintf(stderr,
                         "warped_sim: %s needs a host before the "
                         "colon\n",
                         flag);
            serveUsage();
            std::exit(2);
        }
        host = "0.0.0.0";
    }
    port = static_cast<std::uint16_t>(
        parseU64Arg(flag, colon + 1, true, 65535));
}

/**
 * Strict scheme-name resolution: only the canonical CLI slugs from
 * the protection registry are accepted; anything else prints the
 * valid set and the usage text and exits 2 (same contract as the
 * numeric options — no prefix or case forgiveness).
 */
protection::SchemeId
parseSchemeArg(const char *text, bool campaign)
{
    if (text) {
        if (const auto id = protection::schemeFromName(text))
            return *id;
    }
    std::fprintf(stderr,
                 "warped_sim: unknown scheme '%s' (expected one of:",
                 text ? text : "");
    for (const auto id : protection::allSchemes())
        std::fprintf(stderr, " %s", protection::schemeCliName(id));
    std::fprintf(stderr, ")\n");
    if (campaign)
        campaignUsage();
    else
        usage();
    std::exit(2);
}

double
parseProtectFracArg(const char *text, bool campaign)
{
    const double f = parseF64Arg("--protect-frac", text, campaign);
    if (f < 0.0 || f > 1.0)
        badNumericArg("--protect-frac (expects [0,1])",
                      text, campaign);
    return f;
}

/** Strict `--mem-model` resolution: exactly "flat" or "banked",
 *  anything else exits 2 with usage (same contract as --scheme). */
arch::MemModel
parseMemModelArg(const char *text, bool campaign)
{
    if (text) {
        if (std::strcmp(text, "flat") == 0)
            return arch::MemModel::Flat;
        if (std::strcmp(text, "banked") == 0)
            return arch::MemModel::Banked;
    }
    std::fprintf(stderr,
                 "warped_sim: unknown memory model '%s' (expected "
                 "flat or banked)\n",
                 text ? text : "");
    if (campaign)
        campaignUsage();
    else
        usage();
    std::exit(2);
}

/** Strict `--ecc` resolution: none, secded or chipkill. */
arch::EccKind
parseEccArg(const char *text, bool campaign)
{
    if (text) {
        if (std::strcmp(text, "none") == 0)
            return arch::EccKind::None;
        if (std::strcmp(text, "secded") == 0)
            return arch::EccKind::Secded;
        if (std::strcmp(text, "chipkill") == 0)
            return arch::EccKind::Chipkill;
    }
    std::fprintf(stderr,
                 "warped_sim: unknown ECC codec '%s' (expected none, "
                 "secded or chipkill)\n",
                 text ? text : "");
    if (campaign)
        campaignUsage();
    else
        usage();
    std::exit(2);
}

enum class Domain
{
    Exec,
    Mem,
    Both
};

/**
 * Everything the campaign-family subcommands (campaign / serve /
 * shard) share: the engine configuration under assembly, the machine
 * knobs that finalize into it, and the raw flag list to replay on a
 * worker command line (orchestrator-only flags are withheld).
 */
struct CampaignCli
{
    std::string workload;
    fault::EngineConfig ec;
    unsigned sms = 4;
    unsigned size = 0;
    unsigned schedulers = 0;
    arch::SchedPolicy sched = arch::SchedPolicy::LooseRoundRobin;
    bool schedSet = false;
    bool sweep = false;
    arch::MemModel memModel = arch::MemModel::Flat;
    arch::EccKind ecc = arch::EccKind::None;
    Domain domain = Domain::Exec;
    std::string outPath;
    /** Campaign-level flags, verbatim, for worker command lines. */
    std::vector<std::string> passThrough;
};

/**
 * Parse the campaign-level option at argv[i], advancing i past its
 * value(s). Returns false when the option is not a campaign-level
 * one (the caller owns its mode-specific flags). Malformed values
 * exit 2 through the strict parsers above.
 */
bool
parseCampaignArg(int argc, char **argv, int &i, CampaignCli &c)
{
    const std::string a = argv[i];
    const int start = i;
    auto next = [&]() -> const char * {
        return i + 1 < argc ? argv[++i] : nullptr;
    };
    // Orchestrator-only flags must not replicate onto workers: a
    // worker writing the orchestrator's checkpoint/out files would
    // race it.
    bool forward = true;
    const char *v = nullptr;
    fault::EngineConfig &ec = c.ec;
    if (a == "--size") {
        c.size = parseU32Arg("--size", next(), true);
    } else if (a == "--sites") {
        ec.sites = parseU64Arg("--sites", next(), true);
    } else if (a == "--moe") {
        ec.marginOfError = parseF64Arg("--moe", next(), true);
    } else if (a == "--kinds") {
        if (!(v = next())) {
            campaignUsage();
            std::exit(2);
        }
        ec.space.kinds.clear();
        for (const char *p = v; *p;) {
            const char *comma = std::strchr(p, ',');
            const std::string k =
                comma ? std::string(p, comma) : std::string(p);
            if (k == "transient")
                ec.space.kinds.push_back(
                    fault::FaultKind::TransientBitFlip);
            else if (k == "stuck0")
                ec.space.kinds.push_back(
                    fault::FaultKind::StuckAtZero);
            else if (k == "stuck1")
                ec.space.kinds.push_back(
                    fault::FaultKind::StuckAtOne);
            else {
                campaignUsage();
                std::exit(2);
            }
            if (!comma)
                break;
            p = comma + 1;
        }
        if (ec.space.kinds.empty()) {
            campaignUsage();
            std::exit(2);
        }
    } else if (a == "--unit") {
        if (!(v = next())) {
            campaignUsage();
            std::exit(2);
        }
        if (std::strcmp(v, "any") == 0)
            ec.space.units = {std::nullopt};
        else if (std::strcmp(v, "sp") == 0)
            ec.space.units = {isa::UnitType::SP};
        else if (std::strcmp(v, "sfu") == 0)
            ec.space.units = {isa::UnitType::SFU};
        else if (std::strcmp(v, "ldst") == 0)
            ec.space.units = {isa::UnitType::LDST};
        else {
            campaignUsage();
            std::exit(2);
        }
    } else if (a == "--windows") {
        ec.space.cycleWindows = parseU32Arg("--windows", next(), true);
    } else if (a == "--strata") {
        v = next();
        const auto n = parseU32Arg("--strata", v, true);
        if (n == 0)
            badNumericArg("--strata (expects >= 1)", v, true);
        ec.strataWindows = n;
    } else if (a == "--sms") {
        c.sms = parseU32Arg("--sms", next(), true);
    } else if (a == "--seed") {
        ec.seed = parseU64Arg("--seed", next(), true);
    } else if (a == "--jobs") {
        ec.jobs = parseU32Arg("--jobs", next(), true);
    } else if (a == "--checkpoint") {
        forward = false;
        if (!(v = next())) {
            campaignUsage();
            std::exit(2);
        }
        ec.checkpointPath = v;
    } else if (a == "--checkpoint-every") {
        forward = false;
        v = next();
        const auto n = parseU64Arg("--checkpoint-every", v, true);
        // Zero would disable periodic checkpointing while claiming
        // to configure it — reject outright (the engine would clamp,
        // but a nonsensical CLI value is a user error).
        if (n == 0)
            badNumericArg("--checkpoint-every (expects >= 1)", v,
                          true);
        ec.checkpointEvery = n;
    } else if (a == "--out") {
        forward = false;
        if (!(v = next())) {
            campaignUsage();
            std::exit(2);
        }
        c.outPath = v;
    } else if (a == "--dmr") {
        if ((v = next()) && std::strcmp(v, "off") == 0)
            ec.dmr = dmr::DmrConfig::off();
    } else if (a == "--no-intra") {
        ec.dmr.intraWarp = false;
    } else if (a == "--no-inter") {
        ec.dmr.interWarp = false;
    } else if (a == "--no-shuffle") {
        ec.dmr.laneShuffle = false;
    } else if (a == "--mapping") {
        if (!(v = next())) {
            campaignUsage();
            std::exit(2);
        }
        ec.dmr.mapping = std::strcmp(v, "linear") == 0
                             ? dmr::MappingPolicy::Linear
                             : dmr::MappingPolicy::CrossCluster;
    } else if (a == "--qsize") {
        ec.dmr.replayQSize = parseU32Arg("--qsize", next(), true);
    } else if (a == "--recovery") {
        ec.recovery.enabled = true;
    } else if (a == "--recovery-budget") {
        ec.recovery.enabled = true;
        ec.recovery.retryBudget =
            parseU32Arg("--recovery-budget", next(), true);
    } else if (a == "--recovery-ring") {
        ec.recovery.enabled = true;
        ec.recovery.ringCapacity =
            parseU32Arg("--recovery-ring", next(), true);
    } else if (a == "--recovery-penalty") {
        ec.recovery.enabled = true;
        ec.recovery.rollbackPenalty =
            parseU32Arg("--recovery-penalty", next(), true);
    } else if (a == "--scheme") {
        ec.scheme.id = parseSchemeArg(next(), true);
    } else if (a == "--protect-frac") {
        ec.scheme.protectFraction = parseProtectFracArg(next(), true);
    } else if (a == "--scheme-sweep") {
        forward = false;
        c.sweep = true;
    } else if (a == "--mem-model") {
        c.memModel = parseMemModelArg(next(), true);
    } else if (a == "--ecc") {
        c.ecc = parseEccArg(next(), true);
    } else if (a == "--fault-domain") {
        if (!(v = next())) {
            campaignUsage();
            std::exit(2);
        }
        if (std::strcmp(v, "exec") == 0)
            c.domain = Domain::Exec;
        else if (std::strcmp(v, "mem") == 0)
            c.domain = Domain::Mem;
        else if (std::strcmp(v, "both") == 0)
            c.domain = Domain::Both;
        else {
            std::fprintf(stderr,
                         "warped_sim: unknown fault domain '%s' "
                         "(expected exec, mem or both)\n",
                         v);
            campaignUsage();
            std::exit(2);
        }
    } else if (a == "--sched") {
        if (!(v = next())) {
            campaignUsage();
            std::exit(2);
        }
        c.sched = std::strcmp(v, "gto") == 0
                      ? arch::SchedPolicy::GreedyThenOldest
                      : arch::SchedPolicy::LooseRoundRobin;
        c.schedSet = true;
    } else if (a == "--schedulers") {
        c.schedulers = parseU32Arg("--schedulers", next(), true);
    } else {
        return false;
    }
    if (forward)
        for (int j = start; j <= i; ++j)
            c.passThrough.push_back(argv[j]);
    return true;
}

/** Resolve the machine knobs into the engine configuration. */
void
finalizeCampaignConfig(CampaignCli &c)
{
    c.ec.workload = c.workload;
    c.ec.gpu = arch::GpuConfig::testDefault();
    c.ec.gpu.numSms = c.sms;
    if (c.schedSet)
        c.ec.gpu.schedPolicy = c.sched;
    if (c.schedulers)
        c.ec.gpu.numSchedulers = c.schedulers;
    c.ec.gpu.memModel = c.memModel;
    c.ec.gpu.eccKind = c.ecc;
    c.ec.space.execEnabled = c.domain != Domain::Mem;
    c.ec.space.memEnabled = c.domain != Domain::Exec;
}

/** Crash-atomic text file write: tmp + rename, the same discipline
 *  as the engine's checkpoints. */
bool
writeTextAtomic(const std::string &path, const std::string &text)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream f(tmp);
        if (!f)
            return false;
        f << text;
    }
    return std::rename(tmp.c_str(), path.c_str()) == 0;
}

void
printCampaignHeader(const CampaignCli &c, const char *verb)
{
    std::printf("%s: %s (size %s), seed %llu, machine: %s\n", verb,
                c.workload.c_str(),
                c.size ? std::to_string(c.size).c_str() : "default",
                static_cast<unsigned long long>(c.ec.seed),
                c.ec.gpu.toString().c_str());
    if (c.ec.recovery.enabled)
        std::printf("  %s\n", c.ec.recovery.toString().c_str());
    if (!c.sweep && c.ec.scheme.id != protection::SchemeId::WarpedDmr)
        std::printf("  scheme: %s\n",
                    protection::schemeDisplayName(c.ec.scheme.id));
    if (c.ec.strataWindows)
        std::printf("  stratified sampling: %u window buckets per "
                    "unit\n",
                    c.ec.strataWindows);
    if (c.domain != Domain::Exec) {
        std::printf("  fault domain: %s\n",
                    c.domain == Domain::Mem ? "mem" : "both");
        if (!protection::schemeCoversMemory(c.ec.scheme.id))
            std::printf("  note: scheme %s cannot observe "
                        "memory-data faults; ECC (%s) is the only "
                        "memory-side protection\n",
                        protection::schemeDisplayName(c.ec.scheme.id),
                        arch::eccKindName(c.ec.gpu.eccKind));
    }
}

/**
 * `campaign <workload> --scheme-sweep`: one self-contained campaign
 * per protection backend over the SAME site axes (kinds, units,
 * windows, seed, sample count), merged into a single metrics JSON
 * under `sweep.<scheme>.*` keys plus a printed Pareto table.
 *
 * Each backend's golden run executes UNDER that backend, so its span
 * already contains the scheme's stall/replay cycles: the overhead
 * column is span / Original-span - 1, the Fig-10 x-axis, while the
 * coverage column (with its Wilson CI) is the y-axis. Original runs
 * first to anchor the baseline.
 */
int
schemeSweep(const std::string &workload, unsigned size,
            const fault::EngineConfig &base, const std::string &outPath)
{
    struct Row
    {
        protection::SchemeId id;
        std::uint64_t span = 0, sampled = 0, detected = 0;
        std::uint64_t sdc = 0, due = 0, masked = 0;
        double cov = 0, lo = 0, hi = 0, overhead = 0;
    };
    std::vector<Row> rows;
    trace::MetricsRegistry merged;
    std::uint64_t baseSpan = 0;

    for (const auto id : protection::allSchemes()) {
        fault::EngineConfig ec = base;
        ec.scheme.id = id;
        if (id != protection::SchemeId::PartialThread)
            ec.scheme.protectFraction = 1.0;
        // Per-scheme campaigns are self-contained; a shared
        // checkpoint file would clobber across backends.
        ec.checkpointPath.clear();
        if (ec.recovery.enabled &&
            !protection::schemeSupportsRecovery(id)) {
            std::printf("  (recovery disabled for %s: no "
                        "per-instruction detection)\n",
                        protection::schemeDisplayName(id));
            ec.recovery = {};
        }
        std::printf("sweep: %s ...\n",
                    protection::schemeDisplayName(id));
        std::fflush(stdout);

        fault::CampaignEngine engine(
            [&] {
                return workloads::makeByNameSized(workload, size);
            },
            ec);
        const auto rep = engine.run();
        if (id == protection::SchemeId::Original)
            baseSpan = rep.span; // enum order runs Original first

        Row r;
        r.id = id;
        r.span = rep.span;
        r.sampled = rep.sampled;
        r.detected = rep.overall.detected + rep.overall.recovered;
        r.sdc = rep.overall.sdc;
        r.due = rep.overall.due;
        r.masked = rep.overall.masked;
        r.cov = rep.overall.coverage();
        const auto ci = rep.overall.coverageCi();
        r.lo = ci.lo;
        r.hi = ci.hi;
        r.overhead = baseSpan ? double(r.span) / double(baseSpan) - 1.0
                              : 0.0;
        rows.push_back(r);

        const std::string k =
            std::string("sweep.") + protection::schemeCliName(id);
        merged.counter(k + ".span") = r.span;
        merged.counter(k + ".sampled") = r.sampled;
        merged.counter(k + ".detected") = r.detected;
        merged.counter(k + ".sdc") = r.sdc;
        merged.counter(k + ".due") = r.due;
        merged.counter(k + ".masked") = r.masked;
        merged.gauge(k + ".coverage") = r.cov;
        merged.gauge(k + ".coverage.wilson_lo") = r.lo;
        merged.gauge(k + ".coverage.wilson_hi") = r.hi;
        merged.gauge(k + ".overhead") = r.overhead;
    }

    std::printf("\n%-16s %9s  %-18s %9s  %9s %9s %7s %7s\n",
                "scheme", "coverage", "Wilson 95% CI", "overhead",
                "span", "sampled", "SDC", "DUE");
    for (const auto &r : rows)
        std::printf("%-16s %8.2f%%  [%6.2f, %6.2f]   %+8.2f%%  "
                    "%9llu %9llu %7llu %7llu\n",
                    protection::schemeDisplayName(r.id), 100 * r.cov,
                    100 * r.lo, 100 * r.hi, 100 * r.overhead,
                    static_cast<unsigned long long>(r.span),
                    static_cast<unsigned long long>(r.sampled),
                    static_cast<unsigned long long>(r.sdc),
                    static_cast<unsigned long long>(r.due));

    if (!outPath.empty()) {
        std::ofstream f(outPath);
        if (!f) {
            std::fprintf(stderr, "cannot open %s\n", outPath.c_str());
            return 1;
        }
        f << merged.toJson();
        std::printf("\nsweep JSON written to %s\n", outPath.c_str());
    }
    return 0;
}

/** The human-readable statistics block shared by `campaign` and
 *  `serve` — everything derives from the mergeable counters in the
 *  report, so a folded shard aggregate prints byte-identically to a
 *  single-process run. */
void
printCampaignReport(const fault::CampaignReport &rep)
{
    const auto &o = rep.overall;
    std::printf("\nsite space: %llu sites, sampled %llu "
                "(golden span %llu cycles)\n",
                static_cast<unsigned long long>(rep.spaceSize),
                static_cast<unsigned long long>(rep.sampled),
                static_cast<unsigned long long>(rep.span));
    const auto frac = [&](std::uint64_t n) {
        return o.total() ? 100.0 * double(n) / double(o.total())
                         : 0.0;
    };
    std::printf("  masked:    %8llu  (%5.2f%%, %llu never "
                "activated)\n",
                static_cast<unsigned long long>(o.masked),
                frac(o.masked),
                static_cast<unsigned long long>(o.notActivated));
    std::printf("  detected:  %8llu  (%5.2f%%)\n",
                static_cast<unsigned long long>(o.detected),
                frac(o.detected));
    if (rep.recoveryEnabled)
        std::printf("  recovered: %8llu  (%5.2f%%)\n",
                    static_cast<unsigned long long>(o.recovered),
                    frac(o.recovered));
    if (rep.memEnabled)
        std::printf("  ecc-fixed: %8llu  (%5.2f%%)\n",
                    static_cast<unsigned long long>(o.eccCorrected),
                    frac(o.eccCorrected));
    std::printf("  SDC:       %8llu  (%5.2f%%)\n",
                static_cast<unsigned long long>(o.sdc), frac(o.sdc));
    std::printf("  DUE:       %8llu  (%5.2f%%)\n",
                static_cast<unsigned long long>(o.due), frac(o.due));

    const auto cov = o.coverageCi();
    const auto det = o.detectionCi();
    std::printf("\ncoverage (detected / sampled):        %6.2f%%  "
                "Wilson 95%% CI [%5.2f, %5.2f]\n",
                100 * o.coverage(), 100 * cov.lo, 100 * cov.hi);
    std::printf("detection rate (of non-masked):       %6.2f%%  "
                "Wilson 95%% CI [%5.2f, %5.2f]\n",
                100 * o.detectionRate(), 100 * det.lo, 100 * det.hi);
    if (rep.latencyCount)
        std::printf("mean detection latency: %.1f cycles over %llu "
                    "detections (kernel length %.0f)\n",
                    rep.meanDetectionLatency(),
                    static_cast<unsigned long long>(rep.latencyCount),
                    double(rep.kernelLengthSum) /
                        double(rep.latencyCount));
    if (rep.recoveryEnabled) {
        const auto consequential = o.detected + o.recovered;
        const auto rfrac =
            consequential ? 100.0 * double(o.recovered) /
                                double(consequential)
                          : 0.0;
        std::printf("recovered fraction (of detections):   %6.2f%%  "
                    "(%llu rollbacks, %llu give-ups)\n",
                    rfrac,
                    static_cast<unsigned long long>(rep.rollbacks),
                    static_cast<unsigned long long>(rep.giveUps));
        if (rep.recoveryCount)
            std::printf("mean recovery latency: %.1f cycles over "
                        "%llu recoveries\n",
                        rep.meanRecoveryCycles(),
                        static_cast<unsigned long long>(
                            rep.recoveryCount));
        if (rep.abortedRuns)
            std::printf("aborted runs retried then classified as "
                        "DUE: %llu\n",
                        static_cast<unsigned long long>(
                            rep.abortedRuns));
    }

    if (!rep.byKind.empty()) {
        std::printf("\nper-kind coverage:\n");
        for (const auto &[kind, c] : rep.byKind) {
            const auto ci = c.coverageCi();
            std::printf("  %-18s %6.2f%%  [%5.2f, %5.2f]  "
                        "(%llu sampled)\n",
                        faultKindName(kind), 100 * c.coverage(),
                        100 * ci.lo, 100 * ci.hi,
                        static_cast<unsigned long long>(c.total()));
        }
    }

    if (rep.memEnabled) {
        const auto t = o.total();
        const auto escaped = o.sdc + o.due;
        const auto esc = stats::wilsonInterval(escaped, t);
        std::printf("\nescaped ECC and DMR (SDC+DUE):        %6.2f%%"
                    "  Wilson 95%% CI [%5.2f, %5.2f]\n",
                    t ? 100.0 * double(escaped) / double(t) : 0.0,
                    100 * esc.lo, 100 * esc.hi);
        if (!rep.byMemKind.empty()) {
            std::printf("\nper-memory-kind outcomes "
                        "(ecc-fixed / escaped):\n");
            for (const auto &[kind, c] : rep.byMemKind) {
                const auto kt = c.total();
                const auto kfrac = [&](std::uint64_t n) {
                    return kt ? 100.0 * double(n) / double(kt) : 0.0;
                };
                std::printf("  %-18s %6.2f%% / %6.2f%%  "
                            "(%llu sampled)\n",
                            mem::memFaultKindSlug(kind),
                            kfrac(c.eccCorrected),
                            kfrac(c.sdc + c.due),
                            static_cast<unsigned long long>(kt));
            }
        }
    }

    if (rep.strataWindows && !rep.stratumSizes.empty()) {
        std::vector<std::string> labels;
        std::vector<std::uint64_t> sizes;
        for (const auto &[label, sz] : rep.stratumSizes) {
            labels.push_back(label);
            sizes.push_back(sz);
        }
        stats::StratifiedEstimator est(sizes);
        for (std::size_t h = 0; h < labels.size(); ++h) {
            const auto it = rep.byStratum.find(labels[h]);
            if (it == rep.byStratum.end())
                continue;
            est.addCounts(h,
                          fault::CampaignReport::caught(it->second),
                          it->second.total());
        }
        const auto ci = est.interval();
        const auto pooled = est.pooledWilson();
        std::printf("\nstratified coverage estimate:         %6.2f%%"
                    "  95%% CI [%5.2f, %5.2f]\n",
                    100 * est.estimate(), 100 * ci.lo, 100 * ci.hi);
        std::printf("  (%llu strata over %llu sites; pooled Wilson "
                    "width %.3f vs stratified %.3f)\n",
                    static_cast<unsigned long long>(labels.size()),
                    static_cast<unsigned long long>(est.population()),
                    pooled.hi - pooled.lo, ci.hi - ci.lo);
    }
}

/** Write the mergeable flat-counter report JSON, crash-atomically —
 *  a torn report file is as useless as a torn checkpoint. */
int
writeReportJson(const fault::CampaignReport &rep,
                const std::string &outPath)
{
    if (outPath.empty())
        return 0;
    if (!writeTextAtomic(outPath, rep.toJson())) {
        std::fprintf(stderr, "cannot write %s\n", outPath.c_str());
        return 1;
    }
    std::printf("\nreport JSON written to %s\n", outPath.c_str());
    return 0;
}

int
campaignMain(int argc, char **argv)
{
    if (argc < 3) {
        campaignUsage();
        return 2;
    }
    CampaignCli c;
    c.workload = argv[2];
    c.ec.jobs = 0;

    for (int i = 3; i < argc; ++i) {
        if (!parseCampaignArg(argc, argv, i, c)) {
            std::fprintf(stderr, "unknown campaign option %s\n",
                         argv[i]);
            campaignUsage();
            return 2;
        }
    }
    finalizeCampaignConfig(c);
    printCampaignHeader(c, "campaign");

    if (c.sweep)
        return schemeSweep(c.workload, c.size, c.ec, c.outPath);

    fault::CampaignEngine engine(
        [&] {
            return workloads::makeByNameSized(c.workload, c.size);
        },
        c.ec);
    fault::CampaignReport rep;
    try {
        rep = engine.run();
    } catch (const fault::CheckpointError &e) {
        std::fprintf(stderr,
                     "campaign: checkpoint %s is unusable: %s\n"
                     "  (delete it to restart from scratch, or "
                     "restore an intact copy)\n",
                     c.ec.checkpointPath.c_str(), e.what());
        return 1;
    }
    printCampaignReport(rep);
    return writeReportJson(rep, c.outPath);
}

/**
 * `warped_sim shard`: run one shard of a campaign plan and write the
 * delta document (crash-atomically). Normally spawned by `serve`, but
 * equally runnable by hand on another machine — the delta file is the
 * whole protocol.
 */
int
shardMain(int argc, char **argv)
{
    if (argc < 3) {
        serveUsage();
        return 2;
    }
    CampaignCli c;
    c.workload = argv[2];
    c.ec.jobs = 0;
    std::uint64_t shardIndex = 0, shardCount = 0;
    std::uint64_t expectSig = 0;
    bool haveIndex = false, haveCount = false, haveSig = false;
    std::string deltaOut;
    std::string connectHost;
    std::uint16_t connectPort = 0;
    bool haveConnect = false;
    unsigned connectAttempts = 8;
    sim::ChaosConfig chaos;
    std::uint64_t hangShard = sim::kNoShard;
    std::uint64_t hangMs = 10000;

    for (int i = 3; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (a == "--shard-index") {
            shardIndex = parseU64Arg("--shard-index", next(), true);
            haveIndex = true;
        } else if (a == "--shard-count") {
            shardCount = parseU64Arg("--shard-count", next(), true);
            haveCount = true;
        } else if (a == "--expect-signature") {
            expectSig =
                parseU64Arg("--expect-signature", next(), true);
            haveSig = true;
        } else if (a == "--delta-out") {
            const char *v = next();
            if (!v) {
                serveUsage();
                return 2;
            }
            deltaOut = v;
        } else if (a == "--connect") {
            parseHostPortArg("--connect", next(), connectHost,
                             connectPort, false);
            haveConnect = true;
        } else if (a == "--connect-attempts") {
            const char *v = next();
            connectAttempts =
                parseU32Arg("--connect-attempts", v, true);
            if (connectAttempts == 0)
                badNumericArg("--connect-attempts (expects >= 1)", v,
                              true);
        } else if (a == "--chaos") {
            const char *v = next();
            if (!v) {
                serveUsage();
                return 2;
            }
            try {
                chaos = sim::ChaosConfig::parse(v);
            } catch (const std::invalid_argument &e) {
                std::fprintf(stderr, "warped_sim: %s\n", e.what());
                serveUsage();
                return 2;
            }
        } else if (a == "--hang-for-shard") {
            hangShard = parseU64Arg("--hang-for-shard", next(), true);
        } else if (a == "--hang-ms") {
            hangMs = parseU64Arg("--hang-ms", next(), true);
        } else if (parseCampaignArg(argc, argv, i, c)) {
            // campaign-level option, already recorded
        } else {
            std::fprintf(stderr, "unknown shard option %s\n",
                         argv[i]);
            serveUsage();
            return 2;
        }
    }
    if (haveConnect) {
        // Socket mode: the assignment arrives over the wire, so the
        // file-mode selectors make no sense here.
        if (haveIndex || haveCount || !deltaOut.empty() || c.sweep) {
            std::fprintf(stderr,
                         "shard: --connect excludes --shard-index/"
                         "--shard-count/--delta-out\n");
            serveUsage();
            return 2;
        }
    } else if (!haveIndex || !haveCount || shardCount == 0 ||
               shardIndex >= shardCount || deltaOut.empty() ||
               c.sweep) {
        serveUsage();
        return 2;
    }
    finalizeCampaignConfig(c);
    // Workers never checkpoint: resumability is the orchestrator's
    // job, and per-worker checkpoint files would collide.
    c.ec.checkpointPath.clear();

    fault::CampaignEngine engine(
        [&] {
            return workloads::makeByNameSized(c.workload, c.size);
        },
        c.ec);
    engine.prepare();
    if (haveSig && engine.signature() != expectSig) {
        std::fprintf(stderr,
                     "shard %llu: this configuration derives "
                     "signature %llu, the orchestrator expects %llu "
                     "— mismatched command lines; refusing to run\n",
                     static_cast<unsigned long long>(shardIndex),
                     static_cast<unsigned long long>(
                         engine.signature()),
                     static_cast<unsigned long long>(expectSig));
        return 3;
    }

    if (haveConnect) {
        // One engine serves every assignment: runRange builds a
        // fresh skeleton per call, so the golden run is paid once
        // per worker process, not once per shard.
        sim::SocketWorkerConfig wc;
        wc.host = connectHost;
        wc.port = connectPort;
        wc.signature = engine.signature();
        wc.connectAttempts = connectAttempts;
        wc.chaos = chaos;
        wc.hangShard = hangShard;
        wc.hangMs = hangMs;
        wc.seed = engine.signature() ^ chaos.seed;
        const auto total = engine.plannedSites();
        return sim::runSocketWorker(
            wc,
            [&](std::uint64_t shard,
                std::uint64_t count) -> std::string {
                const auto plans = fault::planShards(total, count);
                if (shard >= plans.size())
                    throw std::runtime_error(
                        "assigned shard " + std::to_string(shard) +
                        " of a " + std::to_string(plans.size()) +
                        "-shard plan");
                const auto &plan =
                    plans[static_cast<std::size_t>(shard)];
                const auto rep =
                    engine.runRange(plan.base, plan.count);
                fault::ShardDelta d;
                d.shard = plan.index;
                d.base = plan.base;
                d.count = plan.count;
                d.signature = engine.signature();
                d.counters = rep.toMetrics().counters();
                std::fprintf(
                    stderr,
                    "shard %llu/%llu: runs [%llu, %llu) -> socket\n",
                    static_cast<unsigned long long>(shard),
                    static_cast<unsigned long long>(count),
                    static_cast<unsigned long long>(plan.base),
                    static_cast<unsigned long long>(plan.base +
                                                    plan.count));
                return d.toJson();
            });
    }

    if (hangShard == shardIndex) {
        // File-mode wedge drill: the orchestrator's --shard-deadline
        // is supposed to SIGKILL us mid-sleep and re-issue.
        std::fprintf(stderr,
                     "shard %llu: hang drill — sleeping %llums\n",
                     static_cast<unsigned long long>(shardIndex),
                     static_cast<unsigned long long>(hangMs));
        sim::sleepMs(hangMs);
    }

    const auto plans =
        fault::planShards(engine.plannedSites(), shardCount);
    const auto &plan =
        plans[static_cast<std::size_t>(shardIndex)];
    const auto rep = engine.runRange(plan.base, plan.count);

    fault::ShardDelta d;
    d.shard = plan.index;
    d.base = plan.base;
    d.count = plan.count;
    d.signature = engine.signature();
    d.counters = rep.toMetrics().counters();
    if (!writeTextAtomic(deltaOut, d.toJson())) {
        std::fprintf(stderr, "shard %llu: cannot write %s\n",
                     static_cast<unsigned long long>(shardIndex),
                     deltaOut.c_str());
        return 1;
    }
    std::fprintf(stderr,
                 "shard %llu/%llu: runs [%llu, %llu) -> %s\n",
                 static_cast<unsigned long long>(shardIndex),
                 static_cast<unsigned long long>(shardCount),
                 static_cast<unsigned long long>(plan.base),
                 static_cast<unsigned long long>(plan.base +
                                                 plan.count),
                 deltaOut.c_str());
    return 0;
}

/**
 * `warped_sim serve`: the campaign orchestrator. Splits the plan into
 * shards, dispatches worker processes over a work queue, folds each
 * delta into the aggregator (checkpointing the aggregate after every
 * fold when --state is given) and re-issues shards whose worker died.
 */
int
serveMain(int argc, char **argv)
{
    if (argc < 3) {
        serveUsage();
        return 2;
    }
    CampaignCli c;
    c.workload = argv[2];
    c.ec.jobs = 0;
    std::uint64_t shards = 0;
    unsigned workers = 1;
    std::uint64_t killShard = 0;
    bool haveKill = false;
    std::string statePath;
    std::string listenHost;
    std::uint16_t listenPort = 0;
    bool haveListen = false;
    std::string portFile;
    std::uint64_t heartbeatMs = 250;
    std::uint64_t deadlineMs = 0;
    std::uint64_t graceMs = 1500;
    bool noLocalFallback = false;
    unsigned strikes = 3;
    std::uint64_t hangShard = sim::kNoShard;
    std::uint64_t hangMs = 30000;

    for (int i = 3; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        const char *v = nullptr;
        if (a == "--shards") {
            v = next();
            shards = parseU64Arg("--shards", v, true);
            if (shards == 0)
                badNumericArg("--shards (expects >= 1)", v, true);
        } else if (a == "--workers") {
            v = next();
            workers = parseU32Arg("--workers", v, true);
            if (workers == 0)
                badNumericArg("--workers (expects >= 1)", v, true);
        } else if (a == "--state") {
            if (!(v = next())) {
                serveUsage();
                return 2;
            }
            statePath = v;
        } else if (a == "--listen") {
            parseHostPortArg("--listen", next(), listenHost,
                             listenPort, true);
            haveListen = true;
        } else if (a == "--port-file") {
            if (!(v = next())) {
                serveUsage();
                return 2;
            }
            portFile = v;
        } else if (a == "--heartbeat") {
            v = next();
            heartbeatMs = parseU64Arg("--heartbeat", v, true);
            if (heartbeatMs == 0)
                badNumericArg("--heartbeat (expects >= 1)", v, true);
        } else if (a == "--shard-deadline") {
            v = next();
            deadlineMs = parseU64Arg("--shard-deadline", v, true);
            if (deadlineMs == 0)
                badNumericArg("--shard-deadline (expects >= 1)", v,
                              true);
        } else if (a == "--grace") {
            v = next();
            graceMs = parseU64Arg("--grace", v, true);
            if (graceMs == 0)
                badNumericArg("--grace (expects >= 1)", v, true);
        } else if (a == "--no-local-fallback") {
            noLocalFallback = true;
        } else if (a == "--strikes") {
            v = next();
            strikes = parseU32Arg("--strikes", v, true);
            if (strikes == 0)
                badNumericArg("--strikes (expects >= 1)", v, true);
        } else if (a == "--kill-worker-for-shard") {
            killShard =
                parseU64Arg("--kill-worker-for-shard", next(), true);
            haveKill = true;
        } else if (a == "--hang-worker-for-shard") {
            hangShard = parseU64Arg("--hang-worker-for-shard",
                                    next(), true);
        } else if (a == "--hang-ms") {
            hangMs = parseU64Arg("--hang-ms", next(), true);
        } else if (parseCampaignArg(argc, argv, i, c)) {
            // campaign-level option, already recorded
        } else {
            std::fprintf(stderr, "unknown serve option %s\n",
                         argv[i]);
            serveUsage();
            return 2;
        }
    }
    if (shards == 0) {
        std::fprintf(stderr, "serve: --shards is required\n");
        serveUsage();
        return 2;
    }
    if (!haveListen && (noLocalFallback || !portFile.empty())) {
        std::fprintf(stderr,
                     "serve: %s only makes sense with --listen\n",
                     noLocalFallback ? "--no-local-fallback"
                                     : "--port-file");
        serveUsage();
        return 2;
    }
    if (c.sweep) {
        std::fprintf(stderr,
                     "serve: --scheme-sweep is not shardable "
                     "(run it under `warped_sim campaign`)\n");
        return 2;
    }
    finalizeCampaignConfig(c);
    // The aggregator state file is the orchestrator's resume surface;
    // engine checkpoints belong to single-process campaigns.
    c.ec.checkpointPath.clear();
    printCampaignHeader(c, "serve");

    fault::CampaignEngine engine(
        [&] {
            return workloads::makeByNameSized(c.workload, c.size);
        },
        c.ec);
    engine.prepare();
    const auto total = engine.plannedSites();
    const auto plans = fault::planShards(total, shards);
    fault::ShardAggregator agg(engine.skeleton(), engine.signature(),
                               total, shards);
    std::printf("serve: %llu runs in %llu shards, %u worker(s), "
                "signature %llu\n",
                static_cast<unsigned long long>(total),
                static_cast<unsigned long long>(shards), workers,
                static_cast<unsigned long long>(engine.signature()));

    if (!statePath.empty()) {
        std::ifstream f(statePath);
        if (f) {
            std::stringstream ss;
            ss << f.rdbuf();
            try {
                if (agg.loadState(ss.str()))
                    std::printf("serve: resumed %s (%llu of %llu "
                                "shards already folded)\n",
                                statePath.c_str(),
                                static_cast<unsigned long long>(
                                    agg.foldedShards()),
                                static_cast<unsigned long long>(
                                    agg.totalShards()));
            } catch (const fault::ShardError &e) {
                std::fprintf(stderr,
                             "serve: state %s is unusable: %s\n",
                             statePath.c_str(), e.what());
                return 1;
            }
        }
    }

    std::mutex aggMu; // guards agg, attempts, fatal, state writes
    std::map<std::uint64_t, unsigned> attempts;
    bool fatal = false;
    const std::string deltaPrefix =
        statePath.empty() ? std::string("warped_serve") : statePath;
    const std::string exe = argv[0];

    // The local transport exists even under --listen (it is the
    // grace-window fallback) unless --no-local-fallback severs it.
    sim::SubprocessTransportConfig scfg;
    scfg.workerArgv = {exe, "shard", c.workload};
    scfg.workerArgv.insert(scfg.workerArgv.end(),
                           c.passThrough.begin(),
                           c.passThrough.end());
    scfg.deltaPrefix = deltaPrefix;
    scfg.shardCount = shards;
    scfg.signature = engine.signature();
    scfg.deadlineMs = deadlineMs;
    scfg.killShard = haveKill ? killShard : sim::kNoShard;
    scfg.hangShard = hangShard;
    scfg.hangMs = hangMs;
    sim::SubprocessTransport localTransport(scfg);

    std::unique_ptr<sim::SocketTransport> socketTransport;
    sim::Transport *transport = &localTransport;
    if (haveListen) {
        sim::SocketTransportConfig ncfg;
        ncfg.host = listenHost;
        ncfg.port = listenPort;
        ncfg.signature = engine.signature();
        ncfg.shardCount = shards;
        ncfg.heartbeatMs = heartbeatMs;
        ncfg.deadlineMs = deadlineMs;
        ncfg.graceMs = graceMs;
        ncfg.fallback = noLocalFallback ? nullptr : &localTransport;
        socketTransport =
            std::make_unique<sim::SocketTransport>(ncfg);
        transport = socketTransport.get();
        std::printf("serve: listening on %s:%u%s\n",
                    ncfg.host.c_str(),
                    unsigned(socketTransport->port()),
                    noLocalFallback ? " (no local fallback)" : "");
        if (!portFile.empty() &&
            !writeTextAtomic(
                portFile,
                std::to_string(socketTransport->port()) + "\n")) {
            std::fprintf(stderr, "serve: cannot write %s\n",
                         portFile.c_str());
            return 1;
        }
    }

    // Shards past the end of the run range (more shards than runs)
    // produce an empty delta; fold them here rather than paying a
    // worker's golden run for zero injections.
    for (const auto shard : agg.pendingShards()) {
        const auto &p = plans[static_cast<std::size_t>(shard)];
        if (p.count != 0)
            continue;
        fault::ShardDelta d;
        d.shard = p.index;
        d.base = p.base;
        d.count = 0;
        d.signature = engine.signature();
        d.counters =
            engine.runRange(p.base, 0).toMetrics().counters();
        agg.fold(d);
    }

    sim::ShardQueue queue(agg.pendingShards());

    auto workerLoop = [&]() {
        while (const auto s = queue.acquire()) {
            const auto shard = *s;
            unsigned attempt = 0;
            {
                std::lock_guard<std::mutex> lk(aggMu);
                attempt = ++attempts[shard];
                if (fatal) {
                    // Drain mode: a permanent failure already doomed
                    // the campaign; retire the queue without issuing
                    // more work.
                    queue.ack(shard);
                    continue;
                }
            }
            const auto res = transport->runShard(shard, attempt);

            bool folded = false;
            if (res.status ==
                sim::TransportResult::Status::Delivered) {
                try {
                    const auto d =
                        fault::ShardDelta::fromJson(res.deltaJson);
                    std::lock_guard<std::mutex> lk(aggMu);
                    agg.fold(d);
                    if (!statePath.empty() &&
                        !writeTextAtomic(statePath, agg.stateJson()))
                        warped_warn("serve: cannot write state file ",
                                    statePath);
                    folded = true;
                } catch (const fault::ShardError &e) {
                    std::fprintf(stderr,
                                 "serve: shard %llu delta rejected: "
                                 "%s\n",
                                 static_cast<unsigned long long>(
                                     shard),
                                 e.what());
                }
            }
            if (folded) {
                queue.ack(shard);
                continue;
            }
            if (res.status == sim::TransportResult::Status::Reject) {
                // The worker derived a different configuration
                // signature; retrying cannot help.
                std::fprintf(stderr, "serve: shard %llu: %s\n",
                             static_cast<unsigned long long>(shard),
                             res.diag.c_str());
                std::lock_guard<std::mutex> lk(aggMu);
                fatal = true;
                queue.ack(shard);
                continue;
            }
            if (attempt >= strikes) {
                std::fprintf(stderr,
                             "serve: shard %llu failed %u times "
                             "(last: %s); giving up\n",
                             static_cast<unsigned long long>(shard),
                             attempt,
                             res.diag.empty() ? "delta rejected"
                                              : res.diag.c_str());
                std::lock_guard<std::mutex> lk(aggMu);
                fatal = true;
                queue.ack(shard);
                continue;
            }
            std::fprintf(stderr,
                         "serve: shard %llu attempt %u failed (%s); "
                         "re-issuing\n",
                         static_cast<unsigned long long>(shard),
                         attempt,
                         res.diag.empty() ? "delta rejected"
                                          : res.diag.c_str());
            queue.fail(shard);
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        pool.emplace_back(workerLoop);
    for (auto &t : pool)
        t.join();

    if (socketTransport) {
        socketTransport->stop();
        std::printf("serve: socket transport: %llu worker(s) "
                    "joined, %llu rejected, %llu shard(s) delivered "
                    "remotely, %llu via local fallback\n",
                    static_cast<unsigned long long>(
                        socketTransport->workersJoined()),
                    static_cast<unsigned long long>(
                        socketTransport->workersRejected()),
                    static_cast<unsigned long long>(
                        socketTransport->remoteDeliveries()),
                    static_cast<unsigned long long>(
                        socketTransport->fallbackRuns()));
    }

    if (fatal || !agg.complete()) {
        std::fprintf(stderr,
                     "serve: campaign incomplete (%llu of %llu "
                     "shards folded)%s\n",
                     static_cast<unsigned long long>(
                         agg.foldedShards()),
                     static_cast<unsigned long long>(
                         agg.totalShards()),
                     statePath.empty()
                         ? ""
                         : "; state file kept for resume");
        return 1;
    }
    if (const auto r = queue.failures())
        std::printf("serve: %llu shard re-issue(s) after worker "
                    "death\n",
                    static_cast<unsigned long long>(r));

    const auto rep = agg.report();
    printCampaignReport(rep);
    const int rc = writeReportJson(rep, c.outPath);
    if (rc == 0 && !statePath.empty())
        std::remove(statePath.c_str());
    return rc;
}

void
usage()
{
    std::printf(
        "usage: warped_sim [workload|all] [options]\n"
        "       warped_sim campaign <workload> [options]   "
        "(fault-injection campaign;\n"
        "                                                  "
        " see warped_sim campaign)\n"
        "\n"
        "workloads: BFS Nqueen MUM SCAN BitonicSort Laplace MatrixMul\n"
        "           RadixSort SHA Libor CUFFT\n"
        "\n"
        "options:\n"
        "  --dmr on|off          enable/disable Warped-DMR "
        "(default on)\n"
        "  --no-intra            disable intra-warp (spatial) DMR\n"
        "  --no-inter            disable inter-warp (temporal) DMR\n"
        "  --no-shuffle          disable lane shuffling\n"
        "  --mapping linear|cross   thread-to-core mapping "
        "(default cross)\n"
        "  --qsize N             ReplayQ entries (default 10)\n"
        "  --cluster 4|8         SIMT-cluster width (default 4)\n"
        "  --sms N               number of SMs (default 30)\n"
        "  --sampling E:A        sampling DMR: active A of every E "
        "cycles\n"
        "  --sched lrr|gto       warp scheduling policy "
        "(default lrr)\n"
        "  --schedulers N        schedulers per SM (default 1)\n"
        "  --bank-conflicts      model register-bank conflicts\n"
        "  --coalescing          model global-memory coalescing\n"
        "  --contention          model memory-partition contention\n"
        "  --mem-model flat|banked  global-memory organization\n"
        "                        (default flat; banked adds per-bank\n"
        "                        open-row DRAM timing)\n"
        "  --ecc none|secded|chipkill  memory ECC codec (default\n"
        "                        none; only affects fault campaigns)\n"
        "  --warp N              warp width (default 32)\n"
        "  --arbitrate           classify detections by majority "
        "vote\n"
        "  --dmtr                DMTR baseline mode\n"
        "  --scheme NAME         protection backend: original, "
        "r-naive,\n"
        "                        r-thread, dmtr, warped-dmr "
        "(default),\n"
        "                        partial-thread, replay-compare\n"
        "  --protect-frac F      protected warp-slot fraction for\n"
        "                        --scheme partial-thread "
        "(default 1.0)\n"
        "  --disasm              print the kernel disassembly\n"
        "  --trace N             print the first N issue events\n"
        "  --trace-out F         record structured events and write a\n"
        "                        Chrome trace_event JSON to F; a .bin\n"
        "                        path writes the compact binary format\n"
        "                        instead (convert offline with\n"
        "                        tools/trace_convert)\n"
        "  --metrics-out F       write the flat metrics registry "
        "JSON to F\n"
        "                        (with 'all', the workload name is\n"
        "                        spliced in before the extension)\n"
        "  --report              print the full statistics block\n"
        "  --json                emit one JSON object per workload\n"
        "  --verbose             keep warn/info output\n"
        "  --list                print the workload table and exit\n"
        "  --kernel F [--blocks N] [--threads M]\n"
        "                        run a text-assembly kernel file "
        "instead of a workload\n");
}

bool
parse(int argc, char **argv, Options &o)
{
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (a == "--help" || a == "-h") {
            return false;
        } else if (a == "--list") {
            std::printf("%-12s %-26s %8s %8s %10s %10s\n", "name",
                        "category", "blocks", "threads", "bytes in",
                        "bytes out");
            for (const auto &n : workloads::allNames()) {
                auto w = workloads::makeByName(n);
                arch::GpuConfig c = arch::GpuConfig::testDefault();
                gpu::Gpu g(c, dmr::DmrConfig::off());
                w->setup(g);
                std::printf("%-12s %-26s %8u %8u %10zu %10zu\n",
                            n.c_str(), w->category().c_str(),
                            w->gridBlocks(), w->blockThreads(),
                            w->bytesIn(), w->bytesOut());
            }
            std::exit(0);
        } else if (a == "--dmr") {
            const char *v = next();
            if (!v)
                return false;
            if (std::strcmp(v, "off") == 0)
                o.dmr = dmr::DmrConfig::off();
        } else if (a == "--no-intra") {
            o.dmr.intraWarp = false;
        } else if (a == "--no-inter") {
            o.dmr.interWarp = false;
        } else if (a == "--no-shuffle") {
            o.dmr.laneShuffle = false;
        } else if (a == "--mapping") {
            const char *v = next();
            if (!v)
                return false;
            o.dmr.mapping = std::strcmp(v, "linear") == 0
                                ? dmr::MappingPolicy::Linear
                                : dmr::MappingPolicy::CrossCluster;
        } else if (a == "--qsize") {
            o.dmr.replayQSize = parseU32Arg("--qsize", next(), false);
        } else if (a == "--cluster") {
            o.cluster = parseU32Arg("--cluster", next(), false);
        } else if (a == "--sms") {
            o.numSms = parseU32Arg("--sms", next(), false);
        } else if (a == "--sampling") {
            // E:A — both halves strict; sscanf accepted trailing
            // junk ("1000:250x") and negative epochs.
            const char *v = next();
            const char *colon = v ? std::strchr(v, ':') : nullptr;
            if (!colon)
                badNumericArg("--sampling (expects E:A)", v, false);
            const std::string epoch(v, colon);
            o.dmr.samplingEpoch =
                parseU32Arg("--sampling epoch", epoch.c_str(), false);
            o.dmr.samplingActive =
                parseU32Arg("--sampling active", colon + 1, false);
        } else if (a == "--sched") {
            const char *v = next();
            if (!v)
                return false;
            o.sched = std::strcmp(v, "gto") == 0
                          ? arch::SchedPolicy::GreedyThenOldest
                          : arch::SchedPolicy::LooseRoundRobin;
        } else if (a == "--schedulers") {
            o.schedulers = parseU32Arg("--schedulers", next(), false);
        } else if (a == "--bank-conflicts") {
            o.bankConflicts = true;
        } else if (a == "--coalescing") {
            o.coalescing = true;
        } else if (a == "--contention") {
            o.contention = true;
        } else if (a == "--mem-model") {
            o.memModel = parseMemModelArg(next(), false);
        } else if (a == "--ecc") {
            o.ecc = parseEccArg(next(), false);
        } else if (a == "--warp") {
            o.warpSize = parseU32Arg("--warp", next(), false);
        } else if (a == "--arbitrate") {
            o.dmr.arbitrateErrors = true;
        } else if (a == "--dmtr") {
            o.dmr = dmr::DmrConfig::dmtr();
        } else if (a == "--scheme") {
            o.scheme.id = parseSchemeArg(next(), false);
        } else if (a == "--protect-frac") {
            o.scheme.protectFraction =
                parseProtectFracArg(next(), false);
        } else if (a == "--kernel") {
            const char *v = next();
            if (!v)
                return false;
            o.kernelFile = v;
        } else if (a == "--blocks") {
            o.kblocks = parseU32Arg("--blocks", next(), false);
        } else if (a == "--threads") {
            o.kthreads = parseU32Arg("--threads", next(), false);
        } else if (a == "--trace") {
            o.trace = parseU32Arg("--trace", next(), false);
        } else if (a == "--trace-out") {
            const char *v = next();
            if (!v)
                return false;
            o.traceOut = v;
        } else if (a == "--metrics-out") {
            const char *v = next();
            if (!v)
                return false;
            o.metricsOut = v;
        } else if (a == "--report") {
            o.report = true;
        } else if (a == "--json") {
            o.json = true;
        } else if (a == "--disasm") {
            o.disasm = true;
        } else if (a == "--verbose") {
            o.verbose = true;
        } else if (a[0] == '-') {
            std::fprintf(stderr, "unknown option %s\n", a.c_str());
            return false;
        } else {
            o.workload = a;
        }
    }
    return true;
}

int
runOne(const std::string &name, const Options &o,
       const arch::GpuConfig &cfg)
{
    auto w = workloads::makeByName(name);
    gpu::Gpu g(cfg, o.dmr, /*seed=*/1, nullptr, {}, o.scheme);
    w->setup(g);
    if (o.disasm)
        std::printf("%s\n", w->program().disassemble().c_str());

    const auto r = g.launch(w->program(), w->gridBlocks(),
                            w->blockThreads());
    const bool ok = w->verify(g);

    const bool multi = o.workload == "all";
    if (!o.traceOut.empty()) {
        const auto path = exportPath(o.traceOut, name, multi);
        // A .bin destination selects the compact binary format
        // (docs/TRACE_FORMAT.md); tools/trace_convert turns it into
        // the byte-identical Chrome JSON offline. Anything else gets
        // the Chrome trace_event JSON directly.
        const bool binary =
            path.size() >= 4 &&
            path.compare(path.size() - 4, 4, ".bin") == 0;
        std::ofstream f(path, binary
                                  ? std::ios::out | std::ios::binary
                                  : std::ios::out);
        if (!f)
            std::fprintf(stderr, "cannot open %s\n", path.c_str());
        else if (binary)
            trace::writeBinaryTrace(
                f, r.events, name,
                r.metrics.counterValue("trace.dropped"));
        else
            trace::writeChromeTrace(f, r.events, name);
    }
    if (!o.metricsOut.empty()) {
        const auto path = exportPath(o.metricsOut, name, multi);
        std::ofstream f(path);
        if (!f)
            std::fprintf(stderr, "cannot open %s\n", path.c_str());
        else
            trace::writeMetricsJson(f, r.metrics);
    }

    if (o.json) {
        std::printf("%s\n",
                    report::jsonReport(r, cfg, name).c_str());
        return ok ? 0 : 1;
    }

    if (o.trace) {
        std::printf("issue trace (first %u events per SM):\n",
                    o.trace);
        unsigned shown = 0;
        for (const auto &ev : r.trace) {
            if (shown++ >= o.trace)
                break;
            std::printf("  cy %6llu sm%-2u w%-2u [%2u/32] pc %3u  %s\n",
                        static_cast<unsigned long long>(ev.cycle),
                        ev.sm, ev.warp, ev.activeCount, ev.pc,
                        ev.instr.toString().c_str());
        }
    }

    if (o.report)
        std::printf("%s", report::textReport(r, cfg).c_str());

    power::PowerModel pm(cfg);
    std::printf("%-12s %-16s %8llu cy %8.1f us  cover %6.2f%%  "
                "power %5.1f W  %s\n",
                name.c_str(), w->category().c_str(),
                static_cast<unsigned long long>(r.cycles),
                r.timeNs / 1e3, 100 * r.coverage(),
                pm.estimate(r).total(), ok ? "OK" : "FAIL");

    if (o.dmr.enabled) {
        std::printf(
            "    verified: intra %llu / inter %llu thread-instrs; "
            "stalls: eager %llu, raw %llu; queue events: enq %llu, "
            "deq %llu, drain %llu+%llu\n",
            static_cast<unsigned long long>(r.dmr.intraVerifiedThreads),
            static_cast<unsigned long long>(r.dmr.interVerifiedThreads),
            static_cast<unsigned long long>(r.dmr.eagerStalls),
            static_cast<unsigned long long>(r.dmr.rawStalls),
            static_cast<unsigned long long>(r.dmr.enqueues),
            static_cast<unsigned long long>(r.dmr.dequeueVerifications),
            static_cast<unsigned long long>(
                r.dmr.idleDrainVerifications),
            static_cast<unsigned long long>(
                r.dmr.unitDrainVerifications));
        if (r.dmr.errorsDetected) {
            std::printf("    ERRORS DETECTED: %llu",
                        static_cast<unsigned long long>(
                            r.dmr.errorsDetected));
            if (o.dmr.arbitrateErrors) {
                std::printf(" (primary-bad %llu, checker-bad %llu, "
                            "inconclusive %llu)",
                            static_cast<unsigned long long>(
                                r.dmr.arbPrimaryBad),
                            static_cast<unsigned long long>(
                                r.dmr.arbCheckerBad),
                            static_cast<unsigned long long>(
                                r.dmr.arbInconclusive));
            }
            std::printf("\n");
        }
    }
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && std::strcmp(argv[1], "campaign") == 0) {
        setVerbose(false);
        return campaignMain(argc, argv);
    }
    if (argc > 1 && std::strcmp(argv[1], "serve") == 0) {
        setVerbose(false);
        return serveMain(argc, argv);
    }
    if (argc > 1 && std::strcmp(argv[1], "shard") == 0) {
        setVerbose(false);
        return shardMain(argc, argv);
    }

    Options o;
    if (!parse(argc, argv, o)) {
        usage();
        return 2;
    }
    setVerbose(o.verbose);

    auto cfg = arch::GpuConfig::paperDefault();
    cfg.numSms = o.numSms;
    cfg.lanesPerCluster = o.cluster;
    cfg.numSchedulers = o.schedulers;
    cfg.schedPolicy = o.sched;
    cfg.modelBankConflicts = o.bankConflicts;
    cfg.modelCoalescing = o.coalescing;
    cfg.modelMemContention = o.contention;
    cfg.memModel = o.memModel;
    cfg.eccKind = o.ecc;
    cfg.warpSize = o.warpSize;
    cfg.traceIssueLimit = o.trace;
    cfg.traceEvents = !o.traceOut.empty();

    std::printf("%s\n", cfg.toString().c_str());

    if (!o.kernelFile.empty()) {
        std::ifstream f(o.kernelFile);
        if (!f) {
            std::fprintf(stderr, "cannot open %s\n",
                         o.kernelFile.c_str());
            return 1;
        }
        std::string text((std::istreambuf_iterator<char>(f)),
                         std::istreambuf_iterator<char>());
        const auto prog = isa::parseProgram(text);
        if (o.disasm)
            std::printf("%s\n", prog.disassemble().c_str());
        gpu::Gpu g(cfg, o.dmr, /*seed=*/1, nullptr, {}, o.scheme);
        const auto r = g.launch(prog, o.kblocks, o.kthreads);
        if (o.json) {
            std::printf("%s\n",
                        report::jsonReport(r, cfg, prog.name()).c_str());
        } else {
            std::printf("%s", report::textReport(r, cfg).c_str());
        }
        return 0;
    }

    int rc = 0;
    if (o.workload == "all") {
        for (const auto &n : workloads::allNames())
            rc |= runOne(n, o, cfg);
    } else {
        rc = runOne(o.workload, o, cfg);
    }
    return rc;
}
