/**
 * @file
 * warped_sim: the command-line driver — run any Table-4 workload (or
 * all of them) under a chosen protection configuration and print the
 * full statistics block. The "downstream user" front end.
 *
 *   $ ./warped_sim --help
 *   $ ./warped_sim MatrixMul --qsize 5 --mapping linear
 *   $ ./warped_sim all --dmr off
 *   $ ./warped_sim SHA --sampling 1000:250 --arbitrate --disasm
 */

#include <cstdio>
#include <cstring>
#include <string>

#include <fstream>

#include "common/logging.hh"
#include "gpu/report.hh"
#include "trace/export.hh"
#include "isa/assembler.hh"
#include "power/power_model.hh"
#include "workloads/workload.hh"

using namespace warped;

namespace {

struct Options
{
    std::string workload = "all";
    dmr::DmrConfig dmr = dmr::DmrConfig::paperDefault();
    unsigned numSms = 30;
    unsigned cluster = 4;
    unsigned schedulers = 1;
    arch::SchedPolicy sched = arch::SchedPolicy::LooseRoundRobin;
    bool bankConflicts = false;
    bool coalescing = false;
    bool contention = false;
    unsigned warpSize = 32;
    std::string kernelFile;
    unsigned kblocks = 4, kthreads = 128;
    bool disasm = false;
    bool verbose = false;
    bool report = false;
    bool json = false;
    unsigned trace = 0;
    std::string traceOut;
    std::string metricsOut;
};

/**
 * Output path for one workload's export: with a single workload the
 * given path is used verbatim; under "all" the workload name is
 * spliced in before the extension so runs don't clobber each other.
 */
std::string
exportPath(const std::string &base, const std::string &name, bool multi)
{
    if (!multi)
        return base;
    const auto dot = base.rfind('.');
    const auto slash = base.rfind('/');
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash))
        return base + "." + name;
    return base.substr(0, dot) + "." + name + base.substr(dot);
}

void
usage()
{
    std::printf(
        "usage: warped_sim [workload|all] [options]\n"
        "\n"
        "workloads: BFS Nqueen MUM SCAN BitonicSort Laplace MatrixMul\n"
        "           RadixSort SHA Libor CUFFT\n"
        "\n"
        "options:\n"
        "  --dmr on|off          enable/disable Warped-DMR "
        "(default on)\n"
        "  --no-intra            disable intra-warp (spatial) DMR\n"
        "  --no-inter            disable inter-warp (temporal) DMR\n"
        "  --no-shuffle          disable lane shuffling\n"
        "  --mapping linear|cross   thread-to-core mapping "
        "(default cross)\n"
        "  --qsize N             ReplayQ entries (default 10)\n"
        "  --cluster 4|8         SIMT-cluster width (default 4)\n"
        "  --sms N               number of SMs (default 30)\n"
        "  --sampling E:A        sampling DMR: active A of every E "
        "cycles\n"
        "  --sched lrr|gto       warp scheduling policy "
        "(default lrr)\n"
        "  --schedulers N        schedulers per SM (default 1)\n"
        "  --bank-conflicts      model register-bank conflicts\n"
        "  --coalescing          model global-memory coalescing\n"
        "  --contention          model memory-partition contention\n"
        "  --warp N              warp width (default 32)\n"
        "  --arbitrate           classify detections by majority "
        "vote\n"
        "  --dmtr                DMTR baseline mode\n"
        "  --disasm              print the kernel disassembly\n"
        "  --trace N             print the first N issue events\n"
        "  --trace-out F         record structured events and write a\n"
        "                        Chrome trace_event JSON to F\n"
        "  --metrics-out F       write the flat metrics registry "
        "JSON to F\n"
        "                        (with 'all', the workload name is\n"
        "                        spliced in before the extension)\n"
        "  --report              print the full statistics block\n"
        "  --json                emit one JSON object per workload\n"
        "  --verbose             keep warn/info output\n"
        "  --list                print the workload table and exit\n"
        "  --kernel F [--blocks N] [--threads M]\n"
        "                        run a text-assembly kernel file "
        "instead of a workload\n");
}

bool
parse(int argc, char **argv, Options &o)
{
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (a == "--help" || a == "-h") {
            return false;
        } else if (a == "--list") {
            std::printf("%-12s %-26s %8s %8s %10s %10s\n", "name",
                        "category", "blocks", "threads", "bytes in",
                        "bytes out");
            for (const auto &n : workloads::allNames()) {
                auto w = workloads::makeByName(n);
                arch::GpuConfig c = arch::GpuConfig::testDefault();
                gpu::Gpu g(c, dmr::DmrConfig::off());
                w->setup(g);
                std::printf("%-12s %-26s %8u %8u %10zu %10zu\n",
                            n.c_str(), w->category().c_str(),
                            w->gridBlocks(), w->blockThreads(),
                            w->bytesIn(), w->bytesOut());
            }
            std::exit(0);
        } else if (a == "--dmr") {
            const char *v = next();
            if (!v)
                return false;
            if (std::strcmp(v, "off") == 0)
                o.dmr = dmr::DmrConfig::off();
        } else if (a == "--no-intra") {
            o.dmr.intraWarp = false;
        } else if (a == "--no-inter") {
            o.dmr.interWarp = false;
        } else if (a == "--no-shuffle") {
            o.dmr.laneShuffle = false;
        } else if (a == "--mapping") {
            const char *v = next();
            if (!v)
                return false;
            o.dmr.mapping = std::strcmp(v, "linear") == 0
                                ? dmr::MappingPolicy::Linear
                                : dmr::MappingPolicy::CrossCluster;
        } else if (a == "--qsize") {
            const char *v = next();
            if (!v)
                return false;
            o.dmr.replayQSize = std::strtoul(v, nullptr, 10);
        } else if (a == "--cluster") {
            const char *v = next();
            if (!v)
                return false;
            o.cluster = std::strtoul(v, nullptr, 10);
        } else if (a == "--sms") {
            const char *v = next();
            if (!v)
                return false;
            o.numSms = std::strtoul(v, nullptr, 10);
        } else if (a == "--sampling") {
            const char *v = next();
            if (!v)
                return false;
            unsigned long e = 0, act = 0;
            if (std::sscanf(v, "%lu:%lu", &e, &act) != 2)
                return false;
            o.dmr.samplingEpoch = e;
            o.dmr.samplingActive = act;
        } else if (a == "--sched") {
            const char *v = next();
            if (!v)
                return false;
            o.sched = std::strcmp(v, "gto") == 0
                          ? arch::SchedPolicy::GreedyThenOldest
                          : arch::SchedPolicy::LooseRoundRobin;
        } else if (a == "--schedulers") {
            const char *v = next();
            if (!v)
                return false;
            o.schedulers = std::strtoul(v, nullptr, 10);
        } else if (a == "--bank-conflicts") {
            o.bankConflicts = true;
        } else if (a == "--coalescing") {
            o.coalescing = true;
        } else if (a == "--contention") {
            o.contention = true;
        } else if (a == "--warp") {
            const char *v = next();
            if (!v)
                return false;
            o.warpSize = std::strtoul(v, nullptr, 10);
        } else if (a == "--arbitrate") {
            o.dmr.arbitrateErrors = true;
        } else if (a == "--dmtr") {
            o.dmr = dmr::DmrConfig::dmtr();
        } else if (a == "--kernel") {
            const char *v = next();
            if (!v)
                return false;
            o.kernelFile = v;
        } else if (a == "--blocks") {
            const char *v = next();
            if (!v)
                return false;
            o.kblocks = std::strtoul(v, nullptr, 10);
        } else if (a == "--threads") {
            const char *v = next();
            if (!v)
                return false;
            o.kthreads = std::strtoul(v, nullptr, 10);
        } else if (a == "--trace") {
            const char *v = next();
            if (!v)
                return false;
            o.trace = std::strtoul(v, nullptr, 10);
        } else if (a == "--trace-out") {
            const char *v = next();
            if (!v)
                return false;
            o.traceOut = v;
        } else if (a == "--metrics-out") {
            const char *v = next();
            if (!v)
                return false;
            o.metricsOut = v;
        } else if (a == "--report") {
            o.report = true;
        } else if (a == "--json") {
            o.json = true;
        } else if (a == "--disasm") {
            o.disasm = true;
        } else if (a == "--verbose") {
            o.verbose = true;
        } else if (a[0] == '-') {
            std::fprintf(stderr, "unknown option %s\n", a.c_str());
            return false;
        } else {
            o.workload = a;
        }
    }
    return true;
}

int
runOne(const std::string &name, const Options &o,
       const arch::GpuConfig &cfg)
{
    auto w = workloads::makeByName(name);
    gpu::Gpu g(cfg, o.dmr);
    w->setup(g);
    if (o.disasm)
        std::printf("%s\n", w->program().disassemble().c_str());

    const auto r = g.launch(w->program(), w->gridBlocks(),
                            w->blockThreads());
    const bool ok = w->verify(g);

    const bool multi = o.workload == "all";
    if (!o.traceOut.empty()) {
        const auto path = exportPath(o.traceOut, name, multi);
        std::ofstream f(path);
        if (!f)
            std::fprintf(stderr, "cannot open %s\n", path.c_str());
        else
            trace::writeChromeTrace(f, r.events, name);
    }
    if (!o.metricsOut.empty()) {
        const auto path = exportPath(o.metricsOut, name, multi);
        std::ofstream f(path);
        if (!f)
            std::fprintf(stderr, "cannot open %s\n", path.c_str());
        else
            trace::writeMetricsJson(f, r.metrics);
    }

    if (o.json) {
        std::printf("%s\n",
                    report::jsonReport(r, cfg, name).c_str());
        return ok ? 0 : 1;
    }

    if (o.trace) {
        std::printf("issue trace (first %u events per SM):\n",
                    o.trace);
        unsigned shown = 0;
        for (const auto &ev : r.trace) {
            if (shown++ >= o.trace)
                break;
            std::printf("  cy %6llu sm%-2u w%-2u [%2u/32] pc %3u  %s\n",
                        static_cast<unsigned long long>(ev.cycle),
                        ev.sm, ev.warp, ev.activeCount, ev.pc,
                        ev.instr.toString().c_str());
        }
    }

    if (o.report)
        std::printf("%s", report::textReport(r, cfg).c_str());

    power::PowerModel pm(cfg);
    std::printf("%-12s %-16s %8llu cy %8.1f us  cover %6.2f%%  "
                "power %5.1f W  %s\n",
                name.c_str(), w->category().c_str(),
                static_cast<unsigned long long>(r.cycles),
                r.timeNs / 1e3, 100 * r.coverage(),
                pm.estimate(r).total(), ok ? "OK" : "FAIL");

    if (o.dmr.enabled) {
        std::printf(
            "    verified: intra %llu / inter %llu thread-instrs; "
            "stalls: eager %llu, raw %llu; queue events: enq %llu, "
            "deq %llu, drain %llu+%llu\n",
            static_cast<unsigned long long>(r.dmr.intraVerifiedThreads),
            static_cast<unsigned long long>(r.dmr.interVerifiedThreads),
            static_cast<unsigned long long>(r.dmr.eagerStalls),
            static_cast<unsigned long long>(r.dmr.rawStalls),
            static_cast<unsigned long long>(r.dmr.enqueues),
            static_cast<unsigned long long>(r.dmr.dequeueVerifications),
            static_cast<unsigned long long>(
                r.dmr.idleDrainVerifications),
            static_cast<unsigned long long>(
                r.dmr.unitDrainVerifications));
        if (r.dmr.errorsDetected) {
            std::printf("    ERRORS DETECTED: %llu",
                        static_cast<unsigned long long>(
                            r.dmr.errorsDetected));
            if (o.dmr.arbitrateErrors) {
                std::printf(" (primary-bad %llu, checker-bad %llu, "
                            "inconclusive %llu)",
                            static_cast<unsigned long long>(
                                r.dmr.arbPrimaryBad),
                            static_cast<unsigned long long>(
                                r.dmr.arbCheckerBad),
                            static_cast<unsigned long long>(
                                r.dmr.arbInconclusive));
            }
            std::printf("\n");
        }
    }
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    Options o;
    if (!parse(argc, argv, o)) {
        usage();
        return 2;
    }
    setVerbose(o.verbose);

    auto cfg = arch::GpuConfig::paperDefault();
    cfg.numSms = o.numSms;
    cfg.lanesPerCluster = o.cluster;
    cfg.numSchedulers = o.schedulers;
    cfg.schedPolicy = o.sched;
    cfg.modelBankConflicts = o.bankConflicts;
    cfg.modelCoalescing = o.coalescing;
    cfg.modelMemContention = o.contention;
    cfg.warpSize = o.warpSize;
    cfg.traceIssueLimit = o.trace;
    cfg.traceEvents = !o.traceOut.empty();

    std::printf("%s\n", cfg.toString().c_str());

    if (!o.kernelFile.empty()) {
        std::ifstream f(o.kernelFile);
        if (!f) {
            std::fprintf(stderr, "cannot open %s\n",
                         o.kernelFile.c_str());
            return 1;
        }
        std::string text((std::istreambuf_iterator<char>(f)),
                         std::istreambuf_iterator<char>());
        const auto prog = isa::parseProgram(text);
        if (o.disasm)
            std::printf("%s\n", prog.disassemble().c_str());
        gpu::Gpu g(cfg, o.dmr);
        const auto r = g.launch(prog, o.kblocks, o.kthreads);
        if (o.json) {
            std::printf("%s\n",
                        report::jsonReport(r, cfg, prog.name()).c_str());
        } else {
            std::printf("%s", report::textReport(r, cfg).c_str());
        }
        return 0;
    }

    int rc = 0;
    if (o.workload == "all") {
        for (const auto &n : workloads::allNames())
            rc |= runOne(n, o, cfg);
    } else {
        rc = runOne(o.workload, o, cfg);
    }
    return rc;
}
