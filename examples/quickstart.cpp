/**
 * @file
 * Quickstart: write a small kernel with the KernelBuilder, run it on
 * the simulated GPU with Warped-DMR protection, and read the
 * coverage/overhead statistics.
 *
 *   $ ./quickstart
 */

#include <cstdio>

#include "dmr/dmr_config.hh"
#include "gpu/gpu.hh"
#include "isa/kernel_builder.hh"

using namespace warped;

int
main()
{
    // ---- 1. Describe the machine (the paper's Table-3 GPU). -------
    auto cfg = arch::GpuConfig::paperDefault();
    cfg.numSms = 4; // a small chip is plenty for this demo

    // ---- 2. Build a SAXPY kernel: y[i] = a*x[i] + y[i]. ------------
    gpu::Gpu gpu(cfg, dmr::DmrConfig::paperDefault());

    constexpr unsigned kThreads = 1024;
    const Addr x_dev = gpu.allocator().alloc(kThreads * 4);
    const Addr y_dev = gpu.allocator().alloc(kThreads * 4);
    for (unsigned i = 0; i < kThreads; ++i) {
        gpu.mem().writeWord(x_dev + 4 * i, asReg(float(i)));
        gpu.mem().writeWord(y_dev + 4 * i, asReg(1.0f));
    }

    isa::KernelBuilder kb("saxpy");
    const auto gtid = kb.reg(), addr_x = kb.reg(), addr_y = kb.reg();
    const auto x = kb.reg(), y = kb.reg(), a = kb.reg();
    kb.s2r(gtid, isa::SpecialReg::Gtid);
    kb.movf(a, 2.0f);
    kb.shli(addr_x, gtid, 2);
    kb.iaddi(addr_y, addr_x, 0);
    kb.iaddi(addr_x, addr_x, static_cast<std::int32_t>(x_dev));
    kb.iaddi(addr_y, addr_y, static_cast<std::int32_t>(y_dev));
    kb.ldg(x, addr_x);
    kb.ldg(y, addr_y);
    kb.ffma(y, a, x, y);
    kb.stg(addr_y, y);
    const isa::Program prog = kb.build();

    std::printf("Kernel disassembly:\n%s\n",
                prog.disassemble().c_str());

    // ---- 3. Launch: 4 blocks x 256 threads. ------------------------
    const auto r = gpu.launch(prog, 4, 256);

    // ---- 4. Inspect results and the Warped-DMR statistics. ---------
    bool ok = true;
    for (unsigned i = 0; i < kThreads && ok; ++i)
        ok = asFloat(gpu.mem().readWord(y_dev + 4 * i)) ==
             2.0f * float(i) + 1.0f;

    std::printf("result check:          %s\n", ok ? "PASS" : "FAIL");
    std::printf("kernel cycles:         %llu (%.2f us)\n",
                static_cast<unsigned long long>(r.cycles),
                r.timeNs / 1e3);
    std::printf("warp instructions:     %llu\n",
                static_cast<unsigned long long>(r.issuedWarpInstrs));
    std::printf("error coverage:        %.2f%%\n",
                100.0 * r.coverage());
    std::printf("  intra-warp verified: %llu thread-instrs\n",
                static_cast<unsigned long long>(
                    r.dmr.intraVerifiedThreads));
    std::printf("  inter-warp verified: %llu thread-instrs\n",
                static_cast<unsigned long long>(
                    r.dmr.interVerifiedThreads));
    std::printf("comparator checks:     %llu (errors: %llu)\n",
                static_cast<unsigned long long>(r.dmr.comparisons),
                static_cast<unsigned long long>(
                    r.dmr.errorsDetected));
    return ok ? 0 : 1;
}
