# campaign_shard_smoke driver: the sharded campaign service must be
# invisible in the report. A `warped_sim serve` run — at any shard
# count, with a worker SIGKILLed mid-campaign and its shard re-issued,
# with or without stratified sampling — must write a report JSON
# byte-identical to the sequential `warped_sim campaign` run with the
# same site axes. Also exercises the crash-safety CLI edges this PR
# hardens: a torn checkpoint must be a loud error (exit 1), and
# `--checkpoint-every 0` must be rejected at parse time (exit 2).

set(axes SCAN --size 2 --sites 60 --seed 11 --jobs 1)

execute_process(
    COMMAND ${SIM} campaign ${axes} --out ${OUTDIR}/shard_seq.json
    RESULT_VARIABLE r1 OUTPUT_QUIET ERROR_QUIET)
if(NOT r1 EQUAL 0)
    message(FATAL_ERROR "sequential campaign failed (exit ${r1})")
endif()

# 3 shards, 2 concurrent workers.
execute_process(
    COMMAND ${SIM} serve ${axes} --shards 3 --workers 2
            --state ${OUTDIR}/shard_serve.state
            --out ${OUTDIR}/shard_serve.json
    RESULT_VARIABLE r2 OUTPUT_QUIET ERROR_QUIET)
if(NOT r2 EQUAL 0)
    message(FATAL_ERROR "serve --shards 3 failed (exit ${r2})")
endif()
execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${OUTDIR}/shard_seq.json ${OUTDIR}/shard_serve.json
    RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
    message(FATAL_ERROR
            "sharded report differs from the sequential run")
endif()

# 5 shards with shard 2's first worker SIGKILLed: the re-issue path
# must reproduce the same bytes.
execute_process(
    COMMAND ${SIM} serve ${axes} --shards 5 --workers 2
            --kill-worker-for-shard 2
            --state ${OUTDIR}/shard_kill.state
            --out ${OUTDIR}/shard_kill.json
    RESULT_VARIABLE r3 OUTPUT_QUIET ERROR_QUIET)
if(NOT r3 EQUAL 0)
    message(FATAL_ERROR "serve with killed worker failed (exit ${r3})")
endif()
execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${OUTDIR}/shard_seq.json ${OUTDIR}/shard_kill.json
    RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
    message(FATAL_ERROR
            "report after worker kill + re-issue differs from the "
            "sequential run")
endif()

# Stratified sampling shards identically too.
execute_process(
    COMMAND ${SIM} campaign ${axes} --strata 4
            --out ${OUTDIR}/shard_strat_seq.json
    RESULT_VARIABLE r4 OUTPUT_QUIET ERROR_QUIET)
execute_process(
    COMMAND ${SIM} serve ${axes} --strata 4 --shards 3
            --state ${OUTDIR}/shard_strat.state
            --out ${OUTDIR}/shard_strat_serve.json
    RESULT_VARIABLE r5 OUTPUT_QUIET ERROR_QUIET)
if(NOT r4 EQUAL 0 OR NOT r5 EQUAL 0)
    message(FATAL_ERROR
            "stratified runs failed (exit ${r4} / ${r5})")
endif()
execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${OUTDIR}/shard_strat_seq.json
            ${OUTDIR}/shard_strat_serve.json
    RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
    message(FATAL_ERROR
            "stratified sharded report differs from the sequential "
            "stratified run")
endif()

# CLI edge: a zero checkpoint chunk is a user error, rejected at
# parse time with the strict-CLI exit code.
execute_process(
    COMMAND ${SIM} campaign SCAN --sites 5 --checkpoint-every 0
    RESULT_VARIABLE rz OUTPUT_QUIET ERROR_QUIET)
if(NOT rz EQUAL 2)
    message(FATAL_ERROR
            "--checkpoint-every 0 exited ${rz}, expected the "
            "usage-error exit 2")
endif()

# Crash-safety edge: a torn checkpoint (no closing brace — the
# previous writer died mid-write) must be a hard, explained error,
# never a silent restart from zero.
file(WRITE ${OUTDIR}/shard_torn.ckpt "{\n  \"campaign.sampled\": 1")
execute_process(
    COMMAND ${SIM} campaign SCAN --size 2 --sites 5
            --checkpoint ${OUTDIR}/shard_torn.ckpt
    RESULT_VARIABLE rt OUTPUT_QUIET ERROR_QUIET)
if(NOT rt EQUAL 1)
    message(FATAL_ERROR
            "torn checkpoint exited ${rt}, expected the hard-error "
            "exit 1")
endif()
