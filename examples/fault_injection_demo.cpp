/**
 * @file
 * Fault-injection demo: plant a permanent stuck-at fault in one SIMT
 * lane's SFU datapath and watch Warped-DMR's comparator catch it —
 * then disable lane shuffling and watch the same fault hide (the
 * paper's §3.2 hidden-error problem).
 *
 *   $ ./fault_injection_demo
 */

#include <cstdio>

#include "common/logging.hh"
#include "fault/fault_injector.hh"
#include "workloads/workload.hh"

using namespace warped;

namespace {

void
runOnce(bool lane_shuffle)
{
    auto cfg = arch::GpuConfig::testDefault();
    cfg.numSms = 2;

    auto dcfg = dmr::DmrConfig::paperDefault();
    dcfg.laneShuffle = lane_shuffle;

    // Stuck-at-1 on bit 12 of SM 0, physical lane 9, SFU outputs
    // only: a pure-dataflow fault that never disturbs control flow.
    fault::FaultInjector injector;
    fault::FaultSpec spec;
    spec.kind = fault::FaultKind::StuckAtOne;
    spec.sm = 0;
    spec.lane = 9;
    spec.bit = 12;
    spec.unit = isa::UnitType::SFU;
    injector.add(spec);

    auto w = workloads::makeLibor(2); // SFU-heavy financial kernel
    gpu::Gpu gpu(cfg, dcfg, /*seed=*/1, &injector);
    const auto r = workloads::run(*w, gpu);

    std::printf("lane shuffling %s:\n", lane_shuffle ? "ON " : "OFF");
    std::printf("  fault activations:   %llu\n",
                static_cast<unsigned long long>(
                    injector.activations()));
    std::printf("  comparator mismatches: %llu\n",
                static_cast<unsigned long long>(
                    r.dmr.errorsDetected));
    std::printf("  output correct:      %s\n",
                w->verify(gpu) ? "yes" : "NO (corrupted)");
    if (!r.dmr.errorLog.empty()) {
        const auto &e = r.dmr.errorLog.front();
        std::printf("  first detection: cycle %llu, warp %u, pc %u, "
                    "thread slot %u\n"
                    "    primary lane %u produced 0x%08x, checker "
                    "lane %u produced 0x%08x\n",
                    static_cast<unsigned long long>(e.cycle), e.warpId,
                    e.pc, e.slot, e.primaryLane, e.primary,
                    e.checkerLane, e.checker);
    } else {
        std::printf("  (no detection: the verification ran on the "
                    "faulty core itself)\n");
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    setVerbose(false);
    std::printf("Permanent stuck-at-1 fault in one lane's SFU "
                "datapath, Libor workload\n\n");
    runOnce(true);
    runOnce(false);
    std::printf("Lane shuffling is what turns a silent corruption "
                "into a detected error:\nwithout it, the redundant "
                "execution re-runs on the same faulty core and\n"
                "produces the same wrong answer (the hidden-error "
                "problem, paper Sec 3.2).\n");
    return 0;
}
