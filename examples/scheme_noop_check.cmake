# scheme_noop_smoke driver: an explicit `--scheme warped-dmr
# --protect-frac 1.0` run must write a metrics JSON byte-identical to
# a run that never mentions the scheme flag at all. This is the
# tripwire for the ProtectionScheme seam's "default backend has zero
# behavioral and serialization footprint" contract — any key the
# default path starts emitting, or any perturbation of the simulated
# counters, fails the compare.
execute_process(
    COMMAND ${SIM} SCAN --sms 4
            --metrics-out ${OUTDIR}/scheme_noop_default.json
    RESULT_VARIABLE r1 OUTPUT_QUIET ERROR_QUIET)
execute_process(
    COMMAND ${SIM} SCAN --sms 4 --scheme warped-dmr --protect-frac 1.0
            --metrics-out ${OUTDIR}/scheme_noop_explicit.json
    RESULT_VARIABLE r2 OUTPUT_QUIET ERROR_QUIET)
if(NOT r1 EQUAL 0)
    message(FATAL_ERROR "default run failed (exit ${r1})")
endif()
if(NOT r2 EQUAL 0)
    message(FATAL_ERROR "--scheme warped-dmr run failed (exit ${r2})")
endif()
execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${OUTDIR}/scheme_noop_default.json
            ${OUTDIR}/scheme_noop_explicit.json
    RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
    message(FATAL_ERROR
            "scheme_noop_smoke: explicit --scheme warped-dmr metrics "
            "differ from the default run — the seam leaked")
endif()
