/**
 * @file
 * fault_campaign_cli: parameterized fault-injection campaigns from
 * the command line — the front end to src/fault.
 *
 *   $ ./fault_campaign_cli SCAN --runs 100 --kind stuck1
 *   $ ./fault_campaign_cli Libor --kind stuck1 --unit sfu --no-shuffle
 *   $ ./fault_campaign_cli MatrixMul --kind transient --dmr off
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "common/logging.hh"
#include "fault/campaign.hh"

using namespace warped;

namespace {

void
usage()
{
    std::printf(
        "usage: fault_campaign_cli <workload> [options]\n"
        "  --runs N          faults to inject (default 50)\n"
        "  --kind transient|stuck0|stuck1   (default transient)\n"
        "  --unit sp|sfu|ldst               restrict the fault site\n"
        "  --sms N           SMs (default 4)\n"
        "  --seed N          campaign seed (default 42)\n"
        "  --jobs N          worker threads (0 = hardware "
        "concurrency, the default);\n"
        "                    results are identical for every N\n"
        "  --dmr off         run unprotected (SDC measurement)\n"
        "  --no-shuffle      disable lane shuffling\n"
        "  --no-intra / --no-inter\n"
        "  --arbitrate       classify detections by majority vote\n");
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    if (argc < 2) {
        usage();
        return 2;
    }
    const std::string workload = argv[1];

    fault::CampaignConfig cc;
    auto dcfg = dmr::DmrConfig::paperDefault();
    unsigned sms = 4;

    for (int i = 2; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (a == "--runs") {
            const char *v = next();
            if (!v)
                return usage(), 2;
            cc.runs = std::strtoul(v, nullptr, 10);
        } else if (a == "--kind") {
            const char *v = next();
            if (!v)
                return usage(), 2;
            if (std::strcmp(v, "transient") == 0)
                cc.kind = fault::FaultKind::TransientBitFlip;
            else if (std::strcmp(v, "stuck0") == 0)
                cc.kind = fault::FaultKind::StuckAtZero;
            else
                cc.kind = fault::FaultKind::StuckAtOne;
        } else if (a == "--unit") {
            const char *v = next();
            if (!v)
                return usage(), 2;
            if (std::strcmp(v, "sfu") == 0)
                cc.unit = isa::UnitType::SFU;
            else if (std::strcmp(v, "ldst") == 0)
                cc.unit = isa::UnitType::LDST;
            else
                cc.unit = isa::UnitType::SP;
        } else if (a == "--sms") {
            const char *v = next();
            if (!v)
                return usage(), 2;
            sms = std::strtoul(v, nullptr, 10);
        } else if (a == "--seed") {
            const char *v = next();
            if (!v)
                return usage(), 2;
            cc.seed = std::strtoull(v, nullptr, 10);
        } else if (a == "--jobs") {
            const char *v = next();
            if (!v)
                return usage(), 2;
            cc.jobs = std::strtoul(v, nullptr, 10);
        } else if (a == "--dmr") {
            const char *v = next();
            if (v && std::strcmp(v, "off") == 0)
                dcfg = dmr::DmrConfig::off();
        } else if (a == "--no-shuffle") {
            dcfg.laneShuffle = false;
        } else if (a == "--no-intra") {
            dcfg.intraWarp = false;
        } else if (a == "--no-inter") {
            dcfg.interWarp = false;
        } else if (a == "--arbitrate") {
            dcfg.arbitrateErrors = true;
        } else {
            usage();
            return 2;
        }
    }

    auto cfg = arch::GpuConfig::testDefault();
    cfg.numSms = sms;

    std::printf("campaign: %s, %u x %s%s, DMR %s%s\n",
                workload.c_str(), cc.runs, faultKindName(cc.kind),
                cc.unit ? (std::string(" on ") +
                           isa::unitTypeName(*cc.unit))
                              .c_str()
                        : "",
                dcfg.enabled ? "on" : "off",
                dcfg.laneShuffle ? "" : " (no lane shuffle)");

    const auto res = fault::runCampaign(
        [&] { return workloads::makeByNameScaled(workload, 1); }, cfg,
        dcfg, cc);

    std::printf("  detected:       %u\n", res.detected);
    std::printf("  hangs (DUE):    %u\n", res.hangs);
    std::printf("  SDC:            %u\n", res.sdc);
    std::printf("  benign:         %u\n", res.benign);
    std::printf("  not activated:  %u\n", res.notActivated);
    std::printf("  detection rate: %.1f%% of activated\n",
                100 * res.detectionRate());
    if (res.detected) {
        std::printf("  mean detection latency: %.1f cycles "
                    "(kernel length: %.0f)\n",
                    res.meanDetectionLatency(),
                    double(res.kernelLengthSum) / res.detected);
    }
    return 0;
}
