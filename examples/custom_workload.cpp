/**
 * @file
 * Tutorial: bringing your own kernel to the Warped-DMR harness by
 * implementing the workloads::Workload interface. The example kernel
 * is a histogram over random bytes — per-block shared-memory bins
 * with a divergent increment loop, i.e. a workload shape the built-in
 * eleven do not cover. Implementing the interface buys you the whole
 * toolbox: verified runs, coverage/overhead accounting, scheme
 * comparison and fault campaigns.
 *
 *   $ ./custom_workload
 */

#include <cstdio>

#include "common/logging.hh"
#include "fault/campaign.hh"
#include "isa/kernel_builder.hh"
#include "workloads/workload_base.hh"

using namespace warped;

namespace {

constexpr unsigned kBins = 16;
constexpr unsigned kItemsPerThread = 8;

/**
 * Each block histograms its threads' input bytes into 16 shared bins.
 * Bin updates from different threads are serialized with a simple
 * owner-computes scheme: thread t owns bin t%16 and scans the whole
 * block's staged values — divergence comes from the data-dependent
 * match test.
 */
class Histogram final : public workloads::WorkloadBase
{
  public:
    explicit Histogram(unsigned blocks)
        : WorkloadBase("Histogram", "Tutorial")
    {
        block_ = 64;
        grid_ = blocks;
    }

    void
    setup(gpu::Gpu &gpu) override
    {
        Rng rng(0x4849); // 'HI'
        const unsigned threads = grid_ * block_;
        in_.resize(std::size_t{threads} * kItemsPerThread);
        for (auto &v : in_)
            v = static_cast<std::uint32_t>(rng.nextBelow(kBins));

        baseIn_ = upload(gpu, in_);
        baseOut_ = allocOut(gpu, std::size_t{grid_} * kBins * 4);
        buildKernel();
    }

    bool
    verify(const gpu::Gpu &gpu) const override
    {
        const auto out = download<std::uint32_t>(
            gpu, baseOut_, std::size_t{grid_} * kBins);
        for (unsigned b = 0; b < grid_; ++b) {
            std::uint32_t want[kBins] = {};
            for (unsigned t = 0; t < block_; ++t) {
                for (unsigned i = 0; i < kItemsPerThread; ++i) {
                    const auto v =
                        in_[(std::size_t{b} * block_ + t) *
                                kItemsPerThread +
                            i];
                    ++want[v];
                }
            }
            for (unsigned bin = 0; bin < kBins; ++bin) {
                if (out[b * kBins + bin] != want[bin])
                    return false;
            }
        }
        return true;
    }

  private:
    void
    buildKernel()
    {
        using isa::Reg;
        isa::KernelBuilder kb("histogram", 32);
        // Staging area: every thread publishes its items; each of the
        // first kBins threads then counts matches for its own bin.
        const unsigned s_stage =
            kb.shared(block_ * kItemsPerThread * 4);

        const Reg tid = kb.reg(), gtid = kb.reg();
        kb.s2r(tid, isa::SpecialReg::Tid);
        kb.s2r(gtid, isa::SpecialReg::Gtid);

        const Reg base_in = kb.reg(), v = kb.reg();
        kb.movi(base_in, static_cast<std::int32_t>(baseIn_));
        const Reg my_stage = kb.reg();
        kb.movi(my_stage, kItemsPerThread * 4);
        kb.imul(my_stage, tid, my_stage);
        kb.iaddi(my_stage, my_stage,
                 static_cast<std::int32_t>(s_stage));

        // Publish this thread's items to shared memory.
        const Reg g_addr = kb.reg();
        kb.movi(g_addr, kItemsPerThread * 4);
        kb.imul(g_addr, gtid, g_addr);
        kb.iadd(g_addr, g_addr, base_in);
        for (unsigned i = 0; i < kItemsPerThread; ++i) {
            kb.ldg(v, g_addr, static_cast<std::int32_t>(i * 4));
            kb.sts(my_stage, v, static_cast<std::int32_t>(i * 4));
        }
        kb.bar();

        // Owner-computes: thread t < kBins scans the staged items and
        // counts those equal to its bin id (a divergent region: only
        // 16 of 64 threads are active, and the match test diverges).
        const Reg c_bins = kb.reg(), p_owner = kb.reg();
        kb.movi(c_bins, kBins);
        kb.isetpLt(p_owner, tid, c_bins);
        const Reg count = kb.reg(), idx = kb.reg(), lim = kb.reg(),
                  item = kb.reg(), s_addr = kb.reg(), pm = kb.reg();
        kb.ifThen(p_owner, [&] {
            kb.movi(count, 0);
            kb.movi(lim, block_ * kItemsPerThread);
            kb.forCounter(idx, 0, lim, 1, [&] {
                kb.shli(s_addr, idx, 2);
                kb.iaddi(s_addr, s_addr,
                         static_cast<std::int32_t>(s_stage));
                kb.lds(item, s_addr);
                kb.isetpEq(pm, item, tid);
                kb.ifThen(pm, [&] { kb.iaddi(count, count, 1); });
            });
            // out[ctaid*kBins + tid] = count
            const Reg ctaid = kb.reg(), o_addr = kb.reg(),
                      c_out = kb.reg();
            kb.s2r(ctaid, isa::SpecialReg::Ctaid);
            kb.movi(c_out, kBins);
            kb.imad(o_addr, ctaid, c_out, tid);
            kb.shli(o_addr, o_addr, 2);
            kb.iaddi(o_addr, o_addr,
                     static_cast<std::int32_t>(baseOut_));
            kb.stg(o_addr, count);
        });

        prog_ = kb.build();
    }

    std::vector<std::uint32_t> in_;
    Addr baseIn_ = 0, baseOut_ = 0;
};

} // namespace

int
main()
{
    setVerbose(false);
    auto cfg = arch::GpuConfig::testDefault();
    cfg.numSms = 2;

    std::printf("Custom workload walkthrough: shared-memory "
                "histogram\n\n");

    // 1. Verified run under full protection.
    Histogram w(4);
    gpu::Gpu g(cfg, dmr::DmrConfig::paperDefault());
    const auto r = workloads::runVerified(w, g);
    std::printf("verified run:   %llu cycles, coverage %.2f%%\n",
                static_cast<unsigned long long>(r.cycles),
                100 * r.coverage());

    // 2. Overhead vs the unprotected machine.
    Histogram w2(4);
    gpu::Gpu g2(cfg, dmr::DmrConfig::off());
    const auto base = workloads::runVerified(w2, g2);
    std::printf("DMR overhead:   %.3fx (%llu -> %llu cycles)\n",
                double(r.cycles) / double(base.cycles),
                static_cast<unsigned long long>(base.cycles),
                static_cast<unsigned long long>(r.cycles));

    // 3. And the whole fault-campaign machinery works unchanged.
    fault::CampaignConfig cc;
    cc.runs = 10;
    cc.kind = fault::FaultKind::StuckAtOne;
    const auto camp = fault::runCampaign(
        [] { return std::make_unique<Histogram>(4); }, cfg,
        dmr::DmrConfig::paperDefault(), cc);
    std::printf("fault campaign: %u detected, %u SDC, %u benign, "
                "%u not activated\n",
                camp.detected, camp.sdc, camp.benign,
                camp.notActivated);
    return 0;
}
