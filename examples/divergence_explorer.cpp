/**
 * @file
 * Divergence explorer: a custom data-dependent kernel (Collatz step
 * counting) whose warps fray apart as threads finish at different
 * times — a live view of how intra-warp DMR coverage tracks the
 * active-thread distribution, and of what the thread-to-core mapping
 * buys (paper §4.2).
 *
 *   $ ./divergence_explorer
 */

#include <cstdio>

#include "common/logging.hh"
#include "dmr/dmr_config.hh"
#include "gpu/gpu.hh"
#include "isa/kernel_builder.hh"

using namespace warped;

namespace {

/** steps(n): Collatz iterations until n == 1 (capped). */
isa::Program
buildCollatz(Addr in_dev, Addr out_dev)
{
    isa::KernelBuilder kb("collatz");
    const auto gtid = kb.reg(), addr = kb.reg(), n = kb.reg(),
               steps = kb.reg(), one = kb.reg(), pred = kb.reg(),
               bit = kb.reg(), odd = kb.reg(), t = kb.reg();
    kb.s2r(gtid, isa::SpecialReg::Gtid);
    kb.shli(addr, gtid, 2);
    kb.iaddi(addr, addr, static_cast<std::int32_t>(in_dev));
    kb.ldg(n, addr);
    kb.movi(steps, 0);
    kb.movi(one, 1);

    kb.whileLoop([&] { kb.isetpGt(pred, n, one); }, pred, [&] {
        kb.andi(bit, n, 1);
        kb.isetpEq(odd, bit, one);
        kb.ifThenElse(
            odd,
            [&] {
                // n = 3n + 1
                kb.imul(t, n, one);   // t = n (keep mix realistic)
                kb.iadd(t, t, n);
                kb.iadd(t, t, n);
                kb.iaddi(n, t, 1);
            },
            [&] { kb.shri(n, n, 1); });
        kb.iaddi(steps, steps, 1);
    });

    kb.shli(addr, gtid, 2);
    kb.iaddi(addr, addr, static_cast<std::int32_t>(out_dev));
    kb.stg(addr, steps);
    return kb.build();
}

unsigned
collatzRef(unsigned n)
{
    unsigned steps = 0;
    while (n > 1) {
        n = (n & 1) ? 3 * n + 1 : n / 2;
        ++steps;
    }
    return steps;
}

void
runWith(dmr::MappingPolicy policy, const char *label)
{
    auto cfg = arch::GpuConfig::testDefault();
    cfg.numSms = 2;
    auto dcfg = dmr::DmrConfig::paperDefault();
    dcfg.mapping = policy;

    constexpr unsigned kThreads = 512;
    gpu::Gpu gpu(cfg, dcfg);
    const Addr in_dev = gpu.allocator().alloc(kThreads * 4);
    const Addr out_dev = gpu.allocator().alloc(kThreads * 4);
    for (unsigned i = 0; i < kThreads; ++i)
        gpu.mem().writeWord(in_dev + 4 * i, i + 1);

    const auto prog = buildCollatz(in_dev, out_dev);
    const auto r = gpu.launch(prog, 2, 256);

    bool ok = true;
    for (unsigned i = 0; i < kThreads && ok; ++i)
        ok = gpu.mem().readWord(out_dev + 4 * i) == collatzRef(i + 1);

    std::printf("%-22s result %s, cycles %6llu, coverage %6.2f%%\n",
                label, ok ? "PASS" : "FAIL",
                static_cast<unsigned long long>(r.cycles),
                100.0 * r.coverage());

    if (policy == dmr::MappingPolicy::CrossCluster) {
        std::printf("\nactive-thread distribution of the issue "
                    "slots:\n");
        const unsigned buckets[][2] = {
            {1, 1}, {2, 11}, {12, 21}, {22, 31}, {32, 32}};
        const char *names[] = {"1", "2-11", "12-21", "22-31", "32"};
        for (unsigned b = 0; b < 5; ++b) {
            const double f = r.activeHist.rangeFraction(
                buckets[b][0], buckets[b][1]);
            std::printf("  %-6s %5.1f%%  ", names[b], 100 * f);
            for (int i = 0; i < int(f * 50); ++i)
                std::printf("#");
            std::printf("\n");
        }
        std::printf("\n");
    }
}

} // namespace

int
main()
{
    setVerbose(false);
    std::printf("Collatz step counting: data-dependent loop trip "
                "counts fray the warps.\n\n");
    runWith(dmr::MappingPolicy::CrossCluster,
            "cross-cluster mapping");
    runWith(dmr::MappingPolicy::Linear, "linear mapping");
    std::printf("\nThe cross-cluster mapping spreads the surviving "
                "(low-numbered) threads\nacross SIMT clusters so more "
                "of them sit next to an idle checker lane.\n");
    return 0;
}
