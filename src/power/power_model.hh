/**
 * @file
 * Analytical GPU power/energy model in the style of Hong & Kim
 * (ISCA'10), as used by the paper's §5.4 (Fig 11).
 *
 * Eq. 1-2: RP_comp = MaxPower_comp * AccessRate_comp, where the
 * access rate is the component's activity per available slot. Total
 * power = sum of component runtime powers + a per-SM constant +
 * chip idle power. Energy = power x (cycles x cycle period).
 *
 * Warped-DMR's contribution: redundant executions raise the SP / SFU
 * / LD-ST (address path) access rates, and the RFU + comparator add
 * a small fixed-energy term per verification; memory components are
 * untouched (redundant runs reuse already-loaded data, §5.4). The
 * absolute MaxPower constants approximate the GTX280-class numbers
 * of [9]; Fig 11 is reported *normalized*, which only depends on the
 * relative mix.
 */

#ifndef WARPED_POWER_POWER_MODEL_HH
#define WARPED_POWER_POWER_MODEL_HH

#include <string>

#include "arch/gpu_config.hh"
#include "gpu/gpu.hh"

namespace warped {
namespace power {

/** MaxPower_comp parameters, chip-wide watts at 100 % access rate. */
struct PowerParams
{
    double spMax = 38.0;       ///< shader cores
    double sfuMax = 14.0;      ///< special function units
    double ldstMax = 9.0;      ///< LD/ST address path
    double regFileMax = 18.0;  ///< operand reads/writes
    double fdsMax = 22.0;      ///< fetch/decode/schedule
    double comparatorMax = 1.5; ///< DMR comparators + RFU muxes
    double constantPower = 28.0; ///< always-on while a kernel runs
    double idlePower = 32.0;   ///< static/leakage floor (~60 %, §3.4)
};

struct PowerBreakdown
{
    double sp = 0, sfu = 0, ldst = 0, regFile = 0, fds = 0,
           comparator = 0, constant = 0, idle = 0;

    double
    total() const
    {
        return sp + sfu + ldst + regFile + fds + comparator +
               constant + idle;
    }

    std::string toString() const;
};

class PowerModel
{
  public:
    explicit PowerModel(const arch::GpuConfig &cfg,
                        const PowerParams &params = {});

    /**
     * Average power over one kernel launch. Redundant (DMR)
     * executions recorded in @p r contribute to the unit access
     * rates; pass a result from a DMR-off run for the baseline.
     */
    PowerBreakdown estimate(const gpu::LaunchResult &r) const;

    /** Energy in millijoules: power x kernel time. */
    double energyMj(const gpu::LaunchResult &r) const;

    const PowerParams &params() const { return params_; }

  private:
    /** Activity per lane-cycle across the chip, clamped to [0, 1]. */
    double rate(double events, const gpu::LaunchResult &r) const;

    const arch::GpuConfig cfg_;
    PowerParams params_;
};

} // namespace power
} // namespace warped

#endif // WARPED_POWER_POWER_MODEL_HH
