#include "power/power_model.hh"

#include <algorithm>
#include <sstream>

namespace warped {
namespace power {

std::string
PowerBreakdown::toString() const
{
    std::ostringstream os;
    os.precision(1);
    os << std::fixed << "SP " << sp << "W, SFU " << sfu << "W, LD/ST "
       << ldst << "W, RF " << regFile << "W, FDS " << fds
       << "W, CMP " << comparator << "W, const " << constant
       << "W, idle " << idle << "W => " << total() << "W";
    return os.str();
}

PowerModel::PowerModel(const arch::GpuConfig &cfg,
                       const PowerParams &params)
    : cfg_(cfg), params_(params)
{
}

double
PowerModel::rate(double events, const gpu::LaunchResult &r) const
{
    if (r.cycles == 0)
        return 0.0;
    const double lane_cycles = double(r.cycles) * cfg_.numSms *
                               cfg_.warpSize;
    return std::clamp(events / lane_cycles, 0.0, 1.0);
}

PowerBreakdown
PowerModel::estimate(const gpu::LaunchResult &r) const
{
    using UT = isa::UnitType;
    const auto u = [](UT t) { return static_cast<unsigned>(t); };

    PowerBreakdown b;
    // Primary + redundant executions drive the unit access rates.
    const double sp_execs =
        double(r.unitThreadExecs[u(UT::SP)]) +
        double(r.dmr.redundantThreadExecs[u(UT::SP)]);
    const double sfu_execs =
        double(r.unitThreadExecs[u(UT::SFU)]) +
        double(r.dmr.redundantThreadExecs[u(UT::SFU)]);
    const double ldst_execs =
        double(r.unitThreadExecs[u(UT::LDST)]) +
        double(r.dmr.redundantThreadExecs[u(UT::LDST)]);

    b.sp = params_.spMax * rate(sp_execs, r);
    b.sfu = params_.sfuMax * rate(sfu_execs, r);
    b.ldst = params_.ldstMax * rate(ldst_execs, r);

    // Register file: ~3 operand accesses per thread-instruction; the
    // RFU forwards operands for redundant runs (no extra RF reads for
    // inter-warp replays beyond the buffered copies, §4.3.1), modeled
    // as one access per redundant execution.
    const double redundant_total =
        double(r.dmr.redundantThreadExecs[0]) +
        double(r.dmr.redundantThreadExecs[1]) +
        double(r.dmr.redundantThreadExecs[2]);
    b.regFile = params_.regFileMax *
                rate(3.0 * double(r.issuedThreadInstrs) +
                         redundant_total,
                     r);

    // Fetch/decode/schedule works per issue slot (per SM, not lane).
    const double issue_rate =
        r.cycles ? std::clamp(double(r.issuedWarpInstrs) /
                                  (double(r.cycles) * cfg_.numSms),
                              0.0, 1.0)
                 : 0.0;
    b.fds = params_.fdsMax * issue_rate;

    b.comparator =
        params_.comparatorMax * rate(double(r.dmr.comparisons), r);

    b.constant = params_.constantPower;
    b.idle = params_.idlePower;
    return b;
}

double
PowerModel::energyMj(const gpu::LaunchResult &r) const
{
    const double watts = estimate(r).total();
    const double seconds = r.timeNs * 1e-9;
    return watts * seconds * 1e3;
}

} // namespace power
} // namespace warped
