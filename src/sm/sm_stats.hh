/**
 * @file
 * Per-SM timing statistics: the raw series behind Figs 1, 5, 8a, 8b
 * and the power model's access rates.
 */

#ifndef WARPED_SM_SM_STATS_HH
#define WARPED_SM_SM_STATS_HH

#include <array>
#include <cstdint>

#include <vector>

#include "isa/instruction.hh"
#include "isa/opcode.hh"
#include "stats/distance.hh"
#include "stats/histogram.hh"
#include "stats/run_length.hh"

namespace warped {
namespace sm {

/** One issued warp instruction, for the bounded debug trace. */
struct TraceEvent
{
    Cycle cycle = 0;
    unsigned sm = 0;
    unsigned warp = 0;
    Pc pc = 0;
    isa::Instruction instr;
    unsigned activeCount = 0;
};

struct SmStats
{
    explicit SmStats(unsigned warp_size, unsigned num_regs)
        : activeCountHist(warp_size + 1),
          typeRuns(isa::kNumUnitTypes), rawDistance(num_regs)
    {
    }

    std::uint64_t cycles = 0;          ///< ticks while resident work
    std::uint64_t busyCycles = 0;      ///< cycles with an issue
    std::uint64_t issuedWarpInstrs = 0;
    std::uint64_t issuedThreadInstrs = 0;
    std::uint64_t stallCyclesDmr = 0;  ///< eager-re-exec bubbles
    std::uint64_t stallCyclesRaw = 0;  ///< RAW-on-unverified bubbles
    std::uint64_t blocksRetired = 0;

    /** Fig 1: issue slots by number of active threads (1..warpSize). */
    stats::Histogram activeCountHist;

    /** Fig 5: issue slots per execution-unit type. */
    std::array<std::uint64_t, isa::kNumUnitTypes> unitIssues{};

    /** Per-unit active-thread executions (power access rates). */
    std::array<std::uint64_t, isa::kNumUnitTypes> unitThreadExecs{};

    /** Fig 8a: same-type issue run lengths. */
    stats::RunLengthTracker typeRuns;

    /** §3.4 idle-gap tracking (GpuConfig::trackIdleGaps): run lengths
     *  of consecutive no-issue cycles at SM granularity, and of
     *  consecutive not-covered cycles per SP lane. Long SM gaps are
     *  power-gateable; short SP gaps are not — which is why idle SPs
     *  are better repurposed for DMR than gated. */
    bool trackIdleGaps = false;
    stats::Mean smIdleGap;
    stats::Mean laneIdleGap;
    std::uint64_t smIdleRun = 0;
    std::array<std::uint64_t, 64> laneIdleRun{};

    /** Bounded issue trace (GpuConfig::traceIssueLimit). */
    std::vector<TraceEvent> trace;
    unsigned traceLimit = 0;

    /** Fig 8b: write->read distances of one tracked thread. */
    stats::RawDistanceTracker rawDistance;
    bool trackRawDistance = false; ///< enabled on the tracked SM only
    unsigned trackedWarpSlot = 1;  ///< "warp 1" in the paper's caption
    unsigned trackedThreadSlot = 0;
};

} // namespace sm
} // namespace warped

#endif // WARPED_SM_SM_STATS_HH
