/**
 * @file
 * One streaming multiprocessor: warp state, the single warp scheduler
 * feeding SP / SFU / LD-ST units (paper §2.2), the scoreboard, and the
 * attached protection backend (Warped-DMR by default).
 *
 * Pipeline model (Fig 7): FETCH(1) and DEC/SCHED(1) are folded into
 * the scheduler (functional-first simulation resolves branches at
 * schedule time); RF takes rfStages cycles and EXE is super-pipelined
 * with per-unit-type latency, so a destination register written by an
 * instruction issued at cycle t is readable at t + rfStages + lat.
 * At most one warp instruction issues per cycle per SM.
 */

#ifndef WARPED_SM_SM_HH
#define WARPED_SM_SM_HH

#include <memory>
#include <optional>
#include <vector>

#include "arch/gpu_config.hh"
#include "arch/warp_context.hh"
#include "dmr/dmr_config.hh"
#include "func/executor.hh"
#include "isa/program.hh"
#include "mem/memory.hh"
#include "mem/memory_system.hh"
#include "protection/protection_scheme.hh"
#include "recovery/recovery_config.hh"
#include "recovery/recovery_manager.hh"
#include "sm/scoreboard.hh"
#include "sm/sm_stats.hh"
#include "trace/recorder.hh"

namespace warped {
namespace sm {

class Sm
{
  public:
    /**
     * @param cfg    machine description
     * @param dmr    Warped-DMR configuration
     * @param sm_id  this SM's index
     * @param prog   the kernel being executed
     * @param global GPU global memory
     * @param hook   execution-unit fault boundary
     * @param seed   RNG seed (ReplayQ random pick)
     * @param mem_sys optional contention model
     * @param rcfg   rollback-replay recovery knobs (default: off —
     *               the recovery engine is not even constructed and
     *               every hot-path hook is one null-pointer test)
     * @param scfg   which protection backend guards this SM (default:
     *               Warped-DMR, i.e. the DmrEngine under @p dmr)
     */
    Sm(const arch::GpuConfig &cfg, const dmr::DmrConfig &dmr,
       unsigned sm_id, const isa::Program &prog, mem::Memory &global,
       func::FaultHook &hook, std::uint64_t seed,
       mem::MemorySystem *mem_sys = nullptr,
       const recovery::RecoveryConfig &rcfg = {},
       const protection::SchemeConfig &scfg = {});

    /** Room for another block of @p block_threads threads? */
    bool canAcceptBlock(unsigned block_threads) const;

    /** Make a block resident. */
    void assignBlock(unsigned block_id, unsigned block_threads,
                     unsigned grid_dim);

    /** Any resident unfinished warp? */
    bool busy() const { return residentWarps_ > 0; }

    /** All work done *and* all pending verifications performed? */
    bool
    drained() const
    {
        return !busy() && !scheme_->hasPending() &&
               scheme_->replayQueueSize() == 0 &&
               (!recovery_ || recovery_->idle());
    }

    /** Advance one core-clock cycle. */
    void tick(Cycle now);

    /**
     * Emit structured trace events (issue/commit here, plus the DMR
     * engine's and ReplayQ's seams) to @p rec. Call before the first
     * tick; nullptr (the default state) keeps tracing at one pointer
     * test per seam.
     */
    void
    attachRecorder(trace::Recorder *rec)
    {
        recorder_ = rec;
        scheme_->attachRecorder(rec);
        if (recovery_)
            recovery_->attachRecorder(rec);
    }

    /** Recovery engine, or nullptr when recovery is disabled. */
    const recovery::RecoveryManager *recovery() const
    {
        return recovery_.get();
    }

    SmStats &stats() { return stats_; }
    const SmStats &stats() const { return stats_; }
    protection::ProtectionScheme &scheme() { return *scheme_; }
    const protection::ProtectionScheme &scheme() const
    {
        return *scheme_;
    }
    unsigned id() const { return smId_; }

  private:
    struct BlockSlot
    {
        bool active = false;
        unsigned blockId = 0;
        /** Resident warps not yet finished. */
        unsigned liveWarps = 0;
        /** Live warps currently waiting at the block barrier. */
        unsigned barrierWaiters = 0;
        std::vector<unsigned> warpSlots;
        std::unique_ptr<mem::Memory> shared;
    };

    // Schedulability of each warp slot, mirrored out of the
    // WarpContext objects into one byte array: the per-cycle
    // scheduler scan walks maxWarps_ slots and must not pull a
    // multi-KB context into cache just to learn the slot is not
    // issuable. Kept in sync wherever the underlying predicate
    // (!warp || finished || atBarrier) can change: assignBlock,
    // the post-execute step in tryIssue, releaseBarriers and
    // retireIfDone.
    static constexpr std::uint8_t kWarpEmpty = 0;
    static constexpr std::uint8_t kWarpReady = 1;
    static constexpr std::uint8_t kWarpBarrier = 2;
    static constexpr std::uint8_t kWarpFinished = 3;

    enum class IssueOutcome { None, Issued, Stalled };

    void releaseBarriers();
    void retireIfDone(unsigned block_slot);
    IssueOutcome tryIssue(unsigned warp_slot, Cycle now,
                          isa::UnitType &unit_out);
    unsigned bankConflictCycles(const isa::Instruction &in) const;
    Cycle writebackTime(const isa::Instruction &in, Cycle now) const;
    void recordIssue(const func::ExecRecord &rec, Cycle now);

    /** Cold path: build + record the Issue event. Kept out of line so
     *  the recorder_ == nullptr fast path stays free of dead code. */
    [[gnu::noinline]]
    void traceIssue(const func::ExecRecord &rec, unsigned active,
                    Cycle now);

    /** Cold path: build + record the Commit event. */
    [[gnu::noinline]]
    void traceCommit(const func::ExecRecord &rec,
                     const isa::Instruction &in, Cycle ready,
                     Cycle now);

    const arch::GpuConfig &cfg_;
    mem::MemorySystem *memSys_;
    unsigned smId_;
    const isa::Program &prog_;
    mem::Memory &global_;
    func::Executor exec_;
    std::unique_ptr<protection::ProtectionScheme> scheme_;
    /** Rollback-replay engine; null when recovery is disabled. */
    std::unique_ptr<recovery::RecoveryManager> recovery_;
    Scoreboard scoreboard_;
    SmStats stats_;

    trace::Recorder *recorder_ = nullptr;
    std::uint64_t issueSeq_ = 0; ///< per-SM issue index (traceId low)

    unsigned maxWarps_;
    /** Warp contexts are pooled: a slot's context survives block
     *  retirement (warpState_ == kWarpEmpty marks the slot free) and
     *  is reinit()ed in place by the next assignBlock, so
     *  steady-state launches never reallocate register files. An
     *  empty optional only means the slot has never been used. */
    std::vector<std::optional<arch::WarpContext>> warps_;
    std::vector<std::uint8_t> warpState_; ///< kWarp* per slot
    /** Per-slot PC plane, mirrored out of the SIMT stacks like
     *  warpState_: the scheduler's unit peek and tryIssue's
     *  instruction fetch read this contiguous array instead of
     *  chasing warp-object -> stack -> top-entry pointers. Synced
     *  wherever the stack moves: assignBlock, the post-execute step
     *  in tryIssue, and rollback. Only meaningful while
     *  warpState_ == kWarpReady or kWarpBarrier. */
    std::vector<Pc> warpPc_;
    std::vector<int> warpBlockSlot_; ///< warp slot -> block slot or -1
    std::vector<BlockSlot> blocks_;
    unsigned residentWarps_ = 0;
    unsigned residentThreads_ = 0;
    /** 1 + highest occupied warp slot: warp allocation is first-fit
     *  from slot 0, so the scheduler scan never needs to look past
     *  this. Cyclic (LRR) order over the occupied slots is the same
     *  mod scanLimit_ as mod maxWarps_ because every occupied slot
     *  is below it. */
    unsigned scanLimit_ = 0;
    /** Active blocks with at least one warp waiting at the barrier;
     *  releaseBarriers() is skipped when zero. */
    unsigned barrierBlocks_ = 0;
    unsigned lastScheduled_ = 0;
    unsigned stallCycles_ = 0;
    Cycle lastProgress_ = 0;
    Cycle ldstPortFreeAt_ = 0; ///< coalescing: port busy horizon
};

} // namespace sm
} // namespace warped

#endif // WARPED_SM_SM_HH
