/**
 * @file
 * Register scoreboard: per-warp write-completion tracking.
 *
 * The simulator executes functionally at schedule time, so the
 * scoreboard's only job is timing: an instruction may not issue until
 * every source and its destination register have been written back by
 * earlier instructions (RAW and WAW in issue order). Loads hold their
 * destination for the memory latency, which is what produces the
 * >= 8-cycle RAW distances of Fig 8b.
 */

#ifndef WARPED_SM_SCOREBOARD_HH
#define WARPED_SM_SCOREBOARD_HH

#include <vector>

#include "common/types.hh"
#include "isa/instruction.hh"

namespace warped {
namespace sm {

class Scoreboard
{
  public:
    /**
     * @param num_warps warp slots tracked
     * @param num_regs  registers per thread
     */
    Scoreboard(unsigned num_warps, unsigned num_regs);

    /** Can @p in of warp @p warp issue at @p now? */
    bool ready(unsigned warp, const isa::Instruction &in, Cycle now) const;

    /** Record that @p in issued at @p now and its destination becomes
     *  visible at @p writeback. */
    void issue(unsigned warp, const isa::Instruction &in, Cycle writeback);

    /** Cycle the register becomes readable (0 = never written). */
    Cycle readyAt(unsigned warp, RegIndex r) const;

    /** Clear one warp slot (block retirement / reassignment). */
    void resetWarp(unsigned warp);

  private:
    unsigned numRegs_;
    std::vector<Cycle> readyAt_; ///< [warp * numRegs + r]
};

} // namespace sm
} // namespace warped

#endif // WARPED_SM_SCOREBOARD_HH
