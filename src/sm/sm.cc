#include "sm/sm.hh"

#include <set>

#include "common/logging.hh"
#include "protection/scheme_registry.hh"

namespace warped {
namespace sm {

Sm::Sm(const arch::GpuConfig &cfg, const dmr::DmrConfig &dmr,
       unsigned sm_id, const isa::Program &prog, mem::Memory &global,
       func::FaultHook &hook, std::uint64_t seed,
       mem::MemorySystem *mem_sys, const recovery::RecoveryConfig &rcfg,
       const protection::SchemeConfig &scfg)
    : cfg_(cfg), memSys_(mem_sys), smId_(sm_id), prog_(prog),
      global_(global),
      exec_(cfg, sm_id, global, hook),
      scheme_(protection::makeScheme(scfg, cfg, dmr, exec_,
                                     seed + sm_id * 0x9e3779b9ULL)),
      scoreboard_(cfg.maxThreadsPerSm / cfg.warpSize, prog.numRegs()),
      stats_(cfg.warpSize, prog.numRegs()),
      maxWarps_(cfg.maxThreadsPerSm / cfg.warpSize),
      warps_(maxWarps_), warpState_(maxWarps_, kWarpEmpty),
      warpPc_(maxWarps_, 0),
      warpBlockSlot_(maxWarps_, -1),
      blocks_(cfg.maxBlocksPerSm)
{
    stats_.traceLimit = cfg.traceIssueLimit;
    stats_.trackIdleGaps = cfg.trackIdleGaps;
    if (rcfg.enabled) {
        recovery_ = std::make_unique<recovery::RecoveryManager>(
            rcfg, sm_id, maxWarps_);
        scheme_->attachRecoveryListener(recovery_.get());
    }
}

bool
Sm::canAcceptBlock(unsigned block_threads) const
{
    const unsigned need_warps = cfg_.warpsPerBlock(block_threads);
    if (residentThreads_ + block_threads > cfg_.maxThreadsPerSm)
        return false;

    bool free_block = false;
    for (const auto &b : blocks_) {
        if (!b.active) {
            free_block = true;
            break;
        }
    }
    if (!free_block)
        return false;

    if (maxWarps_ - residentWarps_ < need_warps)
        return false;

    unsigned shared_in_use = 0;
    for (const auto &b : blocks_) {
        if (b.active && b.shared)
            shared_in_use += b.shared->size();
    }
    return shared_in_use + prog_.sharedBytes() <= cfg_.sharedMemBytes;
}

void
Sm::assignBlock(unsigned block_id, unsigned block_threads,
                unsigned grid_dim)
{
    if (!canAcceptBlock(block_threads))
        warped_panic("assignBlock on a full SM");

    unsigned slot = 0;
    while (blocks_[slot].active)
        ++slot;

    BlockSlot &b = blocks_[slot];
    b.active = true;
    b.blockId = block_id;
    b.warpSlots.clear();
    // At least one word so shared-memory-free kernels still have a
    // valid segment object. A segment retained from a retired block
    // is recycled (the program's shared size never changes within an
    // SM, so after the first block this is a clear(), not an
    // allocation).
    const std::size_t shared_bytes =
        prog_.sharedBytes() ? prog_.sharedBytes() : 4u;
    if (b.shared && b.shared->size() == shared_bytes)
        b.shared->clear();
    else
        b.shared = std::make_unique<mem::Memory>(shared_bytes);

    const unsigned need_warps = cfg_.warpsPerBlock(block_threads);
    unsigned assigned = 0;
    for (unsigned w = 0; w < maxWarps_ && assigned < need_warps; ++w) {
        if (warpState_[w] != kWarpEmpty)
            continue;
        if (warps_[w]) {
            // Pooled context from a retired block: reuse its register
            // backing store in place.
            warps_[w]->reinit(block_id, assigned, block_threads,
                              block_threads, grid_dim);
        } else {
            warps_[w].emplace(cfg_.warpSize, prog_.numRegs(), block_id,
                              assigned, block_threads, block_threads,
                              grid_dim);
        }
        scoreboard_.resetWarp(w);
        if (recovery_)
            recovery_->resetWarp(w);
        warpBlockSlot_[w] = static_cast<int>(slot);
        warpState_[w] = warps_[w]->finished() ? kWarpFinished
                                              : kWarpReady;
        warpPc_[w] = 0;
        scanLimit_ = std::max(scanLimit_, w + 1);
        b.warpSlots.push_back(w);
        ++assigned;
        ++residentWarps_;
    }
    b.liveWarps = 0;
    for (unsigned w : b.warpSlots)
        if (warpState_[w] != kWarpFinished)
            ++b.liveWarps;
    b.barrierWaiters = 0;
    residentThreads_ += block_threads;
}

void
Sm::releaseBarriers()
{
    // A block's barrier opens when every live (non-finished) warp
    // has arrived; the counters make the per-tick check O(blocks).
    for (auto &b : blocks_) {
        if (!b.active || b.barrierWaiters == 0 ||
            b.barrierWaiters != b.liveWarps) {
            continue;
        }
        for (unsigned w : b.warpSlots) {
            if (warpState_[w] == kWarpBarrier) {
                warps_[w]->setAtBarrier(false);
                warpState_[w] = kWarpReady;
            }
        }
        b.barrierWaiters = 0;
        --barrierBlocks_;
    }
}

void
Sm::retireIfDone(unsigned block_slot)
{
    BlockSlot &b = blocks_[block_slot];
    for (unsigned w : b.warpSlots) {
        if (warps_[w] && !warps_[w]->finished())
            return;
    }
    unsigned threads = 0;
    for (unsigned w : b.warpSlots) {
        if (warps_[w])
            threads += warps_[w]->validLanes().count();
        // The context object stays behind as a pooled free slot
        // (kWarpEmpty); assignBlock reinits it in place.
        warpState_[w] = kWarpEmpty;
        warpBlockSlot_[w] = -1;
        scoreboard_.resetWarp(w);
        --residentWarps_;
    }
    while (scanLimit_ > 0 && warpState_[scanLimit_ - 1] == kWarpEmpty)
        --scanLimit_;
    residentThreads_ -= threads;
    b.active = false;
    // b.shared is kept for recycling by the next assignBlock.
    b.warpSlots.clear();
    ++stats_.blocksRetired;
}

unsigned
Sm::bankConflictCycles(const isa::Instruction &in) const
{
    if (!cfg_.modelBankConflicts)
        return 0;
    // Sources hitting the same bank (register index mod 4) serialize
    // into extra register-fetch cycles.
    unsigned bank_uses[4] = {0, 0, 0, 0};
    for (unsigned s = 0; s < in.numSrcs(); ++s)
        ++bank_uses[in.src[s].idx % 4];
    unsigned worst = 0;
    for (unsigned b = 0; b < 4; ++b)
        worst = std::max(worst, bank_uses[b]);
    return worst > 1 ? worst - 1 : 0;
}

Cycle
Sm::writebackTime(const isa::Instruction &in, Cycle now) const
{
    unsigned lat;
    if (in.isMem()) {
        lat = isa::opcodeIsSharedMem(in.op) ? cfg_.sharedMemLatency
                                            : cfg_.globalMemLatency;
    } else if (in.unit() == isa::UnitType::SFU) {
        lat = cfg_.sfuLatency;
    } else {
        lat = cfg_.spLatency;
    }
    return now + cfg_.rfStages + bankConflictCycles(in) + lat;
}

void
Sm::recordIssue(const func::ExecRecord &rec, Cycle now)
{
    const unsigned active = rec.active.count();
    const unsigned type = static_cast<unsigned>(rec.instr.unit());

    ++stats_.issuedWarpInstrs;
    stats_.issuedThreadInstrs += active;
    stats_.activeCountHist.add(active);
    ++stats_.unitIssues[type];
    stats_.unitThreadExecs[type] += active;
    stats_.typeRuns.observe(type);

    if (stats_.trackIdleGaps) {
        // Lane-granular gaps: a lane is busy this cycle iff the
        // issued instruction's (mapped) mask covers it.
        const LaneMask lanes =
            scheme_->mapping().toLaneSpace(rec.active);
        for (unsigned l = 0; l < cfg_.warpSize; ++l) {
            if (lanes.test(l)) {
                if (stats_.laneIdleRun[l] > 0) {
                    stats_.laneIdleGap.add(
                        double(stats_.laneIdleRun[l]));
                    stats_.laneIdleRun[l] = 0;
                }
            } else {
                ++stats_.laneIdleRun[l];
            }
        }
    }

    if (stats_.trace.size() < stats_.traceLimit) {
        TraceEvent ev;
        ev.cycle = now;
        ev.sm = smId_;
        ev.warp = rec.warpId;
        ev.pc = rec.pc;
        ev.instr = rec.instr;
        ev.activeCount = active;
        stats_.trace.push_back(ev);
    }

    if (recorder_) [[unlikely]]
        traceIssue(rec, active, now);

    if (stats_.trackRawDistance &&
        rec.warpId == stats_.trackedWarpSlot &&
        rec.active.test(stats_.trackedThreadSlot)) {
        const auto &in = rec.instr;
        for (unsigned s = 0; s < in.numSrcs(); ++s)
            stats_.rawDistance.onRead(in.src[s].idx, now);
        if (in.hasDst())
            stats_.rawDistance.onWrite(in.dst.idx, now);
    }
}

void
Sm::traceIssue(const func::ExecRecord &rec, unsigned active, Cycle now)
{
    trace::Event ev;
    ev.cycle = now;
    ev.kind = trace::EventKind::Issue;
    ev.unit = static_cast<std::uint8_t>(rec.instr.unit());
    ev.warp = rec.warpId;
    ev.pc = rec.pc;
    ev.a0 = rec.traceId;
    ev.a1 = active;
    recorder_->record(smId_, ev);
}

void
Sm::traceCommit(const func::ExecRecord &rec, const isa::Instruction &in,
                Cycle ready, Cycle now)
{
    // Only instructions that produce a result (or touch memory) have
    // a writeback to commit.
    if (!in.hasDst() && !in.isMem())
        return;
    trace::Event ev;
    ev.cycle = ready;
    ev.kind = trace::EventKind::Commit;
    ev.unit = static_cast<std::uint8_t>(in.unit());
    ev.warp = rec.warpId;
    ev.pc = rec.pc;
    ev.a0 = rec.traceId;
    ev.a1 = ready - now;
    recorder_->record(smId_, ev);
}

Sm::IssueOutcome
Sm::tryIssue(unsigned warp_slot, Cycle now, isa::UnitType &unit_out)
{
    // Schedulability and PC come from the mirrored planes: a losing
    // candidate (scoreboard not ready, port busy) is rejected without
    // ever touching the multi-KB WarpContext object.
    if (warpState_[warp_slot] != kWarpReady)
        return IssueOutcome::None;
    if (recovery_ && recovery_->blocked(warp_slot, now))
        return IssueOutcome::None; // post-rollback penalty window

    const isa::Instruction &in = prog_.at(warpPc_[warp_slot]);
    if (!scoreboard_.ready(warp_slot, in, now))
        return IssueOutcome::None;
    if (cfg_.modelCoalescing && in.isMem() &&
        !isa::opcodeIsSharedMem(in.op) && now < ldstPortFreeAt_) {
        return IssueOutcome::None; // LD/ST port still draining
    }

    // Recovery gating: a warp may not EXIT or enter a barrier while
    // any of its instructions is still unverified — otherwise a later
    // mismatch could not be rolled back (the final stores would have
    // retired) and a rollback could cross a barrier. The stall cycle
    // verifies one outstanding record, so the gate drains in bounded
    // time; a pending rollback resolves on the next tick.
    if (recovery_ &&
        (in.op == isa::Opcode::BAR || in.op == isa::Opcode::EXIT) &&
        recovery_->hasUnverified(warp_slot)) [[unlikely]] {
        recovery_->countRetireStall();
        scheme_->preRetireVerify(warp_slot, now);
        lastProgress_ = now;
        return IssueOutcome::Stalled; // cycle consumed
    }

    // RAW hazard against an unverified ReplayQ result: the pipeline
    // stalls for a cycle while the producer is verified.
    if (scheme_->rawHazardStall(warp_slot, in, now)) {
        ++stats_.stallCyclesRaw;
        lastProgress_ = now;
        return IssueOutcome::Stalled; // cycle consumed
    }
    unit_out = in.unit();

    auto &warp = warps_[warp_slot];
    const int block_slot = warpBlockSlot_[warp_slot];
    mem::Memory &shared = *blocks_[block_slot].shared;

    // Execute into the engine's scratch record: no 2.6 KB
    // zero-initialization per issue, and onIssue can adopt it as the
    // pending RF-stage instruction without copying.
    func::ExecRecord &rec = scheme_->scratch();
    std::vector<func::MemUndo> *undo = nullptr;
    if (recovery_) [[unlikely]]
        undo = recovery_->beginDelta(warp_slot, *warp, in, now);
    exec_.stepInto(*warp, prog_, shared, scheme_->mapping().laneTable(),
                   now, rec, undo);
    rec.warpId = warp_slot;
    rec.traceId = (std::uint64_t{smId_} << 40) | ++issueSeq_;
    if (recovery_) [[unlikely]]
        recovery_->commitDelta(warp_slot, rec);

    unsigned extra_mem_cycles = 0;
    Cycle contended_ready = 0;
    const bool global_mem =
        in.isMem() && !isa::opcodeIsSharedMem(in.op);
    if (global_mem && (cfg_.modelCoalescing || memSys_)) {
        // One transaction per distinct memory segment the warp hits.
        std::set<Addr> segments;
        for (unsigned slot = 0; slot < cfg_.warpSize; ++slot) {
            if (rec.active.test(slot))
                segments.insert(rec.results[slot] /
                                cfg_.coalesceSegmentBytes);
        }
        if (cfg_.modelCoalescing) {
            const auto n = static_cast<unsigned>(segments.size());
            extra_mem_cycles = n > 1 ? n - 1 : 0;
            ldstPortFreeAt_ = now + 1 + extra_mem_cycles;
        }
        if (memSys_) {
            const std::vector<Addr> segs(segments.begin(),
                                         segments.end());
            contended_ready =
                memSys_->access(now, segs) + cfg_.rfStages;
        }
    }

    const Cycle ready = std::max(writebackTime(in, now) +
                                     extra_mem_cycles,
                                 contended_ready);
    scoreboard_.issue(warp_slot, in, ready);
    recordIssue(rec, now);
    if (recorder_) [[unlikely]]
        traceCommit(rec, in, ready, now);
    ++stats_.busyCycles;

    const unsigned stall = scheme_->onIssue(rec, now);
    stallCycles_ += stall;
    stats_.stallCyclesDmr += stall;

    // Mirror the executed warp's new schedulability and PC.
    if (warp->finished()) {
        warpState_[warp_slot] = kWarpFinished;
        --blocks_[block_slot].liveWarps;
        retireIfDone(block_slot);
    } else {
        warpPc_[warp_slot] = warp->stack().pc();
        if (warp->atBarrier()) {
            warpState_[warp_slot] = kWarpBarrier;
            if (blocks_[block_slot].barrierWaiters++ == 0)
                ++barrierBlocks_;
        }
    }

    lastScheduled_ = warp_slot;
    lastProgress_ = now;
    return IssueOutcome::Issued;
}

void
Sm::tick(Cycle now)
{
    ++stats_.cycles;

    if (stallCycles_ > 0) {
        --stallCycles_;
        return;
    }

    // A comparator mismatch filed a rollback request: restoring the
    // warp consumes this whole cycle (one rollback per tick keeps the
    // restore deterministic and models the squash cost).
    if (recovery_ && recovery_->hasPendingRollback()) [[unlikely]] {
        const int w = recovery_->nextPendingWarp();
        if (w < 0 || !warps_[static_cast<unsigned>(w)])
            warped_panic("SM ", smId_, ": rollback request for an "
                         "empty warp slot ", w);
        const auto wu = static_cast<unsigned>(w);
        recovery_->rollback(wu, *warps_[wu], *scheme_, now);
        // Whether restored or given up, the warp is schedulable again
        // (the retire gate kept it from ever reaching barrier/finish
        // with unverified work).
        if (warps_[wu]->finished()) {
            warpState_[wu] = kWarpFinished;
        } else {
            warpState_[wu] = kWarpReady;
            warpPc_[wu] = warps_[wu]->stack().pc();
        }
        lastProgress_ = now;
        return;
    }

    if (barrierBlocks_ > 0)
        releaseBarriers();

    // Up to numSchedulers issues per cycle, each from a different
    // warp. With multiple schedulers each has private SP units, but
    // the LD/ST units and SFUs are shared (paper §2.2), so at most
    // one instruction per shared unit type issues per cycle.
    unsigned progress = 0;
    bool ldst_used = false, sfu_used = false;
    // Fix the scan base up front: tryIssue advances lastScheduled_,
    // and re-reading it mid-scan could revisit an already-issued warp.
    // LRR resumes after the last issued warp; GTO retries the same
    // warp first (greedy) and then falls back to slot order (oldest).
    const bool gto =
        cfg_.schedPolicy == arch::SchedPolicy::GreedyThenOldest;
    // Scan only up to the highest occupied slot. For LRR the base is
    // clamped below the limit (retirement may have shrunk it past
    // lastScheduled_); cyclic order over the occupied slots is
    // unchanged because none sits at or above scanLimit_.
    const unsigned limit = scanLimit_;
    const unsigned base = gto ? lastScheduled_
                              : std::min(lastScheduled_,
                                         limit > 0 ? limit - 1 : 0);
    const unsigned scan_len = gto ? limit + 1 : limit;
    for (unsigned i = 1;
         i <= scan_len && progress < cfg_.numSchedulers; ++i) {
        const unsigned w = gto ? (i == 1 ? base : i - 2)
                               : (base + i) % (limit > 0 ? limit : 1);
        if (warpState_[w] != kWarpReady)
            continue;
        if (cfg_.numSchedulers > 1) {
            const auto unit = prog_.at(warpPc_[w]).unit();
            if (unit == isa::UnitType::LDST && ldst_used)
                continue;
            if (unit == isa::UnitType::SFU && sfu_used)
                continue;
        }
        isa::UnitType unit = isa::UnitType::SP;
        const auto outcome = tryIssue(w, now, unit);
        if (outcome == IssueOutcome::None)
            continue;
        ++progress;
        if (outcome == IssueOutcome::Stalled || stallCycles_ > 0)
            break; // a pipeline stall ends this cycle's issue group
        if (unit == isa::UnitType::LDST)
            ldst_used = true;
        else if (unit == isa::UnitType::SFU)
            sfu_used = true;
    }
    if (stats_.trackIdleGaps) {
        if (progress > 0) {
            if (stats_.smIdleRun > 0) {
                stats_.smIdleGap.add(double(stats_.smIdleRun));
                stats_.smIdleRun = 0;
            }
        } else {
            ++stats_.smIdleRun;
        }
    }

    if (progress > 0)
        return;

    // Nothing issued: every unit is idle; the DMR engine may drain a
    // pending verification for free.
    if (stats_.trackIdleGaps) {
        for (unsigned l = 0; l < cfg_.warpSize; ++l)
            ++stats_.laneIdleRun[l];
    }
    scheme_->onIdleCycle(now, busy());

    if (busy() && now - lastProgress_ > 1000000)
        warped_panic("SM ", smId_, " made no progress for 1M cycles: "
                     "barrier deadlock or scoreboard bug (pc ",
                     "unknown)");
}

} // namespace sm
} // namespace warped
