#include "sm/scoreboard.hh"

#include <algorithm>

#include "common/logging.hh"

namespace warped {
namespace sm {

Scoreboard::Scoreboard(unsigned num_warps, unsigned num_regs)
    : numRegs_(num_regs), readyAt_(std::size_t{num_warps} * num_regs, 0)
{
}

bool
Scoreboard::ready(unsigned warp, const isa::Instruction &in,
                  Cycle now) const
{
    const Cycle *row = readyAt_.data() + std::size_t{warp} * numRegs_;
    for (unsigned s = 0; s < in.numSrcs(); ++s) {
        if (row[in.src[s].idx] > now)
            return false;
    }
    if (in.hasDst() && row[in.dst.idx] > now)
        return false;
    return true;
}

void
Scoreboard::issue(unsigned warp, const isa::Instruction &in,
                  Cycle writeback)
{
    if (!in.hasDst())
        return;
    Cycle &slot = readyAt_[std::size_t{warp} * numRegs_ + in.dst.idx];
    slot = std::max(slot, writeback);
}

Cycle
Scoreboard::readyAt(unsigned warp, RegIndex r) const
{
    return readyAt_[std::size_t{warp} * numRegs_ + r];
}

void
Scoreboard::resetWarp(unsigned warp)
{
    std::fill_n(readyAt_.begin() + std::size_t{warp} * numRegs_,
                numRegs_, 0);
}

} // namespace sm
} // namespace warped
