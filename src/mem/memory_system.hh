/**
 * @file
 * Chip-level global-memory timing: partition queueing and, with
 * GpuConfig::memModel == Banked, DRAM bank/row structure.
 *
 * The baseline model (and the paper's) charges every global access a
 * fixed latency. With GpuConfig::modelMemContention the chip instead
 * owns one MemorySystem shared by all SMs: transactions are
 * interleaved across partitions by segment address, each partition
 * services one transaction per service period, and a warp access
 * completes when its slowest transaction is serviced — so
 * bandwidth-bound kernels see queueing delay on top of the DRAM
 * latency. The Banked model refines the partition into memBanks
 * open-row banks: consecutive segments interleave across banks, each
 * bank keeps one row open, and a transaction landing on a different
 * row pays memRowMissPenalty extra cycles (precharge + activate), so
 * strided kernels trade row locality for bank parallelism.
 * Everything is computed at issue time (deterministic look-ahead),
 * which keeps the functional-first pipeline intact.
 */

#ifndef WARPED_MEM_MEMORY_SYSTEM_HH
#define WARPED_MEM_MEMORY_SYSTEM_HH

#include <vector>

#include "arch/gpu_config.hh"
#include "common/types.hh"

namespace warped {
namespace mem {

/** Chip-shared global-memory timing model (see the file comment for
 *  the partition/bank semantics). One instance per Gpu. */
class MemorySystem
{
  public:
    /** @param cfg machine description; must outlive the system. */
    explicit MemorySystem(const arch::GpuConfig &cfg);

    /**
     * Schedule one warp's global transactions.
     *
     * @param now       issue cycle
     * @param segments  distinct segment addresses the warp touches
     * @return cycle at which the last transaction's data is back
     */
    Cycle access(Cycle now, const std::vector<Addr> &segments);

    std::uint64_t transactions() const { return transactions_; }

    /** Total queueing delay accumulated beyond the raw latency. */
    std::uint64_t queueingCycles() const { return queueing_; }

    /** Banked model only: transactions hitting the bank's open row. */
    std::uint64_t rowHits() const { return rowHits_; }
    /** Banked model only: transactions that switched the open row. */
    std::uint64_t rowMisses() const { return rowMisses_; }

  private:
    Cycle accessBanked(Cycle now, const std::vector<Addr> &segments);

    const arch::GpuConfig &cfg_;
    std::vector<Cycle> partitionFreeAt_;
    std::vector<Cycle> bankFreeAt_;  ///< Banked model
    std::vector<Addr> openRow_;      ///< Banked: row open per bank
    std::uint64_t transactions_ = 0;
    std::uint64_t queueing_ = 0;
    std::uint64_t rowHits_ = 0;
    std::uint64_t rowMisses_ = 0;
};

} // namespace mem
} // namespace warped

#endif // WARPED_MEM_MEMORY_SYSTEM_HH
