/**
 * @file
 * Chip-level global-memory timing: partition queueing.
 *
 * The baseline model (and the paper's) charges every global access a
 * fixed latency. With GpuConfig::modelMemContention the chip instead
 * owns one MemorySystem shared by all SMs: transactions are
 * interleaved across partitions by segment address, each partition
 * services one transaction per service period, and a warp access
 * completes when its slowest transaction is serviced — so
 * bandwidth-bound kernels see queueing delay on top of the DRAM
 * latency. Everything is computed at issue time (deterministic
 * look-ahead), which keeps the functional-first pipeline intact.
 */

#ifndef WARPED_MEM_MEMORY_SYSTEM_HH
#define WARPED_MEM_MEMORY_SYSTEM_HH

#include <vector>

#include "arch/gpu_config.hh"
#include "common/types.hh"

namespace warped {
namespace mem {

class MemorySystem
{
  public:
    explicit MemorySystem(const arch::GpuConfig &cfg);

    /**
     * Schedule one warp's global transactions.
     *
     * @param now       issue cycle
     * @param segments  distinct segment addresses the warp touches
     * @return cycle at which the last transaction's data is back
     */
    Cycle access(Cycle now, const std::vector<Addr> &segments);

    std::uint64_t transactions() const { return transactions_; }

    /** Total queueing delay accumulated beyond the raw latency. */
    std::uint64_t queueingCycles() const { return queueing_; }

  private:
    const arch::GpuConfig &cfg_;
    std::vector<Cycle> partitionFreeAt_;
    std::uint64_t transactions_ = 0;
    std::uint64_t queueing_ = 0;
};

} // namespace mem
} // namespace warped

#endif // WARPED_MEM_MEMORY_SYSTEM_HH
