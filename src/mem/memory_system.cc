#include "mem/memory_system.hh"

#include <algorithm>
#include <limits>

namespace warped {
namespace mem {

namespace {

/// openRow_ sentinel: bank has no row open yet (first touch misses).
constexpr Addr kNoRow = std::numeric_limits<Addr>::max();

} // namespace

MemorySystem::MemorySystem(const arch::GpuConfig &cfg)
    : cfg_(cfg), partitionFreeAt_(std::max(1u, cfg.memoryPartitions), 0)
{
    if (cfg.memModel == arch::MemModel::Banked) {
        bankFreeAt_.assign(std::max(1u, cfg.memBanks), 0);
        openRow_.assign(bankFreeAt_.size(), kNoRow);
    }
}

Cycle
MemorySystem::access(Cycle now, const std::vector<Addr> &segments)
{
    if (cfg_.memModel == arch::MemModel::Banked)
        return accessBanked(now, segments);
    Cycle done = now + cfg_.globalMemLatency;
    for (const Addr seg : segments) {
        const std::size_t p = seg % partitionFreeAt_.size();
        const Cycle start = std::max(now, partitionFreeAt_[p]);
        partitionFreeAt_[p] = start + cfg_.memoryServicePeriod;
        const Cycle resp = start + cfg_.globalMemLatency;
        queueing_ += start - now;
        ++transactions_;
        done = std::max(done, resp);
    }
    return done;
}

Cycle
MemorySystem::accessBanked(Cycle now, const std::vector<Addr> &segments)
{
    // Segments interleave across banks low-order first (adjacent
    // segments hit adjacent banks — the usual DRAM interleave), and
    // a bank's row index advances once per full sweep of all banks
    // times the segments-per-row ratio.
    const Addr banks = bankFreeAt_.size();
    const Addr segs_per_row =
        std::max<Addr>(1, cfg_.memRowBytes / cfg_.coalesceSegmentBytes);
    Cycle done = now + cfg_.globalMemLatency;
    for (const Addr seg : segments) {
        const std::size_t b = static_cast<std::size_t>(seg % banks);
        const Addr row = seg / banks / segs_per_row;
        const Cycle start = std::max(now, bankFreeAt_[b]);
        Cycle latency = cfg_.globalMemLatency;
        if (openRow_[b] == row) {
            ++rowHits_;
        } else {
            ++rowMisses_;
            latency += cfg_.memRowMissPenalty;
            openRow_[b] = row;
        }
        bankFreeAt_[b] = start + cfg_.memoryServicePeriod;
        queueing_ += start - now;
        ++transactions_;
        done = std::max(done, start + latency);
    }
    return done;
}

} // namespace mem
} // namespace warped
