#include "mem/memory_system.hh"

#include <algorithm>

namespace warped {
namespace mem {

MemorySystem::MemorySystem(const arch::GpuConfig &cfg)
    : cfg_(cfg), partitionFreeAt_(std::max(1u, cfg.memoryPartitions), 0)
{
}

Cycle
MemorySystem::access(Cycle now, const std::vector<Addr> &segments)
{
    Cycle done = now + cfg_.globalMemLatency;
    for (const Addr seg : segments) {
        const std::size_t p = seg % partitionFreeAt_.size();
        const Cycle start = std::max(now, partitionFreeAt_[p]);
        partitionFreeAt_[p] = start + cfg_.memoryServicePeriod;
        const Cycle resp = start + cfg_.globalMemLatency;
        queueing_ += start - now;
        ++transactions_;
        done = std::max(done, resp);
    }
    return done;
}

} // namespace mem
} // namespace warped
