/**
 * @file
 * ECC codec family for the memory fault model.
 *
 * Two codecs grow the fixed (39,32) SECDED in mem/ecc.* into the
 * configurable protection the banked memory model exposes:
 *
 *  - SecdedCode: a runtime-width Hamming + overall-parity code over
 *    k data bits (k in {8, 16, 32, 64} — the (72,64) instance is the
 *    classic DRAM DIMM code). Single-error-correct,
 *    double-error-detect, same construction as mem::Secded but
 *    parameterized so the exhaustive codec tests cover every
 *    supported word width.
 *
 *  - ChipkillCode: symbol correction over GF(16). A 32-bit word is
 *    split into eight 4-bit symbols (one per DRAM chip slice) and
 *    extended with three check symbols from a shortened
 *    Reed-Solomon-style code of minimum distance 4: any single
 *    corrupted *symbol* — up to 4 bits, a whole dead chip — is
 *    corrected, and any two corrupted symbols are detected. This is
 *    the qualitative step past SECDED: a 4-bit burst that SECDED can
 *    silently miscorrect is repaired exactly.
 *
 * Both codecs are pure functions of their input (no state), so one
 * shared instance serves all threads.
 */

#ifndef WARPED_MEM_CODEC_HH
#define WARPED_MEM_CODEC_HH

#include <cstdint>
#include <vector>

namespace warped {
namespace mem {

/** Decode outcome shared by every codec in this family. */
enum class CodecStatus
{
    Ok,        ///< clean codeword (or an undetectable alias)
    Corrected, ///< error found and repaired; data is exact
    Detected,  ///< uncorrectable error flagged (a memory DUE)
};

/**
 * Runtime-width SECDED: Hamming code over k data bits with check
 * bits at power-of-two positions plus an overall parity bit.
 * Codewords are up to 72 bits, carried in a (lo, hi) pair so the
 * (72,64) DIMM instance fits without compiler extensions.
 */
class SecdedCode
{
  public:
    /** A codeword as raw bits; bit i is (i < 64 ? lo >> i : hi >> (i-64)). */
    struct Codeword
    {
        std::uint64_t lo = 0;
        std::uint64_t hi = 0;

        bool bit(unsigned i) const
        {
            return i < 64 ? (lo >> i) & 1 : (hi >> (i - 64)) & 1;
        }
        void flip(unsigned i)
        {
            if (i < 64)
                lo ^= std::uint64_t{1} << i;
            else
                hi ^= std::uint64_t{1} << (i - 64);
        }
    };

    struct Decoded
    {
        std::uint64_t data = 0;
        CodecStatus status = CodecStatus::Ok;
    };

    /** @param data_bits protected word width (8, 16, 32 or 64) */
    explicit SecdedCode(unsigned data_bits);

    unsigned dataBits() const { return k_; }
    /** Total codeword bits including the overall parity bit. */
    unsigned codeBits() const { return bits_; }

    /** Codeword position (1..codeBits-1) carrying data bit @p i —
     *  exposed so fault models can flip a *stored* data bit. */
    unsigned dataPosition(unsigned i) const { return dataPos_[i]; }

    Codeword encode(std::uint64_t data) const;
    Decoded decode(Codeword cw) const;

  private:
    unsigned k_;      ///< data bits
    unsigned checks_; ///< Hamming check bits
    unsigned bits_;   ///< 1 (overall parity) + k_ + checks_
    std::vector<unsigned> dataPos_; ///< data bit -> Hamming position
};

/** GF(16) single-symbol-correct / double-symbol-detect code:
 *  8 data nibbles + 3 check nibbles = 11 symbols (44 bits). */
class ChipkillCode
{
  public:
    static constexpr unsigned kSymbolBits = 4;
    static constexpr unsigned kDataSymbols = 8;
    static constexpr unsigned kCheckSymbols = 3;
    static constexpr unsigned kSymbols = kDataSymbols + kCheckSymbols;
    static constexpr unsigned kCodeBits = kSymbols * kSymbolBits;

    struct Decoded
    {
        std::uint32_t data = 0;
        CodecStatus status = CodecStatus::Ok;
    };

    ChipkillCode();

    /** Encode 32 data bits into a 44-bit codeword; data symbol j
     *  occupies codeword bits [4j, 4j+4), checks follow. */
    std::uint64_t encode(std::uint32_t data) const;

    Decoded decode(std::uint64_t cw) const;

  private:
    std::uint8_t exp_[32];   ///< alpha^i (doubled to skip mod 15)
    std::uint8_t log_[16];   ///< discrete log, log_[0] unused
    std::uint8_t enc_[3][8]; ///< check j = XOR_i mul(enc_[j][i], d_i)
};

/** Shared immutable instances (codecs are stateless). */
const SecdedCode &secded32();
const ChipkillCode &chipkill();

} // namespace mem
} // namespace warped

#endif // WARPED_MEM_CODEC_HH
