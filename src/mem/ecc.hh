/**
 * @file
 * SECDED ECC for the memory system.
 *
 * The paper's fault model assumes memory is ECC-protected (§1, citing
 * Fermi's ECC [16]) and restricts Warped-DMR to execution units. This
 * module makes that assumption concrete: a (39,32) Hamming code with
 * an added overall-parity bit — single-error-correct, double-error-
 * detect, the scheme GPU DRAM/SRAM ECC actually uses — plus an
 * EccMemory wrapper that stores codewords, corrects on read, and
 * counts scrub events, so memory-side faults can be injected and
 * shown to be absorbed before they ever reach the execution units.
 */

#ifndef WARPED_MEM_ECC_HH
#define WARPED_MEM_ECC_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace warped {
namespace mem {

/** (39,32) Hamming + overall parity: 40-bit SECDED codewords. */
class Secded
{
  public:
    static constexpr unsigned kCodeBits = 40;

    enum class Status
    {
        Ok,           ///< clean codeword
        Corrected,    ///< single-bit error fixed
        DoubleError,  ///< uncorrectable (detected) error
    };

    struct Decoded
    {
        std::uint32_t data = 0;
        Status status = Status::Ok;
    };

    /** Encode a 32-bit word into a 40-bit codeword. */
    static std::uint64_t encode(std::uint32_t data);

    /** Decode, correcting a single flipped bit if present. */
    static Decoded decode(std::uint64_t codeword);
};

/**
 * A word-granular ECC-protected memory: every 32-bit word is stored
 * as a SECDED codeword; reads correct single-bit upsets transparently
 * and flag double errors.
 */
class EccMemory
{
  public:
    explicit EccMemory(std::size_t bytes);

    std::size_t size() const { return words_.size() * 4; }

    void writeWord(Addr addr, RegValue value);

    /** Read with correction; @p status receives the ECC outcome. */
    RegValue readWord(Addr addr, Secded::Status *status = nullptr);

    /** Flip bit @p bit (0..39) of the stored codeword at @p addr —
     *  a DRAM upset. */
    void injectBitFlip(Addr addr, unsigned bit);

    /** Re-encode every word, clearing accumulated single-bit upsets
     *  (a scrub pass); returns the number of corrections made. */
    std::uint64_t scrub();

    std::uint64_t correctedCount() const { return corrected_; }
    std::uint64_t doubleErrorCount() const { return doubleErrors_; }

  private:
    std::size_t index(Addr addr) const;

    std::vector<std::uint64_t> words_;
    std::uint64_t corrected_ = 0;
    std::uint64_t doubleErrors_ = 0;
};

} // namespace mem
} // namespace warped

#endif // WARPED_MEM_ECC_HH
