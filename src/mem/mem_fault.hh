/**
 * @file
 * Memory-cell fault plane: the memory-side counterpart of the
 * register-file FaultInjector.
 *
 * The paper's §1 fault model assumes DRAM is ECC-protected and
 * scopes Warped-DMR to execution faults; this plane models the other
 * side of that assumption so campaigns can measure what the ECC
 * actually absorbs. A campaign arms at most one *upset* — a bit,
 * bit-pair or chip-wide (4-bit) corruption of one stored word,
 * striking at a chosen cycle — and the plane simulates, on every
 * read of that word, what the corrupted codeword would decode to
 * under the configured arch::EccKind:
 *
 *  - the stored bytes themselves stay golden (virtual corruption),
 *    so a correction returns exact data with no state rollback;
 *  - a corrected read scrubs the upset (the controller writes back
 *    the repaired word), so later reads are clean;
 *  - a detected-uncorrectable read raises the sticky `uncorrectable`
 *    flag — the campaign classifies the run as a memory DUE;
 *  - with EccKind::None (or a silent alias) the corrupted data
 *    propagates into the pipeline — candidate SDC;
 *  - any write to the word at-or-after the strike re-encodes the
 *    cell and clears the upset; reads before the strike are clean.
 *
 * The plane hangs off the global mem::Memory behind one
 * [[unlikely]] null-pointer test, so fault-free launches never pay
 * for it.
 */

#ifndef WARPED_MEM_MEM_FAULT_HH
#define WARPED_MEM_MEM_FAULT_HH

#include <cstddef>
#include <cstdint>

#include "arch/gpu_config.hh"
#include "common/types.hh"

namespace warped {
namespace mem {

/** Shape of a memory-cell upset (the campaign's memory-fault axis). */
enum class MemFaultKind
{
    Bit,       ///< single cell: ECC bread and butter
    DoubleBit, ///< adjacent bit pair: SECDED detects, chipkill may fix
    ChipBurst, ///< one 4-bit symbol (a dead chip slice): chipkill territory
};

inline constexpr unsigned kNumMemFaultKinds = 3;

/** Campaign/metrics slug ("membit", "memdouble", "memchip"). */
const char *memFaultKindSlug(MemFaultKind k);

/**
 * Holds one armed upset against a global-memory word and filters
 * reads of that word through the configured ECC codec.
 */
class MemFaultPlane
{
  public:
    explicit MemFaultPlane(arch::EccKind ecc) : ecc_(ecc) {}

    /** Arm an upset of @p kind at word-aligned byte address
     *  @p word_addr, striking at cycle @p at; @p bit picks the
     *  corrupted bit (Bit), bit pair start (DoubleBit) or any bit of
     *  the corrupted nibble (ChipBurst). */
    void inject(Addr word_addr, MemFaultKind kind, unsigned bit,
                Cycle at);

    /** Advance the plane's notion of simulation time (driven once
     *  per cycle by the launch loop; verify-time host reads keep the
     *  final value, so they see the post-run cell state). */
    void setNow(Cycle now) { now_ = now; }

    /** Filter a word read at @p addr; returns what the load lane
     *  sees. */
    RegValue filterWord(Addr addr, RegValue raw);

    /** Filter a byte read; @p mem_base lets the plane rebuild the
     *  full golden word the byte belongs to. */
    std::uint8_t filterByte(Addr addr, std::uint8_t raw,
                            const std::uint8_t *mem_base);

    /** Patch a bulk copy-out that overlaps the upset word (host
     *  readback goes through the same ECC path as device loads). */
    void patchCopyOut(Addr addr, void *dst, std::size_t n,
                      const std::uint8_t *mem_base);

    /** A store to [addr, addr+n) re-encodes any overlapped word and
     *  clears a struck upset (writes before the strike leave the
     *  pending upset armed: the cell flips later). */
    void onWrite(Addr addr, std::size_t n);

    /** Reads that observed the faulty word (0 => fault never
     *  activated: the run is trivially Masked). */
    std::uint64_t consumedReads() const { return consumedReads_; }
    /** Reads the codec corrected transparently. */
    std::uint64_t corrected() const { return corrected_; }
    /** Reads flagged detected-but-uncorrectable (memory DUE). */
    std::uint64_t uncorrectable() const { return uncorrectable_; }

    arch::EccKind ecc() const { return ecc_; }

    /** Disarm and zero all counters (campaign run reuse). */
    void reset();

  private:
    RegValue applyRead(RegValue raw);
    RegValue goldenWord(const std::uint8_t *mem_base) const;

    arch::EccKind ecc_;
    Cycle now_ = 0;

    Addr addr_ = 0;          ///< word-aligned upset address
    MemFaultKind kind_ = MemFaultKind::Bit;
    unsigned bit_ = 0;
    Cycle at_ = 0;           ///< strike cycle
    bool live_ = false;

    std::uint64_t consumedReads_ = 0;
    std::uint64_t corrected_ = 0;
    std::uint64_t uncorrectable_ = 0;
};

} // namespace mem
} // namespace warped

#endif // WARPED_MEM_MEM_FAULT_HH
