#include "mem/memory.hh"

#include <algorithm>
#include <cstring>

#include "common/buffer_pool.hh"
#include "common/logging.hh"
#include "mem/mem_fault.hh"

namespace warped {
namespace mem {

Memory::Memory(std::size_t bytes)
    : bytes_(common::acquireBuffer(bytes))
{
}

Memory::~Memory()
{
    common::releaseBuffer(std::move(bytes_));
}

void
Memory::check(Addr addr, std::size_t n) const
{
    if (addr + n > bytes_.size() || addr + n < addr)
        outOfBounds(addr, n);
}

void
Memory::outOfBounds(Addr addr, std::size_t n) const
{
    warped_panic("memory access [", addr, ", ", addr + n,
                 ") out of bounds (size ", bytes_.size(), ")");
}

RegValue
Memory::filterWordSlow(Addr addr, RegValue v) const
{
    return plane_->filterWord(addr, v);
}

void
Memory::onWriteSlow(Addr addr, std::size_t n)
{
    plane_->onWrite(addr, n);
}

std::uint8_t
Memory::readByte(Addr addr) const
{
    check(addr, 1);
    std::uint8_t b = bytes_[addr];
    if (plane_) [[unlikely]]
        b = plane_->filterByte(addr, b, bytes_.data());
    return b;
}

void
Memory::writeByte(Addr addr, std::uint8_t value)
{
    check(addr, 1);
    bytes_[addr] = value;
    if (plane_) [[unlikely]]
        plane_->onWrite(addr, 1);
}

void
Memory::copyIn(Addr addr, const void *src, std::size_t n)
{
    check(addr, n);
    std::memcpy(bytes_.data() + addr, src, n);
    if (plane_) [[unlikely]]
        plane_->onWrite(addr, n);
}

void
Memory::copyOut(Addr addr, void *dst, std::size_t n) const
{
    check(addr, n);
    std::memcpy(dst, bytes_.data() + addr, n);
    if (plane_) [[unlikely]]
        plane_->patchCopyOut(addr, dst, n, bytes_.data());
}

void
Memory::clear()
{
    std::fill(bytes_.begin(), bytes_.end(), 0);
}

LinearAllocator::LinearAllocator(std::size_t capacity, Addr base)
    : capacity_(capacity), next_(base)
{
}

Addr
LinearAllocator::alloc(std::size_t bytes)
{
    const Addr addr = next_;
    const std::size_t padded = (bytes + 255u) & ~std::size_t{255u};
    if (addr + padded > capacity_)
        warped_fatal("device allocator exhausted: want ", bytes,
                     " bytes at ", addr, ", capacity ", capacity_);
    next_ = addr + padded;
    return addr;
}

} // namespace mem
} // namespace warped
