/**
 * @file
 * Simulated memories.
 *
 * Following the paper's fault model (§1), memory is assumed to be
 * ECC-protected and therefore always returns correct data; only the
 * *address computation* of memory instructions is subject to (and
 * verified against) errors. Consequently no cache hierarchy is
 * modeled — LD/ST timing uses fixed shared/global latencies from
 * GpuConfig.
 */

#ifndef WARPED_MEM_MEMORY_HH
#define WARPED_MEM_MEMORY_HH

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/types.hh"

namespace warped {
namespace mem {

class MemFaultPlane;

/**
 * A flat, byte-addressable, bounds-checked memory. Used both for the
 * GPU's global memory and for per-block shared-memory segments.
 *
 * A fault campaign may attach a MemFaultPlane to the *global* memory
 * for one run: every access is then filtered through the plane's ECC
 * model. Without a plane (the default, and all fault-free runs) each
 * access costs only one predictable null-pointer test.
 */
class Memory
{
  public:
    /** Backing storage comes zeroed from the thread-local buffer pool
     *  (common/buffer_pool.hh) and is retired back to it on
     *  destruction, so per-launch Memory construction in campaign
     *  loops reuses warm pages instead of paying mmap + soft faults
     *  for every 8 MB global-memory image. */
    explicit Memory(std::size_t bytes);
    ~Memory();

    Memory(const Memory &) = delete;
    Memory &operator=(const Memory &) = delete;

    std::size_t size() const { return bytes_.size(); }

    /** Attach (or detach, with nullptr) a memory-cell fault plane.
     *  Non-owning; the campaign run owns the plane. */
    void attachFaultPlane(MemFaultPlane *plane) { plane_ = plane; }
    MemFaultPlane *faultPlane() const { return plane_; }

    /** 32-bit word access; @p addr is a byte address (any alignment
     *  is accepted; workloads use 4-byte-aligned addresses). Inline:
     *  these sit in the executor's per-lane load/store loops, and the
     *  bounds test plus memcpy must fold into them — the panic and
     *  fault-plane branches call out of line. */
    RegValue
    readWord(Addr addr) const
    {
        if (addr + 4 > bytes_.size() || addr + 4 < addr) [[unlikely]]
            outOfBounds(addr, 4);
        RegValue v;
        std::memcpy(&v, bytes_.data() + addr, 4);
        if (plane_) [[unlikely]]
            v = filterWordSlow(addr, v);
        return v;
    }

    void
    writeWord(Addr addr, RegValue value)
    {
        if (addr + 4 > bytes_.size() || addr + 4 < addr) [[unlikely]]
            outOfBounds(addr, 4);
        std::memcpy(bytes_.data() + addr, &value, 4);
        if (plane_) [[unlikely]]
            onWriteSlow(addr, 4);
    }

    std::uint8_t readByte(Addr addr) const;
    void writeByte(Addr addr, std::uint8_t value);

    /** Bulk host<->device style copies (workload setup/teardown). */
    void copyIn(Addr addr, const void *src, std::size_t n);
    void copyOut(Addr addr, void *dst, std::size_t n) const;

    /** Zero the whole memory. */
    void clear();

  private:
    void check(Addr addr, std::size_t n) const;
    [[noreturn]] void outOfBounds(Addr addr, std::size_t n) const;
    /** Out-of-line fault-plane hops (plane_ != nullptr only). */
    RegValue filterWordSlow(Addr addr, RegValue v) const;
    void onWriteSlow(Addr addr, std::size_t n);

    std::vector<std::uint8_t> bytes_;
    MemFaultPlane *plane_ = nullptr; ///< non-owning; campaign-run scoped
};

/**
 * Bump allocator over a Memory, used by workloads to lay out their
 * device buffers. Returns 256-byte-aligned addresses (mimicking
 * cudaMalloc alignment) and never frees.
 */
class LinearAllocator
{
  public:
    explicit LinearAllocator(std::size_t capacity, Addr base = 256);

    /** Allocate @p bytes; fatal on exhaustion. */
    Addr alloc(std::size_t bytes);

    std::size_t used() const { return next_; }

  private:
    std::size_t capacity_;
    Addr next_;
};

} // namespace mem
} // namespace warped

#endif // WARPED_MEM_MEMORY_HH
