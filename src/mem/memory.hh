/**
 * @file
 * Simulated memories.
 *
 * Following the paper's fault model (§1), memory is assumed to be
 * ECC-protected and therefore always returns correct data; only the
 * *address computation* of memory instructions is subject to (and
 * verified against) errors. Consequently no cache hierarchy is
 * modeled — LD/ST timing uses fixed shared/global latencies from
 * GpuConfig.
 */

#ifndef WARPED_MEM_MEMORY_HH
#define WARPED_MEM_MEMORY_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace warped {
namespace mem {

class MemFaultPlane;

/**
 * A flat, byte-addressable, bounds-checked memory. Used both for the
 * GPU's global memory and for per-block shared-memory segments.
 *
 * A fault campaign may attach a MemFaultPlane to the *global* memory
 * for one run: every access is then filtered through the plane's ECC
 * model. Without a plane (the default, and all fault-free runs) each
 * access costs only one predictable null-pointer test.
 */
class Memory
{
  public:
    explicit Memory(std::size_t bytes);

    std::size_t size() const { return bytes_.size(); }

    /** Attach (or detach, with nullptr) a memory-cell fault plane.
     *  Non-owning; the campaign run owns the plane. */
    void attachFaultPlane(MemFaultPlane *plane) { plane_ = plane; }
    MemFaultPlane *faultPlane() const { return plane_; }

    /** 32-bit word access; @p addr is a byte address (any alignment
     *  is accepted; workloads use 4-byte-aligned addresses). */
    RegValue readWord(Addr addr) const;
    void writeWord(Addr addr, RegValue value);

    std::uint8_t readByte(Addr addr) const;
    void writeByte(Addr addr, std::uint8_t value);

    /** Bulk host<->device style copies (workload setup/teardown). */
    void copyIn(Addr addr, const void *src, std::size_t n);
    void copyOut(Addr addr, void *dst, std::size_t n) const;

    /** Zero the whole memory. */
    void clear();

  private:
    void check(Addr addr, std::size_t n) const;

    std::vector<std::uint8_t> bytes_;
    MemFaultPlane *plane_ = nullptr; ///< non-owning; campaign-run scoped
};

/**
 * Bump allocator over a Memory, used by workloads to lay out their
 * device buffers. Returns 256-byte-aligned addresses (mimicking
 * cudaMalloc alignment) and never frees.
 */
class LinearAllocator
{
  public:
    explicit LinearAllocator(std::size_t capacity, Addr base = 256);

    /** Allocate @p bytes; fatal on exhaustion. */
    Addr alloc(std::size_t bytes);

    std::size_t used() const { return next_; }

  private:
    std::size_t capacity_;
    Addr next_;
};

} // namespace mem
} // namespace warped

#endif // WARPED_MEM_MEMORY_HH
