#include "mem/mem_fault.hh"

#include <cstring>

#include "common/logging.hh"
#include "mem/codec.hh"

namespace warped {
namespace mem {

const char *
memFaultKindSlug(MemFaultKind k)
{
    switch (k) {
      case MemFaultKind::Bit:
        return "membit";
      case MemFaultKind::DoubleBit:
        return "memdouble";
      case MemFaultKind::ChipBurst:
        return "memchip";
    }
    return "?";
}

namespace {

/** Data-bit mask (over the 32-bit stored word) an upset corrupts. */
RegValue
upsetMask(MemFaultKind kind, unsigned bit)
{
    const unsigned b = bit % 32;
    switch (kind) {
      case MemFaultKind::Bit:
        return RegValue{1} << b;
      case MemFaultKind::DoubleBit:
        return (RegValue{1} << b) | (RegValue{1} << ((b + 1) % 32));
      case MemFaultKind::ChipBurst:
        return RegValue{0xF} << (b & ~3u);
    }
    return 0;
}

} // namespace

void
MemFaultPlane::inject(Addr word_addr, MemFaultKind kind, unsigned bit,
                      Cycle at)
{
    if (word_addr % 4 != 0)
        warped_panic("memory upset address ", word_addr,
                     " not word-aligned");
    addr_ = word_addr;
    kind_ = kind;
    bit_ = bit;
    at_ = at;
    live_ = true;
}

RegValue
MemFaultPlane::applyRead(RegValue raw)
{
    ++consumedReads_;
    const RegValue mask = upsetMask(kind_, bit_);

    switch (ecc_) {
      case arch::EccKind::None:
        return raw ^ mask;

      case arch::EccKind::Secded: {
        const SecdedCode &code = secded32();
        SecdedCode::Codeword cw = code.encode(raw);
        for (unsigned i = 0; i < 32; ++i)
            if ((mask >> i) & 1)
                cw.flip(code.dataPosition(i));
        const SecdedCode::Decoded dec = code.decode(cw);
        if (dec.status == CodecStatus::Corrected) {
            ++corrected_;
            live_ = false; // controller scrubs the repaired word
            return raw;
        }
        if (dec.status == CodecStatus::Detected)
            ++uncorrectable_;
        // Detected: decoded (still corrupt) data reaches the lane
        // with the DUE flag raised. Ok: a silent alias — the burst
        // landed on another codeword and propagates undetected.
        return static_cast<RegValue>(dec.data);
      }

      case arch::EccKind::Chipkill: {
        // Data symbols occupy codeword bits [0,32), so the stored-
        // word mask corrupts the codeword verbatim.
        const ChipkillCode &code = chipkill();
        const ChipkillCode::Decoded dec =
            code.decode(code.encode(raw) ^ mask);
        if (dec.status == CodecStatus::Corrected) {
            ++corrected_;
            live_ = false;
            return raw;
        }
        if (dec.status == CodecStatus::Detected)
            ++uncorrectable_;
        return dec.data;
      }
    }
    return raw;
}

RegValue
MemFaultPlane::filterWord(Addr addr, RegValue raw)
{
    if (!live_ || addr != addr_ || now_ < at_)
        return raw;
    return applyRead(raw);
}

RegValue
MemFaultPlane::goldenWord(const std::uint8_t *mem_base) const
{
    RegValue v;
    std::memcpy(&v, mem_base + addr_, 4);
    return v;
}

std::uint8_t
MemFaultPlane::filterByte(Addr addr, std::uint8_t raw,
                          const std::uint8_t *mem_base)
{
    if (!live_ || addr < addr_ || addr >= addr_ + 4 || now_ < at_)
        return raw;
    const RegValue seen = applyRead(goldenWord(mem_base));
    return static_cast<std::uint8_t>(seen >> (8 * (addr - addr_)));
}

void
MemFaultPlane::patchCopyOut(Addr addr, void *dst, std::size_t n,
                            const std::uint8_t *mem_base)
{
    if (!live_ || now_ < at_)
        return;
    const Addr lo = addr > addr_ ? addr : addr_;
    const Addr hi_read = addr + n;
    const Addr hi_word = addr_ + 4;
    const Addr hi = hi_read < hi_word ? hi_read : hi_word;
    if (lo >= hi)
        return;
    const RegValue seen = applyRead(goldenWord(mem_base));
    auto *out = static_cast<std::uint8_t *>(dst);
    for (Addr a = lo; a < hi; ++a)
        out[a - addr] = static_cast<std::uint8_t>(
            seen >> (8 * (a - addr_)));
}

void
MemFaultPlane::onWrite(Addr addr, std::size_t n)
{
    if (!live_ || now_ < at_)
        return;
    if (addr < addr_ + 4 && addr + n > addr_)
        live_ = false; // store re-encodes the word: upset gone
}

void
MemFaultPlane::reset()
{
    live_ = false;
    now_ = 0;
    consumedReads_ = 0;
    corrected_ = 0;
    uncorrectable_ = 0;
}

} // namespace mem
} // namespace warped
