#include "mem/ecc.hh"

#include <bit>

#include "common/logging.hh"

namespace warped {
namespace mem {

namespace {

// Codeword layout (classic Hamming numbering): bit 0 holds the
// overall parity; bits 1..39 are Hamming positions where powers of
// two (1, 2, 4, 8, 16, 32) are check bits and the remaining 32
// positions carry the data bits in ascending order.

constexpr bool
isPowerOfTwo(unsigned x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** Hamming position (1..39) of data bit @p i (0..31). */
constexpr unsigned
dataPosition(unsigned i)
{
    unsigned pos = 0, seen = 0;
    for (pos = 1; pos <= 39; ++pos) {
        if (isPowerOfTwo(pos))
            continue;
        if (seen == i)
            return pos;
        ++seen;
    }
    return 0;
}

} // namespace

std::uint64_t
Secded::encode(std::uint32_t data)
{
    std::uint64_t cw = 0;
    for (unsigned i = 0; i < 32; ++i) {
        if ((data >> i) & 1)
            cw |= 1ULL << dataPosition(i);
    }
    // Check bits: parity over all positions whose index has the
    // check bit set.
    for (unsigned c = 1; c <= 32; c <<= 1) {
        unsigned parity = 0;
        for (unsigned pos = 1; pos <= 39; ++pos) {
            if ((pos & c) && ((cw >> pos) & 1))
                parity ^= 1;
        }
        if (parity)
            cw |= 1ULL << c;
    }
    // Overall parity over bits 1..39 stored in bit 0.
    if (std::popcount(cw >> 1) & 1)
        cw |= 1ULL;
    return cw;
}

Secded::Decoded
Secded::decode(std::uint64_t codeword)
{
    // Syndrome: for each check bit, parity over its covered positions
    // including the check bit itself.
    unsigned syndrome = 0;
    for (unsigned c = 1; c <= 32; c <<= 1) {
        unsigned parity = 0;
        for (unsigned pos = 1; pos <= 39; ++pos) {
            if ((pos & c) && ((codeword >> pos) & 1))
                parity ^= 1;
        }
        if (parity)
            syndrome |= c;
    }
    const bool overall =
        (std::popcount(codeword) & 1) != 0; // includes bit 0

    Decoded out;
    if (syndrome == 0 && !overall) {
        out.status = Status::Ok;
    } else if (overall) {
        // Odd number of flipped bits: a single-bit error. Syndrome 0
        // means the overall parity bit itself flipped.
        out.status = Status::Corrected;
        if (syndrome != 0 && syndrome <= 39)
            codeword ^= 1ULL << syndrome;
    } else {
        // Even flip count with non-zero syndrome: double error.
        out.status = Status::DoubleError;
    }

    for (unsigned i = 0; i < 32; ++i) {
        if ((codeword >> dataPosition(i)) & 1)
            out.data |= 1u << i;
    }
    return out;
}

EccMemory::EccMemory(std::size_t bytes)
    : words_((bytes + 3) / 4, Secded::encode(0))
{
}

std::size_t
EccMemory::index(Addr addr) const
{
    const std::size_t i = addr / 4;
    if (i >= words_.size())
        warped_panic("ECC memory access at ", addr, " out of bounds");
    return i;
}

void
EccMemory::writeWord(Addr addr, RegValue value)
{
    words_[index(addr)] = Secded::encode(value);
}

RegValue
EccMemory::readWord(Addr addr, Secded::Status *status)
{
    const std::size_t i = index(addr);
    const auto dec = Secded::decode(words_[i]);
    if (dec.status == Secded::Status::Corrected) {
        ++corrected_;
        words_[i] = Secded::encode(dec.data); // in-place scrub
    } else if (dec.status == Secded::Status::DoubleError) {
        ++doubleErrors_;
    }
    if (status)
        *status = dec.status;
    return dec.data;
}

void
EccMemory::injectBitFlip(Addr addr, unsigned bit)
{
    if (bit >= Secded::kCodeBits)
        warped_panic("ECC bit index ", bit, " out of range");
    words_[index(addr)] ^= 1ULL << bit;
}

std::uint64_t
EccMemory::scrub()
{
    std::uint64_t fixed = 0;
    for (auto &w : words_) {
        const auto dec = Secded::decode(w);
        if (dec.status == Secded::Status::Corrected) {
            w = Secded::encode(dec.data);
            ++fixed;
        }
    }
    corrected_ += fixed;
    return fixed;
}

} // namespace mem
} // namespace warped
