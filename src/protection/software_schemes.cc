#include "protection/software_schemes.hh"

#include "dmr/recovery_listener.hh"
#include "isa/instruction.hh"

namespace warped {
namespace protection {

SoftwareSchemeBase::SoftwareSchemeBase(const arch::GpuConfig &gpu,
                                       func::Executor &exec)
    : gpu_(gpu), exec_(exec),
      mapping_(dmr::MappingPolicy::Linear, gpu.warpSize,
               gpu.lanesPerCluster)
{
}

bool
verifySlotThroughHook(func::Executor &exec,
                      const dmr::ThreadCoreMapping &mapping,
                      dmr::DmrStats &stats, const func::ExecRecord &rec,
                      unsigned slot, unsigned checker_lane,
                      Cycle fault_cycle, Cycle log_cycle)
{
    const std::array<RegValue, 3> ops = {rec.operands[0][slot],
                                         rec.operands[1][slot],
                                         rec.operands[2][slot]};
    const RegValue pure =
        func::Executor::computeLane(rec.instr, ops, rec.laneInfo[slot]);
    func::FaultCtx ctx;
    ctx.sm = exec.smId();
    ctx.lane = checker_lane;
    ctx.unit = rec.instr.unit();
    ctx.cycle = fault_cycle;
    ctx.isAddress = rec.instr.isMem();
    const RegValue got = exec.hook().apply(pure, ctx);
    ++stats.comparisons;
    const bool mismatch = got != rec.results[slot];
    if (mismatch) {
        ++stats.errorsDetected;
        if (stats.errorLog.size() < dmr::DmrStats::kMaxErrorLog) {
            const unsigned primary_lane = mapping.laneOf(slot);
            dmr::ErrorEvent ev;
            ev.cycle = log_cycle;
            ev.sm = exec.smId();
            ev.warpId = rec.warpId;
            ev.pc = rec.pc;
            ev.slot = slot;
            ev.primaryLane = primary_lane;
            ev.checkerLane = checker_lane;
            ev.primary = rec.results[slot];
            ev.checker = got;
            ev.intraWarp = checker_lane != primary_lane;
            stats.errorLog.push_back(ev);
        }
    }
    return mismatch;
}

bool
SoftwareSchemeBase::verifySlotAt(const func::ExecRecord &rec,
                                 unsigned slot, unsigned checker_lane,
                                 Cycle fault_cycle, Cycle log_cycle)
{
    return verifySlotThroughHook(exec_, mapping_, stats_, rec, slot,
                                 checker_lane, fault_cycle, log_cycle);
}

unsigned
RNaiveScheme::onIssue(const func::ExecRecord &rec, Cycle now)
{
    // The modeled second kernel run re-executes *every* instruction,
    // so each issue charges one serialization cycle regardless of
    // verifiability.
    if (!rec.verifiable()) {
        if (listener_)
            listener_->onUnprotected(rec);
        return 1;
    }
    const unsigned unit = static_cast<unsigned>(rec.instr.unit());
    unsigned verified = 0;
    bool mismatch = false;
    stats_.verifiableThreadInstrs += rec.active.count();
    for (unsigned slot = 0; slot < gpu_.warpSize; ++slot) {
        if (!rec.active.test(slot))
            continue;
        // Same physical lane, second-run cycle: transients expired,
        // stuck-at reproduced (and thus missed) — kernel re-execution
        // on the same silicon.
        const unsigned lane = mapping_.laneOf(slot);
        if (verifySlotAt(rec, slot, lane, now + kSecondRunOffset, now))
            mismatch = true;
        ++verified;
        ++stats_.redundantThreadExecs[unit];
    }
    stats_.verifiedThreadInstrs += verified;
    stats_.interVerifiedThreads += verified;
    if (listener_)
        listener_->onVerified(rec, mismatch, now);
    return 1;
}

unsigned
RThreadScheme::onIssue(const func::ExecRecord &rec, Cycle now)
{
    const unsigned n = gpu_.warpSize;
    const unsigned active = rec.active.count();
    // Every thread is duplicated; the warp's idle lanes absorb what
    // they can and the overflow serializes, accumulated into whole
    // extra issue cycles.
    const unsigned spare = n - active;
    if (active > spare)
        stallAcc_ += active - spare;

    if (!rec.verifiable()) {
        if (listener_)
            listener_->onUnprotected(rec);
    } else {
        const unsigned unit = static_cast<unsigned>(rec.instr.unit());
        unsigned verified = 0;
        bool mismatch = false;
        stats_.verifiableThreadInstrs += active;
        for (unsigned slot = 0; slot < n; ++slot) {
            if (!rec.active.test(slot))
                continue;
            // Duplicate on the mirror lane, same cycle: a different
            // physical lane (stuck-at caught) at the original time
            // (transients caught).
            const unsigned checker_lane = n - 1 - mapping_.laneOf(slot);
            if (verifySlotAt(rec, slot, checker_lane, now, now))
                mismatch = true;
            ++verified;
            ++stats_.redundantThreadExecs[unit];
        }
        stats_.verifiedThreadInstrs += verified;
        stats_.intraVerifiedThreads += verified;
        if (listener_)
            listener_->onVerified(rec, mismatch, now);
    }

    const unsigned stall = static_cast<unsigned>(stallAcc_ / n);
    stallAcc_ %= n;
    return stall;
}

} // namespace protection
} // namespace warped
