#include "protection/replay_compare_scheme.hh"

#include "dmr/recovery_listener.hh"

namespace warped {
namespace protection {

unsigned
ReplayCompareScheme::onIssue(const func::ExecRecord &rec, Cycle now)
{
    if (!any_) {
        any_ = true;
        firstIssue_ = now;
    }
    lastIssue_ = now;
    // Nothing is verified before the end of the kernel, so from a
    // per-instruction consumer's view every record is unprotected.
    if (listener_)
        listener_->onUnprotected(rec);
    if (!rec.verifiable())
        return 0;
    const unsigned active = rec.active.count();
    stats_.verifiableThreadInstrs += active;
    replayExecs_[static_cast<unsigned>(rec.instr.unit())] += active;
    // The eager hook-free recompute is one vectorized plane pass; the
    // per-slot loop below only filters it against the committed
    // results (bit-identical to per-slot computeLane).
    std::array<RegValue, func::kMaxWarp> pure;
    func::Executor::computePlane(rec.instr, rec.operands, rec.laneInfo,
                                 gpu_.warpSize, pure.data());
    for (unsigned slot = 0; slot < gpu_.warpSize; ++slot) {
        if (!rec.active.test(slot))
            continue;
        if (pure[slot] == rec.results[slot])
            continue; // will compare equal on replay too
        if (candidates_.size() >= kMaxCandidates) {
            ++droppedCandidates_;
            continue;
        }
        Candidate c;
        c.instr = rec.instr;
        c.ops = {rec.operands[0][slot], rec.operands[1][slot],
                 rec.operands[2][slot]};
        c.laneInfo = rec.laneInfo[slot];
        c.result = rec.results[slot];
        c.slot = slot;
        c.lane = mapping_.laneOf(slot);
        c.warpId = rec.warpId;
        c.pc = rec.pc;
        candidates_.push_back(c);
    }
    return 0;
}

void
ReplayCompareScheme::onIdleCycle(Cycle now, bool sm_busy)
{
    if (sm_busy || !any_ || phase_ == Phase::Done)
        return;
    if (phase_ == Phase::Recording) {
        // Warps retired: the replay run starts, costing the primary
        // run's issue span again.
        phase_ = Phase::Replaying;
        replayLeft_ = lastIssue_ - firstIssue_ + 1;
    }
    if (replayLeft_ > 0) {
        --replayLeft_;
        ++stats_.finalDrainCycles;
    }
    if (replayLeft_ == 0)
        finishReplay(now);
}

std::uint64_t
ReplayCompareScheme::drainAll(Cycle now)
{
    std::uint64_t cycles = 0;
    while (hasPending()) {
        onIdleCycle(now + cycles, false);
        ++cycles;
    }
    return cycles;
}

void
ReplayCompareScheme::finishReplay(Cycle end)
{
    phase_ = Phase::Done;
    for (const auto &c : candidates_) {
        // Re-execute the corrupted slot on the same lane at replay
        // time; only a fault still active *now* can reproduce the
        // corruption and hide it from the comparator.
        func::FaultCtx ctx;
        ctx.sm = exec_.smId();
        ctx.lane = c.lane;
        ctx.unit = c.instr.unit();
        ctx.cycle = end;
        ctx.isAddress = c.instr.isMem();
        const RegValue pure =
            func::Executor::computeLane(c.instr, c.ops, c.laneInfo);
        const RegValue got = exec_.hook().apply(pure, ctx);
        ++stats_.comparisons;
        if (got != c.result) {
            ++stats_.errorsDetected;
            if (stats_.errorLog.size() < dmr::DmrStats::kMaxErrorLog) {
                dmr::ErrorEvent ev;
                ev.cycle = end;
                ev.sm = exec_.smId();
                ev.warpId = c.warpId;
                ev.pc = c.pc;
                ev.slot = c.slot;
                ev.primaryLane = c.lane;
                ev.checkerLane = c.lane;
                ev.primary = c.result;
                ev.checker = got;
                ev.intraWarp = false;
                stats_.errorLog.push_back(ev);
            }
        }
    }
    // The replay run re-executed and compared the whole kernel.
    stats_.verifiedThreadInstrs = stats_.verifiableThreadInstrs;
    stats_.interVerifiedThreads = stats_.verifiedThreadInstrs;
    for (std::size_t u = 0; u < replayExecs_.size(); ++u)
        stats_.redundantThreadExecs[u] += replayExecs_[u];
}

} // namespace protection
} // namespace warped
