/**
 * @file
 * The protection seam: the abstract interface between the SM pipeline
 * and whatever error-detection scheme is protecting it.
 *
 * Everything `Sm` used to hard-wire into `dmr::DmrEngine` flows
 * through this interface instead — the issue-time duplication
 * decision (`onIssue`), RAW-hazard back-pressure (`rawHazardStall`),
 * idle-slot verification (`onIdleCycle`), end-of-launch drain
 * (`drainAll`, `hasPending`, `replayQueueSize`), the commit gate
 * (`preRetireVerify`), rollback support (`squashWarp`), the detection
 * callback (`attachRecoveryListener`) and per-launch statistics
 * (`stats`). Warped-DMR is the reference implementation; the Fig-10
 * competitors (R-Naive, R-Thread, DMTR) plus the partial-thread
 * (arXiv 2103.02825) and replay-compare (RepTFD, arXiv 1206.2132)
 * schemes are alternative backends behind the same seam, so one
 * fault-injection campaign can measure any of them.
 *
 * Stats are reported in `dmr::DmrStats` terms for every scheme: the
 * counters were designed for Warped-DMR but generalize — "verified
 * thread-instr" means "a comparator checked this thread's result",
 * however the scheme arranged for the redundant execution.
 */

#ifndef WARPED_PROTECTION_PROTECTION_SCHEME_HH
#define WARPED_PROTECTION_PROTECTION_SCHEME_HH

#include <cstdint>

#include "common/types.hh"
#include "dmr/dmr_stats.hh"
#include "dmr/thread_mapping.hh"

namespace warped {

namespace func {
struct ExecRecord;
}
namespace isa {
struct Instruction;
}
namespace trace {
class Recorder;
}
namespace dmr {
class RecoveryListener;
}

namespace protection {

/**
 * The §5.3 / Fig 10 scheme lineup plus the two post-paper backends.
 * Enumerator order is the Fig-10 column order; sweeps iterate it.
 */
enum class SchemeId : std::uint8_t
{
    Original = 0,  ///< unprotected baseline (no detection)
    RNaive,        ///< re-execute every kernel twice, compare (SW)
    RThread,       ///< duplicate threads into spare lanes (SW)
    Dmtr,          ///< SRT-style temporal DMR of every instruction
    WarpedDmr,     ///< the paper's scheme (reference implementation)
    PartialThread, ///< protect a vulnerable-thread subset (Yang et al.)
    ReplayCompare, ///< RepTFD-style whole-kernel replay + end compare
};

constexpr unsigned kNumSchemes = 7;

/** Which scheme an SM builds, plus scheme-specific knobs. */
struct SchemeConfig
{
    SchemeId id = SchemeId::WarpedDmr;
    /** PartialThreadScheme: fraction of each warp's thread slots
     *  (rounded up) that get duplicated; 1.0 = protect everything
     *  (== Warped-DMR), 0.0 = protect nothing (== Original). */
    double protectFraction = 1.0;
};

/**
 * One SM's protection backend. Constructed per SM (like the engine it
 * abstracts); all hooks are called from that SM's single-threaded
 * tick loop, in issue order.
 */
class ProtectionScheme
{
  public:
    virtual ~ProtectionScheme() = default;

    virtual SchemeId id() const = 0;

    /** Can `recovery::RecoveryManager` roll back from this scheme's
     *  detections? Requires per-instruction mismatch callbacks;
     *  false for Original (no detections) and ReplayCompare
     *  (detection happens after the state to roll back to is gone). */
    virtual bool supportsRecovery() const = 0;

    /** Issue-time back-pressure: true = stall this warp one cycle
     *  because an unverified producer would be consumed. */
    virtual bool rawHazardStall(unsigned warp_id,
                                const isa::Instruction &in,
                                Cycle now) = 0;

    /** Scratch record the SM executes into before calling onIssue
     *  (the double-buffer dance that lets schemes adopt records by
     *  swap instead of copy). */
    virtual func::ExecRecord &scratch() = 0;

    /**
     * One instruction issued (and functionally executed into the
     * record). Returns the number of extra pipeline cycles the scheme
     * charges the SM for this issue (duplication/serialization cost).
     */
    virtual unsigned onIssue(const func::ExecRecord &rec, Cycle now) = 0;

    /** A cycle in which this SM made no issue progress. @p sm_busy
     *  distinguishes mid-kernel stall cycles from the post-kernel
     *  drain (warps all retired), which deferred schemes use to start
     *  their end-of-kernel work. */
    virtual void onIdleCycle(Cycle now, bool sm_busy) = 0;

    /** Force all deferred verification to complete now; returns the
     *  number of drain cycles consumed. */
    virtual std::uint64_t drainAll(Cycle now) = 0;

    virtual void attachRecorder(trace::Recorder *rec) = 0;

    /** Detection callback consumer (recovery). Callers must check
     *  supportsRecovery() before relying on rollback semantics. */
    virtual void attachRecoveryListener(dmr::RecoveryListener *l) = 0;

    /** Rollback support: drop queued verification work for @p warp_id
     *  with traceId >= @p min_trace_id (re-execution will re-enqueue
     *  it). Returns the number of entries dropped. */
    virtual unsigned squashWarp(unsigned warp_id,
                                std::uint64_t min_trace_id,
                                Cycle now) = 0;

    /** Commit gate: verify anything still pending for @p warp_id
     *  before an irreversible step (EXIT). Returns true if work was
     *  performed. */
    virtual bool preRetireVerify(unsigned warp_id, Cycle now) = 0;

    /** Deferred verification still outstanding? The launch loop keeps
     *  ticking (and feeding onIdleCycle) until this clears. */
    virtual bool hasPending() const = 0;

    /** Occupancy of the scheme's replay queue, if it has one. */
    virtual unsigned replayQueueSize() const = 0;

    /** Called once at the end of a launch, before stats() is read. */
    virtual void finalizeStats() = 0;

    virtual const dmr::DmrStats &stats() const = 0;

    /** Thread-slot -> physical-lane mapping this scheme executes
     *  under (§4.2); Linear for everything but Warped-DMR. */
    virtual const dmr::ThreadCoreMapping &mapping() const = 0;
};

} // namespace protection
} // namespace warped

#endif // WARPED_PROTECTION_PROTECTION_SCHEME_HH
