/**
 * @file
 * The one table of protection schemes: names (CLI slug and Fig-10
 * display form), capabilities, and the factory that builds a backend
 * for an SM. `redundancy::schemeName` and the `--scheme` CLI flag
 * both resolve through here, so a scheme cannot exist under two
 * spellings.
 */

#ifndef WARPED_PROTECTION_SCHEME_REGISTRY_HH
#define WARPED_PROTECTION_SCHEME_REGISTRY_HH

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>

#include "protection/protection_scheme.hh"

namespace warped {

namespace arch {
struct GpuConfig;
}
namespace dmr {
struct DmrConfig;
}
namespace func {
class Executor;
}

namespace protection {

/** CLI slug ("warped-dmr", "r-naive", ...): what `--scheme` takes. */
const char *schemeCliName(SchemeId id);

/** Paper-figure display name ("Warped-DMR", "R-Naive", ...). */
const char *schemeDisplayName(SchemeId id);

/**
 * Strict slug -> id lookup; nullopt on anything that is not exactly a
 * known CLI slug (callers own the error reporting — `warped_sim`
 * exits 2 with usage, per the CLI conventions).
 */
std::optional<SchemeId> schemeFromName(std::string_view name);

/** All schemes in Fig-10 column / sweep order. */
const std::array<SchemeId, kNumSchemes> &allSchemes();

/** Whether rollback-replay recovery can attach (per-instruction
 *  detection callbacks exist and arrive before state is lost). */
bool schemeSupportsRecovery(SchemeId id);

/** Whether the backend is the DmrEngine itself (so `DmrConfig`
 *  knobs — ReplayQ size, mapping, lane shuffle — apply to it). */
bool schemeUsesDmrEngine(SchemeId id);

/**
 * Whether the scheme can observe *memory-data* faults. False for
 * every execution-side scheme in the registry: redundant executions
 * (spatial or temporal, any protect fraction) consume the same
 * loaded value, so a corrupted memory cell produces two identical —
 * equally wrong — results and no comparator ever fires. Memory
 * faults are ECC territory (GpuConfig::eccKind); campaigns over the
 * memory fault domain print a note when the selected scheme cannot
 * contribute.
 */
bool schemeCoversMemory(SchemeId id);

/** Fatal on out-of-range knobs (protectFraction outside [0,1]). */
void validateSchemeConfig(const SchemeConfig &cfg);

/**
 * Build one SM's backend. @p dcfg configures DmrEngine-based schemes
 * (WarpedDmr uses it as-is; Dmtr overrides it with the §5.3 DMTR
 * knobs); the software schemes ignore it.
 */
std::unique_ptr<ProtectionScheme>
makeScheme(const SchemeConfig &cfg, const arch::GpuConfig &gpu,
           const dmr::DmrConfig &dcfg, func::Executor &exec,
           std::uint64_t seed);

} // namespace protection
} // namespace warped

#endif // WARPED_PROTECTION_SCHEME_REGISTRY_HH
