/**
 * @file
 * The software-only Fig-10 baselines, modeled as executing backends:
 *
 *  - OriginalScheme: the unprotected machine. No duplication, no
 *    comparisons, no detections.
 *  - RNaiveScheme: run the whole kernel twice and compare — modeled
 *    as a 1-cycle serialization per issue (the second run) with the
 *    redundant execution evaluated under the fault hook at the
 *    second run's (much later) cycle, so transient pulses from the
 *    first run have expired but stuck-at faults reproduce on the
 *    same lane and escape the comparator.
 *  - RThreadScheme: duplicate every thread into the warp's inactive
 *    lanes (§5.3's R-Thread). Redundant copies are free while spare
 *    lanes exist; overflow serializes, accumulated in warp-size
 *    quanta. Checkers run on the mirror lane in the same cycle, so
 *    both transient and lane-local stuck-at faults are caught.
 *
 * None of these own deferred state: verification happens at issue
 * (or is charged at issue, for R-Naive's deterministic second-run
 * model), so drain/squash/pre-retire are no-ops.
 */

#ifndef WARPED_PROTECTION_SOFTWARE_SCHEMES_HH
#define WARPED_PROTECTION_SOFTWARE_SCHEMES_HH

#include "arch/gpu_config.hh"
#include "func/executor.hh"
#include "protection/protection_scheme.hh"

namespace warped {
namespace protection {

/**
 * The comparator every software backend shares: recompute thread
 * @p slot of @p rec through the fault hook as physical lane
 * @p checker_lane at cycle @p fault_cycle, compare against the
 * recorded result, and count/log into @p stats (the log entry is
 * stamped @p log_cycle). Returns true on mismatch. Mirrors
 * DmrEngine's verifySlot minus trace emission and arbitration.
 */
bool verifySlotThroughHook(func::Executor &exec,
                           const dmr::ThreadCoreMapping &mapping,
                           dmr::DmrStats &stats,
                           const func::ExecRecord &rec, unsigned slot,
                           unsigned checker_lane, Cycle fault_cycle,
                           Cycle log_cycle);

/** Shared plumbing for the non-DmrEngine backends: linear mapping,
 *  own scratch record, a DmrStats block, and a verify-one-slot helper
 *  mirroring the engine's comparator. */
class SoftwareSchemeBase : public ProtectionScheme
{
  public:
    SoftwareSchemeBase(const arch::GpuConfig &gpu, func::Executor &exec);

    bool rawHazardStall(unsigned, const isa::Instruction &,
                        Cycle) override
    {
        return false;
    }
    func::ExecRecord &scratch() override { return scratch_; }
    void onIdleCycle(Cycle, bool) override {}
    std::uint64_t drainAll(Cycle) override { return 0; }
    void attachRecorder(trace::Recorder *) override {}
    void
    attachRecoveryListener(dmr::RecoveryListener *l) override
    {
        listener_ = l;
    }
    unsigned squashWarp(unsigned, std::uint64_t, Cycle) override
    {
        return 0;
    }
    bool preRetireVerify(unsigned, Cycle) override { return false; }
    bool hasPending() const override { return false; }
    unsigned replayQueueSize() const override { return 0; }
    void finalizeStats() override {}
    const dmr::DmrStats &stats() const override { return stats_; }
    const dmr::ThreadCoreMapping &mapping() const override
    {
        return mapping_;
    }

  protected:
    /**
     * Recompute thread @p slot of @p rec through the fault hook as
     * physical lane @p checker_lane at cycle @p fault_cycle, compare
     * against the recorded result, count, log (stamped with
     * @p log_cycle) and notify nothing — callers own the listener
     * call because its granularity is per-record, not per-slot.
     * Returns true on mismatch.
     */
    bool verifySlotAt(const func::ExecRecord &rec, unsigned slot,
                      unsigned checker_lane, Cycle fault_cycle,
                      Cycle log_cycle);

    const arch::GpuConfig &gpu_;
    func::Executor &exec_;
    dmr::ThreadCoreMapping mapping_;
    dmr::DmrStats stats_;
    dmr::RecoveryListener *listener_ = nullptr;
    func::ExecRecord scratch_;
};

/** The unprotected baseline: every hook is a no-op. */
class OriginalScheme final : public SoftwareSchemeBase
{
  public:
    using SoftwareSchemeBase::SoftwareSchemeBase;

    SchemeId id() const override { return SchemeId::Original; }
    bool supportsRecovery() const override { return false; }
    unsigned onIssue(const func::ExecRecord &, Cycle) override
    {
        return 0;
    }
};

/** Kernel-level re-execution: §5.3's R-Naive. */
class RNaiveScheme final : public SoftwareSchemeBase
{
  public:
    using SoftwareSchemeBase::SoftwareSchemeBase;

    SchemeId id() const override { return SchemeId::RNaive; }
    bool supportsRecovery() const override { return true; }
    unsigned onIssue(const func::ExecRecord &rec, Cycle now) override;

    /** Cycle offset of the modeled second run: far enough out that
     *  no transient window (which lives inside the first run's span)
     *  is still active, while stuck-at faults — whole-run windows —
     *  still corrupt the re-execution identically. */
    static constexpr Cycle kSecondRunOffset = Cycle{1} << 40;
};

/** Spare-lane thread duplication: §5.3's R-Thread. */
class RThreadScheme final : public SoftwareSchemeBase
{
  public:
    using SoftwareSchemeBase::SoftwareSchemeBase;

    SchemeId id() const override { return SchemeId::RThread; }
    bool supportsRecovery() const override { return true; }
    unsigned onIssue(const func::ExecRecord &rec, Cycle now) override;

  private:
    /** Duplicated threads that found no spare lane, pending
     *  serialization; drained in warp-size quanta as whole extra
     *  issue cycles. */
    std::uint64_t stallAcc_ = 0;
};

} // namespace protection
} // namespace warped

#endif // WARPED_PROTECTION_SOFTWARE_SCHEMES_HH
