/**
 * @file
 * Partial-thread protection (Yang et al., arXiv 2103.02825): only a
 * configurable "vulnerable" subset of each warp's thread slots is
 * duplicated, trading coverage for overhead along a knob instead of
 * all-or-nothing.
 *
 * Implementation: wraps a full `dmr::DmrEngine`. Warps whose active
 * mask lies entirely inside the protected slot prefix delegate to
 * the engine unchanged — with `protectFraction == 1.0` *every* warp
 * delegates and the scheme is Warped-DMR, detection set included.
 * Warps that extend past the protected prefix take the partial path:
 * the protected slots are duplicated into spare lanes immediately
 * (serializing in warp-size quanta when spares run out, like
 * R-Thread), and the vulnerable remainder runs bare.
 */

#ifndef WARPED_PROTECTION_PARTIAL_THREAD_SCHEME_HH
#define WARPED_PROTECTION_PARTIAL_THREAD_SCHEME_HH

#include "arch/gpu_config.hh"
#include "common/lane_mask.hh"
#include "dmr/dmr_engine.hh"
#include "protection/protection_scheme.hh"

namespace warped {
namespace protection {

class PartialThreadScheme final : public ProtectionScheme
{
  public:
    PartialThreadScheme(const arch::GpuConfig &gpu,
                        const dmr::DmrConfig &dcfg,
                        func::Executor &exec, std::uint64_t seed,
                        double protect_fraction);

    SchemeId id() const override { return SchemeId::PartialThread; }
    bool supportsRecovery() const override { return true; }

    bool
    rawHazardStall(unsigned warp_id, const isa::Instruction &in,
                   Cycle now) override
    {
        return engine_.rawHazardStall(warp_id, in, now);
    }
    func::ExecRecord &scratch() override { return engine_.scratch(); }
    unsigned onIssue(const func::ExecRecord &rec, Cycle now) override;
    void
    onIdleCycle(Cycle now, bool sm_busy) override
    {
        engine_.onIdleCycle(now, sm_busy);
    }
    std::uint64_t
    drainAll(Cycle now) override
    {
        return engine_.drainAll(now);
    }
    void
    attachRecorder(trace::Recorder *rec) override
    {
        engine_.attachRecorder(rec);
    }
    void attachRecoveryListener(dmr::RecoveryListener *l) override;
    unsigned
    squashWarp(unsigned warp_id, std::uint64_t min_trace_id,
               Cycle now) override
    {
        return engine_.squashWarp(warp_id, min_trace_id, now);
    }
    bool
    preRetireVerify(unsigned warp_id, Cycle now) override
    {
        return engine_.preRetireVerify(warp_id, now);
    }
    bool hasPending() const override { return engine_.hasPending(); }
    unsigned
    replayQueueSize() const override
    {
        return engine_.replayQueueSize();
    }
    void finalizeStats() override { engine_.finalizeStats(); }
    const dmr::DmrStats &stats() const override;
    const dmr::ThreadCoreMapping &mapping() const override
    {
        return engine_.mapping();
    }

    unsigned protectedSlots() const { return protectedSlots_; }

  private:
    const arch::GpuConfig &gpu_;
    func::Executor &exec_;
    dmr::DmrEngine engine_;
    unsigned protectedSlots_;
    LaneMask protectedMask_;
    std::uint64_t stallAcc_ = 0;
    dmr::RecoveryListener *listener_ = nullptr;
    dmr::DmrStats partial_; ///< counters from the non-delegated path
    /** engine_ + partial_, rebuilt on demand by stats(). */
    mutable dmr::DmrStats combined_;
};

} // namespace protection
} // namespace warped

#endif // WARPED_PROTECTION_PARTIAL_THREAD_SCHEME_HH
