/**
 * @file
 * RepTFD-style replay-and-compare (arXiv 1206.2132): run the kernel
 * to completion, re-execute the whole kernel, and compare at the end.
 * Detection latency is therefore kernel-granular — this backend is
 * the real scheme behind the campaign's "compare-at-kernel-end"
 * latency baseline.
 *
 * Model: during the primary run every verifiable thread-execution is
 * eagerly recomputed hook-free; slots whose committed result diverges
 * from the pure value (i.e. the fault hook actually corrupted them)
 * are remembered as replay candidates. Once the SM's warps retire,
 * the scheme consumes one drain cycle per primary-run issue-span
 * cycle (the replay run), then re-evaluates every candidate through
 * the fault hook at the replay's end cycle: transient pulses — whose
 * windows live inside the primary run — have expired and are
 * detected; stuck-at faults reproduce on the same lane during replay
 * and escape, the scheme's fundamental blind spot. Slots the hook
 * never corrupted compare equal on both runs by construction
 * (transient windows cannot cover the later replay cycles), so
 * tracking only corrupted slots loses no detections.
 */

#ifndef WARPED_PROTECTION_REPLAY_COMPARE_SCHEME_HH
#define WARPED_PROTECTION_REPLAY_COMPARE_SCHEME_HH

#include <vector>

#include "isa/instruction.hh"
#include "protection/software_schemes.hh"

namespace warped {
namespace protection {

class ReplayCompareScheme final : public SoftwareSchemeBase
{
  public:
    using SoftwareSchemeBase::SoftwareSchemeBase;

    SchemeId id() const override { return SchemeId::ReplayCompare; }
    /** Detection arrives after the warps (and any rollback state)
     *  are gone: recovery cannot compose with this scheme. */
    bool supportsRecovery() const override { return false; }

    unsigned onIssue(const func::ExecRecord &rec, Cycle now) override;
    void onIdleCycle(Cycle now, bool sm_busy) override;
    std::uint64_t drainAll(Cycle now) override;
    bool
    hasPending() const override
    {
        return any_ && phase_ != Phase::Done;
    }

  private:
    struct Candidate
    {
        isa::Instruction instr;
        std::array<RegValue, 3> ops;
        func::LaneInfo laneInfo;
        RegValue result = 0;
        unsigned slot = 0;
        unsigned lane = 0;
        unsigned warpId = 0;
        Pc pc = 0;
    };

    void finishReplay(Cycle end);

    /** Bound on remembered corrupted slots; overflow is counted and
     *  conservatively dropped (an undetected candidate, not a crash). */
    static constexpr std::size_t kMaxCandidates = 4096;

    std::vector<Candidate> candidates_;
    std::uint64_t droppedCandidates_ = 0;
    std::array<std::uint64_t, isa::kNumUnitTypes> replayExecs_{};
    Cycle firstIssue_ = 0;
    Cycle lastIssue_ = 0;
    bool any_ = false;
    enum class Phase
    {
        Recording,
        Replaying,
        Done
    } phase_ = Phase::Recording;
    Cycle replayLeft_ = 0;
};

} // namespace protection
} // namespace warped

#endif // WARPED_PROTECTION_REPLAY_COMPARE_SCHEME_HH
