#include "protection/scheme_registry.hh"

#include <cmath>

#include "common/logging.hh"
#include "dmr/dmr_config.hh"
#include "dmr/dmr_engine.hh"
#include "protection/partial_thread_scheme.hh"
#include "protection/replay_compare_scheme.hh"
#include "protection/software_schemes.hh"

namespace warped {
namespace protection {
namespace {

struct SchemeRow
{
    SchemeId id;
    const char *cli;     ///< what --scheme takes
    const char *display; ///< Fig-10 column label
};

/** THE name table: every scheme spelling in the tree resolves here. */
constexpr SchemeRow kSchemes[kNumSchemes] = {
    {SchemeId::Original, "original", "Original"},
    {SchemeId::RNaive, "r-naive", "R-Naive"},
    {SchemeId::RThread, "r-thread", "R-Thread"},
    {SchemeId::Dmtr, "dmtr", "DMTR"},
    {SchemeId::WarpedDmr, "warped-dmr", "Warped-DMR"},
    {SchemeId::PartialThread, "partial-thread", "Partial-Thread"},
    {SchemeId::ReplayCompare, "replay-compare", "Replay-Compare"},
};

const SchemeRow &
row(SchemeId id)
{
    const auto idx = static_cast<std::size_t>(id);
    if (idx >= kNumSchemes)
        warped_fatal("unknown SchemeId ", idx);
    return kSchemes[idx];
}

} // namespace

const char *
schemeCliName(SchemeId id)
{
    return row(id).cli;
}

const char *
schemeDisplayName(SchemeId id)
{
    return row(id).display;
}

std::optional<SchemeId>
schemeFromName(std::string_view name)
{
    for (const auto &r : kSchemes)
        if (name == r.cli)
            return r.id;
    return std::nullopt;
}

const std::array<SchemeId, kNumSchemes> &
allSchemes()
{
    static const std::array<SchemeId, kNumSchemes> ids = [] {
        std::array<SchemeId, kNumSchemes> a{};
        for (std::size_t i = 0; i < kNumSchemes; ++i)
            a[i] = kSchemes[i].id;
        return a;
    }();
    return ids;
}

bool
schemeSupportsRecovery(SchemeId id)
{
    switch (id) {
    case SchemeId::Original:
    case SchemeId::ReplayCompare:
        return false;
    default:
        return true;
    }
}

bool
schemeUsesDmrEngine(SchemeId id)
{
    switch (id) {
    case SchemeId::Dmtr:
    case SchemeId::WarpedDmr:
    case SchemeId::PartialThread:
        return true;
    default:
        return false;
    }
}

bool
schemeCoversMemory(SchemeId id)
{
    // Every registered scheme re-executes instructions on the values
    // loads returned, so memory-data corruption is invisible to all
    // of them — kept as an exhaustive switch so a future memory-side
    // scheme has to take a stance here.
    switch (id) {
    case SchemeId::Original:
    case SchemeId::RNaive:
    case SchemeId::RThread:
    case SchemeId::Dmtr:
    case SchemeId::WarpedDmr:
    case SchemeId::PartialThread:
    case SchemeId::ReplayCompare:
        return false;
    }
    return false;
}

void
validateSchemeConfig(const SchemeConfig &cfg)
{
    row(cfg.id); // fatal on out-of-range ids
    if (!std::isfinite(cfg.protectFraction) ||
        cfg.protectFraction < 0.0 || cfg.protectFraction > 1.0)
        warped_fatal("protectFraction must be in [0,1], got ",
                     cfg.protectFraction);
}

std::unique_ptr<ProtectionScheme>
makeScheme(const SchemeConfig &cfg, const arch::GpuConfig &gpu,
           const dmr::DmrConfig &dcfg, func::Executor &exec,
           std::uint64_t seed)
{
    validateSchemeConfig(cfg);
    switch (cfg.id) {
    case SchemeId::Original:
        return std::make_unique<OriginalScheme>(gpu, exec);
    case SchemeId::RNaive:
        return std::make_unique<RNaiveScheme>(gpu, exec);
    case SchemeId::RThread:
        return std::make_unique<RThreadScheme>(gpu, exec);
    case SchemeId::Dmtr:
        return std::make_unique<dmr::DmrEngine>(gpu, dmr::DmrConfig::dmtr(),
                                                exec, seed);
    case SchemeId::WarpedDmr:
        return std::make_unique<dmr::DmrEngine>(gpu, dcfg, exec, seed);
    case SchemeId::PartialThread:
        return std::make_unique<PartialThreadScheme>(
            gpu, dcfg, exec, seed, cfg.protectFraction);
    case SchemeId::ReplayCompare:
        return std::make_unique<ReplayCompareScheme>(gpu, exec);
    }
    warped_fatal("unreachable scheme id");
}

} // namespace protection
} // namespace warped
