#include "protection/partial_thread_scheme.hh"

#include <algorithm>
#include <cmath>

#include "dmr/recovery_listener.hh"
#include "isa/instruction.hh"
#include "protection/software_schemes.hh"

namespace warped {
namespace protection {

PartialThreadScheme::PartialThreadScheme(const arch::GpuConfig &gpu,
                                         const dmr::DmrConfig &dcfg,
                                         func::Executor &exec,
                                         std::uint64_t seed,
                                         double protect_fraction)
    : gpu_(gpu), exec_(exec), engine_(gpu, dcfg, exec, seed)
{
    const double f = std::clamp(protect_fraction, 0.0, 1.0);
    protectedSlots_ = static_cast<unsigned>(
        std::ceil(f * static_cast<double>(gpu.warpSize)));
    protectedSlots_ = std::min(protectedSlots_, gpu.warpSize);
    protectedMask_ = LaneMask::full(protectedSlots_);
}

void
PartialThreadScheme::attachRecoveryListener(dmr::RecoveryListener *l)
{
    listener_ = l;
    engine_.attachRecoveryListener(l);
}

unsigned
PartialThreadScheme::onIssue(const func::ExecRecord &rec, Cycle now)
{
    // Fully inside the protected prefix: indistinguishable from a
    // fully-protected warp, so the engine handles it unchanged (with
    // protectFraction == 1.0 this is every warp).
    if ((rec.active & ~protectedMask_).none())
        return engine_.onIssue(rec, now);

    // Mixed warp: duplicate the protected slots into spare lanes now;
    // the vulnerable remainder runs bare.
    const LaneMask prot = rec.active & protectedMask_;
    const unsigned n = gpu_.warpSize;
    const unsigned active = rec.active.count();
    const unsigned dups = prot.count();
    const unsigned spare = n - active;
    if (dups > spare)
        stallAcc_ += dups - spare;

    if (!rec.verifiable()) {
        if (listener_)
            listener_->onUnprotected(rec);
    } else {
        partial_.verifiableThreadInstrs += active;
        ++partial_.intraWarpInstrs;
        const unsigned unit = static_cast<unsigned>(rec.instr.unit());
        const auto &map = engine_.mapping();
        const unsigned w = gpu_.lanesPerCluster;
        const bool shuffle = engine_.config().laneShuffle;
        unsigned verified = 0;
        bool mismatch = false;
        for (unsigned slot = 0; slot < n; ++slot) {
            if (!prot.test(slot))
                continue;
            const unsigned primary = map.laneOf(slot);
            const unsigned checker =
                shuffle ? dmr::shuffledLane(primary, w) : primary;
            if (verifySlotThroughHook(exec_, map, partial_, rec, slot,
                                      checker, now, now))
                mismatch = true;
            ++verified;
            ++partial_.redundantThreadExecs[unit];
        }
        partial_.verifiedThreadInstrs += verified;
        partial_.intraVerifiedThreads += verified;
        if (listener_)
            listener_->onVerified(rec, mismatch, now);
    }

    const unsigned stall = static_cast<unsigned>(stallAcc_ / n);
    stallAcc_ %= n;
    return stall;
}

const dmr::DmrStats &
PartialThreadScheme::stats() const
{
    combined_ = engine_.stats();
    const dmr::DmrStats &p = partial_;
    combined_.verifiableThreadInstrs += p.verifiableThreadInstrs;
    combined_.verifiedThreadInstrs += p.verifiedThreadInstrs;
    combined_.intraVerifiedThreads += p.intraVerifiedThreads;
    combined_.interVerifiedThreads += p.interVerifiedThreads;
    combined_.intraWarpInstrs += p.intraWarpInstrs;
    combined_.interWarpInstrs += p.interWarpInstrs;
    combined_.comparisons += p.comparisons;
    combined_.errorsDetected += p.errorsDetected;
    for (std::size_t u = 0; u < p.redundantThreadExecs.size(); ++u)
        combined_.redundantThreadExecs[u] += p.redundantThreadExecs[u];
    if (!p.errorLog.empty()) {
        combined_.errorLog.insert(combined_.errorLog.end(),
                                  p.errorLog.begin(), p.errorLog.end());
        std::stable_sort(combined_.errorLog.begin(),
                         combined_.errorLog.end(),
                         [](const dmr::ErrorEvent &a,
                            const dmr::ErrorEvent &b) {
                             return a.cycle < b.cycle;
                         });
        if (combined_.errorLog.size() > dmr::DmrStats::kMaxErrorLog)
            combined_.errorLog.resize(dmr::DmrStats::kMaxErrorLog);
    }
    return combined_;
}

} // namespace protection
} // namespace warped
