#include "stats/launch_aggregator.hh"

#include <algorithm>

#include "common/logging.hh"

namespace warped {
namespace stats {

LaunchAggregator::LaunchAggregator(unsigned warp_size)
    : warpSize_(warp_size), result_(warp_size)
{
}

void
LaunchAggregator::addSm(sm::SmStats &st, const dmr::DmrStats &d)
{
    auto &r = result_;
    st.typeRuns.finish();

    r.issuedWarpInstrs += st.issuedWarpInstrs;
    r.issuedThreadInstrs += st.issuedThreadInstrs;
    r.busyCycles += st.busyCycles;
    r.smCycles += st.cycles;
    r.stallCyclesDmr += st.stallCyclesDmr;
    r.stallCyclesRaw += st.stallCyclesRaw;
    r.blocksRetired += st.blocksRetired;

    for (unsigned v = 0; v <= warpSize_; ++v)
        r.activeHist.add(v, st.activeCountHist.count(v));
    for (unsigned t = 0; t < isa::kNumUnitTypes; ++t) {
        r.unitIssues[t] += st.unitIssues[t];
        r.unitThreadExecs[t] += st.unitThreadExecs[t];
        runMeans_[t].add(st.typeRuns.meanRunLength(t),
                         double(st.typeRuns.runCount(t)));
        r.maxTypeRun[t] =
            std::max(r.maxTypeRun[t], st.typeRuns.maxRunLength(t));
        r.typeRunCount[t] += st.typeRuns.runCount(t);
    }
    if (st.trackRawDistance) {
        if (++rawTrackers_ > 1)
            warped_panic("more than one SM tracks RAW distances; "
                         "Fig 8b expects a single tracked thread");
        const auto &samples = st.rawDistance.samples();
        r.rawDistances.insert(r.rawDistances.end(), samples.begin(),
                              samples.end());
    }
    r.trace.insert(r.trace.end(), st.trace.begin(), st.trace.end());
    smGap_.add(st.smIdleGap.mean(), st.smIdleGap.weight());
    laneGap_.add(st.laneIdleGap.mean(), st.laneIdleGap.weight());

    r.dmr.verifiableThreadInstrs += d.verifiableThreadInstrs;
    r.dmr.verifiedThreadInstrs += d.verifiedThreadInstrs;
    r.dmr.intraVerifiedThreads += d.intraVerifiedThreads;
    r.dmr.interVerifiedThreads += d.interVerifiedThreads;
    r.dmr.intraWarpInstrs += d.intraWarpInstrs;
    r.dmr.interWarpInstrs += d.interWarpInstrs;
    r.dmr.coexecVerifications += d.coexecVerifications;
    r.dmr.dequeueVerifications += d.dequeueVerifications;
    r.dmr.idleDrainVerifications += d.idleDrainVerifications;
    r.dmr.unitDrainVerifications += d.unitDrainVerifications;
    r.dmr.enqueues += d.enqueues;
    r.dmr.eagerStalls += d.eagerStalls;
    r.dmr.rawStalls += d.rawStalls;
    r.dmr.finalDrainCycles += d.finalDrainCycles;
    for (unsigned t = 0; t < isa::kNumUnitTypes; ++t)
        r.dmr.redundantThreadExecs[t] += d.redundantThreadExecs[t];
    r.dmr.comparisons += d.comparisons;
    r.dmr.errorsDetected += d.errorsDetected;
    r.dmr.arbitrations += d.arbitrations;
    r.dmr.arbPrimaryBad += d.arbPrimaryBad;
    r.dmr.arbCheckerBad += d.arbCheckerBad;
    r.dmr.arbInconclusive += d.arbInconclusive;
    r.dmr.sampledOutThreadInstrs += d.sampledOutThreadInstrs;
    for (const auto &ev : d.errorLog) {
        if (r.dmr.errorLog.size() < dmr::DmrStats::kMaxErrorLog)
            r.dmr.errorLog.push_back(ev);
    }
}

LaunchResult
LaunchAggregator::finish(Cycle cycles, double time_ns, bool hung)
{
    auto &r = result_;
    r.cycles = cycles;
    r.timeNs = time_ns;
    r.hung = hung;

    for (unsigned t = 0; t < isa::kNumUnitTypes; ++t)
        r.meanTypeRun[t] = runMeans_[t].mean();
    r.meanSmIdleGap = smGap_.mean();
    r.meanLaneIdleGap = laneGap_.mean();

    std::stable_sort(r.trace.begin(), r.trace.end(),
                     [](const sm::TraceEvent &a,
                        const sm::TraceEvent &b) {
                         return a.cycle < b.cycle;
                     });

    return std::move(r);
}

} // namespace stats
} // namespace warped
