#include "stats/launch_aggregator.hh"

#include <algorithm>
#include <array>
#include <string>

#include "common/logging.hh"

namespace warped {
namespace stats {

LaunchAggregator::LaunchAggregator(unsigned warp_size)
    : warpSize_(warp_size), result_(warp_size)
{
}

void
LaunchAggregator::addSm(sm::SmStats &st, const dmr::DmrStats &d,
                        const recovery::RecoveryStats *rec)
{
    auto &r = result_;
    st.typeRuns.finish();

    r.issuedWarpInstrs += st.issuedWarpInstrs;
    r.issuedThreadInstrs += st.issuedThreadInstrs;
    r.busyCycles += st.busyCycles;
    r.smCycles += st.cycles;
    r.stallCyclesDmr += st.stallCyclesDmr;
    r.stallCyclesRaw += st.stallCyclesRaw;
    r.blocksRetired += st.blocksRetired;

    for (unsigned v = 0; v <= warpSize_; ++v)
        r.activeHist.add(v, st.activeCountHist.count(v));
    for (unsigned t = 0; t < isa::kNumUnitTypes; ++t) {
        r.unitIssues[t] += st.unitIssues[t];
        r.unitThreadExecs[t] += st.unitThreadExecs[t];
        runMeans_[t].add(st.typeRuns.meanRunLength(t),
                         double(st.typeRuns.runCount(t)));
        r.maxTypeRun[t] =
            std::max(r.maxTypeRun[t], st.typeRuns.maxRunLength(t));
        r.typeRunCount[t] += st.typeRuns.runCount(t);
    }
    if (st.trackRawDistance) {
        if (++rawTrackers_ > 1)
            warped_panic("more than one SM tracks RAW distances; "
                         "Fig 8b expects a single tracked thread");
        const auto &samples = st.rawDistance.samples();
        r.rawDistances.insert(r.rawDistances.end(), samples.begin(),
                              samples.end());
    }
    r.trace.insert(r.trace.end(), st.trace.begin(), st.trace.end());
    smGap_.add(st.smIdleGap.mean(), st.smIdleGap.weight());
    laneGap_.add(st.laneIdleGap.mean(), st.laneIdleGap.weight());

    r.dmr.verifiableThreadInstrs += d.verifiableThreadInstrs;
    r.dmr.verifiedThreadInstrs += d.verifiedThreadInstrs;
    r.dmr.intraVerifiedThreads += d.intraVerifiedThreads;
    r.dmr.interVerifiedThreads += d.interVerifiedThreads;
    r.dmr.intraWarpInstrs += d.intraWarpInstrs;
    r.dmr.interWarpInstrs += d.interWarpInstrs;
    r.dmr.coexecVerifications += d.coexecVerifications;
    r.dmr.dequeueVerifications += d.dequeueVerifications;
    r.dmr.idleDrainVerifications += d.idleDrainVerifications;
    r.dmr.unitDrainVerifications += d.unitDrainVerifications;
    r.dmr.enqueues += d.enqueues;
    r.dmr.eagerStalls += d.eagerStalls;
    r.dmr.rawStalls += d.rawStalls;
    r.dmr.finalDrainCycles += d.finalDrainCycles;
    r.dmr.replayQPeak = std::max(r.dmr.replayQPeak, d.replayQPeak);
    for (unsigned t = 0; t < isa::kNumUnitTypes; ++t)
        r.dmr.redundantThreadExecs[t] += d.redundantThreadExecs[t];
    r.dmr.comparisons += d.comparisons;
    r.dmr.errorsDetected += d.errorsDetected;
    r.dmr.arbitrations += d.arbitrations;
    r.dmr.arbPrimaryBad += d.arbPrimaryBad;
    r.dmr.arbCheckerBad += d.arbCheckerBad;
    r.dmr.arbInconclusive += d.arbInconclusive;
    r.dmr.sampledOutThreadInstrs += d.sampledOutThreadInstrs;
    for (const auto &ev : d.errorLog) {
        if (r.dmr.errorLog.size() < dmr::DmrStats::kMaxErrorLog)
            r.dmr.errorLog.push_back(ev);
    }

    if (rec) {
        r.recoveryEnabled = true;
        r.recovery.merge(*rec);
    }
}

void
LaunchAggregator::addTrace(const trace::Recorder &rec)
{
    result_.events = rec.merged();
    traceRecorded_ = rec.recorded();
    traceDropped_ = rec.dropped();
}

void
LaunchAggregator::buildMetrics()
{
    auto &r = result_;
    auto &m = r.metrics;

    m.counter("sim.cycles") = r.cycles;
    m.counter("sim.hung") = r.hung ? 1 : 0;
    m.counter("sim.issuedWarpInstrs") = r.issuedWarpInstrs;
    m.counter("sim.issuedThreadInstrs") = r.issuedThreadInstrs;
    m.counter("sim.busyCycles") = r.busyCycles;
    m.counter("sim.smCycles") = r.smCycles;
    m.counter("sim.stallCyclesDmr") = r.stallCyclesDmr;
    m.counter("sim.stallCyclesRaw") = r.stallCyclesRaw;
    m.counter("sim.blocksRetired") = r.blocksRetired;

    // Composed per-unit keys, built once per process: buildMetrics
    // runs for every launch (thousands per campaign), and repeated
    // string concatenation showed up in the allocation profile.
    struct UnitKeys
    {
        std::string issues, threadExecs, redundant;
    };
    static const std::array<UnitKeys, isa::kNumUnitTypes> kUnitKeys =
        [] {
            std::array<UnitKeys, isa::kNumUnitTypes> k;
            for (unsigned t = 0; t < isa::kNumUnitTypes; ++t) {
                const std::string unit =
                    isa::unitTypeName(static_cast<isa::UnitType>(t));
                k[t].issues = "sm.unitIssues." + unit;
                k[t].threadExecs = "sm.unitThreadExecs." + unit;
                k[t].redundant = "dmr.redundantThreadExecs." + unit;
            }
            return k;
        }();
    for (unsigned t = 0; t < isa::kNumUnitTypes; ++t) {
        m.counter(kUnitKeys[t].issues) = r.unitIssues[t];
        m.counter(kUnitKeys[t].threadExecs) = r.unitThreadExecs[t];
        m.counter(kUnitKeys[t].redundant) =
            r.dmr.redundantThreadExecs[t];
    }

    const auto &d = r.dmr;
    m.counter("dmr.verifiableThreadInstrs") = d.verifiableThreadInstrs;
    m.counter("dmr.verifiedThreadInstrs") = d.verifiedThreadInstrs;
    m.counter("dmr.intraVerifiedThreads") = d.intraVerifiedThreads;
    m.counter("dmr.interVerifiedThreads") = d.interVerifiedThreads;
    m.counter("dmr.intraWarpInstrs") = d.intraWarpInstrs;
    m.counter("dmr.interWarpInstrs") = d.interWarpInstrs;
    m.counter("dmr.coexecVerifications") = d.coexecVerifications;
    m.counter("dmr.dequeueVerifications") = d.dequeueVerifications;
    m.counter("dmr.idleDrainVerifications") = d.idleDrainVerifications;
    m.counter("dmr.unitDrainVerifications") = d.unitDrainVerifications;
    m.counter("dmr.enqueues") = d.enqueues;
    m.counter("dmr.eagerStalls") = d.eagerStalls;
    m.counter("dmr.rawStalls") = d.rawStalls;
    m.counter("dmr.finalDrainCycles") = d.finalDrainCycles;
    m.counter("dmr.replayQPeak") = d.replayQPeak;
    m.counter("dmr.comparisons") = d.comparisons;
    m.counter("dmr.errorsDetected") = d.errorsDetected;
    m.counter("dmr.sampledOutThreadInstrs") = d.sampledOutThreadInstrs;

    // Recovery keys exist only when the engine was constructed, so a
    // recovery-disabled run's registry (and every report derived from
    // it) is byte-identical to one from a build without recovery.
    if (r.recoveryEnabled) {
        const auto &rv = r.recovery;
        m.counter("recovery.checkpoints") = rv.checkpoints;
        m.counter("recovery.checkpointedRegs") = rv.checkpointedRegs;
        m.counter("recovery.memUndoEntries") = rv.memUndoEntries;
        m.counter("recovery.rollbacks") = rv.rollbacks;
        m.counter("recovery.rolledBackInstrs") = rv.rolledBackInstrs;
        m.counter("recovery.giveUps") = rv.giveUps;
        m.counter("recovery.evictions") = rv.evictions;
        m.counter("recovery.retireStalls") = rv.retireStalls;
        m.counter("recovery.recoveryCycles") = rv.recoveryCycles;
        m.counter("recovery.unprotectedCommits") =
            rv.unprotectedCommits;
    }

    m.counter("trace.recorded") = traceRecorded_;
    m.counter("trace.dropped") = traceDropped_;
    m.counter("trace.merged") = r.events.size();

    m.gauge("dmr.coverage") = d.coverage();
    m.gauge("sim.timeNs") = r.timeNs;
    m.gauge("sim.ipc") =
        r.cycles ? double(r.issuedWarpInstrs) / double(r.cycles) : 0.0;
}

LaunchResult
LaunchAggregator::finish(Cycle cycles, double time_ns, bool hung)
{
    auto &r = result_;
    r.cycles = cycles;
    r.timeNs = time_ns;
    r.hung = hung;

    for (unsigned t = 0; t < isa::kNumUnitTypes; ++t)
        r.meanTypeRun[t] = runMeans_[t].mean();
    r.meanSmIdleGap = smGap_.mean();
    r.meanLaneIdleGap = laneGap_.mean();

    std::stable_sort(r.trace.begin(), r.trace.end(),
                     [](const sm::TraceEvent &a,
                        const sm::TraceEvent &b) {
                         return a.cycle < b.cycle;
                     });

    buildMetrics();

    return std::move(r);
}

} // namespace stats
} // namespace warped
