#include "stats/run_length.hh"

#include <algorithm>

#include "common/logging.hh"

namespace warped {
namespace stats {

RunLengthTracker::RunLengthTracker(unsigned n_categories)
    : means_(n_categories), maxes_(n_categories, 0),
      counts_(n_categories, 0)
{
}

void
RunLengthTracker::observe(unsigned category)
{
    if (category >= means_.size())
        warped_panic("run-length category ", category, " out of range");
    if (category == current_) {
        ++currentLen_;
        return;
    }
    closeRun();
    current_ = category;
    currentLen_ = 1;
}

void
RunLengthTracker::finish()
{
    closeRun();
    current_ = kNone;
    currentLen_ = 0;
}

void
RunLengthTracker::closeRun()
{
    if (current_ == kNone || currentLen_ == 0)
        return;
    means_[current_].add(double(currentLen_));
    maxes_[current_] = std::max(maxes_[current_], currentLen_);
    ++counts_[current_];
    currentLen_ = 0;
}

double
RunLengthTracker::meanRunLength(unsigned category) const
{
    return means_.at(category).mean();
}

std::uint64_t
RunLengthTracker::maxRunLength(unsigned category) const
{
    return maxes_.at(category);
}

std::uint64_t
RunLengthTracker::runCount(unsigned category) const
{
    return counts_.at(category);
}

} // namespace stats
} // namespace warped
