/**
 * @file
 * Confidence-interval math for sampled fault-injection campaigns.
 *
 * A campaign estimates a binomial proportion (e.g. "fraction of fault
 * sites whose injection is detected") from n sampled sites. The
 * Wilson score interval is used instead of the textbook normal
 * approximation because it behaves at the extremes the campaigns
 * actually hit — proportions near 1.0 (coverage) and near 0.0 (SDC
 * rate) — where the Wald interval collapses to a point or escapes
 * [0, 1].
 */

#ifndef WARPED_STATS_CONFIDENCE_HH
#define WARPED_STATS_CONFIDENCE_HH

#include <cstdint>

namespace warped {
namespace stats {

/** Two-sided z quantile for a 95 % confidence level. */
inline constexpr double kZ95 = 1.959963984540054;

/** A confidence interval [lo, hi] for a proportion. */
struct Interval
{
    double lo = 0.0;
    double hi = 1.0;

    double width() const { return hi - lo; }
};

/**
 * Wilson score interval for @p successes out of @p trials at the
 * two-sided z quantile @p z.
 *
 * Exact endpoint behaviour: 0 successes pins lo to exactly 0,
 * successes == trials pins hi to exactly 1, and trials == 0 returns
 * the vacuous [0, 1].
 *
 * @param successes observed success count (<= trials)
 * @param trials    sample size
 * @param z         two-sided normal quantile (default 95 %)
 */
Interval wilsonInterval(std::uint64_t successes, std::uint64_t trials,
                        double z = kZ95);

/**
 * Sample size needed so a proportion estimate's normal-approximation
 * margin of error is at most @p margin at quantile @p z, assuming
 * the worst-case (or a prior) proportion @p p and optionally applying
 * the finite-population correction for a site space of @p population
 * elements (0 = treat the space as infinite).
 *
 * @param margin     target half-width, e.g. 0.01 for +-1 pp
 * @param z          two-sided normal quantile (default 95 %)
 * @param p          assumed proportion (0.5 = worst case)
 * @param population finite site-space size; 0 disables the correction
 * @return the smallest sufficient sample size (at least 1)
 */
std::uint64_t sampleSizeForMargin(double margin, double z = kZ95,
                                  double p = 0.5,
                                  std::uint64_t population = 0);

} // namespace stats
} // namespace warped

#endif // WARPED_STATS_CONFIDENCE_HH
