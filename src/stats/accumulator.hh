/**
 * @file
 * Mergeable confidence-interval accumulators for distributed
 * campaigns.
 *
 * A sharded campaign folds per-shard outcome deltas into one report;
 * every statistic that survives the fold must be an *associative*
 * reduction over runs (sums), with the derived quantities (rates,
 * intervals) stamped once at the end. These accumulators hold exactly
 * the Wilson-CI inputs — success and trial counts — so two of them
 * merge by plain addition: merge(a, merge(b, c)) == merge(merge(a, b),
 * c) and any shard order yields bit-identical final statistics.
 *
 * The stratified estimator implements textbook proportional-allocation
 * stratified sampling (Cochran): the site space is partitioned into H
 * strata of known sizes N_h; stratum h contributes weight
 * W_h = N_h / N and a sampled proportion p_h, giving
 *
 *     p_st   = sum_h W_h * p_h
 *     se_st  = sqrt( sum_h W_h^2 * p_h (1 - p_h) / n_h )
 *
 * The stratified interval is p_st +- z * se_st (clamped to [0, 1]).
 * Per-stratum uncertainty stays available as an ordinary Wilson
 * interval on (successes_h, n_h).
 *
 * Degenerate strata are handled conservatively, never by crashing:
 *  - an *empty* stratum (n_h == 0) contributes the worst-case
 *    variance W_h^2 * 0.25 (as if one run were drawn at p = 1/2) and
 *    the pooled proportion of the sampled strata as its estimate;
 *  - a *single-run* stratum uses its observed p_h with n_h = 1;
 *  - an all-failure (e.g. all-Masked) stratum has p_h = 0, variance 0,
 *    and a Wilson interval pinned to lo = 0 — the interval endpoints
 *    stay inside [0, 1] by construction.
 */

#ifndef WARPED_STATS_ACCUMULATOR_HH
#define WARPED_STATS_ACCUMULATOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "stats/confidence.hh"

namespace warped {
namespace stats {

/** Success/trial counts for one binomial proportion — the complete
 *  Wilson-CI input, mergeable by addition. */
struct BinomialAccumulator
{
    std::uint64_t successes = 0;
    std::uint64_t trials = 0;

    void
    add(bool success)
    {
        successes += success ? 1 : 0;
        ++trials;
    }

    /** Associative fold: plain component-wise addition. */
    void
    merge(const BinomialAccumulator &o)
    {
        successes += o.successes;
        trials += o.trials;
    }

    double
    proportion() const
    {
        return trials ? double(successes) / double(trials) : 0.0;
    }

    Interval
    wilson(double z = kZ95) const
    {
        return wilsonInterval(successes, trials, z);
    }
};

/**
 * Proportional-allocation stratified estimator over H fixed strata.
 *
 * Stratum sizes (the population weights) are set once at
 * construction; sampled counts accumulate per stratum and merge
 * associatively across shards. estimate()/interval() stamp the
 * derived statistics (see the file comment for the math and the
 * degenerate-stratum policy).
 */
class StratifiedEstimator
{
  public:
    StratifiedEstimator() = default;

    /** @param stratum_sizes N_h for every stratum (fixed, > 0 total). */
    explicit StratifiedEstimator(
        std::vector<std::uint64_t> stratum_sizes);

    std::size_t strata() const { return sizes_.size(); }

    /** Population size N = sum of the stratum sizes. */
    std::uint64_t population() const { return population_; }

    /** Record one run's outcome in stratum @p h. */
    void add(std::size_t h, bool success);

    /** Add pre-folded counts into stratum @p h (checkpoint/shard
     *  restore path). */
    void addCounts(std::size_t h, std::uint64_t successes,
                   std::uint64_t trials);

    /** Associative fold of another estimator over the SAME strata. */
    void merge(const StratifiedEstimator &o);

    const BinomialAccumulator &stratum(std::size_t h) const;

    /** Total sampled runs over all strata. */
    std::uint64_t sampled() const;

    /** The stratified point estimate p_st. */
    double estimate() const;

    /** The stratified z-interval around estimate(), clamped to
     *  [0, 1]. Vacuous [0, 1] when nothing was sampled. */
    Interval interval(double z = kZ95) const;

    /** Plain pooled Wilson interval (ignores stratification) — the
     *  width baseline stratification is compared against. */
    Interval pooledWilson(double z = kZ95) const;

  private:
    std::vector<std::uint64_t> sizes_;
    std::vector<BinomialAccumulator> acc_;
    std::uint64_t population_ = 0;
};

/**
 * Proportional sample allocation with the largest-remainder method:
 * splits @p total_samples over strata proportionally to
 * @p stratum_sizes, summing exactly to @p total_samples and
 * deterministic for any input (ties broken by lower stratum index).
 * Strata of nonzero size receive at least one sample when
 * total_samples >= number of nonzero strata.
 */
std::vector<std::uint64_t>
proportionalAllocation(const std::vector<std::uint64_t> &stratum_sizes,
                       std::uint64_t total_samples);

} // namespace stats
} // namespace warped

#endif // WARPED_STATS_ACCUMULATOR_HH
