/**
 * @file
 * RAW-dependency distance tracking (Fig 8b).
 *
 * The paper samples, for the registers of one tracked thread, the
 * number of cycles between a register write and the next read of that
 * register, and plots the (log-scale) distribution.
 */

#ifndef WARPED_STATS_DISTANCE_HH
#define WARPED_STATS_DISTANCE_HH

#include <cstdint>
#include <map>
#include <vector>

#include "common/types.hh"

namespace warped {
namespace stats {

/**
 * Tracks write→first-read cycle distances per register of one thread.
 */
class RawDistanceTracker
{
  public:
    explicit RawDistanceTracker(unsigned n_registers);

    /** Record a register write at @p now. */
    void onWrite(unsigned reg, Cycle now);

    /** Record a register read at @p now. */
    void onRead(unsigned reg, Cycle now);

    /** All collected distances, unordered. */
    const std::vector<std::uint64_t> &samples() const { return samples_; }

    /** Distances sorted descending — the paper's Fig 8b series shape. */
    std::vector<std::uint64_t> sortedDescending() const;

    /** Fraction of samples with distance strictly greater than @p d. */
    double fractionAbove(std::uint64_t d) const;

    std::uint64_t minDistance() const;

  private:
    struct PendingWrite
    {
        Cycle when = 0;
        bool awaitingRead = false;
    };

    std::vector<PendingWrite> pending_;
    std::vector<std::uint64_t> samples_;
};

} // namespace stats
} // namespace warped

#endif // WARPED_STATS_DISTANCE_HH
