/**
 * @file
 * Folds per-SM statistics (SmStats + the attached DmrEngine's
 * DmrStats) into one chip-wide LaunchResult.
 *
 * Extracted from Gpu::launch so the ~70 lines of aggregation can be
 * unit-tested against hand-built SmStats, and so the launch loop
 * proper (dispatch/tick/watchdog — gpu::LaunchLoop) stays free of
 * accounting code.
 */

#ifndef WARPED_STATS_LAUNCH_AGGREGATOR_HH
#define WARPED_STATS_LAUNCH_AGGREGATOR_HH

#include "stats/launch_result.hh"
#include "trace/recorder.hh"

namespace warped {
namespace stats {

class LaunchAggregator
{
  public:
    explicit LaunchAggregator(unsigned warp_size);

    /**
     * Fold one SM's counters into the accumulating result.
     *
     * @p st is taken non-const because the trailing same-type issue
     * run must be closed (RunLengthTracker::finish) before the run
     * statistics are valid.
     *
     * At most one SM may have trackRawDistance set (the Fig 8b
     * "warp 1, thread 0" tracker); a second tracker is a panic, and
     * samples append rather than overwrite.
     *
     * @p rec is the SM's recovery counters, or nullptr when recovery
     * is disabled — only a non-null fold makes finish() emit
     * recovery.* metric keys, keeping disabled reports byte-identical
     * to pre-recovery baselines.
     */
    void addSm(sm::SmStats &st, const dmr::DmrStats &d,
               const recovery::RecoveryStats *rec = nullptr);

    /**
     * Fold the launch's structured event stream in: merges the
     * recorder's per-SM lanes into the (cycle, sm, seq) total order
     * and accounts recorded/dropped counts. The fold is a pure
     * function of the recorder contents, so the resulting trace is
     * byte-identical no matter how many RunPool workers raced.
     */
    void addTrace(const trace::Recorder &rec);

    /**
     * Close the aggregation: compute the weighted run-length means,
     * sort the merged issue trace by cycle, stamp the launch
     * outcome, and derive the flat metrics registry from the folded
     * counters. The aggregator is spent afterwards.
     */
    LaunchResult finish(Cycle cycles, double time_ns, bool hung);

  private:
    /** Derive the flat metrics registry from the folded counters. */
    void buildMetrics();

    unsigned warpSize_;
    LaunchResult result_;
    std::array<Mean, isa::kNumUnitTypes> runMeans_;
    Mean smGap_, laneGap_;
    unsigned rawTrackers_ = 0;
    std::uint64_t traceRecorded_ = 0;
    std::uint64_t traceDropped_ = 0;
};

} // namespace stats
} // namespace warped

#endif // WARPED_STATS_LAUNCH_AGGREGATOR_HH
