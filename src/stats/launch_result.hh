/**
 * @file
 * Chip-wide, per-launch aggregated results.
 *
 * Lives in src/stats (not src/gpu) so the aggregation that produces
 * it — stats::LaunchAggregator — can be unit-tested against
 * hand-built SmStats without instantiating an Sm or a Gpu. The gpu
 * layer re-exports it as gpu::LaunchResult.
 */

#ifndef WARPED_STATS_LAUNCH_RESULT_HH
#define WARPED_STATS_LAUNCH_RESULT_HH

#include <array>
#include <cstdint>
#include <vector>

#include "dmr/dmr_stats.hh"
#include "recovery/recovery_stats.hh"
#include "sm/sm_stats.hh"
#include "stats/histogram.hh"
#include "trace/event.hh"
#include "trace/metrics.hh"

namespace warped {
namespace stats {

/** Chip-wide, per-launch aggregated results. */
struct LaunchResult
{
    explicit LaunchResult(unsigned warp_size)
        : activeHist(warp_size + 1)
    {
    }

    std::uint64_t cycles = 0;  ///< kernel duration in core cycles
    double timeNs = 0.0;
    bool hung = false; ///< cycle cap hit (e.g. fault-corrupted loop)

    std::uint64_t issuedWarpInstrs = 0;
    std::uint64_t issuedThreadInstrs = 0;
    std::uint64_t busyCycles = 0;  ///< sum over SMs of issuing cycles
    std::uint64_t smCycles = 0;    ///< sum over SMs of ticked cycles
    std::uint64_t stallCyclesDmr = 0;
    std::uint64_t stallCyclesRaw = 0;
    std::uint64_t blocksRetired = 0;

    /** Fig 1 source: issue slots by active-thread count. */
    stats::Histogram activeHist;

    /** Fig 5 source: issue slots / thread executions per unit type. */
    std::array<std::uint64_t, isa::kNumUnitTypes> unitIssues{};
    std::array<std::uint64_t, isa::kNumUnitTypes> unitThreadExecs{};

    /** Fig 8a source: weighted mean / max same-type run lengths. */
    std::array<double, isa::kNumUnitTypes> meanTypeRun{};
    std::array<std::uint64_t, isa::kNumUnitTypes> maxTypeRun{};
    std::array<std::uint64_t, isa::kNumUnitTypes> typeRunCount{};

    /** Fig 8b source: tracked thread's RAW distances. */
    std::vector<std::uint64_t> rawDistances;

    /** Warped-DMR counters summed over SMs. */
    dmr::DmrStats dmr;

    /** Rollback-replay recovery counters summed over SMs. All zero —
     *  and absent from the metrics registry — when recovery is off,
     *  so disabled reports stay byte-identical to old baselines. */
    recovery::RecoveryStats recovery;
    bool recoveryEnabled = false;

    /** Merged bounded issue trace (cycle-ordered) when enabled. */
    std::vector<sm::TraceEvent> trace;

    /**
     * Structured cycle-level event stream, merged over SM lanes and
     * totally ordered by (cycle, sm, seq) — populated when
     * GpuConfig::traceEvents is set (src/trace). Feed it to
     * trace::writeChromeTrace for chrome://tracing.
     */
    std::vector<trace::Event> events;

    /**
     * The flat per-run metrics registry: every counter above plus the
     * DMR ledger and trace bookkeeping under stable dotted names
     * (sim.*, dmr.*, trace.*). Always populated — it is derived from
     * the aggregate counters, so it costs nothing per cycle.
     */
    trace::MetricsRegistry metrics;

    /** §3.4 idle-gap means (when GpuConfig::trackIdleGaps). */
    double meanSmIdleGap = 0.0;
    double meanLaneIdleGap = 0.0;

    /** Convenience: Fig 9a coverage. */
    double coverage() const { return dmr.coverage(); }
};

} // namespace stats
} // namespace warped

#endif // WARPED_STATS_LAUNCH_RESULT_HH
