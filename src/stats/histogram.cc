#include "stats/histogram.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"

namespace warped {
namespace stats {

void
Histogram::add(unsigned value, std::uint64_t weight)
{
    if (value >= counts_.size())
        warped_panic("histogram value ", value, " out of domain [0,",
                     counts_.size(), ")");
    counts_[value] += weight;
}

std::uint64_t
Histogram::total() const
{
    return std::accumulate(counts_.begin(), counts_.end(),
                           std::uint64_t{0});
}

std::uint64_t
Histogram::rangeCount(unsigned lo, unsigned hi) const
{
    // Clamp in size_t so an empty histogram can't wrap size() - 1;
    // hi + 1 in size_t can't overflow for 32-bit hi.
    const std::size_t end =
        std::min<std::size_t>(std::size_t(hi) + 1, counts_.size());
    std::uint64_t sum = 0;
    for (std::size_t v = lo; v < end; ++v)
        sum += counts_[v];
    return sum;
}

double
Histogram::rangeFraction(unsigned lo, unsigned hi) const
{
    const auto t = total();
    return t == 0 ? 0.0 : double(rangeCount(lo, hi)) / double(t);
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
}

void
Mean::add(double value, double weight)
{
    sum_ += value * weight;
    weight_ += weight;
}

double
Mean::mean() const
{
    return weight_ == 0.0 ? 0.0 : sum_ / weight_;
}

} // namespace stats
} // namespace warped
