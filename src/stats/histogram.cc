#include "stats/histogram.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"

namespace warped {
namespace stats {

void
Histogram::add(unsigned value, std::uint64_t weight)
{
    if (value >= counts_.size())
        warped_panic("histogram value ", value, " out of domain [0,",
                     counts_.size(), ")");
    counts_[value] += weight;
}

std::uint64_t
Histogram::total() const
{
    return std::accumulate(counts_.begin(), counts_.end(),
                           std::uint64_t{0});
}

std::uint64_t
Histogram::rangeCount(unsigned lo, unsigned hi) const
{
    std::uint64_t sum = 0;
    const unsigned top = std::min<unsigned>(hi, counts_.size() - 1);
    for (unsigned v = lo; v <= top && v < counts_.size(); ++v)
        sum += counts_[v];
    return sum;
}

double
Histogram::rangeFraction(unsigned lo, unsigned hi) const
{
    const auto t = total();
    return t == 0 ? 0.0 : double(rangeCount(lo, hi)) / double(t);
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
}

void
Mean::add(double value, double weight)
{
    sum_ += value * weight;
    weight_ += weight;
}

double
Mean::mean() const
{
    return weight_ == 0.0 ? 0.0 : sum_ / weight_;
}

} // namespace stats
} // namespace warped
