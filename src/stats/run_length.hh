/**
 * @file
 * Run-length tracker for instruction-type switching distances (Fig 8a).
 *
 * The paper measures, per execution-unit type, the average number of
 * consecutively issued instructions of the same type before the issue
 * stream switches to another type.
 */

#ifndef WARPED_STATS_RUN_LENGTH_HH
#define WARPED_STATS_RUN_LENGTH_HH

#include <cstdint>
#include <vector>

#include "stats/histogram.hh"

namespace warped {
namespace stats {

/**
 * Observes a categorical event stream (category ids 0..nCategories-1)
 * and records, for each category, the mean and max length of maximal
 * same-category runs.
 */
class RunLengthTracker
{
  public:
    explicit RunLengthTracker(unsigned n_categories);

    /** Feed the next issued event's category. */
    void observe(unsigned category);

    /** Close the trailing run (call once at end of simulation). */
    void finish();

    /** Mean run length of @p category over all completed runs. */
    double meanRunLength(unsigned category) const;

    /** Longest completed run of @p category. */
    std::uint64_t maxRunLength(unsigned category) const;

    /** Number of completed runs of @p category. */
    std::uint64_t runCount(unsigned category) const;

  private:
    void closeRun();

    unsigned current_ = kNone;
    std::uint64_t currentLen_ = 0;
    std::vector<Mean> means_;
    std::vector<std::uint64_t> maxes_;
    std::vector<std::uint64_t> counts_;

    static constexpr unsigned kNone = ~0u;
};

} // namespace stats
} // namespace warped

#endif // WARPED_STATS_RUN_LENGTH_HH
