#include "stats/accumulator.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace warped {
namespace stats {

StratifiedEstimator::StratifiedEstimator(
    std::vector<std::uint64_t> stratum_sizes)
    : sizes_(std::move(stratum_sizes)), acc_(sizes_.size())
{
    for (const auto n : sizes_)
        population_ += n;
    if (population_ == 0)
        warped_panic("StratifiedEstimator: empty population");
}

void
StratifiedEstimator::add(std::size_t h, bool success)
{
    if (h >= acc_.size())
        warped_panic("StratifiedEstimator: stratum ", h, " out of ",
                     acc_.size());
    acc_[h].add(success);
}

void
StratifiedEstimator::addCounts(std::size_t h, std::uint64_t successes,
                               std::uint64_t trials)
{
    if (h >= acc_.size())
        warped_panic("StratifiedEstimator: stratum ", h, " out of ",
                     acc_.size());
    if (successes > trials)
        warped_panic("StratifiedEstimator: ", successes,
                     " successes in ", trials, " trials");
    acc_[h].successes += successes;
    acc_[h].trials += trials;
}

void
StratifiedEstimator::merge(const StratifiedEstimator &o)
{
    if (o.sizes_ != sizes_)
        warped_panic("StratifiedEstimator: merging mismatched "
                     "stratifications (",
                     sizes_.size(), " vs ", o.sizes_.size(),
                     " strata)");
    for (std::size_t h = 0; h < acc_.size(); ++h)
        acc_[h].merge(o.acc_[h]);
}

const BinomialAccumulator &
StratifiedEstimator::stratum(std::size_t h) const
{
    if (h >= acc_.size())
        warped_panic("StratifiedEstimator: stratum ", h, " out of ",
                     acc_.size());
    return acc_[h];
}

std::uint64_t
StratifiedEstimator::sampled() const
{
    std::uint64_t n = 0;
    for (const auto &a : acc_)
        n += a.trials;
    return n;
}

double
StratifiedEstimator::estimate() const
{
    if (population_ == 0 || sampled() == 0)
        return 0.0;
    // Pooled proportion over the sampled strata stands in for any
    // empty stratum's estimate (see the header's degenerate policy).
    BinomialAccumulator pooled;
    for (const auto &a : acc_)
        pooled.merge(a);
    const double fallback = pooled.proportion();

    double p = 0.0;
    for (std::size_t h = 0; h < acc_.size(); ++h) {
        const double w = double(sizes_[h]) / double(population_);
        p += w *
             (acc_[h].trials ? acc_[h].proportion() : fallback);
    }
    return std::clamp(p, 0.0, 1.0);
}

Interval
StratifiedEstimator::interval(double z) const
{
    if (population_ == 0 || sampled() == 0)
        return {0.0, 1.0};
    double var = 0.0;
    for (std::size_t h = 0; h < acc_.size(); ++h) {
        const double w = double(sizes_[h]) / double(population_);
        if (acc_[h].trials == 0) {
            // Empty stratum: worst-case Bernoulli variance at one
            // hypothetical draw — conservative, never degenerate.
            var += w * w * 0.25;
            continue;
        }
        const double ph = acc_[h].proportion();
        var += w * w * ph * (1.0 - ph) / double(acc_[h].trials);
    }
    const double p = estimate();
    const double half = z * std::sqrt(var);
    return {std::max(0.0, p - half), std::min(1.0, p + half)};
}

Interval
StratifiedEstimator::pooledWilson(double z) const
{
    BinomialAccumulator pooled;
    for (const auto &a : acc_)
        pooled.merge(a);
    return pooled.wilson(z);
}

std::vector<std::uint64_t>
proportionalAllocation(const std::vector<std::uint64_t> &stratum_sizes,
                       std::uint64_t total_samples)
{
    std::vector<std::uint64_t> out(stratum_sizes.size(), 0);
    std::uint64_t population = 0;
    for (const auto n : stratum_sizes)
        population += n;
    if (population == 0 || total_samples == 0)
        return out;

    // Floor share per stratum, then hand the shortfall to the largest
    // fractional remainders (lower index wins ties) — deterministic
    // and exact. 128-bit-free formulation: remainders compared via
    // (size * total) % population, which fits because sizes and
    // samples are both far below 2^32 in every real campaign; guard
    // anyway by falling back to long double when the product could
    // overflow.
    struct Rem
    {
        std::uint64_t rem;
        std::size_t idx;
    };
    std::vector<Rem> rems;
    rems.reserve(stratum_sizes.size());
    std::uint64_t assigned = 0;
    const bool overflow_safe =
        total_samples == 0 ||
        population <= ~std::uint64_t{0} / total_samples;
    for (std::size_t h = 0; h < stratum_sizes.size(); ++h) {
        std::uint64_t share, rem;
        if (overflow_safe) {
            const auto prod = stratum_sizes[h] * total_samples;
            share = prod / population;
            rem = prod % population;
        } else {
            const long double exact =
                static_cast<long double>(stratum_sizes[h]) *
                static_cast<long double>(total_samples) /
                static_cast<long double>(population);
            share = static_cast<std::uint64_t>(exact);
            rem = static_cast<std::uint64_t>(
                (exact - static_cast<long double>(share)) * 1e18L);
        }
        out[h] = share;
        assigned += share;
        rems.push_back({rem, h});
    }
    std::stable_sort(rems.begin(), rems.end(),
                     [](const Rem &a, const Rem &b) {
                         return a.rem > b.rem;
                     });
    for (std::size_t i = 0; assigned < total_samples; ++assigned, ++i)
        ++out[rems[i % rems.size()].idx];

    // Every nonzero stratum deserves at least one draw when the
    // budget allows — steal from the largest allocations.
    std::uint64_t nonzero = 0;
    for (const auto n : stratum_sizes)
        nonzero += n ? 1 : 0;
    if (total_samples >= nonzero) {
        for (std::size_t h = 0; h < out.size(); ++h) {
            if (stratum_sizes[h] == 0 || out[h] > 0)
                continue;
            const auto donor = static_cast<std::size_t>(
                std::max_element(out.begin(), out.end()) -
                out.begin());
            if (out[donor] > 1) {
                --out[donor];
                ++out[h];
            }
        }
    }
    return out;
}

} // namespace stats
} // namespace warped
