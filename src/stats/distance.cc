#include "stats/distance.hh"

#include <algorithm>
#include <limits>

namespace warped {
namespace stats {

RawDistanceTracker::RawDistanceTracker(unsigned n_registers)
    : pending_(n_registers)
{
}

void
RawDistanceTracker::onWrite(unsigned reg, Cycle now)
{
    if (reg >= pending_.size())
        return;
    pending_[reg] = {now, true};
}

void
RawDistanceTracker::onRead(unsigned reg, Cycle now)
{
    if (reg >= pending_.size())
        return;
    auto &p = pending_[reg];
    if (!p.awaitingRead)
        return;
    samples_.push_back(now >= p.when ? now - p.when : 0);
    p.awaitingRead = false;
}

std::vector<std::uint64_t>
RawDistanceTracker::sortedDescending() const
{
    auto v = samples_;
    std::sort(v.begin(), v.end(), std::greater<>());
    return v;
}

double
RawDistanceTracker::fractionAbove(std::uint64_t d) const
{
    if (samples_.empty())
        return 0.0;
    const auto n = std::count_if(samples_.begin(), samples_.end(),
                                 [d](std::uint64_t s) { return s > d; });
    return double(n) / double(samples_.size());
}

std::uint64_t
RawDistanceTracker::minDistance() const
{
    if (samples_.empty())
        return 0;
    return *std::min_element(samples_.begin(), samples_.end());
}

} // namespace stats
} // namespace warped
