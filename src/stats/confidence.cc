#include "stats/confidence.hh"

#include <cmath>

#include "common/logging.hh"

namespace warped {
namespace stats {

Interval
wilsonInterval(std::uint64_t successes, std::uint64_t trials, double z)
{
    if (successes > trials)
        warped_panic("wilsonInterval: ", successes, " successes in ",
                     trials, " trials");
    if (trials == 0)
        return {0.0, 1.0};

    const double n = static_cast<double>(trials);
    const double p = static_cast<double>(successes) / n;
    const double z2 = z * z;
    const double denom = 1.0 + z2 / n;
    const double center = p + z2 / (2.0 * n);
    const double spread =
        z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));

    Interval iv;
    iv.lo = (center - spread) / denom;
    iv.hi = (center + spread) / denom;
    // The score interval is algebraically inside [0, 1]; the clamps
    // only absorb floating-point round-off at the exact endpoints.
    if (successes == 0)
        iv.lo = 0.0;
    if (successes == trials)
        iv.hi = 1.0;
    if (iv.lo < 0.0)
        iv.lo = 0.0;
    if (iv.hi > 1.0)
        iv.hi = 1.0;
    return iv;
}

std::uint64_t
sampleSizeForMargin(double margin, double z, double p,
                    std::uint64_t population)
{
    if (margin <= 0.0 || p < 0.0 || p > 1.0)
        warped_panic("sampleSizeForMargin: bad margin ", margin,
                     " or proportion ", p);
    const double n0 = z * z * p * (1.0 - p) / (margin * margin);
    double n = n0;
    if (population > 0) {
        const double pop = static_cast<double>(population);
        n = n0 / (1.0 + (n0 - 1.0) / pop);
        if (n > pop)
            n = pop;
    }
    const double up = std::ceil(n);
    return up < 1.0 ? 1 : static_cast<std::uint64_t>(up);
}

} // namespace stats
} // namespace warped
