/**
 * @file
 * Simple counting histograms used by the figure harnesses.
 */

#ifndef WARPED_STATS_HISTOGRAM_HH
#define WARPED_STATS_HISTOGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

namespace warped {
namespace stats {

/**
 * Histogram over a fixed integer domain [0, size): one counter per
 * exact value. Used e.g. for cycles-per-active-thread-count (Fig 1,
 * domain 0..32).
 */
class Histogram
{
  public:
    explicit Histogram(unsigned size) : counts_(size, 0) {}

    void add(unsigned value, std::uint64_t weight = 1);

    std::uint64_t count(unsigned value) const { return counts_.at(value); }
    std::uint64_t total() const;
    unsigned size() const { return counts_.size(); }

    /**
     * Sum the counters over the inclusive value range [lo, hi],
     * clamped to the domain. This is how Fig 1's 2-11 / 12-21 / 22-31
     * buckets are produced from the exact per-count histogram.
     */
    std::uint64_t rangeCount(unsigned lo, unsigned hi) const;

    /** Fraction of total() falling in [lo, hi]; 0 when empty. */
    double rangeFraction(unsigned lo, unsigned hi) const;

    void reset();

  private:
    std::vector<std::uint64_t> counts_;
};

/**
 * Weighted-mean accumulator.
 */
class Mean
{
  public:
    void add(double value, double weight = 1.0);
    double mean() const;
    double weight() const { return weight_; }

  private:
    double sum_ = 0.0;
    double weight_ = 0.0;
};

} // namespace stats
} // namespace warped

#endif // WARPED_STATS_HISTOGRAM_HH
