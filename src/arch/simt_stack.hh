/**
 * @file
 * Immediate-post-dominator SIMT reconvergence stack.
 *
 * Lock-step warp execution with a single PC (paper §2.2): on a
 * divergent branch the warp serializes the two paths and reconverges
 * at the branch's immediate post-dominator. The stack discipline is
 * the classic PDOM scheme used by GPGPU-Sim:
 *
 *  - the entry being diverged is retargeted to the reconvergence PC
 *    and keeps the full pre-divergence mask (it resumes when all
 *    subgroups arrive there);
 *  - each subgroup whose next PC is not already the reconvergence PC
 *    is pushed as a new entry with rpc = the reconvergence PC;
 *  - whenever the top entry's PC reaches its rpc it is popped.
 *
 * Pure "trampoline" entries (pc == rpc at divergence time, which
 * happens every iteration of a divergent loop) are elided so the
 * stack depth is bounded by control-flow nesting rather than by loop
 * trip counts.
 */

#ifndef WARPED_ARCH_SIMT_STACK_HH
#define WARPED_ARCH_SIMT_STACK_HH

#include <vector>

#include "common/lane_mask.hh"
#include "common/types.hh"
#include "isa/instruction.hh"

namespace warped {
namespace arch {

class SimtStack
{
  public:
    struct Entry
    {
        LaneMask mask;
        Pc pc = 0;
        Pc rpc = isa::kNoPc;
    };

    SimtStack() = default;

    /** Start execution of a warp: all of @p initial at @p entry. */
    void reset(LaneMask initial, Pc entry = 0);

    /** True when no threads remain (all exited). */
    bool done() const { return stack_.empty(); }

    /** Current PC of the warp (top of stack). */
    Pc pc() const;

    /** Threads active for the instruction at pc(). */
    LaneMask activeMask() const;

    /** Depth, for diagnostics and property tests. */
    unsigned depth() const { return stack_.size(); }

    /**
     * Complete a non-branch instruction: PC advances to @p next
     * (normally pc()+1) and converged tops are popped.
     */
    void advanceTo(Pc next);

    /**
     * Complete a branch: @p taken is the sub-mask of activeMask() that
     * takes the branch to @p target; the rest fall through to
     * @p fallthrough. @p reconv is the immediate post-dominator
     * (isa::kNoPc allowed only when the branch cannot diverge).
     */
    void branch(LaneMask taken, Pc target, Pc fallthrough, Pc reconv);

    /**
     * Remove exited threads from every entry (divergent EXIT support);
     * empty entries are dropped.
     */
    void exitThreads(LaneMask exited);

  private:
    void popConverged();

    std::vector<Entry> stack_;

    /// Hard bound: nesting can never legitimately exceed this.
    static constexpr unsigned kMaxDepth = 512;
};

} // namespace arch
} // namespace warped

#endif // WARPED_ARCH_SIMT_STACK_HH
