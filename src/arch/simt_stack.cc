#include "arch/simt_stack.hh"

#include <algorithm>

#include "common/logging.hh"

namespace warped {
namespace arch {

void
SimtStack::reset(LaneMask initial, Pc entry)
{
    stack_.clear();
    if (initial.any())
        stack_.push_back({initial, entry, isa::kNoPc});
}

Pc
SimtStack::pc() const
{
    if (stack_.empty())
        warped_panic("SimtStack::pc on a finished warp");
    return stack_.back().pc;
}

LaneMask
SimtStack::activeMask() const
{
    if (stack_.empty())
        return LaneMask{};
    return stack_.back().mask;
}

void
SimtStack::advanceTo(Pc next)
{
    if (stack_.empty())
        warped_panic("SimtStack::advanceTo on a finished warp");
    stack_.back().pc = next;
    popConverged();
}

void
SimtStack::branch(LaneMask taken, Pc target, Pc fallthrough, Pc reconv)
{
    if (stack_.empty())
        warped_panic("SimtStack::branch on a finished warp");

    Entry &top = stack_.back();
    const LaneMask active = top.mask;
    const LaneMask not_taken = active & ~taken;

    if ((taken & ~active).any())
        warped_panic("branch taken mask contains inactive lanes");

    if (not_taken.none()) {            // uniformly taken
        advanceTo(target);
        return;
    }
    if (taken.none()) {                // uniformly not taken
        advanceTo(fallthrough);
        return;
    }

    // Divergence.
    if (reconv == isa::kNoPc)
        warped_panic("divergent branch without a reconvergence PC");

    top.pc = reconv;
    // A pure trampoline (the entry would sit at pc == rpc waiting to
    // be popped) carries no information: the entry below it already
    // resumes at the same reconvergence PC with a superset mask.
    // Eliding it keeps depth independent of loop trip counts.
    if (top.rpc == reconv)
        stack_.pop_back();

    if (stack_.size() + 2 > kMaxDepth)
        warped_panic("SIMT stack overflow (depth ", stack_.size(),
                     "): unstructured control flow?");

    // Push taken first so the not-taken path executes first, matching
    // the paper's Fig 3 serialization order.
    if (target != reconv)
        stack_.push_back({taken, target, reconv});
    if (fallthrough != reconv)
        stack_.push_back({not_taken, fallthrough, reconv});

    popConverged();
}

void
SimtStack::exitThreads(LaneMask exited)
{
    for (auto &e : stack_)
        e.mask &= ~exited;
    while (!stack_.empty() &&
           (stack_.back().mask.none() ||
            stack_.back().pc == stack_.back().rpc)) {
        stack_.pop_back();
    }
    // Drop empty interior entries as well: they would otherwise
    // resurface as empty tops later.
    std::erase_if(stack_, [](const Entry &e) { return e.mask.none(); });
}

void
SimtStack::popConverged()
{
    while (!stack_.empty() && stack_.back().pc == stack_.back().rpc)
        stack_.pop_back();
}

} // namespace arch
} // namespace warped
