/**
 * @file
 * Architectural (functional) state of one warp.
 */

#ifndef WARPED_ARCH_WARP_CONTEXT_HH
#define WARPED_ARCH_WARP_CONTEXT_HH

#include <cstdint>
#include <vector>

#include "arch/simt_stack.hh"
#include "common/lane_mask.hh"
#include "common/types.hh"

namespace warped {
namespace arch {

/**
 * Per-warp functional state: thread register windows, the SIMT
 * reconvergence stack, exit/barrier status, and the warp's position
 * inside its block/grid.
 *
 * The register file is stored register-major — regs_[r] is a
 * contiguous warpSize-wide plane of lane values — so the executor's
 * structure-of-arrays hot path (Executor::stepInto) can gather a
 * source operand or scatter a destination with one plane copy instead
 * of warpSize strided loads. reg()/setReg() remain the bounds-checked
 * scalar accessors for cold callers (recovery, tests, workload
 * verification).
 */
class WarpContext
{
  public:
    /**
     * @param warp_size      lanes per warp
     * @param num_regs       registers per thread
     * @param block_id       this warp's block index in the grid
     * @param warp_in_block  this warp's index within its block
     * @param block_threads  threads in the block (tail warps partial)
     * @param block_dim      threads per full block
     * @param grid_dim       blocks in the grid
     */
    WarpContext(unsigned warp_size, unsigned num_regs, unsigned block_id,
                unsigned warp_in_block, unsigned block_threads,
                unsigned block_dim, unsigned grid_dim);

    /**
     * Re-point a pooled context at a new warp of the next block:
     * equivalent to destroying and re-constructing with the same
     * warp_size/num_regs, but reuses the register backing store so
     * steady-state launches allocate nothing (Sm keeps contexts alive
     * across block retirement).
     */
    void reinit(unsigned block_id, unsigned warp_in_block,
                unsigned block_threads, unsigned block_dim,
                unsigned grid_dim);

    unsigned warpSize() const { return warpSize_; }
    unsigned numRegs() const { return numRegs_; }
    unsigned blockId() const { return blockId_; }
    unsigned warpInBlock() const { return warpInBlock_; }
    unsigned blockDim() const { return blockDim_; }
    unsigned gridDim() const { return gridDim_; }

    /** Thread index within the block for lane @p lane. */
    unsigned tid(unsigned lane) const
    { return warpInBlock_ * warpSize_ + lane; }

    /** Lanes that actually hold threads (tail warps are partial). */
    LaneMask validLanes() const { return validLanes_; }

    RegValue reg(unsigned lane, RegIndex r) const;
    void setReg(unsigned lane, RegIndex r, RegValue v);

    /** Contiguous per-lane plane of register @p r (SoA hot path);
     *  element i is lane i's value. Bounds-checked once per plane. */
    const RegValue *regPlane(RegIndex r) const;
    RegValue *regPlane(RegIndex r);

    SimtStack &stack() { return stack_; }
    const SimtStack &stack() const { return stack_; }

    /** Threads that executed EXIT. */
    LaneMask exited() const { return exited_; }
    void markExited(LaneMask m);

    /** Rollback support: overwrite the exited set with a snapshot.
     *  Unlike markExited this does not touch the SIMT stack — the
     *  recovery engine restores the stack separately. */
    void restoreExited(LaneMask m) { exited_ = m; }

    bool atBarrier() const { return atBarrier_; }
    void setAtBarrier(bool b) { atBarrier_ = b; }

    /** All threads exited (or the warp never had any). */
    bool finished() const { return stack_.done(); }

  private:
    unsigned warpSize_;
    unsigned numRegs_;
    unsigned blockId_;
    unsigned warpInBlock_;
    unsigned blockDim_;
    unsigned gridDim_;
    LaneMask validLanes_;
    LaneMask exited_;
    bool atBarrier_ = false;
    SimtStack stack_;
    std::vector<RegValue> regs_; ///< register-major: [r * warpSize + lane]
};

} // namespace arch
} // namespace warped

#endif // WARPED_ARCH_WARP_CONTEXT_HH
