/**
 * @file
 * GPU configuration: the paper's Table 3 baseline plus pipeline
 * latencies matching Fig 7.
 */

#ifndef WARPED_ARCH_GPU_CONFIG_HH
#define WARPED_ARCH_GPU_CONFIG_HH

#include <string>

namespace warped {
namespace arch {

/** Warp scheduling policy of the per-SM scheduler(s). */
enum class SchedPolicy
{
    LooseRoundRobin, ///< resume scanning after the last issued warp
    GreedyThenOldest, ///< stick with one warp until it stalls (GTO)
};

/**
 * Global-memory organization. Flat is the paper's model (fixed
 * latency, no structure); Banked adds a DRAM bank/row model behind
 * the mem::MemorySystem seam: transactions queue per bank and pay a
 * row-activation penalty on open-row misses.
 */
enum class MemModel
{
    Flat,   ///< fixed-latency byte array (the paper's §1 model)
    Banked, ///< per-bank open-row DRAM timing via MemorySystem
};

/**
 * ECC codec protecting global-memory words against cell upsets
 * (mem::MemFaultPlane decides what a memory-side fault decodes to).
 * None leaves upsets to propagate raw; Secded is the classic
 * (39,32)+parity Hamming used by GPU DRAM; Chipkill corrects any
 * single 4-bit symbol (one DRAM chip's slice) and detects two.
 */
enum class EccKind
{
    None,
    Secded,
    Chipkill,
};

/** CLI slug for a memory model ("flat", "banked"). */
const char *memModelName(MemModel m);

/** CLI slug for an ECC codec ("none", "secded", "chipkill"). */
const char *eccKindName(EccKind k);

/**
 * Static hardware parameters of the simulated GPGPU.
 *
 * Defaults model the paper's baseline (NVIDIA Fermi-style): 30 SMs,
 * 32-wide SIMT, 4-lane SIMT clusters, 32 register banks, in-order
 * single-scheduler SMs, 800 MHz core clock (1.25 ns cycle).
 */
struct GpuConfig
{
    unsigned numSms = 30;           ///< streaming multiprocessors
    unsigned warpSize = 32;         ///< threads per warp (Table 3)
    unsigned lanesPerCluster = 4;   ///< SIMT-cluster width (§2.1, [8])
    unsigned maxThreadsPerSm = 1024; ///< resident-thread limit (Table 3)
    unsigned maxBlocksPerSm = 8;    ///< resident-block limit
    unsigned numRegBanks = 32;      ///< register banks per SM (Table 3)
    unsigned registerFileBytes = 64 * 1024; ///< per SM (Table 3)
    unsigned sharedMemBytes = 64 * 1024;    ///< per SM (§2.1)

    /**
     * Warp schedulers per SM. The paper's baseline is 1 (§2.2); 2
     * models the Fermi/Kepler arrangement where the two schedulers
     * have private SP groups but share the LD/ST and SFU units —
     * reducing the heterogeneous-unit idleness inter-warp DMR feeds
     * on (the paper's own caveat, evaluated by bench/ablation).
     */
    unsigned numSchedulers = 1;

    /** Warp pick order (ablation: GTO and LRR shape the issue
     *  stream's same-type runs differently — LRR convoys the
     *  barrier-aligned phases of many warps, GTO interleaves one
     *  warp's phases; LRR is the paper-era default). */
    SchedPolicy schedPolicy = SchedPolicy::LooseRoundRobin;

    /**
     * Model register-bank conflicts (paper §2.1): each SIMT cluster
     * has four banks holding register r of its four lanes in bank
     * r % 4; an instruction whose source registers collide in one
     * bank pays one extra register-fetch cycle (the operand-buffering
     * "most of the time" caveat made concrete). Off by default to
     * keep the Fig-7 fixed-latency RF of the baseline model.
     */
    bool modelBankConflicts = false;

    // Pipeline latencies (Fig 7): FETCH 1, DEC/SCHED 1, RF 3, EXE 3+.
    unsigned rfStages = 3;          ///< register-fetch stages
    unsigned spLatency = 4;         ///< SP execute latency (cycles)
    unsigned sfuLatency = 16;       ///< SFU execute latency
    unsigned sharedMemLatency = 24; ///< LD/ST latency, shared memory
    unsigned globalMemLatency = 200; ///< LD/ST latency, global memory

    double clockGhz = 0.8;          ///< 800 MHz -> 1.25 ns cycle (§4.1)

    unsigned globalMemBytes = 64u * 1024u * 1024u; ///< simulated DRAM

    /** Track idle-gap length distributions at SM and SP granularity
     *  (the §3.4 power-gating argument). Off by default: it costs a
     *  per-lane update every cycle. */
    bool trackIdleGaps = false;

    /** Record the first N issue events per SM into the launch result
     *  (0 = tracing off). Debugging aid; see warped_sim --trace. */
    unsigned traceIssueLimit = 0;

    /**
     * Structured cycle-level tracing (src/trace): when set, the
     * launch owns a trace::Recorder, every pipeline seam (issue,
     * commit, DMR decisions, ReplayQ traffic, dispatch) emits
     * trace::Events, and the merged stream lands in
     * LaunchResult::events. Off by default: disabled tracing costs
     * one null-pointer test per seam.
     */
    bool traceEvents = false;

    /**
     * Per-SM event ring capacity when traceEvents is set: the ring
     * keeps the most recent N events and counts drops
     * (trace.dropped). 0 = unbounded — what the golden-trace and
     * invariant suites use so the ledger sees every event.
     */
    unsigned traceRingCapacity = 0;

    /**
     * Model global-memory coalescing (off by default — the paper's
     * fixed-latency LD/ST model): a warp's global access is split
     * into one transaction per distinct coalesceSegmentBytes-sized
     * segment, and the LD/ST issue port stays busy one cycle per
     * transaction, so scattered (pointer-chasing) access patterns
     * serialize behind each other.
     */
    bool modelCoalescing = false;
    unsigned coalesceSegmentBytes = 128;

    /**
     * Model memory-partition contention (off by default): global
     * transactions are interleaved across memoryPartitions partitions
     * by segment address; each partition services one transaction per
     * memoryServicePeriod cycles, so bandwidth-bound kernels queue.
     * Composes with modelCoalescing (which decides how many
     * transactions a warp access generates).
     */
    bool modelMemContention = false;
    unsigned memoryPartitions = 6;
    unsigned memoryServicePeriod = 2;

    /**
     * Global-memory organization (default Flat — the paper's fixed-
     * latency model, byte-identical to builds that predate the
     * banked model). Banked routes every global access through the
     * chip MemorySystem with per-bank open-row timing: a transaction
     * to a bank's open row costs globalMemLatency, switching rows
     * adds memRowMissPenalty, and each bank services one transaction
     * per memoryServicePeriod cycles.
     */
    MemModel memModel = MemModel::Flat;
    unsigned memBanks = 8;          ///< DRAM banks (Banked model)
    unsigned memRowBytes = 2048;    ///< DRAM row (page) size per bank
    unsigned memRowMissPenalty = 60; ///< extra cycles on a row switch

    /**
     * ECC codec on global-memory words (default None). Decides how a
     * memory-cell upset injected by a fault campaign decodes on
     * read: corrected transparently (EccCorrected), flagged as a
     * detected-uncorrectable error (DUE), or passed through silently
     * (candidate SDC). Purely a fault-model knob: it has zero effect
     * on fault-free runs.
     */
    EccKind eccKind = EccKind::None;

    /** Whether launches route global accesses through a chip-level
     *  MemorySystem (contention and/or banked timing). */
    bool
    usesMemorySystem() const
    {
        return modelMemContention || memModel == MemModel::Banked;
    }

    /** Cycle period in nanoseconds. */
    double cyclePeriodNs() const { return 1.0 / clockGhz; }

    /** Warps per fully-populated thread block of @p block_threads. */
    unsigned
    warpsPerBlock(unsigned block_threads) const
    {
        return (block_threads + warpSize - 1) / warpSize;
    }

    /** SIMT clusters per warp. */
    unsigned
    clustersPerWarp() const
    {
        return warpSize / lanesPerCluster;
    }

    /** The paper's Table 3 machine. */
    static GpuConfig paperDefault();

    /** A small machine for fast unit tests (2 SMs, short memories). */
    static GpuConfig testDefault();

    /** Sanity-check parameter combinations; warped_fatal on nonsense. */
    void validate() const;

    /** Human-readable parameter dump (bench headers). */
    std::string toString() const;
};

} // namespace arch
} // namespace warped

#endif // WARPED_ARCH_GPU_CONFIG_HH
