#include "arch/gpu_config.hh"

#include <sstream>

#include "common/logging.hh"

namespace warped {
namespace arch {

const char *
memModelName(MemModel m)
{
    switch (m) {
      case MemModel::Flat:
        return "flat";
      case MemModel::Banked:
        return "banked";
    }
    return "?";
}

const char *
eccKindName(EccKind k)
{
    switch (k) {
      case EccKind::None:
        return "none";
      case EccKind::Secded:
        return "secded";
      case EccKind::Chipkill:
        return "chipkill";
    }
    return "?";
}

GpuConfig
GpuConfig::paperDefault()
{
    return GpuConfig{};
}

GpuConfig
GpuConfig::testDefault()
{
    GpuConfig c;
    c.numSms = 2;
    c.globalMemLatency = 40;
    c.sharedMemLatency = 8;
    c.globalMemBytes = 8u * 1024u * 1024u;
    return c;
}

void
GpuConfig::validate() const
{
    if (warpSize == 0 || warpSize > 64)
        warped_fatal("warpSize must be in [1,64], got ", warpSize);
    if (lanesPerCluster == 0 || warpSize % lanesPerCluster != 0)
        warped_fatal("lanesPerCluster (", lanesPerCluster,
                     ") must divide warpSize (", warpSize, ")");
    if (numSms == 0)
        warped_fatal("need at least one SM");
    if (maxThreadsPerSm < warpSize)
        warped_fatal("maxThreadsPerSm must hold at least one warp");
    if (rfStages == 0 || spLatency == 0)
        warped_fatal("pipeline latencies must be non-zero");
    if (numSchedulers == 0 || numSchedulers > 4)
        warped_fatal("numSchedulers must be in [1,4], got ",
                     numSchedulers);
    if (clockGhz <= 0.0)
        warped_fatal("clockGhz must be positive");
    if (memModel == MemModel::Banked) {
        if (memBanks == 0)
            warped_fatal("banked memory needs at least one bank");
        if (memRowBytes < coalesceSegmentBytes ||
            memRowBytes % coalesceSegmentBytes != 0)
            warped_fatal("memRowBytes (", memRowBytes,
                         ") must be a multiple of "
                         "coalesceSegmentBytes (",
                         coalesceSegmentBytes, ")");
    }
}

std::string
GpuConfig::toString() const
{
    std::ostringstream os;
    os << "GPU: " << numSms << " SMs x " << warpSize
       << "-wide SIMT, cluster " << lanesPerCluster
       << ", max " << maxThreadsPerSm << " thr/SM, "
       << numRegBanks << " reg banks, RF " << rfStages
       << "cy, SP " << spLatency << "cy, SFU " << sfuLatency
       << "cy, shmem " << sharedMemLatency << "cy, gmem "
       << globalMemLatency << "cy, clock " << clockGhz << " GHz";
    // Appended only when non-default, so the header printed for a
    // flat/no-ECC machine is byte-identical to pre-banked builds.
    if (memModel == MemModel::Banked)
        os << ", mem banked " << memBanks << "x" << memRowBytes
           << "B rows (+" << memRowMissPenalty << "cy miss)";
    if (eccKind != EccKind::None)
        os << ", ecc " << eccKindName(eccKind);
    return os.str();
}

} // namespace arch
} // namespace warped
