#include "arch/gpu_config.hh"

#include <sstream>

#include "common/logging.hh"

namespace warped {
namespace arch {

GpuConfig
GpuConfig::paperDefault()
{
    return GpuConfig{};
}

GpuConfig
GpuConfig::testDefault()
{
    GpuConfig c;
    c.numSms = 2;
    c.globalMemLatency = 40;
    c.sharedMemLatency = 8;
    c.globalMemBytes = 8u * 1024u * 1024u;
    return c;
}

void
GpuConfig::validate() const
{
    if (warpSize == 0 || warpSize > 64)
        warped_fatal("warpSize must be in [1,64], got ", warpSize);
    if (lanesPerCluster == 0 || warpSize % lanesPerCluster != 0)
        warped_fatal("lanesPerCluster (", lanesPerCluster,
                     ") must divide warpSize (", warpSize, ")");
    if (numSms == 0)
        warped_fatal("need at least one SM");
    if (maxThreadsPerSm < warpSize)
        warped_fatal("maxThreadsPerSm must hold at least one warp");
    if (rfStages == 0 || spLatency == 0)
        warped_fatal("pipeline latencies must be non-zero");
    if (numSchedulers == 0 || numSchedulers > 4)
        warped_fatal("numSchedulers must be in [1,4], got ",
                     numSchedulers);
    if (clockGhz <= 0.0)
        warped_fatal("clockGhz must be positive");
}

std::string
GpuConfig::toString() const
{
    std::ostringstream os;
    os << "GPU: " << numSms << " SMs x " << warpSize
       << "-wide SIMT, cluster " << lanesPerCluster
       << ", max " << maxThreadsPerSm << " thr/SM, "
       << numRegBanks << " reg banks, RF " << rfStages
       << "cy, SP " << spLatency << "cy, SFU " << sfuLatency
       << "cy, shmem " << sharedMemLatency << "cy, gmem "
       << globalMemLatency << "cy, clock " << clockGhz << " GHz";
    return os.str();
}

} // namespace arch
} // namespace warped
