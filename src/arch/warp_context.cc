#include "arch/warp_context.hh"

#include "common/logging.hh"

namespace warped {
namespace arch {

WarpContext::WarpContext(unsigned warp_size, unsigned num_regs,
                         unsigned block_id, unsigned warp_in_block,
                         unsigned block_threads, unsigned block_dim,
                         unsigned grid_dim)
    : warpSize_(warp_size), numRegs_(num_regs), blockId_(block_id),
      warpInBlock_(warp_in_block), blockDim_(block_dim),
      gridDim_(grid_dim), regs_(warp_size * num_regs, 0)
{
    const unsigned first = warp_in_block * warp_size;
    for (unsigned lane = 0; lane < warp_size; ++lane) {
        if (first + lane < block_threads)
            validLanes_.set(lane);
    }
    stack_.reset(validLanes_, 0);
}

RegValue
WarpContext::reg(unsigned lane, RegIndex r) const
{
    if (lane >= warpSize_ || r >= numRegs_)
        warped_panic("register read out of range: lane ", lane, " r",
                     unsigned(r));
    return regs_[lane * numRegs_ + r];
}

void
WarpContext::setReg(unsigned lane, RegIndex r, RegValue v)
{
    if (lane >= warpSize_ || r >= numRegs_)
        warped_panic("register write out of range: lane ", lane, " r",
                     unsigned(r));
    regs_[lane * numRegs_ + r] = v;
}

void
WarpContext::markExited(LaneMask m)
{
    exited_ |= m;
    stack_.exitThreads(m);
}

} // namespace arch
} // namespace warped
