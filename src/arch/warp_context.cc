#include "arch/warp_context.hh"

#include <algorithm>

#include "common/logging.hh"

namespace warped {
namespace arch {

WarpContext::WarpContext(unsigned warp_size, unsigned num_regs,
                         unsigned block_id, unsigned warp_in_block,
                         unsigned block_threads, unsigned block_dim,
                         unsigned grid_dim)
    : warpSize_(warp_size), numRegs_(num_regs),
      regs_(warp_size * num_regs, 0)
{
    reinit(block_id, warp_in_block, block_threads, block_dim, grid_dim);
}

void
WarpContext::reinit(unsigned block_id, unsigned warp_in_block,
                    unsigned block_threads, unsigned block_dim,
                    unsigned grid_dim)
{
    blockId_ = block_id;
    warpInBlock_ = warp_in_block;
    blockDim_ = block_dim;
    gridDim_ = grid_dim;
    validLanes_ = LaneMask{};
    exited_ = LaneMask{};
    atBarrier_ = false;
    std::fill(regs_.begin(), regs_.end(), RegValue{0});

    const unsigned first = warp_in_block * warpSize_;
    for (unsigned lane = 0; lane < warpSize_; ++lane) {
        if (first + lane < block_threads)
            validLanes_.set(lane);
    }
    stack_.reset(validLanes_, 0);
}

RegValue
WarpContext::reg(unsigned lane, RegIndex r) const
{
    if (lane >= warpSize_ || r >= numRegs_)
        warped_panic("register read out of range: lane ", lane, " r",
                     unsigned(r));
    return regs_[std::size_t{r} * warpSize_ + lane];
}

void
WarpContext::setReg(unsigned lane, RegIndex r, RegValue v)
{
    if (lane >= warpSize_ || r >= numRegs_)
        warped_panic("register write out of range: lane ", lane, " r",
                     unsigned(r));
    regs_[std::size_t{r} * warpSize_ + lane] = v;
}

const RegValue *
WarpContext::regPlane(RegIndex r) const
{
    if (r >= numRegs_)
        warped_panic("register plane out of range: r", unsigned(r));
    return regs_.data() + std::size_t{r} * warpSize_;
}

RegValue *
WarpContext::regPlane(RegIndex r)
{
    if (r >= numRegs_)
        warped_panic("register plane out of range: r", unsigned(r));
    return regs_.data() + std::size_t{r} * warpSize_;
}

void
WarpContext::markExited(LaneMask m)
{
    exited_ |= m;
    stack_.exitThreads(m);
}

} // namespace arch
} // namespace warped
