/**
 * @file
 * sim::ChaosTransport — a seeded fault injector for the socket
 * transport, turning the repo's fault-injection philosophy on its
 * own service layer.
 *
 * ChaosTransport decorates any Stream. The campaign service writes
 * exactly one protocol frame per write() call, so the decorator can
 * inject *frame-granular* faults on the send path:
 *
 *   - drop:       the frame silently never leaves
 *   - duplicate:  the frame is sent twice (idempotent folds must
 *                 absorb the echo)
 *   - corrupt:    one byte is flipped (the CRC must catch it)
 *   - truncate:   only a prefix is sent (the stream desynchronizes;
 *                 the reader must diagnose, not wedge)
 *   - disconnect: the connection is torn down mid-stream
 *   - delay:      the frame is late (timeouts must not misfire)
 *
 * Every decision is drawn from a splitmix64 counter seeded by
 * ChaosConfig::seed, so a chaos schedule is reproducible: the same
 * seed against the same frame sequence makes the same faults. The
 * service survives all of them without perturbing the final report —
 * that is the invariant bench/transport_chaos drills.
 */

#ifndef WARPED_SIM_CHAOS_HH
#define WARPED_SIM_CHAOS_HH

#include <cstdint>
#include <memory>
#include <string>

#include "sim/stream.hh"

namespace warped {
namespace sim {

/** Per-frame fault probabilities (each in [0, 1]) and the schedule
 *  seed. Defaults are all-zero: a no-op decorator. */
struct ChaosConfig
{
    std::uint64_t seed = 0;
    double dropFrame = 0.0;
    double dupFrame = 0.0;
    double corruptByte = 0.0;
    double truncateFrame = 0.0;
    double disconnect = 0.0;
    std::uint64_t delayMs = 0; ///< applied to every delayed frame
    double delayFrame = 0.0;

    bool enabled() const
    {
        return dropFrame > 0 || dupFrame > 0 || corruptByte > 0 ||
               truncateFrame > 0 || disconnect > 0 ||
               delayFrame > 0;
    }

    /**
     * Parse a spec like
     * "seed=7,drop=0.1,dup=0.1,corrupt=0.05,trunc=0.05,disc=0.02,
     *  delay=5,delayp=0.2".
     * Unknown keys, malformed numbers, or probabilities outside
     * [0, 1] throw std::invalid_argument with a diagnosis — the CLI
     * turns that into the strict-usage exit 2.
     */
    static ChaosConfig parse(const std::string &spec);

    std::string toString() const;
};

/** The decorator. Wraps (and owns) an inner stream. */
class ChaosTransport : public Stream
{
  public:
    ChaosTransport(std::unique_ptr<Stream> inner, ChaosConfig cfg);

    int read(void *buf, std::size_t n, int timeout_ms) override;
    bool write(const void *buf, std::size_t n) override;
    void close() override;
    bool isClosed() const override;

    /** Faults injected so far (for drill reporting). */
    std::uint64_t faultsInjected() const { return faults_; }

  private:
    /** Next uniform double in [0, 1) from the seeded counter. */
    double roll();

    std::unique_ptr<Stream> inner_;
    ChaosConfig cfg_;
    std::uint64_t ctr_ = 0;
    std::uint64_t faults_ = 0;
};

/** Wrap @p s in a ChaosTransport when @p cfg has any fault enabled;
 *  otherwise return @p s unchanged (zero overhead off). */
std::unique_ptr<Stream> maybeChaos(std::unique_ptr<Stream> s,
                                   const ChaosConfig &cfg);

} // namespace sim
} // namespace warped

#endif // WARPED_SIM_CHAOS_HH
