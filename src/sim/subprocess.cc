#include "sim/subprocess.hh"

#include "common/logging.hh"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#if !defined(_WIN32)
#include <csignal>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace warped {
namespace sim {

#if defined(_WIN32)

Subprocess::Subprocess(const std::vector<std::string> &)
{
    warped_panic("Subprocess: not supported on this platform");
}

Subprocess::~Subprocess() = default;

SubprocessResult
Subprocess::wait()
{
    return result_;
}

std::optional<SubprocessResult>
Subprocess::waitFor(std::uint64_t)
{
    return result_;
}

void
Subprocess::kill()
{
}

#else

Subprocess::Subprocess(const std::vector<std::string> &argv)
{
    if (argv.empty())
        warped_panic("Subprocess: empty argv");
    std::vector<char *> cargv;
    cargv.reserve(argv.size() + 1);
    for (const auto &a : argv)
        cargv.push_back(const_cast<char *>(a.c_str()));
    cargv.push_back(nullptr);

    const pid_t pid = fork();
    if (pid < 0)
        warped_panic("Subprocess: fork failed: ",
                     std::strerror(errno));
    if (pid == 0) {
        execvp(cargv[0], cargv.data());
        // Exec failure must not return into the parent's stack; 127
        // is the shell convention for "command not found".
        std::fprintf(stderr, "subprocess: exec %s failed: %s\n",
                     cargv[0], std::strerror(errno));
        _exit(127);
    }
    pid_ = pid;
}

Subprocess::~Subprocess()
{
    if (!reaped_ && pid_ > 0) {
        ::kill(static_cast<pid_t>(pid_), SIGKILL);
        wait();
    }
}

SubprocessResult
Subprocess::wait()
{
    if (reaped_)
        return result_;
    int status = 0;
    pid_t r;
    do {
        r = waitpid(static_cast<pid_t>(pid_), &status, 0);
    } while (r < 0 && errno == EINTR);
    if (r < 0)
        warped_panic("Subprocess: waitpid failed: ",
                     std::strerror(errno));
    if (WIFEXITED(status)) {
        result_.exitCode = WEXITSTATUS(status);
    } else if (WIFSIGNALED(status)) {
        result_.signaled = true;
        result_.termSignal = WTERMSIG(status);
    }
    reaped_ = true;
    pid_ = -1;
    return result_;
}

std::optional<SubprocessResult>
Subprocess::waitFor(std::uint64_t timeout_ms)
{
    if (reaped_)
        return result_;
    // WNOHANG poll loop: cheap (the child does the real work), and
    // immune to the lost-SIGCHLD races a signal-driven wait invites.
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(timeout_ms);
    for (;;) {
        int status = 0;
        pid_t r;
        do {
            r = waitpid(static_cast<pid_t>(pid_), &status, WNOHANG);
        } while (r < 0 && errno == EINTR);
        if (r < 0)
            warped_panic("Subprocess: waitpid failed: ",
                         std::strerror(errno));
        if (r > 0) {
            if (WIFEXITED(status)) {
                result_.exitCode = WEXITSTATUS(status);
            } else if (WIFSIGNALED(status)) {
                result_.signaled = true;
                result_.termSignal = WTERMSIG(status);
            }
            reaped_ = true;
            pid_ = -1;
            return result_;
        }
        if (std::chrono::steady_clock::now() >= deadline)
            return std::nullopt;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
}

void
Subprocess::kill()
{
    if (!reaped_ && pid_ > 0)
        ::kill(static_cast<pid_t>(pid_), SIGKILL);
}

#endif

SubprocessResult
runSubprocess(const std::vector<std::string> &argv)
{
    Subprocess p(argv);
    return p.wait();
}

} // namespace sim
} // namespace warped
