/**
 * @file
 * sim::Subprocess — spawn a worker process and reap it.
 *
 * The local transport of the sharded campaign service: the
 * orchestrator fork/execs `warped_sim shard ...` per shard, the
 * worker writes its delta to a file (crash-atomically), and the
 * orchestrator reaps the exit status. Death by signal and nonzero
 * exits are reported distinctly so the dispatcher can tell "worker
 * was killed, re-issue" from "worker rejected the configuration,
 * abort".
 *
 * POSIX-only (fork/execvp/waitpid/kill); the CMake build gates the
 * campaign service accordingly. Stdout/stderr are inherited from the
 * parent — the delta travels through the filesystem, never through a
 * captured pipe, so worker diagnostics interleave harmlessly with
 * the orchestrator's own.
 */

#ifndef WARPED_SIM_SUBPROCESS_HH
#define WARPED_SIM_SUBPROCESS_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace warped {
namespace sim {

struct SubprocessResult
{
    /** Exit code when the child exited normally; -1 otherwise. */
    int exitCode = -1;
    /** The child died to a signal (SIGKILL'd worker, crash). */
    bool signaled = false;
    int termSignal = 0;

    bool ok() const { return !signaled && exitCode == 0; }
};

class Subprocess
{
  public:
    /** Spawn `argv` (argv[0] = executable, resolved via PATH).
     *  Panics if the process cannot even be forked. */
    explicit Subprocess(const std::vector<std::string> &argv);

    /** Reaps the child if still running (SIGKILL + wait). */
    ~Subprocess();

    Subprocess(const Subprocess &) = delete;
    Subprocess &operator=(const Subprocess &) = delete;

    /** Block until the child exits and return its status.
     *  Idempotent — later calls return the reaped status. */
    SubprocessResult wait();

    /**
     * Bounded wait: reap the child if it exits within
     * @p timeout_ms milliseconds (WNOHANG poll loop), else return
     * nullopt with the child still running. A hung worker must trip
     * the dispatcher's re-issue logic, not stall the orchestrator —
     * the caller kill()s and wait()s on timeout. Idempotent after
     * the child has been reaped.
     */
    std::optional<SubprocessResult> waitFor(std::uint64_t timeout_ms);

    /** Send SIGKILL (test hook for the worker-death drills); the
     *  child must still be wait()ed. No-op after the child has been
     *  reaped. */
    void kill();

    /** Child pid; -1 once reaped. */
    long pid() const { return pid_; }

  private:
    long pid_ = -1;
    SubprocessResult result_;
    bool reaped_ = false;
};

/** Convenience: spawn, wait, return the status. */
SubprocessResult runSubprocess(const std::vector<std::string> &argv);

} // namespace sim
} // namespace warped

#endif // WARPED_SIM_SUBPROCESS_HH
