/**
 * @file
 * sim::wire — the campaign service's frame protocol.
 *
 * Everything the socket transport says travels in length-prefixed,
 * CRC-checked frames:
 *
 * ```
 * | magic "WDF1" | type (1) | length (4, LE) | payload | crc32 (4, LE) |
 * ```
 *
 * The CRC covers type + length + payload, so a flipped bit anywhere
 * after the magic is caught before the payload is interpreted. The
 * length field is untrusted input: it is bounded (kMaxPayload) before
 * any allocation, so a corrupt or hostile peer cannot make the reader
 * reserve gigabytes. A wrong magic means the byte stream lost frame
 * alignment (a truncated earlier frame, an interleaved write) — that
 * is not recoverable within the connection, so the reader throws
 * WireError and the caller drops the connection; the shard the peer
 * was carrying is simply re-issued (fault/shard.hh makes re-delivery
 * free).
 *
 * Payloads are opaque to this layer. The campaign service uses:
 *
 * | type      | payload                                   | direction |
 * |-----------|-------------------------------------------|-----------|
 * | Hello     | "<signature>" (decimal)                   | worker -> |
 * | Assign    | "<shard> <shardCount> <heartbeatMs>"      | -> worker |
 * | Heartbeat | empty                                     | worker -> |
 * | Delta     | "<shard>\n" + ShardDelta::toJson document | worker -> |
 * | Reject    | human-readable reason                     | -> worker |
 * | Bye       | empty                                     | -> worker |
 *
 * The Delta payload carries its shard index ahead of the JSON so the
 * orchestrator can discard a stale duplicate (a chaos-duplicated
 * Delta still buffered from a previous assignment) without parsing
 * the document — the index either matches the shard currently
 * assigned on that connection or the frame is ignored.
 */

#ifndef WARPED_SIM_WIRE_HH
#define WARPED_SIM_WIRE_HH

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

namespace warped {
namespace sim {
namespace wire {

/** A corrupt, oversized, or desynchronized frame stream. */
struct WireError : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

enum class MsgType : std::uint8_t
{
    Hello = 1,
    Assign = 2,
    Heartbeat = 3,
    Delta = 4,
    Reject = 5,
    Bye = 6,
};

struct Frame
{
    MsgType type = MsgType::Heartbeat;
    std::string payload;
};

/** Frame header bytes before the payload (magic + type + length). */
constexpr std::size_t kHeaderBytes = 9;

/** Trailing CRC bytes. */
constexpr std::size_t kTrailerBytes = 4;

/** Upper bound on a frame payload. A shard delta is a flat counter
 *  document — a few KiB for typical campaigns, a few MiB with very
 *  wide strata — so 64 MiB is generous; anything larger is a corrupt
 *  length field, not a real delta. */
constexpr std::uint32_t kMaxPayload = 64u * 1024 * 1024;

/** Serialize one frame (header + payload + CRC). */
std::string encodeFrame(MsgType type, const std::string &payload);

/**
 * Incremental frame parser: feed() arbitrary byte chunks as they
 * arrive from the stream, next() yields completed frames in order.
 * A partial frame is simply not ready yet (next() returns nullopt);
 * a *wrong* frame — bad magic, length beyond kMaxPayload, CRC
 * mismatch — throws WireError with a diagnosis, after which the
 * reader (and the connection it fed from) must be discarded.
 */
class FrameReader
{
  public:
    void feed(const char *data, std::size_t n);

    /** Next completed frame, if the buffer holds one.
     *  @throws WireError on a corrupt or desynchronized stream. */
    std::optional<Frame> next();

    /** Bytes buffered but not yet consumed by next(). */
    std::size_t buffered() const { return buf_.size() - pos_; }

  private:
    std::string buf_;
    std::size_t pos_ = 0;
};

} // namespace wire
} // namespace sim
} // namespace warped

#endif // WARPED_SIM_WIRE_HH
