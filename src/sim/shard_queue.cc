#include "sim/shard_queue.hh"

#include "common/logging.hh"

namespace warped {
namespace sim {

ShardQueue::ShardQueue(std::vector<std::uint64_t> pending)
    : pending_(pending.begin(), pending.end()),
      remaining_(pending.size())
{
}

std::optional<std::uint64_t>
ShardQueue::acquire()
{
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] {
        return !pending_.empty() || remaining_ == 0;
    });
    if (remaining_ == 0)
        return std::nullopt;
    const auto shard = pending_.front();
    pending_.pop_front();
    ++outstanding_;
    return shard;
}

void
ShardQueue::ack(std::uint64_t)
{
    std::lock_guard<std::mutex> lk(mu_);
    if (outstanding_ == 0 || remaining_ == 0)
        warped_panic("ShardQueue: ack without an issued shard");
    --outstanding_;
    --remaining_;
    // Wake everyone when the campaign drains so blocked acquirers
    // can observe completion and exit.
    if (remaining_ == 0)
        cv_.notify_all();
}

void
ShardQueue::fail(std::uint64_t shard)
{
    std::lock_guard<std::mutex> lk(mu_);
    if (outstanding_ == 0)
        warped_panic("ShardQueue: fail without an issued shard");
    --outstanding_;
    ++failures_;
    pending_.push_back(shard);
    cv_.notify_one();
}

bool
ShardQueue::done() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return remaining_ == 0;
}

std::uint64_t
ShardQueue::failures() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return failures_;
}

} // namespace sim
} // namespace warped
