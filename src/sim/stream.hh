/**
 * @file
 * sim::Stream — the byte-stream seam under the socket transport.
 *
 * The transport layer (sim/transport.hh) speaks frames over an
 * abstract full-duplex byte stream. TcpStream is the real thing
 * (POSIX sockets, poll-based read timeouts, MSG_NOSIGNAL writes so a
 * dead peer is an error return, never a SIGPIPE); ChaosTransport
 * (sim/chaos.hh) decorates any Stream with a seeded fault injector;
 * tests substitute in-memory fakes.
 *
 * POSIX-only, like sim::Subprocess — the campaign service is gated
 * the same way on Windows (construction panics).
 */

#ifndef WARPED_SIM_STREAM_HH
#define WARPED_SIM_STREAM_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

namespace warped {
namespace sim {

class Stream
{
  public:
    virtual ~Stream() = default;

    /** Read outcome markers for read(): 0 is end-of-stream. */
    static constexpr int kEof = 0;
    static constexpr int kTimeout = -1;
    static constexpr int kError = -2;

    /**
     * Read up to @p n bytes into @p buf, blocking at most
     * @p timeout_ms milliseconds (-1 = forever). Returns the byte
     * count (> 0), kEof on an orderly close, kTimeout when the wait
     * expired, or kError on a connection error.
     */
    virtual int read(void *buf, std::size_t n, int timeout_ms) = 0;

    /** Write all @p n bytes; false when the peer is gone. */
    virtual bool write(const void *buf, std::size_t n) = 0;

    /** Convenience for whole encoded frames: forwards to the
     *  virtual write, so decorators still see one call per frame. */
    bool write(const std::string &s)
    {
        return write(s.data(), s.size());
    }

    /** Close the stream (idempotent). */
    virtual void close() = 0;

    virtual bool isClosed() const = 0;
};

/** A connected TCP socket. Construct via connectTcp / TcpListener. */
class TcpStream : public Stream
{
  public:
    /** Takes ownership of a connected socket fd. */
    explicit TcpStream(int fd);
    ~TcpStream() override;

    TcpStream(const TcpStream &) = delete;
    TcpStream &operator=(const TcpStream &) = delete;

    int read(void *buf, std::size_t n, int timeout_ms) override;
    bool write(const void *buf, std::size_t n) override;
    void close() override;
    bool isClosed() const override { return fd_ < 0; }

  private:
    int fd_ = -1;
};

/**
 * Connect to host:port with a bounded wait. Returns nullptr on
 * failure (refused, unreachable, timeout) — connection failures are
 * an expected, retried condition for workers (see backoffDelayMs),
 * not a panic.
 */
std::unique_ptr<Stream> connectTcp(const std::string &host,
                                   std::uint16_t port,
                                   int timeout_ms);

/** A listening TCP socket (the orchestrator side). */
class TcpListener
{
  public:
    /**
     * Bind and listen on host:port. Port 0 binds an ephemeral port —
     * read the real one back with port(). Panics when the address
     * cannot be bound (a configuration error, not a runtime
     * condition).
     */
    TcpListener(const std::string &host, std::uint16_t port);
    ~TcpListener();

    TcpListener(const TcpListener &) = delete;
    TcpListener &operator=(const TcpListener &) = delete;

    /** Accept one connection, waiting at most @p timeout_ms
     *  (-1 = forever). nullptr on timeout or after close(). */
    std::unique_ptr<Stream> accept(int timeout_ms);

    /** The bound port (resolves an ephemeral bind). */
    std::uint16_t port() const { return port_; }

    void close();

  private:
    int fd_ = -1;
    std::uint16_t port_ = 0;
};

/** Monotonic milliseconds — the transport's single clock. */
std::uint64_t monotonicMs();

/** Sleep for @p ms milliseconds. */
void sleepMs(std::uint64_t ms);

/**
 * Exponential backoff with deterministic jitter: attempt 1 waits
 * ~base, each further attempt doubles, capped at @p cap_ms; the
 * jitter term (up to half the step) is a pure function of
 * (seed, attempt) via splitmix64, so a worker's reconnect schedule
 * is reproducible from its seed — the same determinism discipline as
 * the campaign's site draws.
 */
std::uint64_t backoffDelayMs(std::uint64_t base_ms,
                             std::uint64_t cap_ms, unsigned attempt,
                             std::uint64_t seed);

} // namespace sim
} // namespace warped

#endif // WARPED_SIM_STREAM_HH
