#include "sim/run_pool.hh"

#include <algorithm>

namespace warped {
namespace sim {

unsigned
RunPool::defaultJobs()
{
    return std::max(1u, std::thread::hardware_concurrency());
}

RunPool::RunPool(unsigned jobs)
    : jobs_(std::min(kMaxJobs, jobs == kHardwareConcurrency
                                   ? defaultJobs()
                                   : jobs)),
      queueCap_(std::size_t{4} * jobs_)
{
    if (jobs_ == 1)
        return; // inline mode: no workers, no queue
    workers_.reserve(jobs_);
    for (unsigned i = 0; i < jobs_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

RunPool::~RunPool()
{
    if (workers_.empty())
        return;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        idle_.wait(lock, [this] { return inFlight_ == 0; });
        stopping_ = true;
    }
    notEmpty_.notify_all();
    for (auto &w : workers_)
        w.join();
}

RunPool::Counters
RunPool::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

void
RunPool::submit(std::function<void()> task)
{
    if (jobs_ == 1) {
        // Same failure contract as the threaded path: a throwing
        // task fails only its own slot and the first exception is
        // rethrown from wait(). Without the catch an inline-mode
        // throw escapes out of submit() mid-loop and every run the
        // caller meant to submit after it is silently lost.
        ++counters_.submitted;
        try {
            task();
        } catch (...) {
            ++counters_.failed;
            if (!firstError_)
                firstError_ = std::current_exception();
        }
        ++counters_.completed;
        return;
    }
    {
        std::unique_lock<std::mutex> lock(mutex_);
        notFull_.wait(lock,
                      [this] { return queue_.size() < queueCap_; });
        queue_.push_back(std::move(task));
        ++inFlight_;
        ++counters_.submitted;
        counters_.peakQueueDepth =
            std::max(counters_.peakQueueDepth, queue_.size());
        counters_.peakInFlight =
            std::max(counters_.peakInFlight, inFlight_);
    }
    notEmpty_.notify_one();
}

void
RunPool::wait()
{
    if (jobs_ == 1) {
        if (firstError_) {
            auto err = firstError_;
            firstError_ = nullptr;
            std::rethrow_exception(err);
        }
        return;
    }
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return inFlight_ == 0; });
    if (firstError_) {
        auto err = firstError_;
        firstError_ = nullptr;
        lock.unlock();
        std::rethrow_exception(err);
    }
}

void
RunPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            notEmpty_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // stopping_ and drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        notFull_.notify_one();

        bool failed = false;
        try {
            task();
        } catch (...) {
            failed = true;
            std::lock_guard<std::mutex> lock(mutex_);
            if (!firstError_)
                firstError_ = std::current_exception();
        }

        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++counters_.completed;
            if (failed)
                ++counters_.failed;
            if (--inFlight_ == 0)
                idle_.notify_all();
        }
    }
}

} // namespace sim
} // namespace warped
