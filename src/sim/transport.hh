/**
 * @file
 * sim::Transport — how a shard gets executed somewhere else.
 *
 * The campaign orchestrator (warped_sim serve) dispatches shard
 * indices over a ShardQueue; a Transport turns one index into one
 * delta document, by whatever mechanism:
 *
 *   - SubprocessTransport: fork/exec `warped_sim shard ...` and read
 *     the delta file back (the PR-9 path, now with a per-shard
 *     deadline so a *hung* child trips re-issue instead of stalling
 *     the orchestrator forever).
 *   - SocketTransport: workers connect over TCP
 *     (`warped_sim shard --connect HOST:PORT`), identify themselves
 *     with a Hello carrying their configuration signature, and are
 *     handed Assign frames; they stream Heartbeats while computing
 *     and a Delta frame when done (sim/wire.hh). Hung workers are
 *     detected by heartbeat silence, dead ones by disconnect; both
 *     just fail the shard back for re-issue. When no remote worker
 *     is available within a grace window the transport degrades to
 *     a fallback (normally the subprocess transport), so
 *     `serve --listen` with zero workers still completes.
 *
 * Deltas travel as opaque JSON text: the transport carries bytes,
 * fault::ShardDelta::fromJson validates them, and the aggregator's
 * idempotent fold absorbs duplicate deliveries. The final report is
 * therefore byte-identical at any worker count, transport mix, and
 * failure schedule — the invariant bench/transport_chaos drills
 * under an adversarial ChaosTransport schedule.
 *
 * All result statuses map onto the PR-9 dispatcher contract:
 * Delivered folds and acks; Failed re-issues (3-strike cap); Reject
 * is permanent (the exit-3 signature-mismatch path).
 */

#ifndef WARPED_SIM_TRANSPORT_HH
#define WARPED_SIM_TRANSPORT_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sim/chaos.hh"
#include "sim/stream.hh"
#include "sim/wire.hh"

namespace warped {
namespace sim {

/** "No shard" sentinel for the drill knobs. */
constexpr std::uint64_t kNoShard = ~std::uint64_t{0};

struct TransportResult
{
    enum class Status
    {
        /** A delta document arrived; deltaJson holds it. */
        Delivered,
        /** The worker died, hung, or delivered garbage — re-issue. */
        Failed,
        /** The worker permanently refused (signature mismatch, the
         *  exit-3 contract) — retrying cannot help. */
        Reject,
    };
    Status status = Status::Failed;
    std::string deltaJson;
    std::string diag;
};

class Transport
{
  public:
    virtual ~Transport() = default;

    /**
     * Execute shard @p shard (attempt @p attempt, 1-based) and
     * return its outcome. Blocks; thread-safe — the orchestrator
     * calls it from several dispatcher threads at once.
     */
    virtual TransportResult runShard(std::uint64_t shard,
                                     unsigned attempt) = 0;

    virtual std::string describe() const = 0;
};

// ---------------------------------------------------------------------
// Subprocess transport (local fork/exec workers)

struct SubprocessTransportConfig
{
    /** Worker command prefix: exe, "shard", workload, campaign
     *  flags. The transport appends --shard-index/--shard-count/
     *  --expect-signature/--delta-out (and drill flags). */
    std::vector<std::string> workerArgv;
    /** Delta files are written to `<prefix>.shard<I>.json`. */
    std::string deltaPrefix = "warped_serve";
    std::uint64_t shardCount = 0;
    std::uint64_t signature = 0;
    /** Per-shard wall-clock deadline; 0 = unbounded. A child that
     *  blows it is SIGKILLed and the shard fails back for re-issue
     *  (a wedged worker must not stall the orchestrator). */
    std::uint64_t deadlineMs = 0;
    /** Drill: SIGKILL this shard's worker on its first attempt. */
    std::uint64_t killShard = kNoShard;
    /** Drill: make this shard's first worker hang (the child gets
     *  --hang-for-shard and sleeps hangMs instead of computing). */
    std::uint64_t hangShard = kNoShard;
    std::uint64_t hangMs = 30000;
};

class SubprocessTransport : public Transport
{
  public:
    explicit SubprocessTransport(SubprocessTransportConfig cfg);

    TransportResult runShard(std::uint64_t shard,
                             unsigned attempt) override;
    std::string describe() const override;

  private:
    SubprocessTransportConfig cfg_;
};

// ---------------------------------------------------------------------
// Socket transport (remote workers over TCP)

struct SocketTransportConfig
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0; ///< 0 = ephemeral; read back via port()
    std::uint64_t signature = 0;
    std::uint64_t shardCount = 0;
    /** Heartbeat interval advertised to workers in every Assign. */
    std::uint64_t heartbeatMs = 250;
    /** Heartbeat silence that declares a worker hung; 0 derives
     *  8 x heartbeatMs. */
    std::uint64_t heartbeatTimeoutMs = 0;
    /** Per-shard hard deadline; 0 = unbounded (heartbeats still
     *  catch hangs). */
    std::uint64_t deadlineMs = 0;
    /** How long runShard waits for an idle remote worker before
     *  degrading to the fallback transport. */
    std::uint64_t graceMs = 1500;
    /** Local-execution fallback (not owned); nullptr = wait for a
     *  remote worker indefinitely. */
    Transport *fallback = nullptr;
};

class SocketTransport : public Transport
{
  public:
    /** Binds and starts the accept thread. Panics if the listen
     *  address cannot be bound. */
    explicit SocketTransport(SocketTransportConfig cfg);
    ~SocketTransport() override;

    TransportResult runShard(std::uint64_t shard,
                             unsigned attempt) override;
    std::string describe() const override;

    /** The bound port (resolves an ephemeral bind). */
    std::uint16_t port() const { return listener_.port(); }

    /** Stop accepting, Bye every idle worker, join the accept
     *  thread. Idempotent; the destructor calls it. */
    void stop();

    std::uint64_t remoteDeliveries() const;
    std::uint64_t fallbackRuns() const;
    std::uint64_t workersJoined() const;
    std::uint64_t workersRejected() const;

  private:
    struct Conn
    {
        std::unique_ptr<Stream> stream;
        wire::FrameReader reader;
        std::uint64_t id = 0;
    };

    void acceptLoop();
    std::shared_ptr<Conn> takeIdle(std::uint64_t wait_ms);
    void parkIdle(std::shared_ptr<Conn> c);
    TransportResult runOn(Conn &conn, std::uint64_t shard,
                          bool &assignLost);

    SocketTransportConfig cfg_;
    TcpListener listener_;
    std::thread acceptor_;
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::deque<std::shared_ptr<Conn>> idle_;
    bool stopping_ = false;
    std::uint64_t nextConnId_ = 1;
    std::uint64_t remoteDelivered_ = 0;
    std::uint64_t fallbackRuns_ = 0;
    std::uint64_t workersJoined_ = 0;
    std::uint64_t workersRejected_ = 0;
};

// ---------------------------------------------------------------------
// Socket worker (the `warped_sim shard --connect` side)

/** Computes one shard's delta document. @p shard is the index from
 *  the Assign frame, @p shard_count the plan width it must use. */
using ShardComputeFn =
    std::function<std::string(std::uint64_t shard,
                              std::uint64_t shard_count)>;

struct SocketWorkerConfig
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    /** This worker's configuration signature, sent in the Hello. */
    std::uint64_t signature = 0;
    /** Consecutive failed connects (or dropped sessions) tolerated
     *  before giving up. */
    unsigned connectAttempts = 8;
    std::uint64_t connectTimeoutMs = 2000;
    /** Reconnect backoff: base * 2^(attempt-1), capped, plus
     *  deterministic jitter (stream.hh backoffDelayMs). */
    std::uint64_t backoffBaseMs = 50;
    std::uint64_t backoffCapMs = 2000;
    /** Jitter seed; derive it from something worker-unique. */
    std::uint64_t seed = 0;
    /** Chaos decorator applied to every connection (drills). */
    ChaosConfig chaos;
    /** Drill: on the first assignment of this shard, go silent (no
     *  heartbeats, no delta) for hangMs — a wedged worker. */
    std::uint64_t hangShard = kNoShard;
    std::uint64_t hangMs = 10000;
};

/**
 * Worker main loop: connect (with backoff), Hello, serve Assign
 * frames — heartbeating while @p compute runs — until a Bye or the
 * orchestrator goes away. Returns the process exit code: 0 done,
 * 3 permanently rejected (signature mismatch — the same exit-3
 * contract as the file-based worker), 1 never reached an
 * orchestrator.
 */
int runSocketWorker(const SocketWorkerConfig &cfg,
                    const ShardComputeFn &compute);

} // namespace sim
} // namespace warped

#endif // WARPED_SIM_TRANSPORT_HH
