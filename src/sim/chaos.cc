#include "sim/chaos.hh"

#include "common/rng.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

namespace warped {
namespace sim {

namespace {

double
parseProb(const std::string &key, const std::string &val)
{
    char *end = nullptr;
    errno = 0;
    const double v = std::strtod(val.c_str(), &end);
    if (errno != 0 || end == val.c_str() || *end != '\0' || v < 0.0 ||
        v > 1.0)
        throw std::invalid_argument("chaos: " + key +
                                    " expects a probability in "
                                    "[0,1], got '" +
                                    val + "'");
    return v;
}

std::uint64_t
parseU64(const std::string &key, const std::string &val)
{
    char *end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(val.c_str(), &end, 10);
    if (errno != 0 || end == val.c_str() || *end != '\0')
        throw std::invalid_argument("chaos: " + key +
                                    " expects an integer, got '" +
                                    val + "'");
    return v;
}

} // namespace

ChaosConfig
ChaosConfig::parse(const std::string &spec)
{
    ChaosConfig c;
    std::size_t i = 0;
    while (i < spec.size()) {
        auto comma = spec.find(',', i);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string kv = spec.substr(i, comma - i);
        const auto eq = kv.find('=');
        if (eq == std::string::npos)
            throw std::invalid_argument(
                "chaos: expected key=value, got '" + kv + "'");
        const std::string k = kv.substr(0, eq);
        const std::string v = kv.substr(eq + 1);
        if (k == "seed")
            c.seed = parseU64(k, v);
        else if (k == "drop")
            c.dropFrame = parseProb(k, v);
        else if (k == "dup")
            c.dupFrame = parseProb(k, v);
        else if (k == "corrupt")
            c.corruptByte = parseProb(k, v);
        else if (k == "trunc")
            c.truncateFrame = parseProb(k, v);
        else if (k == "disc")
            c.disconnect = parseProb(k, v);
        else if (k == "delay")
            c.delayMs = parseU64(k, v);
        else if (k == "delayp")
            c.delayFrame = parseProb(k, v);
        else
            throw std::invalid_argument("chaos: unknown key '" + k +
                                        "' (expected seed, drop, "
                                        "dup, corrupt, trunc, disc, "
                                        "delay, delayp)");
        i = comma + 1;
    }
    return c;
}

std::string
ChaosConfig::toString() const
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "chaos(seed=%llu drop=%.2f dup=%.2f corrupt=%.2f "
                  "trunc=%.2f disc=%.2f delay=%llums@%.2f)",
                  static_cast<unsigned long long>(seed), dropFrame,
                  dupFrame, corruptByte, truncateFrame, disconnect,
                  static_cast<unsigned long long>(delayMs),
                  delayFrame);
    return buf;
}

ChaosTransport::ChaosTransport(std::unique_ptr<Stream> inner,
                               ChaosConfig cfg)
    : inner_(std::move(inner)), cfg_(cfg)
{
}

double
ChaosTransport::roll()
{
    const auto bits = splitmix64(cfg_.seed ^ ctr_++);
    return double(bits >> 11) * 0x1.0p-53;
}

int
ChaosTransport::read(void *buf, std::size_t n, int timeout_ms)
{
    return inner_->read(buf, n, timeout_ms);
}

bool
ChaosTransport::write(const void *buf, std::size_t n)
{
    // One protocol frame per call (see chaos.hh). Decision order is
    // fixed so a seed fully determines the schedule.
    if (cfg_.disconnect > 0 && roll() < cfg_.disconnect) {
        ++faults_;
        inner_->close();
        return false;
    }
    if (cfg_.dropFrame > 0 && roll() < cfg_.dropFrame) {
        ++faults_;
        return true; // claimed sent, never left
    }
    if (cfg_.delayFrame > 0 && roll() < cfg_.delayFrame) {
        ++faults_;
        sleepMs(cfg_.delayMs);
    }
    if (cfg_.truncateFrame > 0 && roll() < cfg_.truncateFrame &&
        n > 1) {
        ++faults_;
        // A prefix leaves the NIC, then the "crash": the peer's
        // FrameReader must diagnose the desync, not wedge.
        const std::size_t cut =
            1 + static_cast<std::size_t>(roll() * double(n - 1));
        (void)inner_->write(buf, cut);
        inner_->close();
        return false;
    }
    if (cfg_.corruptByte > 0 && roll() < cfg_.corruptByte) {
        ++faults_;
        std::string copy(static_cast<const char *>(buf), n);
        const auto at = static_cast<std::size_t>(roll() * double(n));
        copy[at < n ? at : n - 1] ^= 0x20;
        bool ok = inner_->write(copy.data(), copy.size());
        return ok;
    }
    if (!inner_->write(buf, n))
        return false;
    if (cfg_.dupFrame > 0 && roll() < cfg_.dupFrame) {
        ++faults_;
        return inner_->write(buf, n); // the echo
    }
    return true;
}

void
ChaosTransport::close()
{
    inner_->close();
}

bool
ChaosTransport::isClosed() const
{
    return inner_->isClosed();
}

std::unique_ptr<Stream>
maybeChaos(std::unique_ptr<Stream> s, const ChaosConfig &cfg)
{
    if (!s || !cfg.enabled())
        return s;
    return std::make_unique<ChaosTransport>(std::move(s), cfg);
}

} // namespace sim
} // namespace warped
