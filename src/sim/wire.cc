#include "sim/wire.hh"

#include "common/crc32.hh"

#include <cstring>

namespace warped {
namespace sim {
namespace wire {

namespace {

const char kMagic[4] = {'W', 'D', 'F', '1'};

void
putU32le(std::string &out, std::uint32_t v)
{
    out.push_back(static_cast<char>(v & 0xFF));
    out.push_back(static_cast<char>((v >> 8) & 0xFF));
    out.push_back(static_cast<char>((v >> 16) & 0xFF));
    out.push_back(static_cast<char>((v >> 24) & 0xFF));
}

std::uint32_t
getU32le(const char *p)
{
    const auto *u = reinterpret_cast<const unsigned char *>(p);
    return static_cast<std::uint32_t>(u[0]) |
           (static_cast<std::uint32_t>(u[1]) << 8) |
           (static_cast<std::uint32_t>(u[2]) << 16) |
           (static_cast<std::uint32_t>(u[3]) << 24);
}

} // namespace

std::string
encodeFrame(MsgType type, const std::string &payload)
{
    if (payload.size() > kMaxPayload)
        throw WireError("frame payload exceeds the wire bound");
    std::string out;
    out.reserve(kHeaderBytes + payload.size() + kTrailerBytes);
    out.append(kMagic, sizeof(kMagic));
    out.push_back(static_cast<char>(type));
    putU32le(out, static_cast<std::uint32_t>(payload.size()));
    out.append(payload);
    // CRC over type + length + payload: everything after the magic.
    const std::uint32_t crc =
        crc32(out.data() + sizeof(kMagic), out.size() - sizeof(kMagic));
    putU32le(out, crc);
    return out;
}

void
FrameReader::feed(const char *data, std::size_t n)
{
    // Compact the consumed prefix before growing, so a long-lived
    // connection doesn't accumulate every frame it ever parsed.
    if (pos_ > 0 && pos_ == buf_.size()) {
        buf_.clear();
        pos_ = 0;
    } else if (pos_ > 4096) {
        buf_.erase(0, pos_);
        pos_ = 0;
    }
    buf_.append(data, n);
}

std::optional<Frame>
FrameReader::next()
{
    const std::size_t avail = buf_.size() - pos_;
    if (avail < kHeaderBytes)
        return std::nullopt;
    const char *p = buf_.data() + pos_;
    if (std::memcmp(p, kMagic, sizeof(kMagic)) != 0)
        throw WireError(
            "bad frame magic: the byte stream lost frame alignment "
            "(truncated or interleaved write); dropping the "
            "connection");
    const std::uint32_t len = getU32le(p + 5);
    if (len > kMaxPayload)
        throw WireError(
            "frame length " + std::to_string(len) +
            " exceeds the wire bound (" + std::to_string(kMaxPayload) +
            "): corrupt length field; dropping the connection");
    const std::size_t need = kHeaderBytes + len + kTrailerBytes;
    if (avail < need)
        return std::nullopt;
    const std::uint32_t want = getU32le(p + kHeaderBytes + len);
    const std::uint32_t got =
        crc32(p + sizeof(kMagic), kHeaderBytes - sizeof(kMagic) + len);
    if (want != got)
        throw WireError(
            "frame fails its CRC: the payload was corrupted in "
            "flight; dropping the connection");
    Frame f;
    f.type = static_cast<MsgType>(static_cast<std::uint8_t>(p[4]));
    f.payload.assign(p + kHeaderBytes, len);
    pos_ += need;
    return f;
}

} // namespace wire
} // namespace sim
} // namespace warped
