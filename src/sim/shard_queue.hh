/**
 * @file
 * sim::ShardQueue — a thread-safe work queue with failure re-issue.
 *
 * The campaign orchestrator's dispatch core: worker threads acquire()
 * shard indices, hand them to a transport (a subprocess today, a
 * socket peer behind the same seam tomorrow), then either ack() the
 * shard — done forever — or fail() it, which puts it back on the
 * queue for any worker to pick up again. acquire() blocks while the
 * queue is empty but work is still outstanding (a failed shard may
 * be about to come back), and returns nullopt only when every shard
 * has been acknowledged — the natural shutdown signal for a worker
 * loop.
 *
 * The queue carries indices, not results, so "a worker died" costs
 * exactly one fail()/re-acquire() round trip and nothing else: shard
 * results are deterministic (see fault/shard.hh), so re-running a
 * shard reproduces the identical delta and the failure schedule
 * cannot perturb the final report.
 */

#ifndef WARPED_SIM_SHARD_QUEUE_HH
#define WARPED_SIM_SHARD_QUEUE_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

namespace warped {
namespace sim {

class ShardQueue
{
  public:
    /** @param pending the shard indices still to run (ascending or
     *  not — dispatch order is FIFO over this list). */
    explicit ShardQueue(std::vector<std::uint64_t> pending);

    /**
     * Next shard to run. Blocks while the queue is drained but
     * issued shards are unacknowledged; nullopt once all work is
     * acknowledged.
     */
    std::optional<std::uint64_t> acquire();

    /** The shard completed; it will never be issued again. */
    void ack(std::uint64_t shard);

    /** The shard's worker died (or its delta was rejected); requeue
     *  it for re-issue. */
    void fail(std::uint64_t shard);

    /** All shards acknowledged. */
    bool done() const;

    /** Total fail() calls — the observed worker-death count. */
    std::uint64_t failures() const;

  private:
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::deque<std::uint64_t> pending_;
    std::uint64_t outstanding_ = 0;
    std::uint64_t remaining_ = 0;
    std::uint64_t failures_ = 0;
};

} // namespace sim
} // namespace warped

#endif // WARPED_SIM_SHARD_QUEUE_HH
