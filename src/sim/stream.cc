#include "sim/stream.hh"

#include "common/logging.hh"
#include "common/rng.hh"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#if !defined(_WIN32)
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>
#endif

namespace warped {
namespace sim {

std::uint64_t
monotonicMs()
{
    using namespace std::chrono;
    return static_cast<std::uint64_t>(
        duration_cast<milliseconds>(
            steady_clock::now().time_since_epoch())
            .count());
}

void
sleepMs(std::uint64_t ms)
{
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

std::uint64_t
backoffDelayMs(std::uint64_t base_ms, std::uint64_t cap_ms,
               unsigned attempt, std::uint64_t seed)
{
    if (base_ms == 0)
        base_ms = 1;
    // base * 2^(attempt-1), saturating at cap.
    std::uint64_t step = base_ms;
    for (unsigned i = 1; i < attempt && step < cap_ms; ++i)
        step *= 2;
    if (step > cap_ms)
        step = cap_ms;
    // Deterministic jitter in [0, step/2]: decorrelates a fleet of
    // workers hammering a restarted orchestrator without making any
    // individual schedule irreproducible.
    const std::uint64_t jitter =
        splitmix64(seed ^ (0x9E3779B97F4A7C15ull * attempt)) %
        (step / 2 + 1);
    return step + jitter;
}

#if defined(_WIN32)

TcpStream::TcpStream(int)
{
    warped_panic("TcpStream: not supported on this platform");
}
TcpStream::~TcpStream() = default;
int
TcpStream::read(void *, std::size_t, int)
{
    return kError;
}
bool
TcpStream::write(const void *, std::size_t)
{
    return false;
}
void
TcpStream::close()
{
}

std::unique_ptr<Stream>
connectTcp(const std::string &, std::uint16_t, int)
{
    return nullptr;
}

TcpListener::TcpListener(const std::string &, std::uint16_t)
{
    warped_panic("TcpListener: not supported on this platform");
}
TcpListener::~TcpListener() = default;
std::unique_ptr<Stream>
TcpListener::accept(int)
{
    return nullptr;
}
void
TcpListener::close()
{
}

#else

namespace {

bool
parseAddr(const std::string &host, std::uint16_t port,
          sockaddr_in &sa)
{
    std::memset(&sa, 0, sizeof(sa));
    sa.sin_family = AF_INET;
    sa.sin_port = htons(port);
    if (host.empty() || host == "0.0.0.0") {
        sa.sin_addr.s_addr = htonl(INADDR_ANY);
        return true;
    }
    return inet_pton(AF_INET, host.c_str(), &sa.sin_addr) == 1;
}

} // namespace

TcpStream::TcpStream(int fd) : fd_(fd)
{
    const int one = 1;
    // Frames are small and latency-sensitive (heartbeats); Nagle
    // would batch them behind a delta in flight.
    setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

TcpStream::~TcpStream()
{
    close();
}

int
TcpStream::read(void *buf, std::size_t n, int timeout_ms)
{
    if (fd_ < 0)
        return kEof;
    pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    int pr;
    do {
        pr = ::poll(&pfd, 1, timeout_ms);
    } while (pr < 0 && errno == EINTR);
    if (pr == 0)
        return kTimeout;
    if (pr < 0)
        return kError;
    ssize_t r;
    do {
        r = ::recv(fd_, buf, n, 0);
    } while (r < 0 && errno == EINTR);
    if (r > 0)
        return static_cast<int>(r);
    if (r == 0)
        return kEof;
    return kError;
}

bool
TcpStream::write(const void *buf, std::size_t n)
{
    if (fd_ < 0)
        return false;
    const char *p = static_cast<const char *>(buf);
    while (n > 0) {
        ssize_t w;
        do {
            w = ::send(fd_, p, n, MSG_NOSIGNAL);
        } while (w < 0 && errno == EINTR);
        if (w <= 0)
            return false;
        p += w;
        n -= static_cast<std::size_t>(w);
    }
    return true;
}

void
TcpStream::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

std::unique_ptr<Stream>
connectTcp(const std::string &host, std::uint16_t port,
           int timeout_ms)
{
    sockaddr_in sa{};
    if (!parseAddr(host.empty() ? "127.0.0.1" : host, port, sa))
        return nullptr;
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return nullptr;
    // Non-blocking connect so the bounded wait is honest.
    const int flags = fcntl(fd, F_GETFL, 0);
    fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    int r = ::connect(fd, reinterpret_cast<sockaddr *>(&sa),
                      sizeof(sa));
    if (r < 0 && errno != EINPROGRESS) {
        ::close(fd);
        return nullptr;
    }
    if (r < 0) {
        pollfd pfd{};
        pfd.fd = fd;
        pfd.events = POLLOUT;
        int pr;
        do {
            pr = ::poll(&pfd, 1, timeout_ms);
        } while (pr < 0 && errno == EINTR);
        int err = 0;
        socklen_t len = sizeof(err);
        if (pr <= 0 ||
            getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 ||
            err != 0) {
            ::close(fd);
            return nullptr;
        }
    }
    fcntl(fd, F_SETFL, flags);
    return std::make_unique<TcpStream>(fd);
}

TcpListener::TcpListener(const std::string &host, std::uint16_t port)
{
    sockaddr_in sa{};
    if (!parseAddr(host, port, sa))
        warped_panic("TcpListener: bad listen address ", host);
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0)
        warped_panic("TcpListener: socket failed: ",
                     std::strerror(errno));
    const int one = 1;
    setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd_, reinterpret_cast<sockaddr *>(&sa),
               sizeof(sa)) < 0)
        warped_panic("TcpListener: cannot bind ", host, ":", port,
                     ": ", std::strerror(errno));
    if (::listen(fd_, 64) < 0)
        warped_panic("TcpListener: listen failed: ",
                     std::strerror(errno));
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (getsockname(fd_, reinterpret_cast<sockaddr *>(&bound),
                    &len) == 0)
        port_ = ntohs(bound.sin_port);
}

TcpListener::~TcpListener()
{
    close();
}

std::unique_ptr<Stream>
TcpListener::accept(int timeout_ms)
{
    if (fd_ < 0)
        return nullptr;
    pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    int pr;
    do {
        pr = ::poll(&pfd, 1, timeout_ms);
    } while (pr < 0 && errno == EINTR);
    if (pr <= 0)
        return nullptr;
    int cfd;
    do {
        cfd = ::accept(fd_, nullptr, nullptr);
    } while (cfd < 0 && errno == EINTR);
    if (cfd < 0)
        return nullptr;
    return std::make_unique<TcpStream>(cfd);
}

void
TcpListener::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

#endif

} // namespace sim
} // namespace warped
