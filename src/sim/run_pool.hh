/**
 * @file
 * sim::RunPool — the experiment plane's worker pool.
 *
 * Every campaign and figure harness in this repo runs thousands of
 * *independent* kernel launches; a RunPool fans them out over
 * std::thread workers behind a bounded task queue. Determinism is
 * preserved by construction: callers index their tasks and write into
 * pre-sized result slots, so the folded output is bit-identical to a
 * sequential run no matter how many workers raced (each run owns a
 * private Gpu and a seed derived via warped::deriveSeed).
 *
 * jobs == 1 degenerates to inline execution on the calling thread —
 * no threads are spawned, which keeps single-job runs valgrind/ASan
 * cheap and exactly equivalent to the historical sequential code.
 */

#ifndef WARPED_SIM_RUN_POOL_HH
#define WARPED_SIM_RUN_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace warped {
namespace sim {

class RunPool
{
  public:
    /** Worker count meaning "use the hardware concurrency". */
    static constexpr unsigned kHardwareConcurrency = 0;

    /**
     * Hard ceiling on worker threads. Runs are CPU-bound, so any
     * value past the core count only adds scheduling noise; the cap
     * mostly guards against garbage on the command line (e.g.
     * `--jobs -3` wrapping to four billion via strtoul).
     */
    static constexpr unsigned kMaxJobs = 256;

    /** std::thread::hardware_concurrency clamped to at least 1. */
    static unsigned defaultJobs();

    /**
     * @param jobs worker threads, clamped to kMaxJobs;
     *        kHardwareConcurrency (0) picks defaultJobs(); 1 runs
     *        every task inline in submit().
     */
    explicit RunPool(unsigned jobs = kHardwareConcurrency);

    /** Drains outstanding work, then joins the workers. */
    ~RunPool();

    RunPool(const RunPool &) = delete;
    RunPool &operator=(const RunPool &) = delete;

    unsigned jobs() const { return jobs_; }

    /**
     * Job-lifecycle counters for the observability layer's metrics
     * surface. submitted/completed are deterministic for a given
     * campaign; peakQueueDepth and peakInFlight depend on worker
     * scheduling and are diagnostics only (never goldened).
     */
    struct Counters
    {
        std::uint64_t submitted = 0;
        std::uint64_t completed = 0;
        std::uint64_t failed = 0; ///< tasks that threw
        std::size_t peakQueueDepth = 0;
        std::size_t peakInFlight = 0;
    };

    /** Snapshot of the lifecycle counters (thread-safe). */
    Counters counters() const;

    /**
     * Enqueue one task. Blocks while the queue is at capacity
     * (bounded queue: submission can never outrun execution by more
     * than a few batches, keeping memory flat for huge campaigns).
     * With jobs() == 1 the task runs inline instead; either way a
     * throwing task only marks its own slot failed — the exception
     * surfaces from wait(), never from submit().
     */
    void submit(std::function<void()> task);

    /**
     * Block until every submitted task has finished. Rethrows the
     * first exception any task raised (warped_fatal / warped_panic
     * throw), after all in-flight tasks drained.
     */
    void wait();

    /**
     * Run fn(0) .. fn(n-1) across the pool and wait. The canonical
     * deterministic pattern: fn writes its result into slot i of a
     * pre-sized vector, and the caller folds slots in index order.
     */
    template <typename Fn>
    void
    parallelFor(std::size_t n, Fn &&fn)
    {
        if (jobs_ == 1) {
            // Inline fast path: still feed the lifecycle counters so
            // a campaign's metrics don't depend on the job count, and
            // keep the threaded failure contract — a throw fails only
            // slot i, the remaining slots still run, and wait()
            // rethrows the first exception.
            for (std::size_t i = 0; i < n; ++i) {
                ++counters_.submitted;
                try {
                    fn(i);
                } catch (...) {
                    ++counters_.failed;
                    if (!firstError_)
                        firstError_ = std::current_exception();
                }
                ++counters_.completed;
            }
            wait();
            return;
        }
        for (std::size_t i = 0; i < n; ++i)
            submit([&fn, i] { fn(i); });
        wait();
    }

  private:
    void workerLoop();

    unsigned jobs_;
    std::size_t queueCap_;
    mutable std::mutex mutex_;
    Counters counters_; ///< guarded by mutex_ (inline mode: no races)
    std::condition_variable notEmpty_; ///< work for idle workers
    std::condition_variable notFull_;  ///< room for submitters
    std::condition_variable idle_;     ///< everything drained
    std::deque<std::function<void()>> queue_;
    std::size_t inFlight_ = 0; ///< queued + currently executing
    bool stopping_ = false;
    std::exception_ptr firstError_;
    std::vector<std::thread> workers_;
};

} // namespace sim
} // namespace warped

#endif // WARPED_SIM_RUN_POOL_HH
