#include "sim/transport.hh"

#include "common/logging.hh"
#include "common/rng.hh"
#include "sim/subprocess.hh"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace warped {
namespace sim {

namespace {

std::string
shardDeltaPath(const std::string &prefix, std::uint64_t shard)
{
    return prefix + ".shard" + std::to_string(shard) + ".json";
}

bool
readWholeFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return in.good() || in.eof();
}

/** Split "<shard>\n<json>" (the Delta payload). Returns false when
 *  the prefix is missing or non-numeric. */
bool
splitDeltaPayload(const std::string &payload, std::uint64_t &shard,
                  std::string &json)
{
    const auto nl = payload.find('\n');
    if (nl == std::string::npos || nl == 0)
        return false;
    const std::string head = payload.substr(0, nl);
    char *end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(head.c_str(), &end, 10);
    if (errno != 0 || end == head.c_str() || *end != '\0')
        return false;
    shard = v;
    json = payload.substr(nl + 1);
    return true;
}

} // namespace

// ---------------------------------------------------------------------
// SubprocessTransport

SubprocessTransport::SubprocessTransport(SubprocessTransportConfig cfg)
    : cfg_(std::move(cfg))
{
    if (cfg_.workerArgv.empty())
        warped_panic("SubprocessTransport: empty worker argv");
}

std::string
SubprocessTransport::describe() const
{
    return "subprocess";
}

TransportResult
SubprocessTransport::runShard(std::uint64_t shard, unsigned attempt)
{
    const std::string deltaPath =
        shardDeltaPath(cfg_.deltaPrefix, shard);
    std::remove(deltaPath.c_str());

    std::vector<std::string> argv = cfg_.workerArgv;
    argv.push_back("--shard-index");
    argv.push_back(std::to_string(shard));
    argv.push_back("--shard-count");
    argv.push_back(std::to_string(cfg_.shardCount));
    argv.push_back("--expect-signature");
    argv.push_back(std::to_string(cfg_.signature));
    argv.push_back("--delta-out");
    argv.push_back(deltaPath);
    const bool hangDrill =
        attempt == 1 && shard == cfg_.hangShard;
    if (hangDrill) {
        argv.push_back("--hang-for-shard");
        argv.push_back(std::to_string(shard));
        argv.push_back("--hang-ms");
        argv.push_back(std::to_string(cfg_.hangMs));
    }

    Subprocess proc(argv);
    if (attempt == 1 && shard == cfg_.killShard)
        proc.kill();

    SubprocessResult st;
    if (cfg_.deadlineMs > 0) {
        auto r = proc.waitFor(cfg_.deadlineMs);
        if (!r) {
            // Hung child: reclaim it and fail the shard back. This
            // is the path a wedged worker takes instead of wedging
            // the orchestrator with it.
            proc.kill();
            proc.wait();
            TransportResult res;
            res.status = TransportResult::Status::Failed;
            res.diag = "worker exceeded the " +
                       std::to_string(cfg_.deadlineMs) +
                       "ms shard deadline (hung); killed";
            return res;
        }
        st = *r;
    } else {
        st = proc.wait();
    }

    TransportResult res;
    if (st.signaled) {
        res.status = TransportResult::Status::Failed;
        res.diag = "worker killed by signal " +
                   std::to_string(st.termSignal);
        return res;
    }
    if (st.exitCode == 3) {
        res.status = TransportResult::Status::Reject;
        res.diag = "worker rejected the configuration "
                   "(signature mismatch, exit 3)";
        return res;
    }
    if (st.exitCode != 0) {
        res.status = TransportResult::Status::Failed;
        res.diag =
            "worker exited with code " + std::to_string(st.exitCode);
        return res;
    }
    if (!readWholeFile(deltaPath, res.deltaJson)) {
        res.status = TransportResult::Status::Failed;
        res.diag = "worker exited 0 but left no readable delta at " +
                   deltaPath;
        return res;
    }
    std::remove(deltaPath.c_str());
    res.status = TransportResult::Status::Delivered;
    return res;
}

// ---------------------------------------------------------------------
// SocketTransport

SocketTransport::SocketTransport(SocketTransportConfig cfg)
    : cfg_(std::move(cfg)), listener_(cfg_.host, cfg_.port)
{
    if (cfg_.heartbeatMs == 0)
        cfg_.heartbeatMs = 250;
    if (cfg_.heartbeatTimeoutMs == 0)
        cfg_.heartbeatTimeoutMs = cfg_.heartbeatMs * 8;
    acceptor_ = std::thread([this] { acceptLoop(); });
}

SocketTransport::~SocketTransport()
{
    stop();
}

std::string
SocketTransport::describe() const
{
    return "socket(" + cfg_.host + ":" +
           std::to_string(listener_.port()) + ")";
}

void
SocketTransport::acceptLoop()
{
    for (;;) {
        {
            std::lock_guard<std::mutex> lk(mu_);
            if (stopping_)
                return;
        }
        auto s = listener_.accept(100);
        if (!s)
            continue;
        // Handshake: the first frame must be a Hello carrying a
        // matching configuration signature. A mismatched worker is
        // told why (Reject) and must exit 3 — the same permanent
        // contract as the file-based worker.
        wire::FrameReader rd;
        char buf[4096];
        const std::uint64_t start = monotonicMs();
        bool joined = false;
        while (monotonicMs() - start < 2000) {
            int r = s->read(buf, sizeof(buf), 200);
            if (r == Stream::kTimeout)
                continue;
            if (r <= 0)
                break;
            std::optional<wire::Frame> f;
            try {
                rd.feed(buf, static_cast<std::size_t>(r));
                f = rd.next();
            } catch (const wire::WireError &e) {
                warped_warn("serve: dropping connection with corrupt "
                           "hello: ",
                           e.what());
                break;
            }
            if (!f)
                continue;
            if (f->type != wire::MsgType::Hello)
                continue; // tolerate stray frames before the Hello
            char *end = nullptr;
            errno = 0;
            const unsigned long long sig =
                std::strtoull(f->payload.c_str(), &end, 10);
            if (errno != 0 || end == f->payload.c_str() ||
                *end != '\0') {
                warped_warn("serve: dropping connection with "
                           "malformed hello payload");
                break;
            }
            if (sig != cfg_.signature) {
                (void)s->write(wire::encodeFrame(
                    wire::MsgType::Reject,
                    "configuration signature mismatch: orchestrator "
                    "has " +
                        std::to_string(cfg_.signature) +
                        ", worker computed " + std::to_string(sig)));
                std::lock_guard<std::mutex> lk(mu_);
                ++workersRejected_;
                break;
            }
            joined = true;
            break;
        }
        if (!joined) {
            s->close();
            continue;
        }
        auto conn = std::make_shared<Conn>();
        conn->stream = std::move(s);
        {
            std::lock_guard<std::mutex> lk(mu_);
            conn->id = nextConnId_++;
            ++workersJoined_;
            idle_.push_back(std::move(conn));
        }
        cv_.notify_all();
    }
}

std::shared_ptr<SocketTransport::Conn>
SocketTransport::takeIdle(std::uint64_t wait_ms)
{
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait_for(lk, std::chrono::milliseconds(wait_ms),
                 [&] { return !idle_.empty() || stopping_; });
    if (idle_.empty())
        return nullptr;
    auto c = idle_.front();
    idle_.pop_front();
    return c;
}

void
SocketTransport::parkIdle(std::shared_ptr<Conn> c)
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        idle_.push_back(std::move(c));
    }
    cv_.notify_all();
}

TransportResult
SocketTransport::runOn(Conn &conn, std::uint64_t shard,
                       bool &assignLost)
{
    assignLost = false;
    const std::string assign =
        std::to_string(shard) + " " +
        std::to_string(cfg_.shardCount) + " " +
        std::to_string(cfg_.heartbeatMs);
    if (!conn.stream->write(
            wire::encodeFrame(wire::MsgType::Assign, assign))) {
        // The idle connection was already dead — no worker ever saw
        // this assignment, so it must not count as a shard strike.
        assignLost = true;
        TransportResult res;
        res.diag = "stale idle connection";
        return res;
    }

    const std::uint64_t start = monotonicMs();
    std::uint64_t lastBeat = start;
    char buf[65536];
    for (;;) {
        const std::uint64_t now = monotonicMs();
        if (cfg_.deadlineMs > 0 && now - start >= cfg_.deadlineMs) {
            conn.stream->close();
            TransportResult res;
            res.diag = "shard exceeded the " +
                       std::to_string(cfg_.deadlineMs) +
                       "ms deadline on worker #" +
                       std::to_string(conn.id);
            return res;
        }
        if (now - lastBeat >= cfg_.heartbeatTimeoutMs) {
            conn.stream->close();
            TransportResult res;
            res.diag = "worker #" + std::to_string(conn.id) +
                       " went silent for " +
                       std::to_string(now - lastBeat) +
                       "ms (heartbeat timeout " +
                       std::to_string(cfg_.heartbeatTimeoutMs) +
                       "ms): hung";
            return res;
        }
        std::uint64_t waitMs =
            cfg_.heartbeatTimeoutMs - (now - lastBeat);
        if (cfg_.deadlineMs > 0) {
            const std::uint64_t toDeadline =
                cfg_.deadlineMs - (now - start);
            if (toDeadline < waitMs)
                waitMs = toDeadline;
        }

        // Drain buffered frames first: a previous read may have
        // delivered several frames in one chunk.
        std::optional<wire::Frame> f;
        try {
            f = conn.reader.next();
            if (!f) {
                const int r = conn.stream->read(
                    buf, sizeof(buf), static_cast<int>(waitMs));
                if (r == Stream::kTimeout)
                    continue;
                if (r <= 0) {
                    conn.stream->close();
                    TransportResult res;
                    res.diag = "worker #" + std::to_string(conn.id) +
                               " disconnected mid-shard";
                    return res;
                }
                conn.reader.feed(buf, static_cast<std::size_t>(r));
                continue;
            }
        } catch (const wire::WireError &e) {
            conn.stream->close();
            TransportResult res;
            res.diag = "corrupt frame from worker #" +
                       std::to_string(conn.id) + ": " + e.what();
            return res;
        }

        switch (f->type) {
        case wire::MsgType::Heartbeat:
            lastBeat = monotonicMs();
            break;
        case wire::MsgType::Delta: {
            std::uint64_t deltaShard = 0;
            std::string json;
            if (!splitDeltaPayload(f->payload, deltaShard, json)) {
                conn.stream->close();
                TransportResult res;
                res.diag = "malformed delta payload from worker #" +
                           std::to_string(conn.id);
                return res;
            }
            if (deltaShard != shard) {
                // A stale duplicate from a previous assignment
                // (chaos dup) — ignore it, the real answer is still
                // coming. It also proves the worker is alive.
                lastBeat = monotonicMs();
                break;
            }
            TransportResult res;
            res.status = TransportResult::Status::Delivered;
            res.deltaJson = std::move(json);
            return res;
        }
        case wire::MsgType::Hello:
            break; // duplicate Hello (chaos dup) — harmless
        default:
            break; // unexpected but well-formed — ignore
        }
    }
}

TransportResult
SocketTransport::runShard(std::uint64_t shard, unsigned attempt)
{
    for (;;) {
        auto conn = takeIdle(cfg_.graceMs);
        if (!conn) {
            if (cfg_.fallback) {
                {
                    std::lock_guard<std::mutex> lk(mu_);
                    ++fallbackRuns_;
                }
                warped_inform("serve: no idle socket worker within ",
                           cfg_.graceMs, "ms, running shard ", shard,
                           " via ", cfg_.fallback->describe());
                return cfg_.fallback->runShard(shard, attempt);
            }
            {
                std::lock_guard<std::mutex> lk(mu_);
                if (stopping_) {
                    TransportResult res;
                    res.diag = "transport stopped";
                    return res;
                }
            }
            warped_inform("serve: still waiting for a socket worker "
                       "for shard ",
                       shard, " (no local fallback)");
            continue;
        }
        bool assignLost = false;
        TransportResult res = runOn(*conn, shard, assignLost);
        if (res.status == TransportResult::Status::Delivered) {
            {
                std::lock_guard<std::mutex> lk(mu_);
                ++remoteDelivered_;
            }
            parkIdle(std::move(conn));
            return res;
        }
        // Failed connection: drop it (the worker reconnects with
        // backoff if it is still alive).
        if (assignLost)
            continue; // try another worker; no strike burned
        return res;
    }
}

void
SocketTransport::stop()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (stopping_)
            return;
        stopping_ = true;
    }
    cv_.notify_all();
    if (acceptor_.joinable())
        acceptor_.join();
    listener_.close();
    std::deque<std::shared_ptr<Conn>> idle;
    {
        std::lock_guard<std::mutex> lk(mu_);
        idle.swap(idle_);
    }
    const std::string bye =
        wire::encodeFrame(wire::MsgType::Bye, "");
    for (auto &c : idle) {
        (void)c->stream->write(bye);
        c->stream->close();
    }
}

std::uint64_t
SocketTransport::remoteDeliveries() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return remoteDelivered_;
}

std::uint64_t
SocketTransport::fallbackRuns() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return fallbackRuns_;
}

std::uint64_t
SocketTransport::workersJoined() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return workersJoined_;
}

std::uint64_t
SocketTransport::workersRejected() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return workersRejected_;
}

// ---------------------------------------------------------------------
// Socket worker

namespace {

struct WorkerSession
{
    enum class End
    {
        Dropped, ///< connection lost — reconnect with backoff
        Bye,     ///< orchestrator dismissed us — exit 0
        Reject,  ///< permanent refusal — exit 3
    };
    End end = End::Dropped;
    bool servedAny = false;
};

WorkerSession
serveSession(Stream &s, const SocketWorkerConfig &cfg,
             const ShardComputeFn &compute, bool &hangDone)
{
    WorkerSession session;
    std::mutex writeMu; // heartbeat thread vs. delta/ack writes
    if (!s.write(wire::encodeFrame(wire::MsgType::Hello,
                                   std::to_string(cfg.signature))))
        return session;

    wire::FrameReader rd;
    char buf[65536];
    for (;;) {
        std::optional<wire::Frame> f;
        try {
            f = rd.next();
            if (!f) {
                const int r = s.read(buf, sizeof(buf), -1);
                if (r <= 0)
                    return session;
                rd.feed(buf, static_cast<std::size_t>(r));
                continue;
            }
        } catch (const wire::WireError &e) {
            warped_warn("worker: corrupt frame from orchestrator (",
                       e.what(), "), dropping connection");
            return session;
        }

        switch (f->type) {
        case wire::MsgType::Bye:
            session.end = WorkerSession::End::Bye;
            return session;
        case wire::MsgType::Reject:
            warped_warn("worker: rejected by orchestrator: ",
                       f->payload);
            session.end = WorkerSession::End::Reject;
            return session;
        case wire::MsgType::Assign: {
            std::uint64_t shard = 0, count = 0, hbMs = 0;
            {
                std::istringstream in(f->payload);
                if (!(in >> shard >> count >> hbMs) || count == 0) {
                    warped_warn("worker: malformed assign payload '",
                               f->payload, "', dropping connection");
                    return session;
                }
            }
            if (shard == cfg.hangShard && !hangDone) {
                // The wedge drill: go completely silent — no
                // heartbeats, no delta — until the orchestrator's
                // heartbeat timeout condemns us and re-issues the
                // shard elsewhere.
                hangDone = true;
                warped_inform("worker: hang drill — going silent on "
                           "shard ",
                           shard, " for ", cfg.hangMs, "ms");
                sleepMs(cfg.hangMs);
                return session;
            }
            if (hbMs == 0)
                hbMs = 250;
            std::atomic<bool> computing{true};
            std::thread beater([&] {
                std::uint64_t lastSent = monotonicMs();
                while (computing.load(std::memory_order_relaxed)) {
                    sleepMs(10);
                    const std::uint64_t now = monotonicMs();
                    if (now - lastSent < hbMs)
                        continue;
                    lastSent = now;
                    std::lock_guard<std::mutex> lk(writeMu);
                    if (!s.write(wire::encodeFrame(
                            wire::MsgType::Heartbeat, "")))
                        return;
                }
            });
            std::string json;
            bool computed = true;
            try {
                json = compute(shard, count);
            } catch (const std::exception &e) {
                computed = false;
                warped_warn("worker: shard ", shard,
                           " computation failed: ", e.what());
            }
            computing.store(false, std::memory_order_relaxed);
            beater.join();
            if (!computed)
                return session; // drop; orchestrator re-issues
            bool sent;
            {
                std::lock_guard<std::mutex> lk(writeMu);
                sent = s.write(wire::encodeFrame(
                    wire::MsgType::Delta,
                    std::to_string(shard) + "\n" + json));
            }
            if (!sent)
                return session;
            session.servedAny = true;
            break;
        }
        default:
            break; // unexpected but well-formed — ignore
        }
    }
}

} // namespace

int
runSocketWorker(const SocketWorkerConfig &cfg,
                const ShardComputeFn &compute)
{
    unsigned strikes = 0;
    bool everServed = false;
    bool hangDone = false;
    std::uint64_t chaosSession = 0;
    for (;;) {
        auto s =
            connectTcp(cfg.host, cfg.port,
                       static_cast<int>(cfg.connectTimeoutMs));
        if (s) {
            // Each session gets its own chaos schedule, derived
            // deterministically from (seed, session index). Replaying
            // the *same* schedule on every reconnect would corrupt
            // the same-position frame in every session — a retry that
            // can never succeed, which models nothing real and
            // defeats the 3-strike budget by construction.
            ChaosConfig chaos = cfg.chaos;
            chaos.seed = splitmix64(
                chaos.seed ^
                (0x9E3779B97F4A7C15ull * ++chaosSession));
            s = maybeChaos(std::move(s), chaos);
            const WorkerSession session =
                serveSession(*s, cfg, compute, hangDone);
            s->close();
            if (session.end == WorkerSession::End::Bye)
                return 0;
            if (session.end == WorkerSession::End::Reject)
                return 3;
            everServed = everServed || session.servedAny;
            if (session.servedAny)
                strikes = 0; // a productive session resets the clock
        }
        ++strikes;
        if (strikes > cfg.connectAttempts) {
            if (everServed) {
                warped_inform("worker: orchestrator gone after ",
                           strikes,
                           " attempts; work delivered, exiting");
                return 0;
            }
            warped_warn("worker: could not reach orchestrator at ",
                       cfg.host, ":", cfg.port, " after ", strikes,
                       " attempts");
            return 1;
        }
        const std::uint64_t delay = backoffDelayMs(
            cfg.backoffBaseMs, cfg.backoffCapMs, strikes, cfg.seed);
        sleepMs(delay);
    }
}

} // namespace sim
} // namespace warped
