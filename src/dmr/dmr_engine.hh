/**
 * @file
 * The per-SM Warped-DMR engine: decides, for every issued warp
 * instruction, whether it is verified spatially (intra-warp DMR via
 * the RFU) or temporally (inter-warp DMR via co-execution / ReplayQ,
 * Algorithm 1), performs the redundant executions through the fault
 * hook, and runs the comparator.
 */

#ifndef WARPED_DMR_DMR_ENGINE_HH
#define WARPED_DMR_DMR_ENGINE_HH

#include "arch/gpu_config.hh"
#include "common/rng.hh"
#include "dmr/dmr_config.hh"
#include "dmr/dmr_stats.hh"
#include "dmr/replay_queue.hh"
#include "dmr/thread_mapping.hh"
#include "func/executor.hh"
#include "protection/protection_scheme.hh"

namespace warped {
namespace dmr {

class RecoveryListener;

/**
 * The reference `protection::ProtectionScheme`: both the paper's
 * Warped-DMR and the DMTR baseline (which is the same engine under
 * `DmrConfig::dmtr()` knobs). Remains directly constructible — the
 * unit tests and ablations drive it without the seam.
 */
class DmrEngine final : public protection::ProtectionScheme
{
  public:
    /**
     * @param gpu   machine geometry (cluster width, warp size)
     * @param cfg   Warped-DMR knobs
     * @param exec  the SM's executor (fault hook + SM id)
     * @param seed  RNG seed for the ReplayQ random pick
     */
    DmrEngine(const arch::GpuConfig &gpu, const DmrConfig &cfg,
              func::Executor &exec, std::uint64_t seed);

    /** DMTR is this engine under DmrConfig::dmtr() knobs. */
    protection::SchemeId
    id() const override
    {
        return (cfg_.temporalAll && !cfg_.intraWarp)
                   ? protection::SchemeId::Dmtr
                   : protection::SchemeId::WarpedDmr;
    }
    bool supportsRecovery() const override { return true; }

    /**
     * Pre-issue check: true when @p next of warp @p warp_id reads a
     * register produced by an unverified ReplayQ entry. The engine
     * consumes the stall cycle to verify one blocking producer
     * (paper: "executes the verification of the source instruction
     * before allowing the consumer instruction to execute").
     */
    bool rawHazardStall(unsigned warp_id, const isa::Instruction &next,
                        Cycle now) override;

    /**
     * Account and protect an issued instruction. Must be called for
     * every issue, in order. @return extra pipeline stall cycles
     * (1 when the ReplayQ was full with no co-execution partner).
     *
     * When @p rec is the engine's own scratch() record the engine
     * adopts it by buffer swap instead of copying the ~2.6 KB
     * payload; any other record (unit-test fixtures) is copied.
     */
    unsigned onIssue(const func::ExecRecord &rec, Cycle now) override;

    /**
     * Scratch record for the SM to execute the next instruction into
     * (Executor::stepInto). Handing the engine its own scratch lets
     * onIssue keep the record as the pending RF-stage instruction
     * with a buffer swap — no per-issue copy. Contents are only
     * meaningful between stepInto and the matching onIssue.
     */
    func::ExecRecord &scratch() override { return scratchIsA_ ? bufA_ : bufB_; }

    /** No instruction issued this cycle: drain one verification. */
    void onIdleCycle(Cycle now);
    /** Seam form: the engine drains whether the SM is mid-kernel or
     *  post-retirement, so the busy flag is irrelevant here. */
    void onIdleCycle(Cycle now, bool) override { onIdleCycle(now); }

    /**
     * End of kernel: verify the pending instruction and every queued
     * entry, one per cycle. @return cycles consumed.
     */
    std::uint64_t drainAll(Cycle now) override;

    /**
     * Emit structured trace events (Algorithm-1 decisions, RFU
     * forwarding, ReplayQ traffic, detections) to @p rec. nullptr
     * detaches; disabled tracing costs one pointer test per seam.
     */
    void attachRecorder(trace::Recorder *rec) override;

    /**
     * Subscribe the recovery engine to verification outcomes: every
     * retired record reports verified-clean / mismatch / unprotected.
     * nullptr detaches; disabled cost is one pointer test per retire.
     */
    void attachRecoveryListener(RecoveryListener *l) override
    {
        listener_ = l;
    }

    /**
     * Rollback squash: drop the pending RF-stage record and every
     * ReplayQ entry of @p warp_id with traceId >= @p min_trace_id —
     * those issues are being architecturally undone and must not be
     * verified (their recorded state is about to be replayed).
     * @return records dropped.
     */
    unsigned squashWarp(unsigned warp_id, std::uint64_t min_trace_id,
                        Cycle now) override;

    /**
     * Pre-retire drain: verify ONE outstanding record of @p warp_id
     * (the pending RF-stage record or its oldest ReplayQ entry),
     * consuming the caller's stall cycle. Used by the recovery gating
     * so a warp never EXITs or passes a barrier with unverified
     * instructions. @return true when a record was verified.
     */
    bool preRetireVerify(unsigned warp_id, Cycle now) override;

    /**
     * Stamp end-of-launch derived statistics (the ReplayQ depth
     * watermark) into stats(). Called once per launch by Gpu::launch
     * so the per-issue path stays free of watermark folding.
     */
    void finalizeStats() override
    {
        stats_.replayQPeak = queue_.peakDepth();
    }

    const DmrStats &stats() const override { return stats_; }
    const ThreadCoreMapping &mapping() const override { return mapping_; }
    const DmrConfig &config() const { return cfg_; }
    unsigned replayQueueSize() const override { return queue_.size(); }
    bool hasPending() const override { return hasPending_; }

  private:
    /** Intra-warp DMR: RFU pairing + comparison; updates coverage. */
    void intraWarpVerify(const func::ExecRecord &rec, Cycle now);

    /** Inter-warp DMR: re-execute all lanes (shuffled) and compare. */
    void interWarpVerify(const func::ExecRecord &rec, Cycle now);

    /** Re-run one thread slot on @p checker_lane and compare.
     *  @return true when the comparator flagged a mismatch. */
    bool verifySlot(const func::ExecRecord &rec, unsigned slot,
                    unsigned checker_lane, bool intra, Cycle now);

    /** Algorithm 1, applied to the pending instruction when the next
     *  instruction issues. @return stall cycles (0 or 1). */
    unsigned replayCheck(isa::UnitType next_type, Cycle now);

    static std::uint64_t readMaskOf(const isa::Instruction &in);

    /** Emit one engine-level event (no-op when detached). Out of
     *  line so the event construction never bloats the hot verify /
     *  issue paths of a recorder-less run. */
    [[gnu::noinline]]
    void emit(trace::EventKind kind, const func::ExecRecord &rec,
              Cycle now, std::uint64_t a1);

    const arch::GpuConfig &gpu_;
    DmrConfig cfg_;
    func::Executor &exec_;
    /** Fault-free machine (NullFaultHook): re-execution may use the
     *  vectorized plane compute and a masked bulk compare instead of
     *  per-slot virtual hook dispatch. Mirrors Executor::hookIsNull(). */
    bool hookIsNull_;
    /** Scratch plane for the fast re-execute-and-compare path. */
    std::array<RegValue, func::kMaxWarp> verifyPlane_{};
    ThreadCoreMapping mapping_;
    ReplayQueue queue_;
    Rng rng_;
    DmrStats stats_;
    trace::Recorder *recorder_ = nullptr;
    RecoveryListener *listener_ = nullptr;

    /** Double buffer: one record is the SM-facing scratch()
     *  (next instruction executes into it), the other holds the
     *  fully-utilized instruction currently in the RF stage awaiting
     *  the Replay Checker's decision (valid when hasPending_).
     *  Adoption swaps the roles — tracked by a flag, not pointers,
     *  so the engine stays trivially movable. */
    func::ExecRecord bufA_, bufB_;
    bool scratchIsA_ = true;
    bool hasPending_ = false;

    func::ExecRecord &pendingRec() { return scratchIsA_ ? bufB_ : bufA_; }

    /** Unit type used by a verification this cycle (-1 = none):
     *  the opportunistic drain must not double-book an issue slot. */
    int verifiedUnitThisCycle_ = -1;
};

} // namespace dmr
} // namespace warped

#endif // WARPED_DMR_DMR_ENGINE_HH
