#include "dmr/rfu.hh"

#include <bit>

#include "common/logging.hh"

namespace warped {
namespace dmr {

std::uint64_t
Rfu::pair(std::uint64_t active_bits, unsigned width,
          std::array<unsigned, kMaxWidth> &verifies)
{
    if (width == 0 || width > kMaxWidth || !std::has_single_bit(width))
        warped_panic("RFU cluster width must be a power of two <= ",
                     kMaxWidth, ", got ", width);

    verifies.fill(kNone);
    std::uint64_t covered = 0;
    for (unsigned m = 0; m < width; ++m) {
        if ((active_bits >> m) & 1)
            continue; // active lane: MUX m forwards its own operands
        // Idle lane: scan Table-1 priorities for the first active lane.
        for (unsigned k = 1; k < width; ++k) {
            const unsigned lane = priority(m, k);
            if ((active_bits >> lane) & 1) {
                verifies[m] = lane;
                covered |= (1ULL << lane);
                break;
            }
        }
    }
    return covered;
}

std::uint64_t
Rfu::covered(std::uint64_t active_bits, unsigned width)
{
    std::array<unsigned, kMaxWidth> v;
    return pair(active_bits, width, v);
}

double
Rfu::theoreticalCoverage(std::uint64_t active_bits, unsigned width)
{
    const unsigned active =
        std::popcount(active_bits & ((1ULL << width) - 1));
    const unsigned idle = width - active;
    if (active == 0)
        return 1.0;
    if (idle >= active)
        return 1.0;
    return double(idle) / double(active);
}

} // namespace dmr
} // namespace warped
