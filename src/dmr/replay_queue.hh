/**
 * @file
 * ReplayQ (paper §4.3): the buffer of unverified fully-utilized warp
 * instructions awaiting temporal DMR.
 *
 * Each entry keeps the opcode, the per-lane source operand values and
 * the per-lane original execution results (§4.3.1: 32 lanes x 3
 * operands x 4B + 32 x 4B results + opcode = 514~516 B/entry, ~5 KB
 * for 10 entries).
 *
 * Storage is a fixed-capacity slot pool allocated once at
 * construction: a FIFO order list of slot indices plus a free-slot
 * stack. The queue sits on the per-issue path of every SM (Algorithm
 * 1 consults it for each instruction), so dequeues shift a few
 * 32-bit indices instead of erasing multi-KB entries, and no pop or
 * push ever allocates.
 */

#ifndef WARPED_DMR_REPLAY_QUEUE_HH
#define WARPED_DMR_REPLAY_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "dmr/dmr_config.hh"
#include "func/executor.hh"
#include "trace/recorder.hh"

namespace warped {
namespace dmr {

class ReplayQueue
{
  public:
    struct Entry
    {
        func::ExecRecord rec;
        Cycle enqueued = 0;
    };

    /**
     * @param capacity  entries (paper: 10)
     * @param warp_size machine warp width; pushes copy only this many
     *                  thread slots of each record plane (the rest of
     *                  the kMaxWarp-wide arrays is never read back)
     */
    explicit ReplayQueue(unsigned capacity,
                         unsigned warp_size = func::kMaxWarp);

    unsigned capacity() const { return capacity_; }
    unsigned size() const { return static_cast<unsigned>(order_.size()); }
    bool empty() const { return order_.empty(); }
    bool full() const { return order_.size() >= capacity_; }

    /** Deepest the queue has ever been (invariant: <= capacity). */
    unsigned peakDepth() const { return peakDepth_; }

    /** Emit push/pop events to @p rec on behalf of SM @p sm. */
    void
    attachRecorder(trace::Recorder *rec, unsigned sm)
    {
        recorder_ = rec;
        smId_ = sm;
    }

    /** Enqueue an unverified instruction; caller checks !full(). */
    void push(const func::ExecRecord &rec, Cycle now);

    /**
     * Dequeue an entry whose unit type differs from @p busy — the
     * co-execution candidate of Algorithm 1. When several qualify the
     * pick follows @p policy: at random (paper §4.3) via @p rng, or
     * oldest-first (FIFO ablation).
     *
     * All pop operations return a pointer into the slot pool (or
     * nullptr when nothing qualifies). The entry's slot is released,
     * but its contents stay valid until the next push() — long enough
     * for the engine to verify it without copying the ~2.6 KB record.
     */
    const Entry *popDifferentType(isa::UnitType busy, Rng &rng,
                                  DequeuePolicy policy =
                                      DequeuePolicy::Random,
                                  Cycle now = 0);

    /** Dequeue the oldest entry (idle-cycle and end-of-kernel drain). */
    const Entry *popOldest(Cycle now = 0);

    /**
     * Dequeue the oldest entry of unit type @p t — the opportunistic
     * per-unit drain: a queued instruction is re-executed as soon as
     * its execution unit has an idle issue slot (paper §4.3).
     */
    const Entry *popOldestOfType(isa::UnitType t, Cycle now = 0);

    /**
     * Dequeue the oldest entry of warp @p warp_id regardless of type —
     * the pre-retire drain: a warp about to EXIT or enter a barrier
     * verifies its outstanding instructions first (recovery gating).
     */
    const Entry *popOldestOfWarp(unsigned warp_id, Cycle now = 0);

    /**
     * Drop every queued entry of warp @p warp_id with
     * traceId >= @p min_trace_id. Rollback squash: those issues are
     * being undone and must not be verified against restored state.
     * @return entries dropped.
     */
    unsigned squashWarp(unsigned warp_id, std::uint64_t min_trace_id,
                        Cycle now = 0);

    /**
     * True when some queued entry of warp @p warp_id writes a register
     * in @p regs (bitset over register indices) — the RAW-on-
     * unverified-result hazard that must stall the consumer.
     */
    bool hasRawHazard(unsigned warp_id, std::uint64_t reg_read_mask) const;

    /**
     * Dequeue the oldest entry of @p warp_id writing one of @p regs
     * (hazard resolution: verify the producer first).
     */
    const Entry *popRawHazard(unsigned warp_id,
                              std::uint64_t reg_read_mask,
                              Cycle now = 0);

    /** Paper §4.3.1: bytes one entry occupies in hardware. */
    static constexpr std::size_t
    entryBytes(unsigned warp_size)
    {
        return std::size_t{warp_size} * 3 * 4 // source operands
             + std::size_t{warp_size} * 4     // original results
             + 2;                             // opcode
    }

  private:
    static bool writesInMask(const func::ExecRecord &rec,
                             std::uint64_t reg_read_mask);

    /** Remove the entry at FIFO position @p pos (index into the
     *  order list), emitting the ReplayPop event. The slot is
     *  returned to the free pool but its contents stay valid until
     *  the next push. */
    const Entry *take(std::size_t pos, Cycle now);

    /** Cold path: build + record a push/pop event (recorder_ set);
     *  @p depth_after is the queue depth after the operation. */
    [[gnu::noinline]]
    void recordEvent(trace::EventKind kind, const func::ExecRecord &rec,
                     std::uint64_t depth_after, Cycle now);

    unsigned capacity_;
    unsigned warpSize_; ///< plane slots copied per push
    unsigned peakDepth_ = 0;
    std::vector<Entry> slots_;          ///< fixed pool, sized capacity_
    std::vector<std::uint32_t> order_;  ///< oldest-first slot indices
    std::vector<std::uint32_t> free_;   ///< unoccupied slot stack
    /** Per-slot cached destination-register bit (0 when no dst). */
    std::vector<std::uint64_t> writeBit_;
    /** Union of destination-register bits over every queued entry:
     *  a one-AND fast reject for the per-issue RAW hazard probe. */
    std::uint64_t writeRegMask_ = 0;
    trace::Recorder *recorder_ = nullptr;
    unsigned smId_ = 0;
};

} // namespace dmr
} // namespace warped

#endif // WARPED_DMR_REPLAY_QUEUE_HH
