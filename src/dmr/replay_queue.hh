/**
 * @file
 * ReplayQ (paper §4.3): the buffer of unverified fully-utilized warp
 * instructions awaiting temporal DMR.
 *
 * Each entry keeps the opcode, the per-lane source operand values and
 * the per-lane original execution results (§4.3.1: 32 lanes x 3
 * operands x 4B + 32 x 4B results + opcode = 514~516 B/entry, ~5 KB
 * for 10 entries).
 */

#ifndef WARPED_DMR_REPLAY_QUEUE_HH
#define WARPED_DMR_REPLAY_QUEUE_HH

#include <cstddef>
#include <deque>
#include <optional>

#include "common/rng.hh"
#include "dmr/dmr_config.hh"
#include "func/executor.hh"
#include "trace/recorder.hh"

namespace warped {
namespace dmr {

class ReplayQueue
{
  public:
    struct Entry
    {
        func::ExecRecord rec;
        Cycle enqueued = 0;
    };

    explicit ReplayQueue(unsigned capacity) : capacity_(capacity) {}

    unsigned capacity() const { return capacity_; }
    unsigned size() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }
    bool full() const { return entries_.size() >= capacity_; }

    /** Deepest the queue has ever been (invariant: <= capacity). */
    unsigned peakDepth() const { return peakDepth_; }

    /** Emit push/pop events to @p rec on behalf of SM @p sm. */
    void
    attachRecorder(trace::Recorder *rec, unsigned sm)
    {
        recorder_ = rec;
        smId_ = sm;
    }

    /** Enqueue an unverified instruction; caller checks !full(). */
    void push(func::ExecRecord rec, Cycle now);

    /**
     * Dequeue an entry whose unit type differs from @p busy — the
     * co-execution candidate of Algorithm 1. When several qualify the
     * pick follows @p policy: at random (paper §4.3) via @p rng, or
     * oldest-first (FIFO ablation).
     */
    std::optional<Entry>
    popDifferentType(isa::UnitType busy, Rng &rng,
                     DequeuePolicy policy = DequeuePolicy::Random,
                     Cycle now = 0);

    /** Dequeue the oldest entry (idle-cycle and end-of-kernel drain). */
    std::optional<Entry> popOldest(Cycle now = 0);

    /**
     * Dequeue the oldest entry of unit type @p t — the opportunistic
     * per-unit drain: a queued instruction is re-executed as soon as
     * its execution unit has an idle issue slot (paper §4.3).
     */
    std::optional<Entry> popOldestOfType(isa::UnitType t,
                                         Cycle now = 0);

    /**
     * True when some queued entry of warp @p warp_id writes a register
     * in @p regs (bitset over register indices) — the RAW-on-
     * unverified-result hazard that must stall the consumer.
     */
    bool hasRawHazard(unsigned warp_id, std::uint64_t reg_read_mask) const;

    /**
     * Dequeue the oldest entry of @p warp_id writing one of @p regs
     * (hazard resolution: verify the producer first).
     */
    std::optional<Entry> popRawHazard(unsigned warp_id,
                                      std::uint64_t reg_read_mask,
                                      Cycle now = 0);

    /** Paper §4.3.1: bytes one entry occupies in hardware. */
    static constexpr std::size_t
    entryBytes(unsigned warp_size)
    {
        return std::size_t{warp_size} * 3 * 4 // source operands
             + std::size_t{warp_size} * 4     // original results
             + 2;                             // opcode
    }

  private:
    static bool writesInMask(const func::ExecRecord &rec,
                             std::uint64_t reg_read_mask);

    /** Remove entry @p i, emitting the ReplayPop event. */
    Entry take(std::size_t i, Cycle now);

    /** Cold path: build + record a push/pop event (recorder_ set);
     *  @p depth_after is the queue depth after the operation. */
    [[gnu::noinline]]
    void recordEvent(trace::EventKind kind, const func::ExecRecord &rec,
                     std::uint64_t depth_after, Cycle now);

    unsigned capacity_;
    unsigned peakDepth_ = 0;
    std::deque<Entry> entries_;
    trace::Recorder *recorder_ = nullptr;
    unsigned smId_ = 0;
};

} // namespace dmr
} // namespace warped

#endif // WARPED_DMR_REPLAY_QUEUE_HH
