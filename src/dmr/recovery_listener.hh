/**
 * @file
 * Verification-outcome listener: the seam between DMR detection and
 * the rollback-replay recovery engine.
 *
 * The DMR engine is deliberately unaware of the recovery module (no
 * dependency cycle): it only reports, per retired ExecRecord, whether
 * the comparator matched. The recovery manager (src/recovery)
 * implements this interface to clear checkpoints on clean
 * verification and to request a rollback on a mismatch.
 */

#ifndef WARPED_DMR_RECOVERY_LISTENER_HH
#define WARPED_DMR_RECOVERY_LISTENER_HH

#include "common/types.hh"
#include "func/executor.hh"

namespace warped {
namespace dmr {

class RecoveryListener
{
  public:
    virtual ~RecoveryListener() = default;

    /**
     * The engine finished verifying @p rec (intra- or inter-warp).
     * @p mismatch is true when any covered lane disagreed with the
     * recorded primary result.
     */
    virtual void onVerified(const func::ExecRecord &rec, bool mismatch,
                            Cycle now) = 0;

    /**
     * The engine retired @p rec without verifying it (sampling epoch
     * gated it out, or its type is not covered by the configured
     * scheme). The record will never be compared, so any checkpoint
     * held for it can be released.
     */
    virtual void onUnprotected(const func::ExecRecord &rec) = 0;
};

} // namespace dmr
} // namespace warped

#endif // WARPED_DMR_RECOVERY_LISTENER_HH
