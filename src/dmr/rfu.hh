/**
 * @file
 * Register Forwarding Unit (paper §4.1, Fig 6, Table 1).
 *
 * Each SIMT cluster of W lanes has W W-input MUXes. MUX m serves lane
 * m: if lane m is active it forwards lane m's own operands; if lane m
 * is idle, the MUX scans the other lanes in the priority order
 * m^1, m^2, ..., m^(W-1) and forwards the first *active* lane's
 * operands, turning lane m into that lane's spatial-DMR checker.
 *
 * The paper's Table 1 priority matrix for W = 4 is exactly
 * priority(m, k) = m XOR k — the same rule generalizes to the 8-lane
 * cluster variant evaluated in Fig 9a.
 */

#ifndef WARPED_DMR_RFU_HH
#define WARPED_DMR_RFU_HH

#include <array>
#include <cstdint>

namespace warped {
namespace dmr {

class Rfu
{
  public:
    /** "This MUX forwards nothing" marker. */
    static constexpr unsigned kNone = ~0u;

    /** Maximum supported cluster width. */
    static constexpr unsigned kMaxWidth = 8;

    /**
     * The Table-1 priority entry: the lane MUX @p m considers at
     * priority level @p k (0 = highest = its own lane).
     */
    static constexpr unsigned
    priority(unsigned m, unsigned k)
    {
        return m ^ k;
    }

    /**
     * Resolve the MUX network for one cluster.
     *
     * @param active_bits  low @p width bits: lane occupancy
     * @param width        lanes per cluster (power of two, <= 8)
     * @param verifies     out: verifies[m] = the active lane whose
     *                     execution idle lane m redundantly runs, or
     *                     kNone when lane m is active / no active lane
     *                     exists
     * @return bit mask (cluster-local) of active lanes that got at
     *         least one checker — the lanes intra-warp DMR covers.
     */
    static std::uint64_t pair(std::uint64_t active_bits, unsigned width,
                              std::array<unsigned, kMaxWidth> &verifies);

    /** Covered-active mask only (convenience for coverage stats). */
    static std::uint64_t covered(std::uint64_t active_bits,
                                 unsigned width);

    /**
     * Theoretical intra-warp coverage of a cluster occupancy per
     * §3.3: 1.0 when #active <= #idle, else #idle / #active.
     * (The XOR MUX network achieves this bound; a property test
     * asserts pair() == this formula for every occupancy.)
     */
    static double theoreticalCoverage(std::uint64_t active_bits,
                                      unsigned width);
};

} // namespace dmr
} // namespace warped

#endif // WARPED_DMR_RFU_HH
