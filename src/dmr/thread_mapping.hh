/**
 * @file
 * Thread-to-core (SIMT-lane) mapping (paper §4.2).
 *
 * Register forwarding is confined to a SIMT cluster, so intra-warp
 * DMR only works when a cluster contains both active and idle lanes.
 * Applications tend to have *contiguous* runs of active threads
 * (divergence splits thread ranges), so the default in-order mapping
 * concentrates active threads into few clusters. The enhanced mapping
 * assigns consecutive threads to clusters round-robin, spreading
 * activity so that idle checker lanes are available in more clusters
 * (+9.6 % detection opportunity in the paper).
 */

#ifndef WARPED_DMR_THREAD_MAPPING_HH
#define WARPED_DMR_THREAD_MAPPING_HH

#include <array>

#include "common/lane_mask.hh"
#include "dmr/dmr_config.hh"

namespace warped {
namespace dmr {

class ThreadCoreMapping
{
  public:
    static constexpr unsigned kMaxWarp = 64;

    /**
     * @param policy        Linear or CrossCluster
     * @param warp_size     threads per warp
     * @param cluster_width lanes per SIMT cluster
     */
    ThreadCoreMapping(MappingPolicy policy, unsigned warp_size,
                      unsigned cluster_width);

    /** Physical lane executing thread slot @p slot. */
    unsigned laneOf(unsigned slot) const { return laneOf_[slot]; }

    /** Thread slot occupying physical lane @p lane. */
    unsigned slotOf(unsigned lane) const { return slotOf_[lane]; }

    /** Raw table for the functional executor's fault-context. */
    const unsigned *laneTable() const { return laneOf_.data(); }

    /** Permute a thread-slot mask into physical-lane space. */
    LaneMask toLaneSpace(LaneMask slot_mask) const;

    unsigned warpSize() const { return warpSize_; }
    unsigned clusterWidth() const { return clusterWidth_; }
    MappingPolicy policy() const { return policy_; }

  private:
    MappingPolicy policy_;
    unsigned warpSize_;
    unsigned clusterWidth_;
    std::array<unsigned, kMaxWarp> laneOf_{};
    std::array<unsigned, kMaxWarp> slotOf_{};
};

/**
 * Lane shuffling (§3.2): during inter-warp DMR the verification of the
 * work done on physical lane @p lane runs on the next lane within the
 * same SIMT cluster, guaranteeing a different physical core so
 * stuck-at faults cannot self-verify (the hidden-error problem).
 */
constexpr unsigned
shuffledLane(unsigned lane, unsigned cluster_width)
{
    const unsigned cluster = lane / cluster_width;
    const unsigned pos = lane % cluster_width;
    return cluster * cluster_width + ((pos + 1) % cluster_width);
}

} // namespace dmr
} // namespace warped

#endif // WARPED_DMR_THREAD_MAPPING_HH
