/**
 * @file
 * Warped-DMR configuration knobs (the axes of Fig 9a/9b).
 */

#ifndef WARPED_DMR_DMR_CONFIG_HH
#define WARPED_DMR_DMR_CONFIG_HH

#include "common/types.hh"

namespace warped {
namespace dmr {

/** ReplayQ dequeue choice among different-type candidates: the paper
 *  picks at random (§4.3); OldestFirst is the FIFO ablation. */
enum class DequeuePolicy { Random, OldestFirst };

/**
 * Thread-to-core affinity (§4.2). Linear is the believed-default
 * in-order mapping (thread i on lane i); CrossCluster round-robins
 * consecutive threads across SIMT clusters, raising the chance that a
 * cluster containing active lanes also contains idle verifier lanes.
 */
enum class MappingPolicy { Linear, CrossCluster };

struct DmrConfig
{
    bool enabled = true;      ///< master switch (false = baseline GPU)
    bool intraWarp = true;    ///< spatial DMR on idle lanes (§3.1)
    bool interWarp = true;    ///< temporal DMR via ReplayQ (§3.2)
    unsigned replayQSize = 10; ///< entries (§4.3.1; Fig 9b sweeps it)
    bool laneShuffle = true;  ///< §3.2 lane shuffling (hidden errors)
    MappingPolicy mapping = MappingPolicy::CrossCluster;
    /** DMTR baseline (§5.3): temporally verify *every* instruction in
     *  the following cycle, partial-mask ones included (SRT with one
     *  cycle of slack); no spatial DMR. */
    bool temporalAll = false;

    /**
     * Sampling DMR (extension; cf. Nomura et al. [15] in the paper's
     * related work): protection is active only for the first
     * `samplingActive` cycles of every `samplingEpoch`-cycle epoch.
     * 0 = always on (the paper's Warped-DMR). Permanent faults are
     * still eventually detected; transient faults outside the duty
     * cycle are missed — the trade the §6 discussion describes.
     */
    Cycle samplingEpoch = 0;
    Cycle samplingActive = 0;

    /**
     * Error arbitration (extension; the paper leaves handling to the
     * scheduler): on a comparator mismatch, re-execute the thread a
     * third time on yet another lane and majority-vote. Classifies
     * each detection as transient (third run agrees with one side)
     * or suspected-permanent (the same lane keeps disagreeing).
     */
    bool arbitrateErrors = false;

    /** How popDifferentType picks among candidates (paper: Random). */
    DequeuePolicy dequeuePolicy = DequeuePolicy::Random;

    /** Sanity-check knob combinations; throws via warped_fatal. */
    void validate() const;

    /** True when the engine protects instructions at @p now. */
    bool
    activeAt(Cycle now) const
    {
        if (!enabled)
            return false;
        if (samplingEpoch == 0)
            return true;
        return (now % samplingEpoch) < samplingActive;
    }

    /** No error detection at all: the baseline machine. */
    static DmrConfig
    off()
    {
        DmrConfig c;
        c.enabled = false;
        c.intraWarp = false;
        c.interWarp = false;
        c.mapping = MappingPolicy::Linear; // the unmodified scheduler
        return c;
    }

    /** The paper's tuned design (cross mapping, 10-entry ReplayQ). */
    static DmrConfig paperDefault() { return DmrConfig{}; }

    /** Fig 9a first bar: 4-lane clusters, default in-order mapping. */
    static DmrConfig
    baselineMapping()
    {
        DmrConfig c;
        c.mapping = MappingPolicy::Linear;
        return c;
    }

    /** The DMTR comparison point of §5.3 / Fig 10. */
    static DmrConfig
    dmtr()
    {
        DmrConfig c;
        c.intraWarp = false;
        c.laneShuffle = false;
        c.mapping = MappingPolicy::Linear;
        c.replayQSize = 0;
        c.temporalAll = true;
        return c;
    }
};

} // namespace dmr
} // namespace warped

#endif // WARPED_DMR_DMR_CONFIG_HH
