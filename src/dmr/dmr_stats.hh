/**
 * @file
 * Counters the Warped-DMR engine exposes: the raw material for the
 * coverage (Fig 9a), overhead (Fig 9b) and power (Fig 11) figures.
 */

#ifndef WARPED_DMR_DMR_STATS_HH
#define WARPED_DMR_DMR_STATS_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "isa/opcode.hh"

namespace warped {
namespace dmr {

/** Arbitration verdict for a detected error (extension). */
enum class ErrorVerdict : std::uint8_t
{
    None,         ///< arbitration disabled
    PrimaryBad,   ///< third run sided with the checker
    CheckerBad,   ///< third run sided with the original execution
    Inconclusive, ///< three distinct values
};

/** A detected execution error (comparator mismatch). */
struct ErrorEvent
{
    Cycle cycle = 0;
    unsigned sm = 0;
    unsigned warpId = 0;
    Pc pc = 0;
    unsigned slot = 0;         ///< thread slot within the warp
    unsigned primaryLane = 0;  ///< physical lane of the original run
    unsigned checkerLane = 0;  ///< physical lane of the verification
    RegValue primary = 0;
    RegValue checker = 0;
    bool intraWarp = false;
    ErrorVerdict verdict = ErrorVerdict::None;
};

struct DmrStats
{
    // Coverage accounting (thread-level executions of verifiable
    // instructions, i.e. those producing a result or an address).
    std::uint64_t verifiableThreadInstrs = 0;
    std::uint64_t verifiedThreadInstrs = 0;
    std::uint64_t intraVerifiedThreads = 0;
    std::uint64_t interVerifiedThreads = 0;

    // Warp-level classification of verifiable instructions.
    std::uint64_t intraWarpInstrs = 0; ///< partially-utilized warps
    std::uint64_t interWarpInstrs = 0; ///< fully-utilized warps

    // Inter-warp DMR mechanics.
    std::uint64_t coexecVerifications = 0;
    std::uint64_t dequeueVerifications = 0;
    std::uint64_t idleDrainVerifications = 0;
    std::uint64_t unitDrainVerifications = 0; ///< idle-unit-slot drains
    std::uint64_t enqueues = 0;
    std::uint64_t eagerStalls = 0;   ///< ReplayQ full -> 1-cycle stall
    std::uint64_t rawStalls = 0;     ///< RAW on unverified result
    std::uint64_t finalDrainCycles = 0;
    std::uint64_t replayQPeak = 0;   ///< deepest ReplayQ occupancy

    // Redundant thread-executions per unit type (power model input).
    std::array<std::uint64_t, isa::kNumUnitTypes> redundantThreadExecs{};

    // Comparator activity & outcomes.
    std::uint64_t comparisons = 0;
    std::uint64_t errorsDetected = 0;

    // Error-arbitration extension (third execution, majority vote).
    std::uint64_t arbitrations = 0;
    std::uint64_t arbPrimaryBad = 0;
    std::uint64_t arbCheckerBad = 0;
    std::uint64_t arbInconclusive = 0;

    // Sampling extension: issue slots that went unprotected because
    // the duty cycle was off.
    std::uint64_t sampledOutThreadInstrs = 0;
    std::vector<ErrorEvent> errorLog; ///< first kMaxErrorLog events

    static constexpr std::size_t kMaxErrorLog = 64;

    /** §3.3 / Fig 9a error-coverage metric. */
    double
    coverage() const
    {
        if (verifiableThreadInstrs == 0)
            return 1.0;
        return double(verifiedThreadInstrs) /
               double(verifiableThreadInstrs);
    }
};

/**
 * §4.1 synthesis results, recorded from the paper (Synopsys Design
 * Compiler, 40 nm): documentation constants surfaced by the bench
 * harness, not inputs to any model.
 */
struct HardwareCost
{
    static constexpr double kRfuAreaUm2 = 390.0;
    static constexpr double kComparatorAreaUm2 = 622.0;
    static constexpr double kRfuDelayNs = 0.08;
    static constexpr double kComparatorDelayNs = 0.068;
    static constexpr double kCyclePeriodNs = 1.25; // 800 MHz
};

} // namespace dmr
} // namespace warped

#endif // WARPED_DMR_DMR_STATS_HH
