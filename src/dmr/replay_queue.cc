#include "dmr/replay_queue.hh"

#include <algorithm>
#include <vector>

#include "common/logging.hh"

namespace warped {
namespace dmr {

void
ReplayQueue::push(func::ExecRecord rec, Cycle now)
{
    if (full())
        warped_panic("ReplayQueue overflow (capacity ", capacity_, ")");
    if (recorder_) [[unlikely]]
        recordEvent(trace::EventKind::ReplayPush, rec,
                    entries_.size() + 1, now);
    entries_.push_back({std::move(rec), now});
    peakDepth_ = std::max(peakDepth_,
                          static_cast<unsigned>(entries_.size()));
}

ReplayQueue::Entry
ReplayQueue::take(std::size_t i, Cycle now)
{
    Entry e = std::move(entries_[i]);
    entries_.erase(entries_.begin() + i);
    if (recorder_) [[unlikely]]
        recordEvent(trace::EventKind::ReplayPop, e.rec,
                    entries_.size(), now);
    return e;
}

void
ReplayQueue::recordEvent(trace::EventKind kind,
                         const func::ExecRecord &rec,
                         std::uint64_t depth_after, Cycle now)
{
    trace::Event ev;
    ev.cycle = now;
    ev.kind = kind;
    ev.unit = static_cast<std::uint8_t>(rec.instr.unit());
    ev.warp = rec.warpId;
    ev.pc = rec.pc;
    ev.a0 = rec.traceId;
    ev.a1 = depth_after;
    recorder_->record(smId_, ev);
}

std::optional<ReplayQueue::Entry>
ReplayQueue::popDifferentType(isa::UnitType busy, Rng &rng,
                              DequeuePolicy policy, Cycle now)
{
    std::vector<std::size_t> candidates;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        if (entries_[i].rec.instr.unit() != busy)
            candidates.push_back(i);
    }
    if (candidates.empty())
        return std::nullopt;
    const std::size_t pick =
        (policy == DequeuePolicy::OldestFirst || candidates.size() == 1)
            ? candidates[0]
            : candidates[rng.nextBelow(candidates.size())];
    return take(pick, now);
}

std::optional<ReplayQueue::Entry>
ReplayQueue::popOldest(Cycle now)
{
    if (entries_.empty())
        return std::nullopt;
    return take(0, now);
}

std::optional<ReplayQueue::Entry>
ReplayQueue::popOldestOfType(isa::UnitType t, Cycle now)
{
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        if (entries_[i].rec.instr.unit() == t)
            return take(i, now);
    }
    return std::nullopt;
}

bool
ReplayQueue::writesInMask(const func::ExecRecord &rec,
                          std::uint64_t reg_read_mask)
{
    if (!rec.instr.hasDst())
        return false;
    return (reg_read_mask >> rec.instr.dst.idx) & 1ULL;
}

bool
ReplayQueue::hasRawHazard(unsigned warp_id,
                          std::uint64_t reg_read_mask) const
{
    for (const auto &e : entries_) {
        if (e.rec.warpId == warp_id && writesInMask(e.rec, reg_read_mask))
            return true;
    }
    return false;
}

std::optional<ReplayQueue::Entry>
ReplayQueue::popRawHazard(unsigned warp_id, std::uint64_t reg_read_mask,
                          Cycle now)
{
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        const auto &e = entries_[i];
        if (e.rec.warpId == warp_id &&
            writesInMask(e.rec, reg_read_mask)) {
            return take(i, now);
        }
    }
    return std::nullopt;
}

} // namespace dmr
} // namespace warped
