#include "dmr/replay_queue.hh"

#include <algorithm>

#include "common/logging.hh"

namespace warped {
namespace dmr {

ReplayQueue::ReplayQueue(unsigned capacity, unsigned warp_size)
    : capacity_(capacity), warpSize_(warp_size), slots_(capacity),
      writeBit_(capacity, 0)
{
    order_.reserve(capacity);
    free_.reserve(capacity);
    // Stack of free slots; pop from the back, so seed it in reverse
    // for slot 0 to be handed out first (cosmetic only).
    for (unsigned i = capacity; i-- > 0;)
        free_.push_back(i);
}

void
ReplayQueue::push(const func::ExecRecord &rec, Cycle now)
{
    if (full())
        warped_panic("ReplayQueue overflow (capacity ", capacity_, ")");
    const std::uint32_t slot = free_.back();
    free_.pop_back();
    slots_[slot].rec.copyFrom(rec, warpSize_);
    slots_[slot].enqueued = now;
    writeBit_[slot] =
        rec.instr.hasDst() ? 1ULL << rec.instr.dst.idx : 0;
    writeRegMask_ |= writeBit_[slot];
    order_.push_back(slot);
    if (recorder_) [[unlikely]]
        recordEvent(trace::EventKind::ReplayPush, rec, order_.size(),
                    now);
    peakDepth_ = std::max(peakDepth_,
                          static_cast<unsigned>(order_.size()));
}

const ReplayQueue::Entry *
ReplayQueue::take(std::size_t pos, Cycle now)
{
    const std::uint32_t slot = order_[pos];
    order_.erase(order_.begin() + pos);
    free_.push_back(slot);
    // Rebuild the hazard fast-reject union (<= capacity_ ORs).
    writeRegMask_ = 0;
    for (const std::uint32_t s : order_)
        writeRegMask_ |= writeBit_[s];
    const Entry &e = slots_[slot];
    if (recorder_) [[unlikely]]
        recordEvent(trace::EventKind::ReplayPop, e.rec, order_.size(),
                    now);
    return &e;
}

void
ReplayQueue::recordEvent(trace::EventKind kind,
                         const func::ExecRecord &rec,
                         std::uint64_t depth_after, Cycle now)
{
    trace::Event ev;
    ev.cycle = now;
    ev.kind = kind;
    ev.unit = static_cast<std::uint8_t>(rec.instr.unit());
    ev.warp = rec.warpId;
    ev.pc = rec.pc;
    ev.a0 = rec.traceId;
    ev.a1 = depth_after;
    recorder_->record(smId_, ev);
}

const ReplayQueue::Entry *
ReplayQueue::popDifferentType(isa::UnitType busy, Rng &rng,
                              DequeuePolicy policy, Cycle now)
{
    // First pass: count qualifying entries, remembering the oldest.
    std::size_t count = 0;
    std::size_t first = 0;
    for (std::size_t i = 0; i < order_.size(); ++i) {
        if (slots_[order_[i]].rec.instr.unit() != busy) {
            if (count == 0)
                first = i;
            ++count;
        }
    }
    if (count == 0)
        return nullptr;
    if (policy == DequeuePolicy::OldestFirst || count == 1)
        return take(first, now);
    // Random pick: find the k-th qualifying entry (oldest-first
    // enumeration, matching the candidate order the RNG indexes).
    std::size_t k = rng.nextBelow(count);
    for (std::size_t i = first; i < order_.size(); ++i) {
        if (slots_[order_[i]].rec.instr.unit() != busy && k-- == 0)
            return take(i, now);
    }
    warped_panic("popDifferentType: candidate walk out of sync");
}

const ReplayQueue::Entry *
ReplayQueue::popOldest(Cycle now)
{
    if (order_.empty())
        return nullptr;
    return take(0, now);
}

const ReplayQueue::Entry *
ReplayQueue::popOldestOfType(isa::UnitType t, Cycle now)
{
    for (std::size_t i = 0; i < order_.size(); ++i) {
        if (slots_[order_[i]].rec.instr.unit() == t)
            return take(i, now);
    }
    return nullptr;
}

const ReplayQueue::Entry *
ReplayQueue::popOldestOfWarp(unsigned warp_id, Cycle now)
{
    for (std::size_t i = 0; i < order_.size(); ++i) {
        if (slots_[order_[i]].rec.warpId == warp_id)
            return take(i, now);
    }
    return nullptr;
}

unsigned
ReplayQueue::squashWarp(unsigned warp_id, std::uint64_t min_trace_id,
                        Cycle now)
{
    unsigned dropped = 0;
    for (std::size_t i = 0; i < order_.size();) {
        const Entry &e = slots_[order_[i]];
        if (e.rec.warpId == warp_id && e.rec.traceId >= min_trace_id) {
            take(i, now); // emits ReplayPop; slot returns to the pool
            ++dropped;
        } else {
            ++i;
        }
    }
    return dropped;
}

bool
ReplayQueue::writesInMask(const func::ExecRecord &rec,
                          std::uint64_t reg_read_mask)
{
    if (!rec.instr.hasDst())
        return false;
    return (reg_read_mask >> rec.instr.dst.idx) & 1ULL;
}

bool
ReplayQueue::hasRawHazard(unsigned warp_id,
                          std::uint64_t reg_read_mask) const
{
    if ((writeRegMask_ & reg_read_mask) == 0)
        return false;
    for (const std::uint32_t s : order_) {
        const auto &e = slots_[s];
        if (e.rec.warpId == warp_id && writesInMask(e.rec, reg_read_mask))
            return true;
    }
    return false;
}

const ReplayQueue::Entry *
ReplayQueue::popRawHazard(unsigned warp_id, std::uint64_t reg_read_mask,
                          Cycle now)
{
    if ((writeRegMask_ & reg_read_mask) == 0)
        return nullptr;
    for (std::size_t i = 0; i < order_.size(); ++i) {
        const auto &e = slots_[order_[i]];
        if (e.rec.warpId == warp_id &&
            writesInMask(e.rec, reg_read_mask)) {
            return take(i, now);
        }
    }
    return nullptr;
}

} // namespace dmr
} // namespace warped
