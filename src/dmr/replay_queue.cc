#include "dmr/replay_queue.hh"

#include <vector>

#include "common/logging.hh"

namespace warped {
namespace dmr {

void
ReplayQueue::push(func::ExecRecord rec, Cycle now)
{
    if (full())
        warped_panic("ReplayQueue overflow (capacity ", capacity_, ")");
    entries_.push_back({std::move(rec), now});
}

std::optional<ReplayQueue::Entry>
ReplayQueue::popDifferentType(isa::UnitType busy, Rng &rng,
                              DequeuePolicy policy)
{
    std::vector<std::size_t> candidates;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        if (entries_[i].rec.instr.unit() != busy)
            candidates.push_back(i);
    }
    if (candidates.empty())
        return std::nullopt;
    const std::size_t pick =
        (policy == DequeuePolicy::OldestFirst || candidates.size() == 1)
            ? candidates[0]
            : candidates[rng.nextBelow(candidates.size())];
    Entry e = std::move(entries_[pick]);
    entries_.erase(entries_.begin() + pick);
    return e;
}

std::optional<ReplayQueue::Entry>
ReplayQueue::popOldest()
{
    if (entries_.empty())
        return std::nullopt;
    Entry e = std::move(entries_.front());
    entries_.pop_front();
    return e;
}

std::optional<ReplayQueue::Entry>
ReplayQueue::popOldestOfType(isa::UnitType t)
{
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        if (entries_[i].rec.instr.unit() == t) {
            Entry e = std::move(entries_[i]);
            entries_.erase(entries_.begin() + i);
            return e;
        }
    }
    return std::nullopt;
}

bool
ReplayQueue::writesInMask(const func::ExecRecord &rec,
                          std::uint64_t reg_read_mask)
{
    if (!rec.instr.hasDst())
        return false;
    return (reg_read_mask >> rec.instr.dst.idx) & 1ULL;
}

bool
ReplayQueue::hasRawHazard(unsigned warp_id,
                          std::uint64_t reg_read_mask) const
{
    for (const auto &e : entries_) {
        if (e.rec.warpId == warp_id && writesInMask(e.rec, reg_read_mask))
            return true;
    }
    return false;
}

std::optional<ReplayQueue::Entry>
ReplayQueue::popRawHazard(unsigned warp_id, std::uint64_t reg_read_mask)
{
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        const auto &e = entries_[i];
        if (e.rec.warpId == warp_id &&
            writesInMask(e.rec, reg_read_mask)) {
            Entry out = std::move(entries_[i]);
            entries_.erase(entries_.begin() + i);
            return out;
        }
    }
    return std::nullopt;
}

} // namespace dmr
} // namespace warped
