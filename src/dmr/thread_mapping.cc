#include "dmr/thread_mapping.hh"

#include "common/logging.hh"

namespace warped {
namespace dmr {

ThreadCoreMapping::ThreadCoreMapping(MappingPolicy policy,
                                     unsigned warp_size,
                                     unsigned cluster_width)
    : policy_(policy), warpSize_(warp_size), clusterWidth_(cluster_width)
{
    if (warp_size == 0 || warp_size > kMaxWarp ||
        warp_size % cluster_width != 0) {
        warped_panic("bad mapping geometry: warp ", warp_size,
                     ", cluster ", cluster_width);
    }
    const unsigned n_clusters = warp_size / cluster_width;
    for (unsigned slot = 0; slot < warp_size; ++slot) {
        unsigned lane;
        if (policy == MappingPolicy::Linear) {
            lane = slot;
        } else {
            // Round-robin across clusters: thread 0 -> cluster 0
            // slot 0, thread 1 -> cluster 1 slot 0, ...
            const unsigned cluster = slot % n_clusters;
            const unsigned pos = slot / n_clusters;
            lane = cluster * cluster_width + pos;
        }
        laneOf_[slot] = lane;
        slotOf_[lane] = slot;
    }
}

LaneMask
ThreadCoreMapping::toLaneSpace(LaneMask slot_mask) const
{
    LaneMask out;
    for (unsigned slot = 0; slot < warpSize_; ++slot) {
        if (slot_mask.test(slot))
            out.set(laneOf_[slot]);
    }
    return out;
}

} // namespace dmr
} // namespace warped
