#include "dmr/dmr_config.hh"

#include "common/logging.hh"

namespace warped {
namespace dmr {

void
DmrConfig::validate() const
{
    if (replayQSize > 1024)
        warped_fatal("replayQSize ", replayQSize,
                     " is unreasonably large (max 1024)");
    if (samplingEpoch == 0 && samplingActive != 0)
        warped_fatal("samplingActive without a samplingEpoch");
    if (samplingEpoch != 0 && samplingActive > samplingEpoch)
        warped_fatal("samplingActive (", samplingActive,
                     ") exceeds samplingEpoch (", samplingEpoch, ")");
    if (enabled && !intraWarp && !interWarp && !temporalAll)
        warped_warn("DMR enabled but every mechanism is off: "
                    "coverage will be zero");
}

} // namespace dmr
} // namespace warped
