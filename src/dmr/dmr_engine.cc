#include "dmr/dmr_engine.hh"

#include "common/logging.hh"
#include "dmr/recovery_listener.hh"
#include "dmr/rfu.hh"

namespace warped {
namespace dmr {

DmrEngine::DmrEngine(const arch::GpuConfig &gpu, const DmrConfig &cfg,
                     func::Executor &exec, std::uint64_t seed)
    : gpu_(gpu), cfg_(cfg), exec_(exec), hookIsNull_(exec.hookIsNull()),
      mapping_(cfg.mapping, gpu.warpSize, gpu.lanesPerCluster),
      queue_(cfg.replayQSize, gpu.warpSize), rng_(seed)
{
}

void
DmrEngine::attachRecorder(trace::Recorder *rec)
{
    recorder_ = rec;
    queue_.attachRecorder(rec, exec_.smId());
}

void
DmrEngine::emit(trace::EventKind kind, const func::ExecRecord &rec,
                Cycle now, std::uint64_t a1)
{
    if (!recorder_)
        return;
    trace::Event ev;
    ev.cycle = now;
    ev.kind = kind;
    ev.unit = static_cast<std::uint8_t>(rec.instr.unit());
    ev.warp = rec.warpId;
    ev.pc = rec.pc;
    ev.a0 = rec.traceId;
    ev.a1 = a1;
    recorder_->record(exec_.smId(), ev);
}

std::uint64_t
DmrEngine::readMaskOf(const isa::Instruction &in)
{
    std::uint64_t mask = 0;
    for (unsigned s = 0; s < in.numSrcs(); ++s)
        mask |= 1ULL << in.src[s].idx;
    return mask;
}

bool
DmrEngine::rawHazardStall(unsigned warp_id, const isa::Instruction &next,
                          Cycle now)
{
    if (!cfg_.enabled || !cfg_.interWarp)
        return false;
    const std::uint64_t reads = readMaskOf(next);
    if (reads == 0)
        return false;
    const auto *producer = queue_.popRawHazard(warp_id, reads, now);
    if (!producer)
        return false;
    // The pipeline stalls this cycle; the freed units verify the
    // producer so the consumer can go next cycle.
    emit(trace::EventKind::RawStall, producer->rec, now, reads);
    interWarpVerify(producer->rec, now);
    ++stats_.rawStalls;
    return true;
}

unsigned
DmrEngine::onIssue(const func::ExecRecord &rec, Cycle now)
{
    if (!cfg_.enabled)
        return 0;

    // The Replay Checker first decides the fate of the instruction
    // one cycle ahead in the RF stage (Algorithm 1), using this
    // instruction as the co-execution partner candidate.
    verifiedUnitThisCycle_ = -1;
    unsigned stall = replayCheck(rec.instr.unit(), now);

    // Opportunistic drain (§4.3): any execution unit whose issue slot
    // is unused this cycle — by the new instruction and by the
    // co-executed verification — re-executes one queued instruction
    // of its own type.
    if (cfg_.interWarp) {
        for (unsigned t = 0; t < isa::kNumUnitTypes; ++t) {
            const auto ut = static_cast<isa::UnitType>(t);
            if (ut == rec.instr.unit() ||
                static_cast<int>(t) == verifiedUnitThisCycle_) {
                continue;
            }
            if (const auto *e = queue_.popOldestOfType(ut, now)) {
                interWarpVerify(e->rec, now);
                ++stats_.unitDrainVerifications;
            }
        }
    }

    const bool verifiable = rec.verifiable();
    const unsigned active = rec.active.count();
    const bool full_mask = active == gpu_.warpSize;

    if (verifiable) {
        stats_.verifiableThreadInstrs += active;
        // Sampling extension: outside the duty cycle the instruction
        // issues unprotected (it stays in the coverage denominator).
        if (!cfg_.activeAt(now)) {
            stats_.sampledOutThreadInstrs += active;
            if (listener_)
                listener_->onUnprotected(rec);
            return stall;
        }
        const bool temporal =
            cfg_.interWarp && (full_mask || cfg_.temporalAll);
        if (full_mask)
            ++stats_.interWarpInstrs;
        else
            ++stats_.intraWarpInstrs;
        if (temporal) {
            if (&rec == &scratch()) {
                // The SM executed into our scratch buffer: adopt it
                // as the pending record by swapping buffer roles.
                scratchIsA_ = !scratchIsA_;
            } else {
                pendingRec() = rec;
            }
            hasPending_ = true;
        } else if (!full_mask && cfg_.intraWarp) {
            intraWarpVerify(rec, now);
        } else if (listener_) {
            // Scheme gap (e.g. inter-warp disabled for a full mask):
            // the record retires without ever being compared.
            listener_->onUnprotected(rec);
        }
    }
    return stall;
}

unsigned
DmrEngine::squashWarp(unsigned warp_id, std::uint64_t min_trace_id,
                      Cycle now)
{
    unsigned dropped = 0;
    if (hasPending_) {
        const func::ExecRecord &p = pendingRec();
        if (p.warpId == warp_id && p.traceId >= min_trace_id) {
            hasPending_ = false;
            ++dropped;
        }
    }
    dropped += queue_.squashWarp(warp_id, min_trace_id, now);
    return dropped;
}

bool
DmrEngine::preRetireVerify(unsigned warp_id, Cycle now)
{
    if (!cfg_.enabled)
        return false;
    if (hasPending_ && pendingRec().warpId == warp_id) {
        hasPending_ = false;
        interWarpVerify(pendingRec(), now);
        return true;
    }
    if (const auto *e = queue_.popOldestOfWarp(warp_id, now)) {
        interWarpVerify(e->rec, now);
        return true;
    }
    return false;
}

unsigned
DmrEngine::replayCheck(isa::UnitType next_type, Cycle now)
{
    if (!hasPending_)
        return 0;

    // Verified/queued in place: the pending buffer is not reused
    // until the adopting onIssue of a later instruction.
    hasPending_ = false;
    const func::ExecRecord &pending = pendingRec();

    if (pending.instr.unit() != next_type) {
        // Different unit types: the pending instruction's units are
        // idle this cycle; co-execute its DMR copy for free.
        verifiedUnitThisCycle_ =
            static_cast<int>(pending.instr.unit());
        interWarpVerify(pending, now);
        ++stats_.coexecVerifications;
        return 0;
    }

    // Same type. Look for a queued instruction of a different type
    // whose unit is idle this cycle.
    if (const auto *e = queue_.popDifferentType(next_type, rng_,
                                                cfg_.dequeuePolicy,
                                                now)) {
        verifiedUnitThisCycle_ = static_cast<int>(e->rec.instr.unit());
        // Verify the popped entry before the push below reuses its
        // freed slot.
        interWarpVerify(e->rec, now);
        ++stats_.dequeueVerifications;
        queue_.push(pending, now);
        ++stats_.enqueues;
        return 0;
    }

    if (queue_.full()) {
        // Eager re-execution: one stall cycle, then the operands
        // still in the pipeline are replayed on the same units.
        emit(trace::EventKind::ReplayOverflow, pending, now,
             queue_.capacity());
        interWarpVerify(pending, now + 1);
        ++stats_.eagerStalls;
        return 1;
    }

    queue_.push(pending, now);
    ++stats_.enqueues;
    return 0;
}

void
DmrEngine::onIdleCycle(Cycle now)
{
    if (!cfg_.enabled || !cfg_.interWarp)
        return;
    if (hasPending_) {
        hasPending_ = false;
        const func::ExecRecord &pending = pendingRec();
        emit(trace::EventKind::IdleDrain, pending, now, 0);
        interWarpVerify(pending, now);
        ++stats_.idleDrainVerifications;
        return;
    }
    if (const auto *e = queue_.popOldest(now)) {
        emit(trace::EventKind::IdleDrain, e->rec, now, 1);
        interWarpVerify(e->rec, now);
        ++stats_.idleDrainVerifications;
    }
}

std::uint64_t
DmrEngine::drainAll(Cycle now)
{
    if (!cfg_.enabled || !cfg_.interWarp)
        return 0;
    std::uint64_t cycles = 0;
    while (hasPending_ || !queue_.empty()) {
        ++cycles;
        onIdleCycle(now + cycles);
    }
    stats_.finalDrainCycles += cycles;
    return cycles;
}

void
DmrEngine::intraWarpVerify(const func::ExecRecord &rec, Cycle now)
{
    const unsigned w = gpu_.lanesPerCluster;
    const unsigned n_clusters = gpu_.clustersPerWarp();
    const LaneMask lane_active = mapping_.toLaneSpace(rec.active);

    // Fault-free fast path: re-execute every slot at once with the
    // vectorized plane compute; the RFU pairing below then compares
    // plane entries instead of re-running computeLane + the virtual
    // hook per monitored lane. Identical statistics and (impossible
    // here) mismatches fall back to the full per-slot comparator.
    if (hookIsNull_) {
        func::Executor::computePlane(rec.instr, rec.operands,
                                     rec.laneInfo, gpu_.warpSize,
                                     verifyPlane_.data());
    }

    LaneMask covered_slots;
    bool mismatch = false;
    for (unsigned c = 0; c < n_clusters; ++c) {
        const std::uint64_t bits = lane_active.clusterBits(c, w);
        if (bits == 0)
            continue;
        std::array<unsigned, Rfu::kMaxWidth> verifies;
        Rfu::pair(bits, w, verifies);
        for (unsigned m = 0; m < w; ++m) {
            if (verifies[m] == Rfu::kNone)
                continue;
            const unsigned monitored_lane = c * w + verifies[m];
            const unsigned checker_lane = c * w + m;
            const unsigned slot = mapping_.slotOf(monitored_lane);
            if (hookIsNull_ &&
                verifyPlane_[slot] == rec.results[slot]) [[likely]] {
                ++stats_.comparisons;
            } else {
                mismatch |=
                    verifySlot(rec, slot, checker_lane, true, now);
            }
            covered_slots.set(slot);
            ++stats_.redundantThreadExecs[
                static_cast<unsigned>(rec.instr.unit())];
        }
    }
    const unsigned covered = covered_slots.count();
    if (covered > 0)
        emit(trace::EventKind::RfuForward, rec, now, covered);
    emit(trace::EventKind::IntraVerify, rec, now, covered);
    stats_.verifiedThreadInstrs += covered;
    stats_.intraVerifiedThreads += covered;
    if (listener_)
        listener_->onVerified(rec, mismatch, now);
}

void
DmrEngine::interWarpVerify(const func::ExecRecord &rec, Cycle now)
{
    const unsigned w = gpu_.lanesPerCluster;
    const unsigned ws = gpu_.warpSize;
    const auto unit = static_cast<unsigned>(rec.instr.unit());
    unsigned verified = 0;
    bool mismatch = false;

    // Fault-free fast path: re-execute all slots with the vectorized
    // plane compute and run the comparator as one masked bulk
    // compare. Semantically identical to the per-slot loop below —
    // same comparison/redundant-exec counts, same events — it only
    // skips the virtual hook dispatch that is known to be identity.
    bool fast_clean = false;
    if (hookIsNull_) {
        func::Executor::computePlane(rec.instr, rec.operands,
                                     rec.laneInfo, ws,
                                     verifyPlane_.data());
        std::uint64_t eq = 0;
        for (unsigned slot = 0; slot < ws; ++slot) {
            eq |= std::uint64_t{verifyPlane_[slot] ==
                                rec.results[slot]}
                  << slot;
        }
        fast_clean = (rec.active.raw() & ~eq) == 0;
    }

    if (fast_clean) {
        verified = rec.active.count();
        stats_.comparisons += verified;
        stats_.redundantThreadExecs[unit] += verified;
    } else {
        // A mismatch under the null hook is impossible (the plane
        // compute is the function that produced the record), so this
        // loop only runs for real fault hooks — per-slot dispatch in
        // slot order, exactly as campaigns require.
        for (unsigned slot = 0; slot < ws; ++slot) {
            if (!rec.active.test(slot))
                continue;
            const unsigned primary_lane = mapping_.laneOf(slot);
            const unsigned checker_lane =
                cfg_.laneShuffle ? shuffledLane(primary_lane, w)
                                 : primary_lane;
            mismatch |= verifySlot(rec, slot, checker_lane, false, now);
            ++verified;
            ++stats_.redundantThreadExecs[unit];
        }
    }
    emit(trace::EventKind::InterVerify, rec, now, verified);
    stats_.verifiedThreadInstrs += verified;
    stats_.interVerifiedThreads += verified;
    if (listener_)
        listener_->onVerified(rec, mismatch, now);
}

bool
DmrEngine::verifySlot(const func::ExecRecord &rec, unsigned slot,
                      unsigned checker_lane, bool intra, Cycle now)
{
    const std::array<RegValue, 3> ops = {rec.operands[0][slot],
                                         rec.operands[1][slot],
                                         rec.operands[2][slot]};
    const RegValue pure =
        func::Executor::computeLane(rec.instr, ops, rec.laneInfo[slot]);

    func::FaultCtx ctx;
    ctx.sm = exec_.smId();
    ctx.lane = checker_lane;
    ctx.unit = rec.instr.unit();
    ctx.cycle = now;
    ctx.isAddress = rec.instr.isMem();
    const RegValue got = exec_.hook().apply(pure, ctx);

    ++stats_.comparisons;
    const bool mismatch = got != rec.results[slot];
    if (mismatch) {
        ++stats_.errorsDetected;
        emit(trace::EventKind::ErrorDetected, rec, now, slot);

        ErrorVerdict verdict = ErrorVerdict::None;
        if (cfg_.arbitrateErrors) {
            // Third execution on yet another lane; majority vote
            // classifies which side is suspect (extension — the
            // paper defers handling to the scheduler).
            const unsigned third_lane =
                shuffledLane(checker_lane, gpu_.lanesPerCluster);
            func::FaultCtx tctx = ctx;
            tctx.lane = third_lane;
            const RegValue third = exec_.hook().apply(pure, tctx);
            ++stats_.arbitrations;
            if (third == got) {
                verdict = ErrorVerdict::PrimaryBad;
                ++stats_.arbPrimaryBad;
            } else if (third == rec.results[slot]) {
                verdict = ErrorVerdict::CheckerBad;
                ++stats_.arbCheckerBad;
            } else {
                verdict = ErrorVerdict::Inconclusive;
                ++stats_.arbInconclusive;
            }
        }

        if (stats_.errorLog.size() < DmrStats::kMaxErrorLog) {
            ErrorEvent ev;
            ev.cycle = now;
            ev.sm = exec_.smId();
            ev.warpId = rec.warpId;
            ev.pc = rec.pc;
            ev.slot = slot;
            ev.primaryLane = mapping_.laneOf(slot);
            ev.checkerLane = checker_lane;
            ev.primary = rec.results[slot];
            ev.checker = got;
            ev.intraWarp = intra;
            ev.verdict = verdict;
            stats_.errorLog.push_back(ev);
        }
    }
    return mismatch;
}

} // namespace dmr
} // namespace warped
