/**
 * @file
 * MUM (Table 4, Scientific — MUMmer-style sequence matching): each
 * thread streams one DNA query through a suffix trie of the reference
 * genome stored in global memory. Match lengths are data dependent,
 * so warps fray apart as queries die at different depths: a pointer-
 * chasing, LD/ST-heavy, divergence-heavy profile like the original.
 */

#include "isa/kernel_builder.hh"
#include "workloads/workload_base.hh"

namespace warped {
namespace workloads {
namespace {

constexpr unsigned kRefLen = 2048;
constexpr unsigned kQueryLen = 12;
constexpr std::int32_t kNull = -1;

class Mum final : public WorkloadBase
{
  public:
    explicit Mum(unsigned blocks) : WorkloadBase("MUM", "Scientific")
    {
        block_ = 48; // non-multiple of warp size: contiguous-tail warps
        grid_ = blocks;
    }

    void
    setup(gpu::Gpu &gpu) override
    {
        Rng rng(0x4d55); // 'MU'

        // Reference string over {A,C,G,T} = {0..3}.
        std::vector<std::int32_t> ref(kRefLen);
        for (auto &c : ref)
            c = static_cast<std::int32_t>(rng.nextBelow(4));

        // Suffix trie up to depth kQueryLen. trie_[node*4+c] = child.
        trie_.assign(4, kNull); // node 0 = root
        for (unsigned pos = 0; pos + kQueryLen <= kRefLen; ++pos) {
            std::int32_t node = 0;
            for (unsigned d = 0; d < kQueryLen; ++d) {
                const auto c = ref[pos + d];
                std::int32_t &slot = trie_[node * 4 + c];
                if (slot == kNull) {
                    slot = static_cast<std::int32_t>(trie_.size() / 4);
                    trie_.insert(trie_.end(), 4, kNull);
                }
                node = trie_[node * 4 + c];
            }
        }

        // Queries: half sampled from the reference (full-length
        // matches), half random (die early).
        const unsigned threads = grid_ * block_;
        queries_.resize(std::size_t{threads} * kQueryLen);
        for (unsigned t = 0; t < threads; ++t) {
            if (rng.nextBool(0.5)) {
                const unsigned pos =
                    rng.nextBelow(kRefLen - kQueryLen);
                for (unsigned d = 0; d < kQueryLen; ++d)
                    queries_[t * kQueryLen + d] = ref[pos + d];
            } else {
                for (unsigned d = 0; d < kQueryLen; ++d)
                    queries_[t * kQueryLen + d] =
                        static_cast<std::int32_t>(rng.nextBelow(4));
            }
        }

        baseTrie_ = upload(gpu, trie_);
        baseQuery_ = upload(gpu, queries_);
        baseOut_ = allocOut(gpu, std::size_t{threads} * 4);
        buildKernel();
    }

    bool
    verify(const gpu::Gpu &gpu) const override
    {
        const unsigned threads = grid_ * block_;
        const auto out =
            download<std::int32_t>(gpu, baseOut_, threads);
        for (unsigned t = 0; t < threads; ++t) {
            std::int32_t node = 0, len = 0;
            for (unsigned d = 0; d < kQueryLen && node != kNull; ++d) {
                const auto c = queries_[t * kQueryLen + d];
                node = trie_[node * 4 + c];
                if (node != kNull)
                    ++len;
            }
            if (out[t] != len)
                return false;
        }
        return true;
    }

  private:
    void
    buildKernel()
    {
        using isa::Reg;
        isa::KernelBuilder kb("mum", 32);

        const Reg gtid = kb.reg();
        kb.s2r(gtid, isa::SpecialReg::Gtid);

        const Reg base_trie = kb.reg(), base_q = kb.reg(),
                  base_out = kb.reg();
        kb.movi(base_trie, static_cast<std::int32_t>(baseTrie_));
        kb.movi(base_q, static_cast<std::int32_t>(baseQuery_));
        kb.movi(base_out, static_cast<std::int32_t>(baseOut_));

        const Reg q_addr = kb.reg(), c_qlen = kb.reg();
        kb.movi(c_qlen, kQueryLen);
        kb.imul(q_addr, gtid, c_qlen);
        kb.shli(q_addr, q_addr, 2);
        kb.iadd(q_addr, q_addr, base_q);

        const Reg node = kb.reg(), len = kb.reg(), alive = kb.reg(),
                  minus1 = kb.reg();
        kb.movi(node, 0);
        kb.movi(len, 0);
        kb.movi(alive, 1);
        kb.movi(minus1, kNull);

        const Reg pos = kb.reg(), t = kb.reg(), ch = kb.reg(),
                  child = kb.reg(), p_match = kb.reg();

        kb.forCounter(pos, 0, c_qlen, 1, [&] {
            kb.ifThen(alive, [&] {
                kb.shli(t, pos, 2);
                kb.iadd(t, t, q_addr);
                kb.ldg(ch, t);
                // child = trie[node*4 + ch]
                kb.shli(t, node, 2);
                kb.iadd(t, t, ch);
                kb.shli(t, t, 2);
                kb.iadd(t, t, base_trie);
                kb.ldg(child, t);
                kb.isetpNe(p_match, child, minus1);
                kb.ifThenElse(
                    p_match,
                    [&] {
                        kb.mov(node, child);
                        kb.iaddi(len, len, 1);
                    },
                    [&] { kb.movi(alive, 0); });
            });
        });

        const Reg out_addr = kb.reg();
        kb.shli(out_addr, gtid, 2);
        kb.iadd(out_addr, out_addr, base_out);
        kb.stg(out_addr, len);

        prog_ = kb.build();
    }

    std::vector<std::int32_t> trie_, queries_;
    Addr baseTrie_ = 0, baseQuery_ = 0, baseOut_ = 0;
};

} // namespace

std::unique_ptr<Workload>
makeMum(unsigned blocks)
{
    return std::make_unique<Mum>(blocks);
}

} // namespace workloads
} // namespace warped
