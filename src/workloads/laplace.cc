/**
 * @file
 * Laplace transform / 5-point stencil (Table 4, Scientific): one
 * thread per grid cell; interior cells average their four neighbors,
 * boundary cells copy the input. The boundary test diverges warps
 * that straddle the domain edge (31/1 splits on row-interior warps),
 * a mild-divergence profile between BFS and MatrixMul.
 */

#include "isa/kernel_builder.hh"
#include "workloads/workload_base.hh"

namespace warped {
namespace workloads {
namespace {

class Laplace final : public WorkloadBase
{
  public:
    explicit Laplace(unsigned n)
        : WorkloadBase("Laplace", "Scientific"), n_(n)
    {
        block_ = 128;
        const unsigned cells = n_ * n_;
        if (cells % block_ != 0)
            warped_fatal("Laplace: N*N must be a multiple of ", block_);
        grid_ = cells / block_;
    }

    void
    setup(gpu::Gpu &gpu) override
    {
        Rng rng(0x4c41); // 'LA'
        in_.resize(std::size_t{n_} * n_);
        for (auto &v : in_)
            v = rng.nextFloat() * 2.0f - 1.0f;

        baseIn_ = upload(gpu, in_);
        baseOut_ = allocOut(gpu, std::size_t{n_} * n_ * 4);
        buildKernel();
    }

    bool
    verify(const gpu::Gpu &gpu) const override
    {
        const auto out =
            download<float>(gpu, baseOut_, std::size_t{n_} * n_);
        for (unsigned i = 0; i < n_; ++i) {
            for (unsigned j = 0; j < n_; ++j) {
                float want;
                if (i == 0 || i == n_ - 1 || j == 0 || j == n_ - 1) {
                    want = in_[i * n_ + j];
                } else {
                    const float sum = ((in_[(i - 1) * n_ + j] +
                                        in_[(i + 1) * n_ + j]) +
                                       in_[i * n_ + j - 1]) +
                                      in_[i * n_ + j + 1];
                    want = sum * 0.25f;
                }
                if (!nearlyEqual(out[i * n_ + j], want))
                    return false;
            }
        }
        return true;
    }

  private:
    void
    buildKernel()
    {
        using isa::Reg;
        isa::KernelBuilder kb("laplace", 48);
        const std::int32_t n = static_cast<std::int32_t>(n_);

        const Reg gtid = kb.reg();
        kb.s2r(gtid, isa::SpecialReg::Gtid);

        const Reg c_n = kb.reg(), c4 = kb.reg();
        kb.movi(c_n, n);
        kb.movi(c4, 4);

        const Reg i = kb.reg(), j = kb.reg();
        kb.idiv(i, gtid, c_n);
        kb.imod(j, gtid, c_n);

        // interior = (i > 0) & (i < n-1) & (j > 0) & (j < n-1)
        const Reg zero = kb.reg(), nm1 = kb.reg();
        kb.movi(zero, 0);
        kb.movi(nm1, n - 1);
        const Reg p1 = kb.reg(), p2 = kb.reg(), interior = kb.reg();
        kb.isetpGt(p1, i, zero);
        kb.isetpLt(p2, i, nm1);
        kb.and_(interior, p1, p2);
        kb.isetpGt(p1, j, zero);
        kb.and_(interior, interior, p1);
        kb.isetpLt(p2, j, nm1);
        kb.and_(interior, interior, p2);

        const Reg base_in = kb.reg(), base_out = kb.reg();
        kb.movi(base_in, static_cast<std::int32_t>(baseIn_));
        kb.movi(base_out, static_cast<std::int32_t>(baseOut_));

        // Byte address of (i, j) in the input grid.
        const Reg center = kb.reg();
        kb.imad(center, i, c_n, j);
        kb.imad(center, center, c4, base_in);

        const Reg result = kb.reg();
        const Reg up = kb.reg(), down = kb.reg(), left = kb.reg(),
                  right = kb.reg(), sum = kb.reg(), quarter = kb.reg();

        kb.ifThenElse(
            interior,
            [&] {
                kb.ldg(up, center, -4 * n);
                kb.ldg(down, center, 4 * n);
                kb.ldg(left, center, -4);
                kb.ldg(right, center, 4);
                kb.fadd(sum, up, down);
                kb.fadd(sum, sum, left);
                kb.fadd(sum, sum, right);
                kb.movf(quarter, 0.25f);
                kb.fmul(result, sum, quarter);
            },
            [&] { kb.ldg(result, center); });

        const Reg addr_out = kb.reg();
        kb.imad(addr_out, i, c_n, j);
        kb.imad(addr_out, addr_out, c4, base_out);
        kb.stg(addr_out, result);

        prog_ = kb.build();
    }

    unsigned n_;
    std::vector<float> in_;
    Addr baseIn_ = 0, baseOut_ = 0;
};

} // namespace

std::unique_ptr<Workload>
makeLaplace(unsigned n)
{
    return std::make_unique<Laplace>(n);
}

} // namespace workloads
} // namespace warped
