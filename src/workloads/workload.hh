/**
 * @file
 * Benchmark workloads (paper Table 4).
 *
 * Each workload is a real algorithm hand-written in the mini-ISA:
 * it lays out device buffers, builds its kernel, declares its launch
 * geometry and host<->device transfer sizes (Fig 10), and verifies
 * the GPU's output against a CPU reference computed with identical
 * operation ordering (so float results match bit-for-bit on a
 * fault-free machine).
 */

#ifndef WARPED_WORKLOADS_WORKLOAD_HH
#define WARPED_WORKLOADS_WORKLOAD_HH

#include <memory>
#include <string>
#include <vector>

#include "gpu/gpu.hh"
#include "isa/program.hh"

namespace warped {
namespace workloads {

class Workload
{
  public:
    virtual ~Workload() = default;

    /** Benchmark name as used in the paper's figures. */
    virtual const std::string &name() const = 0;

    /** Table-4 application category. */
    virtual const std::string &category() const = 0;

    /** Write inputs into device memory and build the kernel. */
    virtual void setup(gpu::Gpu &gpu) = 0;

    virtual const isa::Program &program() const = 0;
    virtual unsigned gridBlocks() const = 0;
    virtual unsigned blockThreads() const = 0;

    /** Host->device bytes a real run would copy before launch. */
    virtual std::size_t bytesIn() const = 0;
    /** Device->host bytes copied back after the kernel. */
    virtual std::size_t bytesOut() const = 0;

    /** Compare device results against the CPU reference. */
    virtual bool verify(const gpu::Gpu &gpu) const = 0;
};

/** setup + launch; fatal when verify() fails on a fault-free GPU. */
gpu::LaunchResult runVerified(Workload &w, gpu::Gpu &gpu);

/** setup + launch without verification (fault-injection runs). */
gpu::LaunchResult run(Workload &w, gpu::Gpu &gpu);

// ---- factories (scale 1 = the default benchmark size) --------------
std::unique_ptr<Workload> makeBfs(unsigned blocks = 30);
std::unique_ptr<Workload> makeNqueen(unsigned blocks = 24);
std::unique_ptr<Workload> makeMum(unsigned blocks = 30);
std::unique_ptr<Workload> makeScan(unsigned blocks = 40);
std::unique_ptr<Workload> makeBitonicSort(unsigned blocks = 30);
std::unique_ptr<Workload> makeLaplace(unsigned n = 64);
std::unique_ptr<Workload> makeMatrixMul(unsigned n = 160);
std::unique_ptr<Workload> makeRadixSort(unsigned blocks = 24);
std::unique_ptr<Workload> makeSha(unsigned blocks = 30);
std::unique_ptr<Workload> makeLibor(unsigned blocks = 30);
std::unique_ptr<Workload> makeFft(unsigned blocks = 30);

/** All 11 Table-4 workloads, in the paper's Fig-1 order. */
std::vector<std::unique_ptr<Workload>> makeAll();

/** Factory by paper name (BFS, Nqueen, MUM, SCAN, BitonicSort,
 *  Laplace, MatrixMul, RadixSort, SHA, Libor, CUFFT). */
std::unique_ptr<Workload> makeByName(const std::string &name);

/** The 11 paper names in Fig-1 order. */
const std::vector<std::string> &allNames();

/**
 * Factory with a thread-block multiplier (R-Thread's doubled grids).
 * Returns nullptr for workloads whose geometry is not expressed in
 * blocks (Laplace, MatrixMul) when block_scale != 1.
 */
std::unique_ptr<Workload> makeByNameScaled(const std::string &name,
                                           unsigned block_scale);

/**
 * Factory with the raw size parameter passed straight through to the
 * per-workload factory: the block count for block-shaped workloads,
 * the problem dimension n for Laplace and MatrixMul. 0 = the
 * workload's default size. Fault campaigns use this to pick
 * instances small enough that 10k+ injected runs stay tractable
 * (e.g. `MatrixMul --size 64`).
 */
std::unique_ptr<Workload> makeByNameSized(const std::string &name,
                                          unsigned size);

} // namespace workloads
} // namespace warped

#endif // WARPED_WORKLOADS_WORKLOAD_HH
