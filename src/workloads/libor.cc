/**
 * @file
 * Libor (Table 4, Financial): a Monte-Carlo forward-rate path
 * simulation in the style of the LIBOR market model benchmark. Each
 * thread evolves one path: the quasi-random increment and the
 * drift/discount terms use SFU transcendentals (SIN, EX2, RCP), so
 * Libor is the suite's SFU-heavy member (Fig 5) while keeping every
 * warp fully utilized (inter-warp-DMR dominated, like the paper).
 */

#include <cmath>

#include "isa/kernel_builder.hh"
#include "workloads/workload_base.hh"

namespace warped {
namespace workloads {
namespace {

constexpr unsigned kSteps = 24;

class Libor final : public WorkloadBase
{
  public:
    explicit Libor(unsigned blocks)
        : WorkloadBase("Libor", "Financial")
    {
        block_ = 64;
        grid_ = blocks;
    }

    void
    setup(gpu::Gpu &gpu) override
    {
        const unsigned threads = grid_ * block_;
        seeds_.resize(threads);
        for (unsigned t = 0; t < threads; ++t)
            seeds_[t] = 0.01f * static_cast<float>(t) + 0.125f;

        baseSeed_ = upload(gpu, seeds_);
        baseOut_ = allocOut(gpu, std::size_t{threads} * 4);
        buildKernel();
    }

    bool
    verify(const gpu::Gpu &gpu) const override
    {
        const unsigned threads = grid_ * block_;
        const auto out = download<float>(gpu, baseOut_, threads);
        for (unsigned t = 0; t < threads; ++t) {
            if (!nearlyEqual(out[t], reference(seeds_[t])))
                return false;
        }
        return true;
    }

  private:
    /** CPU reference with the kernel's exact op sequence. */
    static float
    reference(float seed)
    {
        float x = seed;
        float rate = 0.05f;
        float value = 0.0f;
        for (unsigned k = 0; k < kSteps; ++k) {
            const float z = std::sin(x);             // SIN
            x = std::fma(x, 1.61803f, 0.31830f);     // FFMA
            const float zz = z * z;                  // FMUL
            const float drift = std::exp2(-zz);      // FNEG + EX2
            rate = std::fma(rate, drift, 0.001f);    // FFMA
            const float denom = std::fma(rate, rate, 1.0f); // FFMA
            const float disc = 1.0f / denom;         // RCP
            value = std::fma(rate, disc, value);     // FFMA
        }
        return value;
    }

    void
    buildKernel()
    {
        using isa::Reg;
        isa::KernelBuilder kb("libor", 32);

        const Reg gtid = kb.reg();
        kb.s2r(gtid, isa::SpecialReg::Gtid);

        const Reg base_seed = kb.reg(), addr = kb.reg();
        kb.movi(base_seed, static_cast<std::int32_t>(baseSeed_));
        kb.shli(addr, gtid, 2);
        kb.iadd(addr, addr, base_seed);

        const Reg x = kb.reg();
        kb.ldg(x, addr);

        const Reg rate = kb.reg(), value = kb.reg();
        kb.movf(rate, 0.05f);
        kb.movf(value, 0.0f);

        const Reg c_phi = kb.reg(), c_pi = kb.reg(), c_eps = kb.reg(),
                  c_one = kb.reg();
        kb.movf(c_phi, 1.61803f);
        kb.movf(c_pi, 0.31830f);
        kb.movf(c_eps, 0.001f);
        kb.movf(c_one, 1.0f);

        const Reg z = kb.reg(), zz = kb.reg(), drift = kb.reg(),
                  denom = kb.reg(), disc = kb.reg();

        const Reg i = kb.reg(), c_steps = kb.reg();
        kb.movi(c_steps, kSteps);
        kb.forCounter(i, 0, c_steps, 1, [&] {
            kb.sin(z, x);                  // SFU
            kb.ffma(x, x, c_phi, c_pi);
            kb.fmul(zz, z, z);
            kb.fneg(zz, zz);
            kb.ex2(drift, zz);             // SFU
            kb.ffma(rate, rate, drift, c_eps);
            kb.ffma(denom, rate, rate, c_one);
            kb.rcp(disc, denom);           // SFU
            kb.ffma(value, rate, disc, value);
        });

        const Reg base_out = kb.reg(), out_addr = kb.reg();
        kb.movi(base_out, static_cast<std::int32_t>(baseOut_));
        kb.shli(out_addr, gtid, 2);
        kb.iadd(out_addr, out_addr, base_out);
        kb.stg(out_addr, value);

        prog_ = kb.build();
    }

    std::vector<float> seeds_;
    Addr baseSeed_ = 0, baseOut_ = 0;
};

} // namespace

std::unique_ptr<Workload>
makeLibor(unsigned blocks)
{
    return std::make_unique<Libor>(blocks);
}

} // namespace workloads
} // namespace warped
