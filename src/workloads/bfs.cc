/**
 * @file
 * BFS (Table 4, Primitives): level-synchronous breadth-first search.
 * Each block explores its own 256-node subgraph (a chain with random
 * shortcut edges, so the frontier stays a handful of nodes for many
 * levels). Every level all threads check their frontier membership,
 * then only the few frontier threads walk their adjacency lists —
 * the paper's most underutilized workload (over 40 % of instructions
 * executed by a single active thread).
 */

#include <queue>

#include "isa/kernel_builder.hh"
#include "workloads/workload_base.hh"

namespace warped {
namespace workloads {
namespace {

constexpr unsigned kNodes = 256; // per block
constexpr unsigned kLevels = 24;
constexpr std::int32_t kUnvisited = -1;

class Bfs final : public WorkloadBase
{
  public:
    explicit Bfs(unsigned blocks)
        : WorkloadBase("BFS", "Linear Algebra/Primitives")
    {
        block_ = kNodes;
        grid_ = blocks;
    }

    void
    setup(gpu::Gpu &gpu) override
    {
        buildGraph();

        cost0_.assign(std::size_t{grid_} * kNodes, kUnvisited);
        for (unsigned b = 0; b < grid_; ++b)
            cost0_[std::size_t{b} * kNodes] = 0; // per-block source

        baseRow_ = upload(gpu, row_);
        baseCol_ = upload(gpu, col_);
        baseCost_ = upload(gpu, cost0_);
        bytesOut_ += cost0_.size() * 4; // cost array is the output
        buildKernel();
    }

    bool
    verify(const gpu::Gpu &gpu) const override
    {
        const auto cost = download<std::int32_t>(
            gpu, baseCost_, std::size_t{grid_} * kNodes);
        const auto want = referenceCost();
        return cost == want;
    }

  private:
    void
    buildGraph()
    {
        Rng rng(0x4246); // 'BF'
        const unsigned total = grid_ * kNodes;
        std::vector<std::vector<std::int32_t>> adj(total);
        for (unsigned b = 0; b < grid_; ++b) {
            const unsigned base = b * kNodes;
            for (unsigned i = 0; i + 1 < kNodes; ++i) {
                adj[base + i].push_back(base + i + 1);
                adj[base + i + 1].push_back(base + i);
            }
            // Shortcut edges widen some frontiers.
            for (unsigned i = 0; i < kNodes; ++i) {
                if (rng.nextBool(0.25)) {
                    const unsigned j = rng.nextBelow(kNodes);
                    if (j != i) {
                        adj[base + i].push_back(base + j);
                        adj[base + j].push_back(base + i);
                    }
                }
            }
        }
        row_.assign(total + 1, 0);
        for (unsigned v = 0; v < total; ++v)
            row_[v + 1] = row_[v] +
                          static_cast<std::int32_t>(adj[v].size());
        col_.clear();
        for (unsigned v = 0; v < total; ++v)
            col_.insert(col_.end(), adj[v].begin(), adj[v].end());
    }

    std::vector<std::int32_t>
    referenceCost() const
    {
        std::vector<std::int32_t> cost(std::size_t{grid_} * kNodes,
                                       kUnvisited);
        for (unsigned b = 0; b < grid_; ++b) {
            const unsigned src = b * kNodes;
            std::queue<unsigned> q;
            cost[src] = 0;
            q.push(src);
            while (!q.empty()) {
                const unsigned v = q.front();
                q.pop();
                if (cost[v] >= static_cast<std::int32_t>(kLevels))
                    continue; // the kernel runs kLevels relaxations
                for (std::int32_t e = row_[v]; e < row_[v + 1]; ++e) {
                    const auto nb = static_cast<unsigned>(col_[e]);
                    if (cost[nb] == kUnvisited) {
                        cost[nb] = cost[v] + 1;
                        q.push(nb);
                    }
                }
            }
        }
        return cost;
    }

    void
    buildKernel()
    {
        using isa::Reg;
        isa::KernelBuilder kb("bfs", 32);

        const Reg tid = kb.reg(), ctaid = kb.reg();
        kb.s2r(tid, isa::SpecialReg::Tid);
        kb.s2r(ctaid, isa::SpecialReg::Ctaid);

        const Reg node = kb.reg(), cn = kb.reg();
        kb.movi(cn, kNodes);
        kb.imad(node, ctaid, cn, tid);

        const Reg base_cost = kb.reg(), base_row = kb.reg(),
                  base_col = kb.reg();
        kb.movi(base_cost, static_cast<std::int32_t>(baseCost_));
        kb.movi(base_row, static_cast<std::int32_t>(baseRow_));
        kb.movi(base_col, static_cast<std::int32_t>(baseCol_));

        const Reg cost_addr = kb.reg(), row_addr = kb.reg();
        kb.shli(cost_addr, node, 2);
        kb.iadd(cost_addr, cost_addr, base_cost);
        kb.shli(row_addr, node, 2);
        kb.iadd(row_addr, row_addr, base_row);

        const Reg minus1 = kb.reg();
        kb.movi(minus1, kUnvisited);

        const Reg my_cost = kb.reg(), pred = kb.reg();
        const Reg rs = kb.reg(), re = kb.reg(), e = kb.reg(),
                  p_edge = kb.reg();
        const Reg t = kb.reg(), nb = kb.reg(), nb_addr = kb.reg(),
                  c = kb.reg(), p_unvis = kb.reg(), lvl1 = kb.reg();

        const Reg lvl = kb.reg(), c_levels = kb.reg();
        kb.movi(c_levels, kLevels);
        kb.forCounter(lvl, 0, c_levels, 1, [&] {
            kb.ldg(my_cost, cost_addr);
            kb.isetpEq(pred, my_cost, lvl);
            kb.ifThen(pred, [&] {
                kb.ldg(rs, row_addr);
                kb.ldg(re, row_addr, 4);
                kb.mov(e, rs);
                kb.whileLoop([&] { kb.isetpLt(p_edge, e, re); },
                             p_edge, [&] {
                    kb.shli(t, e, 2);
                    kb.iadd(t, t, base_col);
                    kb.ldg(nb, t);
                    kb.shli(nb_addr, nb, 2);
                    kb.iadd(nb_addr, nb_addr, base_cost);
                    kb.ldg(c, nb_addr);
                    kb.isetpEq(p_unvis, c, minus1);
                    kb.ifThen(p_unvis, [&] {
                        kb.iaddi(lvl1, lvl, 1);
                        kb.stg(nb_addr, lvl1);
                    });
                    kb.iaddi(e, e, 1);
                });
            });
            kb.bar();
        });

        prog_ = kb.build();
    }

    std::vector<std::int32_t> row_, col_, cost0_;
    Addr baseRow_ = 0, baseCol_ = 0, baseCost_ = 0;
};

} // namespace

std::unique_ptr<Workload>
makeBfs(unsigned blocks)
{
    return std::make_unique<Bfs>(blocks);
}

} // namespace workloads
} // namespace warped
