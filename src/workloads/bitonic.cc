/**
 * @file
 * BitonicSort (Table 4, Sorting): per-block bitonic sorting network
 * over 256 keys in shared memory. Every compare-exchange step masks
 * off half the threads (ixj > tid) and the data-dependent swap
 * diverges further — BitonicSort is the most underutilized workload
 * in the paper's Fig 1 (up to 77 % idle lanes).
 */

#include <algorithm>

#include "isa/kernel_builder.hh"
#include "workloads/workload_base.hh"

namespace warped {
namespace workloads {
namespace {

constexpr unsigned kN = 256;

class BitonicSort final : public WorkloadBase
{
  public:
    explicit BitonicSort(unsigned blocks)
        : WorkloadBase("BitonicSort", "Sorting")
    {
        block_ = kN;
        grid_ = blocks;
    }

    void
    setup(gpu::Gpu &gpu) override
    {
        Rng rng(0x4253); // 'BS'
        in_.resize(std::size_t{grid_} * kN);
        for (auto &v : in_)
            v = static_cast<std::uint32_t>(rng.nextBelow(1u << 30));

        baseIn_ = upload(gpu, in_);
        baseOut_ = allocOut(gpu, in_.size() * 4);
        buildKernel();
    }

    bool
    verify(const gpu::Gpu &gpu) const override
    {
        const auto out =
            download<std::uint32_t>(gpu, baseOut_, in_.size());
        for (unsigned b = 0; b < grid_; ++b) {
            std::vector<std::uint32_t> want(in_.begin() + b * kN,
                                            in_.begin() + (b + 1) * kN);
            std::sort(want.begin(), want.end());
            for (unsigned i = 0; i < kN; ++i) {
                if (out[b * kN + i] != want[i])
                    return false;
            }
        }
        return true;
    }

  private:
    void
    buildKernel()
    {
        using isa::Reg;
        isa::KernelBuilder kb("bitonic", 32);
        const unsigned s_data = kb.shared(kN * 4);

        const Reg tid = kb.reg(), gtid = kb.reg();
        kb.s2r(tid, isa::SpecialReg::Tid);
        kb.s2r(gtid, isa::SpecialReg::Gtid);

        const Reg base = kb.reg(), addr = kb.reg(), val = kb.reg();
        kb.movi(base, static_cast<std::int32_t>(baseIn_));
        kb.shli(addr, gtid, 2);
        kb.iadd(addr, addr, base);
        kb.ldg(val, addr);

        const Reg my_sh = kb.reg();
        kb.shli(my_sh, tid, 2);
        kb.iaddi(my_sh, my_sh, static_cast<std::int32_t>(s_data));
        kb.sts(my_sh, val);

        const Reg ixj = kb.reg(), pred = kb.reg(), sh_ixj = kb.reg();
        const Reg a = kb.reg(), b = kb.reg();
        const Reg up = kb.reg(), pgt = kb.reg(), plt = kb.reg(),
                  doswap = kb.reg(), dir = kb.reg(), zero = kb.reg();
        kb.movi(zero, 0);

        for (unsigned k = 2; k <= kN; k <<= 1) {
            for (unsigned j = k >> 1; j > 0; j >>= 1) {
                kb.bar();
                // Partner index and the half-mask predicate.
                kb.movi(ixj, static_cast<std::int32_t>(j));
                kb.xor_(ixj, tid, ixj);
                kb.isetpGt(pred, ixj, tid);
                const unsigned kk = k;
                kb.ifThen(pred, [&] {
                    kb.shli(sh_ixj, ixj, 2);
                    kb.iaddi(sh_ixj, sh_ixj,
                             static_cast<std::int32_t>(s_data));
                    kb.lds(a, my_sh);
                    kb.lds(b, sh_ixj);
                    // Ascending when (tid & k) == 0.
                    kb.andi(dir, tid, static_cast<std::int32_t>(kk));
                    kb.isetpEq(up, dir, zero);
                    kb.isetpGt(pgt, a, b);
                    kb.isetpLt(plt, a, b);
                    kb.sel(doswap, up, pgt, plt);
                    kb.ifThen(doswap, [&] {
                        kb.sts(my_sh, b);
                        kb.sts(sh_ixj, a);
                    });
                });
            }
        }

        kb.bar();
        kb.lds(val, my_sh);
        const Reg base_out = kb.reg();
        kb.movi(base_out, static_cast<std::int32_t>(baseOut_));
        kb.shli(addr, gtid, 2);
        kb.iadd(addr, addr, base_out);
        kb.stg(addr, val);

        prog_ = kb.build();
    }

    std::vector<std::uint32_t> in_;
    Addr baseIn_ = 0, baseOut_ = 0;
};

} // namespace

std::unique_ptr<Workload>
makeBitonicSort(unsigned blocks)
{
    return std::make_unique<BitonicSort>(blocks);
}

} // namespace workloads
} // namespace warped
