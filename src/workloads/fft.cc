/**
 * @file
 * CUFFT stand-in (Table 4, Scientific): per-block 256-point radix-2
 * complex FFT in shared memory with SFU-computed twiddles (SIN/COS).
 * The block's 120 worker threads form three fully-utilized warps
 * plus one 24/32-utilized warp, so most instructions are inter-warp
 * covered while the >80 %-utilized partial warps pull the intra-warp
 * coverage down — reproducing CUFFT's lowest-coverage spot in the
 * paper's Fig 9a.
 */

#include <cmath>
#include <numbers>

#include "isa/kernel_builder.hh"
#include "workloads/workload_base.hh"

namespace warped {
namespace workloads {
namespace {

constexpr unsigned kPoints = 256;         // complex points per block
constexpr unsigned kWorkers = 120;        // threads per block
constexpr unsigned kLogPoints = 8;

unsigned
bitrev8(unsigned i)
{
    unsigned r = 0;
    for (unsigned b = 0; b < kLogPoints; ++b) {
        if (i & (1u << b))
            r |= 1u << (kLogPoints - 1 - b);
    }
    return r;
}

class Fft final : public WorkloadBase
{
  public:
    explicit Fft(unsigned blocks) : WorkloadBase("CUFFT", "Scientific")
    {
        block_ = kWorkers;
        grid_ = blocks;
    }

    void
    setup(gpu::Gpu &gpu) override
    {
        Rng rng(0x4646); // 'FF'
        in_.resize(std::size_t{grid_} * kPoints * 2);
        for (auto &v : in_)
            v = rng.nextFloat() * 2.0f - 1.0f;

        baseIn_ = upload(gpu, in_);
        baseOut_ = allocOut(gpu, in_.size() * 4);
        buildKernel();
    }

    bool
    verify(const gpu::Gpu &gpu) const override
    {
        const auto out = download<float>(gpu, baseOut_, in_.size());
        for (unsigned b = 0; b < grid_; ++b) {
            const auto want = referenceFft(&in_[b * kPoints * 2]);
            for (unsigned i = 0; i < kPoints * 2; ++i) {
                if (!nearlyEqual(out[b * kPoints * 2 + i], want[i],
                                 1e-4f))
                    return false;
            }
        }
        return true;
    }

  private:
    /** CPU reference mirroring the kernel's exact float operations. */
    static std::vector<float>
    referenceFft(const float *in)
    {
        std::vector<float> x(kPoints * 2);
        for (unsigned i = 0; i < kPoints; ++i) {
            const unsigned j = bitrev8(i);
            x[2 * j] = in[2 * i];
            x[2 * j + 1] = in[2 * i + 1];
        }
        for (unsigned s = 1; s <= kLogPoints; ++s) {
            const unsigned m = 1u << s, half = m >> 1;
            const float ang_unit =
                -std::numbers::pi_v<float> / float(half);
            for (unsigned b = 0; b < kPoints / 2; ++b) {
                const unsigned group = b >> (s - 1);
                const unsigned k = b & (half - 1);
                const unsigned i1 = group * m + k;
                const unsigned i2 = i1 + half;
                const float ang = float(k) * ang_unit;
                const float wr = std::cos(ang), wi = std::sin(ang);
                const float x2r = x[2 * i2], x2i = x[2 * i2 + 1];
                float t = wi * x2i;
                t = -t;
                const float tr = std::fma(wr, x2r, t);
                const float t2 = wi * x2r;
                const float ti = std::fma(wr, x2i, t2);
                const float x1r = x[2 * i1], x1i = x[2 * i1 + 1];
                x[2 * i2] = x1r - tr;
                x[2 * i2 + 1] = x1i - ti;
                x[2 * i1] = x1r + tr;
                x[2 * i1 + 1] = x1i + ti;
            }
        }
        return x;
    }

    void
    buildKernel()
    {
        using isa::Reg;
        isa::KernelBuilder kb("fft", 48);
        const unsigned s_data = kb.shared(kPoints * 2 * 4);

        const Reg tid = kb.reg(), ctaid = kb.reg();
        kb.s2r(tid, isa::SpecialReg::Tid);
        kb.s2r(ctaid, isa::SpecialReg::Ctaid);

        const Reg base_in = kb.reg(), base_out = kb.reg();
        kb.movi(base_in, static_cast<std::int32_t>(baseIn_));
        kb.movi(base_out, static_cast<std::int32_t>(baseOut_));

        // This block's global segment base (byte address).
        const Reg blk_in = kb.reg(), blk_out = kb.reg(), t = kb.reg();
        kb.movi(t, kPoints * 2 * 4);
        kb.imad(blk_in, ctaid, t, base_in);
        kb.imad(blk_out, ctaid, t, base_out);

        const Reg i = kb.reg(), p = kb.reg(), c_points = kb.reg();
        kb.movi(c_points, kPoints);

        const Reg rev = kb.reg(), u = kb.reg(), a_in = kb.reg(),
                  a_sh = kb.reg(), vr = kb.reg(), vi = kb.reg();

        // Load with bit-reversal: for (i = tid; i < 64; i += 28).
        kb.mov(i, tid);
        kb.whileLoop([&] { kb.isetpLt(p, i, c_points); }, p, [&] {
            // rev = bit-reverse-8(i)
            kb.movi(rev, 0);
            for (unsigned bpos = 0; bpos < kLogPoints; ++bpos) {
                const int dst = static_cast<int>(kLogPoints - 1 - bpos);
                kb.andi(u, i, 1 << bpos);
                if (dst > static_cast<int>(bpos))
                    kb.shli(u, u, dst - static_cast<int>(bpos));
                else if (dst < static_cast<int>(bpos))
                    kb.shri(u, u, static_cast<int>(bpos) - dst);
                kb.or_(rev, rev, u);
            }

            kb.shli(a_in, i, 3); // 2 floats * 4 bytes
            kb.iadd(a_in, a_in, blk_in);
            kb.ldg(vr, a_in, 0);
            kb.ldg(vi, a_in, 4);
            kb.shli(a_sh, rev, 3);
            kb.iaddi(a_sh, a_sh, static_cast<std::int32_t>(s_data));
            kb.sts(a_sh, vr, 0);
            kb.sts(a_sh, vi, 4);

            kb.iaddi(i, i, kWorkers);
        });
        kb.bar();

        const Reg b = kb.reg(), pb = kb.reg(), grp = kb.reg(),
                  k = kb.reg(), i1 = kb.reg(), a1 = kb.reg(),
                  a2 = kb.reg();
        const Reg kf = kb.reg(), ang = kb.reg(), wr = kb.reg(),
                  wi = kb.reg(), c_ang = kb.reg();
        const Reg x1r = kb.reg(), x1i = kb.reg(), x2r = kb.reg(),
                  x2i = kb.reg(), tr = kb.reg(), ti = kb.reg(),
                  tt = kb.reg();
        const Reg c_half_bf = kb.reg();
        kb.movi(c_half_bf, kPoints / 2);

        for (unsigned s = 1; s <= kLogPoints; ++s) {
            const unsigned half = 1u << (s - 1);
            const float ang_unit =
                -std::numbers::pi_v<float> / float(half);

            kb.mov(b, tid);
            kb.whileLoop([&] { kb.isetpLt(pb, b, c_half_bf); }, pb,
                         [&] {
                kb.shri(grp, b, static_cast<std::int32_t>(s - 1));
                kb.andi(k, b, static_cast<std::int32_t>(half - 1));
                kb.shli(i1, grp, static_cast<std::int32_t>(s));
                kb.iadd(i1, i1, k);
                // Shared byte addresses of the two complex points.
                kb.shli(a1, i1, 3);
                kb.iaddi(a1, a1, static_cast<std::int32_t>(s_data));
                kb.iaddi(a2, a1, static_cast<std::int32_t>(half * 8));

                kb.i2f(kf, k);
                kb.movf(c_ang, ang_unit);
                kb.fmul(ang, kf, c_ang);
                kb.cos(wr, ang);
                kb.sin(wi, ang);

                kb.lds(x2r, a2, 0);
                kb.lds(x2i, a2, 4);
                kb.fmul(tt, wi, x2i);
                kb.fneg(tt, tt);
                kb.ffma(tr, wr, x2r, tt);
                kb.fmul(tt, wi, x2r);
                kb.ffma(ti, wr, x2i, tt);

                kb.lds(x1r, a1, 0);
                kb.lds(x1i, a1, 4);
                kb.fsub(x2r, x1r, tr);
                kb.fsub(x2i, x1i, ti);
                kb.sts(a2, x2r, 0);
                kb.sts(a2, x2i, 4);
                kb.fadd(x1r, x1r, tr);
                kb.fadd(x1i, x1i, ti);
                kb.sts(a1, x1r, 0);
                kb.sts(a1, x1i, 4);

                kb.iaddi(b, b, kWorkers);
            });
            kb.bar();
        }

        // Store the spectrum back.
        kb.mov(i, tid);
        kb.whileLoop([&] { kb.isetpLt(p, i, c_points); }, p, [&] {
            kb.shli(a_sh, i, 3);
            kb.iaddi(a_sh, a_sh, static_cast<std::int32_t>(s_data));
            kb.lds(vr, a_sh, 0);
            kb.lds(vi, a_sh, 4);
            kb.shli(a_in, i, 3);
            kb.iadd(a_in, a_in, blk_out);
            kb.stg(a_in, vr, 0);
            kb.stg(a_in, vi, 4);
            kb.iaddi(i, i, kWorkers);
        });

        prog_ = kb.build();
    }

    std::vector<float> in_;
    Addr baseIn_ = 0, baseOut_ = 0;
};

} // namespace

std::unique_ptr<Workload>
makeFft(unsigned blocks)
{
    return std::make_unique<Fft>(blocks);
}

} // namespace workloads
} // namespace warped
