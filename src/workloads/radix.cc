/**
 * @file
 * RadixSort (Table 4, Sorting): per-block LSD radix sort of 256
 * 8-bit keys — 8 split-by-bit passes, each built from a flag vector,
 * a Blelloch exclusive scan in shared memory and a scatter. The
 * pass structure alternates full-warp phases with the scan's
 * shrinking-activity tree, a profile between SCAN and MatrixMul.
 */

#include <algorithm>

#include "isa/kernel_builder.hh"
#include "workloads/workload_base.hh"

namespace warped {
namespace workloads {
namespace {

constexpr unsigned kN = 256;   // keys per block == threads
constexpr unsigned kBits = 8;  // key width

class RadixSort final : public WorkloadBase
{
  public:
    explicit RadixSort(unsigned blocks)
        : WorkloadBase("RadixSort", "Sorting")
    {
        block_ = kN;
        grid_ = blocks;
    }

    void
    setup(gpu::Gpu &gpu) override
    {
        Rng rng(0x5253); // 'RS'
        in_.resize(std::size_t{grid_} * kN);
        for (auto &v : in_)
            v = static_cast<std::uint32_t>(rng.nextBelow(1u << kBits));

        baseIn_ = upload(gpu, in_);
        baseOut_ = allocOut(gpu, in_.size() * 4);
        buildKernel();
    }

    bool
    verify(const gpu::Gpu &gpu) const override
    {
        const auto out =
            download<std::uint32_t>(gpu, baseOut_, in_.size());
        for (unsigned b = 0; b < grid_; ++b) {
            std::vector<std::uint32_t> want(in_.begin() + b * kN,
                                            in_.begin() + (b + 1) * kN);
            std::sort(want.begin(), want.end());
            for (unsigned i = 0; i < kN; ++i) {
                if (out[b * kN + i] != want[i])
                    return false;
            }
        }
        return true;
    }

  private:
    void
    buildKernel()
    {
        using isa::Reg;
        isa::KernelBuilder kb("radixsort", 48);
        const unsigned s_keys = kb.shared(kN * 4);
        const unsigned s_scan = kb.shared(kN * 4);
        const unsigned s_tmp = kb.shared(kN * 4);
        const unsigned s_total = kb.shared(4);

        const Reg tid = kb.reg(), gtid = kb.reg();
        kb.s2r(tid, isa::SpecialReg::Tid);
        kb.s2r(gtid, isa::SpecialReg::Gtid);

        const Reg addr = kb.reg(), val = kb.reg();
        const Reg base_in = kb.reg();
        kb.movi(base_in, static_cast<std::int32_t>(baseIn_));
        kb.shli(addr, gtid, 2);
        kb.iadd(addr, addr, base_in);
        kb.ldg(val, addr);

        // Per-thread shared byte addresses into the three buffers.
        const Reg a_key = kb.reg(), a_scan = kb.reg(),
                  a_tmp = kb.reg(), t4 = kb.reg();
        kb.shli(t4, tid, 2);
        kb.iaddi(a_key, t4, static_cast<std::int32_t>(s_keys));
        kb.iaddi(a_scan, t4, static_cast<std::int32_t>(s_scan));
        kb.iaddi(a_tmp, t4, static_cast<std::int32_t>(s_tmp));
        kb.sts(a_key, val);

        const Reg cd = kb.reg(), pred = kb.reg();
        const Reg ai = kb.reg(), bi = kb.reg(), va = kb.reg(),
                  vb = kb.reg();

        auto tree_addrs = [&](unsigned offset) {
            kb.shli(ai, tid, 1);
            kb.iaddi(ai, ai, 1);
            kb.shli(ai, ai, static_cast<std::int32_t>(
                                std::countr_zero(offset)));
            kb.iaddi(ai, ai, -1);
            kb.iaddi(bi, ai, static_cast<std::int32_t>(offset));
            kb.shli(ai, ai, 2);
            kb.iaddi(ai, ai, static_cast<std::int32_t>(s_scan));
            kb.shli(bi, bi, 2);
            kb.iaddi(bi, bi, static_cast<std::int32_t>(s_scan));
        };

        /** Exclusive Blelloch scan of s_scan, leaving the element
         *  total in s_total. */
        auto emit_scan = [&] {
            for (unsigned d = kN / 2, offset = 1; d > 0;
                 d >>= 1, offset <<= 1) {
                kb.bar();
                kb.movi(cd, static_cast<std::int32_t>(d));
                kb.isetpLt(pred, tid, cd);
                const unsigned off = offset;
                kb.ifThen(pred, [&] {
                    tree_addrs(off);
                    kb.lds(va, ai);
                    kb.lds(vb, bi);
                    kb.iadd(vb, vb, va);
                    kb.sts(bi, vb);
                });
            }
            kb.bar();
            kb.movi(cd, kN - 1);
            kb.isetpEq(pred, tid, cd);
            kb.ifThen(pred, [&] {
                kb.movi(ai, static_cast<std::int32_t>(
                                s_scan + (kN - 1) * 4));
                kb.lds(va, ai);
                kb.movi(bi, static_cast<std::int32_t>(s_total));
                kb.sts(bi, va);
                kb.movi(va, 0);
                kb.sts(ai, va);
            });
            for (unsigned d = 1, offset = kN / 2; d < kN;
                 d <<= 1, offset >>= 1) {
                kb.bar();
                kb.movi(cd, static_cast<std::int32_t>(d));
                kb.isetpLt(pred, tid, cd);
                const unsigned off = offset;
                kb.ifThen(pred, [&] {
                    tree_addrs(off);
                    kb.lds(va, ai);
                    kb.lds(vb, bi);
                    kb.sts(ai, vb);
                    kb.iadd(vb, vb, va);
                    kb.sts(bi, vb);
                });
            }
            kb.bar();
        };

        const Reg key = kb.reg(), bit = kb.reg(), flag = kb.reg(),
                  one = kb.reg();
        kb.movi(one, 1);
        const Reg rank0 = kb.reg(), total0 = kb.reg(), pos = kb.reg(),
                  a_total = kb.reg(), a_dst = kb.reg(), tmp = kb.reg();
        kb.movi(a_total, static_cast<std::int32_t>(s_total));

        for (unsigned b = 0; b < kBits; ++b) {
            kb.lds(key, a_key);
            kb.shri(bit, key, static_cast<std::int32_t>(b));
            kb.andi(bit, bit, 1);
            kb.xor_(flag, bit, one); // 1 when the bit is 0
            kb.sts(a_scan, flag);

            emit_scan();

            kb.lds(rank0, a_scan);
            kb.lds(total0, a_total);
            // pos = flag ? rank0 : total0 + (tid - rank0)
            kb.isub(tmp, tid, rank0);
            kb.iadd(tmp, tmp, total0);
            kb.sel(pos, flag, rank0, tmp);

            kb.shli(a_dst, pos, 2);
            kb.iaddi(a_dst, a_dst, static_cast<std::int32_t>(s_tmp));
            kb.sts(a_dst, key);
            kb.bar();
            kb.lds(key, a_tmp);
            kb.sts(a_key, key);
            kb.bar();
        }

        const Reg base_out = kb.reg();
        kb.movi(base_out, static_cast<std::int32_t>(baseOut_));
        kb.lds(val, a_key);
        kb.shli(addr, gtid, 2);
        kb.iadd(addr, addr, base_out);
        kb.stg(addr, val);

        prog_ = kb.build();
    }

    std::vector<std::uint32_t> in_;
    Addr baseIn_ = 0, baseOut_ = 0;
};

} // namespace

std::unique_ptr<Workload>
makeRadixSort(unsigned blocks)
{
    return std::make_unique<RadixSort>(blocks);
}

} // namespace workloads
} // namespace warped
