/**
 * @file
 * MatrixMul (Table 4, Linear Algebra): shared-memory tiled dense
 * matrix multiply with 2x2 register blocking, the paper's flagship
 * fully-utilized workload. Every warp runs with a full active mask;
 * the inner product interleaves 4-deep LDS groups with 4-deep FFMA
 * groups at a balanced ~50/50 SP / LD-ST mix (like real matmul SASS).
 * Those short same-type runs are what give MatrixMul the suite's
 * largest no-ReplayQ overhead in Fig 9b while a 10-entry queue
 * absorbs most of it.
 */

#include <cmath>

#include "isa/kernel_builder.hh"
#include "workloads/workload_base.hh"

namespace warped {
namespace workloads {
namespace {

constexpr unsigned kTile = 32;   // shared tile is kTile x kTile
constexpr unsigned kThreads = 256; // 16x16 threads, each owns 2x2 C

class MatrixMul final : public WorkloadBase
{
  public:
    explicit MatrixMul(unsigned n)
        : WorkloadBase("MatrixMul", "Linear Algebra/Primitives"), n_(n)
    {
        if (n_ % kTile != 0)
            warped_fatal("MatrixMul: N must be a multiple of ", kTile);
        block_ = kThreads;
        const unsigned tiles = n_ / kTile;
        grid_ = tiles * tiles;
    }

    void
    setup(gpu::Gpu &gpu) override
    {
        Rng rng(0x4d4d); // 'MM'
        a_.resize(std::size_t{n_} * n_);
        b_.resize(std::size_t{n_} * n_);
        for (auto &v : a_)
            v = rng.nextFloat();
        for (auto &v : b_)
            v = rng.nextFloat();

        baseA_ = upload(gpu, a_);
        baseB_ = upload(gpu, b_);
        baseC_ = allocOut(gpu, std::size_t{n_} * n_ * 4);
        buildKernel();
    }

    bool
    verify(const gpu::Gpu &gpu) const override
    {
        const auto c = download<float>(gpu, baseC_,
                                       std::size_t{n_} * n_);
        for (unsigned row = 0; row < n_; ++row) {
            for (unsigned col = 0; col < n_; ++col) {
                // One accumulator per C element, sequential in k —
                // the kernel's exact FP ordering.
                float acc = 0.0f;
                for (unsigned k = 0; k < n_; ++k) {
                    acc = std::fma(a_[row * n_ + k],
                                   b_[k * n_ + col], acc);
                }
                if (!nearlyEqual(c[row * n_ + col], acc, 1e-4f))
                    return false;
            }
        }
        return true;
    }

  private:
    void
    buildKernel()
    {
        using isa::Reg;
        isa::KernelBuilder kb("matrixmul", 64);

        const unsigned tiles = n_ / kTile;
        const std::int32_t n = static_cast<std::int32_t>(n_);
        const unsigned s_a = kb.shared(kTile * kTile * 4);
        const unsigned s_b = kb.shared(kTile * kTile * 4);

        const Reg tid = kb.reg(), ctaid = kb.reg();
        kb.s2r(tid, isa::SpecialReg::Tid);
        kb.s2r(ctaid, isa::SpecialReg::Ctaid);

        const Reg c16 = kb.reg(), c_n = kb.reg(), c_tiles = kb.reg(),
                  c4 = kb.reg(), c32 = kb.reg();
        kb.movi(c16, 16);
        kb.movi(c_n, n);
        kb.movi(c_tiles, static_cast<std::int32_t>(tiles));
        kb.movi(c4, 4);
        kb.movi(c32, kTile);

        const Reg tx = kb.reg(), ty = kb.reg();
        kb.imod(tx, tid, c16);
        kb.idiv(ty, tid, c16);
        const Reg bx = kb.reg(), by = kb.reg();
        kb.imod(bx, ctaid, c_tiles);
        kb.idiv(by, ctaid, c_tiles);

        const Reg base_a = kb.reg(), base_b = kb.reg(),
                  base_c = kb.reg();
        kb.movi(base_a, static_cast<std::int32_t>(baseA_));
        kb.movi(base_b, static_cast<std::int32_t>(baseB_));
        kb.movi(base_c, static_cast<std::int32_t>(baseC_));

        // 2x2 register blocking: this thread owns C rows
        // row0 = by*32 + 2*ty (+1) and cols col0 = bx*32 + 2*tx (+1).
        const Reg row0 = kb.reg(), col0 = kb.reg(), two = kb.reg();
        kb.movi(two, 2);
        kb.imul(row0, ty, two);
        kb.imad(row0, by, c32, row0);
        kb.imul(col0, tx, two);
        kb.imad(col0, bx, c32, col0);

        const Reg acc00 = kb.reg(), acc01 = kb.reg(),
                  acc10 = kb.reg(), acc11 = kb.reg();
        for (Reg a : {acc00, acc01, acc10, acc11})
            kb.movf(a, 0.0f);

        // Shared-memory row/column base addresses (constant over the
        // whole kernel: immediate offsets select k).
        // sA row bases: s_a + (2*ty+r)*kTile*4 ; sB col base:
        // s_b + (2*tx)*4, row k selected by offset k*kTile*4.
        const Reg sh_a0 = kb.reg(), sh_a1 = kb.reg(),
                  sh_b = kb.reg();
        kb.imul(sh_a0, ty, two);
        kb.imul(sh_a0, sh_a0, c32);
        kb.imul(sh_a0, sh_a0, c4);
        kb.iaddi(sh_a0, sh_a0, static_cast<std::int32_t>(s_a));
        kb.iaddi(sh_a1, sh_a0, kTile * 4);
        kb.imul(sh_b, tx, two);
        kb.imul(sh_b, sh_b, c4);
        kb.iaddi(sh_b, sh_b, static_cast<std::int32_t>(s_b));

        // Tile-load cooperative addressing: thread loads elements
        // tid + 256*j (j = 0..3) of each 32x32 tile; within a tile
        // those are rows (tid/32 + 8j), col tid%32.
        const Reg lrow = kb.reg(), lcol = kb.reg();
        kb.idiv(lrow, tid, c32);
        kb.imod(lcol, tid, c32);
        // Shared destination byte address of element (lrow, lcol).
        const Reg sh_wa = kb.reg(), sh_wb = kb.reg(), t0 = kb.reg();
        kb.imad(t0, lrow, c32, lcol);
        kb.imul(t0, t0, c4);
        kb.iaddi(sh_wa, t0, static_cast<std::int32_t>(s_a));
        kb.iaddi(sh_wb, t0, static_cast<std::int32_t>(s_b));

        const Reg t = kb.reg();
        const Reg ga = kb.reg(), gb = kb.reg(), v = kb.reg(),
                  tmp = kb.reg();
        const Reg a0 = kb.reg(), a1 = kb.reg(), b0 = kb.reg(),
                  b1 = kb.reg();

        kb.forCounter(t, 0, c_tiles, 1, [&] {
            // ga = &A[by*32 + lrow][t*32 + lcol]
            kb.imad(tmp, by, c32, lrow);
            kb.imad(tmp, tmp, c_n, lcol);
            kb.imad(tmp, t, c32, tmp);
            kb.imad(ga, tmp, c4, base_a);
            // gb = &B[t*32 + lrow][bx*32 + lcol]
            kb.imad(tmp, t, c32, lrow);
            kb.imad(tmp, tmp, c_n, lcol);
            kb.imad(tmp, bx, c32, tmp);
            kb.imad(gb, tmp, c4, base_b);

            // Four cooperative rows, 8 apart; global stride 8*N*4,
            // shared stride 8*32*4 bytes (immediate offsets).
            for (unsigned j = 0; j < 4; ++j) {
                const std::int32_t g_off =
                    static_cast<std::int32_t>(j * 8) * n * 4;
                const std::int32_t s_off =
                    static_cast<std::int32_t>(j * 8 * kTile * 4);
                kb.ldg(v, ga, g_off);
                kb.sts(sh_wa, v, s_off);
                kb.ldg(v, gb, g_off);
                kb.sts(sh_wb, v, s_off);
            }
            kb.bar();

            // Inner product over the tile: per k, a 4-deep LDS group
            // feeding a 4-deep FFMA group (the interleaving a real
            // compiler emits, since each FFMA consumes the loads just
            // ahead of it).
            for (unsigned k = 0; k < kTile; ++k) {
                const std::int32_t ak = static_cast<std::int32_t>(k * 4);
                const std::int32_t bk =
                    static_cast<std::int32_t>(k * kTile * 4);
                kb.lds(a0, sh_a0, ak);
                kb.lds(a1, sh_a1, ak);
                kb.lds(b0, sh_b, bk);
                kb.lds(b1, sh_b, bk + 4);
                kb.ffma(acc00, a0, b0, acc00);
                kb.ffma(acc01, a0, b1, acc01);
                kb.ffma(acc10, a1, b0, acc10);
                kb.ffma(acc11, a1, b1, acc11);
            }
            kb.bar();
        });

        // Store the 2x2 block of C.
        const Reg addr = kb.reg();
        const Reg accs[4] = {acc00, acc01, acc10, acc11};
        for (unsigned r = 0; r < 2; ++r) {
            for (unsigned c = 0; c < 2; ++c) {
                kb.iaddi(tmp, row0, static_cast<std::int32_t>(r));
                kb.imad(tmp, tmp, c_n, col0);
                kb.iaddi(tmp, tmp, static_cast<std::int32_t>(c));
                kb.imad(addr, tmp, c4, base_c);
                kb.stg(addr, accs[r * 2 + c]);
            }
        }

        prog_ = kb.build();
    }

    unsigned n_;
    std::vector<float> a_, b_;
    Addr baseA_ = 0, baseB_ = 0, baseC_ = 0;
};

} // namespace

std::unique_ptr<Workload>
makeMatrixMul(unsigned n)
{
    return std::make_unique<MatrixMul>(n);
}

} // namespace workloads
} // namespace warped
