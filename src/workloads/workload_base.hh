/**
 * @file
 * Shared plumbing for workload implementations.
 */

#ifndef WARPED_WORKLOADS_WORKLOAD_BASE_HH
#define WARPED_WORKLOADS_WORKLOAD_BASE_HH

#include <cstring>

#include "common/logging.hh"
#include "common/rng.hh"
#include "workloads/workload.hh"

namespace warped {
namespace workloads {

class WorkloadBase : public Workload
{
  public:
    WorkloadBase(std::string name, std::string category)
        : name_(std::move(name)), category_(std::move(category))
    {
    }

    const std::string &name() const override { return name_; }
    const std::string &category() const override { return category_; }
    const isa::Program &program() const override { return prog_; }
    unsigned gridBlocks() const override { return grid_; }
    unsigned blockThreads() const override { return block_; }
    std::size_t bytesIn() const override { return bytesIn_; }
    std::size_t bytesOut() const override { return bytesOut_; }

  protected:
    /** Copy a host vector to a fresh device buffer; tracks bytesIn. */
    template <typename T>
    Addr
    upload(gpu::Gpu &gpu, const std::vector<T> &host)
    {
        const std::size_t n = host.size() * sizeof(T);
        const Addr a = gpu.allocator().alloc(n ? n : 4);
        if (n)
            gpu.mem().copyIn(a, host.data(), n);
        bytesIn_ += n;
        return a;
    }

    /** Allocate an output buffer; tracks bytesOut. */
    Addr
    allocOut(gpu::Gpu &gpu, std::size_t bytes)
    {
        const Addr a = gpu.allocator().alloc(bytes ? bytes : 4);
        bytesOut_ += bytes;
        return a;
    }

    /** Read back a device buffer into a host vector. */
    template <typename T>
    std::vector<T>
    download(const gpu::Gpu &gpu, Addr addr, std::size_t count) const
    {
        std::vector<T> host(count);
        if (count)
            gpu.mem().copyOut(addr, host.data(), count * sizeof(T));
        return host;
    }

    std::string name_;
    std::string category_;
    isa::Program prog_;
    unsigned grid_ = 1;
    unsigned block_ = 32;
    std::size_t bytesIn_ = 0;
    std::size_t bytesOut_ = 0;
};

/** Float comparison helper: exact match expected on the fault-free
 *  machine (identical op ordering), but verify with a tiny epsilon so
 *  the check stays meaningful if the reference is ever reordered. */
bool nearlyEqual(float a, float b, float rel = 1e-5f);

} // namespace workloads
} // namespace warped

#endif // WARPED_WORKLOADS_WORKLOAD_BASE_HH
