/**
 * @file
 * SCAN (Table 4, Primitives): per-block Blelloch work-efficient
 * exclusive prefix sum over 256 elements in shared memory. The
 * upsweep/downsweep trees halve the number of active threads each
 * step (128, 64, ..., 1), painting the whole spectrum of partial
 * active masks that intra-warp DMR feeds on (Fig 1).
 */

#include "isa/kernel_builder.hh"
#include "workloads/workload_base.hh"

namespace warped {
namespace workloads {
namespace {

constexpr unsigned kN = 256; // elements per block == block threads

class Scan final : public WorkloadBase
{
  public:
    explicit Scan(unsigned blocks)
        : WorkloadBase("SCAN", "Linear Algebra/Primitives")
    {
        block_ = kN;
        grid_ = blocks;
    }

    void
    setup(gpu::Gpu &gpu) override
    {
        Rng rng(0x5343); // 'SC'
        in_.resize(std::size_t{grid_} * kN);
        for (auto &v : in_)
            v = static_cast<std::uint32_t>(rng.nextBelow(1000));

        baseIn_ = upload(gpu, in_);
        baseOut_ = allocOut(gpu, in_.size() * 4);
        buildKernel();
    }

    bool
    verify(const gpu::Gpu &gpu) const override
    {
        const auto out =
            download<std::uint32_t>(gpu, baseOut_, in_.size());
        for (unsigned b = 0; b < grid_; ++b) {
            std::uint32_t acc = 0;
            for (unsigned i = 0; i < kN; ++i) {
                if (out[b * kN + i] != acc)
                    return false;
                acc += in_[b * kN + i];
            }
        }
        return true;
    }

  private:
    void
    buildKernel()
    {
        using isa::Reg;
        isa::KernelBuilder kb("scan", 32);
        const unsigned s_data = kb.shared(kN * 4);

        const Reg tid = kb.reg(), gtid = kb.reg();
        kb.s2r(tid, isa::SpecialReg::Tid);
        kb.s2r(gtid, isa::SpecialReg::Gtid);

        const Reg base_in = kb.reg(), base_out = kb.reg(),
                  addr = kb.reg();
        kb.movi(base_in, static_cast<std::int32_t>(baseIn_));
        kb.movi(base_out, static_cast<std::int32_t>(baseOut_));

        // Shared byte address of element tid.
        const Reg my_sh = kb.reg();
        kb.shli(my_sh, tid, 2);
        kb.iaddi(my_sh, my_sh, static_cast<std::int32_t>(s_data));

        const Reg val = kb.reg();
        kb.shli(addr, gtid, 2);
        kb.iadd(addr, addr, base_in);
        kb.ldg(val, addr);
        kb.sts(my_sh, val);

        const Reg cd = kb.reg(), pred = kb.reg();
        const Reg ai = kb.reg(), bi = kb.reg();
        const Reg va = kb.reg(), vb = kb.reg();

        // Emit ai/bi shared addresses for the tree step with the
        // given offset: ai = (2*tid+1)*offset - 1, bi = ai + offset.
        auto tree_addrs = [&](unsigned offset) {
            kb.shli(ai, tid, 1);
            kb.iaddi(ai, ai, 1);
            kb.shli(ai, ai, static_cast<std::int32_t>(
                                std::countr_zero(offset)));
            kb.iaddi(ai, ai, -1);
            kb.iaddi(bi, ai, static_cast<std::int32_t>(offset));
            kb.shli(ai, ai, 2);
            kb.iaddi(ai, ai, static_cast<std::int32_t>(s_data));
            kb.shli(bi, bi, 2);
            kb.iaddi(bi, bi, static_cast<std::int32_t>(s_data));
        };

        // Upsweep (reduce) phase.
        for (unsigned d = kN / 2, offset = 1; d > 0;
             d >>= 1, offset <<= 1) {
            kb.bar();
            kb.movi(cd, static_cast<std::int32_t>(d));
            kb.isetpLt(pred, tid, cd);
            const unsigned off = offset;
            kb.ifThen(pred, [&] {
                tree_addrs(off);
                kb.lds(va, ai);
                kb.lds(vb, bi);
                kb.iadd(vb, vb, va);
                kb.sts(bi, vb);
            });
        }

        // Clear the root for the exclusive scan.
        kb.bar();
        kb.movi(cd, kN - 1);
        kb.isetpEq(pred, tid, cd);
        kb.ifThen(pred, [&] {
            kb.movi(va, 0);
            kb.movi(ai, static_cast<std::int32_t>(
                            s_data + (kN - 1) * 4));
            kb.sts(ai, va);
        });

        // Downsweep phase.
        for (unsigned d = 1, offset = kN / 2; d < kN;
             d <<= 1, offset >>= 1) {
            kb.bar();
            kb.movi(cd, static_cast<std::int32_t>(d));
            kb.isetpLt(pred, tid, cd);
            const unsigned off = offset;
            kb.ifThen(pred, [&] {
                tree_addrs(off);
                kb.lds(va, ai);
                kb.lds(vb, bi);
                kb.sts(ai, vb);
                kb.iadd(vb, vb, va);
                kb.sts(bi, vb);
            });
        }

        kb.bar();
        kb.lds(val, my_sh);
        kb.shli(addr, gtid, 2);
        kb.iadd(addr, addr, base_out);
        kb.stg(addr, val);

        prog_ = kb.build();
    }

    std::vector<std::uint32_t> in_;
    Addr baseIn_ = 0, baseOut_ = 0;
};

} // namespace

std::unique_ptr<Workload>
makeScan(unsigned blocks)
{
    return std::make_unique<Scan>(blocks);
}

} // namespace workloads
} // namespace warped
