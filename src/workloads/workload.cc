#include "workloads/workload.hh"

#include <cmath>

#include "common/logging.hh"
#include "workloads/workload_base.hh"

namespace warped {
namespace workloads {

bool
nearlyEqual(float a, float b, float rel)
{
    if (a == b)
        return true;
    if (std::isnan(a) || std::isnan(b))
        return false;
    const float diff = std::fabs(a - b);
    const float mag = std::fmax(std::fabs(a), std::fabs(b));
    return diff <= rel * std::fmax(mag, 1.0f);
}

gpu::LaunchResult
run(Workload &w, gpu::Gpu &gpu)
{
    w.setup(gpu);
    return gpu.launch(w.program(), w.gridBlocks(), w.blockThreads());
}

gpu::LaunchResult
runVerified(Workload &w, gpu::Gpu &gpu)
{
    auto r = run(w, gpu);
    if (!w.verify(gpu))
        warped_fatal("workload '", w.name(),
                     "' failed output verification on a fault-free GPU");
    return r;
}

std::vector<std::unique_ptr<Workload>>
makeAll()
{
    std::vector<std::unique_ptr<Workload>> v;
    v.push_back(makeBfs());
    v.push_back(makeNqueen());
    v.push_back(makeMum());
    v.push_back(makeScan());
    v.push_back(makeBitonicSort());
    v.push_back(makeLaplace());
    v.push_back(makeMatrixMul());
    v.push_back(makeRadixSort());
    v.push_back(makeSha());
    v.push_back(makeLibor());
    v.push_back(makeFft());
    return v;
}

const std::vector<std::string> &
allNames()
{
    static const std::vector<std::string> names = {
        "BFS", "Nqueen", "MUM", "SCAN", "BitonicSort", "Laplace",
        "MatrixMul", "RadixSort", "SHA", "Libor", "CUFFT"};
    return names;
}

std::unique_ptr<Workload>
makeByName(const std::string &name)
{
    return makeByNameScaled(name, 1);
}

std::unique_ptr<Workload>
makeByNameScaled(const std::string &name, unsigned s)
{
    if (name == "BFS") return makeBfs(30 * s);
    if (name == "Nqueen") return makeNqueen(24 * s);
    if (name == "MUM") return makeMum(30 * s);
    if (name == "SCAN") return makeScan(40 * s);
    if (name == "BitonicSort") return makeBitonicSort(30 * s);
    if (name == "Laplace") return s == 1 ? makeLaplace() : nullptr;
    if (name == "MatrixMul") return s == 1 ? makeMatrixMul() : nullptr;
    if (name == "RadixSort") return makeRadixSort(24 * s);
    if (name == "SHA") return makeSha(30 * s);
    if (name == "Libor") return makeLibor(30 * s);
    if (name == "CUFFT") return makeFft(30 * s);
    warped_fatal("unknown workload '", name, "'");
}

std::unique_ptr<Workload>
makeByNameSized(const std::string &name, unsigned size)
{
    if (size == 0)
        return makeByName(name);
    if (name == "BFS") return makeBfs(size);
    if (name == "Nqueen") return makeNqueen(size);
    if (name == "MUM") return makeMum(size);
    if (name == "SCAN") return makeScan(size);
    if (name == "BitonicSort") return makeBitonicSort(size);
    if (name == "Laplace") return makeLaplace(size);
    if (name == "MatrixMul") return makeMatrixMul(size);
    if (name == "RadixSort") return makeRadixSort(size);
    if (name == "SHA") return makeSha(size);
    if (name == "Libor") return makeLibor(size);
    if (name == "CUFFT") return makeFft(size);
    warped_fatal("unknown workload '", name, "'");
}

} // namespace workloads
} // namespace warped
