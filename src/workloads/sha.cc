/**
 * @file
 * SHA (Table 4, Compression/Encryption): each thread compresses one
 * 64-byte message chunk with a 24-round SHA-256-style compression
 * function (real Ch/Maj/Sigma round structure and the standard round
 * constants). All warps are fully utilized and the register-resident
 * rounds form the longest same-type (SP) issue runs of the suite —
 * SHA is one of the paper's long-switch-distance outliers in Fig 8a.
 */

#include <array>

#include "isa/kernel_builder.hh"
#include "workloads/workload_base.hh"

namespace warped {
namespace workloads {
namespace {

constexpr unsigned kRounds = 24;

// First kRounds SHA-256 round constants.
constexpr std::array<std::uint32_t, 24> kK = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b,
    0x59f111f1, 0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01,
    0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7,
    0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc,
    0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da};

constexpr std::array<std::uint32_t, 8> kH0 = {
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
    0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

std::uint32_t
rotr(std::uint32_t x, unsigned r)
{
    return (x >> r) | (x << (32 - r));
}

/** CPU reference: must mirror the kernel's exact operation set. */
std::uint32_t
compressRef(const std::uint32_t *w16)
{
    std::array<std::uint32_t, 16> w;
    for (unsigned i = 0; i < 16; ++i)
        w[i] = w16[i];
    std::array<std::uint32_t, 8> h = kH0;
    for (unsigned r = 0; r < kRounds; ++r) {
        std::uint32_t wr;
        if (r < 16) {
            wr = w[r];
        } else {
            const std::uint32_t w15 = w[(r - 15) & 15];
            const std::uint32_t w2 = w[(r - 2) & 15];
            const std::uint32_t s0 =
                rotr(w15, 7) ^ rotr(w15, 18) ^ (w15 >> 3);
            const std::uint32_t s1 =
                rotr(w2, 17) ^ rotr(w2, 19) ^ (w2 >> 10);
            wr = w[r & 15] + s0 + w[(r - 7) & 15] + s1;
            w[r & 15] = wr;
        }
        const std::uint32_t S1 =
            rotr(h[4], 6) ^ rotr(h[4], 11) ^ rotr(h[4], 25);
        const std::uint32_t ch = (h[4] & h[5]) ^ (~h[4] & h[6]);
        const std::uint32_t t1 = h[7] + S1 + ch + kK[r] + wr;
        const std::uint32_t S0 =
            rotr(h[0], 2) ^ rotr(h[0], 13) ^ rotr(h[0], 22);
        const std::uint32_t maj =
            (h[0] & h[1]) ^ (h[0] & h[2]) ^ (h[1] & h[2]);
        const std::uint32_t t2 = S0 + maj;
        h[7] = h[6];
        h[6] = h[5];
        h[5] = h[4];
        h[4] = h[3] + t1;
        h[3] = h[2];
        h[2] = h[1];
        h[1] = h[0];
        h[0] = t1 + t2;
    }
    // Fold the state into one word (the kernel stores one digest word
    // per thread).
    std::uint32_t d = 0;
    for (unsigned i = 0; i < 8; ++i)
        d ^= h[i] + kH0[i];
    return d;
}

class Sha final : public WorkloadBase
{
  public:
    explicit Sha(unsigned blocks)
        : WorkloadBase("SHA", "Compression/Encryption")
    {
        block_ = 64;
        grid_ = blocks;
    }

    void
    setup(gpu::Gpu &gpu) override
    {
        Rng rng(0x5348); // 'SH'
        const unsigned threads = grid_ * block_;
        msg_.resize(std::size_t{threads} * 16);
        for (auto &v : msg_)
            v = static_cast<std::uint32_t>(rng.next());

        baseMsg_ = upload(gpu, msg_);
        baseOut_ = allocOut(gpu, std::size_t{threads} * 4);
        buildKernel();
    }

    bool
    verify(const gpu::Gpu &gpu) const override
    {
        const unsigned threads = grid_ * block_;
        const auto out =
            download<std::uint32_t>(gpu, baseOut_, threads);
        for (unsigned t = 0; t < threads; ++t) {
            if (out[t] != compressRef(&msg_[std::size_t{t} * 16]))
                return false;
        }
        return true;
    }

  private:
    void
    buildKernel()
    {
        using isa::Reg;
        isa::KernelBuilder kb("sha", 48);

        const Reg gtid = kb.reg();
        kb.s2r(gtid, isa::SpecialReg::Gtid);

        const Reg base_msg = kb.reg(), addr = kb.reg();
        kb.movi(base_msg, static_cast<std::int32_t>(baseMsg_));
        kb.shli(addr, gtid, 6); // 16 words * 4 bytes per thread
        kb.iadd(addr, addr, base_msg);

        // Message schedule ring buffer: 16 registers.
        Reg w[16];
        for (unsigned i = 0; i < 16; ++i) {
            w[i] = kb.reg();
            kb.ldg(w[i], addr, static_cast<std::int32_t>(i * 4));
        }

        // Working state a..h.
        Reg h[8];
        for (unsigned i = 0; i < 8; ++i) {
            h[i] = kb.reg();
            kb.movi(h[i], static_cast<std::int32_t>(kH0[i]));
        }

        const Reg t1 = kb.reg(), t2 = kb.reg(), s = kb.reg(),
                  u = kb.reg(), v = kb.reg();

        // Rounds, fully unrolled: a long SP burst per round.
        for (unsigned r = 0; r < kRounds; ++r) {
            Reg wr = w[r & 15];
            if (r >= 16) {
                // w[r] = w[r-16] + s0(w[r-15]) + w[r-7] + s1(w[r-2])
                const Reg w15 = w[(r - 15) & 15];
                const Reg w2 = w[(r - 2) & 15];
                kb.ror(s, w15, 7, u);
                kb.ror(v, w15, 18, u);
                kb.xor_(s, s, v);
                kb.shri(v, w15, 3);
                kb.xor_(s, s, v);           // s = s0
                kb.iadd(wr, wr, s);
                kb.ror(s, w2, 17, u);
                kb.ror(v, w2, 19, u);
                kb.xor_(s, s, v);
                kb.shri(v, w2, 10);
                kb.xor_(s, s, v);           // s = s1
                kb.iadd(wr, wr, s);
                kb.iadd(wr, wr, w[(r - 7) & 15]);
            }
            // t1 = h + S1(e) + Ch(e,f,g) + K[r] + w[r]
            kb.ror(s, h[4], 6, u);
            kb.ror(v, h[4], 11, u);
            kb.xor_(s, s, v);
            kb.ror(v, h[4], 25, u);
            kb.xor_(s, s, v);               // s = S1
            kb.iadd(t1, h[7], s);
            kb.and_(u, h[4], h[5]);
            kb.not_(v, h[4]);
            kb.and_(v, v, h[6]);
            kb.xor_(u, u, v);               // u = Ch
            kb.iadd(t1, t1, u);
            kb.iaddi(t1, t1, static_cast<std::int32_t>(kK[r]));
            kb.iadd(t1, t1, wr);
            // t2 = S0(a) + Maj(a,b,c)
            kb.ror(s, h[0], 2, u);
            kb.ror(v, h[0], 13, u);
            kb.xor_(s, s, v);
            kb.ror(v, h[0], 22, u);
            kb.xor_(s, s, v);               // s = S0
            kb.and_(u, h[0], h[1]);
            kb.and_(v, h[0], h[2]);
            kb.xor_(u, u, v);
            kb.and_(v, h[1], h[2]);
            kb.xor_(u, u, v);               // u = Maj
            kb.iadd(t2, s, u);
            // Rotate the state by register renaming; the registers of
            // the dying h and d values are recycled for e' and a'.
            const Reg old_h = h[7], old_d = h[3];
            h[7] = h[6];
            h[6] = h[5];
            h[5] = h[4];
            kb.iadd(old_h, old_d, t1); // e' = d + t1
            h[4] = old_h;
            h[3] = h[2];
            h[2] = h[1];
            h[1] = h[0];
            kb.iadd(old_d, t1, t2);    // a' = t1 + t2
            h[0] = old_d;
        }

        // Fold the state into one output word: xor of (h[i] + H0[i]).
        const Reg acc = kb.reg();
        kb.movi(acc, 0);
        for (unsigned i = 0; i < 8; ++i) {
            kb.iaddi(u, h[i], static_cast<std::int32_t>(kH0[i]));
            kb.xor_(acc, acc, u);
        }

        const Reg base_out = kb.reg(), out_addr = kb.reg();
        kb.movi(base_out, static_cast<std::int32_t>(baseOut_));
        kb.shli(out_addr, gtid, 2);
        kb.iadd(out_addr, out_addr, base_out);
        kb.stg(out_addr, acc);

        prog_ = kb.build();
    }

    std::vector<std::uint32_t> msg_;
    Addr baseMsg_ = 0, baseOut_ = 0;
};

} // namespace

std::unique_ptr<Workload>
makeSha(unsigned blocks)
{
    return std::make_unique<Sha>(blocks);
}

} // namespace workloads
} // namespace warped
