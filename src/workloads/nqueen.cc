/**
 * @file
 * NQueen (Table 4, AI/Simulation): 8-queens solution counting. Each
 * thread exhausts the subtree under one 2-row queen-placement prefix
 * using an iterative bitmask depth-first search with its stack in
 * global scratch memory. Subtree sizes differ wildly across threads,
 * so warps decay into long single-thread tails — the paper's other
 * deeply divergent workload besides BFS.
 */

#include "isa/kernel_builder.hh"
#include "workloads/workload_base.hh"

namespace warped {
namespace workloads {
namespace {

constexpr unsigned kQueens = 8;
constexpr std::int32_t kFull = (1 << kQueens) - 1;
constexpr unsigned kStackWords = 32; // 4 arrays x 8 depths

/** Reference: count solutions under the (c0, c1) prefix. */
std::uint32_t
countRef(unsigned c0, unsigned c1)
{
    struct Rec
    {
        static std::uint32_t
        go(std::uint32_t cols, std::uint32_t ld, std::uint32_t rd,
           unsigned depth)
        {
            if (depth == kQueens)
                return 1;
            std::uint32_t n = 0;
            std::uint32_t poss =
                ~(cols | ld | rd) & static_cast<std::uint32_t>(kFull);
            while (poss) {
                const std::uint32_t bit = poss & (~poss + 1);
                poss ^= bit;
                n += go(cols | bit, (ld | bit) << 1,
                        (rd | bit) >> 1, depth + 1);
            }
            return n;
        }
    };
    const std::uint32_t b0 = 1u << c0;
    const std::uint32_t b1 = 1u << c1;
    const std::uint32_t cols0 = b0, ld0 = b0 << 1, rd0 = b0 >> 1;
    if (b1 & (cols0 | ld0 | rd0))
        return 0;
    return Rec::go(cols0 | b1, (ld0 | b1) << 1, (rd0 | b1) >> 1, 2);
}

class Nqueen final : public WorkloadBase
{
  public:
    explicit Nqueen(unsigned blocks)
        : WorkloadBase("Nqueen", "AI/Simulation")
    {
        block_ = 64; // one thread per 2-row prefix
        grid_ = blocks;
    }

    void
    setup(gpu::Gpu &gpu) override
    {
        const unsigned threads = grid_ * block_;
        baseScratch_ = gpu.allocator().alloc(
            std::size_t{threads} * kStackWords * 4);
        baseOut_ = allocOut(gpu, std::size_t{threads} * 4);
        bytesIn_ += 64; // parameter block only: NQueen is compute-bound
        buildKernel();
    }

    bool
    verify(const gpu::Gpu &gpu) const override
    {
        const unsigned threads = grid_ * block_;
        const auto out =
            download<std::uint32_t>(gpu, baseOut_, threads);
        std::uint64_t total = 0;
        for (unsigned t = 0; t < threads; ++t) {
            const unsigned prefix = t % 64;
            const auto want = countRef(prefix % 8, prefix / 8);
            if (out[t] != want)
                return false;
            total += out[t];
        }
        // All 64 prefixes together enumerate the full board.
        return total == 92ULL * (std::uint64_t{threads} / 64);
    }

  private:
    void
    buildKernel()
    {
        using isa::Reg;
        isa::KernelBuilder kb("nqueen", 48);

        const Reg gtid = kb.reg();
        kb.s2r(gtid, isa::SpecialReg::Gtid);

        const Reg c8 = kb.reg(), c64 = kb.reg();
        kb.movi(c8, 8);
        kb.movi(c64, 64);

        const Reg prefix = kb.reg(), c0 = kb.reg(), c1 = kb.reg();
        kb.imod(prefix, gtid, c64);
        kb.imod(c0, prefix, c8);
        kb.idiv(c1, prefix, c8);

        const Reg one = kb.reg(), b0 = kb.reg(), b1 = kb.reg();
        kb.movi(one, 1);
        kb.shl(b0, one, c0);
        kb.shl(b1, one, c1);

        // Depth-1 attack masks from the row-0 queen.
        const Reg cols = kb.reg(), ld = kb.reg(), rd = kb.reg(),
                  attacked = kb.reg(), p_valid = kb.reg(),
                  zero = kb.reg();
        kb.movi(zero, 0);
        kb.mov(cols, b0);
        kb.shli(ld, b0, 1);
        kb.shri(rd, b0, 1);
        kb.or_(attacked, cols, ld);
        kb.or_(attacked, attacked, rd);
        kb.and_(attacked, attacked, b1);
        kb.isetpEq(p_valid, attacked, zero);

        const Reg count = kb.reg();
        kb.movi(count, 0);

        // Per-thread scratch base: poss at +0, cols at +32B,
        // ld at +64B, rd at +96B (8 words each).
        const Reg scratch = kb.reg(), t = kb.reg();
        kb.movi(t, kStackWords * 4);
        kb.imul(scratch, gtid, t);
        kb.iaddi(scratch, scratch,
                 static_cast<std::int32_t>(baseScratch_));

        const Reg d = kb.reg(), daddr = kb.reg(), p_loop = kb.reg(),
                  poss = kb.reg(), p_has = kb.reg(), bit = kb.reg(),
                  nbit = kb.reg(), p_last = kb.reg(), np = kb.reg(),
                  c7 = kb.reg(), c2 = kb.reg(), full = kb.reg();
        kb.movi(c7, 7);
        kb.movi(c2, 2);
        kb.movi(full, kFull);

        kb.ifThen(p_valid, [&] {
            // Depth-2 state after both prefix queens.
            kb.or_(cols, cols, b1);
            kb.or_(ld, ld, b1);
            kb.shli(ld, ld, 1);
            kb.or_(rd, rd, b1);
            kb.shri(rd, rd, 1);

            // Store the depth-2 frame.
            kb.movi(d, 2);
            auto frame_addr = [&](const Reg &dst, unsigned array) {
                kb.shli(dst, d, 2);
                kb.iadd(dst, dst, scratch);
                if (array)
                    kb.iaddi(dst, dst,
                             static_cast<std::int32_t>(array * 32));
            };
            const Reg fa = kb.reg();
            // poss[2] = ~(cols|ld|rd) & full
            kb.or_(np, cols, ld);
            kb.or_(np, np, rd);
            kb.not_(np, np);
            kb.and_(np, np, full);
            frame_addr(fa, 0);
            kb.stg(fa, np);
            frame_addr(fa, 1);
            kb.stg(fa, cols);
            frame_addr(fa, 2);
            kb.stg(fa, ld);
            frame_addr(fa, 3);
            kb.stg(fa, rd);

            kb.whileLoop([&] { kb.isetpGe(p_loop, d, c2); }, p_loop,
                         [&] {
                frame_addr(daddr, 0);
                kb.ldg(poss, daddr);
                kb.isetpNe(p_has, poss, zero);
                kb.ifThenElse(
                    p_has,
                    [&] {
                        // bit = poss & -poss; poss ^= bit
                        kb.isub(nbit, zero, poss);
                        kb.and_(bit, poss, nbit);
                        kb.xor_(poss, poss, bit);
                        kb.stg(daddr, poss);
                        kb.isetpEq(p_last, d, c7);
                        kb.ifThenElse(
                            p_last,
                            [&] { kb.iaddi(count, count, 1); },
                            [&] {
                                // Descend: child masks from this
                                // frame's stored state.
                                frame_addr(fa, 1);
                                kb.ldg(cols, fa);
                                frame_addr(fa, 2);
                                kb.ldg(ld, fa);
                                frame_addr(fa, 3);
                                kb.ldg(rd, fa);
                                kb.or_(cols, cols, bit);
                                kb.or_(ld, ld, bit);
                                kb.shli(ld, ld, 1);
                                kb.or_(rd, rd, bit);
                                kb.shri(rd, rd, 1);
                                kb.or_(np, cols, ld);
                                kb.or_(np, np, rd);
                                kb.not_(np, np);
                                kb.and_(np, np, full);
                                kb.iaddi(d, d, 1);
                                frame_addr(fa, 0);
                                kb.stg(fa, np);
                                frame_addr(fa, 1);
                                kb.stg(fa, cols);
                                frame_addr(fa, 2);
                                kb.stg(fa, ld);
                                frame_addr(fa, 3);
                                kb.stg(fa, rd);
                            });
                    },
                    [&] { kb.iaddi(d, d, -1); });
            });
        });

        const Reg base_out = kb.reg(), out_addr = kb.reg();
        kb.movi(base_out, static_cast<std::int32_t>(baseOut_));
        kb.shli(out_addr, gtid, 2);
        kb.iadd(out_addr, out_addr, base_out);
        kb.stg(out_addr, count);

        prog_ = kb.build();
    }

    Addr baseScratch_ = 0, baseOut_ = 0;
};

} // namespace

std::unique_ptr<Workload>
makeNqueen(unsigned blocks)
{
    return std::make_unique<Nqueen>(blocks);
}

} // namespace workloads
} // namespace warped
