#include "isa/program.hh"

#include <sstream>

#include "common/logging.hh"

namespace warped {
namespace isa {

Program::Program(std::string name, std::vector<Instruction> instrs,
                 unsigned num_regs, unsigned shared_bytes)
    : name_(std::move(name)), instrs_(std::move(instrs)),
      numRegs_(num_regs), sharedBytes_(shared_bytes)
{
}

void
Program::validate() const
{
    if (instrs_.empty())
        warped_fatal("program '", name_, "' is empty");

    bool has_exit = false;
    for (Pc pc = 0; pc < size(); ++pc) {
        const auto &in = instrs_[pc];
        if (in.op == Opcode::EXIT)
            has_exit = true;
        if (in.isBranch()) {
            if (in.target == kNoPc || in.target >= size())
                warped_fatal("program '", name_, "': branch at pc ", pc,
                             " has invalid target");
            if (in.op != Opcode::BRA &&
                (in.reconv == kNoPc || in.reconv > size()))
                warped_fatal("program '", name_,
                             "': conditional branch at pc ", pc,
                             " lacks a reconvergence point");
        }
        if (in.hasDst() && in.dst.idx >= numRegs_)
            warped_fatal("program '", name_, "': pc ", pc,
                         " writes r", unsigned(in.dst.idx),
                         " outside the ", numRegs_, "-register window");
        for (unsigned s = 0; s < in.numSrcs(); ++s) {
            if (in.src[s].idx >= numRegs_)
                warped_fatal("program '", name_, "': pc ", pc,
                             " reads r", unsigned(in.src[s].idx),
                             " outside the register window");
        }
    }
    if (!has_exit)
        warped_fatal("program '", name_, "' has no EXIT");
}

std::string
Program::disassemble() const
{
    std::ostringstream os;
    os << ".kernel " << name_ << "  (regs " << numRegs_ << ", shared "
       << sharedBytes_ << "B)\n";
    for (Pc pc = 0; pc < size(); ++pc)
        os << "  " << pc << ":\t" << instrs_[pc].toString() << "\n";
    return os.str();
}

} // namespace isa
} // namespace warped
