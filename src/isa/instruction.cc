#include "isa/instruction.hh"

#include <sstream>

namespace warped {
namespace isa {

std::string
Instruction::toString() const
{
    std::ostringstream os;
    os << opcodeName(op);
    bool first = true;
    auto sep = [&]() -> std::ostringstream & {
        os << (first ? " " : ", ");
        first = false;
        return os;
    };
    if (hasDst())
        sep() << "r" << unsigned(dst.idx);
    for (unsigned i = 0; i < numSrcs(); ++i)
        sep() << "r" << unsigned(src[i].idx);
    if (op == Opcode::MOVI || op == Opcode::S2R ||
        op == Opcode::IADDI || op == Opcode::SHLI ||
        op == Opcode::SHRI || op == Opcode::ANDI ||
        opcodeIsShuffle(op))
        sep() << "#" << imm;
    if (isMem())
        sep() << "[r" << unsigned(src[0].idx) << (imm >= 0 ? "+" : "")
              << imm << "]";
    if (isBranch()) {
        sep() << "-> " << target;
        if (reconv != kNoPc)
            os << " (reconv " << reconv << ")";
    }
    return os.str();
}

} // namespace isa
} // namespace warped
