/**
 * @file
 * A kernel program: the instruction stream plus resource metadata.
 */

#ifndef WARPED_ISA_PROGRAM_HH
#define WARPED_ISA_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/instruction.hh"

namespace warped {
namespace isa {

/**
 * An immutable kernel image produced by the KernelBuilder.
 */
class Program
{
  public:
    Program() = default;
    Program(std::string name, std::vector<Instruction> instrs,
            unsigned num_regs, unsigned shared_bytes);

    const std::string &name() const { return name_; }
    const std::vector<Instruction> &instructions() const { return instrs_; }
    const Instruction &at(Pc pc) const { return instrs_.at(pc); }
    Pc size() const { return static_cast<Pc>(instrs_.size()); }
    bool empty() const { return instrs_.empty(); }

    /** Registers per thread this kernel requires. */
    unsigned numRegs() const { return numRegs_; }

    /** Shared-memory bytes per thread block. */
    unsigned sharedBytes() const { return sharedBytes_; }

    /**
     * Structural validation: branch targets in range, register indices
     * within numRegs, a reachable EXIT present. Calls warped_fatal on
     * violation.
     */
    void validate() const;

    /** Full disassembly listing. */
    std::string disassemble() const;

  private:
    std::string name_;
    std::vector<Instruction> instrs_;
    unsigned numRegs_ = 0;
    unsigned sharedBytes_ = 0;
};

} // namespace isa
} // namespace warped

#endif // WARPED_ISA_PROGRAM_HH
