/**
 * @file
 * Structured assembler for the mini-ISA.
 *
 * The builder emits instructions sequentially and provides structured
 * control-flow helpers (ifThen / ifThenElse / whileLoop / forCounter)
 * that compute branch targets and immediate-post-dominator
 * reconvergence PCs automatically, so every divergent branch the
 * workloads produce is correctly reconverged by the SIMT stack.
 */

#ifndef WARPED_ISA_KERNEL_BUILDER_HH
#define WARPED_ISA_KERNEL_BUILDER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "isa/program.hh"

namespace warped {
namespace isa {

class KernelBuilder
{
  public:
    /**
     * @param name      kernel name (diagnostics)
     * @param max_regs  register window per thread
     */
    explicit KernelBuilder(std::string name, unsigned max_regs = 32);

    /** Allocate the next unused register. */
    Reg reg();

    /** Reserve @p bytes of per-block shared memory; returns the base
     *  byte offset of the reservation. */
    unsigned shared(unsigned bytes);

    // ---- integer ALU -----------------------------------------------
    void iadd(Reg d, Reg a, Reg b) { emit3(Opcode::IADD, d, a, b); }
    void isub(Reg d, Reg a, Reg b) { emit3(Opcode::ISUB, d, a, b); }
    void imul(Reg d, Reg a, Reg b) { emit3(Opcode::IMUL, d, a, b); }
    void imad(Reg d, Reg a, Reg b, Reg c)
    { emit4(Opcode::IMAD, d, a, b, c); }
    void idiv(Reg d, Reg a, Reg b) { emit3(Opcode::IDIV, d, a, b); }
    void imod(Reg d, Reg a, Reg b) { emit3(Opcode::IMOD, d, a, b); }
    void imin(Reg d, Reg a, Reg b) { emit3(Opcode::IMIN, d, a, b); }
    void imax(Reg d, Reg a, Reg b) { emit3(Opcode::IMAX, d, a, b); }
    void and_(Reg d, Reg a, Reg b) { emit3(Opcode::AND, d, a, b); }
    void or_(Reg d, Reg a, Reg b) { emit3(Opcode::OR, d, a, b); }
    void xor_(Reg d, Reg a, Reg b) { emit3(Opcode::XOR, d, a, b); }
    void not_(Reg d, Reg a) { emit2(Opcode::NOT, d, a); }
    void shl(Reg d, Reg a, Reg b) { emit3(Opcode::SHL, d, a, b); }
    void shr(Reg d, Reg a, Reg b) { emit3(Opcode::SHR, d, a, b); }
    void sra(Reg d, Reg a, Reg b) { emit3(Opcode::SRA, d, a, b); }
    void isetpEq(Reg d, Reg a, Reg b) { emit3(Opcode::ISETP_EQ, d, a, b); }
    void isetpNe(Reg d, Reg a, Reg b) { emit3(Opcode::ISETP_NE, d, a, b); }
    void isetpLt(Reg d, Reg a, Reg b) { emit3(Opcode::ISETP_LT, d, a, b); }
    void isetpLe(Reg d, Reg a, Reg b) { emit3(Opcode::ISETP_LE, d, a, b); }
    void isetpGt(Reg d, Reg a, Reg b) { emit3(Opcode::ISETP_GT, d, a, b); }
    void isetpGe(Reg d, Reg a, Reg b) { emit3(Opcode::ISETP_GE, d, a, b); }
    void sel(Reg d, Reg cond, Reg t, Reg f)
    { emit4(Opcode::SEL, d, cond, t, f); }
    void mov(Reg d, Reg a) { emit2(Opcode::MOV, d, a); }
    void movi(Reg d, std::int32_t imm);
    void movf(Reg d, float value);
    void iaddi(Reg d, Reg a, std::int32_t imm);
    void shli(Reg d, Reg a, std::int32_t imm);
    void shri(Reg d, Reg a, std::int32_t imm);
    void andi(Reg d, Reg a, std::int32_t imm);
    /** d = rotate-right(a, r) — three SP instructions. */
    void ror(Reg d, Reg a, unsigned r, Reg scratch);
    void s2r(Reg d, SpecialReg sr);
    void i2f(Reg d, Reg a) { emit2(Opcode::I2F, d, a); }
    void f2i(Reg d, Reg a) { emit2(Opcode::F2I, d, a); }
    /** d = a of the warp slot (own XOR mask); inactive/out-of-warp
     *  sources return the lane's own value (CUDA __shfl_xor). */
    void shflXor(Reg d, Reg a, std::int32_t mask);
    /** d = a of warp slot (own + delta), clamped to the warp. */
    void shflDown(Reg d, Reg a, std::int32_t delta);

    // ---- floating point --------------------------------------------
    void fadd(Reg d, Reg a, Reg b) { emit3(Opcode::FADD, d, a, b); }
    void fsub(Reg d, Reg a, Reg b) { emit3(Opcode::FSUB, d, a, b); }
    void fmul(Reg d, Reg a, Reg b) { emit3(Opcode::FMUL, d, a, b); }
    void ffma(Reg d, Reg a, Reg b, Reg c)
    { emit4(Opcode::FFMA, d, a, b, c); }
    void fmin(Reg d, Reg a, Reg b) { emit3(Opcode::FMIN, d, a, b); }
    void fmax(Reg d, Reg a, Reg b) { emit3(Opcode::FMAX, d, a, b); }
    void fneg(Reg d, Reg a) { emit2(Opcode::FNEG, d, a); }
    void fsetpEq(Reg d, Reg a, Reg b) { emit3(Opcode::FSETP_EQ, d, a, b); }
    void fsetpNe(Reg d, Reg a, Reg b) { emit3(Opcode::FSETP_NE, d, a, b); }
    void fsetpLt(Reg d, Reg a, Reg b) { emit3(Opcode::FSETP_LT, d, a, b); }
    void fsetpLe(Reg d, Reg a, Reg b) { emit3(Opcode::FSETP_LE, d, a, b); }
    void fsetpGt(Reg d, Reg a, Reg b) { emit3(Opcode::FSETP_GT, d, a, b); }
    void fsetpGe(Reg d, Reg a, Reg b) { emit3(Opcode::FSETP_GE, d, a, b); }

    // ---- SFU --------------------------------------------------------
    void sin(Reg d, Reg a) { emit2(Opcode::SIN, d, a); }
    void cos(Reg d, Reg a) { emit2(Opcode::COS, d, a); }
    void sqrt(Reg d, Reg a) { emit2(Opcode::SQRT, d, a); }
    void rsqrt(Reg d, Reg a) { emit2(Opcode::RSQRT, d, a); }
    void ex2(Reg d, Reg a) { emit2(Opcode::EX2, d, a); }
    void lg2(Reg d, Reg a) { emit2(Opcode::LG2, d, a); }
    void rcp(Reg d, Reg a) { emit2(Opcode::RCP, d, a); }

    // ---- memory: address is [addr + offset] bytes -------------------
    void ldg(Reg d, Reg addr, std::int32_t offset = 0);
    void stg(Reg addr, Reg value, std::int32_t offset = 0);
    void lds(Reg d, Reg addr, std::int32_t offset = 0);
    void sts(Reg addr, Reg value, std::int32_t offset = 0);

    // ---- control ----------------------------------------------------
    void bar();
    void exit();
    void nop();

    using BodyFn = std::function<void()>;

    /** if (pred != 0) { then_body() } — divergent, reconverged. */
    void ifThen(Reg pred, const BodyFn &then_body);

    /** if (pred != 0) { then } else { else } — divergent, reconverged. */
    void ifThenElse(Reg pred, const BodyFn &then_body,
                    const BodyFn &else_body);

    /**
     * while-loop. @p cond_body must (re)compute the loop predicate
     * into @p pred each iteration; the loop runs while pred != 0.
     */
    void whileLoop(const BodyFn &cond_body, Reg pred,
                   const BodyFn &loop_body);

    /**
     * Counted loop: for (i = first; i < limit; i += step) body().
     * @p i must be a dedicated register; @p limit is a register the
     * body must not clobber.
     */
    void forCounter(Reg i, std::int32_t first, Reg limit,
                    std::int32_t step, const BodyFn &loop_body);

    /** Number of instructions emitted so far (the next PC). */
    Pc here() const { return static_cast<Pc>(instrs_.size()); }

    /** Finalize: appends EXIT if missing, validates, returns program. */
    Program build();

  private:
    void emit2(Opcode op, Reg d, Reg a);
    void emit3(Opcode op, Reg d, Reg a, Reg b);
    void emit4(Opcode op, Reg d, Reg a, Reg b, Reg c);
    Pc emitBranch(Opcode op, Reg pred);
    void patchTarget(Pc branch_pc, Pc target);
    void patchReconv(Pc branch_pc, Pc reconv);

    std::string name_;
    unsigned maxRegs_;
    unsigned nextReg_ = 0;
    unsigned sharedBytes_ = 0;
    std::vector<Instruction> instrs_;
};

} // namespace isa
} // namespace warped

#endif // WARPED_ISA_KERNEL_BUILDER_HH
