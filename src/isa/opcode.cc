#include "isa/opcode.hh"

#include <array>

namespace warped {
namespace isa {

namespace {

struct OpInfo
{
    const char *name;
    UnitType unit;
    std::uint8_t nSrcs;
    bool hasDst;
    bool isBranch;
};

constexpr std::array kOpTable = {
#define WARPED_OP_INFO(name, unit, nsrc, hasdst, isbr) \
    OpInfo{#name, UnitType::unit, nsrc, hasdst != 0, isbr != 0},
    WARPED_OPCODE_TABLE(WARPED_OP_INFO)
#undef WARPED_OP_INFO
};

const OpInfo &
info(Opcode op)
{
    return kOpTable[static_cast<std::size_t>(op)];
}

} // namespace

const char *
unitTypeName(UnitType t)
{
    switch (t) {
      case UnitType::SP:
        return "SP";
      case UnitType::SFU:
        return "SFU";
      case UnitType::LDST:
        return "LD/ST";
    }
    return "?";
}

unsigned
opcodeCount()
{
    return kOpTable.size();
}

const char *
opcodeName(Opcode op)
{
    return info(op).name;
}

UnitType
opcodeUnit(Opcode op)
{
    return info(op).unit;
}

unsigned
opcodeNumSrcs(Opcode op)
{
    return info(op).nSrcs;
}

bool
opcodeHasDst(Opcode op)
{
    return info(op).hasDst;
}

bool
opcodeIsBranch(Opcode op)
{
    return info(op).isBranch;
}

bool
opcodeIsLoad(Opcode op)
{
    return op == Opcode::LDG || op == Opcode::LDS;
}

bool
opcodeIsStore(Opcode op)
{
    return op == Opcode::STG || op == Opcode::STS;
}

bool
opcodeIsSharedMem(Opcode op)
{
    return op == Opcode::LDS || op == Opcode::STS;
}

bool
opcodeIsShuffle(Opcode op)
{
    return op == Opcode::SHFL_XOR || op == Opcode::SHFL_DOWN;
}

} // namespace isa
} // namespace warped
