#include "isa/opcode.hh"

namespace warped {
namespace isa {

namespace {

constexpr const char *kOpNames[] = {
#define WARPED_OP_NAME(name, unit, nsrc, hasdst, isbr) #name,
    WARPED_OPCODE_TABLE(WARPED_OP_NAME)
#undef WARPED_OP_NAME
};

} // namespace

const char *
unitTypeName(UnitType t)
{
    switch (t) {
      case UnitType::SP:
        return "SP";
      case UnitType::SFU:
        return "SFU";
      case UnitType::LDST:
        return "LD/ST";
    }
    return "?";
}

const char *
opcodeName(Opcode op)
{
    return kOpNames[static_cast<std::size_t>(op)];
}

} // namespace isa
} // namespace warped
