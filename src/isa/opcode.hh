/**
 * @file
 * The mini-ISA opcode set and its classification into the three
 * execution-unit types the paper's scheduler feeds (SP, SFU, LD/ST).
 *
 * The set is modeled after the PTX/SASS subset that the Table-4
 * workloads need: integer and floating-point arithmetic incl. the
 * 3R1W multiply-add, transcendentals on the SFU, global/shared
 * loads/stores, and structured control flow.
 */

#ifndef WARPED_ISA_OPCODE_HH
#define WARPED_ISA_OPCODE_HH

#include <cstdint>

namespace warped {
namespace isa {

/**
 * Execution-unit type. One warp scheduler feeds all three (paper §2.2),
 * which is the source of the heterogeneous-unit idleness inter-warp
 * DMR exploits. Control instructions execute on the SP datapath.
 */
enum class UnitType : std::uint8_t { SP = 0, SFU = 1, LDST = 2 };

/** Number of distinct execution-unit types. */
constexpr unsigned kNumUnitTypes = 3;

const char *unitTypeName(UnitType t);

/**
 * X-macro opcode table: OP(name, unit, nSrcs, hasDst, isBranch).
 * Keeping the table in one place keeps the disassembler, the
 * functional executor dispatch and the validators consistent.
 */
#define WARPED_OPCODE_TABLE(OP) \
    /* integer SP */ \
    OP(IADD,  SP,   2, 1, 0) \
    OP(ISUB,  SP,   2, 1, 0) \
    OP(IMUL,  SP,   2, 1, 0) \
    OP(IMAD,  SP,   3, 1, 0) \
    OP(IDIV,  SP,   2, 1, 0) \
    OP(IMOD,  SP,   2, 1, 0) \
    OP(IMIN,  SP,   2, 1, 0) \
    OP(IMAX,  SP,   2, 1, 0) \
    OP(AND,   SP,   2, 1, 0) \
    OP(OR,    SP,   2, 1, 0) \
    OP(XOR,   SP,   2, 1, 0) \
    OP(NOT,   SP,   1, 1, 0) \
    OP(SHL,   SP,   2, 1, 0) \
    OP(SHR,   SP,   2, 1, 0) \
    OP(SRA,   SP,   2, 1, 0) \
    OP(SHLI,  SP,   1, 1, 0) \
    OP(SHRI,  SP,   1, 1, 0) \
    OP(ANDI,  SP,   1, 1, 0) \
    OP(ISETP_EQ, SP, 2, 1, 0) \
    OP(ISETP_NE, SP, 2, 1, 0) \
    OP(ISETP_LT, SP, 2, 1, 0) \
    OP(ISETP_LE, SP, 2, 1, 0) \
    OP(ISETP_GT, SP, 2, 1, 0) \
    OP(ISETP_GE, SP, 2, 1, 0) \
    OP(SEL,   SP,   3, 1, 0) \
    OP(MOV,   SP,   1, 1, 0) \
    OP(MOVI,  SP,   0, 1, 0) \
    OP(IADDI, SP,   1, 1, 0) \
    OP(S2R,   SP,   0, 1, 0) \
    OP(I2F,   SP,   1, 1, 0) \
    OP(F2I,   SP,   1, 1, 0) \
    OP(SHFL_XOR,  SP, 1, 1, 0) \
    OP(SHFL_DOWN, SP, 1, 1, 0) \
    /* floating point SP */ \
    OP(FADD,  SP,   2, 1, 0) \
    OP(FSUB,  SP,   2, 1, 0) \
    OP(FMUL,  SP,   2, 1, 0) \
    OP(FFMA,  SP,   3, 1, 0) \
    OP(FMIN,  SP,   2, 1, 0) \
    OP(FMAX,  SP,   2, 1, 0) \
    OP(FNEG,  SP,   1, 1, 0) \
    OP(FSETP_EQ, SP, 2, 1, 0) \
    OP(FSETP_NE, SP, 2, 1, 0) \
    OP(FSETP_LT, SP, 2, 1, 0) \
    OP(FSETP_LE, SP, 2, 1, 0) \
    OP(FSETP_GT, SP, 2, 1, 0) \
    OP(FSETP_GE, SP, 2, 1, 0) \
    /* special function unit */ \
    OP(SIN,   SFU,  1, 1, 0) \
    OP(COS,   SFU,  1, 1, 0) \
    OP(SQRT,  SFU,  1, 1, 0) \
    OP(RSQRT, SFU,  1, 1, 0) \
    OP(EX2,   SFU,  1, 1, 0) \
    OP(LG2,   SFU,  1, 1, 0) \
    OP(RCP,   SFU,  1, 1, 0) \
    /* memory */ \
    OP(LDG,   LDST, 1, 1, 0) \
    OP(STG,   LDST, 2, 0, 0) \
    OP(LDS,   LDST, 1, 1, 0) \
    OP(STS,   LDST, 2, 0, 0) \
    /* control (SP datapath) */ \
    OP(BRA,   SP,   0, 0, 1) \
    OP(BRZ,   SP,   1, 0, 1) \
    OP(BRNZ,  SP,   1, 0, 1) \
    OP(BAR,   SP,   0, 0, 0) \
    OP(EXIT,  SP,   0, 0, 0) \
    OP(NOP,   SP,   0, 0, 0)

enum class Opcode : std::uint8_t
{
#define WARPED_OP_ENUM(name, unit, nsrc, hasdst, isbr) name,
    WARPED_OPCODE_TABLE(WARPED_OP_ENUM)
#undef WARPED_OP_ENUM
};

namespace detail {

/** Static per-opcode properties, indexed by Opcode value. */
struct OpInfo
{
    UnitType unit;
    std::uint8_t nSrcs;
    bool hasDst;
    bool isBranch;
};

inline constexpr OpInfo kOpInfo[] = {
#define WARPED_OP_INFO(name, unit, nsrc, hasdst, isbr) \
    OpInfo{UnitType::unit, nsrc, hasdst != 0, isbr != 0},
    WARPED_OPCODE_TABLE(WARPED_OP_INFO)
#undef WARPED_OP_INFO
};

} // namespace detail

/** Number of opcodes in the ISA. */
constexpr unsigned
opcodeCount()
{
    return sizeof(detail::kOpInfo) / sizeof(detail::kOpInfo[0]);
}

/** Mnemonic for disassembly/diagnostics. */
const char *opcodeName(Opcode op);

// The classification predicates below sit on the per-lane execute and
// per-issue schedule paths (hundreds of calls per simulated cycle), so
// they are constexpr table/compare lookups rather than out-of-line
// functions.

/** Which execution unit the opcode occupies. */
constexpr UnitType
opcodeUnit(Opcode op)
{
    return detail::kOpInfo[static_cast<std::size_t>(op)].unit;
}

/** Number of register source operands (0..3). */
constexpr unsigned
opcodeNumSrcs(Opcode op)
{
    return detail::kOpInfo[static_cast<std::size_t>(op)].nSrcs;
}

/** True when the opcode writes a destination register. */
constexpr bool
opcodeHasDst(Opcode op)
{
    return detail::kOpInfo[static_cast<std::size_t>(op)].hasDst;
}

/** True for BRA/BRZ/BRNZ. */
constexpr bool
opcodeIsBranch(Opcode op)
{
    return detail::kOpInfo[static_cast<std::size_t>(op)].isBranch;
}

/** True for LDG/LDS (register write arrives from memory). */
constexpr bool
opcodeIsLoad(Opcode op)
{
    return op == Opcode::LDG || op == Opcode::LDS;
}

/** True for STG/STS. */
constexpr bool
opcodeIsStore(Opcode op)
{
    return op == Opcode::STG || op == Opcode::STS;
}

/** True for operations touching shared (vs global) memory. */
constexpr bool
opcodeIsSharedMem(Opcode op)
{
    return op == Opcode::LDS || op == Opcode::STS;
}

/** True for the warp-shuffle cross-lane reads (SHFL_*). */
constexpr bool
opcodeIsShuffle(Opcode op)
{
    return op == Opcode::SHFL_XOR || op == Opcode::SHFL_DOWN;
}

/**
 * Special values readable via S2R (selector stored in the
 * instruction's immediate field).
 */
enum class SpecialReg : std::uint8_t
{
    Tid = 0,    ///< thread index within the block
    Ctaid = 1,  ///< block index within the grid
    Ntid = 2,   ///< threads per block
    Nctaid = 3, ///< blocks in the grid
    LaneId = 4, ///< lane within the warp (pre-mapping thread slot)
    WarpId = 5, ///< warp index within the block
    Gtid = 6,   ///< global thread id = ctaid * ntid + tid
};

} // namespace isa
} // namespace warped

#endif // WARPED_ISA_OPCODE_HH
