/**
 * @file
 * Text assembler: parses the disassembly format Program::disassemble
 * emits, so kernels can live in standalone text files and round-trip
 * losslessly. Grammar (one instruction per line):
 *
 *   .kernel <name>  (regs <N>, shared <M>B)
 *     <pc>:  MNEMONIC [rD][, rS...][, #imm][, [rA+off]]
 *            [-> target [(reconv R)]]
 *
 * Operand shape is dictated by the opcode's metadata (the same
 * X-macro table the disassembler uses), so the parser accepts exactly
 * what the printer produces.
 */

#ifndef WARPED_ISA_ASSEMBLER_HH
#define WARPED_ISA_ASSEMBLER_HH

#include <string>

#include "isa/program.hh"

namespace warped {
namespace isa {

/**
 * Parse a program from its textual form. Calls warped_fatal with a
 * line-numbered message on any syntax or consistency error; the
 * returned program has passed Program::validate().
 */
Program parseProgram(const std::string &text);

/** Look up an opcode by mnemonic; fatal on unknown names. */
Opcode opcodeFromName(const std::string &name);

} // namespace isa
} // namespace warped

#endif // WARPED_ISA_ASSEMBLER_HH
