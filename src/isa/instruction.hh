/**
 * @file
 * A single mini-ISA instruction.
 */

#ifndef WARPED_ISA_INSTRUCTION_HH
#define WARPED_ISA_INSTRUCTION_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "isa/opcode.hh"

namespace warped {
namespace isa {

/** A typed register handle, to keep workload code readable. */
struct Reg
{
    RegIndex idx = 0;
    constexpr bool operator==(const Reg &) const = default;
};

/** Sentinel PC meaning "no target / no reconvergence point". */
constexpr Pc kNoPc = ~Pc{0};

/**
 * One decoded instruction. Addressing for memory operations is
 * [src0 + imm]; MOVI materializes the immediate; branch instructions
 * carry both the branch target and the immediate-post-dominator
 * reconvergence PC computed by the KernelBuilder.
 */
struct Instruction
{
    Opcode op = Opcode::NOP;
    Reg dst;
    Reg src[3];
    std::int32_t imm = 0;
    Pc target = kNoPc;  ///< branch target
    Pc reconv = kNoPc;  ///< reconvergence PC for potentially divergent
                        ///< branches

    UnitType unit() const { return opcodeUnit(op); }
    unsigned numSrcs() const { return opcodeNumSrcs(op); }
    bool hasDst() const { return opcodeHasDst(op); }
    bool isBranch() const { return opcodeIsBranch(op); }
    bool isLoad() const { return opcodeIsLoad(op); }
    bool isStore() const { return opcodeIsStore(op); }
    bool isMem() const { return isLoad() || isStore(); }

    /** Disassemble to a human-readable string. */
    std::string toString() const;
};

} // namespace isa
} // namespace warped

#endif // WARPED_ISA_INSTRUCTION_HH
