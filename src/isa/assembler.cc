#include "isa/assembler.hh"

#include <cctype>
#include <map>
#include <sstream>

#include "common/logging.hh"

namespace warped {
namespace isa {

namespace {

/** Cursor over one instruction line. */
class LineParser
{
  public:
    LineParser(const std::string &line, unsigned line_no)
        : s_(line), lineNo_(line_no)
    {
    }

    [[noreturn]] void
    fail(const std::string &what) const
    {
        warped_fatal("assembler: line ", lineNo_, ": ", what, " in '",
                     s_, "'");
    }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t'))
            ++pos_;
    }

    bool
    tryConsume(char c)
    {
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    void
    consume(char c)
    {
        if (!tryConsume(c))
            fail(std::string("expected '") + c + "'");
    }

    bool
    tryConsumeWord(const std::string &w)
    {
        skipWs();
        if (s_.compare(pos_, w.size(), w) == 0) {
            pos_ += w.size();
            return true;
        }
        return false;
    }

    std::string
    word()
    {
        skipWs();
        std::size_t start = pos_;
        while (pos_ < s_.size() &&
               (std::isalnum(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '_' || s_[pos_] == '.'))
            ++pos_;
        if (pos_ == start)
            fail("expected a word");
        return s_.substr(start, pos_ - start);
    }

    std::int64_t
    integer()
    {
        skipWs();
        std::size_t start = pos_;
        if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+'))
            ++pos_;
        while (pos_ < s_.size() &&
               std::isdigit(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
        if (pos_ == start)
            fail("expected an integer");
        return std::stoll(s_.substr(start, pos_ - start));
    }

    Reg
    reg()
    {
        skipWs();
        if (pos_ >= s_.size() || s_[pos_] != 'r')
            fail("expected a register");
        ++pos_;
        const auto v = integer();
        if (v < 0 || v > 255)
            fail("register index out of range");
        return Reg{static_cast<RegIndex>(v)};
    }

    bool
    atEnd()
    {
        skipWs();
        return pos_ >= s_.size();
    }

  private:
    const std::string &s_;
    std::size_t pos_ = 0;
    unsigned lineNo_;
};

const std::map<std::string, Opcode> &
nameTable()
{
    static const std::map<std::string, Opcode> table = [] {
        std::map<std::string, Opcode> t;
        for (unsigned i = 0; i < opcodeCount(); ++i) {
            const auto op = static_cast<Opcode>(i);
            t.emplace(opcodeName(op), op);
        }
        return t;
    }();
    return table;
}

bool
printsImm(Opcode op)
{
    return op == Opcode::MOVI || op == Opcode::S2R ||
           op == Opcode::IADDI || op == Opcode::SHLI ||
           op == Opcode::SHRI || op == Opcode::ANDI ||
           opcodeIsShuffle(op);
}

} // namespace

Opcode
opcodeFromName(const std::string &name)
{
    const auto &t = nameTable();
    const auto it = t.find(name);
    if (it == t.end())
        warped_fatal("assembler: unknown mnemonic '", name, "'");
    return it->second;
}

Program
parseProgram(const std::string &text)
{
    std::istringstream in(text);
    std::string line;
    unsigned line_no = 0;

    std::string name = "parsed";
    unsigned num_regs = 0, shared_bytes = 0;
    bool have_header = false;
    std::vector<Instruction> instrs;

    while (std::getline(in, line)) {
        ++line_no;
        LineParser lp(line, line_no);
        if (lp.atEnd())
            continue;

        if (lp.tryConsumeWord(".kernel")) {
            name = lp.word();
            lp.consume('(');
            if (!lp.tryConsumeWord("regs"))
                lp.fail("expected 'regs'");
            num_regs = static_cast<unsigned>(lp.integer());
            lp.consume(',');
            if (!lp.tryConsumeWord("shared"))
                lp.fail("expected 'shared'");
            shared_bytes = static_cast<unsigned>(lp.integer());
            lp.consume('B');
            lp.consume(')');
            have_header = true;
            continue;
        }

        // "<pc>: MNEMONIC operands"
        const auto pc = lp.integer();
        lp.consume(':');
        if (static_cast<std::size_t>(pc) != instrs.size())
            lp.fail("instructions must be listed in PC order");

        Instruction ins;
        ins.op = opcodeFromName(lp.word());

        bool first = true;
        auto sep = [&] {
            if (!first)
                lp.consume(',');
            first = false;
        };

        if (ins.hasDst()) {
            sep();
            ins.dst = lp.reg();
        }
        for (unsigned s = 0; s < ins.numSrcs(); ++s) {
            sep();
            ins.src[s] = lp.reg();
        }
        if (printsImm(ins.op)) {
            sep();
            lp.consume('#');
            ins.imm = static_cast<std::int32_t>(lp.integer());
        }
        if (ins.isMem()) {
            sep();
            lp.consume('[');
            const Reg base = lp.reg();
            if (base.idx != ins.src[0].idx)
                lp.fail("address base must match the first source");
            ins.imm = static_cast<std::int32_t>(lp.integer());
            lp.consume(']');
        }
        if (ins.isBranch()) {
            lp.tryConsume(','); // the printer separates with ", "
            lp.consume('-');
            lp.consume('>');
            ins.target = static_cast<Pc>(lp.integer());
            if (lp.tryConsume('(')) {
                if (!lp.tryConsumeWord("reconv"))
                    lp.fail("expected 'reconv'");
                ins.reconv = static_cast<Pc>(lp.integer());
                lp.consume(')');
            }
        }
        if (!lp.atEnd())
            lp.fail("trailing characters");
        instrs.push_back(ins);
    }

    if (!have_header)
        warped_fatal("assembler: missing .kernel header");

    Program p(name, std::move(instrs), num_regs, shared_bytes);
    p.validate();
    return p;
}

} // namespace isa
} // namespace warped
