#include "isa/kernel_builder.hh"

#include "common/logging.hh"

namespace warped {
namespace isa {

KernelBuilder::KernelBuilder(std::string name, unsigned max_regs)
    : name_(std::move(name)), maxRegs_(max_regs)
{
}

Reg
KernelBuilder::reg()
{
    if (nextReg_ >= maxRegs_)
        warped_fatal("kernel '", name_, "': out of registers (window ",
                     maxRegs_, ")");
    return Reg{static_cast<RegIndex>(nextReg_++)};
}

unsigned
KernelBuilder::shared(unsigned bytes)
{
    const unsigned base = sharedBytes_;
    // Keep 4-byte alignment for word accesses.
    sharedBytes_ += (bytes + 3u) & ~3u;
    return base;
}

void
KernelBuilder::emit2(Opcode op, Reg d, Reg a)
{
    Instruction in;
    in.op = op;
    in.dst = d;
    in.src[0] = a;
    instrs_.push_back(in);
}

void
KernelBuilder::emit3(Opcode op, Reg d, Reg a, Reg b)
{
    Instruction in;
    in.op = op;
    in.dst = d;
    in.src[0] = a;
    in.src[1] = b;
    instrs_.push_back(in);
}

void
KernelBuilder::emit4(Opcode op, Reg d, Reg a, Reg b, Reg c)
{
    Instruction in;
    in.op = op;
    in.dst = d;
    in.src[0] = a;
    in.src[1] = b;
    in.src[2] = c;
    instrs_.push_back(in);
}

void
KernelBuilder::movi(Reg d, std::int32_t imm)
{
    Instruction in;
    in.op = Opcode::MOVI;
    in.dst = d;
    in.imm = imm;
    instrs_.push_back(in);
}

void
KernelBuilder::movf(Reg d, float value)
{
    movi(d, static_cast<std::int32_t>(asReg(value)));
}

void
KernelBuilder::iaddi(Reg d, Reg a, std::int32_t imm)
{
    Instruction in;
    in.op = Opcode::IADDI;
    in.dst = d;
    in.src[0] = a;
    in.imm = imm;
    instrs_.push_back(in);
}

void
KernelBuilder::shli(Reg d, Reg a, std::int32_t imm)
{
    Instruction in;
    in.op = Opcode::SHLI;
    in.dst = d;
    in.src[0] = a;
    in.imm = imm;
    instrs_.push_back(in);
}

void
KernelBuilder::shri(Reg d, Reg a, std::int32_t imm)
{
    Instruction in;
    in.op = Opcode::SHRI;
    in.dst = d;
    in.src[0] = a;
    in.imm = imm;
    instrs_.push_back(in);
}

void
KernelBuilder::andi(Reg d, Reg a, std::int32_t imm)
{
    Instruction in;
    in.op = Opcode::ANDI;
    in.dst = d;
    in.src[0] = a;
    in.imm = imm;
    instrs_.push_back(in);
}

void
KernelBuilder::ror(Reg d, Reg a, unsigned r, Reg scratch)
{
    if (r == 0 || r >= 32)
        warped_fatal("kernel '", name_, "': ror amount must be 1..31");
    if (scratch == a || scratch == d)
        warped_fatal("kernel '", name_,
                     "': ror scratch register must be distinct");
    shri(scratch, a, static_cast<std::int32_t>(r));
    shli(d, a, static_cast<std::int32_t>(32 - r));
    or_(d, d, scratch);
}

void
KernelBuilder::shflXor(Reg d, Reg a, std::int32_t mask)
{
    Instruction in;
    in.op = Opcode::SHFL_XOR;
    in.dst = d;
    in.src[0] = a;
    in.imm = mask;
    instrs_.push_back(in);
}

void
KernelBuilder::shflDown(Reg d, Reg a, std::int32_t delta)
{
    Instruction in;
    in.op = Opcode::SHFL_DOWN;
    in.dst = d;
    in.src[0] = a;
    in.imm = delta;
    instrs_.push_back(in);
}

void
KernelBuilder::s2r(Reg d, SpecialReg sr)
{
    Instruction in;
    in.op = Opcode::S2R;
    in.dst = d;
    in.imm = static_cast<std::int32_t>(sr);
    instrs_.push_back(in);
}

void
KernelBuilder::ldg(Reg d, Reg addr, std::int32_t offset)
{
    Instruction in;
    in.op = Opcode::LDG;
    in.dst = d;
    in.src[0] = addr;
    in.imm = offset;
    instrs_.push_back(in);
}

void
KernelBuilder::stg(Reg addr, Reg value, std::int32_t offset)
{
    Instruction in;
    in.op = Opcode::STG;
    in.src[0] = addr;
    in.src[1] = value;
    in.imm = offset;
    instrs_.push_back(in);
}

void
KernelBuilder::lds(Reg d, Reg addr, std::int32_t offset)
{
    Instruction in;
    in.op = Opcode::LDS;
    in.dst = d;
    in.src[0] = addr;
    in.imm = offset;
    instrs_.push_back(in);
}

void
KernelBuilder::sts(Reg addr, Reg value, std::int32_t offset)
{
    Instruction in;
    in.op = Opcode::STS;
    in.src[0] = addr;
    in.src[1] = value;
    in.imm = offset;
    instrs_.push_back(in);
}

void
KernelBuilder::bar()
{
    Instruction in;
    in.op = Opcode::BAR;
    instrs_.push_back(in);
}

void
KernelBuilder::exit()
{
    Instruction in;
    in.op = Opcode::EXIT;
    instrs_.push_back(in);
}

void
KernelBuilder::nop()
{
    Instruction in;
    in.op = Opcode::NOP;
    instrs_.push_back(in);
}

Pc
KernelBuilder::emitBranch(Opcode op, Reg pred)
{
    Instruction in;
    in.op = op;
    if (op != Opcode::BRA)
        in.src[0] = pred;
    instrs_.push_back(in);
    return static_cast<Pc>(instrs_.size() - 1);
}

void
KernelBuilder::patchTarget(Pc branch_pc, Pc target)
{
    instrs_.at(branch_pc).target = target;
}

void
KernelBuilder::patchReconv(Pc branch_pc, Pc reconv)
{
    instrs_.at(branch_pc).reconv = reconv;
}

void
KernelBuilder::ifThen(Reg pred, const BodyFn &then_body)
{
    // BRZ pred -> end (skip the body when the predicate is false).
    const Pc br = emitBranch(Opcode::BRZ, pred);
    then_body();
    const Pc end = here();
    patchTarget(br, end);
    patchReconv(br, end);
}

void
KernelBuilder::ifThenElse(Reg pred, const BodyFn &then_body,
                          const BodyFn &else_body)
{
    const Pc br = emitBranch(Opcode::BRZ, pred);
    then_body();
    const Pc skip = emitBranch(Opcode::BRA, Reg{});
    const Pc else_pc = here();
    else_body();
    const Pc end = here();
    patchTarget(br, else_pc);
    patchReconv(br, end);
    patchTarget(skip, end);
}

void
KernelBuilder::whileLoop(const BodyFn &cond_body, Reg pred,
                         const BodyFn &loop_body)
{
    const Pc head = here();
    cond_body();
    const Pc br = emitBranch(Opcode::BRZ, pred);
    loop_body();
    const Pc back = emitBranch(Opcode::BRA, Reg{});
    patchTarget(back, head);
    const Pc end = here();
    patchTarget(br, end);
    patchReconv(br, end);
}

void
KernelBuilder::forCounter(Reg i, std::int32_t first, Reg limit,
                          std::int32_t step, const BodyFn &loop_body)
{
    if (step == 0)
        warped_fatal("kernel '", name_, "': forCounter with step 0");
    movi(i, first);
    const Reg pred = reg();
    whileLoop(
        [&] {
            if (step > 0)
                isetpLt(pred, i, limit);
            else
                isetpGt(pred, i, limit);
        },
        pred,
        [&] {
            loop_body();
            iaddi(i, i, step);
        });
}

Program
KernelBuilder::build()
{
    if (instrs_.empty() || instrs_.back().op != Opcode::EXIT)
        exit();
    Program p(name_, instrs_, nextReg_ == 0 ? 1 : nextReg_,
              sharedBytes_);
    p.validate();
    return p;
}

} // namespace isa
} // namespace warped
