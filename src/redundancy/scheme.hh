/**
 * @file
 * Error-detection scheme comparison (paper §5.3, Fig 10).
 *
 * Analytic cost model over the scheme lineup (the names and ids come
 * from the protection registry — redundancy::Scheme IS
 * protection::SchemeId):
 *  - Original:   no protection.
 *  - R-Naive:    the kernel (and its host<->device transfers) run
 *                twice; outputs are compared on the CPU.
 *  - R-Thread:   the grid is doubled with redundant thread blocks;
 *                hidden when the chip has idle capacity, and the
 *                output transfer doubles (CPU-side comparison).
 *  - DMTR:       per-instruction temporal DMR with one cycle of
 *                slack (simplified SRT), on-GPU comparison.
 *  - Warped-DMR: the paper's mechanism, on-GPU comparison.
 *  - Partial-Thread / Replay-Compare: the post-paper backends,
 *                measured by executing them behind the
 *                ProtectionScheme seam (no analytic shortcut).
 */

#ifndef WARPED_REDUNDANCY_SCHEME_HH
#define WARPED_REDUNDANCY_SCHEME_HH

#include <string>

#include "arch/gpu_config.hh"
#include "gpu/gpu.hh"
#include "protection/scheme_registry.hh"
#include "workloads/workload.hh"

namespace warped {
namespace redundancy {

/**
 * Host<->device copy timing (the paper measured it with the CUDA
 * timer on real hardware; we model a PCIe gen-2 x16 link).
 */
struct TransferModel
{
    double bandwidthGBps = 4.0; ///< effective PCIe gen2 x16
    double perCallUs = 8.0;     ///< driver + DMA setup per memcpy

    double
    timeNs(std::size_t bytes, unsigned calls = 1) const
    {
        return double(bytes) / (bandwidthGBps) /* GB/s == B/ns */
               + double(calls) * perCallUs * 1e3;
    }
};

/** One id space for the whole tree: the protection registry's. */
using Scheme = protection::SchemeId;

/** Fig-10 display name; delegates to the protection registry. */
const char *schemeName(Scheme s);

struct SchemeResult
{
    Scheme scheme = Scheme::Original;
    double kernelNs = 0.0;
    double transferNs = 0.0;
    gpu::LaunchResult launch{32};

    double totalNs() const { return kernelNs + transferNs; }
};

/**
 * Run @p scheme for the named Table-4 workload and report kernel and
 * transfer components.
 *
 * @param redundant_factory for R-Thread: a factory creating the
 *        workload with doubled thread blocks; pass nullptr for
 *        workloads whose geometry cannot double (falls back to 2x
 *        serial kernel time, the no-idle-resources worst case the
 *        paper describes).
 */
SchemeResult
runScheme(Scheme scheme, const std::string &workload_name,
          const arch::GpuConfig &cfg,
          const TransferModel &tm = TransferModel{});

} // namespace redundancy
} // namespace warped

#endif // WARPED_REDUNDANCY_SCHEME_HH
