#include "redundancy/scheme.hh"

#include "common/logging.hh"
#include "dmr/dmr_config.hh"

namespace warped {
namespace redundancy {

const char *
schemeName(Scheme s)
{
    return protection::schemeDisplayName(s);
}

namespace {

gpu::LaunchResult
launchOnce(const std::string &name, const arch::GpuConfig &cfg,
           const dmr::DmrConfig &dcfg, unsigned block_scale = 1,
           const protection::SchemeConfig &scfg = {})
{
    auto w = workloads::makeByNameScaled(name, block_scale);
    if (!w)
        warped_fatal("workload '", name, "' cannot scale blocks");
    gpu::Gpu g(cfg, dcfg, /*seed=*/1, /*hook=*/nullptr, {}, scfg);
    return workloads::runVerified(*w, g);
}

} // namespace

SchemeResult
runScheme(Scheme scheme, const std::string &name,
          const arch::GpuConfig &cfg, const TransferModel &tm)
{
    // Transfer sizes come from the workload definition.
    auto probe = workloads::makeByName(name);
    gpu::Gpu probe_gpu(cfg, dmr::DmrConfig::off());
    probe->setup(probe_gpu);
    const std::size_t in_b = probe->bytesIn();
    const std::size_t out_b = probe->bytesOut();

    SchemeResult res;
    res.scheme = scheme;

    switch (scheme) {
      case Scheme::Original: {
        res.launch = launchOnce(name, cfg, dmr::DmrConfig::off());
        res.kernelNs = res.launch.timeNs;
        res.transferNs = tm.timeNs(in_b) + tm.timeNs(out_b);
        break;
      }
      case Scheme::RNaive: {
        // Two full kernel invocations, each with its own transfers
        // (the duplicated cudaMemcpy calls of [6]).
        res.launch = launchOnce(name, cfg, dmr::DmrConfig::off());
        res.kernelNs = 2.0 * res.launch.timeNs;
        res.transferNs =
            2.0 * (tm.timeNs(in_b) + tm.timeNs(out_b));
        break;
      }
      case Scheme::RThread: {
        // Redundant thread blocks co-scheduled with the original
        // grid. When the workload geometry can express it, simulate
        // the doubled grid directly (idle-SM hiding falls out of the
        // dispatcher); otherwise the chip is already full and the
        // kernel serializes to 2x.
        if (auto w2 = workloads::makeByNameScaled(name, 2)) {
            gpu::Gpu g(cfg, dmr::DmrConfig::off());
            w2->setup(g);
            res.launch = g.launch(w2->program(), w2->gridBlocks(),
                                  w2->blockThreads());
            res.kernelNs = res.launch.timeNs;
        } else {
            res.launch = launchOnce(name, cfg, dmr::DmrConfig::off());
            res.kernelNs = 2.0 * res.launch.timeNs;
        }
        // Inputs transferred once; both outputs come back for the
        // CPU-side comparison.
        res.transferNs = tm.timeNs(in_b) + 2.0 * tm.timeNs(out_b);
        break;
      }
      case Scheme::Dmtr: {
        res.launch = launchOnce(name, cfg, dmr::DmrConfig::dmtr());
        res.kernelNs = res.launch.timeNs;
        res.transferNs = tm.timeNs(in_b) + tm.timeNs(out_b);
        break;
      }
      case Scheme::WarpedDmr: {
        res.launch =
            launchOnce(name, cfg, dmr::DmrConfig::paperDefault());
        res.kernelNs = res.launch.timeNs;
        res.transferNs = tm.timeNs(in_b) + tm.timeNs(out_b);
        break;
      }
      case Scheme::PartialThread: {
        // No analytic shortcut: execute the backend (half the warp
        // slots protected) behind the seam.
        res.launch = launchOnce(
            name, cfg, dmr::DmrConfig::paperDefault(), 1,
            {protection::SchemeId::PartialThread, 0.5});
        res.kernelNs = res.launch.timeNs;
        res.transferNs = tm.timeNs(in_b) + tm.timeNs(out_b);
        break;
      }
      case Scheme::ReplayCompare: {
        // Measured: the launch time already contains the replay run;
        // the end-of-kernel compare happens on-GPU during replay, so
        // transfers match the original's.
        res.launch =
            launchOnce(name, cfg, dmr::DmrConfig::off(), 1,
                       {protection::SchemeId::ReplayCompare});
        res.kernelNs = res.launch.timeNs;
        res.transferNs = tm.timeNs(in_b) + tm.timeNs(out_b);
        break;
      }
    }
    return res;
}

} // namespace redundancy
} // namespace warped
