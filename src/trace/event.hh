/**
 * @file
 * The structured trace-event vocabulary of the observability layer.
 *
 * One Event is emitted at every load-bearing seam of the pipeline —
 * SM issue/commit, the Warped-DMR engine's Algorithm-1 decisions,
 * ReplayQ push/pop/overflow, RFU forwarding, block dispatch — and is
 * the oracle the golden-trace and invariant test suites assert
 * against. Events are POD, timestamped in core-clock cycles, and
 * deterministic: the same configuration and seed always produce the
 * same event stream, byte for byte, regardless of host threading.
 */

#ifndef WARPED_TRACE_EVENT_HH
#define WARPED_TRACE_EVENT_HH

#include <cstdint>

#include "common/types.hh"

namespace warped {
namespace trace {

/** What happened. Names are stable — they appear in golden traces. */
enum class EventKind : std::uint8_t
{
    Issue = 0,      ///< SM issued a warp instruction (a0 = traceId,
                    ///< a1 = active-thread count)
    Commit,         ///< destination/writeback ready (cycle = writeback
                    ///< time, a0 = traceId, a1 = latency in cycles)
    IntraVerify,    ///< intra-warp (spatial) DMR verified an
                    ///< instruction (a0 = traceId, a1 = threads)
    InterVerify,    ///< inter-warp (temporal) DMR verified an
                    ///< instruction (a0 = traceId, a1 = threads)
    RfuForward,     ///< RFU paired idle checker lanes to active lanes
                    ///< (a0 = traceId, a1 = pairs forwarded)
    ReplayPush,     ///< ReplayQ enqueue (a0 = traceId, a1 = depth
                    ///< after the push)
    ReplayPop,      ///< ReplayQ dequeue (a0 = traceId, a1 = depth
                    ///< after the pop)
    ReplayOverflow, ///< ReplayQ full with no co-execution partner:
                    ///< Algorithm 1's forced 1-cycle stall + eager
                    ///< re-execution (a0 = traceId, a1 = capacity)
    RawStall,       ///< RAW hazard on an unverified ReplayQ result
                    ///< (a0 = traceId of the producer, a1 = reg mask)
    IdleDrain,      ///< idle-cycle verification drain (a0 = traceId)
    ErrorDetected,  ///< comparator mismatch (a0 = traceId, a1 = slot)
    BlockDispatch,  ///< block assigned to an SM (a0 = block id)
    LaunchEnd,      ///< kernel drained (a0 = total cycles, a1 = hung)
    Checkpoint,     ///< recovery delta captured at issue (a0 = traceId,
                    ///< a1 = deltas outstanding for the warp)
    Rollback,       ///< warp state restored to a checkpoint
                    ///< (a0 = anchor traceId, a1 = deltas undone)
    RecoveryGiveUp, ///< retry budget / anchor exhausted: structured
                    ///< degradation to detection-only (a0 = anchor
                    ///< traceId, a1 = rollback attempts used)
};

constexpr unsigned kNumEventKinds =
    static_cast<unsigned>(EventKind::RecoveryGiveUp) + 1;

/** Stable lower-snake name used by the exporters and golden files. */
const char *eventKindName(EventKind k);

/** Chip-level events (dispatch, launch end) use this SM id. */
constexpr std::uint16_t kChipSm = 0xffff;

/** Events with no meaningful unit carry this. */
constexpr std::uint8_t kNoUnit = 0xff;

/**
 * One structured trace event. `seq` is the per-SM emission index the
 * Recorder assigns; (cycle, sm, seq) totally orders a merged trace.
 * `a0`/`a1` are kind-specific arguments (see EventKind).
 */
struct Event
{
    Cycle cycle = 0;
    std::uint32_t seq = 0;
    std::uint16_t sm = 0;
    EventKind kind = EventKind::Issue;
    std::uint8_t unit = kNoUnit; ///< isa::UnitType index or kNoUnit
    std::uint32_t warp = 0;
    Pc pc = 0;
    std::uint64_t a0 = 0;
    std::uint64_t a1 = 0;
};

} // namespace trace
} // namespace warped

#endif // WARPED_TRACE_EVENT_HH
