/**
 * @file
 * trace::MetricsRegistry — named counters and gauges, the flat
 * per-run metrics surface.
 *
 * Counters are monotonically accumulated 64-bit integers; gauges are
 * point-in-time doubles (coverage, means). Keys iterate in sorted
 * order (std::map), so the JSON rendering is deterministic and safe
 * to diff in the golden-trace suite. Merging adds counters and keeps
 * the maximum of gauges — the semantics every per-SM fold in this
 * repo needs (sums for activity, peaks for watermarks); derived
 * gauges such as coverage are stamped once after the fold.
 */

#ifndef WARPED_TRACE_METRICS_HH
#define WARPED_TRACE_METRICS_HH

#include <cstdint>
#include <map>
#include <string>

namespace warped {
namespace trace {

class MetricsRegistry
{
  public:
    /** Reference to the named counter, creating it at zero. */
    std::uint64_t &counter(const std::string &name);

    /** Reference to the named gauge, creating it at zero. */
    double &gauge(const std::string &name);

    /**
     * Pre-resolved counter handle: resolve the string key once, then
     * bump through the pointer on hot paths (per-event / per-sample
     * accumulation must not re-run a string-keyed map lookup). The
     * pointer stays valid for the registry's lifetime — node-based
     * map storage — including across later insertions.
     */
    std::uint64_t *
    counterHandle(const std::string &name)
    {
        return &counter(name);
    }

    /** Pre-resolved gauge handle; same contract as counterHandle. */
    double *
    gaugeHandle(const std::string &name)
    {
        return &gauge(name);
    }

    /** Counter value; 0 when absent. */
    std::uint64_t counterValue(const std::string &name) const;

    /** Gauge value; 0.0 when absent. */
    double gaugeValue(const std::string &name) const;

    bool hasCounter(const std::string &name) const;
    bool hasGauge(const std::string &name) const;

    const std::map<std::string, std::uint64_t> &
    counters() const
    {
        return counters_;
    }
    const std::map<std::string, double> &gauges() const
    {
        return gauges_;
    }

    /** Add @p other's counters in; gauges fold by maximum. */
    void merge(const MetricsRegistry &other);

    /**
     * One flat JSON object, keys sorted, counters as integers and
     * gauges with six fractional digits — byte-stable across runs,
     * worker counts, and compilers.
     */
    std::string toJson() const;

  private:
    std::map<std::string, std::uint64_t> counters_;
    std::map<std::string, double> gauges_;
};

} // namespace trace
} // namespace warped

#endif // WARPED_TRACE_METRICS_HH
