/**
 * @file
 * trace::MetricsRegistry — named counters and gauges, the flat
 * per-run metrics surface.
 *
 * Counters are monotonically accumulated 64-bit integers; gauges are
 * point-in-time doubles (coverage, means). Keys iterate in sorted
 * order (std::map), so the JSON rendering is deterministic and safe
 * to diff in the golden-trace suite. Merging adds counters and keeps
 * the maximum of gauges — the semantics every per-SM fold in this
 * repo needs (sums for activity, peaks for watermarks); derived
 * gauges such as coverage are stamped once after the fold.
 */

#ifndef WARPED_TRACE_METRICS_HH
#define WARPED_TRACE_METRICS_HH

#include <cstdint>
#include <map>
#include <string>

namespace warped {
namespace trace {

class MetricsRegistry
{
  public:
    /** Reference to the named counter, creating it at zero. */
    std::uint64_t &counter(const std::string &name);

    /** Reference to the named gauge, creating it at zero. */
    double &gauge(const std::string &name);

    /**
     * Pre-resolved counter handle: resolve the string key once, then
     * bump through the pointer on hot paths (per-event / per-sample
     * accumulation must not re-run a string-keyed map lookup). The
     * pointer stays valid for the registry's lifetime — node-based
     * map storage — including across later insertions.
     */
    std::uint64_t *
    counterHandle(const std::string &name)
    {
        return &counter(name);
    }

    /** Pre-resolved gauge handle; same contract as counterHandle. */
    double *
    gaugeHandle(const std::string &name)
    {
        return &gauge(name);
    }

    /** Counter value; 0 when absent. */
    std::uint64_t counterValue(const std::string &name) const;

    /** Gauge value; 0.0 when absent. */
    double gaugeValue(const std::string &name) const;

    bool hasCounter(const std::string &name) const;
    bool hasGauge(const std::string &name) const;

    const std::map<std::string, std::uint64_t> &
    counters() const
    {
        return counters_;
    }
    const std::map<std::string, double> &gauges() const
    {
        return gauges_;
    }

    /** Add @p other's counters in; gauges fold by maximum. */
    void merge(const MetricsRegistry &other);

    /**
     * One flat JSON object, keys sorted, counters as integers and
     * gauges with six fractional digits — byte-stable across runs,
     * worker counts, and compilers.
     */
    std::string toJson() const;

  private:
    std::map<std::string, std::uint64_t> counters_;
    std::map<std::string, double> gauges_;
};

/**
 * Parse every `"key": <unsigned integer>` pair out of a flat JSON
 * document — the inverse of MetricsRegistry::toJson for the counter
 * keys (gauges and quoted string values are skipped). Used by the
 * campaign checkpoint and shard-delta loaders; tolerant of torn
 * input, so callers MUST validate integrity separately (see
 * flatJsonComplete and countersFingerprint).
 */
std::map<std::string, std::uint64_t>
parseFlatCounters(const std::string &text);

/**
 * Structural completeness check for a flat metrics JSON document: the
 * text must contain a '{' and its last non-whitespace character must
 * be the matching '}'. A torn (partially written) document fails this
 * even when parseFlatCounters would happily return its surviving
 * prefix.
 */
bool flatJsonComplete(const std::string &text);

/**
 * Order-insensitive-input, deterministic fingerprint of a counter
 * map: a splitmix64 chain over every key byte and value, in the
 * map's sorted iteration order. Keys starting with @p skip_prefix
 * are excluded (so a document can embed its own fingerprint).
 */
std::uint64_t
countersFingerprint(const std::map<std::string, std::uint64_t> &kv,
                    const std::string &skip_prefix = "");

} // namespace trace
} // namespace warped

#endif // WARPED_TRACE_METRICS_HH
