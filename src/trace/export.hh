/**
 * @file
 * Trace/metrics exporters: Chrome `trace_event` JSON (load it at
 * chrome://tracing or in Perfetto) and the flat metrics JSON.
 *
 * Both renderings are deterministic — events are emitted in the
 * merged (cycle, sm, seq) order, one per line, and all numbers are
 * integers or fixed-precision — so the golden-trace suite can diff
 * them byte for byte across compilers and `--jobs` values.
 *
 * For hot-path capture there is a third rendering: the binary
 * container of trace/binary.hh, which `tools/trace_convert` turns
 * back into the exact bytes writeChromeTrace would have produced.
 */

#ifndef WARPED_TRACE_EXPORT_HH
#define WARPED_TRACE_EXPORT_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/event.hh"
#include "trace/metrics.hh"

namespace warped {
namespace trace {

/**
 * Render @p events (already merged/ordered) as one Chrome
 * trace_event JSON document. Timestamps are core-clock cycles
 * (declared via "displayTimeUnit"); pid = SM, tid = warp.
 */
void writeChromeTrace(std::ostream &os,
                      const std::vector<Event> &events,
                      const std::string &process_label);

/** writeChromeTrace into a string. */
std::string chromeTraceJson(const std::vector<Event> &events,
                            const std::string &process_label);

/** The registry's flat JSON (MetricsRegistry::toJson), to a stream. */
void writeMetricsJson(std::ostream &os, const MetricsRegistry &m);

} // namespace trace
} // namespace warped

#endif // WARPED_TRACE_EXPORT_HH
