/**
 * @file
 * trace::Recorder — the per-launch event sink.
 *
 * One Recorder belongs to one Gpu launch and is written by that
 * launch's SMs only; it holds one ring buffer per SM (plus a chip
 * lane for dispatch/launch events) so recording is a bounded-memory,
 * append-only operation with no cross-SM coordination. Concurrent
 * *launches* (sim::RunPool workers) each own a private Recorder, so
 * the merged trace is deterministic for any worker count.
 *
 * Recording costs one pointer test when tracing is disabled: every
 * instrumented layer holds a `Recorder *` that stays nullptr unless
 * arch::GpuConfig::traceEvents is set.
 */

#ifndef WARPED_TRACE_RECORDER_HH
#define WARPED_TRACE_RECORDER_HH

#include <cstdint>
#include <vector>

#include "trace/event.hh"
#include "trace/ring_buffer.hh"

namespace warped {
namespace trace {

/** Per-launch event sink: one bounded ring per SM plus a chip lane
 *  (see the file comment for the ownership and determinism rules). */
class Recorder
{
  public:
    /**
     * @param n_sms    SM lanes to allocate (chip events get one more)
     * @param capacity per-lane ring capacity; 0 = unbounded
     */
    Recorder(unsigned n_sms, std::size_t capacity);

    unsigned numSms() const { return nSms_; }

    /**
     * Record one event on @p sm's lane (kChipSm for chip-level
     * events). The per-lane sequence number is assigned here; the
     * caller fills every other field.
     */
    void record(unsigned sm, Event ev);

    /** Events one lane kept, oldest-first. */
    std::vector<Event> laneSnapshot(unsigned sm) const;

    /** Events one lane overwrote (bounded mode only). */
    std::uint64_t laneDropped(unsigned sm) const;

    /** Total events recorded (kept + dropped), all lanes. */
    std::uint64_t recorded() const { return recorded_; }

    /** Total events overwritten, all lanes. */
    std::uint64_t dropped() const;

    /**
     * All lanes merged into one stream, totally ordered by
     * (cycle, sm, seq) — the canonical trace the exporters and the
     * golden suite consume. Chip-lane events order with sm = kChipSm
     * (after every real SM at the same cycle).
     */
    std::vector<Event> merged() const;

  private:
    std::size_t laneIndex(unsigned sm) const;

    unsigned nSms_;
    std::uint64_t recorded_ = 0;
    std::vector<RingBuffer<Event>> lanes_; ///< [0..nSms) + chip lane
    std::vector<std::uint32_t> nextSeq_;
};

} // namespace trace
} // namespace warped

#endif // WARPED_TRACE_RECORDER_HH
