#include "trace/recorder.hh"

#include <algorithm>

#include "common/logging.hh"

namespace warped {
namespace trace {

const char *
eventKindName(EventKind k)
{
    switch (k) {
      case EventKind::Issue: return "issue";
      case EventKind::Commit: return "commit";
      case EventKind::IntraVerify: return "intra_verify";
      case EventKind::InterVerify: return "inter_verify";
      case EventKind::RfuForward: return "rfu_forward";
      case EventKind::ReplayPush: return "replay_push";
      case EventKind::ReplayPop: return "replay_pop";
      case EventKind::ReplayOverflow: return "replay_overflow";
      case EventKind::RawStall: return "raw_stall";
      case EventKind::IdleDrain: return "idle_drain";
      case EventKind::ErrorDetected: return "error_detected";
      case EventKind::BlockDispatch: return "block_dispatch";
      case EventKind::LaunchEnd: return "launch_end";
      case EventKind::Checkpoint: return "checkpoint";
      case EventKind::Rollback: return "rollback";
      case EventKind::RecoveryGiveUp: return "recovery_giveup";
    }
    return "unknown";
}

Recorder::Recorder(unsigned n_sms, std::size_t capacity)
    : nSms_(n_sms)
{
    lanes_.reserve(n_sms + 1);
    for (unsigned i = 0; i <= n_sms; ++i)
        lanes_.emplace_back(capacity);
    nextSeq_.assign(n_sms + 1, 0);
}

std::size_t
Recorder::laneIndex(unsigned sm) const
{
    if (sm == kChipSm)
        return nSms_;
    if (sm >= nSms_)
        warped_panic("trace::Recorder: event from SM ", sm,
                     " but only ", nSms_, " lanes exist");
    return sm;
}

void
Recorder::record(unsigned sm, Event ev)
{
    const std::size_t lane = laneIndex(sm);
    ev.sm = sm == kChipSm ? kChipSm : static_cast<std::uint16_t>(sm);
    ev.seq = nextSeq_[lane]++;
    lanes_[lane].push(ev);
    ++recorded_;
}

std::vector<Event>
Recorder::laneSnapshot(unsigned sm) const
{
    return lanes_[laneIndex(sm)].snapshot();
}

std::uint64_t
Recorder::laneDropped(unsigned sm) const
{
    return lanes_[laneIndex(sm)].dropped();
}

std::uint64_t
Recorder::dropped() const
{
    std::uint64_t n = 0;
    for (const auto &l : lanes_)
        n += l.dropped();
    return n;
}

std::vector<Event>
Recorder::merged() const
{
    std::vector<Event> out;
    std::size_t total = 0;
    for (const auto &l : lanes_)
        total += l.size();
    out.reserve(total);
    for (const auto &l : lanes_) {
        const auto snap = l.snapshot();
        out.insert(out.end(), snap.begin(), snap.end());
    }
    std::sort(out.begin(), out.end(),
              [](const Event &a, const Event &b) {
                  if (a.cycle != b.cycle)
                      return a.cycle < b.cycle;
                  if (a.sm != b.sm)
                      return a.sm < b.sm;
                  return a.seq < b.seq;
              });
    return out;
}

} // namespace trace
} // namespace warped
