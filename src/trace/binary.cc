#include "trace/binary.hh"

#include <algorithm>
#include <cstring>
#include <istream>
#include <ostream>

namespace warped {
namespace trace {

namespace {

// Serialization goes through explicit little-endian byte packing —
// not struct memcpy — so the on-disk format is independent of host
// padding and byte order.

template <typename T>
void
putLe(std::ostream &os, T v)
{
    char buf[sizeof(T)];
    for (std::size_t i = 0; i < sizeof(T); ++i)
        buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    os.write(buf, sizeof(T));
}

template <typename T>
bool
getLe(std::istream &is, T &v)
{
    char buf[sizeof(T)];
    if (!is.read(buf, sizeof(T)))
        return false;
    v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i)
        v |= static_cast<T>(static_cast<unsigned char>(buf[i]))
             << (8 * i);
    return true;
}

} // namespace

void
writeBinaryTrace(std::ostream &os, const std::vector<Event> &events,
                 const std::string &process_label,
                 std::uint64_t dropped)
{
    os.write(kBinaryMagic, sizeof(kBinaryMagic));
    putLe<std::uint16_t>(os, kBinaryVersion);
    putLe<std::uint8_t>(os, kBinaryLittleEndian);
    putLe<std::uint8_t>(os, kBinaryRecordBytes);
    putLe<std::uint64_t>(os, events.size());
    putLe<std::uint64_t>(os, dropped);
    putLe<std::uint32_t>(
        os, static_cast<std::uint32_t>(process_label.size()));
    os.write(process_label.data(),
             static_cast<std::streamsize>(process_label.size()));

    for (const Event &ev : events) {
        putLe<std::uint64_t>(os, ev.cycle);
        putLe<std::uint64_t>(os, ev.a0);
        putLe<std::uint64_t>(os, ev.a1);
        putLe<std::uint32_t>(os, ev.pc);
        putLe<std::uint32_t>(os, ev.seq);
        putLe<std::uint32_t>(os, ev.warp);
        putLe<std::uint16_t>(os, ev.sm);
        putLe<std::uint8_t>(os, static_cast<std::uint8_t>(ev.kind));
        putLe<std::uint8_t>(os, ev.unit);
    }
}

bool
readBinaryTrace(std::istream &is, BinaryTrace &out, std::string &err)
{
    char magic[4];
    if (!is.read(magic, 4) ||
        std::memcmp(magic, kBinaryMagic, 4) != 0) {
        err = "not a warped binary trace (bad magic)";
        return false;
    }
    std::uint16_t version = 0;
    std::uint8_t endian = 0, rec_bytes = 0;
    std::uint64_t count = 0, dropped = 0;
    std::uint32_t label_len = 0;
    if (!getLe(is, version) || !getLe(is, endian) ||
        !getLe(is, rec_bytes) || !getLe(is, count) ||
        !getLe(is, dropped) || !getLe(is, label_len)) {
        err = "truncated header";
        return false;
    }
    if (version != kBinaryVersion) {
        err = "unsupported version " + std::to_string(version);
        return false;
    }
    if (endian != kBinaryLittleEndian) {
        err = "unsupported endianness tag " + std::to_string(endian);
        return false;
    }
    if (rec_bytes != kBinaryRecordBytes) {
        err = "unsupported record size " + std::to_string(rec_bytes);
        return false;
    }

    // The header's sizes are untrusted input: a truncated or damaged
    // file can carry an arbitrary label length or record count, and
    // allocating on its say-so turns a bad file into a bad_alloc
    // crash. Labels are bounded outright; the record vector grows as
    // records actually arrive, with the reservation capped so a lying
    // count costs at most one modest allocation before the truncation
    // check fires.
    constexpr std::uint32_t kMaxLabelBytes = 1u << 16;
    constexpr std::uint64_t kMaxReserveRecords = 1u << 20;
    if (label_len > kMaxLabelBytes) {
        err = "implausible label length " + std::to_string(label_len) +
              " (damaged header?)";
        return false;
    }

    BinaryTrace bt;
    bt.dropped = dropped;
    bt.label.resize(label_len);
    if (label_len &&
        !is.read(bt.label.data(),
                 static_cast<std::streamsize>(label_len))) {
        err = "truncated label";
        return false;
    }

    bt.events.reserve(static_cast<std::size_t>(
        std::min(count, kMaxReserveRecords)));
    for (std::uint64_t i = 0; i < count; ++i) {
        Event ev;
        std::uint8_t kind = 0;
        if (!getLe(is, ev.cycle) || !getLe(is, ev.a0) ||
            !getLe(is, ev.a1) || !getLe(is, ev.pc) ||
            !getLe(is, ev.seq) || !getLe(is, ev.warp) ||
            !getLe(is, ev.sm) || !getLe(is, kind) ||
            !getLe(is, ev.unit)) {
            err = "truncated at record " + std::to_string(i) + " of " +
                  std::to_string(count);
            return false;
        }
        if (kind >= kNumEventKinds) {
            err = "record " + std::to_string(i) +
                  " has unknown event kind " + std::to_string(kind);
            return false;
        }
        ev.kind = static_cast<EventKind>(kind);
        bt.events.push_back(ev);
    }
    out = std::move(bt);
    return true;
}

} // namespace trace
} // namespace warped
