#include "trace/metrics.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace warped {
namespace trace {

std::uint64_t &
MetricsRegistry::counter(const std::string &name)
{
    return counters_[name];
}

double &
MetricsRegistry::gauge(const std::string &name)
{
    return gauges_[name];
}

std::uint64_t
MetricsRegistry::counterValue(const std::string &name) const
{
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

double
MetricsRegistry::gaugeValue(const std::string &name) const
{
    const auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second;
}

bool
MetricsRegistry::hasCounter(const std::string &name) const
{
    return counters_.count(name) != 0;
}

bool
MetricsRegistry::hasGauge(const std::string &name) const
{
    return gauges_.count(name) != 0;
}

void
MetricsRegistry::merge(const MetricsRegistry &other)
{
    for (const auto &[k, v] : other.counters_)
        counters_[k] += v;
    for (const auto &[k, v] : other.gauges_) {
        auto it = gauges_.find(k);
        if (it == gauges_.end())
            gauges_[k] = v;
        else
            it->second = std::max(it->second, v);
    }
}

std::string
MetricsRegistry::toJson() const
{
    std::ostringstream os;
    os << "{\n";
    bool first = true;
    for (const auto &[k, v] : counters_) {
        os << (first ? "" : ",\n") << "  \"" << k << "\": " << v;
        first = false;
    }
    for (const auto &[k, v] : gauges_) {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.6f", v);
        os << (first ? "" : ",\n") << "  \"" << k << "\": " << buf;
        first = false;
    }
    os << "\n}\n";
    return os.str();
}

} // namespace trace
} // namespace warped
