#include "trace/metrics.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

#include "common/rng.hh"

namespace warped {
namespace trace {

std::uint64_t &
MetricsRegistry::counter(const std::string &name)
{
    return counters_[name];
}

double &
MetricsRegistry::gauge(const std::string &name)
{
    return gauges_[name];
}

std::uint64_t
MetricsRegistry::counterValue(const std::string &name) const
{
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

double
MetricsRegistry::gaugeValue(const std::string &name) const
{
    const auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second;
}

bool
MetricsRegistry::hasCounter(const std::string &name) const
{
    return counters_.count(name) != 0;
}

bool
MetricsRegistry::hasGauge(const std::string &name) const
{
    return gauges_.count(name) != 0;
}

void
MetricsRegistry::merge(const MetricsRegistry &other)
{
    for (const auto &[k, v] : other.counters_)
        counters_[k] += v;
    for (const auto &[k, v] : other.gauges_) {
        auto it = gauges_.find(k);
        if (it == gauges_.end())
            gauges_[k] = v;
        else
            it->second = std::max(it->second, v);
    }
}

std::string
MetricsRegistry::toJson() const
{
    std::ostringstream os;
    os << "{\n";
    bool first = true;
    for (const auto &[k, v] : counters_) {
        os << (first ? "" : ",\n") << "  \"" << k << "\": " << v;
        first = false;
    }
    for (const auto &[k, v] : gauges_) {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.6f", v);
        os << (first ? "" : ",\n") << "  \"" << k << "\": " << buf;
        first = false;
    }
    os << "\n}\n";
    return os.str();
}

std::map<std::string, std::uint64_t>
parseFlatCounters(const std::string &text)
{
    std::map<std::string, std::uint64_t> kv;
    std::size_t i = 0;
    while ((i = text.find('"', i)) != std::string::npos) {
        const auto end = text.find('"', i + 1);
        if (end == std::string::npos)
            break;
        const std::string key = text.substr(i + 1, end - i - 1);
        std::size_t j = end + 1;
        while (j < text.size() &&
               (text[j] == ':' ||
                std::isspace(static_cast<unsigned char>(text[j]))))
            ++j;
        if (j < text.size() &&
            std::isdigit(static_cast<unsigned char>(text[j]))) {
            std::uint64_t v = 0;
            bool integral = true;
            while (j < text.size() &&
                   std::isdigit(static_cast<unsigned char>(text[j])))
                v = v * 10 + (text[j++] - '0');
            // A '.' means a gauge — not a counter, skip it.
            if (j < text.size() && text[j] == '.')
                integral = false;
            if (integral)
                kv[key] = v;
        }
        i = j;
    }
    return kv;
}

bool
flatJsonComplete(const std::string &text)
{
    const auto open = text.find('{');
    if (open == std::string::npos)
        return false;
    const auto last = text.find_last_not_of(" \t\r\n");
    return last != std::string::npos && last > open &&
           text[last] == '}';
}

std::uint64_t
countersFingerprint(const std::map<std::string, std::uint64_t> &kv,
                    const std::string &skip_prefix)
{
    std::uint64_t h = splitmix64(0xf19e4a2bu);
    const auto mix = [&h](std::uint64_t v) {
        h = splitmix64(h ^ v);
    };
    for (const auto &[k, v] : kv) {
        if (!skip_prefix.empty() &&
            k.compare(0, skip_prefix.size(), skip_prefix) == 0)
            continue;
        for (const char c : k)
            mix(static_cast<unsigned char>(c));
        mix(v);
    }
    return h;
}

} // namespace trace
} // namespace warped
