/**
 * @file
 * Compact binary rendering of a merged trace-event stream.
 *
 * The Chrome trace_event JSON exporter (export.hh) costs ~180 bytes
 * of formatted text per event; launches that only *capture* a trace
 * (campaign sweeps, CI artifact uploads) should not pay JSON
 * formatting on the export path. This module writes the events
 * exactly as the Recorder's ring buffers hold them — fixed-width
 * little-endian records, 40 bytes each — plus a small self-describing
 * header. `tools/trace_convert` turns the binary file into the
 * byte-identical Chrome JSON offline, so every golden-trace diff
 * still works.
 *
 * Format v1 (all integers little-endian, see docs/TRACE_FORMAT.md):
 *
 *     offset  size  field
 *          0     4  magic "WDTR"
 *          4     2  version (1)
 *          6     1  endianness (1 = little; the only value written)
 *          7     1  record size in bytes (40)
 *          8     8  event count
 *         16     8  ring-dropped count (events overwritten in the
 *                   bounded rings and therefore NOT in this file)
 *         24     4  label length N
 *         28     N  process label (UTF-8, no terminator)
 *       28+N  40*count  event records
 *
 * Record layout (40 bytes):
 *
 *     offset  size  field
 *          0     8  cycle
 *          8     8  a0
 *         16     8  a1
 *         24     4  pc
 *         28     4  seq
 *         32     4  warp
 *         36     2  sm
 *         38     1  kind (EventKind)
 *         39     1  unit (isa::UnitType index or kNoUnit)
 */

#ifndef WARPED_TRACE_BINARY_HH
#define WARPED_TRACE_BINARY_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "trace/event.hh"

namespace warped {
namespace trace {

/** Binary trace header constants (format v1). */
constexpr char kBinaryMagic[4] = {'W', 'D', 'T', 'R'};
constexpr std::uint16_t kBinaryVersion = 1;
constexpr std::uint8_t kBinaryLittleEndian = 1;
constexpr std::uint8_t kBinaryRecordBytes = 40;

/**
 * Write @p events (already merged/ordered) as one binary trace
 * document. @p dropped is the Recorder's ring-overwrite count for
 * the launch — events that were recorded but are not in the file.
 */
void writeBinaryTrace(std::ostream &os,
                      const std::vector<Event> &events,
                      const std::string &process_label,
                      std::uint64_t dropped = 0);

/** A parsed binary trace document. */
struct BinaryTrace
{
    std::string label;           ///< process label from the header
    std::uint64_t dropped = 0;   ///< ring-overwritten event count
    std::vector<Event> events;   ///< records, in file (= merged) order
};

/**
 * Parse a binary trace document. @return false (with @p err filled)
 * on bad magic, unsupported version/endianness/record size, or a
 * truncated file; @p out is untouched on failure.
 */
bool readBinaryTrace(std::istream &is, BinaryTrace &out,
                     std::string &err);

} // namespace trace
} // namespace warped

#endif // WARPED_TRACE_BINARY_HH
