/**
 * @file
 * A fixed-capacity ring buffer that keeps the most recent N pushes
 * and counts what it dropped. Capacity 0 means unbounded (the test
 * suites use it so coverage-ledger invariants see every event).
 */

#ifndef WARPED_TRACE_RING_BUFFER_HH
#define WARPED_TRACE_RING_BUFFER_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace warped {
namespace trace {

/**
 * Bounded most-recent-N container. Once full, each push overwrites
 * the oldest entry and increments the drop counter — the counter is
 * how a bounded trace capture stays honest about being a suffix of
 * the stream rather than the whole stream (docs/TRACE_FORMAT.md,
 * "Ring-drop accounting").
 */
template <typename T>
class RingBuffer
{
  public:
    /** @param capacity most-recent entries kept; 0 = unbounded. */
    explicit RingBuffer(std::size_t capacity) : capacity_(capacity) {}

    std::size_t capacity() const { return capacity_; }
    std::size_t size() const { return items_.size(); }
    bool unbounded() const { return capacity_ == 0; }
    /** Entries overwritten so far (0 while unbounded or not full). */
    std::uint64_t dropped() const { return dropped_; }

    /** Append @p v, evicting the oldest entry when at capacity. */
    void
    push(T v)
    {
        if (unbounded()) {
            items_.push_back(std::move(v));
            return;
        }
        if (items_.size() < capacity_) {
            items_.push_back(std::move(v));
            return;
        }
        // Overwrite the oldest entry; `head_` marks the logical start.
        items_[head_] = std::move(v);
        head_ = (head_ + 1) % capacity_;
        ++dropped_;
    }

    /** Contents oldest-first (unwraps the ring). */
    std::vector<T>
    snapshot() const
    {
        std::vector<T> out;
        out.reserve(items_.size());
        for (std::size_t i = 0; i < items_.size(); ++i)
            out.push_back(items_[(head_ + i) % items_.size()]);
        return out;
    }

  private:
    std::size_t capacity_;
    std::size_t head_ = 0;
    std::uint64_t dropped_ = 0;
    std::vector<T> items_;
};

} // namespace trace
} // namespace warped

#endif // WARPED_TRACE_RING_BUFFER_HH
