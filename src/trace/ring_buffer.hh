/**
 * @file
 * A fixed-capacity ring buffer that keeps the most recent N pushes
 * and counts what it dropped. Capacity 0 means unbounded (the test
 * suites use it so coverage-ledger invariants see every event).
 */

#ifndef WARPED_TRACE_RING_BUFFER_HH
#define WARPED_TRACE_RING_BUFFER_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace warped {
namespace trace {

template <typename T>
class RingBuffer
{
  public:
    explicit RingBuffer(std::size_t capacity) : capacity_(capacity) {}

    std::size_t capacity() const { return capacity_; }
    std::size_t size() const { return items_.size(); }
    bool unbounded() const { return capacity_ == 0; }
    std::uint64_t dropped() const { return dropped_; }

    void
    push(T v)
    {
        if (unbounded()) {
            items_.push_back(std::move(v));
            return;
        }
        if (items_.size() < capacity_) {
            items_.push_back(std::move(v));
            return;
        }
        // Overwrite the oldest entry; `head_` marks the logical start.
        items_[head_] = std::move(v);
        head_ = (head_ + 1) % capacity_;
        ++dropped_;
    }

    /** Contents oldest-first (unwraps the ring). */
    std::vector<T>
    snapshot() const
    {
        std::vector<T> out;
        out.reserve(items_.size());
        for (std::size_t i = 0; i < items_.size(); ++i)
            out.push_back(items_[(head_ + i) % items_.size()]);
        return out;
    }

  private:
    std::size_t capacity_;
    std::size_t head_ = 0;
    std::uint64_t dropped_ = 0;
    std::vector<T> items_;
};

} // namespace trace
} // namespace warped

#endif // WARPED_TRACE_RING_BUFFER_HH
