#include "trace/export.hh"

#include <ostream>
#include <set>
#include <sstream>

namespace warped {
namespace trace {

namespace {

const char *
unitLabel(std::uint8_t unit)
{
    switch (unit) {
      case 0: return "SP";
      case 1: return "SFU";
      case 2: return "LDST";
      default: return "-";
    }
}

void
writeProcessMeta(std::ostream &os, std::uint16_t sm,
                 const std::string &process_label, bool &first)
{
    os << (first ? "" : ",\n") << "  {\"name\":\"process_name\","
       << "\"ph\":\"M\",\"pid\":" << sm << ",\"tid\":0,"
       << "\"args\":{\"name\":\"" << process_label
       << (sm == kChipSm ? " chip" : " sm") << "\"}}";
    first = false;
}

} // namespace

void
writeChromeTrace(std::ostream &os, const std::vector<Event> &events,
                 const std::string &process_label)
{
    os << "{\n\"displayTimeUnit\": \"ns\",\n"
       << "\"metadata\": {\"timeUnit\": \"core-cycles\"},\n"
       << "\"traceEvents\": [\n";

    bool first = true;
    std::set<std::uint16_t> sms;
    for (const auto &ev : events)
        sms.insert(ev.sm);
    for (const auto sm : sms)
        writeProcessMeta(os, sm, process_label, first);

    for (const auto &ev : events) {
        os << (first ? "" : ",\n");
        first = false;
        os << "  {\"name\":\"" << eventKindName(ev.kind)
           << "\",\"cat\":\"warped\",\"ph\":\"X\",\"dur\":1"
           << ",\"ts\":" << ev.cycle << ",\"pid\":" << ev.sm
           << ",\"tid\":" << ev.warp << ",\"args\":{\"seq\":" << ev.seq
           << ",\"pc\":" << ev.pc << ",\"unit\":\""
           << unitLabel(ev.unit) << "\",\"a0\":" << ev.a0
           << ",\"a1\":" << ev.a1 << "}}";
    }
    os << "\n]\n}\n";
}

std::string
chromeTraceJson(const std::vector<Event> &events,
                const std::string &process_label)
{
    std::ostringstream os;
    writeChromeTrace(os, events, process_label);
    return os.str();
}

void
writeMetricsJson(std::ostream &os, const MetricsRegistry &m)
{
    os << m.toJson();
}

} // namespace trace
} // namespace warped
