/**
 * @file
 * Execution-unit fault models: transient bit flips and permanent
 * stuck-at faults on a specific physical SIMT lane (paper §1: only
 * execution units are vulnerable; memory is ECC-protected).
 *
 * Faults are applied at the FaultHook boundary, i.e. to every value a
 * physical lane produces — primary executions *and* DMR verifications
 * alike. A stuck-at lane therefore corrupts its own verification runs
 * too, which is precisely the hidden-error problem lane shuffling
 * exists to solve (§3.2).
 */

#ifndef WARPED_FAULT_FAULT_INJECTOR_HH
#define WARPED_FAULT_FAULT_INJECTOR_HH

#include <optional>
#include <vector>

#include "common/rng.hh"
#include "func/fault_hook.hh"
#include "mem/mem_fault.hh"

namespace warped {
namespace fault {

enum class FaultKind
{
    TransientBitFlip, ///< one-shot flip inside a cycle window
    StuckAtZero,      ///< output bit permanently reads 0
    StuckAtOne,       ///< output bit permanently reads 1
};

const char *faultKindName(FaultKind k);

struct FaultSpec
{
    FaultKind kind = FaultKind::TransientBitFlip;
    unsigned sm = 0;    ///< afflicted SM
    unsigned lane = 0;  ///< afflicted physical SIMT lane
    unsigned bit = 0;   ///< afflicted output bit (0..31)
    /** Active cycle window [begin, end]; stuck-at faults use the
     *  default whole-run window. */
    Cycle cycleBegin = 0;
    Cycle cycleEnd = ~Cycle{0};
    /** Restrict to one execution-unit type (nullopt = any). */
    std::optional<isa::UnitType> unit;

    /**
     * Memory-cell site (set by FaultSiteSpace when the space includes
     * the memory axes): the fault is an upset of the global-memory
     * word at memAddr instead of an execution-lane corruption. The
     * sm/lane/bit/cycle fields above keep their meaning where they
     * apply (bit picks the corrupted cell; cycleBegin is the strike
     * cycle); memBank/memRow/memCol are the site's decoded DRAM
     * geometry, reported for locality breakdowns.
     */
    bool isMemory = false;
    mem::MemFaultKind memKind = mem::MemFaultKind::Bit;
    Addr memAddr = 0;
    unsigned memBank = 0;
    std::uint64_t memRow = 0;
    unsigned memCol = 0;
};

class FaultInjector final : public func::FaultHook
{
  public:
    void add(const FaultSpec &spec) { faults_.push_back(spec); }
    void
    clear()
    {
        faults_.clear();
        activations_ = 0;
        firstActivation_ = 0;
    }

    RegValue apply(RegValue pure, const func::FaultCtx &ctx) override;

    /** Times a fault actually changed a produced value. */
    std::uint64_t activations() const { return activations_; }

    /** Cycle of the first value-changing activation (valid when
     *  activations() > 0) — the reference point for detection
     *  latency. */
    Cycle firstActivationCycle() const { return firstActivation_; }

  private:
    std::vector<FaultSpec> faults_;
    std::uint64_t activations_ = 0;
    Cycle firstActivation_ = 0;
};

/**
 * Rate-based fault model: every produced value is corrupted with a
 * fixed (small) probability, a random bit each time — the "raw error
 * rate" abstraction used for SDC-rate-vs-fault-rate sweeps. Draws
 * come from a seeded generator, so campaigns are reproducible.
 */
class RandomFaultHook final : public func::FaultHook
{
  public:
    /**
     * @param per_value_prob probability that one produced value is
     *        corrupted (one random bit flip)
     * @param seed           RNG seed
     */
    RandomFaultHook(double per_value_prob, std::uint64_t seed);

    RegValue apply(RegValue pure, const func::FaultCtx &ctx) override;

    std::uint64_t activations() const { return activations_; }

    /**
     * Restore the freshly-constructed state: zero the activation
     * counter and re-seed the generator with the construction seed,
     * so a hook reused across runs draws the identical corruption
     * sequence instead of leaking counter and RNG state from the
     * previous run (the FaultInjector::clear() counterpart).
     */
    void reset();

  private:
    double prob_;
    std::uint64_t seed_;
    Rng rng_;
    std::uint64_t activations_ = 0;
};

} // namespace fault
} // namespace warped

#endif // WARPED_FAULT_FAULT_INJECTOR_HH
