#include "fault/campaign.hh"

#include <vector>

#include "common/rng.hh"
#include "sim/run_pool.hh"

namespace warped {
namespace fault {

namespace {

/** What one injected run contributed, before the ordered fold. */
struct RunRecord
{
    Outcome outcome = Outcome::NotActivated;
    std::uint64_t detectionLatency = 0; ///< valid for Detected runs
    bool hasLatency = false;
};

/**
 * One campaign run: derive the fault from the run's private Rng,
 * execute a fresh workload on a fresh Gpu, classify the outcome.
 * Thread-safe: everything it touches is local to the run.
 */
RunRecord
runOne(unsigned run_index, Cycle span,
       const std::function<std::unique_ptr<workloads::Workload>()>
           &factory,
       const arch::GpuConfig &gpu_cfg, const dmr::DmrConfig &dmr_cfg,
       const CampaignConfig &cfg)
{
    Rng rng(deriveSeed(cfg.seed, run_index));
    FaultSpec spec;
    spec.kind = cfg.kind;
    spec.sm = static_cast<unsigned>(rng.nextBelow(gpu_cfg.numSms));
    spec.lane = static_cast<unsigned>(rng.nextBelow(gpu_cfg.warpSize));
    spec.bit = static_cast<unsigned>(rng.nextBelow(32));
    spec.unit = cfg.unit;
    if (cfg.kind == FaultKind::TransientBitFlip) {
        const auto lo = static_cast<Cycle>(cfg.windowLo * span);
        const auto hi = static_cast<Cycle>(cfg.windowHi * span);
        spec.cycleBegin = lo + rng.nextBelow(hi > lo ? hi - lo : 1);
        spec.cycleEnd = spec.cycleBegin; // single-cycle pulse
    }

    FaultInjector injector;
    injector.add(spec);

    auto w = factory();
    gpu::Gpu g(gpu_cfg, dmr_cfg, /*seed=*/1, &injector);
    w->setup(g);
    // Watchdog: a fault can corrupt a loop counter and hang the
    // kernel; give it a generous multiple of the fault-free span.
    const Cycle watchdog = span * 20 + 100000;
    const auto r = g.launch(w->program(), w->gridBlocks(),
                            w->blockThreads(), watchdog);

    RunRecord rec;
    if (injector.activations() == 0) {
        rec.outcome = Outcome::NotActivated;
    } else if (r.dmr.errorsDetected > 0) {
        rec.outcome = Outcome::Detected;
        if (!r.dmr.errorLog.empty()) {
            const Cycle det = r.dmr.errorLog.front().cycle;
            const Cycle act = injector.firstActivationCycle();
            rec.detectionLatency = det >= act ? det - act : 0;
            rec.hasLatency = true;
        }
    } else if (r.hung) {
        rec.outcome = Outcome::Hang;
    } else if (!w->verify(g)) {
        rec.outcome = Outcome::Sdc;
    } else {
        rec.outcome = Outcome::Benign;
    }
    return rec;
}

} // namespace

CampaignResult
runCampaign(const std::function<std::unique_ptr<workloads::Workload>()>
                &factory,
            const arch::GpuConfig &gpu_cfg,
            const dmr::DmrConfig &dmr_cfg, const CampaignConfig &cfg)
{
    // Fault-free dry run: learn the cycle span for placing transients.
    Cycle span;
    {
        auto w = factory();
        gpu::Gpu g(gpu_cfg, dmr_cfg);
        span = workloads::run(*w, g).cycles;
    }

    // Fan the independent runs out over the pool. Each run writes its
    // record into its own slot; the fold below walks the slots in
    // submission order, so the counters are bit-identical to a
    // sequential campaign for any jobs value.
    std::vector<RunRecord> records(cfg.runs);
    sim::RunPool pool(cfg.jobs);
    pool.parallelFor(cfg.runs, [&](std::size_t i) {
        records[i] = runOne(static_cast<unsigned>(i), span, factory,
                            gpu_cfg, dmr_cfg, cfg);
    });

    CampaignResult res;
    for (const auto &rec : records) {
        ++res.runs;
        switch (rec.outcome) {
        case Outcome::NotActivated:
            ++res.notActivated;
            break;
        case Outcome::Detected:
            ++res.detected;
            if (rec.hasLatency) {
                res.detectionLatencySum += rec.detectionLatency;
                res.kernelLengthSum += span;
            }
            break;
        case Outcome::Hang:
            ++res.hangs;
            break;
        case Outcome::Sdc:
            ++res.sdc;
            break;
        case Outcome::Benign:
            ++res.benign;
            break;
        }
    }
    return res;
}

} // namespace fault
} // namespace warped
