#include "fault/campaign.hh"

#include "common/rng.hh"

namespace warped {
namespace fault {

CampaignResult
runCampaign(const std::function<std::unique_ptr<workloads::Workload>()>
                &factory,
            const arch::GpuConfig &gpu_cfg,
            const dmr::DmrConfig &dmr_cfg, const CampaignConfig &cfg)
{
    // Fault-free dry run: learn the cycle span for placing transients.
    Cycle span;
    {
        auto w = factory();
        gpu::Gpu g(gpu_cfg, dmr_cfg);
        span = workloads::run(*w, g).cycles;
    }

    Rng rng(cfg.seed);
    CampaignResult res;
    for (unsigned i = 0; i < cfg.runs; ++i) {
        FaultSpec spec;
        spec.kind = cfg.kind;
        spec.sm = static_cast<unsigned>(rng.nextBelow(gpu_cfg.numSms));
        spec.lane =
            static_cast<unsigned>(rng.nextBelow(gpu_cfg.warpSize));
        spec.bit = static_cast<unsigned>(rng.nextBelow(32));
        spec.unit = cfg.unit;
        if (cfg.kind == FaultKind::TransientBitFlip) {
            const auto lo = static_cast<Cycle>(cfg.windowLo * span);
            const auto hi = static_cast<Cycle>(cfg.windowHi * span);
            spec.cycleBegin =
                lo + rng.nextBelow(hi > lo ? hi - lo : 1);
            spec.cycleEnd = spec.cycleBegin; // single-cycle pulse
        }

        FaultInjector injector;
        injector.add(spec);

        auto w = factory();
        gpu::Gpu g(gpu_cfg, dmr_cfg, /*seed=*/1, &injector);
        w->setup(g);
        // Watchdog: a fault can corrupt a loop counter and hang the
        // kernel; give it a generous multiple of the fault-free span.
        const Cycle watchdog = span * 20 + 100000;
        const auto r = g.launch(w->program(), w->gridBlocks(),
                                w->blockThreads(), watchdog);

        ++res.runs;
        if (injector.activations() == 0) {
            ++res.notActivated;
        } else if (r.dmr.errorsDetected > 0) {
            ++res.detected;
            if (!r.dmr.errorLog.empty()) {
                const Cycle det = r.dmr.errorLog.front().cycle;
                const Cycle act = injector.firstActivationCycle();
                res.detectionLatencySum += det >= act ? det - act : 0;
                res.kernelLengthSum += span;
            }
        } else if (r.hung) {
            ++res.hangs;
        } else if (!w->verify(g)) {
            ++res.sdc;
        } else {
            ++res.benign;
        }
    }
    return res;
}

} // namespace fault
} // namespace warped
